/**
 * @file
 * Deterministic DRAM protocol fuzzer. Drives the standard fuzz grid
 * (designs × controller corners) of randomized synthetic traffic
 * through the controller with the online ProtocolChecker attached.
 *
 * Every case's RNG stream derives from (--seed, case name, design);
 * a failing case replays from the one-line command printed with it.
 *
 *   dasdram_fuzz                       # whole grid, base seed 42
 *   dasdram_fuzz --seed 7 --requests 5000
 *   dasdram_fuzz --filter das/tiny-queues
 *   dasdram_fuzz --trace-cmds cmds.txt --filter das/base
 *   dasdram_fuzz --trace-out t.json --filter das/migrate-heavy
 *   dasdram_fuzz --engine event        # horizon-skipping harness
 *   dasdram_fuzz --differential        # run tick AND event, diff them
 *   dasdram_fuzz --differential --checkpoint-cycle 3000
 *                                      # also cross a mid-run snapshot
 *                                      # round trip vs straight runs
 *   dasdram_fuzz --workload spec:mcf   # trace-driven addresses
 *   dasdram_fuzz --workload file:t.trace --filter das/base
 *
 * --trace-cmds appends every issued command of every matching case as
 * text; --trace-out writes a Chrome trace_event JSON timeline of the
 * FIRST matching case only (each case has its own geometry, and a
 * Chrome trace is a single timeline) — narrow with --filter to pick
 * the case. Both may be given at once.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include "common/cli.hh"
#include "common/log.hh"
#include "dram/trace_json.hh"
#include "sim/config_cli.hh"
#include "sim/fuzz.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    CliParser cli("dasdram_fuzz",
                  "deterministic DRAM protocol fuzzer over the designs "
                  "x controller-corners grid");
    cli.optionUInt("--seed", "N",
                   "base seed the per-case seeds derive from "
                   "(default 42)")
        .optionUInt("--requests", "N",
                    "demand requests per case (default 2000)")
        .option("--filter", "STR",
                "only run cases whose name contains STR")
        .option("--workload", "SPEC",
                "drive addresses from a workload spec (synthetic "
                "profile or file: trace) instead of the row picker")
        .option("--trace-cmds", "FILE",
                "also write every issued command to FILE")
        .option("--trace-out", "FILE",
                "Chrome trace_event JSON timeline of the first matching "
                "case (use --filter to pick it)")
        .option("--engine", "E",
                "harness engine: tick (walk every memory cycle, the "
                "default) or event (skip to controller horizons)")
        .optionDouble("--trace-requests", "RATE",
                      "request-span sampling rate in [0,1]; plain runs "
                      "attach a counting span sink, --differential "
                      "additionally crosses RATE against sampling off")
        .option("--channel-threads", "N[,N...]",
                "DramSystem channel-threading width (default 1); with "
                "--differential, a comma list crosses every count "
                "against both engines")
        .optionUInt("--checkpoint-cycle", "N",
                    "serialize/destroy/restore the DRAM system and "
                    "checker at memory cycle N mid-run; with "
                    "--differential, crosses checkpointed runs against "
                    "straight ones and fails on any divergence")
        .flag("--differential",
              "run every matching case through BOTH engines (and every "
              "--channel-threads count) and fail on any divergence")
        .flag("--list",
              "print case names and per-case seeds, then exit")
        .flag("--quiet",
              "only report failures and the final summary");
    addConfigOptions(cli);
    cli.parse(argc, argv);

    // The uniform --config protocol: a configuration file supplies the
    // defaults the simulation-shaped flags fall back to (the fuzz grid
    // keeps its own per-case geometry and timing).
    SimConfig cfg;
    cfg.seed = 42;
    cfg.engine = SimEngine::Tick;
    cfg.workload.clear();
    loadConfigFile(cli, cfg);

    std::uint64_t base_seed =
        cli.given("--seed") ? cli.uns("--seed", 42) : cfg.seed;
    auto requests = static_cast<unsigned>(cli.uns("--requests", 2000));
    if (requests == 0)
        fatal("--requests needs a positive integer");
    std::string filter = cli.str("--filter");
    std::string workload =
        cli.given("--workload") ? cli.str("--workload") : cfg.workload;
    std::string trace_path = cli.str("--trace-cmds");
    std::string chrome_path = cli.str("--trace-out");
    SimEngine engine = cli.given("--engine")
                           ? parseEngine(cli.str("--engine"))
                           : cfg.engine;
    bool differential = cli.given("--differential");
    bool list_only = cli.given("--list");
    bool quiet = cli.given("--quiet");
    double trace_requests = cli.given("--trace-requests")
                                ? cli.dbl("--trace-requests", 0.0)
                                : cfg.obs.traceRequests;

    cfg.seed = base_seed;
    cfg.engine = engine;
    cfg.workload = workload;
    cfg.obs.traceRequests = trace_requests;
    if (dumpConfigIfRequested(cli, cfg))
        return 0;
    if (trace_requests < 0.0 || trace_requests > 1.0)
        fatal("--trace-requests needs a rate in [0, 1], got {}",
              trace_requests);

    // --channel-threads: a single count for plain runs; a comma list
    // crosses all of them against both engines under --differential.
    std::vector<unsigned> thread_counts{
        cfg.channelThreads > 0 ? cfg.channelThreads : 1};
    if (cli.given("--channel-threads")) {
        thread_counts.clear();
        std::string spec = cli.str("--channel-threads");
        std::size_t pos = 0;
        while (pos <= spec.size()) {
            std::size_t comma = spec.find(',', pos);
            std::string tok = spec.substr(
                pos, comma == std::string::npos ? comma : comma - pos);
            if (tok.empty() || tok.find_first_not_of("0123456789") !=
                                   std::string::npos) {
                fatal("--channel-threads needs positive integers, "
                      "got '{}'", spec);
            }
            unsigned n = static_cast<unsigned>(std::stoul(tok));
            if (n == 0)
                fatal("--channel-threads needs positive integers");
            thread_counts.push_back(n);
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        if (thread_counts.size() > 1 && !differential)
            fatal("a --channel-threads list requires --differential");
    }

    std::ofstream trace_os;
    std::unique_ptr<CommandTrace> trace;
    if (!trace_path.empty()) {
        trace_os.open(trace_path);
        if (!trace_os)
            fatal("cannot open '{}' for writing", trace_path);
        trace = std::make_unique<CommandTrace>(trace_os);
    }

    unsigned ran = 0, failed = 0;
    for (FuzzCase &c : defaultFuzzCases(base_seed, requests)) {
        if (!filter.empty() && c.name.find(filter) == std::string::npos)
            continue;
        if (list_only) {
            std::printf("%-24s seed=%llu\n", c.name.c_str(),
                        static_cast<unsigned long long>(c.seed));
            continue;
        }
        c.engine = engine;
        c.workload = workload;
        c.channelThreads = thread_counts.front();
        c.traceRequests = trace_requests;
        c.checkpointAtCycle = cli.uns("--checkpoint-cycle", 0);
        std::string replay_wl =
            workload.empty() ? "" : " --workload '" + workload + "'";
        if (differential) {
            FuzzDifferential d = runFuzzDifferential(c, thread_counts);
            ++ran;
            if (d.ok()) {
                if (!quiet) {
                    std::printf("ok   %-24s seed=%llu commands=%llu "
                                "(tick == event x %zu thread count(s))\n",
                                c.name.c_str(),
                                static_cast<unsigned long long>(c.seed),
                                static_cast<unsigned long long>(
                                    d.tick.commands),
                                thread_counts.size());
                }
                continue;
            }
            ++failed;
            std::printf("FAIL %-24s seed=%llu%s\n", c.name.c_str(),
                        static_cast<unsigned long long>(c.seed),
                        d.identical ? " (both engines, same failure)"
                                    : " (engines diverge)");
            if (!d.detail.empty())
                std::printf("     diff: %s\n", d.detail.c_str());
            if (!d.tick.firstViolation.empty())
                std::printf("     tick first violation: %s\n",
                            d.tick.firstViolation.c_str());
            if (!d.event.firstViolation.empty())
                std::printf("     event first violation: %s\n",
                            d.event.firstViolation.c_str());
            std::string replay_threads;
            for (unsigned n : thread_counts) {
                replay_threads += replay_threads.empty()
                                      ? " --channel-threads "
                                      : ",";
                replay_threads += std::to_string(n);
            }
            std::printf("     replay: %s --seed %llu --requests %u "
                        "--differential --filter '%s'%s%s\n",
                        argv[0],
                        static_cast<unsigned long long>(base_seed),
                        requests, c.name.c_str(), replay_wl.c_str(),
                        replay_threads.c_str());
            continue;
        }
        if (trace)
            trace_os << "# case " << c.name << " seed=" << c.seed
                     << '\n';
        const DesignSpec &spec = designSpec(c.design);
        DramTiming t = ddr3_1600Timing(spec.charmColumnOpt);
        FuzzReport rep;
        if (!chrome_path.empty()) {
            // Chrome timeline of this (first matching) case only: the
            // writer is per-geometry, so later cases fall back to the
            // text trace alone.
            std::ofstream chrome_os(chrome_path);
            if (!chrome_os)
                fatal("cannot open '{}' for writing", chrome_path);
            ChromeTraceWriter chrome(chrome_os, c.geom, t);
            CommandFanout fan;
            fan.addSink(trace.get());
            fan.addSink(&chrome);
            rep = runProtocolFuzz(c, t, t, &fan);
            chrome.finish();
            chrome_path.clear();
        } else {
            rep = runProtocolFuzz(c, t, t, trace.get());
        }
        ++ran;
        if (rep.ok()) {
            if (!quiet) {
                std::printf("ok   %-24s seed=%llu commands=%llu "
                            "migrations=%llu",
                            rep.name.c_str(),
                            static_cast<unsigned long long>(rep.seed),
                            static_cast<unsigned long long>(
                                rep.commands),
                            static_cast<unsigned long long>(
                                rep.migrationsDone));
                if (trace_requests > 0.0) {
                    std::printf(" spans=%llu",
                                static_cast<unsigned long long>(
                                    rep.spansEmitted));
                }
                std::printf("\n");
            }
            continue;
        }
        ++failed;
        std::printf("FAIL %-24s seed=%llu commands=%llu "
                    "violations=%llu drained=%d\n",
                    rep.name.c_str(),
                    static_cast<unsigned long long>(rep.seed),
                    static_cast<unsigned long long>(rep.commands),
                    static_cast<unsigned long long>(rep.violations),
                    rep.drained ? 1 : 0);
        if (!rep.firstViolation.empty())
            std::printf("     first: %s\n", rep.firstViolation.c_str());
        std::printf("     replay: %s --seed %llu --requests %u "
                    "--engine %s --filter '%s'%s\n",
                    argv[0],
                    static_cast<unsigned long long>(base_seed),
                    requests, toString(engine), rep.name.c_str(),
                    replay_wl.c_str());
    }

    if (list_only)
        return 0;
    if (ran == 0)
        fatal("no fuzz case matches filter '{}'", filter);
    std::printf("%u case(s), %u failure(s)\n", ran, failed);
    return failed == 0 ? 0 : 1;
}
