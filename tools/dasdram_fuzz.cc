/**
 * @file
 * Deterministic DRAM protocol fuzzer. Drives the standard fuzz grid
 * (designs × controller corners) of randomized synthetic traffic
 * through the controller with the online ProtocolChecker attached.
 *
 * Every case's RNG stream derives from (--seed, case name, design);
 * a failing case replays from the one-line command printed with it.
 *
 *   dasdram_fuzz                       # whole grid, base seed 42
 *   dasdram_fuzz --seed 7 --requests 5000
 *   dasdram_fuzz --filter das/tiny-queues
 *   dasdram_fuzz --trace-cmds cmds.txt --filter das/base
 *   dasdram_fuzz --trace-out t.json --filter das/migrate-heavy
 *   dasdram_fuzz --engine event        # horizon-skipping harness
 *   dasdram_fuzz --differential        # run tick AND event, diff them
 *
 * --trace-cmds appends every issued command of every matching case as
 * text; --trace-out writes a Chrome trace_event JSON timeline of the
 * FIRST matching case only (each case has its own geometry, and a
 * Chrome trace is a single timeline) — narrow with --filter to pick
 * the case. Both may be given at once.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/log.hh"
#include "dram/trace_json.hh"
#include "sim/fuzz.hh"

using namespace dasdram;

namespace
{

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --seed N          base seed the per-case seeds derive from "
        "(default 42)\n"
        "  --requests N      demand requests per case (default 2000)\n"
        "  --filter STR      only run cases whose name contains STR\n"
        "  --trace-cmds FILE also write every issued command to FILE\n"
        "  --trace-out FILE  write a Chrome trace_event JSON timeline "
        "of the\n"
        "                    first matching case to FILE (use --filter "
        "to pick it)\n"
        "  --engine E        harness engine: tick (walk every memory "
        "cycle,\n"
        "                    the default) or event (skip to controller "
        "horizons)\n"
        "  --differential    run every matching case through BOTH "
        "engines and\n"
        "                    fail on any divergence (reports, command "
        "traces)\n"
        "  --list            print case names and per-case seeds, then "
        "exit\n"
        "  --quiet           only report failures and the final "
        "summary\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t base_seed = 42;
    unsigned requests = 2000;
    std::string filter;
    std::string trace_path;
    std::string chrome_path;
    SimEngine engine = SimEngine::Tick;
    bool differential = false;
    bool list_only = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept --flag=value as well as --flag value.
        std::string inline_value;
        bool has_inline = false;
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
            if (std::size_t eq = arg.find('=');
                eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.erase(eq);
                has_inline = true;
            }
        }
        auto need_value = [&](const char *flag) -> std::string {
            if (has_inline) {
                has_inline = false;
                return inline_value;
            }
            if (i + 1 >= argc)
                fatal("missing value for {}", flag);
            return argv[++i];
        };
        if (arg == "--seed") {
            base_seed = std::strtoull(need_value("--seed").c_str(),
                                      nullptr, 10);
        } else if (arg == "--requests") {
            requests = static_cast<unsigned>(std::strtoul(
                need_value("--requests").c_str(), nullptr, 10));
            if (requests == 0)
                fatal("--requests needs a positive integer");
        } else if (arg == "--filter") {
            filter = need_value("--filter");
        } else if (arg == "--trace-cmds") {
            trace_path = need_value("--trace-cmds");
        } else if (arg == "--trace-out") {
            chrome_path = need_value("--trace-out");
        } else if (arg == "--engine") {
            engine = parseEngine(need_value("--engine"));
        } else if (arg == "--differential") {
            differential = true;
        } else if (arg == "--list") {
            list_only = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            fatal("unknown argument '{}' (try --help)", arg);
        }
        if (has_inline)
            fatal("'{}' takes no value", arg);
    }

    std::ofstream trace_os;
    std::unique_ptr<CommandTrace> trace;
    if (!trace_path.empty()) {
        trace_os.open(trace_path);
        if (!trace_os)
            fatal("cannot open '{}' for writing", trace_path);
        trace = std::make_unique<CommandTrace>(trace_os);
    }

    unsigned ran = 0, failed = 0;
    for (FuzzCase &c : defaultFuzzCases(base_seed, requests)) {
        if (!filter.empty() && c.name.find(filter) == std::string::npos)
            continue;
        if (list_only) {
            std::printf("%-24s seed=%llu\n", c.name.c_str(),
                        static_cast<unsigned long long>(c.seed));
            continue;
        }
        c.engine = engine;
        if (differential) {
            FuzzDifferential d = runFuzzDifferential(c);
            ++ran;
            if (d.ok()) {
                if (!quiet) {
                    std::printf("ok   %-24s seed=%llu commands=%llu "
                                "(tick == event)\n",
                                c.name.c_str(),
                                static_cast<unsigned long long>(c.seed),
                                static_cast<unsigned long long>(
                                    d.tick.commands));
                }
                continue;
            }
            ++failed;
            std::printf("FAIL %-24s seed=%llu%s\n", c.name.c_str(),
                        static_cast<unsigned long long>(c.seed),
                        d.identical ? " (both engines, same failure)"
                                    : " (engines diverge)");
            if (!d.detail.empty())
                std::printf("     diff: %s\n", d.detail.c_str());
            if (!d.tick.firstViolation.empty())
                std::printf("     tick first violation: %s\n",
                            d.tick.firstViolation.c_str());
            if (!d.event.firstViolation.empty())
                std::printf("     event first violation: %s\n",
                            d.event.firstViolation.c_str());
            std::printf("     replay: %s --seed %llu --requests %u "
                        "--differential --filter '%s'\n",
                        argv[0],
                        static_cast<unsigned long long>(base_seed),
                        requests, c.name.c_str());
            continue;
        }
        if (trace)
            trace_os << "# case " << c.name << " seed=" << c.seed
                     << '\n';
        const DesignSpec &spec = designSpec(c.design);
        DramTiming t = ddr3_1600Timing(spec.charmColumnOpt);
        FuzzReport rep;
        if (!chrome_path.empty()) {
            // Chrome timeline of this (first matching) case only: the
            // writer is per-geometry, so later cases fall back to the
            // text trace alone.
            std::ofstream chrome_os(chrome_path);
            if (!chrome_os)
                fatal("cannot open '{}' for writing", chrome_path);
            ChromeTraceWriter chrome(chrome_os, c.geom, t);
            CommandFanout fan;
            fan.addSink(trace.get());
            fan.addSink(&chrome);
            rep = runProtocolFuzz(c, t, t, &fan);
            chrome.finish();
            chrome_path.clear();
        } else {
            rep = runProtocolFuzz(c, t, t, trace.get());
        }
        ++ran;
        if (rep.ok()) {
            if (!quiet) {
                std::printf("ok   %-24s seed=%llu commands=%llu "
                            "migrations=%llu\n",
                            rep.name.c_str(),
                            static_cast<unsigned long long>(rep.seed),
                            static_cast<unsigned long long>(
                                rep.commands),
                            static_cast<unsigned long long>(
                                rep.migrationsDone));
            }
            continue;
        }
        ++failed;
        std::printf("FAIL %-24s seed=%llu commands=%llu "
                    "violations=%llu drained=%d\n",
                    rep.name.c_str(),
                    static_cast<unsigned long long>(rep.seed),
                    static_cast<unsigned long long>(rep.commands),
                    static_cast<unsigned long long>(rep.violations),
                    rep.drained ? 1 : 0);
        if (!rep.firstViolation.empty())
            std::printf("     first: %s\n", rep.firstViolation.c_str());
        std::printf("     replay: %s --seed %llu --requests %u "
                    "--engine %s --filter '%s'\n",
                    argv[0],
                    static_cast<unsigned long long>(base_seed),
                    requests, toString(engine), rep.name.c_str());
    }

    if (list_only)
        return 0;
    if (ran == 0)
        fatal("no fuzz case matches filter '{}'", filter);
    std::printf("%u case(s), %u failure(s)\n", ran, failed);
    return failed == 0 ? 0 : 1;
}
