/**
 * @file
 * dasdram_run — command-line front-end for the simulator.
 *
 * Runs any workload spec (see src/workload/workload_spec.hh: synthetic
 * Table 2 benchmarks and mixes, external trace files, or mixes of
 * both) on any DRAM design with arbitrary configuration overrides, and
 * reports either a human-readable summary, a full statistics dump, or
 * a CSV row for scripting.
 *
 * Usage: dasdram_run [options] — every value-taking option also
 * accepts the --flag=value spelling; see --help for the full list.
 *
 * Workload specs (--workload):
 *   mcf              synthetic SPEC profile (legacy spelling)
 *   spec:mcf         same, explicit
 *   M3 / spec:M3     a Table 2 four-core mix
 *   mcf,lbm          one profile per core (legacy spelling)
 *   file:t.trace     stream an external trace (ramulator, dramsim3 or
 *                    dasdram-binary format, auto-detected; .gz works
 *                    when the build found zlib)
 *   file:t.trace:cores=4   round-robin-shard one trace over 4 cores
 *   mix:spec:mcf,file:t.trace   per-core elements
 *
 * Configuration files (--config/--dump-config): --dump-config prints
 * the complete effective configuration as JSON and exits; --config
 * FILE loads such a file as the new defaults (command-line flags still
 * override it). Round trip: dasdram_run --seed 7 --dump-config > c.json
 * && dasdram_run --config c.json runs the same point.
 *
 * Trace recording (--record): re-runs the point directly (like
 * --stats) with every core's delivered trace captured to
 * <prefix>.core<i>.dastrace; replay with --workload file:<that file>.
 * The static-design profiling pre-pass is excluded from the capture.
 *
 * --trace-cmds and --trace-out are independent sinks over the same
 * command stream: both may be given at once (the controller fans out
 * to the text trace, the JSON timeline and the protocol checker).
 * Like --stats, either one reruns the point directly with the same
 * effective seed as the sweep point, so the exports match the summary.
 *
 * Runs go through the SweepRunner engine, so the effective trace seed
 * of a point is SweepRunner::pointSeed(--seed, workload, design) —
 * deterministic, and identical to the same point inside any figure
 * sweep with the same base seed.
 *
 * Snapshots (--checkpoint-out/--restore): --checkpoint-out CYCLE:PATH
 * saves a versioned binary snapshot at the first run-loop visit at or
 * after tick CYCLE ("warmup:PATH" saves right after the warm-up
 * reset); --restore PATH resumes from such a snapshot, and the resumed
 * run is bit-identical to the uninterrupted one (same stats JSONL,
 * same command-trace and span-JSONL suffix) under either engine and
 * any --channel-threads value. Both flags run the point directly —
 * no summary, and --baseline/--csv/--json do not apply. --warm-dir
 * DIR instead enables warm-start sharing inside the sweep engine:
 * each point forks from (or publishes) the warmed snapshot of its
 * config fingerprint under DIR, so re-running against the same
 * directory skips all warm-up re-simulation bit-identically.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/config.hh"
#include "common/log.hh"
#include "sim/config_cli.hh"
#include "sim/experiment.hh"
#include "sim/sweep.hh"
#include "workload/trace_file.hh"

using namespace dasdram;

namespace
{

void
applyOverrides(SimConfig &cfg, const Config &overrides)
{
    cfg.das.promotion.threshold = static_cast<unsigned>(
        overrides.getUInt("das.threshold",
                          cfg.das.promotion.threshold));
    cfg.das.translationCacheBytes = overrides.getUInt(
        "das.tcBytes", cfg.das.translationCacheBytes);
    if (overrides.has("das.replacement")) {
        cfg.das.replacement = parseFastReplPolicy(
            overrides.getString("das.replacement", "lru"));
    }
    cfg.das.exclusiveCache =
        overrides.getBool("das.exclusive", cfg.das.exclusiveCache);
    cfg.layout.groupSize = static_cast<unsigned>(
        overrides.getUInt("layout.groupSize", cfg.layout.groupSize));
    cfg.layout.fastRatioDenom = static_cast<unsigned>(overrides.getUInt(
        "layout.fastRatioDenom", cfg.layout.fastRatioDenom));
    cfg.warmupFraction =
        overrides.getDouble("sim.warmup", cfg.warmupFraction);
}

void
printSummary(const WorkloadSpec &w, const ExperimentResult &r,
             bool with_baseline, const DramGeometry &geom)
{
    const RunMetrics &m = r.metrics;
    std::printf("workload  : %s\n", w.name.c_str());
    std::printf("design    : %s\n", toString(r.design).c_str());
    for (std::size_t i = 0; i < m.ipc.size(); ++i) {
        std::printf("ipc[%zu]    : %.4f  (%s)\n", i, m.ipc[i],
                    w.parts[i].label().c_str());
    }
    if (with_baseline)
        std::printf("speedup   : %+.2f%% vs standard DRAM\n",
                    100.0 * r.perfImprovement);
    std::printf("mpki      : %.2f\n", m.mpki());
    std::printf("ppkm      : %.2f\n", m.ppkm());
    std::printf("footprint : %.1f MiB\n",
                m.footprintMiB(geom.rowBytes));
    std::uint64_t total = m.locations.total();
    if (total) {
        auto pc = [total](std::uint64_t v) {
            return 100.0 * static_cast<double>(v) /
                   static_cast<double>(total);
        };
        std::printf("locations : row-buffer %.1f%% fast %.1f%% "
                    "slow %.1f%%\n",
                    pc(m.locations.rowBuffer), pc(m.locations.fastLevel),
                    pc(m.locations.slowLevel));
    }
    std::printf("promotions: %llu\n",
                static_cast<unsigned long long>(m.promotions));
    std::printf("energy/acc: %.2f nJ\n", r.energyPerAccessNj);
}

void
printCsv(const WorkloadSpec &w, const ExperimentResult &r,
         const DramGeometry &geom)
{
    const RunMetrics &m = r.metrics;
    double mean_ipc = 0;
    for (double v : m.ipc)
        mean_ipc += v;
    mean_ipc /= static_cast<double>(m.ipc.size());
    std::printf("%s,%s,%.6f,%.6f,%.3f,%.3f,%.1f,%llu,%.3f\n",
                w.name.c_str(), toString(r.design).c_str(), mean_ipc,
                r.perfImprovement, m.mpki(), m.ppkm(),
                m.footprintMiB(geom.rowBytes),
                static_cast<unsigned long long>(m.promotions),
                r.energyPerAccessNj);
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("dasdram_run",
                  "run one workload on one DRAM design (see the header "
                  "of tools/dasdram_run.cc)");
    cli.option("--workload", "SPEC",
               "workload spec: name|M1..M8|b1,b2,..|spec:..|file:..|"
               "mix:.. (default mcf)")
        .option("--design", "D",
                "standard|sas|charm|das|das-fm|fs (default das)")
        .optionUInt("--instructions", "N",
                    "instructions per core (default 4000000)")
        .optionUInt("--seed", "N", "workload seed (default 42)")
        .option("--engine", "E", "tick|event (default event)")
        .optionUInt("--jobs", "N",
                    "worker threads (default: DAS_JOBS env, else "
                    "hardware)")
        .option("--json", "FILE", "JSONL export of every point that ran")
        .toggle("--check", "online DRAM protocol checker (default on)")
        .option("--trace-cmds", "FILE",
                "write every issued DRAM command as text (direct rerun)")
        .option("--trace-out", "FILE",
                "Chrome trace_event JSON timeline (direct rerun)")
        .option("--stats-out", "FILE",
                "schema-versioned stats JSONL dump (direct rerun)")
        .option("--record", "PREFIX",
                "capture each core's trace to PREFIX.core<i>.dastrace "
                "(direct rerun)")
        .optionDouble("--trace-requests", "RATE",
                      "sample RATE of memory requests with lifecycle "
                      "spans, 0..1 (direct rerun)")
        .option("--spans-out", "FILE",
                "request-span JSONL export; needs --trace-requests "
                "(direct rerun)")
        .optionUInt("--epoch", "N",
                    "stats time-series epoch in memory cycles (0 = off)")
        .optionUInt("--channel-threads", "N",
                    "threads advancing DRAM channels inside the memory "
                    "clock (bit-identical results; default 1)")
        .flag("--baseline",
              "also run standard DRAM and report the improvement")
        .flag("--stats", "dump the full stats tree (direct rerun)")
        .flag("--csv", "one CSV row to stdout")
        .option("--checkpoint-out", "CYCLE:PATH",
                "save a snapshot at tick CYCLE (or 'warmup:PATH' for "
                "right after the warm-up reset); repeatable; runs the "
                "point directly")
        .option("--restore", "PATH",
                "resume from a snapshot saved by --checkpoint-out; "
                "runs the point directly")
        .option("--warm-dir", "DIR",
                "warm-start checkpoint directory shared by sweep "
                "points (see the header of tools/dasdram_run.cc)")
        .option("--set", "key=value",
                "config override, repeatable: das.threshold, "
                "das.tcBytes, das.replacement, das.exclusive, "
                "layout.groupSize, layout.fastRatioDenom, sim.warmup");
    addConfigOptions(cli);
    cli.parse(argc, argv);

    SimConfig cfg;
    cfg.instructionsPerCore = 4'000'000;
    loadConfigFile(cli, cfg);
    if (cli.given("--workload"))
        cfg.workload = cli.str("--workload");
    if (cli.given("--design"))
        cfg.design = parseDesign(cli.str("--design"));
    if (cli.given("--instructions"))
        cfg.instructionsPerCore = cli.uns("--instructions", 0);
    if (cli.given("--seed"))
        cfg.seed = cli.uns("--seed", 0);
    if (cli.given("--engine"))
        cfg.engine = parseEngine(cli.str("--engine"));
    if (cli.given("--epoch"))
        cfg.obs.epochMemCycles = cli.uns("--epoch", 0);
    if (cli.given("--channel-threads")) {
        cfg.channelThreads =
            static_cast<unsigned>(cli.uns("--channel-threads", 0));
        if (cfg.channelThreads == 0)
            fatal("--channel-threads needs a positive integer");
    }
    cfg.protocolCheck = cli.enabled("--check", cfg.protocolCheck);

    unsigned jobs = static_cast<unsigned>(cli.uns("--jobs", 0));
    if (cli.given("--jobs") && jobs == 0)
        fatal("--jobs needs a positive integer");

    applySimScale(cfg);
    Config overrides;
    for (const std::string &kv : cli.strs("--set")) {
        if (!overrides.applyOverride(kv))
            fatal("malformed --set argument (need key=value)");
    }
    applyOverrides(cfg, overrides);

    if (dumpConfigIfRequested(cli, cfg))
        return 0;

    WorkloadSpec w = WorkloadSpec::parse(cfg.workload);
    DesignKind kind = cfg.design;
    bool with_baseline = cli.given("--baseline");
    bool csv = cli.given("--csv");

    // The snapshot flags run the point directly: a restore exists to
    // skip re-simulation, so the summary pass through the sweep engine
    // (and everything computed from it) does not apply.
    std::vector<std::string> checkpoint_specs =
        cli.strs("--checkpoint-out");
    std::string restore_path = cli.str("--restore");
    bool direct_only = !checkpoint_specs.empty() || !restore_path.empty();
    if (direct_only && (with_baseline || csv || cli.given("--json")))
        fatal("--checkpoint-out/--restore run the point directly; "
              "--baseline, --csv and --json do not apply");

    if (!direct_only) {
        // Every run goes through the sweep engine; with --baseline the
        // standard point and the design point are two grid points, so
        // --jobs 2 runs them concurrently.
        SweepRunner sweep(cfg, jobs);
        if (cli.given("--warm-dir"))
            sweep.setWarmStartDir(cli.str("--warm-dir"));
        std::size_t result_index = 0;
        if (with_baseline || csv) {
            sweep.add(w, DesignKind::Standard);
            result_index = sweep.add(w, kind);
        } else {
            // Raw metrics only: skip the baseline simulation entirely.
            result_index = sweep.add(
                SweepPoint{w, kind, {}, {}, /*needBaseline=*/false});
        }
        std::vector<ExperimentResult> results = sweep.run();
        const ExperimentResult &r = results[result_index];

        if (cli.given("--json")) {
            std::ofstream os(cli.str("--json"));
            if (!os)
                fatal("cannot open '{}' for writing", cli.str("--json"));
            writeJsonLines(os, results);
        }

        if (csv) {
            printCsv(w, r, cfg.geom);
        } else {
            printSummary(w, r, with_baseline || csv, cfg.geom);
        }
    }

    std::string trace_path = cli.str("--trace-cmds");
    std::string trace_out = cli.str("--trace-out");
    std::string stats_out = cli.str("--stats-out");
    std::string record_prefix = cli.str("--record");
    double trace_requests = cli.dbl("--trace-requests", 0.0);
    std::string spans_out = cli.str("--spans-out");
    if (!spans_out.empty() && trace_requests <= 0.0)
        fatal("--spans-out requires --trace-requests > 0");
    if (trace_requests < 0.0 || trace_requests > 1.0)
        fatal("--trace-requests must be in [0, 1], got {}",
              trace_requests);
    if (direct_only && !record_prefix.empty())
        fatal("--record cannot be combined with --checkpoint-out/"
              "--restore (recorder file positions are not part of a "
              "snapshot)");
    if (cli.given("--stats") || !trace_path.empty() ||
        !trace_out.empty() || !stats_out.empty() ||
        !record_prefix.empty() || trace_requests > 0.0 || direct_only) {
        // Re-run with direct System access for the stats tree, the
        // command trace, the observability exports and/or the trace
        // recording, using the same effective seed as the sweep point
        // above so the dumps match the summary.
        SimConfig scfg = cfg;
        scfg.design = kind;
        scfg.seed = SweepRunner::pointSeed(cfg.seed, w.name, kind);
        scfg.numCores = w.numCores();
        scfg.obs.workloadName = w.name;
        scfg.obs.statsOut = stats_out;
        scfg.obs.traceOut = trace_out;
        scfg.obs.traceRequests = trace_requests;
        scfg.obs.spansOut = spans_out;
        auto traces = buildTraces(w, scfg.seed, scfg.geom.rowBytes,
                                  scfg.geom.lineBytes);
        std::vector<std::unique_ptr<TraceRecorder>> recorders;
        std::vector<TraceSource *> ptrs;
        for (unsigned i = 0; i < scfg.numCores; ++i) {
            TraceSource *src = traces[i].get();
            if (!record_prefix.empty()) {
                recorders.push_back(std::make_unique<TraceRecorder>(
                    *src, formatStr("{}.core{}.dastrace",
                                    record_prefix, i)));
                src = recorders.back().get();
            }
            ptrs.push_back(src);
        }
        System sys(scfg, ptrs);
        std::ofstream trace_os;
        if (!trace_path.empty()) {
            trace_os.open(trace_path);
            if (!trace_os)
                fatal("cannot open '{}' for writing", trace_path);
            sys.attachCommandTrace(trace_os);
        }
        if (!restore_path.empty())
            sys.loadSnapshot(restore_path);
        for (const std::string &spec : checkpoint_specs) {
            std::size_t colon = spec.find(':');
            if (colon == std::string::npos || colon + 1 == spec.size())
                fatal("--checkpoint-out needs CYCLE:PATH or "
                      "warmup:PATH, got '{}'",
                      spec);
            std::string when = spec.substr(0, colon);
            std::string path = spec.substr(colon + 1);
            if (when == "warmup") {
                sys.checkpointAtWarmup(path);
            } else {
                char *end = nullptr;
                unsigned long long tick =
                    std::strtoull(when.c_str(), &end, 10);
                if (end == when.c_str() || *end != '\0')
                    fatal("bad --checkpoint-out cycle '{}'", when);
                sys.scheduleCheckpoint(tick, path);
            }
        }
        sys.run();
        for (auto &rec : recorders) {
            rec->close();
            inform("recorded {} trace record(s)", rec->recorded());
        }
        if (const RequestTracer *t = sys.requestTracer()) {
            inform("request tracing: sampled {} of {} requests "
                   "(rate {})",
                   t->sampled(), t->decisions(), t->rate());
        }
        if (cli.given("--stats"))
            sys.dumpStats(std::cout);
    }
    return 0;
}
