/**
 * @file
 * dasdram_run — command-line front-end for the simulator.
 *
 * Runs any workload (a Table 2 benchmark, a mix M1-M8, or a
 * comma-separated list of benchmarks, one per core) on any DRAM design
 * with arbitrary configuration overrides, and reports either a
 * human-readable summary, a full statistics dump, or a CSV row for
 * scripting.
 *
 * Usage:
 *   dasdram_run [options]
 *     --workload <name|M1..M8|b1,b2,...>   (default: mcf)
 *     --design <standard|sas|charm|das|das-fm|fs>  (default: das)
 *     --instructions <N per core>          (default: 4000000)
 *     --baseline                           also run standard DRAM and
 *                                          report the improvement
 *     --stats                              dump the full stats tree
 *     --csv                                one CSV row to stdout
 *     --json <file>                        append-free JSONL export of
 *                                          every point that ran
 *     --jobs <N>                           worker threads for the
 *                                          sweep (default: DAS_JOBS
 *                                          env, else hardware); with
 *                                          --baseline the baseline and
 *                                          the design run in parallel
 *     --seed <N>                           workload seed
 *     --engine <tick|event>                simulation engine (default:
 *                                          event). The event engine
 *                                          skips provably idle cycles
 *                                          and is bit-identical to the
 *                                          tick reference (enforced by
 *                                          ctest -L differential); use
 *                                          --engine tick for the oracle
 *     --check / --no-check                 enable/disable the online
 *                                          DRAM protocol checker
 *                                          (default: enabled; a
 *                                          violation aborts the run)
 *     --trace-cmds <file>                  write every DRAM command the
 *                                          controller issues to <file>
 *                                          as one text line per command
 *                                          (runs the point directly,
 *                                          like --stats)
 *     --trace-out <file>                   write a Chrome trace_event
 *                                          JSON timeline (one track per
 *                                          bank, migration spans,
 *                                          promotion instants) to
 *                                          <file>; open it in
 *                                          chrome://tracing or Perfetto
 *     --stats-out <file>                   write the schema-versioned
 *                                          stats JSONL dump (latency
 *                                          histograms with p50/p99,
 *                                          epoch series) to <file>;
 *                                          feed it to dasdram_report
 *     --epoch <N>                          epoch length of the stats
 *                                          time-series in memory cycles
 *                                          (default 0 = no series)
 *     --set key=value                      config override, repeatable:
 *         das.threshold, das.tcBytes, das.replacement, das.exclusive,
 *         layout.groupSize, layout.fastRatioDenom, sim.warmup
 *
 * Every value-taking option also accepts the --flag=value spelling.
 *
 * --trace-cmds and --trace-out are independent sinks over the same
 * command stream: both may be given at once (the controller fans out
 * to the text trace, the JSON timeline and the protocol checker).
 * Like --stats, either one reruns the point directly with the same
 * effective seed as the sweep point, so the exports match the summary.
 *
 * Runs go through the SweepRunner engine, so the effective trace seed
 * of a point is SweepRunner::pointSeed(--seed, workload, design) —
 * deterministic, and identical to the same point inside any figure
 * sweep with the same base seed.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/sweep.hh"

using namespace dasdram;

namespace
{

WorkloadSpec
parseWorkload(const std::string &name)
{
    if (name.size() == 2 && name[0] == 'M' && name[1] >= '1' &&
        name[1] <= '8') {
        return WorkloadSpec::mix(static_cast<std::size_t>(name[1] - '1'));
    }
    if (name.find(',') == std::string::npos)
        return WorkloadSpec::single(name);
    WorkloadSpec w;
    w.name = name;
    std::size_t pos = 0;
    while (pos != std::string::npos) {
        std::size_t comma = name.find(',', pos);
        std::string bench =
            comma == std::string::npos
                ? name.substr(pos)
                : name.substr(pos, comma - pos);
        if (!bench.empty())
            w.benchmarks.push_back(bench);
        pos = comma == std::string::npos ? comma : comma + 1;
    }
    if (w.benchmarks.empty())
        fatal("empty workload list '{}'", name);
    return w;
}

void
applyOverrides(SimConfig &cfg, const Config &overrides)
{
    cfg.das.promotion.threshold = static_cast<unsigned>(
        overrides.getUInt("das.threshold",
                          cfg.das.promotion.threshold));
    cfg.das.translationCacheBytes = overrides.getUInt(
        "das.tcBytes", cfg.das.translationCacheBytes);
    if (overrides.has("das.replacement")) {
        cfg.das.replacement = parseFastReplPolicy(
            overrides.getString("das.replacement", "lru"));
    }
    cfg.das.exclusiveCache =
        overrides.getBool("das.exclusive", cfg.das.exclusiveCache);
    cfg.layout.groupSize = static_cast<unsigned>(
        overrides.getUInt("layout.groupSize", cfg.layout.groupSize));
    cfg.layout.fastRatioDenom = static_cast<unsigned>(overrides.getUInt(
        "layout.fastRatioDenom", cfg.layout.fastRatioDenom));
    cfg.warmupFraction =
        overrides.getDouble("sim.warmup", cfg.warmupFraction);
}

void
printSummary(const WorkloadSpec &w, const ExperimentResult &r,
             bool with_baseline, const DramGeometry &geom)
{
    const RunMetrics &m = r.metrics;
    std::printf("workload  : %s\n", w.name.c_str());
    std::printf("design    : %s\n", toString(r.design).c_str());
    for (std::size_t i = 0; i < m.ipc.size(); ++i) {
        std::printf("ipc[%zu]    : %.4f  (%s)\n", i, m.ipc[i],
                    w.benchmarks[i].c_str());
    }
    if (with_baseline)
        std::printf("speedup   : %+.2f%% vs standard DRAM\n",
                    100.0 * r.perfImprovement);
    std::printf("mpki      : %.2f\n", m.mpki());
    std::printf("ppkm      : %.2f\n", m.ppkm());
    std::printf("footprint : %.1f MiB\n",
                m.footprintMiB(geom.rowBytes));
    std::uint64_t total = m.locations.total();
    if (total) {
        auto pc = [total](std::uint64_t v) {
            return 100.0 * static_cast<double>(v) /
                   static_cast<double>(total);
        };
        std::printf("locations : row-buffer %.1f%% fast %.1f%% "
                    "slow %.1f%%\n",
                    pc(m.locations.rowBuffer), pc(m.locations.fastLevel),
                    pc(m.locations.slowLevel));
    }
    std::printf("promotions: %llu\n",
                static_cast<unsigned long long>(m.promotions));
    std::printf("energy/acc: %.2f nJ\n", r.energyPerAccessNj);
}

void
printCsv(const WorkloadSpec &w, const ExperimentResult &r,
         const DramGeometry &geom)
{
    const RunMetrics &m = r.metrics;
    double mean_ipc = 0;
    for (double v : m.ipc)
        mean_ipc += v;
    mean_ipc /= static_cast<double>(m.ipc.size());
    std::printf("%s,%s,%.6f,%.6f,%.3f,%.3f,%.1f,%llu,%.3f\n",
                w.name.c_str(), toString(r.design).c_str(), mean_ipc,
                r.perfImprovement, m.mpki(), m.ppkm(),
                m.footprintMiB(geom.rowBytes),
                static_cast<unsigned long long>(m.promotions),
                r.energyPerAccessNj);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "mcf";
    std::string design = "das";
    InstCount instructions = 4'000'000;
    bool with_baseline = false;
    bool dump_stats = false;
    bool csv = false;
    std::uint64_t seed = 42;
    unsigned jobs = 0;
    std::string json_path;
    std::string trace_path;
    std::string trace_out;
    std::string stats_out;
    Cycle epoch = 0;
    bool protocol_check = true;
    SimEngine engine = SimEngine::Event;
    Config overrides;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept --flag=value as well as --flag value. Split at the
        // first '=' only, so --set=key=value keeps its key=value part.
        std::string inline_value;
        bool has_inline = false;
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
            if (std::size_t eq = arg.find('=');
                eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.erase(eq);
                has_inline = true;
            }
        }
        auto need_value = [&](const char *flag) -> std::string {
            if (has_inline) {
                has_inline = false;
                return inline_value;
            }
            if (i + 1 >= argc)
                fatal("missing value for {}", flag);
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = need_value("--workload");
        } else if (arg == "--design") {
            design = need_value("--design");
        } else if (arg == "--instructions") {
            instructions = std::strtoull(
                need_value("--instructions").c_str(), nullptr, 0);
        } else if (arg == "--seed") {
            seed = std::strtoull(need_value("--seed").c_str(), nullptr,
                                 0);
        } else if (arg == "--engine") {
            engine = parseEngine(need_value("--engine"));
        } else if (arg == "--jobs") {
            jobs = static_cast<unsigned>(std::strtoul(
                need_value("--jobs").c_str(), nullptr, 10));
            if (jobs == 0)
                fatal("--jobs needs a positive integer");
        } else if (arg == "--json") {
            json_path = need_value("--json");
        } else if (arg == "--check") {
            protocol_check = true;
        } else if (arg == "--no-check") {
            protocol_check = false;
        } else if (arg == "--trace-cmds") {
            trace_path = need_value("--trace-cmds");
        } else if (arg == "--trace-out") {
            trace_out = need_value("--trace-out");
        } else if (arg == "--stats-out") {
            stats_out = need_value("--stats-out");
        } else if (arg == "--epoch") {
            epoch = std::strtoull(need_value("--epoch").c_str(),
                                  nullptr, 10);
        } else if (arg == "--baseline") {
            with_baseline = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--set") {
            if (!overrides.applyOverride(need_value("--set")))
                fatal("malformed --set argument (need key=value)");
        } else if (arg == "--help" || arg == "-h") {
            std::printf("see the header of tools/dasdram_run.cc\n");
            return 0;
        } else {
            fatal("unknown argument '{}'", arg);
        }
        if (has_inline)
            fatal("'{}' takes no value", arg);
    }

    SimConfig cfg;
    cfg.instructionsPerCore = instructions;
    cfg.seed = seed;
    cfg.engine = engine;
    cfg.protocolCheck = protocol_check;
    applySimScale(cfg);
    applyOverrides(cfg, overrides);

    WorkloadSpec w = parseWorkload(workload);
    DesignKind kind = parseDesign(design);

    // Every run goes through the sweep engine; with --baseline the
    // standard point and the design point are two grid points, so
    // --jobs 2 runs them concurrently.
    SweepRunner sweep(cfg, jobs);
    std::size_t result_index = 0;
    if (with_baseline || csv) {
        sweep.add(w, DesignKind::Standard);
        result_index = sweep.add(w, kind);
    } else {
        // Raw metrics only: skip the baseline simulation entirely.
        result_index = sweep.add(
            SweepPoint{w, kind, {}, {}, /*needBaseline=*/false});
    }
    std::vector<ExperimentResult> results = sweep.run();
    const ExperimentResult &r = results[result_index];

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os)
            fatal("cannot open '{}' for writing", json_path);
        writeJsonLines(os, results);
    }

    if (csv) {
        printCsv(w, r, cfg.geom);
    } else {
        printSummary(w, r, with_baseline || csv, cfg.geom);
    }

    if (dump_stats || !trace_path.empty() || !trace_out.empty() ||
        !stats_out.empty()) {
        // Re-run with direct System access for the stats tree, the
        // command trace and/or the observability exports, using the
        // same effective seed as the sweep point above so the dumps
        // match the summary.
        SimConfig scfg = cfg;
        scfg.design = kind;
        scfg.seed = SweepRunner::pointSeed(cfg.seed, w.name, kind);
        scfg.numCores = static_cast<unsigned>(w.benchmarks.size());
        scfg.obs.workloadName = w.name;
        scfg.obs.statsOut = stats_out;
        scfg.obs.traceOut = trace_out;
        scfg.obs.epochMemCycles = epoch;
        std::vector<std::unique_ptr<SyntheticTrace>> traces;
        std::vector<TraceSource *> ptrs;
        for (unsigned i = 0; i < scfg.numCores; ++i) {
            traces.push_back(std::make_unique<SyntheticTrace>(
                specProfile(w.benchmarks[i]),
                scfg.seed * 1000003 + i * 7919 + 1, scfg.geom.rowBytes,
                scfg.geom.lineBytes));
            ptrs.push_back(traces.back().get());
        }
        System sys(scfg, ptrs);
        std::ofstream trace_os;
        if (!trace_path.empty()) {
            trace_os.open(trace_path);
            if (!trace_os)
                fatal("cannot open '{}' for writing", trace_path);
            sys.attachCommandTrace(trace_os);
        }
        sys.run();
        if (dump_stats)
            sys.dumpStats(std::cout);
    }
    return 0;
}
