/**
 * @file
 * dasdram_report — renders stats-JSONL dumps (see
 * src/common/stats_jsonl.hh) into a human-readable comparison table,
 * and validates Chrome trace_event JSON files.
 *
 * Usage:
 *   dasdram_report stats_a.jsonl [stats_b.jsonl ...]
 *       One table row per file (design × workload), with the read
 *       count, the read-latency percentiles p50/p90/p99/p99.9 and the
 *       mean from the cross-channel rollup histogram, the fast/slow
 *       row-class p99 split, and the p99 delta of every later file
 *       against the first one — so
 *           dasdram_report sas.jsonl das.jsonl
 *       is the SAS-vs-DAS latency-percentile comparison. Latencies in
 *       the rollup are memory-controller cycles (1.25 ns each); the
 *       table converts to nanoseconds.
 *
 *   --metric NAME      add one column per occurrence: the named
 *                      record's p99 (histogram), mean (distribution)
 *                      or value (counter/formula), in raw units.
 *                      Run --list to see the available names.
 *   --list             print every record of every file (name, type,
 *                      headline value) instead of the table
 *   --check-trace FILE parse FILE as Chrome trace_event JSON and
 *                      verify it has a non-empty traceEvents array;
 *                      prints the event count, exits non-zero when the
 *                      file is malformed (used by the observability
 *                      smoke tests)
 *
 * Every value-taking option also accepts the --flag=value spelling.
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/schema_check.hh"
#include "common/stats_jsonl.hh"
#include "sim/config_cli.hh"

using namespace dasdram;

namespace
{

/** Memory-controller cycle length in nanoseconds (DDR3-1600). */
constexpr double kMemCycleNs = 1.25;

/** One parsed stats-JSONL file: records keyed by "type|name". */
struct StatsFile
{
    std::string path;
    int version = -1;                        ///< meta schema version
    JsonValue meta;                          ///< the meta record
    std::map<std::string, JsonValue> records; ///< all typed records
};

double
numField(const JsonValue &v, const char *key, double fallback = 0.0)
{
    const JsonValue *f = v.find(key);
    return f && f->isNumber() ? f->number : fallback;
}

std::string
strField(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    return f && f->isString() ? f->string : std::string();
}

StatsFile
loadStatsFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '{}'", path);
    StatsFile file;
    file.path = path;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue v;
        std::string err;
        if (!parseJson(line, v, &err))
            fatal("{}:{}: malformed JSON: {}", path, lineno, err);
        std::string type = strField(v, "type");
        if (type == "meta") {
            file.version = checkJsonlSchema(
                path, kStatsJsonlSchema, strField(v, "schema"),
                static_cast<int>(numField(v, "version", -1.0)),
                kStatsJsonlVersion, "dasdram_report");
            file.meta = std::move(v);
        } else if (type == "epoch") {
            // Epochs are a per-run time-series, not a comparison
            // metric; the table ignores them.
        } else if (!type.empty()) {
            file.records.emplace(type + "|" + strField(v, "name"),
                                 std::move(v));
        }
    }
    if (file.meta.kind == JsonValue::Kind::Null)
        fatal("{}: no meta record — is this a stats-JSONL dump?", path);
    return file;
}

/** The record named @p name of any type, or nullptr. */
const JsonValue *
findRecord(const StatsFile &f, const std::string &name)
{
    for (const char *type : {"hist", "dist", "counter", "formula"}) {
        auto it = f.records.find(std::string(type) + "|" + name);
        if (it != f.records.end())
            return &it->second;
    }
    return nullptr;
}

std::string
fmt(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

/** The headline scalar of a record: hist p99, dist mean, else value. */
double
headline(const JsonValue &rec)
{
    std::string type = strField(rec, "type");
    if (type == "hist")
        return numField(rec, "p99");
    if (type == "dist")
        return numField(rec, "mean");
    return numField(rec, "value");
}

void
listRecords(const StatsFile &f)
{
    std::printf("%s  (schema v%d workload=%s design=%s label=%s)\n",
                f.path.c_str(), f.version,
                strField(f.meta, "workload").c_str(),
                strField(f.meta, "design").c_str(),
                strField(f.meta, "label").c_str());
    for (const auto &[key, rec] : f.records) {
        std::printf("  %-8s %-48s %.4g\n",
                    strField(rec, "type").c_str(),
                    strField(rec, "name").c_str(), headline(rec));
    }
}

int
checkTrace(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << is.rdbuf();
    JsonValue v;
    std::string err;
    if (!parseJson(ss.str(), v, &err)) {
        std::fprintf(stderr, "error: %s: malformed JSON: %s\n",
                     path.c_str(), err.c_str());
        return 1;
    }
    const JsonValue *events = v.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr,
                     "error: %s: no traceEvents array\n", path.c_str());
        return 1;
    }
    if (events->array.empty()) {
        std::fprintf(stderr, "error: %s: traceEvents is empty\n",
                     path.c_str());
        return 1;
    }
    // Every event needs at least a phase and a name.
    for (const JsonValue &e : events->array) {
        if (!e.isObject() || !e.find("ph") || !e.find("name")) {
            std::fprintf(stderr,
                         "error: %s: event without ph/name\n",
                         path.c_str());
            return 1;
        }
    }
    std::printf("%s: valid Chrome trace, %zu events\n", path.c_str(),
                events->array.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("dasdram_report",
                  "render stats-JSONL dumps as a comparison table "
                  "(see the header of tools/dasdram_report.cc)");
    cli.option("--metric", "NAME",
               "add one column per occurrence: the named record's "
               "headline value (see --list)")
        .option("--check-trace", "FILE",
                "validate FILE as Chrome trace_event JSON instead")
        .flag("--list",
              "print every record of every file instead of the table")
        .positionals("stats-jsonl", "stats-JSONL dumps to tabulate", 0);
    addConfigOptions(cli);
    cli.parse(argc, argv);

    // The uniform --config protocol (analysis tools load and validate
    // the configuration — unknown keys fatal — and round-trip it via
    // --dump-config; this tool needs nothing further from it).
    SimConfig cfg;
    loadConfigFile(cli, cfg);
    if (dumpConfigIfRequested(cli, cfg))
        return 0;

    const std::vector<std::string> &paths = cli.positionalValues();
    const std::vector<std::string> &metrics = cli.strs("--metric");
    std::string check_path = cli.str("--check-trace");
    bool list_only = cli.given("--list");

    if (!check_path.empty())
        return checkTrace(check_path);
    if (paths.empty())
        fatal("no stats-JSONL files given (try --help)");

    std::vector<StatsFile> files;
    for (const std::string &p : paths)
        files.push_back(loadStatsFile(p));

    // Comparing dumps with different record shapes silently produces
    // nonsense deltas; refuse mixed schema versions up front.
    for (const StatsFile &f : files) {
        std::printf("%s: stats-JSONL schema version %d\n",
                    f.path.c_str(), f.version);
        if (f.version != files.front().version) {
            fatal("stats-JSONL version mismatch: '{}' is version {} "
                  "but '{}' is version {}; re-run the older dump with "
                  "a matching build before diffing",
                  files.front().path, files.front().version, f.path,
                  f.version);
        }
    }

    if (list_only) {
        for (const StatsFile &f : files)
            listRecords(f);
        return 0;
    }

    // Comparison table: one row per file, percentiles in ns.
    std::vector<std::string> header = {"workload", "design",  "label",
                                       "reads",    "p50(ns)", "p90(ns)",
                                       "p99(ns)",  "p99.9(ns)",
                                       "mean(ns)", "fast p99",
                                       "slow p99", "d(p99)"};
    for (const std::string &m : metrics)
        header.push_back(m);

    std::vector<std::vector<std::string>> rows;
    double first_p99 = 0.0;
    for (std::size_t fi = 0; fi < files.size(); ++fi) {
        const StatsFile &f = files[fi];
        const JsonValue *all = findRecord(f, "rollup.readLatency");
        if (!all) {
            fatal("{}: no rollup.readLatency histogram (old dump?)",
                  f.path);
        }
        const JsonValue *fast = findRecord(f, "rollup.readLatencyFast");
        const JsonValue *slow = findRecord(f, "rollup.readLatencySlow");
        double p99 = numField(*all, "p99") * kMemCycleNs;
        if (fi == 0)
            first_p99 = p99;
        std::vector<std::string> row = {
            strField(f.meta, "workload"),
            strField(f.meta, "design"),
            strField(f.meta, "label"),
            fmt(numField(*all, "count"), 0),
            fmt(numField(*all, "p50") * kMemCycleNs, 1),
            fmt(numField(*all, "p90") * kMemCycleNs, 1),
            fmt(p99, 1),
            fmt(numField(*all, "p999") * kMemCycleNs, 1),
            fmt(numField(*all, "mean") * kMemCycleNs, 1),
            fast && numField(*fast, "count") > 0
                ? fmt(numField(*fast, "p99") * kMemCycleNs, 1)
                : "-",
            slow && numField(*slow, "count") > 0
                ? fmt(numField(*slow, "p99") * kMemCycleNs, 1)
                : "-",
            fi == 0 ? std::string("-")
                    : (p99 >= first_p99 ? "+" : "") +
                          fmt(p99 - first_p99, 1),
        };
        for (const std::string &m : metrics) {
            const JsonValue *rec = findRecord(f, m);
            row.push_back(rec ? fmt(headline(*rec), 2) : "-");
        }
        rows.push_back(std::move(row));
    }

    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());
    auto print_row = [&](const std::vector<std::string> &r) {
        for (std::size_t c = 0; c < r.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(width[c]),
                        r[c].c_str());
        std::printf("\n");
    };
    print_row(header);
    for (const auto &r : rows)
        print_row(r);
    return 0;
}
