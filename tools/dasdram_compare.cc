/**
 * @file
 * dasdram_compare — diff two JSONL sweep-result files.
 *
 * The figure binaries and dasdram_run export one JSON object per
 * sweep point (--json FILE). This tool matches points between two
 * such files by (workload, design, label) and compares every numeric
 * field, recursively. Exit status 0 means equal (within --tolerance),
 * 1 means differences were found, 2 means usage or parse errors.
 *
 * Usage:
 *   dasdram_compare A.jsonl B.jsonl [--tolerance REL] [--quiet]
 *
 * With the default tolerance 0 this is an exact byte-level-equivalent
 * check on the numbers — what the determinism guarantee promises for
 * the same sweep at different --jobs values. A small tolerance (e.g.
 * --tolerance 1e-6) turns it into a regression gate for intentional
 * model changes; it applies symmetrically, so swapping A and B never
 * changes the verdict (see common/jsonl_diff.hh for the exact rule,
 * including NaN/infinity semantics).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/jsonl_diff.hh"
#include "sim/config_cli.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    CliParser cli("dasdram_compare",
                  "diff two JSONL sweep-result files (exit 0 equal, "
                  "1 differences, 2 usage/parse errors)");
    cli.optionDouble("--tolerance", "REL",
                     "symmetric relative tolerance (default 0 = exact)")
        .flag("--quiet", "no per-field output, just the exit status")
        .positionals("jsonl-file", "the two files to compare", 0, 2);
    addConfigOptions(cli);

    // A usage error (including a malformed --tolerance number, which
    // the parser rejects) is exit status 2, not 1 — 1 means "compared
    // and found differences".
    std::string err;
    if (!cli.tryParse(argc, argv, err)) {
        std::fprintf(stderr, "dasdram_compare: %s\n%s", err.c_str(),
                     cli.usage().c_str());
        return 2;
    }
    if (cli.helpRequested()) {
        std::fputs(cli.usage().c_str(), stdout);
        return 0;
    }

    // The uniform --config protocol (analysis tools load and validate
    // the configuration — unknown keys fatal — and round-trip it via
    // --dump-config; this tool needs nothing further from it).
    SimConfig cfg;
    loadConfigFile(cli, cfg);
    if (dumpConfigIfRequested(cli, cfg))
        return 0;
    if (cli.positionalValues().size() != 2) {
        std::fprintf(stderr,
                     "dasdram_compare: need exactly two jsonl-file "
                     "arguments\n%s",
                     cli.usage().c_str());
        return 2;
    }

    double tolerance = cli.dbl("--tolerance", 0.0);
    bool quiet = cli.given("--quiet");
    std::string file_a = cli.positionalValues()[0];
    std::string file_b = cli.positionalValues()[1];

    JsonlRecordMap a, b;
    if (!loadJsonlRecords(file_a, a, &err) ||
        !loadJsonlRecords(file_b, b, &err)) {
        std::fprintf(stderr, "dasdram_compare: %s\n", err.c_str());
        return 2;
    }

    auto report = [&](const std::string &path, const std::string &msg) {
        if (!quiet)
            std::printf("  %-40s %s\n", path.c_str(), msg.c_str());
    };

    std::size_t diffs = 0;
    std::size_t compared = 0;
    for (const auto &[key, av] : a) {
        auto it = b.find(key);
        if (it == b.end()) {
            if (!quiet)
                std::printf("only in %s: %s\n", file_a.c_str(),
                            key.c_str());
            ++diffs;
            continue;
        }
        ++compared;
        std::size_t d =
            diffJsonValues("", av, it->second, tolerance, report);
        if (d && !quiet)
            std::printf("^ point: %s (%zu field diffs)\n", key.c_str(),
                        d);
        diffs += d;
    }
    for (const auto &[key, bv] : b) {
        (void)bv;
        if (!a.count(key)) {
            if (!quiet)
                std::printf("only in %s: %s\n", file_b.c_str(),
                            key.c_str());
            ++diffs;
        }
    }

    if (!quiet) {
        std::printf("%zu point(s) compared, %zu difference(s)%s\n",
                    compared, diffs,
                    tolerance > 0.0 ? " (with tolerance)" : "");
    }
    return diffs == 0 ? 0 : 1;
}
