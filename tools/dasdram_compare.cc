/**
 * @file
 * dasdram_compare — diff two JSONL sweep-result files.
 *
 * The figure binaries and dasdram_run export one JSON object per
 * sweep point (--json FILE). This tool matches points between two
 * such files by (workload, design, label) and compares every numeric
 * field, recursively. Exit status 0 means equal (within --tolerance),
 * 1 means differences were found, 2 means usage or parse errors.
 *
 * Usage:
 *   dasdram_compare A.jsonl B.jsonl [--tolerance REL] [--quiet]
 *
 * With the default tolerance 0 this is an exact byte-level-equivalent
 * check on the numbers — what the determinism guarantee promises for
 * the same sweep at different --jobs values. A small tolerance (e.g.
 * --tolerance 1e-6) turns it into a regression gate for intentional
 * model changes.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"

using namespace dasdram;

namespace
{

struct Options
{
    std::string fileA, fileB;
    double tolerance = 0.0;
    bool quiet = false;
};

/** (workload, design, label) → parsed record. */
using RecordMap = std::map<std::string, JsonValue>;

std::string
recordKey(const JsonValue &v)
{
    auto str = [&](const char *name) {
        const JsonValue *f = v.find(name);
        return f && f->isString() ? f->string : std::string("?");
    };
    return str("workload") + " | " + str("design") + " | " +
           str("label");
}

bool
loadJsonl(const std::string &path, RecordMap &out)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "dasdram_compare: cannot open '%s'\n",
                     path.c_str());
        return false;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue v;
        std::string err;
        if (!parseJson(line, v, &err)) {
            std::fprintf(stderr, "dasdram_compare: %s:%zu: %s\n",
                         path.c_str(), lineno, err.c_str());
            return false;
        }
        if (!v.isObject()) {
            std::fprintf(stderr,
                         "dasdram_compare: %s:%zu: not an object\n",
                         path.c_str(), lineno);
            return false;
        }
        out[recordKey(v)] = std::move(v);
    }
    return true;
}

bool
numbersEqual(double a, double b, double tol)
{
    if (a == b)
        return true;
    if (tol <= 0.0)
        return false;
    double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= tol * std::max(scale, 1.0);
}

/** Recursively diff @p a vs @p b; report under @p path. Returns the
 *  number of differences found. */
std::size_t
diffValues(const std::string &path, const JsonValue &a,
           const JsonValue &b, const Options &opts)
{
    auto report = [&](const std::string &msg) {
        if (!opts.quiet)
            std::printf("  %-40s %s\n", path.c_str(), msg.c_str());
    };

    if (a.kind != b.kind) {
        report("kind mismatch");
        return 1;
    }
    switch (a.kind) {
      case JsonValue::Kind::Number:
        if (!numbersEqual(a.number, b.number, opts.tolerance)) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "%.17g != %.17g", a.number,
                          b.number);
            report(buf);
            return 1;
        }
        return 0;
      case JsonValue::Kind::String:
        if (a.string != b.string) {
            report("\"" + a.string + "\" != \"" + b.string + "\"");
            return 1;
        }
        return 0;
      case JsonValue::Kind::Bool:
        if (a.boolean != b.boolean) {
            report("bool mismatch");
            return 1;
        }
        return 0;
      case JsonValue::Kind::Null:
        return 0;
      case JsonValue::Kind::Array: {
        if (a.array.size() != b.array.size()) {
            report("array length mismatch");
            return 1;
        }
        std::size_t diffs = 0;
        for (std::size_t i = 0; i < a.array.size(); ++i)
            diffs += diffValues(path + "[" + std::to_string(i) + "]",
                                a.array[i], b.array[i], opts);
        return diffs;
      }
      case JsonValue::Kind::Object: {
        std::size_t diffs = 0;
        for (const auto &[k, av] : a.object) {
            const JsonValue *bv = b.find(k);
            if (!bv) {
                report("missing field '" + k + "' in B");
                ++diffs;
                continue;
            }
            diffs += diffValues(path + "." + k, av, *bv, opts);
        }
        for (const auto &[k, bv] : b.object) {
            (void)bv;
            if (!a.find(k)) {
                report("extra field '" + k + "' in B");
                ++diffs;
            }
        }
        return diffs;
      }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--tolerance") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for --tolerance\n");
                return 2;
            }
            opts.tolerance = std::strtod(argv[++i], nullptr);
        } else if (arg == "--quiet") {
            opts.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: dasdram_compare A.jsonl B.jsonl "
                        "[--tolerance REL] [--quiet]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return 2;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        std::fprintf(stderr, "usage: dasdram_compare A.jsonl B.jsonl "
                             "[--tolerance REL] [--quiet]\n");
        return 2;
    }
    opts.fileA = positional[0];
    opts.fileB = positional[1];

    RecordMap a, b;
    if (!loadJsonl(opts.fileA, a) || !loadJsonl(opts.fileB, b))
        return 2;

    std::size_t diffs = 0;
    std::size_t compared = 0;
    for (const auto &[key, av] : a) {
        auto it = b.find(key);
        if (it == b.end()) {
            if (!opts.quiet)
                std::printf("only in %s: %s\n", opts.fileA.c_str(),
                            key.c_str());
            ++diffs;
            continue;
        }
        ++compared;
        std::size_t d = diffValues("", av, it->second, opts);
        if (d && !opts.quiet)
            std::printf("^ point: %s (%zu field diffs)\n", key.c_str(),
                        d);
        diffs += d;
    }
    for (const auto &[key, bv] : b) {
        (void)bv;
        if (!a.count(key)) {
            if (!opts.quiet)
                std::printf("only in %s: %s\n", opts.fileB.c_str(),
                            key.c_str());
            ++diffs;
        }
    }

    if (!opts.quiet) {
        std::printf("%zu point(s) compared, %zu difference(s)%s\n",
                    compared, diffs,
                    opts.tolerance > 0.0 ? " (with tolerance)" : "");
    }
    return diffs == 0 ? 0 : 1;
}
