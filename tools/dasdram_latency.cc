/**
 * @file
 * dasdram_latency — reads the request-span JSONL emitted by
 * --spans-out (schema dasdram-spans, see src/mem/request_trace.hh)
 * and explains where request latency went.
 *
 * Usage:
 *   dasdram_latency spans.jsonl
 *       Prints the run identity, then a per-group critical-path
 *       breakdown table (groups: read-hit / read-fast / read-slow by
 *       row class and row-buffer outcome, writes, table walks,
 *       forwarded reads) with the request count and the mean
 *       queue-wait, migration-block, refresh-shadow, row-activation
 *       and service components plus the total mean and p99, all in
 *       nanoseconds — followed by the top-k slowest requests with
 *       their full stage timelines.
 *
 *   --top N            how many slowest requests to detail (default 5)
 *   --baseline FILE    also load FILE (same schema) and append a
 *                      per-group diff table of this-vs-baseline mean
 *                      components — the DAS-vs-baseline latency
 *                      attribution comparison
 *
 * Every value-taking option also accepts the --flag=value spelling.
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/schema_check.hh"
#include "mem/request_trace.hh"
#include "sim/config_cli.hh"

using namespace dasdram;

namespace
{

/** Memory-controller cycle length in nanoseconds (DDR3-1600). */
constexpr double kMemCycleNs = 1.25;

double
numField(const JsonValue &v, const char *key, double fallback = 0.0)
{
    const JsonValue *f = v.find(key);
    return f && f->isNumber() ? f->number : fallback;
}

std::string
strField(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    return f && f->isString() ? f->string : std::string();
}

/** One parsed span record (the fields this tool consumes). */
struct Span
{
    std::uint64_t id = 0;
    std::string kind;    ///< read / write / walk
    std::string rowClass; ///< fast / slow
    std::string outcome; ///< hit / miss / conflict / forwarded
    std::string trans;   ///< none / tc / llc / dram
    long core = 0;
    std::uint64_t addr = 0;
    unsigned channel = 0, rank = 0, bank = 0;
    std::uint64_t row = 0;
    std::uint64_t issueTick = 0, submitTick = 0;
    double admit = 0, ready = 0, firstCmd = 0, col = 0, data = 0;
    double pre = -1, act = -1;
    double waitQueue = 0, waitBlock = 0, waitRefresh = 0, fawStall = 0;
    double rowLat = 0, service = 0, total = 0;
};

/** A whole span-JSONL file: run identity plus every span record. */
struct SpanFile
{
    std::string path;
    int version = -1;
    std::string workload, design, label;
    double rate = 0.0;
    std::vector<Span> spans;
};

SpanFile
loadSpanFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '{}'", path);
    SpanFile file;
    file.path = path;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue v;
        std::string err;
        if (!parseJson(line, v, &err))
            fatal("{}:{}: malformed JSON: {}", path, lineno, err);
        std::string type = strField(v, "type");
        if (type == "meta") {
            file.version = checkJsonlSchema(
                path, kSpanJsonlSchema, strField(v, "schema"),
                static_cast<int>(numField(v, "version", -1.0)),
                kSpanJsonlVersion, "dasdram_latency");
            file.workload = strField(v, "workload");
            file.design = strField(v, "design");
            file.label = strField(v, "label");
            file.rate = numField(v, "rate");
        } else if (type == "span") {
            Span s;
            s.id = static_cast<std::uint64_t>(numField(v, "id"));
            s.kind = strField(v, "kind");
            s.rowClass = strField(v, "class");
            s.outcome = strField(v, "outcome");
            s.trans = strField(v, "trans");
            s.core = static_cast<long>(numField(v, "core"));
            s.addr = static_cast<std::uint64_t>(numField(v, "addr"));
            s.channel = static_cast<unsigned>(numField(v, "channel"));
            s.rank = static_cast<unsigned>(numField(v, "rank"));
            s.bank = static_cast<unsigned>(numField(v, "bank"));
            s.row = static_cast<std::uint64_t>(numField(v, "row"));
            s.issueTick =
                static_cast<std::uint64_t>(numField(v, "issueTick"));
            s.submitTick =
                static_cast<std::uint64_t>(numField(v, "submitTick"));
            s.admit = numField(v, "admit");
            s.ready = numField(v, "ready");
            s.firstCmd = numField(v, "firstCmd");
            s.pre = numField(v, "pre", -1.0);
            s.act = numField(v, "act", -1.0);
            s.col = numField(v, "col");
            s.data = numField(v, "data");
            s.waitQueue = numField(v, "waitQueue");
            s.waitBlock = numField(v, "waitBlock");
            s.waitRefresh = numField(v, "waitRefresh");
            s.fawStall = numField(v, "fawStall");
            s.rowLat = numField(v, "rowLat");
            s.service = numField(v, "service");
            s.total = numField(v, "total");
            file.spans.push_back(s);
        }
    }
    if (file.version < 0)
        fatal("{}: no meta record — is this a span-JSONL dump?", path);
    return file;
}

/** Breakdown group a span belongs to (aggregator taxonomy). */
std::string
groupOf(const Span &s)
{
    if (s.outcome == "forwarded")
        return "forwarded";
    if (s.kind == "walk")
        return "walk";
    if (s.kind == "write")
        return "write";
    if (s.outcome == "hit")
        return "read-hit";
    return s.rowClass == "fast" ? "read-fast" : "read-slow";
}

/** Display order of the breakdown groups. */
const char *const kGroups[] = {"read-hit", "read-fast", "read-slow",
                               "write",    "walk",      "forwarded"};

/** Accumulated component means of one group. */
struct GroupStats
{
    std::size_t count = 0;
    double queue = 0, block = 0, refresh = 0, faw = 0;
    double row = 0, service = 0, total = 0;
    std::vector<double> totals; ///< for the p99

    void
    add(const Span &s)
    {
        ++count;
        queue += s.waitQueue;
        block += s.waitBlock;
        refresh += s.waitRefresh;
        faw += s.fawStall;
        row += s.rowLat;
        service += s.service;
        total += s.total;
        totals.push_back(s.total);
    }

    double
    mean(double sum) const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }

    double
    p99()
    {
        if (totals.empty())
            return 0.0;
        std::sort(totals.begin(), totals.end());
        std::size_t idx = static_cast<std::size_t>(
            0.99 * static_cast<double>(totals.size() - 1) + 0.5);
        return totals[idx];
    }
};

std::map<std::string, GroupStats>
groupStats(const SpanFile &f)
{
    std::map<std::string, GroupStats> groups;
    for (const Span &s : f.spans)
        groups[groupOf(s)].add(s);
    return groups;
}

void
printBreakdownTable(std::map<std::string, GroupStats> &groups)
{
    std::printf("\nper-group critical-path breakdown (means in ns; "
                "queue excludes block/refresh):\n");
    std::printf("  %-10s %8s %8s %8s %8s %8s %8s %8s %9s %9s\n",
                "group", "count", "queue", "block", "refresh", "faw",
                "rowAct", "service", "total", "p99");
    for (const char *g : kGroups) {
        auto it = groups.find(g);
        if (it == groups.end())
            continue;
        GroupStats &gs = it->second;
        std::printf(
            "  %-10s %8zu %8.1f %8.1f %8.1f %8.1f %8.1f %8.1f %9.1f "
            "%9.1f\n",
            g, gs.count, gs.mean(gs.queue) * kMemCycleNs,
            gs.mean(gs.block) * kMemCycleNs,
            gs.mean(gs.refresh) * kMemCycleNs,
            gs.mean(gs.faw) * kMemCycleNs,
            gs.mean(gs.row) * kMemCycleNs,
            gs.mean(gs.service) * kMemCycleNs,
            gs.mean(gs.total) * kMemCycleNs, gs.p99() * kMemCycleNs);
    }
}

void
printTimeline(const Span &s, std::size_t ordinal)
{
    std::printf("#%zu  span %llu: %s core=%ld addr=0x%llx "
                "ch%u/rk%u/bk%u row %llu (%s, %s, trans=%s)\n",
                ordinal, static_cast<unsigned long long>(s.id),
                s.kind.c_str(), s.core,
                static_cast<unsigned long long>(s.addr), s.channel,
                s.rank, s.bank,
                static_cast<unsigned long long>(s.row),
                s.rowClass.c_str(), s.outcome.c_str(),
                s.trans.c_str());
    std::printf("     ticks: issue=%llu submit=%llu\n",
                static_cast<unsigned long long>(s.issueTick),
                static_cast<unsigned long long>(s.submitTick));
    std::printf("     mem cycles: admit=%.0f ready=%.0f firstCmd=%.0f",
                s.admit, s.ready, s.firstCmd);
    if (s.pre >= 0)
        std::printf(" pre=%.0f", s.pre);
    if (s.act >= 0)
        std::printf(" act=%.0f", s.act);
    std::printf(" col=%.0f data=%.0f\n", s.col, s.data);
    std::printf("     blame (ns): queue=%.1f block=%.1f refresh=%.1f "
                "faw=%.1f rowAct=%.1f service=%.1f total=%.1f\n",
                s.waitQueue * kMemCycleNs, s.waitBlock * kMemCycleNs,
                s.waitRefresh * kMemCycleNs, s.fawStall * kMemCycleNs,
                s.rowLat * kMemCycleNs, s.service * kMemCycleNs,
                s.total * kMemCycleNs);
}

void
printDiffTable(std::map<std::string, GroupStats> &cur,
               std::map<std::string, GroupStats> &base)
{
    std::printf("\nthis-vs-baseline mean deltas (ns; positive = this "
                "run is slower):\n");
    std::printf("  %-10s %8s %8s %8s %8s %8s %8s %9s\n", "group",
                "d.count", "d.queue", "d.block", "d.refr", "d.row",
                "d.serv", "d.total");
    for (const char *g : kGroups) {
        auto ci = cur.find(g);
        auto bi = base.find(g);
        if (ci == cur.end() && bi == base.end())
            continue;
        static GroupStats empty;
        GroupStats &c = ci != cur.end() ? ci->second : empty;
        GroupStats &b = bi != base.end() ? bi->second : empty;
        std::printf(
            "  %-10s %+8ld %+8.1f %+8.1f %+8.1f %+8.1f %+8.1f "
            "%+9.1f\n",
            g,
            static_cast<long>(c.count) - static_cast<long>(b.count),
            (c.mean(c.queue) - b.mean(b.queue)) * kMemCycleNs,
            (c.mean(c.block) - b.mean(b.block)) * kMemCycleNs,
            (c.mean(c.refresh) - b.mean(b.refresh)) * kMemCycleNs,
            (c.mean(c.row) - b.mean(b.row)) * kMemCycleNs,
            (c.mean(c.service) - b.mean(b.service)) * kMemCycleNs,
            (c.mean(c.total) - b.mean(b.total)) * kMemCycleNs);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    CliParser cli("dasdram_latency",
                  "explain request latency from a span-JSONL dump "
                  "(see the header of tools/dasdram_latency.cc)");
    cli.optionDouble("--top", "N",
                     "how many slowest requests to detail (default 5)")
        .option("--baseline", "FILE",
                "span-JSONL to diff the breakdown against")
        .positionals("spans-jsonl", "span-JSONL dump to analyse", 0,
                     1);
    addConfigOptions(cli);
    cli.parse(argc, argv);

    // The uniform --config protocol (analysis tools load and validate
    // the configuration — unknown keys fatal — and round-trip it via
    // --dump-config; this tool needs nothing further from it).
    SimConfig cfg;
    loadConfigFile(cli, cfg);
    if (dumpConfigIfRequested(cli, cfg))
        return 0;
    if (cli.positionalValues().empty())
        fatal("missing spans-jsonl argument (see --help)");

    SpanFile file = loadSpanFile(cli.positionalValues().front());
    std::printf("%s: schema v%d, workload=%s design=%s label=%s "
                "rate=%g, %zu spans\n",
                file.path.c_str(), file.version,
                file.workload.c_str(), file.design.c_str(),
                file.label.c_str(), file.rate, file.spans.size());
    if (file.spans.empty()) {
        std::printf("no spans recorded — nothing to attribute\n");
        return 0;
    }

    std::map<std::string, GroupStats> groups = groupStats(file);
    printBreakdownTable(groups);

    double top_d = cli.dbl("--top", 5.0);
    if (top_d < 0)
        fatal("--top must be >= 0 (got {})", top_d);
    std::size_t top = static_cast<std::size_t>(top_d);
    if (top > 0) {
        std::vector<const Span *> slowest;
        slowest.reserve(file.spans.size());
        for (const Span &s : file.spans)
            slowest.push_back(&s);
        std::sort(slowest.begin(), slowest.end(),
                  [](const Span *a, const Span *b) {
                      return a->total != b->total
                                 ? a->total > b->total
                                 : a->id < b->id;
                  });
        if (top > slowest.size())
            top = slowest.size();
        std::printf("\ntop %zu slowest requests:\n", top);
        for (std::size_t i = 0; i < top; ++i)
            printTimeline(*slowest[i], i + 1);
    }

    std::string baseline_path = cli.str("--baseline");
    if (!baseline_path.empty()) {
        SpanFile base = loadSpanFile(baseline_path);
        std::printf("\nbaseline %s: workload=%s design=%s label=%s, "
                    "%zu spans\n",
                    base.path.c_str(), base.workload.c_str(),
                    base.design.c_str(), base.label.c_str(),
                    base.spans.size());
        std::map<std::string, GroupStats> base_groups =
            groupStats(base);
        printDiffTable(groups, base_groups);
    }
    return 0;
}
