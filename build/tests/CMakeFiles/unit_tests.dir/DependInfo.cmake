
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/test_cache.cc" "tests/CMakeFiles/unit_tests.dir/cache/test_cache.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/cache/test_cache.cc.o.d"
  "/root/repo/tests/cache/test_hierarchy.cc" "tests/CMakeFiles/unit_tests.dir/cache/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/cache/test_hierarchy.cc.o.d"
  "/root/repo/tests/cache/test_mshr.cc" "tests/CMakeFiles/unit_tests.dir/cache/test_mshr.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/cache/test_mshr.cc.o.d"
  "/root/repo/tests/common/test_bitutil.cc" "tests/CMakeFiles/unit_tests.dir/common/test_bitutil.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/common/test_bitutil.cc.o.d"
  "/root/repo/tests/common/test_config.cc" "tests/CMakeFiles/unit_tests.dir/common/test_config.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/common/test_config.cc.o.d"
  "/root/repo/tests/common/test_random.cc" "tests/CMakeFiles/unit_tests.dir/common/test_random.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/common/test_random.cc.o.d"
  "/root/repo/tests/common/test_stats.cc" "tests/CMakeFiles/unit_tests.dir/common/test_stats.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/common/test_stats.cc.o.d"
  "/root/repo/tests/common/test_strfmt.cc" "tests/CMakeFiles/unit_tests.dir/common/test_strfmt.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/common/test_strfmt.cc.o.d"
  "/root/repo/tests/core/test_area_model.cc" "tests/CMakeFiles/unit_tests.dir/core/test_area_model.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_area_model.cc.o.d"
  "/root/repo/tests/core/test_das_manager.cc" "tests/CMakeFiles/unit_tests.dir/core/test_das_manager.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_das_manager.cc.o.d"
  "/root/repo/tests/core/test_inclusive.cc" "tests/CMakeFiles/unit_tests.dir/core/test_inclusive.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_inclusive.cc.o.d"
  "/root/repo/tests/core/test_migration.cc" "tests/CMakeFiles/unit_tests.dir/core/test_migration.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_migration.cc.o.d"
  "/root/repo/tests/core/test_policies.cc" "tests/CMakeFiles/unit_tests.dir/core/test_policies.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_policies.cc.o.d"
  "/root/repo/tests/core/test_static_profile.cc" "tests/CMakeFiles/unit_tests.dir/core/test_static_profile.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_static_profile.cc.o.d"
  "/root/repo/tests/core/test_subarray_layout.cc" "tests/CMakeFiles/unit_tests.dir/core/test_subarray_layout.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_subarray_layout.cc.o.d"
  "/root/repo/tests/core/test_translation_cache.cc" "tests/CMakeFiles/unit_tests.dir/core/test_translation_cache.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_translation_cache.cc.o.d"
  "/root/repo/tests/core/test_translation_table.cc" "tests/CMakeFiles/unit_tests.dir/core/test_translation_table.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/core/test_translation_table.cc.o.d"
  "/root/repo/tests/cpu/test_core.cc" "tests/CMakeFiles/unit_tests.dir/cpu/test_core.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/cpu/test_core.cc.o.d"
  "/root/repo/tests/dram/test_address_mapping.cc" "tests/CMakeFiles/unit_tests.dir/dram/test_address_mapping.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/dram/test_address_mapping.cc.o.d"
  "/root/repo/tests/dram/test_bank.cc" "tests/CMakeFiles/unit_tests.dir/dram/test_bank.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/dram/test_bank.cc.o.d"
  "/root/repo/tests/dram/test_controller.cc" "tests/CMakeFiles/unit_tests.dir/dram/test_controller.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/dram/test_controller.cc.o.d"
  "/root/repo/tests/dram/test_dram_system.cc" "tests/CMakeFiles/unit_tests.dir/dram/test_dram_system.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/dram/test_dram_system.cc.o.d"
  "/root/repo/tests/dram/test_geometry.cc" "tests/CMakeFiles/unit_tests.dir/dram/test_geometry.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/dram/test_geometry.cc.o.d"
  "/root/repo/tests/dram/test_rank.cc" "tests/CMakeFiles/unit_tests.dir/dram/test_rank.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/dram/test_rank.cc.o.d"
  "/root/repo/tests/dram/test_stress.cc" "tests/CMakeFiles/unit_tests.dir/dram/test_stress.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/dram/test_stress.cc.o.d"
  "/root/repo/tests/dram/test_timing.cc" "tests/CMakeFiles/unit_tests.dir/dram/test_timing.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/dram/test_timing.cc.o.d"
  "/root/repo/tests/workload/test_synth_trace.cc" "tests/CMakeFiles/unit_tests.dir/workload/test_synth_trace.cc.o" "gcc" "tests/CMakeFiles/unit_tests.dir/workload/test_synth_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dasdram_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dasdram_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dasdram_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dasdram_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dasdram_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dasdram_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dasdram_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dasdram_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
