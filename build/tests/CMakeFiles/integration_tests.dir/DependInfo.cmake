
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_experiment.cc" "tests/CMakeFiles/integration_tests.dir/sim/test_experiment.cc.o" "gcc" "tests/CMakeFiles/integration_tests.dir/sim/test_experiment.cc.o.d"
  "/root/repo/tests/sim/test_system.cc" "tests/CMakeFiles/integration_tests.dir/sim/test_system.cc.o" "gcc" "tests/CMakeFiles/integration_tests.dir/sim/test_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dasdram_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dasdram_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dasdram_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dasdram_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dasdram_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dasdram_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dasdram_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dasdram_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
