file(REMOVE_RECURSE
  "CMakeFiles/dasdram_mem.dir/request.cc.o"
  "CMakeFiles/dasdram_mem.dir/request.cc.o.d"
  "libdasdram_mem.a"
  "libdasdram_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasdram_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
