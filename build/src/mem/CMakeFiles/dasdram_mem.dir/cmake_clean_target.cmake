file(REMOVE_RECURSE
  "libdasdram_mem.a"
)
