# Empty compiler generated dependencies file for dasdram_mem.
# This may be replaced when dependencies are built.
