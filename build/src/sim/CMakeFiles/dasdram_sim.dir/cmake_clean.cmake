file(REMOVE_RECURSE
  "CMakeFiles/dasdram_sim.dir/experiment.cc.o"
  "CMakeFiles/dasdram_sim.dir/experiment.cc.o.d"
  "CMakeFiles/dasdram_sim.dir/sim_config.cc.o"
  "CMakeFiles/dasdram_sim.dir/sim_config.cc.o.d"
  "CMakeFiles/dasdram_sim.dir/system.cc.o"
  "CMakeFiles/dasdram_sim.dir/system.cc.o.d"
  "libdasdram_sim.a"
  "libdasdram_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasdram_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
