# Empty compiler generated dependencies file for dasdram_sim.
# This may be replaced when dependencies are built.
