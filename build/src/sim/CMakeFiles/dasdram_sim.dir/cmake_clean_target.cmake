file(REMOVE_RECURSE
  "libdasdram_sim.a"
)
