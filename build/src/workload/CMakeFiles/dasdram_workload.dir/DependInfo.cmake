
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/spec_profiles.cc" "src/workload/CMakeFiles/dasdram_workload.dir/spec_profiles.cc.o" "gcc" "src/workload/CMakeFiles/dasdram_workload.dir/spec_profiles.cc.o.d"
  "/root/repo/src/workload/synth_trace.cc" "src/workload/CMakeFiles/dasdram_workload.dir/synth_trace.cc.o" "gcc" "src/workload/CMakeFiles/dasdram_workload.dir/synth_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/dasdram_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dasdram_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dasdram_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
