file(REMOVE_RECURSE
  "CMakeFiles/dasdram_workload.dir/spec_profiles.cc.o"
  "CMakeFiles/dasdram_workload.dir/spec_profiles.cc.o.d"
  "CMakeFiles/dasdram_workload.dir/synth_trace.cc.o"
  "CMakeFiles/dasdram_workload.dir/synth_trace.cc.o.d"
  "libdasdram_workload.a"
  "libdasdram_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasdram_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
