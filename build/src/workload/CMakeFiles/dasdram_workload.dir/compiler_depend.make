# Empty compiler generated dependencies file for dasdram_workload.
# This may be replaced when dependencies are built.
