file(REMOVE_RECURSE
  "libdasdram_workload.a"
)
