file(REMOVE_RECURSE
  "CMakeFiles/dasdram_common.dir/config.cc.o"
  "CMakeFiles/dasdram_common.dir/config.cc.o.d"
  "CMakeFiles/dasdram_common.dir/log.cc.o"
  "CMakeFiles/dasdram_common.dir/log.cc.o.d"
  "CMakeFiles/dasdram_common.dir/random.cc.o"
  "CMakeFiles/dasdram_common.dir/random.cc.o.d"
  "CMakeFiles/dasdram_common.dir/stats.cc.o"
  "CMakeFiles/dasdram_common.dir/stats.cc.o.d"
  "libdasdram_common.a"
  "libdasdram_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasdram_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
