# Empty compiler generated dependencies file for dasdram_common.
# This may be replaced when dependencies are built.
