file(REMOVE_RECURSE
  "libdasdram_common.a"
)
