file(REMOVE_RECURSE
  "CMakeFiles/dasdram_cache.dir/cache.cc.o"
  "CMakeFiles/dasdram_cache.dir/cache.cc.o.d"
  "CMakeFiles/dasdram_cache.dir/hierarchy.cc.o"
  "CMakeFiles/dasdram_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/dasdram_cache.dir/mshr.cc.o"
  "CMakeFiles/dasdram_cache.dir/mshr.cc.o.d"
  "libdasdram_cache.a"
  "libdasdram_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasdram_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
