# Empty dependencies file for dasdram_cache.
# This may be replaced when dependencies are built.
