file(REMOVE_RECURSE
  "libdasdram_cache.a"
)
