# Empty dependencies file for dasdram_core.
# This may be replaced when dependencies are built.
