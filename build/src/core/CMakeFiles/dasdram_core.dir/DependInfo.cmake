
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/area_model.cc" "src/core/CMakeFiles/dasdram_core.dir/area_model.cc.o" "gcc" "src/core/CMakeFiles/dasdram_core.dir/area_model.cc.o.d"
  "/root/repo/src/core/das_manager.cc" "src/core/CMakeFiles/dasdram_core.dir/das_manager.cc.o" "gcc" "src/core/CMakeFiles/dasdram_core.dir/das_manager.cc.o.d"
  "/root/repo/src/core/designs.cc" "src/core/CMakeFiles/dasdram_core.dir/designs.cc.o" "gcc" "src/core/CMakeFiles/dasdram_core.dir/designs.cc.o.d"
  "/root/repo/src/core/inclusive_directory.cc" "src/core/CMakeFiles/dasdram_core.dir/inclusive_directory.cc.o" "gcc" "src/core/CMakeFiles/dasdram_core.dir/inclusive_directory.cc.o.d"
  "/root/repo/src/core/migration.cc" "src/core/CMakeFiles/dasdram_core.dir/migration.cc.o" "gcc" "src/core/CMakeFiles/dasdram_core.dir/migration.cc.o.d"
  "/root/repo/src/core/promotion_policy.cc" "src/core/CMakeFiles/dasdram_core.dir/promotion_policy.cc.o" "gcc" "src/core/CMakeFiles/dasdram_core.dir/promotion_policy.cc.o.d"
  "/root/repo/src/core/replacement_policy.cc" "src/core/CMakeFiles/dasdram_core.dir/replacement_policy.cc.o" "gcc" "src/core/CMakeFiles/dasdram_core.dir/replacement_policy.cc.o.d"
  "/root/repo/src/core/static_profile.cc" "src/core/CMakeFiles/dasdram_core.dir/static_profile.cc.o" "gcc" "src/core/CMakeFiles/dasdram_core.dir/static_profile.cc.o.d"
  "/root/repo/src/core/subarray_layout.cc" "src/core/CMakeFiles/dasdram_core.dir/subarray_layout.cc.o" "gcc" "src/core/CMakeFiles/dasdram_core.dir/subarray_layout.cc.o.d"
  "/root/repo/src/core/translation_cache.cc" "src/core/CMakeFiles/dasdram_core.dir/translation_cache.cc.o" "gcc" "src/core/CMakeFiles/dasdram_core.dir/translation_cache.cc.o.d"
  "/root/repo/src/core/translation_table.cc" "src/core/CMakeFiles/dasdram_core.dir/translation_table.cc.o" "gcc" "src/core/CMakeFiles/dasdram_core.dir/translation_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dram/CMakeFiles/dasdram_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dasdram_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dasdram_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dasdram_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dasdram_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
