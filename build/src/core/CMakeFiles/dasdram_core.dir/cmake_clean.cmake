file(REMOVE_RECURSE
  "CMakeFiles/dasdram_core.dir/area_model.cc.o"
  "CMakeFiles/dasdram_core.dir/area_model.cc.o.d"
  "CMakeFiles/dasdram_core.dir/das_manager.cc.o"
  "CMakeFiles/dasdram_core.dir/das_manager.cc.o.d"
  "CMakeFiles/dasdram_core.dir/designs.cc.o"
  "CMakeFiles/dasdram_core.dir/designs.cc.o.d"
  "CMakeFiles/dasdram_core.dir/inclusive_directory.cc.o"
  "CMakeFiles/dasdram_core.dir/inclusive_directory.cc.o.d"
  "CMakeFiles/dasdram_core.dir/migration.cc.o"
  "CMakeFiles/dasdram_core.dir/migration.cc.o.d"
  "CMakeFiles/dasdram_core.dir/promotion_policy.cc.o"
  "CMakeFiles/dasdram_core.dir/promotion_policy.cc.o.d"
  "CMakeFiles/dasdram_core.dir/replacement_policy.cc.o"
  "CMakeFiles/dasdram_core.dir/replacement_policy.cc.o.d"
  "CMakeFiles/dasdram_core.dir/static_profile.cc.o"
  "CMakeFiles/dasdram_core.dir/static_profile.cc.o.d"
  "CMakeFiles/dasdram_core.dir/subarray_layout.cc.o"
  "CMakeFiles/dasdram_core.dir/subarray_layout.cc.o.d"
  "CMakeFiles/dasdram_core.dir/translation_cache.cc.o"
  "CMakeFiles/dasdram_core.dir/translation_cache.cc.o.d"
  "CMakeFiles/dasdram_core.dir/translation_table.cc.o"
  "CMakeFiles/dasdram_core.dir/translation_table.cc.o.d"
  "libdasdram_core.a"
  "libdasdram_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasdram_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
