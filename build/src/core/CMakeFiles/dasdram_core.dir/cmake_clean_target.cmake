file(REMOVE_RECURSE
  "libdasdram_core.a"
)
