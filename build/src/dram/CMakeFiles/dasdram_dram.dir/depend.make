# Empty dependencies file for dasdram_dram.
# This may be replaced when dependencies are built.
