src/dram/CMakeFiles/dasdram_dram.dir/command.cc.o: \
 /root/repo/src/dram/command.cc /usr/include/stdc-predef.h \
 /root/repo/src/dram/command.hh
