file(REMOVE_RECURSE
  "libdasdram_dram.a"
)
