file(REMOVE_RECURSE
  "CMakeFiles/dasdram_dram.dir/address_mapping.cc.o"
  "CMakeFiles/dasdram_dram.dir/address_mapping.cc.o.d"
  "CMakeFiles/dasdram_dram.dir/bank.cc.o"
  "CMakeFiles/dasdram_dram.dir/bank.cc.o.d"
  "CMakeFiles/dasdram_dram.dir/command.cc.o"
  "CMakeFiles/dasdram_dram.dir/command.cc.o.d"
  "CMakeFiles/dasdram_dram.dir/controller.cc.o"
  "CMakeFiles/dasdram_dram.dir/controller.cc.o.d"
  "CMakeFiles/dasdram_dram.dir/dram_system.cc.o"
  "CMakeFiles/dasdram_dram.dir/dram_system.cc.o.d"
  "CMakeFiles/dasdram_dram.dir/geometry.cc.o"
  "CMakeFiles/dasdram_dram.dir/geometry.cc.o.d"
  "CMakeFiles/dasdram_dram.dir/rank.cc.o"
  "CMakeFiles/dasdram_dram.dir/rank.cc.o.d"
  "CMakeFiles/dasdram_dram.dir/timing.cc.o"
  "CMakeFiles/dasdram_dram.dir/timing.cc.o.d"
  "libdasdram_dram.a"
  "libdasdram_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasdram_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
