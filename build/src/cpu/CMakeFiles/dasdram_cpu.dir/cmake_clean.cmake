file(REMOVE_RECURSE
  "CMakeFiles/dasdram_cpu.dir/core.cc.o"
  "CMakeFiles/dasdram_cpu.dir/core.cc.o.d"
  "libdasdram_cpu.a"
  "libdasdram_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasdram_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
