file(REMOVE_RECURSE
  "libdasdram_cpu.a"
)
