# Empty compiler generated dependencies file for dasdram_cpu.
# This may be replaced when dependencies are built.
