# Empty dependencies file for ablation_inclusive.
# This may be replaced when dependencies are built.
