file(REMOVE_RECURSE
  "CMakeFiles/ablation_inclusive.dir/ablation_inclusive.cc.o"
  "CMakeFiles/ablation_inclusive.dir/ablation_inclusive.cc.o.d"
  "ablation_inclusive"
  "ablation_inclusive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inclusive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
