# Empty dependencies file for fig9cd_fast_ratio.
# This may be replaced when dependencies are built.
