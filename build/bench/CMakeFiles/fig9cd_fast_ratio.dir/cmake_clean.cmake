file(REMOVE_RECURSE
  "CMakeFiles/fig9cd_fast_ratio.dir/fig9cd_fast_ratio.cc.o"
  "CMakeFiles/fig9cd_fast_ratio.dir/fig9cd_fast_ratio.cc.o.d"
  "fig9cd_fast_ratio"
  "fig9cd_fast_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9cd_fast_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
