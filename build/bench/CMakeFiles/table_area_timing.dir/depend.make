# Empty dependencies file for table_area_timing.
# This may be replaced when dependencies are built.
