file(REMOVE_RECURSE
  "CMakeFiles/table_area_timing.dir/table_area_timing.cc.o"
  "CMakeFiles/table_area_timing.dir/table_area_timing.cc.o.d"
  "table_area_timing"
  "table_area_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_area_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
