file(REMOVE_RECURSE
  "CMakeFiles/fig9a_translation_cache.dir/fig9a_translation_cache.cc.o"
  "CMakeFiles/fig9a_translation_cache.dir/fig9a_translation_cache.cc.o.d"
  "fig9a_translation_cache"
  "fig9a_translation_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_translation_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
