# Empty dependencies file for fig9a_translation_cache.
# This may be replaced when dependencies are built.
