# Empty dependencies file for fig9b_migration_group.
# This may be replaced when dependencies are built.
