file(REMOVE_RECURSE
  "CMakeFiles/fig9b_migration_group.dir/fig9b_migration_group.cc.o"
  "CMakeFiles/fig9b_migration_group.dir/fig9b_migration_group.cc.o.d"
  "fig9b_migration_group"
  "fig9b_migration_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_migration_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
