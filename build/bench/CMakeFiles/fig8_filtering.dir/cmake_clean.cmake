file(REMOVE_RECURSE
  "CMakeFiles/fig8_filtering.dir/fig8_filtering.cc.o"
  "CMakeFiles/fig8_filtering.dir/fig8_filtering.cc.o.d"
  "fig8_filtering"
  "fig8_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
