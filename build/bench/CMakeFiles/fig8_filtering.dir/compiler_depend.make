# Empty compiler generated dependencies file for fig8_filtering.
# This may be replaced when dependencies are built.
