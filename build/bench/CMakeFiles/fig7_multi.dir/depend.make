# Empty dependencies file for fig7_multi.
# This may be replaced when dependencies are built.
