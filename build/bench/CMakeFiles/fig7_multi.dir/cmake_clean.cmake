file(REMOVE_RECURSE
  "CMakeFiles/fig7_multi.dir/fig7_multi.cc.o"
  "CMakeFiles/fig7_multi.dir/fig7_multi.cc.o.d"
  "fig7_multi"
  "fig7_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
