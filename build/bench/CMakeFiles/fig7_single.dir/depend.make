# Empty dependencies file for fig7_single.
# This may be replaced when dependencies are built.
