file(REMOVE_RECURSE
  "CMakeFiles/dasdram_run.dir/dasdram_run.cc.o"
  "CMakeFiles/dasdram_run.dir/dasdram_run.cc.o.d"
  "dasdram_run"
  "dasdram_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dasdram_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
