# Empty compiler generated dependencies file for dasdram_run.
# This may be replaced when dependencies are built.
