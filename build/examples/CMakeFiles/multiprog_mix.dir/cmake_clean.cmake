file(REMOVE_RECURSE
  "CMakeFiles/multiprog_mix.dir/multiprog_mix.cpp.o"
  "CMakeFiles/multiprog_mix.dir/multiprog_mix.cpp.o.d"
  "multiprog_mix"
  "multiprog_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprog_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
