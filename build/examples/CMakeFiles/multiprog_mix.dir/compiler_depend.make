# Empty compiler generated dependencies file for multiprog_mix.
# This may be replaced when dependencies are built.
