file(REMOVE_RECURSE
  "CMakeFiles/inspect_stats.dir/inspect_stats.cpp.o"
  "CMakeFiles/inspect_stats.dir/inspect_stats.cpp.o.d"
  "inspect_stats"
  "inspect_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
