/**
 * @file
 * Request-lifecycle tracing implementation: sampler, JSONL exporter
 * and critical-path aggregator.
 */

#include "mem/request_trace.hh"

#include <cmath>

#include "common/json.hh"
#include "common/log.hh"

namespace dasdram
{

const char *
toString(TranslationPath path)
{
    switch (path) {
    case TranslationPath::None:
        return "none";
    case TranslationPath::TagCache:
        return "tc";
    case TranslationPath::LlcWalk:
        return "llc";
    case TranslationPath::DramWalk:
        return "dram";
    }
    return "?";
}

const char *
RequestSpan::outcome() const
{
    if (forwarded)
        return "forwarded";
    if (hasPre)
        return "conflict";
    if (hasAct)
        return "miss";
    return "hit";
}

namespace
{

/** splitmix64 finalizer: full-avalanche 64-bit mix. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

RequestTracer::RequestTracer(std::uint64_t seed, double rate)
    : seed_(seed), rate_(rate)
{
    if (rate_ >= 1.0)
        threshold_ = ~std::uint64_t{0};
    else if (rate_ <= 0.0 || std::isnan(rate_))
        threshold_ = 0;
    else
        threshold_ = static_cast<std::uint64_t>(
            rate_ * 18446744073709551616.0 /* 2^64 */);
}

std::unique_ptr<RequestSpan>
RequestTracer::maybeStart()
{
    std::uint64_t decision = decisions_++;
    bool take;
    if (threshold_ == ~std::uint64_t{0})
        take = true;
    else if (threshold_ == 0)
        take = false;
    else
        take = mix64(seed_ ^ mix64(decision)) < threshold_;
    if (!take)
        return nullptr;
    auto span = std::make_unique<RequestSpan>();
    span->sampleId = decision;
    ++sampled_;
    return span;
}

SpanJsonlWriter::SpanJsonlWriter(std::ostream &os, const SpanJsonlMeta &meta)
    : os_(os)
{
    JsonWriter w;
    w.beginObject()
        .field("type", "meta")
        .field("schema", kSpanJsonlSchema)
        .field("version", kSpanJsonlVersion)
        .field("workload", meta.workload)
        .field("design", meta.design)
        .field("label", meta.label)
        .field("seed", meta.seed)
        .field("rate", meta.rate)
        .endObject();
    os_ << w.str() << '\n';
}

void
SpanJsonlWriter::onSpan(const RequestSpan &s)
{
    JsonWriter w;
    w.beginObject()
        .field("type", "span")
        .field("id", s.sampleId)
        .field("kind", s.isTableWalk ? "walk" : (s.isWrite ? "write" : "read"))
        .field("core", std::int64_t(s.core))
        .field("addr", s.addr)
        .field("channel", s.channel)
        .field("rank", s.rank)
        .field("bank", s.bank)
        .field("row", s.row)
        .field("logicalRow", s.logicalRow)
        .field("class", s.rowClass == RowClass::Fast ? "fast" : "slow")
        .field("outcome", s.outcome())
        .field("trans", toString(s.trans))
        .field("issueTick", s.issueTick)
        .field("missTick", s.missTick)
        .field("transDoneTick", s.transDoneTick)
        .field("submitTick", s.submitTick)
        .field("admit", s.admitCycle)
        .field("ready", s.readyCycle)
        .field("firstCmd", s.firstCmdCycle);
    if (s.hasPre)
        w.field("pre", s.preCycle);
    if (s.hasAct)
        w.field("act", s.actCycle);
    w.field("col", s.colCycle)
        .field("data", s.dataCycle)
        .field("waitQueue", s.waitQueue())
        .field("waitBlock", s.waitBlock)
        .field("waitRefresh", s.waitRefresh)
        .field("fawStall", s.fawStall);
    if (s.blockedUntilCycle)
        w.field("blockedUntil", s.blockedUntilCycle);
    w.field("rowLat", s.rowLatency())
        .field("service", s.serviceLatency())
        .field("total", s.totalLatency())
        .endObject();
    os_ << w.str() << '\n';
    ++spans_;
}

void
CriticalPathAggregator::Breakdown::registerIn(StatGroup &g)
{
    g.addDistribution("total", &total,
                      "admit->data latency (mem cycles)");
    g.addDistribution("waitQueue", &waitQueue,
                      "queue wait not blamed on refresh/reservations");
    g.addDistribution("waitBlock", &waitBlock,
                      "wait overlapping a migration reservation");
    g.addDistribution("waitRefresh", &waitRefresh,
                      "wait overlapping a rank refresh");
    g.addDistribution("rowLatency", &rowLatency,
                      "first command -> column issue");
    g.addDistribution("service", &service,
                      "column issue -> data return");
    g.addDistribution("fawStall", &fawStall,
                      "tFAW/tRRD delay on the ACT (inside waitQueue)");
}

void
CriticalPathAggregator::Breakdown::sample(const RequestSpan &s)
{
    total.sample(double(s.totalLatency()));
    waitQueue.sample(double(s.waitQueue()));
    waitBlock.sample(double(s.waitBlock));
    waitRefresh.sample(double(s.waitRefresh));
    rowLatency.sample(double(s.rowLatency()));
    service.sample(double(s.serviceLatency()));
    fawStall.sample(double(s.fawStall));
}

CriticalPathAggregator::CriticalPathAggregator(unsigned num_tenants)
{
    group_.addCounter("spans", &spans_, "completed spans aggregated");
    rowHit_.registerIn(rowHitGroup_);
    fast_.registerIn(fastGroup_);
    slow_.registerIn(slowGroup_);
    writes_.registerIn(writeGroup_);
    walks_.registerIn(walkGroup_);
    forwarded_.registerIn(forwardGroup_);
    group_.addChild(&rowHitGroup_);
    group_.addChild(&fastGroup_);
    group_.addChild(&slowGroup_);
    group_.addChild(&writeGroup_);
    group_.addChild(&walkGroup_);
    group_.addChild(&forwardGroup_);
    tenants_.reserve(num_tenants);
    for (unsigned t = 0; t < num_tenants; ++t) {
        auto tenant = std::make_unique<Tenant>(formatStr("tenant{}", t));
        tenant->reads.registerIn(tenant->group);
        group_.addChild(&tenant->group);
        tenants_.push_back(std::move(tenant));
    }
}

void
CriticalPathAggregator::onSpan(const RequestSpan &s)
{
    spans_.inc();
    ++spansSeen_;
    if (s.forwarded) {
        forwarded_.sample(s);
        return;
    }
    if (s.isWrite) {
        writes_.sample(s);
        return;
    }
    // Reads through the controller: classify by how the data was
    // serviced, mirroring the per-class rollup histograms.
    if (s.location == ServiceLocation::RowBuffer)
        rowHit_.sample(s);
    else if (s.location == ServiceLocation::FastLevel)
        fast_.sample(s);
    else
        slow_.sample(s);
    if (s.isTableWalk) {
        walks_.sample(s);
    } else if (s.core >= 0 &&
               static_cast<unsigned>(s.core) < tenants_.size()) {
        tenants_[s.core]->reads.sample(s);
    }
}

} // namespace dasdram
