/**
 * @file
 * Sampled per-request lifecycle tracing: the span record attached to a
 * MemRequest, the sink fanout completed spans flow through, the
 * deterministic sampler, the schema-versioned JSONL exporter and the
 * in-sim critical-path aggregator.
 *
 * The tracer is strictly observation-only: nothing in the simulation
 * ever branches on whether a request carries a span, so command
 * streams and metrics are bit-identical with sampling on or off (the
 * differential fuzzer crosses both to prove it).
 */

#ifndef DASDRAM_MEM_REQUEST_TRACE_HH
#define DASDRAM_MEM_REQUEST_TRACE_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/serde.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/row_class.hh"
#include "mem/request.hh"

namespace dasdram
{

/** Span-JSONL on-disk schema version (meta record "version" field). */
constexpr int kSpanJsonlVersion = 1;

/** Span-JSONL schema identifier (meta record "schema" field). */
constexpr const char *kSpanJsonlSchema = "dasdram-spans";

/** How the DAS row translation for a request was resolved. */
enum class TranslationPath : std::uint8_t
{
    None,     ///< static design, or translation not consulted
    TagCache, ///< remap tag cache hit (zero added latency)
    LlcWalk,  ///< table walk satisfied by the LLC slice
    DramWalk, ///< table walk issued to DRAM (or coalesced onto one)
};

/** Converts a TranslationPath to a short display string. */
const char *toString(TranslationPath path);

/**
 * Lifecycle record for one sampled memory request. CPU-side stages
 * are global ticks; controller-side stages are memory-controller
 * cycles (multiply by kMemTick for ticks). A span is heap-allocated
 * only for sampled requests and owned by the MemRequest it rides on;
 * every hot-path touch point is gated on a single pointer null check.
 *
 * Blame attribution (DESIGN.md §11): the wait window [admit,
 * firstCmd) is decomposed exactly via cumulative busy-time
 * accumulators on Bank (migration reservations) and Rank (refresh),
 * so waitQueue() is the residual and
 *   waitQueue + waitBlock + waitRefresh + rowLatency + serviceLatency
 * telescopes to totalLatency() with no rounding.
 */
struct RequestSpan
{
    std::uint64_t sampleId = 0; ///< sampler decision sequence number
    int core = -1;              ///< issuing core, -1 for system traffic
    Addr addr = kAddrInvalid;
    bool isWrite = false;
    bool isTableWalk = false; ///< DAS translation-table walk request
    bool forwarded = false;   ///< read served from the write queue

    // --- CPU-side stages (global ticks) ---
    Cycle issueTick = 0;     ///< core issued the access (== missTick
                             ///< for writebacks and walks)
    Cycle missTick = 0;      ///< LLC miss / MSHR allocate / WB emit
    Cycle transDoneTick = 0; ///< DAS translation resolved
    Cycle submitTick = 0;    ///< handed to the DRAM system

    TranslationPath trans = TranslationPath::None;

    // --- DRAM coordinates (post-translation) ---
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    GlobalRowId logicalRow = 0;
    RowClass rowClass = RowClass::Slow; ///< meaningless when forwarded
    ServiceLocation location = ServiceLocation::Unknown;

    // --- Controller stages (memory-controller cycles) ---
    Cycle admitCycle = 0;    ///< controller queue admit
    Cycle readyCycle = 0;    ///< first schedulable cycle (lower bound
                             ///< computed at admit)
    Cycle firstCmdCycle = 0; ///< first command issued for this request
    Cycle preCycle = 0;      ///< conflict PRE (valid iff hasPre)
    Cycle actCycle = 0;      ///< ACT (valid iff hasAct)
    Cycle colCycle = 0;      ///< RD/WR issue
    Cycle dataCycle = 0;     ///< data return (writes: WR issue + tBL)
    bool hasFirstCmd = false;
    bool hasPre = false; ///< row-buffer conflict forced a precharge
    bool hasAct = false; ///< row-buffer miss required an activation

    // --- Blame attribution (memory-controller cycles) ---
    Cycle waitBlock = 0;          ///< migration-reservation overlap
                                  ///< with [admit, firstCmd)
    Cycle waitRefresh = 0;        ///< rank-refresh overlap with
                                  ///< [admit, firstCmd)
    Cycle fawStall = 0;           ///< extra delay tFAW/tRRD imposed on
                                  ///< the ACT beyond bank readiness
                                  ///< (informational; inside waitQueue)
    Cycle blockedUntilCycle = 0;  ///< migration blocking the row at
                                  ///< admit ends here (0 = none)
    Cycle refreshBusyAtAdmit = 0; ///< rank accumulator snapshot
    Cycle reserveBusyAtAdmit = 0; ///< bank accumulator snapshot

    /** Wait in queue not blamed on reservations or refresh. */
    Cycle
    waitQueue() const
    {
        return firstCmdCycle - admitCycle - waitBlock - waitRefresh;
    }

    /** first command -> column issue (PRE/ACT path length). */
    Cycle
    rowLatency() const
    {
        return colCycle - firstCmdCycle;
    }

    /** Column issue -> data return (CAS + burst, reads). */
    Cycle
    serviceLatency() const
    {
        return dataCycle - colCycle;
    }

    /** Queue admit -> data return; equals the histogram sample. */
    Cycle
    totalLatency() const
    {
        return dataCycle - admitCycle;
    }

    /** Row-buffer outcome label: forwarded / hit / miss / conflict. */
    const char *outcome() const;

    /** Checkpoint every stage timestamp and coordinate (spans of
     *  in-flight sampled requests ride their MemRequest). */
    void
    serdeState(Archive &ar)
    {
        ar.io(sampleId);
        ar.io(core);
        ar.io(addr);
        ar.io(isWrite);
        ar.io(isTableWalk);
        ar.io(forwarded);
        ar.io(issueTick);
        ar.io(missTick);
        ar.io(transDoneTick);
        ar.io(submitTick);
        ar.io(trans);
        ar.io(channel);
        ar.io(rank);
        ar.io(bank);
        ar.io(row);
        ar.io(logicalRow);
        ar.io(rowClass);
        ar.io(location);
        ar.io(admitCycle);
        ar.io(readyCycle);
        ar.io(firstCmdCycle);
        ar.io(preCycle);
        ar.io(actCycle);
        ar.io(colCycle);
        ar.io(dataCycle);
        ar.io(hasFirstCmd);
        ar.io(hasPre);
        ar.io(hasAct);
        ar.io(waitBlock);
        ar.io(waitRefresh);
        ar.io(fawStall);
        ar.io(blockedUntilCycle);
        ar.io(refreshBusyAtAdmit);
        ar.io(reserveBusyAtAdmit);
    }
};

/** Receives completed spans; implementations must not mutate state
 *  the simulation branches on (observation only). */
class RequestTraceSink
{
  public:
    virtual ~RequestTraceSink() = default;

    /** Called once per sampled request, at completion, in completion
     *  order (deterministic across engines and channel threading). */
    virtual void onSpan(const RequestSpan &span) = 0;
};

/** Broadcasts each completed span to every registered sink. */
class RequestSpanFanout : public RequestTraceSink
{
  public:
    /** Registers @p sink (ignored when null). Not owned. */
    void
    addSink(RequestTraceSink *sink)
    {
        if (sink)
            sinks_.push_back(sink);
    }

    void
    onSpan(const RequestSpan &span) override
    {
        for (RequestTraceSink *s : sinks_)
            s->onSpan(span);
    }

  private:
    std::vector<RequestTraceSink *> sinks_;
};

/**
 * Deterministic request sampler. Each call to maybeStart() consumes
 * one decision: the decision sequence number is hashed (splitmix64)
 * against the seed, so the sampled subset depends only on (seed,
 * rate, decision index) — never on wall-clock, engine or threading.
 * Decisions are made at request-creation points that are already
 * proven identical across engines/threads (MSHR allocation, writeback
 * emission, table-walk issue), so the same requests are sampled
 * everywhere.
 */
class RequestTracer
{
  public:
    /** @p rate in [0, 1]: 0 never samples, >= 1 samples every
     *  request, else a deterministic pseudo-random subset. */
    RequestTracer(std::uint64_t seed, double rate);

    /** Rolls the next decision; returns a fresh span (with sampleId
     *  set) when sampled, null otherwise. */
    std::unique_ptr<RequestSpan> maybeStart();

    double rate() const { return rate_; }
    std::uint64_t seed() const { return seed_; }
    std::uint64_t decisions() const { return decisions_; }
    std::uint64_t sampled() const { return sampled_; }

    /** Checkpoint the decision/sample counters (seed, rate and the
     *  derived threshold are config; the fingerprint pins them). */
    void
    serdeState(Archive &ar)
    {
        ar.section("reqTracer");
        ar.io(decisions_);
        ar.io(sampled_);
        ar.end();
    }

  private:
    std::uint64_t seed_;
    double rate_;
    std::uint64_t threshold_; ///< sample iff hash < threshold_
    std::uint64_t decisions_ = 0;
    std::uint64_t sampled_ = 0;
};

/** Identity stamped into the span-JSONL meta record. */
struct SpanJsonlMeta
{
    std::string workload;
    std::string design;
    std::string label;
    std::uint64_t seed = 0;
    double rate = 0.0;
};

/**
 * Streams completed spans as schema-versioned JSONL: one meta record
 * ("type":"meta", schema dasdram-spans v1) followed by one
 * "type":"span" record per completed span, in completion order.
 * Deterministic byte-for-byte for a given (seed, rate, workload).
 */
class SpanJsonlWriter : public RequestTraceSink
{
  public:
    /** Writes the meta record immediately. Stream must outlive us. */
    SpanJsonlWriter(std::ostream &os, const SpanJsonlMeta &meta);

    void onSpan(const RequestSpan &span) override;

    std::uint64_t spansWritten() const { return spans_; }

  private:
    std::ostream &os_;
    std::uint64_t spans_ = 0;
};

/**
 * In-sim critical-path aggregator: folds completed spans into
 * per-row-class and per-tenant latency-breakdown distributions that
 * ride the ordinary StatGroup tree (and therefore the stats-JSONL
 * export and epoch series). All values are memory-controller cycles.
 *
 * Row-class groups (classRowHit/classFast/classSlow) cover reads that
 * went through the controller — including table walks, mirroring the
 * rollup.readLatency histograms — so at sampling rate 1.0 their total
 * count/sum reconcile exactly with the aggregate histograms. Walks
 * and forwarded reads additionally get their own groups; per-tenant
 * groups split demand reads by issuing core.
 */
class CriticalPathAggregator : public RequestTraceSink
{
  public:
    explicit CriticalPathAggregator(unsigned num_tenants);

    void onSpan(const RequestSpan &span) override;

    StatGroup &stats() { return group_; }
    std::uint64_t spansSeen() const { return spansSeen_; }

    /** Checkpoint the raw span counter (the distributions live in the
     *  stat tree and ride the owner's serdeTree pass). */
    void
    serdeState(Archive &ar)
    {
        ar.section("spanAgg");
        ar.io(spansSeen_);
        ar.end();
    }

  private:
    /** One breakdown bundle: total + the five blame components. */
    struct Breakdown
    {
        Distribution total;
        Distribution waitQueue;
        Distribution waitBlock;
        Distribution waitRefresh;
        Distribution rowLatency;
        Distribution service;
        Distribution fawStall;

        void registerIn(StatGroup &g);
        void sample(const RequestSpan &s);
    };

    StatGroup group_{"reqtrace"};
    Counter spans_;

    StatGroup rowHitGroup_{"classRowHit"};
    StatGroup fastGroup_{"classFast"};
    StatGroup slowGroup_{"classSlow"};
    StatGroup writeGroup_{"writes"};
    StatGroup walkGroup_{"tableWalks"};
    StatGroup forwardGroup_{"forwarded"};
    Breakdown rowHit_;
    Breakdown fast_;
    Breakdown slow_;
    Breakdown writes_;
    Breakdown walks_;
    Breakdown forwarded_;

    struct Tenant
    {
        StatGroup group;
        Breakdown reads;
        explicit Tenant(const std::string &name) : group(name) {}
    };
    std::vector<std::unique_ptr<Tenant>> tenants_;

    std::uint64_t spansSeen_ = 0;
};

} // namespace dasdram

#endif // DASDRAM_MEM_REQUEST_TRACE_HH
