#include "request.hh"

#include "mem/request_trace.hh"

namespace dasdram
{

MemRequest::MemRequest() = default;

MemRequest::MemRequest(Addr a, bool write, int core)
    : addr(a), isWrite(write), coreId(core)
{}

MemRequest::MemRequest(MemRequest &&) noexcept = default;
MemRequest &MemRequest::operator=(MemRequest &&) noexcept = default;
MemRequest::~MemRequest() = default;

const char *
toString(ServiceLocation loc)
{
    switch (loc) {
      case ServiceLocation::Unknown:
        return "unknown";
      case ServiceLocation::RowBuffer:
        return "row-buffer";
      case ServiceLocation::FastLevel:
        return "fast-level";
      case ServiceLocation::SlowLevel:
        return "slow-level";
    }
    return "invalid";
}

} // namespace dasdram
