#include "request.hh"

#include "mem/request_trace.hh"

namespace dasdram
{

MemRequest::MemRequest() = default;

MemRequest::MemRequest(Addr a, bool write, int core)
    : addr(a), isWrite(write), coreId(core)
{}

MemRequest::MemRequest(MemRequest &&) noexcept = default;
MemRequest &MemRequest::operator=(MemRequest &&) noexcept = default;
MemRequest::~MemRequest() = default;

void
MemRequest::serdeState(Archive &ar)
{
    ar.section("req");
    ar.io(id);
    ar.io(addr);
    ar.io(isWrite);
    ar.io(coreId);
    ar.io(arrivalTick);
    ar.io(readyTick);
    ar.io(completionTick);
    ar.io(isTableAccess);
    ar.io(loc.channel);
    ar.io(loc.rank);
    ar.io(loc.bank);
    ar.io(loc.row);
    ar.io(loc.column);
    ar.io(logicalRow);
    ar.io(location);
    ar.io(servicedFast);
    cont.serdeState(ar);
    bool has_span = span != nullptr;
    ar.io(has_span);
    if (has_span) {
        if (ar.loading() && !span)
            span = std::make_unique<RequestSpan>();
        span->serdeState(ar);
    } else if (ar.loading()) {
        span.reset();
    }
    ar.end();
    if (ar.loading()) {
        // The readiness cache keys on bank/rank/bus versions that are
        // themselves restored, but recomputation is cheap and keeps
        // the invariant trivially true.
        sched = SchedCache{};
        onComplete = nullptr;
    }
}

const char *
toString(ServiceLocation loc)
{
    switch (loc) {
      case ServiceLocation::Unknown:
        return "unknown";
      case ServiceLocation::RowBuffer:
        return "row-buffer";
      case ServiceLocation::FastLevel:
        return "fast-level";
      case ServiceLocation::SlowLevel:
        return "slow-level";
    }
    return "invalid";
}

} // namespace dasdram
