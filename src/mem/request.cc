#include "request.hh"

namespace dasdram
{

const char *
toString(ServiceLocation loc)
{
    switch (loc) {
      case ServiceLocation::Unknown:
        return "unknown";
      case ServiceLocation::RowBuffer:
        return "row-buffer";
      case ServiceLocation::FastLevel:
        return "fast-level";
      case ServiceLocation::SlowLevel:
        return "slow-level";
    }
    return "invalid";
}

} // namespace dasdram
