/**
 * @file
 * Clock-domain definitions.
 *
 * All simulator time is kept in "ticks" of 1/12 ns so that both the CPU
 * clock (3 GHz, Table 1) and the DDR3-1600 command clock (800 MHz) have
 * integral periods: 4 ticks per CPU cycle, 15 ticks per memory cycle.
 */

#ifndef DASDRAM_MEM_CLOCK_HH
#define DASDRAM_MEM_CLOCK_HH

#include <cstdint>

#include "common/bitutil.hh"
#include "common/types.hh"

namespace dasdram
{

/** Simulation ticks per nanosecond (12 GHz tick clock). */
constexpr std::uint64_t kTicksPerNs = 12;

/** Ticks per 3 GHz CPU cycle. */
constexpr Cycle kCpuTick = 4;

/** Ticks per 800 MHz DDR3-1600 command-bus cycle (tCK = 1.25 ns). */
constexpr Cycle kMemTick = 15;

/** Convert nanoseconds to ticks, rounding up to whole memory cycles. */
constexpr Cycle
nsToMemCycles(double ns)
{
    // tCK = 1.25 ns; standard DRAM practice rounds parameters up.
    double cycles = ns / 1.25;
    auto whole = static_cast<Cycle>(cycles);
    return (static_cast<double>(whole) < cycles) ? whole + 1 : whole;
}

/** Convert nanoseconds to ticks (rounded up to a tick). */
constexpr Cycle
nsToTicks(double ns)
{
    double t = ns * static_cast<double>(kTicksPerNs);
    auto whole = static_cast<Cycle>(t);
    return (static_cast<double>(whole) < t) ? whole + 1 : whole;
}

/** Convert CPU cycles to ticks. */
constexpr Cycle
cpuCyclesToTicks(Cycle cycles)
{
    return cycles * kCpuTick;
}

/** Convert memory-bus cycles to ticks. */
constexpr Cycle
memCyclesToTicks(Cycle cycles)
{
    return cycles * kMemTick;
}

} // namespace dasdram

#endif // DASDRAM_MEM_CLOCK_HH
