#include "protocol_checker.hh"

#include <algorithm>
#include <ostream>

#include "common/strfmt.hh"

namespace dasdram
{

ProtocolChecker::ProtocolChecker(const DramGeometry &geom,
                                 const DramTiming &timing,
                                 const RowClassifier *classifier)
    : geom_(geom), timing_(timing), classifier_(classifier)
{
    reset();
}

void
ProtocolChecker::reset()
{
    banks_.assign(static_cast<std::size_t>(geom_.channels) *
                      geom_.ranksPerChannel * geom_.banksPerRank,
                  BankState{});
    ranks_.assign(static_cast<std::size_t>(geom_.channels) *
                      geom_.ranksPerChannel,
                  RankState{});
    channels_.assign(geom_.channels, ChannelState{});
    commands_ = 0;
    violations_ = 0;
    messages_.clear();
}

ProtocolChecker::BankState &
ProtocolChecker::bankAt(const CmdRecord &rec)
{
    std::size_t idx =
        (static_cast<std::size_t>(rec.channel) * geom_.ranksPerChannel +
         rec.rank) *
            geom_.banksPerRank +
        rec.bank;
    return banks_[idx];
}

ProtocolChecker::RankState &
ProtocolChecker::rankAt(const CmdRecord &rec)
{
    return ranks_[static_cast<std::size_t>(rec.channel) *
                      geom_.ranksPerChannel +
                  rec.rank];
}

void
ProtocolChecker::fail(const CmdRecord &rec, std::string what)
{
    ++violations_;
    if (messages_.size() < kMaxStoredMessages) {
        messages_.push_back(formatStr("cycle {} ch{} ra{} ba{} {}: {}",
                                      rec.cycle, rec.channel, rec.rank,
                                      rec.bank, toString(rec.cmd), what));
    }
}

void
ProtocolChecker::onCommand(const CmdRecord &rec)
{
    ++commands_;

    if (rec.channel >= geom_.channels ||
        rec.rank >= geom_.ranksPerChannel ||
        rec.bank >= geom_.banksPerRank) {
        fail(rec, "coordinates outside the configured geometry");
        return;
    }

    ChannelState &ch = channels_[rec.channel];
    if (ch.anyCmd && rec.cycle < ch.lastCmdAt) {
        fail(rec, formatStr("command time moved backwards (previous "
                            "command at cycle {})",
                            ch.lastCmdAt));
    } else if (ch.anyCmd && rec.cycle == ch.lastCmdAt) {
        fail(rec, "second command on the channel bus in one cycle");
    }
    ch.lastCmdAt = rec.cycle;
    ch.anyCmd = true;

    switch (rec.cmd) {
      case DramCommand::ACT:
        checkAct(rec);
        break;
      case DramCommand::RD:
      case DramCommand::WR:
        checkColumn(rec);
        break;
      case DramCommand::PRE:
        checkPre(rec);
        break;
      case DramCommand::REF:
        checkRef(rec);
        break;
      case DramCommand::MIGRATE:
        checkMigrate(rec);
        break;
    }
}

void
ProtocolChecker::checkAct(const CmdRecord &rec)
{
    BankState &bank = bankAt(rec);
    RankState &rank = rankAt(rec);
    const Cycle now = rec.cycle;

    if (rec.row >= geom_.rowsPerBank)
        fail(rec, formatStr("row {} outside the bank", rec.row));
    if (bank.open) {
        fail(rec, formatStr("ACT while row {} is already open (no PRE "
                            "issued)",
                            bank.row));
    }
    if (now < bank.earliestAct) {
        fail(rec, formatStr("tRC/tRP/tRFC violated: earliest ACT at "
                            "cycle {}",
                            bank.earliestAct));
    }
    if (bank.rowBlocked(now, rec.row)) {
        fail(rec, formatStr("ACT to row {} blocked by migration of "
                            "rows [{}, {}) until cycle {}",
                            rec.row, bank.resLo, bank.resHi,
                            bank.reservedUntil));
    }
    if (rank.actCount > 0 && now < rank.lastActAt + timing_.tRRD) {
        fail(rec, formatStr("tRRD violated: last rank ACT at cycle {}",
                            rank.lastActAt));
    }
    if (rank.actCount >= 4 &&
        now < rank.actTimes[rank.actHead] + timing_.tFAW) {
        fail(rec, formatStr("tFAW violated: fourth-last ACT at cycle {}",
                            rank.actTimes[rank.actHead]));
    }
    if (classifier_) {
        RowClass expect = classifier_->classify(rec.channel, rec.rank,
                                                rec.bank, rec.row);
        if (expect != rec.rowClass) {
            fail(rec, formatStr("row-class mismatch: controller says "
                                "{}, classifier says {}",
                                rec.rowClass == RowClass::Fast ? "fast"
                                                               : "slow",
                                expect == RowClass::Fast ? "fast"
                                                         : "slow"));
        }
    }

    const ArrayTiming &at = timing_.array(rec.rowClass);
    bank.open = true;
    bank.row = rec.row;
    bank.cls = rec.rowClass;
    bank.earliestCol = now + at.tRCD;
    bank.earliestPre = now + at.tRAS;
    bank.earliestAct = now + at.tRC;

    rank.actTimes[rank.actHead] = now;
    rank.actHead = (rank.actHead + 1) % 4;
    rank.lastActAt = now;
    ++rank.actCount;
}

void
ProtocolChecker::checkColumn(const CmdRecord &rec)
{
    BankState &bank = bankAt(rec);
    RankState &rank = rankAt(rec);
    ChannelState &ch = channels_[rec.channel];
    const Cycle now = rec.cycle;
    const bool is_write = rec.cmd == DramCommand::WR;

    if (!bank.open) {
        fail(rec, "column command to a precharged bank");
        return; // no open-row state to update
    }
    if (rec.row != bank.row) {
        fail(rec, formatStr("column command to row {} but row {} is "
                            "open",
                            rec.row, bank.row));
    }
    if (rec.rowClass != bank.cls)
        fail(rec, "row class does not match the activated row's class");
    if (now < bank.earliestCol) {
        fail(rec, formatStr("tRCD violated: earliest column command at "
                            "cycle {}",
                            bank.earliestCol));
    }
    if (now < ch.nextColAllowedAt) {
        fail(rec, formatStr("tCCD violated: earliest column command at "
                            "cycle {}",
                            ch.nextColAllowedAt));
    }
    if (bank.rowBlocked(now, rec.row)) {
        fail(rec, formatStr("column command to row {} mid-migration "
                            "(rows [{}, {}) blocked until cycle {})",
                            rec.row, bank.resLo, bank.resHi,
                            bank.reservedUntil));
    }
    if (!is_write && now < rank.readAllowedAt) {
        fail(rec, formatStr("tWTR violated: earliest RD at cycle {}",
                            rank.readAllowedAt));
    }

    // Data-bus occupancy: the burst must not overlap the previous one,
    // plus tRTRS when the bus changes rank or direction.
    const Cycle burst_start =
        now + (is_write ? timing_.tCWL : timing_.array(bank.cls).tCL);
    Cycle bus_ready = ch.dataBusFreeAt;
    if (ch.lastBusRank >= 0 &&
        (static_cast<unsigned>(ch.lastBusRank) != rec.rank ||
         ch.lastBusWasWrite != is_write)) {
        bus_ready += timing_.tRTRS;
    }
    if (burst_start < bus_ready) {
        fail(rec, formatStr("data-bus conflict: burst starts at cycle "
                            "{} but the bus is busy until {}",
                            burst_start, bus_ready));
    }

    const Cycle burst_end = burst_start + timing_.tBL;
    ch.nextColAllowedAt = now + timing_.tCCD;
    ch.dataBusFreeAt = burst_end;
    ch.lastBusRank = static_cast<int>(rec.rank);
    ch.lastBusWasWrite = is_write;
    if (is_write) {
        bank.earliestPre =
            std::max(bank.earliestPre, burst_end + timing_.tWR);
        rank.readAllowedAt =
            std::max(rank.readAllowedAt, burst_end + timing_.tWTR);
    } else {
        bank.earliestPre = std::max(bank.earliestPre, now + timing_.tRTP);
    }
}

void
ProtocolChecker::checkPre(const CmdRecord &rec)
{
    BankState &bank = bankAt(rec);
    const Cycle now = rec.cycle;

    if (!bank.open) {
        fail(rec, "PRE to a bank with no open row");
        return;
    }
    if (now < bank.earliestPre) {
        fail(rec, formatStr("tRAS/tRTP/tWR violated: earliest PRE at "
                            "cycle {}",
                            bank.earliestPre));
    }
    if (rec.row != bank.row) {
        fail(rec, formatStr("PRE reports row {} but row {} is open",
                            rec.row, bank.row));
    }

    bank.open = false;
    bank.earliestAct = std::max(bank.earliestAct,
                                now + timing_.array(bank.cls).tRP);
}

void
ProtocolChecker::checkRef(const CmdRecord &rec)
{
    const Cycle now = rec.cycle;
    if (rec.duration != timing_.tRFC) {
        fail(rec, formatStr("refresh busy time {} != tRFC {}",
                            rec.duration, timing_.tRFC));
    }
    for (unsigned bi = 0; bi < geom_.banksPerRank; ++bi) {
        CmdRecord probe = rec;
        probe.bank = bi;
        BankState &bank = bankAt(probe);
        if (bank.open) {
            fail(rec, formatStr("REF with bank {} row {} still open",
                                bi, bank.row));
        }
        if (bank.reserved(now)) {
            fail(rec, formatStr("REF with bank {} mid-migration until "
                                "cycle {}",
                                bi, bank.reservedUntil));
        }
        if (now < bank.earliestAct) {
            fail(rec, formatStr("REF while bank {} is busy until cycle "
                                "{} (tRP/tRC not elapsed)",
                                bi, bank.earliestAct));
        }
        bank.earliestAct =
            std::max(bank.earliestAct, now + timing_.tRFC);
    }
}

void
ProtocolChecker::checkMigrate(const CmdRecord &rec)
{
    BankState &bank = bankAt(rec);
    const Cycle now = rec.cycle;

    if (bank.reserved(now)) {
        fail(rec, formatStr("migration-window exclusivity violated: "
                            "bank already reserved until cycle {}",
                            bank.reservedUntil));
    }
    if (now < bank.earliestAct) {
        fail(rec, formatStr("MIGRATE while the array is busy: earliest "
                            "at cycle {}",
                            bank.earliestAct));
    }
    if (bank.open && bank.row >= rec.rowLo && bank.row < rec.rowHi &&
        bank.row != rec.row && bank.row != rec.rowB) {
        fail(rec, formatStr("MIGRATE with open row {} inside the "
                            "blocked range [{}, {})",
                            bank.row, rec.rowLo, rec.rowHi));
    }
    if (rec.row < rec.rowLo || rec.row >= rec.rowHi ||
        rec.rowB < rec.rowLo || rec.rowB >= rec.rowHi) {
        fail(rec, formatStr("migrated rows {} and {} outside the "
                            "blocked range [{}, {})",
                            rec.row, rec.rowB, rec.rowLo, rec.rowHi));
    }
    if (rec.duration != timing_.migrationCycles &&
        rec.duration != timing_.swapCycles) {
        fail(rec, formatStr("migration busy time {} is neither one "
                            "migration ({}) nor a full swap ({})",
                            rec.duration, timing_.migrationCycles,
                            timing_.swapCycles));
    }
    if (rec.migrationId == 0)
        fail(rec, "MIGRATE without a migration-job id");

    bank.reservedUntil = now + rec.duration;
    bank.resLo = rec.rowLo;
    bank.resHi = rec.rowHi;
    bank.exemptA = rec.row;
    bank.exemptB = rec.rowB;
}

void
ProtocolChecker::report(std::ostream &os) const
{
    os << "protocol checker: " << commands_ << " commands, "
       << violations_ << " violation(s)\n";
    for (const std::string &m : messages_)
        os << "  " << m << '\n';
    if (violations_ > messages_.size()) {
        os << "  ... and " << (violations_ - messages_.size())
           << " more\n";
    }
}

} // namespace dasdram
