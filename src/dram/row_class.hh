/**
 * @file
 * Row class (fast vs. slow subarray) and the classifier interface the
 * DRAM timing model uses to pick per-row parameters.
 */

#ifndef DASDRAM_DRAM_ROW_CLASS_HH
#define DASDRAM_DRAM_ROW_CLASS_HH

#include <cstdint>

#include "dram/geometry.hh"

namespace dasdram
{

/** Which kind of subarray a physical row lives in. */
enum class RowClass : std::uint8_t
{
    Slow, ///< commodity 512-cell bitline subarray
    Fast, ///< short 128-cell bitline subarray
};

/**
 * Maps a physical row to its subarray class. Implemented by the
 * asymmetric subarray layout in src/core; the homogeneous layouts
 * (standard and FS-DRAM) are provided here.
 */
class RowClassifier
{
  public:
    virtual ~RowClassifier() = default;

    /** Class of bank-local @p row in (@p channel, @p rank, @p bank). */
    virtual RowClass classify(unsigned channel, unsigned rank,
                              unsigned bank, std::uint64_t row) const = 0;

    RowClass
    classify(const DramLoc &loc) const
    {
        return classify(loc.channel, loc.rank, loc.bank, loc.row);
    }
};

/** Every row is the same class — standard DRAM (Slow) or FS-DRAM (Fast). */
class UniformRowClassifier : public RowClassifier
{
  public:
    explicit UniformRowClassifier(RowClass cls) : cls_(cls) {}

    RowClass
    classify(unsigned, unsigned, unsigned, std::uint64_t) const override
    {
        return cls_;
    }

  private:
    RowClass cls_;
};

} // namespace dasdram

#endif // DASDRAM_DRAM_ROW_CLASS_HH
