#include "dram_system.hh"

#include <algorithm>

#include "common/log.hh"

namespace dasdram
{

DramSystem::DramSystem(const DramGeometry &geom, const DramTiming &timing,
                       const RowClassifier &classifier,
                       const ControllerConfig &ctrl_cfg,
                       MappingScheme scheme)
    : timing_(timing), mapper_(geom, scheme), statGroup_("dram")
{
    channels_.reserve(geom.channels);
    for (unsigned c = 0; c < geom.channels; ++c) {
        channels_.push_back(std::make_unique<ChannelController>(
            c, geom, timing_, classifier, ctrl_cfg));
        statGroup_.addChild(&channels_.back()->stats());
    }
    statGroup_.addCounter("forwardedReads", &forwardedReads_,
                          "reads served from a channel write queue");
}

bool
DramSystem::canAccept(const DramLoc &loc, bool is_write) const
{
    return channels_[loc.channel]->canAccept(is_write);
}

void
DramSystem::submit(std::unique_ptr<MemRequest> req, Cycle now_tick)
{
    const Cycle mem_now = now_tick / kMemTick;
    ChannelController &ch = *channels_[req->loc.channel];

    // Completion callbacks cross the clock-domain boundary here: the
    // controller reports memory cycles; consumers expect ticks.
    if (req->onComplete) {
        auto user = std::move(req->onComplete);
        req->onComplete = [user = std::move(user)](MemRequest &r,
                                                   Cycle mem_at) {
            user(r, mem_at * kMemTick);
        };
    }

    if (!req->isWrite && ch.writeQueued(req->addr)) {
        // Read-after-write forwarding from the write queue: the data is
        // still in the controller; serve it at roughly CAS latency
        // without touching the banks.
        forwardedReads_.inc();
        req->location = ServiceLocation::RowBuffer;
        Cycle done = mem_now + timing_.slow.tCL + timing_.tBL;
        req->completionTick = done;
        if (req->onComplete)
            req->onComplete(*req, done);
        return;
    }

    ch.enqueue(std::move(req), mem_now);
}

void
DramSystem::startMigration(unsigned channel, unsigned rank, unsigned bank,
                           std::uint64_t row_a, std::uint64_t row_b,
                           bool full_swap, std::uint64_t row_lo,
                           std::uint64_t row_hi,
                           std::function<void(Cycle)> on_done)
{
    MigrationJob job;
    job.rank = rank;
    job.bank = bank;
    job.rowA = row_a;
    job.rowB = row_b;
    job.fullSwap = full_swap;
    job.rowLo = row_lo;
    job.rowHi = row_hi;
    job.onDone = [cb = std::move(on_done)](Cycle mem_at) {
        if (cb)
            cb(mem_at * kMemTick);
    };
    channels_[channel]->addMigration(std::move(job));
}

void
DramSystem::setCommandSink(CommandSink *sink)
{
    for (const auto &ch : channels_)
        ch->setCommandSink(sink);
}

void
DramSystem::tick(Cycle now_tick)
{
    const Cycle target = now_tick / kMemTick;
    while (lastMemCycle_ < target) {
        Cycle next_needed = kCycleMax;
        for (const auto &ch : channels_) {
            next_needed =
                std::min(next_needed, ch->nextWakeCycle(lastMemCycle_));
        }
        if (next_needed > target) {
            lastMemCycle_ = target;
            break;
        }
        lastMemCycle_ = std::max(lastMemCycle_ + 1, next_needed);
        for (const auto &ch : channels_)
            ch->tick(lastMemCycle_);
    }
}

Cycle
DramSystem::nextWakeTick(Cycle now_tick) const
{
    const Cycle mem_now = now_tick / kMemTick;
    Cycle next = kCycleMax;
    for (const auto &ch : channels_)
        next = std::min(next, ch->nextWakeCycle(mem_now));
    if (next == kCycleMax)
        return kCycleMax;
    return next * kMemTick;
}

bool
DramSystem::busy() const
{
    return std::any_of(channels_.begin(), channels_.end(),
                       [](const auto &ch) { return ch->busy(); });
}

EnergyBreakdown
DramSystem::energyBreakdown() const
{
    EnergyBreakdown e;
    for (const auto &ch : channels_) {
        e.actsSlow += ch->actCountSlow();
        e.actsFast += ch->actCountFast();
        e.reads += ch->readCount();
        e.writes += ch->writeCount();
        e.swaps += ch->migrationCount();
        for (unsigned r = 0; r < geometry().ranksPerChannel; ++r)
            e.refreshes += ch->rank(r).refreshCount();
    }
    return e;
}

} // namespace dasdram
