#include "dram_system.hh"

#include <algorithm>

#include "common/log.hh"
#include "mem/request_trace.hh"

namespace dasdram
{

DramSystem::DramSystem(const DramGeometry &geom, const DramTiming &timing,
                       const RowClassifier &classifier,
                       const ControllerConfig &ctrl_cfg,
                       MappingScheme scheme)
    : timing_(timing), mapper_(geom, scheme), sink_(ctrl_cfg.cmdSink),
      spanSink_(ctrl_cfg.spanSink), statGroup_("dram")
{
    channels_.reserve(geom.channels);
    for (unsigned c = 0; c < geom.channels; ++c) {
        channels_.push_back(std::make_unique<ChannelController>(
            c, geom, timing_, classifier, ctrl_cfg));
        statGroup_.addChild(&channels_.back()->stats());
    }
    statGroup_.addCounter("forwardedReads", &forwardedReads_,
                          "reads served from a channel write queue");

    // Shortest issue-to-side-effect latency: a read's data return
    // (CAS + burst, fast class is the minimum) or a migration/swap
    // completing. Anything issued inside a span shorter than this
    // completes strictly after the span, so spans are callback-free.
    const Cycle min_cas =
        std::min(timing_.fast.tCL, timing_.slow.tCL) + timing_.tBL;
    minReadSpan_ = std::min(
        min_cas, std::min(timing_.migrationCycles, timing_.swapCycles));
    if (minReadSpan_ == 0)
        minReadSpan_ = 1;
}

DramSystem::~DramSystem()
{
    stopWorkers();
}

bool
DramSystem::canAccept(const DramLoc &loc, bool is_write) const
{
    return channels_[loc.channel]->canAccept(is_write);
}

void
DramSystem::submit(std::unique_ptr<MemRequest> req, Cycle now_tick)
{
    const Cycle mem_now = now_tick / kMemTick;
    ChannelController &ch = *channels_[req->loc.channel];

    // Completion callbacks cross the clock-domain boundary here: the
    // controller reports memory cycles; consumers expect ticks.
    if (req->onComplete) {
        auto user = std::move(req->onComplete);
        req->onComplete = [user = std::move(user)](MemRequest &r,
                                                   Cycle mem_at) {
            user(r, mem_at * kMemTick);
        };
    }

    if (!req->isWrite && ch.writeQueued(req->addr)) {
        // Read-after-write forwarding from the write queue: the data is
        // still in the controller; serve it at roughly CAS latency
        // without touching the banks.
        forwardedReads_.inc();
        req->location = ServiceLocation::RowBuffer;
        Cycle done = mem_now + timing_.slow.tCL + timing_.tBL;
        req->completionTick = done;
        if (req->span) {
            // Forwarded reads never reach a channel controller, so
            // the span is closed (and emitted) here: the whole
            // latency is service time, no queue/row stages.
            RequestSpan &s = *req->span;
            s.forwarded = true;
            s.channel = req->loc.channel;
            s.rank = req->loc.rank;
            s.bank = req->loc.bank;
            s.row = req->loc.row;
            s.logicalRow = req->logicalRow;
            s.location = ServiceLocation::RowBuffer;
            s.admitCycle = mem_now;
            s.readyCycle = mem_now;
            s.hasFirstCmd = true;
            s.firstCmdCycle = mem_now;
            s.colCycle = mem_now;
            s.dataCycle = done;
            if (spanSink_)
                spanSink_->onSpan(s);
        }
        if (req->onComplete)
            req->onComplete(*req, done);
        return;
    }

    ch.enqueue(std::move(req), mem_now);
}

void
DramSystem::startMigration(unsigned channel, unsigned rank, unsigned bank,
                           std::uint64_t row_a, std::uint64_t row_b,
                           bool full_swap, std::uint64_t row_lo,
                           std::uint64_t row_hi,
                           std::function<void(Cycle)> on_done,
                           std::uint64_t group)
{
    MigrationJob job;
    job.rank = rank;
    job.bank = bank;
    job.rowA = row_a;
    job.rowB = row_b;
    job.fullSwap = full_swap;
    job.rowLo = row_lo;
    job.rowHi = row_hi;
    job.group = group;
    job.onDone = [cb = std::move(on_done)](Cycle mem_at) {
        if (cb)
            cb(mem_at * kMemTick);
    };
    channels_[channel]->addMigration(std::move(job));
}

void
DramSystem::serdeState(Archive &ar)
{
    ar.section("dramSystem");
    ar.io(lastMemCycle_);
    ar.expectCount(channels_.size(), "channels");
    for (const auto &ch : channels_)
        ch->serdeState(ar);
    ar.end();
}

void
DramSystem::rebindRequests(
    const std::function<MemRequest::Callback(const MemRequest &)> &binder)
{
    for (const auto &ch : channels_) {
        ch->forEachRequest([&](MemRequest &req) {
            MemRequest::Callback user = binder(req);
            if (!user) {
                req.onComplete = nullptr;
                return;
            }
            // Same tick-domain wrap submit() applies to live requests.
            req.onComplete = [user = std::move(user)](MemRequest &r,
                                                      Cycle mem_at) {
                user(r, mem_at * kMemTick);
            };
        });
    }
}

void
DramSystem::rebindMigrations(
    const std::function<std::function<void(Cycle)>(const MigrationJob &)>
        &binder)
{
    for (const auto &ch : channels_) {
        ch->forEachMigration([&](MigrationJob &job) {
            auto cb = binder(job);
            job.onDone = [cb = std::move(cb)](Cycle mem_at) {
                if (cb)
                    cb(mem_at * kMemTick);
            };
        });
    }
}

void
DramSystem::setCommandSink(CommandSink *sink)
{
    sink_ = sink;
    for (const auto &ch : channels_)
        ch->setCommandSink(sink);
}

void
DramSystem::setRequestTraceSink(RequestTraceSink *sink)
{
    spanSink_ = sink;
    for (const auto &ch : channels_)
        ch->setSpanSink(sink);
}

void
DramSystem::setChannelThreads(unsigned n)
{
    if (n == 0)
        n = 1;
    n = std::min(n, numChannels());
    if (n == threads_)
        return;
    stopWorkers();
    threads_ = n;
    if (threads_ > 1)
        startWorkers();
}

void
DramSystem::startWorkers()
{
    spanSinks_.resize(numChannels());
    workers_.reserve(threads_ - 1);
    for (unsigned i = 0; i + 1 < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
DramSystem::stopWorkers()
{
    if (workers_.empty())
        return;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        shutdown_ = true;
    }
    cvStart_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
    shutdown_ = false;
}

void
DramSystem::workerLoop()
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mtx_);
    for (;;) {
        cvStart_.wait(lk, [&] { return shutdown_ || spanGen_ != seen; });
        if (shutdown_)
            return;
        seen = spanGen_;
        const Cycle from = spanFrom_;
        const Cycle hi = spanHi_;
        lk.unlock();
        const unsigned n = numChannels();
        for (;;) {
            const unsigned c =
                nextSpanChannel_.fetch_add(1, std::memory_order_relaxed);
            if (c >= n)
                break;
            advanceChannelSpan(c, from, hi);
        }
        lk.lock();
        if (--busyWorkers_ == 0)
            cvDone_.notify_one();
    }
}

Cycle
DramSystem::parallelSpanEnd(Cycle target) const
{
    const Cycle hi = std::min(target, lastMemCycle_ + minReadSpan_);
    if (hi <= lastMemCycle_)
        return lastMemCycle_;
    for (const auto &ch : channels_) {
        if (!ch->parallelSafeThrough(hi))
            return lastMemCycle_;
    }
    return hi;
}

void
DramSystem::advanceChannelSpan(unsigned c, Cycle from, Cycle hi)
{
    // Identical trajectory to the serial catch-up loop restricted to
    // this channel: every cycle skipped here is below the channel's own
    // horizon, where its tick() is a proven no-op.
    ChannelController &ch = *channels_[c];
    Cycle cur = from;
    while (cur < hi) {
        const Cycle w = ch.nextWakeCycle(cur);
        if (w > hi)
            break;
        cur = std::max(cur + 1, w);
        ch.tick(cur);
    }
}

void
DramSystem::runSpanParallel(Cycle from, Cycle hi)
{
    const unsigned n = numChannels();
    // Divert each channel's command stream into a per-channel buffer so
    // concurrent channels never touch the shared sink.
    for (unsigned c = 0; c < n; ++c) {
        spanSinks_[c].records.clear();
        channels_[c]->setCommandSink(sink_ ? &spanSinks_[c] : nullptr);
    }

    {
        std::lock_guard<std::mutex> lk(mtx_);
        spanFrom_ = from;
        spanHi_ = hi;
        nextSpanChannel_.store(0, std::memory_order_relaxed);
        busyWorkers_ = static_cast<unsigned>(workers_.size());
        ++spanGen_;
    }
    cvStart_.notify_all();

    // The main thread claims channels alongside the workers.
    for (;;) {
        const unsigned c =
            nextSpanChannel_.fetch_add(1, std::memory_order_relaxed);
        if (c >= n)
            break;
        advanceChannelSpan(c, from, hi);
    }
    {
        std::unique_lock<std::mutex> lk(mtx_);
        cvDone_.wait(lk, [&] { return busyWorkers_ == 0; });
    }

    for (unsigned c = 0; c < n; ++c)
        channels_[c]->setCommandSink(sink_);

    if (!sink_)
        return;
    // Merge buffered records back into exact serial issue order: the
    // serial loop visits channels in index order at each cycle, so a
    // stable sort by cycle over channel-ordered buffers reproduces it
    // (per-channel emission order is preserved by stability).
    mergeBuf_.clear();
    for (unsigned c = 0; c < n; ++c) {
        mergeBuf_.insert(mergeBuf_.end(), spanSinks_[c].records.begin(),
                         spanSinks_[c].records.end());
    }
    std::stable_sort(mergeBuf_.begin(), mergeBuf_.end(),
                     [](const CmdRecord &a, const CmdRecord &b) {
                         return a.cycle < b.cycle;
                     });
    for (const CmdRecord &rec : mergeBuf_)
        sink_->onCommand(rec);
}

void
DramSystem::tick(Cycle now_tick)
{
    const Cycle target = now_tick / kMemTick;
    while (lastMemCycle_ < target) {
        Cycle next_needed = kCycleMax;
        for (const auto &ch : channels_) {
            next_needed =
                std::min(next_needed, ch->nextWakeCycle(lastMemCycle_));
        }
        if (next_needed > target) {
            lastMemCycle_ = target;
            break;
        }
        if (threads_ > 1) {
            const Cycle hi = parallelSpanEnd(target);
            if (hi > lastMemCycle_ && next_needed <= hi) {
                runSpanParallel(lastMemCycle_, hi);
                lastMemCycle_ = hi;
                continue;
            }
        }
        lastMemCycle_ = std::max(lastMemCycle_ + 1, next_needed);
        for (const auto &ch : channels_)
            ch->tick(lastMemCycle_);
    }
}

Cycle
DramSystem::nextWakeMemCycle(Cycle mem_now) const
{
    Cycle next = kCycleMax;
    for (const auto &ch : channels_)
        next = std::min(next, ch->nextWakeCycle(mem_now));
    return next;
}

Cycle
DramSystem::nextWakeTick(Cycle now_tick) const
{
    const Cycle next = nextWakeMemCycle(now_tick / kMemTick);
    if (next == kCycleMax)
        return kCycleMax;
    return next * kMemTick;
}

bool
DramSystem::busy() const
{
    return std::any_of(channels_.begin(), channels_.end(),
                       [](const auto &ch) { return ch->busy(); });
}

EnergyBreakdown
DramSystem::energyBreakdown() const
{
    EnergyBreakdown e;
    for (const auto &ch : channels_) {
        e.actsSlow += ch->actCountSlow();
        e.actsFast += ch->actCountFast();
        e.reads += ch->readCount();
        e.writes += ch->writeCount();
        e.swaps += ch->migrationCount();
        for (unsigned r = 0; r < geometry().ranksPerChannel; ++r)
            e.refreshes += ch->rank(r).refreshCount();
    }
    return e;
}

} // namespace dasdram
