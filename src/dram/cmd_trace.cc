#include "cmd_trace.hh"

#include <ostream>

namespace dasdram
{

void
CommandTrace::onCommand(const CmdRecord &rec)
{
    std::ostream &os = *os_;
    os << rec.cycle << ' ' << toString(rec.cmd) << " ch" << rec.channel
       << " ra" << rec.rank;
    switch (rec.cmd) {
      case DramCommand::ACT:
      case DramCommand::PRE:
        os << " ba" << rec.bank << " row=" << rec.row
           << " cls=" << (rec.rowClass == RowClass::Fast ? 'F' : 'S');
        break;
      case DramCommand::RD:
      case DramCommand::WR:
        os << " ba" << rec.bank << " row=" << rec.row
           << " cls=" << (rec.rowClass == RowClass::Fast ? 'F' : 'S')
           << " col=" << rec.column;
        break;
      case DramCommand::REF:
        os << " dur=" << rec.duration;
        break;
      case DramCommand::MIGRATE:
        os << " ba" << rec.bank << " rowA=" << rec.row
           << " rowB=" << rec.rowB << " range=[" << rec.rowLo << ','
           << rec.rowHi << ") id=" << rec.migrationId
           << " dur=" << rec.duration;
        break;
    }
    os << '\n';
    ++count_;
}

} // namespace dasdram
