/**
 * @file
 * DRAM system geometry (channels/ranks/banks/rows/columns) and the
 * decoded location of a cache-line request.
 */

#ifndef DASDRAM_DRAM_GEOMETRY_HH
#define DASDRAM_DRAM_GEOMETRY_HH

#include <cstdint>

#include "common/bitutil.hh"
#include "common/types.hh"

namespace dasdram
{

/**
 * Physical organisation of the memory system. Defaults follow Table 1:
 * two 4 GB DDR3-1600 DIMMs, 2 channels, 2 ranks per channel, 8 banks per
 * rank, 8 KB rows, 64 B cache lines.
 */
struct DramGeometry
{
    unsigned channels = 2;
    unsigned ranksPerChannel = 2;
    unsigned banksPerRank = 8;
    std::uint64_t rowsPerBank = 32 * 1024; ///< 256 MB per bank
    std::uint64_t rowBytes = 8 * KiB;      ///< row-buffer size per bank
    std::uint64_t lineBytes = 64;

    /** Total capacity in bytes. */
    std::uint64_t
    capacityBytes() const
    {
        return static_cast<std::uint64_t>(channels) * ranksPerChannel *
               banksPerRank * rowsPerBank * rowBytes;
    }

    /** Total number of DRAM rows across the system. */
    std::uint64_t
    totalRows() const
    {
        return static_cast<std::uint64_t>(channels) * ranksPerChannel *
               banksPerRank * rowsPerBank;
    }

    /** Number of banks across the system. */
    unsigned
    totalBanks() const
    {
        return channels * ranksPerChannel * banksPerRank;
    }

    /** Cache lines per row. */
    std::uint64_t
    linesPerRow() const
    {
        return rowBytes / lineBytes;
    }

    /** True iff all fields are powers of two (required by the mapper). */
    bool valid() const;
};

/** Decoded per-request DRAM coordinates. */
struct DramLoc
{
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    std::uint64_t column = 0; ///< line-sized column index within the row

    bool
    sameBank(const DramLoc &o) const
    {
        return channel == o.channel && rank == o.rank && bank == o.bank;
    }

    bool
    sameRow(const DramLoc &o) const
    {
        return sameBank(o) && row == o.row;
    }
};

/**
 * Flat identifier of a (channel, rank, bank, row) tuple, used as the
 * logical-row key of the DAS translation table.
 */
using GlobalRowId = std::uint64_t;

/** Compose a GlobalRowId; row is the bank-local row index. */
GlobalRowId makeGlobalRowId(const DramGeometry &g, unsigned channel,
                            unsigned rank, unsigned bank,
                            std::uint64_t row);

/** Decompose a GlobalRowId back into coordinates (column = 0). */
DramLoc decodeGlobalRowId(const DramGeometry &g, GlobalRowId id);

} // namespace dasdram

#endif // DASDRAM_DRAM_GEOMETRY_HH
