#include "rank.hh"

#include <algorithm>

#include "common/log.hh"

namespace dasdram
{

Rank::Rank(const DramTiming &timing, unsigned num_banks)
    : timing_(&timing), nextRefreshAt_(timing.tREFI)
{
    banks_.reserve(num_banks);
    for (unsigned i = 0; i < num_banks; ++i)
        banks_.emplace_back(timing);
}

bool
Rank::canActivate(Cycle now) const
{
    return now >= activateAllowedAt();
}

Cycle
Rank::activateAllowedAt() const
{
    if (actCount_ == 0)
        return 0;
    // tRRD from the last ACT; tFAW from the 4th-most-recent ACT (only
    // once four activates have happened).
    Cycle allowed = lastActAt_ + timing_->tRRD;
    if (actCount_ >= actTimes_.size())
        allowed = std::max(allowed, actTimes_[actHead_] + timing_->tFAW);
    return allowed;
}

void
Rank::recordActivate(Cycle now)
{
    if (!canActivate(now))
        panic("Rank::recordActivate violates tRRD/tFAW at cycle {}", now);
    ++version_;
    actTimes_[actHead_] = now;
    actHead_ = (actHead_ + 1) % actTimes_.size();
    lastActAt_ = now;
    ++actCount_;
}

void
Rank::recordWriteBurst(Cycle burst_end)
{
    ++version_;
    readAllowedAt_ = std::max(readAllowedAt_, burst_end + timing_->tWTR);
}

bool
Rank::allBanksIdle(Cycle now) const
{
    for (const Bank &b : banks_) {
        if (b.hasOpenRow() || b.reserved(now))
            return false;
    }
    return true;
}

void
Rank::refresh(Cycle now)
{
    if (!allBanksIdle(now))
        panic("Rank::refresh with open or reserved banks at cycle {}", now);
    ++version_;
    Cycle done = now + timing_->tRFC;
    refreshingUntil_ = done;
    refreshBusyTotal_ += timing_->tRFC;
    for (Bank &b : banks_)
        b.refresh(done);
    nextRefreshAt_ += timing_->tREFI;
    // If the controller fell behind (e.g. long migration burst), do not
    // schedule refreshes in the past.
    if (nextRefreshAt_ <= now)
        nextRefreshAt_ = now + timing_->tREFI;
    ++refreshCount_;
}

} // namespace dasdram
