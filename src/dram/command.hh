/**
 * @file
 * DRAM command set.
 */

#ifndef DASDRAM_DRAM_COMMAND_HH
#define DASDRAM_DRAM_COMMAND_HH

namespace dasdram
{

/** Commands a memory controller can place on the command bus. */
enum class DramCommand
{
    ACT,     ///< activate a row into the row buffer
    RD,      ///< column read (with implicit burst)
    WR,      ///< column write
    PRE,     ///< precharge the bank
    REF,     ///< all-bank refresh (per rank)
    MIGRATE, ///< internal row migration / swap sequence (DAS-DRAM)
};

/** Short display name of a command. */
const char *toString(DramCommand cmd);

} // namespace dasdram

#endif // DASDRAM_DRAM_COMMAND_HH
