/**
 * @file
 * Online DRAM protocol checker: replays the command stream a
 * ChannelController emits against an independent reimplementation of
 * the timing rules in dram/timing.hh. It shares no state with Bank /
 * Rank / ChannelController — only the DramTiming parameters and the
 * geometry — so a scheduling bug in the controller cannot silently
 * relax the rules it is checked against.
 *
 * Checked rules (see DESIGN.md "Protocol checker" for the full table):
 *  - per-bank:   tRCD, tRAS, tRP, tRC, tRTP, tWR — per row class
 *  - per-rank:   tRRD, tFAW (4-ACT window), tWTR, refresh drain + tRFC
 *  - per-channel: tCCD, data-bus burst occupancy + tRTRS,
 *                 one command per channel per cycle, monotonic time
 *  - DAS:        migration-window exclusivity, no ACT/column command
 *                to a row mid-migration, row-class coherence against
 *                the row classifier
 */

#ifndef DASDRAM_DRAM_PROTOCOL_CHECKER_HH
#define DASDRAM_DRAM_PROTOCOL_CHECKER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/serde.hh"
#include "common/types.hh"
#include "dram/cmd_trace.hh"
#include "dram/geometry.hh"
#include "dram/row_class.hh"
#include "dram/timing.hh"

namespace dasdram
{

/**
 * A CommandSink that validates every command against the DDR3 / DAS
 * timing state machine. Violations are collected (bounded message
 * list, unbounded count); callers decide whether to panic.
 */
class ProtocolChecker : public CommandSink
{
  public:
    /**
     * @param geom       channel/rank/bank shape of the checked system.
     * @param timing     the *reference* timing the stream must respect
     *                   (copied). Pass the true device timing even when
     *                   the controller under test runs modified timing.
     * @param classifier optional row-class oracle; when given, the row
     *        class stamped on each ACT is checked against it. Must
     *        outlive the checker.
     */
    ProtocolChecker(const DramGeometry &geom, const DramTiming &timing,
                    const RowClassifier *classifier = nullptr);

    void onCommand(const CmdRecord &rec) override;

    /// @name Results
    /// @{
    std::uint64_t commandCount() const { return commands_; }
    std::uint64_t violationCount() const { return violations_; }

    /** First violation message ("" when clean). */
    const std::string &
    firstViolation() const
    {
        static const std::string empty;
        return messages_.empty() ? empty : messages_.front();
    }

    /** Stored violation messages (first kMaxStoredMessages). */
    const std::vector<std::string> &messages() const { return messages_; }

    /** One-paragraph summary (command count, violations, first few). */
    void report(std::ostream &os) const;
    /// @}

    /** Forget all state and results (e.g. between fuzz cases). */
    void reset();

    /**
     * Checkpoint the full timing state machine plus the verdict so
     * far. Field-wise rather than pod() blobs: struct padding never
     * leaks into the stream, keeping snapshot bytes deterministic.
     */
    void
    serdeState(Archive &ar)
    {
        ar.section("protoChecker");
        ar.expectCount(banks_.size(), "checker banks");
        for (BankState &b : banks_) {
            ar.io(b.open);
            ar.io(b.row);
            ar.io(b.cls);
            ar.io(b.earliestAct);
            ar.io(b.earliestPre);
            ar.io(b.earliestCol);
            ar.io(b.reservedUntil);
            ar.io(b.resLo);
            ar.io(b.resHi);
            ar.io(b.exemptA);
            ar.io(b.exemptB);
        }
        ar.expectCount(ranks_.size(), "checker ranks");
        for (RankState &r : ranks_) {
            for (Cycle &t : r.actTimes)
                ar.io(t);
            ar.io(r.actHead);
            ar.io(r.actCount);
            ar.io(r.lastActAt);
            ar.io(r.readAllowedAt);
        }
        ar.expectCount(channels_.size(), "checker channels");
        for (ChannelState &c : channels_) {
            ar.io(c.lastCmdAt);
            ar.io(c.anyCmd);
            ar.io(c.nextColAllowedAt);
            ar.io(c.dataBusFreeAt);
            ar.io(c.lastBusRank);
            ar.io(c.lastBusWasWrite);
        }
        ar.io(commands_);
        ar.io(violations_);
        ar.io(messages_);
        ar.end();
    }

    /** At most this many violation messages are retained. */
    static constexpr std::size_t kMaxStoredMessages = 32;

  private:
    struct BankState
    {
        bool open = false;
        std::uint64_t row = 0;
        RowClass cls = RowClass::Slow;
        Cycle earliestAct = 0; ///< tRC / tRP / tRFC
        Cycle earliestPre = 0; ///< tRAS / tRTP / tWR
        Cycle earliestCol = 0; ///< ACT + tRCD (valid while open)
        Cycle reservedUntil = 0;
        std::uint64_t resLo = 0;
        std::uint64_t resHi = 0;
        std::uint64_t exemptA = kAddrInvalid;
        std::uint64_t exemptB = kAddrInvalid;

        bool reserved(Cycle now) const { return now < reservedUntil; }

        bool
        rowBlocked(Cycle now, std::uint64_t r) const
        {
            return reserved(now) && r >= resLo && r < resHi &&
                   r != exemptA && r != exemptB;
        }
    };

    struct RankState
    {
        Cycle actTimes[4] = {0, 0, 0, 0}; ///< ring of recent ACTs
        unsigned actHead = 0;
        std::uint64_t actCount = 0;
        Cycle lastActAt = 0;
        Cycle readAllowedAt = 0; ///< tWTR
    };

    struct ChannelState
    {
        Cycle lastCmdAt = 0;
        bool anyCmd = false;
        Cycle nextColAllowedAt = 0; ///< tCCD
        Cycle dataBusFreeAt = 0;
        int lastBusRank = -1;
        bool lastBusWasWrite = false;
    };

    BankState &bankAt(const CmdRecord &rec);
    RankState &rankAt(const CmdRecord &rec);

    void checkAct(const CmdRecord &rec);
    void checkColumn(const CmdRecord &rec);
    void checkPre(const CmdRecord &rec);
    void checkRef(const CmdRecord &rec);
    void checkMigrate(const CmdRecord &rec);

    /** Record a violation for @p rec with an explanation. */
    void fail(const CmdRecord &rec, std::string what);

    DramGeometry geom_;
    DramTiming timing_;
    const RowClassifier *classifier_;

    std::vector<BankState> banks_;       ///< [channel][rank][bank]
    std::vector<RankState> ranks_;       ///< [channel][rank]
    std::vector<ChannelState> channels_; ///< [channel]

    std::uint64_t commands_ = 0;
    std::uint64_t violations_ = 0;
    std::vector<std::string> messages_;
};

} // namespace dasdram

#endif // DASDRAM_DRAM_PROTOCOL_CHECKER_HH
