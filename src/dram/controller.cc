#include "controller.hh"

#include <algorithm>

#include "common/log.hh"
#include "mem/request_trace.hh"

namespace dasdram
{

ChannelController::ChannelController(unsigned channel_id,
                                     const DramGeometry &geom,
                                     const DramTiming &timing,
                                     const RowClassifier &classifier,
                                     const ControllerConfig &cfg)
    : channelId_(channel_id), geom_(geom), timing_(&timing),
      classifier_(&classifier), cfg_(cfg), sink_(cfg.cmdSink),
      spanSink_(cfg.spanSink),
      statGroup_("channel" + std::to_string(channel_id))
{
    ranks_.reserve(geom.ranksPerChannel);
    for (unsigned r = 0; r < geom.ranksPerChannel; ++r)
        ranks_.emplace_back(timing, geom.banksPerRank);

    readQueue_.reserve(cfg.readQueueDepth);
    writeQueue_.reserve(cfg.writeQueueDepth);

    statGroup_.addCounter("reads", &reads_, "read column commands");
    statGroup_.addCounter("writes", &writes_, "write column commands");
    statGroup_.addCounter("rowHits", &rowHits_,
                          "column accesses that hit an open row");
    statGroup_.addCounter("actsFast", &actsFast_,
                          "activates in fast subarrays");
    statGroup_.addCounter("actsSlow", &actsSlow_,
                          "activates in slow subarrays");
    statGroup_.addCounter("precharges", &precharges_, "precharge commands");
    statGroup_.addCounter("refreshes", &refreshes_, "all-bank refreshes");
    statGroup_.addCounter("migrations", &migrationsDone_,
                          "completed migrations/swaps");
    statGroup_.addCounter("readForwards", &readForwards_,
                          "reads forwarded from the write queue");
    statGroup_.addDistribution("readLatency", &readLatency_,
                               "read latency, memory cycles");

    statGroup_.addHistogram("readLatencyRowHit", &readLatRowHit_,
                            "read latency, row-buffer hits, mem cycles");
    statGroup_.addHistogram("readLatencyFast", &readLatFast_,
                            "read latency, fast-subarray ACTs, mem cycles");
    statGroup_.addHistogram("readLatencySlow", &readLatSlow_,
                            "read latency, slow-subarray ACTs, mem cycles");
    statGroup_.addHistogram("writeLatency", &writeLat_,
                            "write latency (enqueue → WR), mem cycles");
    statGroup_.addHistogram("readQueueDelay", &readQueueDelay_,
                            "enqueue → RD issue, mem cycles");
    statGroup_.addHistogram("writeQueueDelay", &writeQueueDelay_,
                            "enqueue → WR issue, mem cycles");
    statGroup_.addHistogram("readQueueOccupancy", &readQueueOcc_,
                            "read-queue depth at enqueue");
    statGroup_.addHistogram("writeQueueOccupancy", &writeQueueOcc_,
                            "write-queue depth at enqueue");
    statGroup_.addHistogram("migrationStartDelay", &migrationStartDelay_,
                            "migration first consideration → start, "
                            "mem cycles");

    bankStats_.reserve(geom.ranksPerChannel * geom.banksPerRank);
    for (unsigned r = 0; r < geom.ranksPerChannel; ++r) {
        for (unsigned b = 0; b < geom.banksPerRank; ++b) {
            auto bs = std::make_unique<BankStats>(
                "bank" + std::to_string(r * geom.banksPerRank + b));
            bs->group.addCounter("rowHits", &bs->rowHits,
                                 "row-buffer hits");
            bs->group.addCounter("rowConflicts", &bs->rowConflicts,
                                 "conflict precharges");
            bs->group.addCounter("classConflicts", &bs->classConflicts,
                                 "conflicts crossing row classes");
            bs->group.addDistribution("readLatency", &bs->readLatency,
                                      "read latency, memory cycles");
            statGroup_.addChild(&bs->group);
            bankStats_.push_back(std::move(bs));
        }
    }
}

ChannelController::BankStats &
ChannelController::bankStatsOf(unsigned rank_id, unsigned bank_id)
{
    return *bankStats_[rank_id * geom_.banksPerRank + bank_id];
}

const Histogram &
ChannelController::readLatencyHistogram(ServiceLocation loc) const
{
    switch (loc) {
      case ServiceLocation::FastLevel:
        return readLatFast_;
      case ServiceLocation::SlowLevel:
        return readLatSlow_;
      case ServiceLocation::Unknown:
      case ServiceLocation::RowBuffer:
        break;
    }
    return readLatRowHit_;
}

Distribution
ChannelController::mergedBankReadLatency() const
{
    Distribution merged;
    for (const auto &bs : bankStats_)
        merged.merge(bs->readLatency);
    return merged;
}

Bank &
ChannelController::bankOf(const MemRequest &r)
{
    return ranks_[r.loc.rank].bank(r.loc.bank);
}

const Bank &
ChannelController::bankOf(const MemRequest &r) const
{
    return ranks_[r.loc.rank].bank(r.loc.bank);
}

bool
ChannelController::canAccept(bool is_write) const
{
    return is_write ? writeQueue_.size() < cfg_.writeQueueDepth
                    : readQueue_.size() < cfg_.readQueueDepth;
}

void
ChannelController::enqueue(std::unique_ptr<MemRequest> req, Cycle now)
{
    if (!canAccept(req->isWrite))
        panic("ChannelController::enqueue into a full queue");
    if (req->loc.channel != channelId_)
        panic("request routed to wrong channel");
    req->arrivalTick = now;
    if (req->span)
        stampSpanAdmit(*req, now);
    const bool is_write = req->isWrite;
    ++chanVer_; // queue membership changed: cached queue horizon stale
    if (is_write)
        writeQueue_.push_back(std::move(req));
    else
        readQueue_.push_back(std::move(req));
    if (cfg_.histograms) {
        if (is_write)
            writeQueueOcc_.sample(writeQueue_.size());
        else
            readQueueOcc_.sample(readQueue_.size());
    }
}

void
ChannelController::stampSpanAdmit(MemRequest &req, Cycle now)
{
    RequestSpan &s = *req.span;
    const Rank &rank = ranks_[req.loc.rank];
    const Bank &bank = rank.bank(req.loc.bank);
    s.channel = channelId_;
    s.rank = req.loc.rank;
    s.bank = req.loc.bank;
    s.row = req.loc.row;
    s.logicalRow = req.logicalRow;
    s.rowClass = classifier_->classify(channelId_, req.loc.rank,
                                       req.loc.bank, req.loc.row);
    s.admitCycle = now;
    // Migration holding the target row at admit (its end cycle), and
    // the readiness lower bound the scheduler itself would compute —
    // requestReadyAt is semantically transparent (a pure function of
    // versioned state, cached at the value a later query would see),
    // so asking early cannot perturb scheduling.
    s.blockedUntilCycle =
        bank.rowBlocked(now, req.loc.row) ? bank.reservedUntil() : 0;
    s.readyCycle = std::max(now, requestReadyAt(req));
    if (s.blockedUntilCycle > s.readyCycle)
        s.readyCycle = s.blockedUntilCycle;
    // Busy-accumulator snapshots: the deltas at first command are
    // exactly the refresh / reservation overlap with the wait window.
    s.refreshBusyAtAdmit = rank.refreshBusyUpTo(now);
    s.reserveBusyAtAdmit = bank.reservedBusyUpTo(now);
}

void
ChannelController::stampSpanFirstCommand(MemRequest &req, Cycle now)
{
    RequestSpan &s = *req.span;
    if (s.hasFirstCmd)
        return;
    s.hasFirstCmd = true;
    s.firstCmdCycle = now;
    const Rank &rank = ranks_[req.loc.rank];
    const Bank &bank = rank.bank(req.loc.bank);
    s.waitRefresh = rank.refreshBusyUpTo(now) - s.refreshBusyAtAdmit;
    s.waitBlock = bank.reservedBusyUpTo(now) - s.reserveBusyAtAdmit;
}

bool
ChannelController::writeQueued(Addr line_addr) const
{
    for (const auto &w : writeQueue_) {
        if (w->addr == line_addr)
            return true;
    }
    return false;
}

void
ChannelController::addMigration(MigrationJob job)
{
    job.id = nextMigrationId_++;
    migrations_.push_back(std::move(job));
}

void
ChannelController::emitPrecharge(Cycle now, unsigned rank_id,
                                 unsigned bank_id, const Bank &bank)
{
    if (!sink_)
        return;
    CmdRecord rec;
    rec.cycle = now;
    rec.cmd = DramCommand::PRE;
    rec.channel = channelId_;
    rec.rank = rank_id;
    rec.bank = bank_id;
    rec.row = bank.openRow();
    rec.rowClass = bank.openRowClass();
    sink_->onCommand(rec);
}

void
ChannelController::retireCompletions(Cycle now)
{
    while (!completions_.empty() && completions_.front().at <= now) {
        Completion c = completions_.front();
        std::pop_heap(completions_.begin(), completions_.end(),
                      std::greater<Completion>());
        completions_.pop_back();
        auto it = std::find_if(inflight_.begin(), inflight_.end(),
                               [&](const std::unique_ptr<MemRequest> &p) {
                                   return p.get() == c.req;
                               });
        if (it == inflight_.end())
            panic("completion for unknown in-flight request");
        std::unique_ptr<MemRequest> req = std::move(*it);
        *it = std::move(inflight_.back());
        inflight_.pop_back();
        finish(std::move(req), c.at, ServiceLocation::RowBuffer);
    }

    for (std::size_t i = 0; i < activeMigrations_.size();) {
        if (activeMigrations_[i].first <= now) {
            MigrationJob job = std::move(activeMigrations_[i].second);
            Cycle at = activeMigrations_[i].first;
            activeMigrations_[i] = std::move(activeMigrations_.back());
            activeMigrations_.pop_back();
            migrationsDone_.inc();
            if (job.onDone)
                job.onDone(at);
        } else {
            ++i;
        }
    }
}

void
ChannelController::finish(std::unique_ptr<MemRequest> req, Cycle at,
                          ServiceLocation fallback_loc)
{
    if (req->location == ServiceLocation::Unknown)
        req->location = fallback_loc;
    req->completionTick = at;
    if (!req->isWrite)
        readLatency_.sample(static_cast<double>(at - req->arrivalTick));
    if (cfg_.histograms) {
        const Cycle lat = at - req->arrivalTick;
        if (req->isWrite) {
            writeLat_.sample(lat);
        } else {
            switch (req->location) {
              case ServiceLocation::FastLevel:
                readLatFast_.sample(lat);
                break;
              case ServiceLocation::SlowLevel:
                readLatSlow_.sample(lat);
                break;
              case ServiceLocation::Unknown:
              case ServiceLocation::RowBuffer:
                readLatRowHit_.sample(lat);
                break;
            }
            bankStatsOf(req->loc.rank, req->loc.bank)
                .readLatency.sample(static_cast<double>(lat));
        }
    }
    if (req->span) {
        RequestSpan &s = *req->span;
        s.dataCycle = at;
        s.location = req->location;
        // Emission happens in completion order, which the engine and
        // threading equivalence suites prove deterministic; finish()
        // never runs inside a parallel channel span (see
        // parallelSafeThrough), so sinks need no locking.
        if (spanSink_)
            spanSink_->onSpan(s);
    }
    if (req->onComplete)
        req->onComplete(*req, at);
}

bool
ChannelController::serviceRefresh(Cycle now)
{
    for (unsigned ri = 0; ri < ranks_.size(); ++ri) {
        Rank &rank = ranks_[ri];
        if (!rank.refreshDue(now))
            continue;
        // Drain: precharge any open bank.
        bool all_ready = true;
        for (unsigned bi = 0; bi < rank.numBanks(); ++bi) {
            Bank &bank = rank.bank(bi);
            if (bank.hasOpenRow()) {
                if (bank.canPrecharge(now)) {
                    emitPrecharge(now, ri, bi, bank);
                    bank.precharge(now);
                    precharges_.inc();
                    return true;
                }
                all_ready = false;
            } else if (bank.reserved(now) || now < bank.actAllowedAt()) {
                all_ready = false;
            }
        }
        if (all_ready) {
            rank.refresh(now);
            refreshes_.inc();
            if (sink_) {
                CmdRecord rec;
                rec.cycle = now;
                rec.cmd = DramCommand::REF;
                rec.channel = channelId_;
                rec.rank = ri;
                rec.duration = timing_->tRFC;
                sink_->onCommand(rec);
            }
            return true;
        }
    }
    return false;
}

bool
ChannelController::serviceMigrations(Cycle now)
{
    for (auto it = migrations_.begin(); it != migrations_.end(); ++it) {
        MigrationJob &job = *it;
        Rank &rank = ranks_[job.rank];
        Bank &bank = rank.bank(job.bank);

        // Keep per-bank FIFO order: skip if an earlier job or an active
        // migration holds this bank.
        bool earlier = false;
        for (auto jt = migrations_.begin(); jt != it; ++jt) {
            if (jt->rank == job.rank && jt->bank == job.bank) {
                earlier = true;
                break;
            }
        }
        if (earlier || bank.reserved(now))
            continue;
        if (cfg_.refreshEnabled && rank.refreshDue(now))
            continue; // let the refresh drain first
        // The migration drives the cell array like back-to-back ACTs:
        // it must wait out any pending tRP/tRC/tRFC window.
        if (now < bank.actAllowedAt())
            continue;

        if (job.enqueuedAt == kCycleMax)
            job.enqueuedAt = now;
        std::uint64_t row_lo = std::min({job.rowLo, job.rowA, job.rowB});
        std::uint64_t row_hi =
            std::max({job.rowHi, job.rowA + 1, job.rowB + 1});

        // Background work: yield to queued demand requests targeting
        // the affected row range until the deferral budget runs out.
        if (now < job.enqueuedAt + cfg_.migrationMaxDefer) {
            auto targets_range = [&](const auto &queue) {
                for (const auto &r : queue) {
                    if (r->loc.rank == job.rank &&
                        r->loc.bank == job.bank && r->loc.row >= row_lo &&
                        r->loc.row < row_hi && r->loc.row != job.rowA &&
                        r->loc.row != job.rowB) {
                        return true;
                    }
                }
                return false;
            };
            if (targets_range(readQueue_) || targets_range(writeQueue_))
                continue;
        }

        if (bank.hasOpenRow() && bank.openRow() >= row_lo &&
            bank.openRow() < row_hi && bank.openRow() != job.rowA &&
            bank.openRow() != job.rowB) {
            // The open row sits in the migration's subarrays: close it
            // first (its row buffer is needed for the transfer).
            if (bank.canPrecharge(now)) {
                emitPrecharge(now, job.rank, job.bank, bank);
                bank.precharge(now);
                precharges_.inc();
                return true;
            }
            continue;
        }

        Cycle dur =
            job.fullSwap ? timing_->swapCycles : timing_->migrationCycles;
        if (cfg_.histograms)
            migrationStartDelay_.sample(now - job.enqueuedAt);
        bank.reserve(now, dur, row_lo, row_hi, job.rowA, job.rowB);
        if (sink_) {
            CmdRecord rec;
            rec.cycle = now;
            rec.cmd = DramCommand::MIGRATE;
            rec.channel = channelId_;
            rec.rank = job.rank;
            rec.bank = job.bank;
            rec.row = job.rowA;
            rec.rowB = job.rowB;
            rec.rowLo = row_lo;
            rec.rowHi = row_hi;
            rec.migrationId = job.id;
            rec.duration = dur;
            sink_->onCommand(rec);
        }
        activeMigrations_.emplace_back(now + dur, std::move(job));
        migrations_.erase(it);
        return true;
    }
    return false;
}

bool
ChannelController::tryColumn(MemRequest &req, Cycle now)
{
    Rank &rank = ranks_[req.loc.rank];
    Bank &bank = rank.bank(req.loc.bank);
    if (!bank.canColumn(now))
        return false;
    if (cfg_.refreshEnabled && rank.refreshDue(now))
        return false;
    if (now < nextColAllowedAt_)
        return false;

    const ArrayTiming &at = timing_->array(bank.openRowClass());
    Cycle burst_start;
    if (req.isWrite) {
        burst_start = now + timing_->tCWL;
    } else {
        if (now < rank.readAllowedAt())
            return false;
        burst_start = now + at.tCL;
    }

    Cycle bus_ready = dataBusFreeAt_;
    bool switch_penalty =
        (lastBusRank_ >= 0 &&
         (static_cast<unsigned>(lastBusRank_) != req.loc.rank ||
          lastBusWasWrite_ != req.isWrite));
    if (switch_penalty)
        bus_ready += timing_->tRTRS;
    if (burst_start < bus_ready)
        return false;

    // Issue the column command.
    ++busVer_; // bus state below changes: bus-keyed caches stale
    nextColAllowedAt_ = now + timing_->tCCD;
    lastBusRank_ = static_cast<int>(req.loc.rank);
    lastBusWasWrite_ = req.isWrite;
    if (req.span) {
        stampSpanFirstCommand(req, now);
        req.span->colCycle = now;
    }
    if (sink_) {
        CmdRecord rec;
        rec.cycle = now;
        rec.cmd = req.isWrite ? DramCommand::WR : DramCommand::RD;
        rec.channel = channelId_;
        rec.rank = req.loc.rank;
        rec.bank = req.loc.bank;
        rec.row = req.loc.row;
        rec.column = req.loc.column;
        rec.rowClass = bank.openRowClass();
        sink_->onCommand(rec);
    }
    if (req.location == ServiceLocation::Unknown) {
        req.location = ServiceLocation::RowBuffer;
        rowHits_.inc();
        if (cfg_.histograms)
            bankStatsOf(req.loc.rank, req.loc.bank).rowHits.inc();
    }
    if (cfg_.histograms) {
        const Cycle wait = now - req.arrivalTick;
        if (req.isWrite)
            writeQueueDelay_.sample(wait);
        else
            readQueueDelay_.sample(wait);
    }
    if (req.isWrite) {
        Cycle end = bank.write(now);
        rank.recordWriteBurst(end);
        dataBusFreeAt_ = end;
        req.completionTick = end;
        writes_.inc();
    } else {
        Cycle end = bank.read(now);
        dataBusFreeAt_ = end;
        req.completionTick = end;
        reads_.inc();
    }
    return true;
}

bool
ChannelController::issueColumnFor(
    std::vector<std::unique_ptr<MemRequest>> &queue, std::size_t i,
    Cycle now)
{
    MemRequest &req = *queue[i];
    const Bank &bank = bankOf(req);
    if (!(bank.hasOpenRow() && bank.openRow() == req.loc.row &&
          !bank.rowBlocked(now, req.loc.row) && tryColumn(req, now))) {
        return false;
    }
    std::unique_ptr<MemRequest> owned = std::move(queue[i]);
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
    ++chanVer_; // queue membership changed
    Cycle end = owned->completionTick;
    if (owned->isWrite) {
        finish(std::move(owned), end, ServiceLocation::RowBuffer);
    } else {
        completions_.push_back({end, owned.get()});
        std::push_heap(completions_.begin(), completions_.end(),
                       std::greater<Completion>());
        inflight_.push_back(std::move(owned));
    }
    return true;
}

bool
ChannelController::tryRowCommand(MemRequest &req, Cycle now)
{
    Rank &rank = ranks_[req.loc.rank];
    Bank &bank = rank.bank(req.loc.bank);
    if (bank.rowBlocked(now, req.loc.row))
        return false; // waits for the migration to finish

    if (bank.hasOpenRow()) {
        if (bank.openRow() == req.loc.row)
            return false; // already open; waiting on column constraints
        // Conflict: precharge, but not under pending hits to the open row.
        auto hits_open_row = [&](const auto &queue) {
            for (const auto &r : queue) {
                if (r->loc.sameBank(req.loc) &&
                    r->loc.row == bank.openRow()) {
                    return true;
                }
            }
            return false;
        };
        if (hits_open_row(readQueue_) || hits_open_row(writeQueue_))
            return false;
        if (!bank.canPrecharge(now))
            return false;
        if (cfg_.histograms) {
            BankStats &bs = bankStatsOf(req.loc.rank, req.loc.bank);
            bs.rowConflicts.inc();
            RowClass want = classifier_->classify(
                channelId_, req.loc.rank, req.loc.bank, req.loc.row);
            if (want != bank.openRowClass())
                bs.classConflicts.inc();
        }
        if (req.span) {
            stampSpanFirstCommand(req, now);
            if (!req.span->hasPre) {
                req.span->hasPre = true;
                req.span->preCycle = now;
            }
        }
        emitPrecharge(now, req.loc.rank, req.loc.bank, bank);
        bank.precharge(now);
        precharges_.inc();
        return true;
    }

    if (cfg_.refreshEnabled && rank.refreshDue(now))
        return false;
    if (!bank.canActivate(now, req.loc.row) || !rank.canActivate(now))
        return false;

    RowClass cls = classifier_->classify(channelId_, req.loc.rank,
                                         req.loc.bank, req.loc.row);
    if (req.span) {
        stampSpanFirstCommand(req, now);
        RequestSpan &s = *req.span;
        if (!s.hasAct) {
            s.hasAct = true;
            s.actCycle = now;
            // Extra delay tFAW/tRRD imposed beyond the bank's own
            // readiness (read before activate/recordActivate below
            // update the windows). Informational: part of waitQueue.
            Cycle bank_ready = std::max(s.admitCycle, bank.actAllowedAt());
            Cycle rank_ready = rank.activateAllowedAt();
            s.fawStall =
                rank_ready > bank_ready ? rank_ready - bank_ready : 0;
        }
    }
    bank.activate(now, req.loc.row, cls);
    rank.recordActivate(now);
    if (sink_) {
        CmdRecord rec;
        rec.cycle = now;
        rec.cmd = DramCommand::ACT;
        rec.channel = channelId_;
        rec.rank = req.loc.rank;
        rec.bank = req.loc.bank;
        rec.row = req.loc.row;
        rec.rowClass = cls;
        sink_->onCommand(rec);
    }
    if (cls == RowClass::Fast) {
        actsFast_.inc();
        req.location = ServiceLocation::FastLevel;
        req.servicedFast = true;
    } else {
        actsSlow_.inc();
        req.location = ServiceLocation::SlowLevel;
    }
    return true;
}

bool
ChannelController::issueFromQueue(
    std::vector<std::unique_ptr<MemRequest>> &queue, Cycle now)
{
    if (queue.empty())
        return false;

    // Batched scan: a request whose cached ready cycle has not arrived
    // provably fails every scheduling check below, so both passes skip
    // it on an O(1) comparison. The cache is keyed on the bank/rank/bus
    // versions, so only requests whose target bank's (or the bus's)
    // readiness actually changed are re-examined in full.
    if (cfg_.sched == SchedPolicy::FrFcfs) {
        // Pass 1: oldest ready row hit.
        for (std::size_t i = 0; i < queue.size(); ++i) {
            if (requestMaybeIssuable(*queue[i], now) &&
                issueColumnFor(queue, i, now)) {
                return true;
            }
        }
        // Pass 2: oldest request that can make row-level progress.
        for (auto &reqp : queue) {
            if (requestMaybeIssuable(*reqp, now) &&
                tryRowCommand(*reqp, now)) {
                return true;
            }
        }
        return false;
    }

    // Strict FCFS: only the oldest request may issue anything.
    if (!requestMaybeIssuable(*queue.front(), now))
        return false;
    if (issueColumnFor(queue, 0, now))
        return true;
    return tryRowCommand(*queue.front(), now);
}

void
ChannelController::tick(Cycle now)
{
    retireCompletions(now);

    bool issued = false;
    if (cfg_.refreshEnabled)
        issued = serviceRefresh(now);
    if (!issued)
        issued = serviceMigrations(now);

    // Write-drain hysteresis.
    if (!drainingWrites_) {
        if (writeQueue_.size() >= cfg_.writeHighWatermark ||
            (readQueue_.empty() && !writeQueue_.empty())) {
            drainingWrites_ = true;
        }
    } else if (writeQueue_.empty() ||
               (writeQueue_.size() <= cfg_.writeLowWatermark &&
                !readQueue_.empty())) {
        drainingWrites_ = false;
    }

    if (!issued) {
        // The rollup cache knows the earliest cycle any queued request
        // could issue; below it both queue scans are provably fruitless.
        refreshHorizonCaches(now);
        if (queuePathMin_ <= now) {
            auto &primary = drainingWrites_ ? writeQueue_ : readQueue_;
            auto &secondary = drainingWrites_ ? readQueue_ : writeQueue_;
            issued = issueFromQueue(primary, now);
            if (!issued)
                issued = issueFromQueue(secondary, now);
        }
    }

    // Closed-page: precharge one bank with no pending work for its
    // row. At most one PRE per cycle — the command bus carries a
    // single command per channel per cycle, and it is already taken
    // when something issued above.
    if (cfg_.page == PagePolicy::Closed && !issued) {
        refreshHorizonCaches(now);
        if (preMinReady_ > now)
            return;
        for (unsigned ri = 0; ri < ranks_.size() && !issued; ++ri) {
            Rank &rank = ranks_[ri];
            for (unsigned bi = 0; bi < rank.numBanks() && !issued;
                 ++bi) {
                Bank &bank = rank.bank(bi);
                if (!bank.hasOpenRow() || !bank.canPrecharge(now))
                    continue;
                auto targets_open = [&](const auto &queue) {
                    for (const auto &r : queue) {
                        if (r->loc.rank == ri && r->loc.bank == bi &&
                            r->loc.row == bank.openRow()) {
                            return true;
                        }
                    }
                    return false;
                };
                if (!targets_open(readQueue_) &&
                    !targets_open(writeQueue_)) {
                    emitPrecharge(now, ri, bi, bank);
                    bank.precharge(now);
                    precharges_.inc();
                    issued = true;
                }
            }
        }
    }
}

Cycle
ChannelController::requestReadyAt(const MemRequest &req) const
{
    const Rank &rank = ranks_[req.loc.rank];
    const Bank &bank = rank.bank(req.loc.bank);

    MemRequest::SchedCache &sc = req.sched;
    if (sc.bankVer == bank.version() && sc.rankVer == rank.version() &&
        (sc.busVer == busVer_ ||
         sc.busVer == MemRequest::SchedCache::kBusAny)) {
        return sc.readyAt;
    }

    // ACT and conflict-PRE bounds never touch the bus state, so their
    // entries carry kBusAny and survive the column-issue churn that
    // bumps busVer_ every few cycles under load.
    std::uint64_t bus_key = MemRequest::SchedCache::kBusAny;
    Cycle t;
    if (!bank.hasOpenRow()) {
        // ACT path. Refresh-due gating is covered by the refresh term
        // of nextWakeCycle (nextRefreshAt precedes any due window).
        t = std::max(bank.actAllowedAt(), rank.activateAllowedAt());
    } else if (bank.openRow() != req.loc.row) {
        // Conflict-PRE path. Pending hits to the open row may hold the
        // PRE back further; those requests contribute their own (column)
        // horizons, so this bound is merely early, never late.
        t = bank.preAllowedAt();
    } else {
        bus_key = busVer_;
        // Column path: bank CAS window, channel tCCD, tWTR (reads), and
        // the data bus with any rank/direction switch penalty — the same
        // constraints tryColumn checks, inverted into an earliest cycle.
        t = std::max(bank.columnAllowedAt(), nextColAllowedAt_);
        Cycle cas;
        if (req.isWrite) {
            cas = timing_->tCWL;
        } else {
            t = std::max(t, rank.readAllowedAt());
            cas = timing_->array(bank.openRowClass()).tCL;
        }
        Cycle bus_ready = dataBusFreeAt_;
        if (lastBusRank_ >= 0 &&
            (static_cast<unsigned>(lastBusRank_) != req.loc.rank ||
             lastBusWasWrite_ != req.isWrite)) {
            bus_ready += timing_->tRTRS;
        }
        if (bus_ready > t + cas)
            t = bus_ready - cas;
    }

    sc.readyAt = t;
    sc.bankVer = bank.version();
    sc.rankVer = rank.version();
    sc.busVer = bus_key;
    return t;
}

Cycle
ChannelController::requestWakeCycle(const MemRequest &req, Cycle now) const
{
    const Bank &bank = bankOf(req);

    // Blocked by a migration reservation: nothing can issue for this
    // request before the reservation ends. (reserved(now) implies
    // reservedUntil() > now.)
    if (bank.rowBlocked(now, req.loc.row))
        return bank.reservedUntil();

    return std::max(now + 1, requestReadyAt(req));
}

bool
ChannelController::requestMaybeIssuable(const MemRequest &req,
                                        Cycle now) const
{
    const Bank &bank = bankOf(req);
    if (bank.rowBlocked(now, req.loc.row))
        return false;
    return requestReadyAt(req) <= now;
}

std::uint64_t
ChannelController::stateSignature() const
{
    std::uint64_t sig = chanVer_ + busVer_;
    for (const Rank &r : ranks_) {
        sig += r.version();
        for (unsigned bi = 0; bi < r.numBanks(); ++bi)
            sig += r.bank(bi).version();
    }
    return sig;
}

void
ChannelController::refreshHorizonCaches(Cycle now) const
{
    const std::uint64_t sig = stateSignature();
    // Valid while no state transition happened AND the earliest
    // reservation blocking a queued request has not expired (expiry
    // flips that request to the path side without any version bump).
    if (sig == horizonSig_ && now < queueBlockedMin_)
        return;

    horizonSig_ = sig;
    queuePathMin_ = kCycleMax;
    queueBlockedMin_ = kCycleMax;
    auto scan = [&](const std::vector<std::unique_ptr<MemRequest>> &q) {
        for (const auto &r : q) {
            const Bank &bank = bankOf(*r);
            if (bank.rowBlocked(now, r->loc.row)) {
                queueBlockedMin_ =
                    std::min(queueBlockedMin_, bank.reservedUntil());
            } else {
                queuePathMin_ =
                    std::min(queuePathMin_, requestReadyAt(*r));
            }
        }
    };
    scan(readQueue_);
    scan(writeQueue_);

    preMinReady_ = kCycleMax;
    if (cfg_.page == PagePolicy::Closed) {
        for (const Rank &rank : ranks_) {
            for (unsigned bi = 0; bi < rank.numBanks(); ++bi) {
                preMinReady_ = std::min(
                    preMinReady_, rank.bank(bi).prechargeReadyAt());
            }
        }
    }
}

Cycle
ChannelController::nextWakeCycle(Cycle now) const
{
    Cycle next = kCycleMax;
    if (!completions_.empty())
        next = std::min(next, completions_.front().at);
    for (const auto &m : activeMigrations_)
        next = std::min(next, m.first);
    // Migration jobs that have not started keep the controller on a
    // per-cycle cadence: their gating (per-bank FIFO, deferral to
    // queued demand, enqueuedAt stamping) is stateful in ways a cheap
    // bound cannot capture, and jobs spend few cycles in this state.
    if (!migrations_.empty())
        next = std::min(next, now + 1);
    if (cfg_.refreshEnabled) {
        // nextRefreshAt() stays in the past for the whole drain window
        // (until the REF issues), so a due refresh pins the horizon to
        // now + 1 via the max() in the callers.
        for (const Rank &r : ranks_)
            next = std::min(next, r.nextRefreshAt());
    }

    // Queue terms, from the rollup caches. Exactly the per-request
    // min the full scan produces: min over unblocked requests of
    // max(now + 1, readyAt) factors through max(now + 1, min readyAt),
    // and blocked requests contribute their reservation's end.
    refreshHorizonCaches(now);
    if (queueBlockedMin_ != kCycleMax)
        next = std::min(next, queueBlockedMin_);
    if (queuePathMin_ != kCycleMax)
        next = std::min(next, std::max(now + 1, queuePathMin_));

    // Closed-page policy precharges idle open banks even with empty
    // queues; without this term those PREs would be skipped over.
    if (cfg_.page == PagePolicy::Closed && preMinReady_ != kCycleMax)
        next = std::min(next, std::max(now + 1, preMinReady_));
    return next;
}

bool
ChannelController::parallelSafeThrough(Cycle hi) const
{
    if (!writeQueue_.empty())
        return false; // writes fire their callback at WR issue time
    if (!completions_.empty() && completions_.front().at <= hi)
        return false;
    for (const auto &m : activeMigrations_) {
        if (m.first <= hi)
            return false;
    }
    return true;
}

bool
ChannelController::busy() const
{
    return !readQueue_.empty() || !writeQueue_.empty() ||
           !inflight_.empty() || !migrations_.empty() ||
           !activeMigrations_.empty();
}

namespace
{

void
serdeRequestQueue(Archive &ar,
                  std::vector<std::unique_ptr<MemRequest>> &queue)
{
    std::uint64_t n = queue.size();
    ar.io(n);
    if (ar.loading()) {
        queue.clear();
        queue.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i)
            queue.push_back(std::make_unique<MemRequest>());
    }
    for (auto &req : queue)
        req->serdeState(ar);
}

} // namespace

void
ChannelController::serdeState(Archive &ar)
{
    ar.section("channel");
    ar.expectCount(ranks_.size(), "ranks");
    for (Rank &r : ranks_)
        r.serdeState(ar);

    serdeRequestQueue(ar, readQueue_);
    serdeRequestQueue(ar, writeQueue_);
    ar.io(drainingWrites_);
    serdeRequestQueue(ar, inflight_);

    // The completion heap is stored as its raw array of (cycle,
    // in-flight index) pairs: restoring the identical array restores
    // the identical heap, including the pop order of same-cycle ties.
    std::uint64_t n = completions_.size();
    ar.io(n);
    if (ar.loading())
        completions_.resize(static_cast<std::size_t>(n));
    for (auto &c : completions_) {
        ar.io(c.at);
        std::uint64_t idx = 0;
        if (ar.saving()) {
            auto it = std::find_if(
                inflight_.begin(), inflight_.end(),
                [&](const std::unique_ptr<MemRequest> &p) {
                    return p.get() == c.req;
                });
            if (it == inflight_.end())
                panic("checkpoint: completion for a request not in "
                      "the in-flight set");
            idx = static_cast<std::uint64_t>(it - inflight_.begin());
        }
        ar.io(idx);
        if (ar.loading()) {
            if (idx >= inflight_.size())
                fatal("checkpoint: completion index {} out of range "
                      "({} in flight)",
                      idx, inflight_.size());
            c.req = inflight_[static_cast<std::size_t>(idx)].get();
        }
    }

    ar.io(nextMigrationId_);
    std::uint64_t pending = migrations_.size();
    ar.io(pending);
    if (ar.loading())
        migrations_.resize(static_cast<std::size_t>(pending));
    for (MigrationJob &job : migrations_)
        job.serdeState(ar);
    std::uint64_t active = activeMigrations_.size();
    ar.io(active);
    if (ar.loading())
        activeMigrations_.resize(static_cast<std::size_t>(active));
    for (auto &m : activeMigrations_) {
        ar.io(m.first);
        m.second.serdeState(ar);
    }

    ar.io(dataBusFreeAt_);
    ar.io(nextColAllowedAt_);
    ar.io(lastBusRank_);
    ar.io(lastBusWasWrite_);
    ar.io(busVer_);
    ar.io(chanVer_);
    ar.end();

    if (ar.loading()) {
        // Rollup horizon caches are derived state; force a recompute
        // on the first wake query after the restore.
        horizonSig_ = ~std::uint64_t{0};
        queuePathMin_ = kCycleMax;
        queueBlockedMin_ = kCycleMax;
        preMinReady_ = kCycleMax;
    }
}

void
ChannelController::forEachRequest(
    const std::function<void(MemRequest &)> &fn)
{
    for (auto &req : readQueue_)
        fn(*req);
    for (auto &req : writeQueue_)
        fn(*req);
    for (auto &req : inflight_)
        fn(*req);
}

void
ChannelController::forEachMigration(
    const std::function<void(MigrationJob &)> &fn)
{
    for (MigrationJob &job : migrations_)
        fn(job);
    for (auto &m : activeMigrations_)
        fn(m.second);
}

} // namespace dasdram
