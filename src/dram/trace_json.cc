#include "trace_json.hh"

#include "common/json.hh"
#include "mem/clock.hh"

namespace dasdram
{

namespace
{

/** tid offset separating the per-bank migration tracks (see header). */
constexpr unsigned kMigrateTidOffset = 1000;

double
tickUs(Cycle t)
{
    return static_cast<double>(t) /
           (static_cast<double>(kTicksPerNs) * 1000.0);
}

} // namespace

ChromeTraceWriter::ChromeTraceWriter(std::ostream &os,
                                     const DramGeometry &geom,
                                     const DramTiming &timing)
    : os_(&os), geom_(geom), tBL_(timing.tBL),
      swapCycles_(timing.swapCycles)
{
    openRows_.resize(geom_.channels);
    for (auto &ch : openRows_)
        ch.resize(geom_.ranksPerChannel * geom_.banksPerRank);
    *os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    writeMetadata();
}

ChromeTraceWriter::~ChromeTraceWriter()
{
    finish();
}

unsigned
ChromeTraceWriter::bankTid(unsigned rank, unsigned bank) const
{
    return 1 + rank * geom_.banksPerRank + bank;
}

double
ChromeTraceWriter::cycleUs(Cycle c) const
{
    // tCK = 1.25 ns = 0.00125 us.
    return static_cast<double>(c) * 0.00125;
}

void
ChromeTraceWriter::emit(const std::string &json)
{
    if (events_ > 0)
        *os_ << ',';
    *os_ << '\n' << json;
    ++events_;
}

void
ChromeTraceWriter::writeMetadata()
{
    auto meta = [&](unsigned pid, unsigned tid, const char *what,
                    const std::string &name) {
        JsonWriter w;
        w.beginObject()
            .field("name", what)
            .field("ph", "M")
            .field("pid", pid)
            .field("tid", tid);
        w.key("args").beginObject().field("name", name).endObject();
        w.endObject();
        emit(w.str());
    };

    const unsigned nbanks = geom_.ranksPerChannel * geom_.banksPerRank;
    for (unsigned c = 0; c < geom_.channels; ++c) {
        meta(c, 0, "process_name", "channel" + std::to_string(c));
        for (unsigned r = 0; r < geom_.ranksPerChannel; ++r) {
            for (unsigned b = 0; b < geom_.banksPerRank; ++b) {
                std::string nm = "rank" + std::to_string(r) + " bank" +
                                 std::to_string(b);
                meta(c, bankTid(r, b), "thread_name", nm);
                meta(c, bankTid(r, b) + kMigrateTidOffset,
                     "thread_name", nm + " migrate");
            }
            meta(c, 1 + nbanks + r, "thread_name",
                 "rank" + std::to_string(r) + " refresh");
        }
    }
    meta(geom_.channels, 0, "process_name", "das-manager");
    headerDone_ = true;
}

void
ChromeTraceWriter::emitRowSpan(unsigned channel, unsigned rank,
                               unsigned bank, const OpenRow &open,
                               Cycle end)
{
    Cycle dur = end > open.since ? end - open.since : 1;
    JsonWriter w;
    w.beginObject()
        .field("name",
               "row " + std::to_string(open.row) +
                   (open.cls == RowClass::Fast ? " F" : " S"))
        .field("cat", "row")
        .field("ph", "X")
        .field("ts", cycleUs(open.since))
        .field("dur", cycleUs(dur))
        .field("pid", channel)
        .field("tid", bankTid(rank, bank));
    w.key("args")
        .beginObject()
        .field("row", open.row)
        .field("class", open.cls == RowClass::Fast ? "fast" : "slow")
        .endObject();
    w.endObject();
    emit(w.str());
}

void
ChromeTraceWriter::onCommand(const CmdRecord &rec)
{
    if (finished_)
        return;
    if (rec.cycle > lastCycle_)
        lastCycle_ = rec.cycle;
    OpenRow *state = nullptr;
    if (rec.channel < geom_.channels &&
        rec.cmd != DramCommand::REF) {
        const unsigned idx = rec.rank * geom_.banksPerRank + rec.bank;
        if (idx < openRows_[rec.channel].size())
            state = &openRows_[rec.channel][idx];
    }

    switch (rec.cmd) {
      case DramCommand::ACT:
        if (state) {
            // A dangling open row here would be a missed PRE; close it
            // so the trace stays renderable (the checker owns protocol
            // correctness, not this writer).
            if (state->open)
                emitRowSpan(rec.channel, rec.rank, rec.bank, *state,
                            rec.cycle);
            state->open = true;
            state->since = rec.cycle;
            state->row = rec.row;
            state->cls = rec.rowClass;
        }
        break;
      case DramCommand::PRE:
        if (state && state->open) {
            emitRowSpan(rec.channel, rec.rank, rec.bank, *state,
                        rec.cycle);
            state->open = false;
        }
        break;
      case DramCommand::RD:
      case DramCommand::WR: {
        JsonWriter w;
        w.beginObject()
            .field("name", rec.cmd == DramCommand::RD ? "RD" : "WR")
            .field("cat", "col")
            .field("ph", "X")
            .field("ts", cycleUs(rec.cycle))
            .field("dur", cycleUs(tBL_))
            .field("pid", rec.channel)
            .field("tid", bankTid(rec.rank, rec.bank));
        w.key("args")
            .beginObject()
            .field("row", rec.row)
            .field("col", rec.column)
            .field("class",
                   rec.rowClass == RowClass::Fast ? "fast" : "slow")
            .endObject();
        w.endObject();
        emit(w.str());
        break;
      }
      case DramCommand::REF: {
        const unsigned nbanks =
            geom_.ranksPerChannel * geom_.banksPerRank;
        JsonWriter w;
        w.beginObject()
            .field("name", "REF")
            .field("cat", "refresh")
            .field("ph", "X")
            .field("ts", cycleUs(rec.cycle))
            .field("dur", cycleUs(rec.duration))
            .field("pid", rec.channel)
            .field("tid", 1 + nbanks + rec.rank)
            .endObject();
        emit(w.str());
        break;
      }
      case DramCommand::MIGRATE: {
        JsonWriter w;
        w.beginObject()
            .field("name",
                   rec.duration == swapCycles_ ? "swap" : "migrate")
            .field("cat", "migration")
            .field("ph", "X")
            .field("ts", cycleUs(rec.cycle))
            .field("dur", cycleUs(rec.duration))
            .field("pid", rec.channel)
            .field("tid",
                   bankTid(rec.rank, rec.bank) + kMigrateTidOffset);
        w.key("args").beginObject().field("rowA", rec.row);
        if (rec.rowB != kAddrInvalid)
            w.field("rowB", rec.rowB);
        w.field("rangeLo", rec.rowLo)
            .field("rangeHi", rec.rowHi)
            .field("id", rec.migrationId)
            .endObject();
        w.endObject();
        emit(w.str());
        break;
      }
    }
}

void
ChromeTraceWriter::onInstant(const TraceInstant &ev)
{
    if (finished_)
        return;
    // Instants arrive in ticks; keep lastCycle_ in memory cycles.
    const Cycle cyc = ev.tick / kMemTick;
    if (cyc > lastCycle_)
        lastCycle_ = cyc;
    JsonWriter w;
    w.beginObject()
        .field("name", ev.name)
        .field("cat", "das")
        .field("ph", "i")
        .field("s", "p")
        .field("ts", tickUs(ev.tick))
        .field("pid", geom_.channels)
        .field("tid", 0);
    w.key("args").beginObject();
    if (ev.row != kAddrInvalid)
        w.field("row", ev.row);
    if (ev.victim != kAddrInvalid)
        w.field("victim", ev.victim);
    w.field("group", ev.group);
    if (ev.cause)
        w.field("cause", ev.cause);
    w.endObject().endObject();
    emit(w.str());
}

void
ChromeTraceWriter::finish()
{
    if (finished_)
        return;
    for (unsigned c = 0; c < openRows_.size(); ++c) {
        for (unsigned i = 0; i < openRows_[c].size(); ++i) {
            OpenRow &state = openRows_[c][i];
            if (!state.open)
                continue;
            emitRowSpan(c, i / geom_.banksPerRank, i % geom_.banksPerRank,
                        state, lastCycle_ + 1);
            state.open = false;
        }
    }
    *os_ << "\n]}\n";
    os_->flush();
    finished_ = true;
}

} // namespace dasdram
