/**
 * @file
 * Per-rank DRAM constraints: tRRD, the four-activate window (tFAW),
 * write-to-read turnaround and periodic refresh.
 */

#ifndef DASDRAM_DRAM_RANK_HH
#define DASDRAM_DRAM_RANK_HH

#include <array>
#include <vector>

#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/timing.hh"

namespace dasdram
{

/**
 * One rank: a set of banks plus the rank-wide timing windows. Time unit
 * is memory-bus cycles.
 */
class Rank
{
  public:
    Rank(const DramTiming &timing, unsigned num_banks);

    Bank &bank(unsigned i) { return banks_[i]; }
    const Bank &bank(unsigned i) const { return banks_[i]; }
    unsigned numBanks() const { return static_cast<unsigned>(banks_.size()); }

    /**
     * Monotone version counter over the rank-wide timing state
     * (tRRD/tFAW window, tWTR, refresh schedule). Does not cover the
     * banks — each Bank carries its own version().
     */
    std::uint64_t version() const { return version_; }

    /// @name Activation window (tRRD / tFAW)
    /// @{
    bool canActivate(Cycle now) const;
    /** Earliest cycle the rank-level ACT constraints are satisfied. */
    Cycle activateAllowedAt() const;
    /** Record an ACT at @p now. @pre canActivate(now). */
    void recordActivate(Cycle now);
    /// @}

    /// @name Write-to-read turnaround (tWTR)
    /// @{
    /** Earliest cycle a read column command may issue in this rank. */
    Cycle readAllowedAt() const { return readAllowedAt_; }
    /** Record a write burst ending at @p burst_end. */
    void recordWriteBurst(Cycle burst_end);
    /// @}

    /// @name Refresh
    /// @{
    /** True when a refresh is due at @p now (must drain this rank). */
    bool refreshDue(Cycle now) const { return now >= nextRefreshAt_; }

    /** True iff all banks are precharged and idle. */
    bool allBanksIdle(Cycle now) const;

    /**
     * Issue an all-bank refresh. @pre allBanksIdle(now) and each bank's
     * actAllowedAt has passed. Banks become usable at now + tRFC.
     */
    void refresh(Cycle now);

    /** Cycle of the next scheduled refresh. */
    Cycle nextRefreshAt() const { return nextRefreshAt_; }

    /** Total refreshes performed. */
    std::uint64_t refreshCount() const { return refreshCount_; }

    /**
     * Cumulative cycles this rank has spent refreshing (tRFC windows)
     * up to cycle @p t; the part of an in-flight refresh past @p t is
     * excluded. Monotone in @p t; the difference of two snapshots is
     * exactly the refresh busy time inside the window — the request
     * tracer's "refresh shadow" blame. Refresh and migration
     * reservations are provably disjoint per rank (refresh() requires
     * all banks unreserved), so bank reservation blame and rank
     * refresh blame never double-count a cycle.
     */
    Cycle
    refreshBusyUpTo(Cycle t) const
    {
        Cycle pending = refreshingUntil_ > t ? refreshingUntil_ - t : 0;
        return refreshBusyTotal_ - pending;
    }
    /// @}

    /** Checkpoint the rank windows, refresh schedule and every bank. */
    void
    serdeState(Archive &ar)
    {
        ar.section("rank");
        ar.expectCount(banks_.size(), "banks");
        for (Bank &b : banks_)
            b.serdeState(ar);
        for (Cycle &t : actTimes_)
            ar.io(t);
        ar.io(actHead_);
        ar.io(actCount_);
        ar.io(lastActAt_);
        ar.io(readAllowedAt_);
        ar.io(nextRefreshAt_);
        ar.io(refreshingUntil_);
        ar.io(refreshBusyTotal_);
        ar.io(refreshCount_);
        ar.io(version_);
        ar.end();
    }

  private:
    const DramTiming *timing_;
    std::vector<Bank> banks_;

    /** Times of the most recent four activates (ring buffer). */
    std::array<Cycle, 4> actTimes_{};
    unsigned actHead_ = 0;
    std::uint64_t actCount_ = 0;
    Cycle lastActAt_ = 0;

    Cycle readAllowedAt_ = 0;
    Cycle nextRefreshAt_;
    Cycle refreshingUntil_ = 0;
    Cycle refreshBusyTotal_ = 0;
    std::uint64_t refreshCount_ = 0;
    std::uint64_t version_ = 0;
};

} // namespace dasdram

#endif // DASDRAM_DRAM_RANK_HH
