/**
 * @file
 * Per-channel DRAM memory controller: FR-FCFS scheduling, open-page row
 * policy, separate read/write queues with drain watermarks, refresh
 * management, and bank reservation for DAS-DRAM migrations/swaps.
 *
 * Time unit throughout is memory-bus cycles (tCK = 1.25 ns).
 */

#ifndef DASDRAM_DRAM_CONTROLLER_HH
#define DASDRAM_DRAM_CONTROLLER_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/bank.hh"
#include "dram/cmd_trace.hh"
#include "dram/geometry.hh"
#include "dram/rank.hh"
#include "dram/row_class.hh"
#include "dram/timing.hh"
#include "mem/request.hh"

namespace dasdram
{

class RequestTraceSink; // mem/request_trace.hh

/** Request scheduling policy. */
enum class SchedPolicy
{
    FrFcfs, ///< first-ready, first-come-first-served (Table 1)
    Fcfs,   ///< strict arrival order (baseline for tests/ablations)
};

/** Row-buffer management policy. */
enum class PagePolicy
{
    Open,   ///< leave rows open (Table 1)
    Closed, ///< precharge after every column access
};

/** Controller tunables. */
struct ControllerConfig
{
    unsigned readQueueDepth = 32; ///< Table 1: 32-entry request queue
    unsigned writeQueueDepth = 32;
    unsigned writeHighWatermark = 24;
    unsigned writeLowWatermark = 8;
    SchedPolicy sched = SchedPolicy::FrFcfs;
    PagePolicy page = PagePolicy::Open;
    bool refreshEnabled = true;

    /**
     * Migrations are background work: they wait for the target bank to
     * have no queued demand requests, but at most this many cycles
     * (then they force their way in to avoid starvation).
     */
    Cycle migrationMaxDefer = 1600; // 2 us at 800 MHz

    /**
     * Observer for every issued command (protocol checker, trace
     * writer). Zero cost when null: no record is even built. Must
     * outlive the controller. Also settable post-construction via
     * ChannelController::setCommandSink().
     */
    CommandSink *cmdSink = nullptr;

    /**
     * Sample per-class latency/queue-delay histograms and per-bank
     * breakdown stats. The stats are always registered (dumps stay
     * shape-stable); this only gates the sampling on the hot path.
     */
    bool histograms = true;

    /**
     * Observer for completed request spans (sampled lifecycle
     * tracing). Zero cost when no request carries a span: every touch
     * point is gated on the request's span pointer. Must outlive the
     * controller. Also settable post-construction via
     * ChannelController::setSpanSink().
     */
    RequestTraceSink *spanSink = nullptr;
};

/** An internal row migration or swap to run in one bank. */
struct MigrationJob
{
    /** group value for jobs with no owner-side identity. */
    static constexpr std::uint64_t kNoGroup = ~std::uint64_t{0};

    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t rowA = 0; ///< e.g. promotee (slow) row
    std::uint64_t rowB = 0; ///< e.g. victim (fast) row
    bool fullSwap = true;   ///< swap (3 tRC) vs single migration (1.5 tRC)
    /** Row range blocked while the swap runs (the two subarrays /
     *  migration group). Defaults to just the two rows. */
    std::uint64_t rowLo = 0;
    std::uint64_t rowHi = 0;
    Cycle enqueuedAt = kCycleMax; ///< stamped by the controller
    /** Nonzero per-channel job id, stamped by addMigration(). */
    std::uint64_t id = 0;
    /**
     * Serialisable owner-side identity (the DAS migration-group id),
     * kNoGroup for untagged jobs. What a restored owner uses to
     * reconstruct onDone via DramSystem::rebindMigrations().
     */
    std::uint64_t group = kNoGroup;
    /** Called at completion with the finish cycle. */
    std::function<void(Cycle)> onDone;

    /** Checkpoint all data fields; onDone is left null on load (the
     *  owner rebinds it from @c group). */
    void
    serdeState(Archive &ar)
    {
        ar.io(rank);
        ar.io(bank);
        ar.io(rowA);
        ar.io(rowB);
        ar.io(fullSwap);
        ar.io(rowLo);
        ar.io(rowHi);
        ar.io(enqueuedAt);
        ar.io(id);
        ar.io(group);
    }
};

/**
 * One DDR3 channel: command/data bus, ranks, queues and scheduler.
 */
class ChannelController
{
  public:
    ChannelController(unsigned channel_id, const DramGeometry &geom,
                      const DramTiming &timing,
                      const RowClassifier &classifier,
                      const ControllerConfig &cfg);

    /// @name Request interface
    /// @{

    /** True iff a request of this kind can be accepted now. */
    bool canAccept(bool is_write) const;

    /**
     * Hand a request to the controller. @pre canAccept(req->isWrite).
     * The controller takes ownership; onComplete fires when the data
     * burst finishes (reads) or the WR command issues (writes), then
     * the request is destroyed.
     */
    void enqueue(std::unique_ptr<MemRequest> req, Cycle now);

    /**
     * True iff a write to @p line_addr is queued (read forwarding).
     */
    bool writeQueued(Addr line_addr) const;
    /// @}

    /** Queue a migration/swap job. Jobs run FIFO per bank. */
    void addMigration(MigrationJob job);

    /** Number of migration jobs not yet completed. */
    std::size_t pendingMigrations() const { return migrations_.size(); }

    /** Advance to cycle @p now: retire completions, issue ≤1 command. */
    void tick(Cycle now);

    /**
     * Earliest cycle at which tick() could do useful work, for
     * fast-forwarding an idle system. Returns kCycleMax when fully idle
     * with refresh disabled.
     *
     * This is the channel's event horizon: a lower bound on the next
     * state change, computed from the same per-bank/per-rank allowed-at
     * times the scheduler itself consults (tRCD/tRAS/tRP/tCCD, tRRD /
     * tFAW / tWTR, refresh deadlines, bus occupancy, reservations).
     * The bound may be early — waking the controller on a cycle where
     * nothing issues is a no-op — but is never late: skipping every
     * cycle below the horizon is indistinguishable from ticking them.
     * Both the internal catch-up loop of DramSystem::tick and the
     * event engine's outer loop rely on exactly that property, which
     * the differential suite (ctest -L differential) enforces.
     */
    Cycle nextWakeCycle(Cycle now) const;

    /** Outstanding work (queues, in-flight, migrations)? */
    bool busy() const;

    /**
     * True iff this channel provably cannot interact with anything
     * outside itself through cycle @p hi inclusive: no read completion
     * or migration completion callback fires at or before @p hi and no
     * write is queued (writes complete — and fire their callback — at
     * WR issue time). DramSystem's deterministic per-channel threading
     * only advances channels concurrently over spans that every channel
     * reports safe, so callbacks always run on the caller's thread in
     * serial order.
     */
    bool parallelSafeThrough(Cycle hi) const;

    /** Attach (or detach with nullptr) the command observer. */
    void setCommandSink(CommandSink *sink) { sink_ = sink; }

    /** Attach (or detach with nullptr) the completed-span observer. */
    void setSpanSink(RequestTraceSink *sink) { spanSink_ = sink; }

    /// @name Introspection & statistics
    /// @{
    Rank &rank(unsigned i) { return ranks_[i]; }
    const Rank &rank(unsigned i) const { return ranks_[i]; }

    StatGroup &stats() { return statGroup_; }

    std::uint64_t actCountFast() const { return actsFast_.value(); }
    std::uint64_t actCountSlow() const { return actsSlow_.value(); }
    std::uint64_t rowHits() const { return rowHits_.value(); }
    std::uint64_t readCount() const { return reads_.value(); }
    std::uint64_t writeCount() const { return writes_.value(); }
    std::uint64_t migrationCount() const { return migrationsDone_.value(); }

    /**
     * Read-latency histogram (enqueue → data, memory cycles) for
     * requests serviced at @p loc: RowBuffer (row hit), FastLevel or
     * SlowLevel. Unknown aliases to RowBuffer.
     */
    const Histogram &readLatencyHistogram(ServiceLocation loc) const;
    const Histogram &writeLatencyHistogram() const { return writeLat_; }

    /** Per-bank read-latency distributions merged channel-wide. */
    Distribution mergedBankReadLatency() const;
    /// @}

    /// @name Checkpointing
    /// @{

    /**
     * Checkpoint the channel: ranks and banks, both queues, in-flight
     * reads, the completion heap (raw array, preserving exact
     * tie-break pop order), migrations and bus/scheduler bookkeeping.
     * Stats are not stored here — they ride the owner's StatGroup
     * serdeTree pass. On load every request's onComplete and every
     * job's onDone is null until the owner rebinds them.
     */
    void serdeState(Archive &ar);

    /** Visit every owned request (queued and in-flight) — the rebind
     *  hook a restored owner uses to reinstall onComplete. */
    void forEachRequest(const std::function<void(MemRequest &)> &fn);

    /** Visit every migration job (pending and active) — the rebind
     *  hook a restored owner uses to reinstall onDone. */
    void forEachMigration(const std::function<void(MigrationJob &)> &fn);
    /// @}

  private:
    struct Completion
    {
        Cycle at;
        MemRequest *req;
        bool operator>(const Completion &o) const { return at > o.at; }
    };

    Bank &bankOf(const MemRequest &r);
    const Bank &bankOf(const MemRequest &r) const;

    /** Run completion callbacks due at or before @p now. */
    void retireCompletions(Cycle now);

    /** Returns true if a command was issued (consumes the cmd bus). */
    bool serviceRefresh(Cycle now);
    bool serviceMigrations(Cycle now);
    bool issueFromQueue(std::vector<std::unique_ptr<MemRequest>> &queue,
                        Cycle now);

    /**
     * If queue[i] is a ready row hit, issue its column command, retire
     * or track it, and return true.
     */
    bool issueColumnFor(std::vector<std::unique_ptr<MemRequest>> &queue,
                        std::size_t i, Cycle now);

    /** Try to issue the column command for @p req. */
    bool tryColumn(MemRequest &req, Cycle now);
    /** Try to issue ACT or PRE on behalf of @p req. */
    bool tryRowCommand(MemRequest &req, Cycle now);

    /**
     * Absolute lower bound on the cycle at which @p req could issue its
     * next command — column, ACT or conflict PRE — derived from the
     * current bank/rank/bus state. Cached in req.sched keyed on the
     * three state versions; any command touching them recomputes it.
     * The bound is now-free: callers clamp with max(now + 1, bound),
     * which provably equals the per-cycle evaluation at every now while
     * the state is unchanged.
     */
    Cycle requestReadyAt(const MemRequest &req) const;

    /**
     * Lower bound (> @p now) on the cycle at which @p req could issue
     * its next command — column, ACT or conflict PRE — assuming no
     * other command issues first (any such issue re-runs the horizon).
     */
    Cycle requestWakeCycle(const MemRequest &req, Cycle now) const;

    /**
     * Cheap necessary condition for @p req issuing any command at
     * @p now: not reservation-blocked and its cached absolute ready
     * cycle has arrived. False lets the batched queue scan skip the
     * request without re-running the full scheduling checks — sound
     * because the bound is never late, exact because the full checks
     * still run when it passes.
     */
    bool requestMaybeIssuable(const MemRequest &req, Cycle now) const;

    /**
     * Monotone signature of every piece of state the cached queue and
     * precharge horizons depend on: the channel version (queue
     * membership), the bus version, and all rank and bank versions.
     * Each term only ever increments, so the sum strictly increases on
     * any transition — two distinct states never alias.
     */
    std::uint64_t stateSignature() const;

    /**
     * Recompute the rollup horizon caches if stateSignature() moved or
     * the earliest reservation blocking a queued request expired: the
     * minimum absolute ready cycle over unblocked requests of both
     * queues (reusing every per-request cache whose versions still
     * match), the earliest end of a reservation blocking a queued
     * request, and the earliest closed-page precharge. O(1) when
     * nothing changed. Like nextWakeCycle, assumes @p now does not
     * decrease between state transitions.
     */
    void refreshHorizonCaches(Cycle now) const;

    /** Fire callback and destroy @p req (ownership in @p owner). */
    void finish(std::unique_ptr<MemRequest> req, Cycle at,
                ServiceLocation fallback_loc);

    /// @name Request-span stamping (no-ops unless req.span is set)
    /// @{

    /** Queue-admit stamp: coordinates, row class, readiness lower
     *  bound and the busy-accumulator snapshots blame is charged
     *  against. Call from enqueue(), after arrivalTick is set. */
    void stampSpanAdmit(MemRequest &req, Cycle now);

    /**
     * First-command stamp: closes the wait window [admit, now) and
     * charges its reservation/refresh overlap from the accumulator
     * deltas. Idempotent — later commands for the same request leave
     * the window closed. @pre req.span.
     */
    void stampSpanFirstCommand(MemRequest &req, Cycle now);
    /// @}

    /**
     * Report a PRE closing @p bank's open row (call before
     * Bank::precharge, while the row is still visible).
     */
    void emitPrecharge(Cycle now, unsigned rank_id, unsigned bank_id,
                       const Bank &bank);

    unsigned channelId_;
    DramGeometry geom_;
    const DramTiming *timing_;
    const RowClassifier *classifier_;
    ControllerConfig cfg_;

    std::vector<Rank> ranks_;

    std::vector<std::unique_ptr<MemRequest>> readQueue_;
    std::vector<std::unique_ptr<MemRequest>> writeQueue_;
    bool drainingWrites_ = false;

    /**
     * In-flight reads awaiting data completion: a min-heap on `at`
     * kept with push_heap/pop_heap over an explicit vector (identical
     * pop order to the std::priority_queue it replaces), so a
     * checkpoint can serialise the raw heap array verbatim and restore
     * the exact tie-break order.
     */
    std::vector<Completion> completions_;
    std::vector<std::unique_ptr<MemRequest>> inflight_;

    CommandSink *sink_ = nullptr;
    RequestTraceSink *spanSink_ = nullptr;
    std::uint64_t nextMigrationId_ = 1;

    std::deque<MigrationJob> migrations_;
    /** Migration completion events: (cycle, index into migrations_). */
    std::vector<std::pair<Cycle, MigrationJob>> activeMigrations_;

    /** Channel data-bus bookkeeping. */
    Cycle dataBusFreeAt_ = 0;
    Cycle nextColAllowedAt_ = 0;
    int lastBusRank_ = -1;
    bool lastBusWasWrite_ = false;

    /// @name Readiness-cache bookkeeping
    /// @{

    /** Bumped whenever the bus state above changes (column issue). */
    std::uint64_t busVer_ = 0;
    /** Bumped whenever queue membership changes (enqueue/dequeue). */
    std::uint64_t chanVer_ = 0;

    /** Signature the rollup caches below were computed at. */
    mutable std::uint64_t horizonSig_ = ~std::uint64_t{0};
    /** Min absolute ready cycle over queued requests not blocked by a
     *  reservation (kCycleMax: none). */
    mutable Cycle queuePathMin_ = kCycleMax;
    /** Min reservation end over blocked queued requests (kCycleMax:
     *  none). Doubles as the caches' validity horizon: when now
     *  reaches it the blocked/unblocked partition changes without a
     *  version bump, so the caches are recomputed. */
    mutable Cycle queueBlockedMin_ = kCycleMax;
    /** Earliest closed-page PRE over open banks (kCycleMax: none). */
    mutable Cycle preMinReady_ = kCycleMax;
    /// @}

    /// @name Statistics
    /// @{
    StatGroup statGroup_;
    Counter reads_, writes_, rowHits_, actsFast_, actsSlow_, precharges_;
    Counter refreshes_, migrationsDone_, readForwards_;
    Distribution readLatency_; ///< enqueue → data, in memory cycles

    /** Per-row-class latency and queue histograms (memory cycles /
     *  queue entries). Sampling gated by ControllerConfig::histograms. */
    Histogram readLatRowHit_, readLatFast_, readLatSlow_, writeLat_;
    Histogram readQueueDelay_, writeQueueDelay_;
    Histogram readQueueOcc_, writeQueueOcc_;
    Histogram migrationStartDelay_; ///< first consideration → start

    /** Row-buffer behaviour broken down per bank (global bank index
     *  = rank * banksPerRank + bank), rolled up via merge(). */
    struct BankStats
    {
        explicit BankStats(const std::string &name) : group(name) {}
        StatGroup group;
        Counter rowHits;
        Counter rowConflicts;   ///< PRE issued for a conflicting row
        Counter classConflicts; ///< conflict where the classes differ
        Distribution readLatency;
    };
    std::vector<std::unique_ptr<BankStats>> bankStats_;

    BankStats &bankStatsOf(unsigned rank_id, unsigned bank_id);
    /// @}
};

} // namespace dasdram

#endif // DASDRAM_DRAM_CONTROLLER_HH
