/**
 * @file
 * Command-level observation of a DRAM channel: the record type every
 * issued command is described by, the sink interface the controller
 * emits records to, a fan-out helper, and a plain-text trace writer.
 *
 * The hook is zero-cost when unused: ChannelController only builds a
 * CmdRecord when a sink is attached (ControllerConfig::cmdSink or
 * ChannelController::setCommandSink).
 */

#ifndef DASDRAM_DRAM_CMD_TRACE_HH
#define DASDRAM_DRAM_CMD_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.hh"
#include "dram/command.hh"
#include "dram/row_class.hh"

namespace dasdram
{

/**
 * One issued DRAM command. Field meaning depends on the command:
 *  - ACT/RD/WR/PRE: row is the target row (for PRE, the row being
 *    closed), rowClass its subarray class; RD/WR also carry column.
 *  - REF: rank-wide; row is kAddrInvalid, duration is tRFC.
 *  - MIGRATE: row/rowB are the two rows moved, [rowLo, rowHi) the row
 *    range the job blocks, duration the busy time (migration or swap),
 *    migrationId a nonzero per-channel job id.
 *
 * All times are memory-bus cycles (tCK = 1.25 ns).
 */
struct CmdRecord
{
    Cycle cycle = 0;
    DramCommand cmd = DramCommand::ACT;
    unsigned channel = 0;
    unsigned rank = 0;
    unsigned bank = 0;
    std::uint64_t row = kAddrInvalid;
    std::uint64_t column = 0;
    RowClass rowClass = RowClass::Slow;
    std::uint64_t migrationId = 0; ///< MIGRATE only; 0 = none
    std::uint64_t rowB = kAddrInvalid;
    std::uint64_t rowLo = 0;
    std::uint64_t rowHi = 0;
    Cycle duration = 0;
};

/** Receives every command a controller issues, in issue order. */
class CommandSink
{
  public:
    virtual ~CommandSink() = default;
    virtual void onCommand(const CmdRecord &rec) = 0;
};

/** Forwards each record to several sinks (e.g. checker + trace file). */
class CommandFanout : public CommandSink
{
  public:
    void addSink(CommandSink *sink)
    {
        if (sink)
            sinks_.push_back(sink);
    }

    void
    onCommand(const CmdRecord &rec) override
    {
        for (CommandSink *s : sinks_)
            s->onCommand(rec);
    }

  private:
    std::vector<CommandSink *> sinks_;
};

/**
 * A point event from outside the command stream (e.g. a DasManager
 * promotion decision). Times are in global simulation ticks — event
 * producers live in the CPU tick domain, unlike CmdRecord's
 * memory-bus cycles; consumers convert (see mem/clock.hh).
 */
struct TraceInstant
{
    /** Static event name (not copied; string literals only). */
    const char *name = "";
    Cycle tick = 0;
    std::uint64_t row = kAddrInvalid;    ///< subject logical row
    std::uint64_t victim = kAddrInvalid; ///< victim logical row, if any
    std::uint64_t group = 0;             ///< migration group index
    /** Static cause tag (e.g. "threshold"); may be null. */
    const char *cause = nullptr;
};

/** Receives point events; same zero-cost contract as CommandSink. */
class TraceEventSink
{
  public:
    virtual ~TraceEventSink() = default;
    virtual void onInstant(const TraceInstant &ev) = 0;
};

/**
 * Writes one text line per command to a stream. Format (stable, one
 * record per line, documented in DESIGN.md):
 *
 *   <cycle> <CMD> ch<c> ra<r> ba<b> row=<row> cls=<F|S> col=<col>
 *   <cycle> PRE ch<c> ra<r> ba<b> row=<row> cls=<F|S>
 *   <cycle> REF ch<c> ra<r> dur=<tRFC>
 *   <cycle> MIGRATE ch<c> ra<r> ba<b> rowA=<a> rowB=<b> \
 *       range=[<lo>,<hi>) id=<n> dur=<cycles>
 */
class CommandTrace : public CommandSink
{
  public:
    /** @param os destination stream; must outlive the trace. */
    explicit CommandTrace(std::ostream &os) : os_(&os) {}

    void onCommand(const CmdRecord &rec) override;

    std::uint64_t commandCount() const { return count_; }

  private:
    std::ostream *os_;
    std::uint64_t count_ = 0;
};

} // namespace dasdram

#endif // DASDRAM_DRAM_CMD_TRACE_HH
