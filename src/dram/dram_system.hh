/**
 * @file
 * Multi-channel DRAM system: address decoding, request routing, write-
 * to-read forwarding, clock-domain conversion (global ticks ↔ memory
 * cycles), and the migration interface used by DAS-DRAM.
 */

#ifndef DASDRAM_DRAM_DRAM_SYSTEM_HH
#define DASDRAM_DRAM_DRAM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "dram/address_mapping.hh"
#include "dram/controller.hh"
#include "dram/energy.hh"
#include "dram/timing.hh"
#include "mem/clock.hh"
#include "mem/request.hh"

namespace dasdram
{

/**
 * The full memory system below the last-level cache. All public times
 * are in global simulation ticks (1/12 ns); internal controller state
 * runs in memory-bus cycles.
 */
class DramSystem
{
  public:
    /**
     * @param classifier row-class oracle; must outlive the system.
     */
    DramSystem(const DramGeometry &geom, const DramTiming &timing,
               const RowClassifier &classifier,
               const ControllerConfig &ctrl_cfg = {},
               MappingScheme scheme = MappingScheme::RoRaBaChCo);

    /// @name Request interface (tick domain)
    /// @{

    /** Decode a physical byte address. */
    DramLoc decode(Addr addr) const { return mapper_.decode(addr); }

    /** True iff the channel owning @p loc can accept the request. */
    bool canAccept(const DramLoc &loc, bool is_write) const;

    /**
     * Submit a request whose loc is already decoded (and translated).
     * @pre canAccept(req->loc, req->isWrite).
     * onComplete fires with the completion time in ticks. Reads that hit
     * the channel write queue are forwarded and complete quickly without
     * occupying DRAM banks.
     */
    void submit(std::unique_ptr<MemRequest> req, Cycle now_tick);
    /// @}

    /**
     * Queue a row swap (promotion) or single migration in the bank that
     * owns the two rows. Rows [row_lo, row_hi) — the affected
     * subarrays / migration group — are blocked while it runs; pass
     * row_lo == row_hi to block just the two rows. @p on_done fires
     * with the finish tick.
     */
    void startMigration(unsigned channel, unsigned rank, unsigned bank,
                        std::uint64_t row_a, std::uint64_t row_b,
                        bool full_swap, std::uint64_t row_lo,
                        std::uint64_t row_hi,
                        std::function<void(Cycle)> on_done);

    /**
     * Attach a command observer (protocol checker / trace writer) to
     * every channel; nullptr detaches. Must outlive the system.
     */
    void setCommandSink(CommandSink *sink);

    /** Advance the memory clock up to @p now_tick (call monotonically). */
    void tick(Cycle now_tick);

    /** Earliest tick tick() should next be called at. */
    Cycle nextWakeTick(Cycle now_tick) const;

    /** Any outstanding work in any channel? */
    bool busy() const;

    /// @name Introspection
    /// @{
    const AddressMapper &mapper() const { return mapper_; }
    const DramGeometry &geometry() const { return mapper_.geometry(); }
    const DramTiming &timing() const { return timing_; }
    ChannelController &channel(unsigned i) { return *channels_[i]; }
    const ChannelController &channel(unsigned i) const
    {
        return *channels_[i];
    }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    /** Aggregate operation counts for the energy model. */
    EnergyBreakdown energyBreakdown() const;

    StatGroup &stats() { return statGroup_; }
    /// @}

  private:
    DramTiming timing_;
    AddressMapper mapper_;
    std::vector<std::unique_ptr<ChannelController>> channels_;
    Cycle lastMemCycle_ = 0;

    StatGroup statGroup_;
    Counter forwardedReads_;
};

} // namespace dasdram

#endif // DASDRAM_DRAM_DRAM_SYSTEM_HH
