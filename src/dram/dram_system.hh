/**
 * @file
 * Multi-channel DRAM system: address decoding, request routing, write-
 * to-read forwarding, clock-domain conversion (global ticks ↔ memory
 * cycles), the migration interface used by DAS-DRAM, and optional
 * deterministic per-channel threading for the catch-up loop.
 */

#ifndef DASDRAM_DRAM_DRAM_SYSTEM_HH
#define DASDRAM_DRAM_DRAM_SYSTEM_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "dram/address_mapping.hh"
#include "dram/controller.hh"
#include "dram/energy.hh"
#include "dram/timing.hh"
#include "mem/clock.hh"
#include "mem/request.hh"

namespace dasdram
{

/**
 * The full memory system below the last-level cache. All public times
 * are in global simulation ticks (1/12 ns); internal controller state
 * runs in memory-bus cycles.
 */
class DramSystem
{
  public:
    /**
     * @param classifier row-class oracle; must outlive the system.
     */
    DramSystem(const DramGeometry &geom, const DramTiming &timing,
               const RowClassifier &classifier,
               const ControllerConfig &ctrl_cfg = {},
               MappingScheme scheme = MappingScheme::RoRaBaChCo);

    ~DramSystem();

    DramSystem(const DramSystem &) = delete;
    DramSystem &operator=(const DramSystem &) = delete;

    /// @name Request interface (tick domain)
    /// @{

    /** Decode a physical byte address. */
    DramLoc decode(Addr addr) const { return mapper_.decode(addr); }

    /** True iff the channel owning @p loc can accept the request. */
    bool canAccept(const DramLoc &loc, bool is_write) const;

    /**
     * Submit a request whose loc is already decoded (and translated).
     * @pre canAccept(req->loc, req->isWrite).
     * onComplete fires with the completion time in ticks. Reads that hit
     * the channel write queue are forwarded and complete quickly without
     * occupying DRAM banks.
     */
    void submit(std::unique_ptr<MemRequest> req, Cycle now_tick);
    /// @}

    /**
     * Queue a row swap (promotion) or single migration in the bank that
     * owns the two rows. Rows [row_lo, row_hi) — the affected
     * subarrays / migration group — are blocked while it runs; pass
     * row_lo == row_hi to block just the two rows. @p on_done fires
     * with the finish tick. @p group is the caller's serialisable
     * identity for the job (MigrationJob::kNoGroup when it has none):
     * after a snapshot restore, rebindMigrations() hands it back so
     * the owner can reconstruct on_done.
     */
    void startMigration(unsigned channel, unsigned rank, unsigned bank,
                        std::uint64_t row_a, std::uint64_t row_b,
                        bool full_swap, std::uint64_t row_lo,
                        std::uint64_t row_hi,
                        std::function<void(Cycle)> on_done,
                        std::uint64_t group = MigrationJob::kNoGroup);

    /**
     * Attach a command observer (protocol checker / trace writer) to
     * every channel; nullptr detaches. Must outlive the system.
     */
    void setCommandSink(CommandSink *sink);

    /**
     * Attach a completed-request-span observer (request tracing) to
     * every channel; nullptr detaches. Must outlive the system. The
     * system keeps its own reference for reads forwarded from the
     * write queue, which never reach a channel controller.
     */
    void setRequestTraceSink(RequestTraceSink *sink);

    /**
     * Set the number of threads used to advance channels inside
     * tick(). Clamped to [1, numChannels()]; 1 (the default) keeps the
     * fully serial path. Results are bit-identical for every value:
     * channels only advance in parallel across spans proven free of
     * cross-channel interaction (no queued writes, no completion or
     * migration callback due, span capped below the shortest
     * read/migration latency), and buffered command records are merged
     * back into exact serial issue order.
     */
    void setChannelThreads(unsigned n);

    /** Current channel-threading width (1 = serial). */
    unsigned channelThreads() const { return threads_; }

    /** Advance the memory clock up to @p now_tick (call monotonically). */
    void tick(Cycle now_tick);

    /** Earliest tick tick() should next be called at. */
    Cycle nextWakeTick(Cycle now_tick) const;

    /**
     * Earliest memory cycle any channel could issue a command or change
     * state after @p mem_now (kCycleMax when fully idle). The memory-
     * cycle-domain primitive behind nextWakeTick(); fuzz/differential
     * harnesses probe this directly.
     */
    Cycle nextWakeMemCycle(Cycle mem_now) const;

    /** Any outstanding work in any channel? */
    bool busy() const;

    /// @name Introspection
    /// @{
    const AddressMapper &mapper() const { return mapper_; }
    const DramGeometry &geometry() const { return mapper_.geometry(); }
    const DramTiming &timing() const { return timing_; }
    ChannelController &channel(unsigned i) { return *channels_[i]; }
    const ChannelController &channel(unsigned i) const
    {
        return *channels_[i];
    }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    /** Aggregate operation counts for the energy model. */
    EnergyBreakdown energyBreakdown() const;

    StatGroup &stats() { return statGroup_; }
    /// @}

    /// @name Checkpointing
    /// @{

    /** Checkpoint the memory clock and every channel (worker-pool and
     *  sink wiring is reconstructed, not stored). */
    void serdeState(Archive &ar);

    /**
     * Reinstall completion callbacks on every owned request after a
     * restore. @p binder maps a request (via its serialised
     * Continuation) to a tick-domain callback (or null); each one is
     * re-wrapped into the controller's memory-cycle domain exactly as
     * submit() wraps live callbacks.
     */
    void rebindRequests(
        const std::function<MemRequest::Callback(const MemRequest &)>
            &binder);

    /**
     * Reinstall onDone on every pending/active migration job after a
     * restore. @p binder maps a job (via its serialised group tag) to
     * a tick-domain callback (or null); wrapped like startMigration()
     * wraps live callbacks.
     */
    void rebindMigrations(
        const std::function<std::function<void(Cycle)>(
            const MigrationJob &)> &binder);
    /// @}

  private:
    /** Buffers one channel's command records during a parallel span. */
    struct BufferSink : CommandSink
    {
        std::vector<CmdRecord> records;
        void onCommand(const CmdRecord &rec) override
        {
            records.push_back(rec);
        }
    };

    /**
     * End of the longest span starting at lastMemCycle_ that every
     * channel can advance independently (lastMemCycle_ itself when no
     * such span exists). Capped at @p target and at lastMemCycle_ +
     * minReadSpan_ so nothing issued inside the span also completes
     * inside it.
     */
    Cycle parallelSpanEnd(Cycle target) const;

    /** Advance channel @p c over (from, hi] using its own horizons. */
    void advanceChannelSpan(unsigned c, Cycle from, Cycle hi);

    /** Run one parallel span over (from, hi] across the worker pool. */
    void runSpanParallel(Cycle from, Cycle hi);

    void workerLoop();
    void startWorkers();
    void stopWorkers();

    DramTiming timing_;
    AddressMapper mapper_;
    std::vector<std::unique_ptr<ChannelController>> channels_;
    Cycle lastMemCycle_ = 0;

    CommandSink *sink_ = nullptr; ///< system-wide sink (may be null)
    RequestTraceSink *spanSink_ = nullptr; ///< request-span sink

    /**
     * Shortest latency from any in-span command issue to its earliest
     * observable side effect (read completion or migration finish).
     * Parallel spans never exceed this length, so span execution is
     * callback-free and channels are fully independent.
     */
    Cycle minReadSpan_ = 1;

    unsigned threads_ = 1;
    std::vector<std::thread> workers_;
    std::vector<BufferSink> spanSinks_;
    std::vector<CmdRecord> mergeBuf_;

    std::mutex mtx_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    std::uint64_t spanGen_ = 0;  ///< bumped per published span
    bool shutdown_ = false;
    unsigned busyWorkers_ = 0;
    Cycle spanFrom_ = 0;
    Cycle spanHi_ = 0;
    std::atomic<unsigned> nextSpanChannel_{0};

    StatGroup statGroup_;
    Counter forwardedReads_;
};

} // namespace dasdram

#endif // DASDRAM_DRAM_DRAM_SYSTEM_HH
