/**
 * @file
 * Per-bank DRAM state machine enforcing row-class-dependent core-array
 * timing (tRCD/tRAS/tRP/tRC/tCL) plus column/precharge constraints.
 *
 * All times here are in memory-bus cycles (tCK = 1.25 ns).
 */

#ifndef DASDRAM_DRAM_BANK_HH
#define DASDRAM_DRAM_BANK_HH

#include <cstdint>

#include "common/serde.hh"
#include "common/types.hh"
#include "dram/timing.hh"

namespace dasdram
{

/**
 * One DRAM bank. The owning channel controller is responsible for
 * rank-level (tRRD/tFAW/refresh) and channel-level (bus) constraints;
 * the bank tracks only its own state and earliest-allowed times.
 *
 * Every state transition (ACT/PRE/RD/WR, reservation, refresh, reset)
 * bumps a monotone version counter. The controller keys its cached
 * earliest-command-ready cycles on these versions, so a cache entry is
 * valid exactly while the bank state it was derived from is unchanged.
 */
class Bank
{
  public:
    explicit Bank(const DramTiming &timing) : timing_(&timing) {}

    /**
     * Monotone state-version counter: incremented by every mutator
     * (activate, precharge, read, write, reserve, refresh, reset).
     * Readiness caches derived from this bank's state are valid iff
     * the version they were computed at still matches.
     */
    std::uint64_t version() const { return version_; }

    /** True iff a row is latched in the row buffer. */
    bool hasOpenRow() const { return hasOpenRow_; }

    /** The open row. @pre hasOpenRow(). */
    std::uint64_t openRow() const { return openRow_; }

    /** Row class of the open row. @pre hasOpenRow(). */
    RowClass openRowClass() const { return openClass_; }

    /** True iff a migration/swap currently holds some row range. */
    bool reserved(Cycle now) const { return now < reservedUntil_; }

    /** Cycle the current reservation ends (0 when none). */
    Cycle reservedUntil() const { return reservedUntil_; }

    /**
     * Cumulative cycles this bank has spent reserved by migrations up
     * to cycle @p t (the part of an in-flight reservation past @p t
     * is excluded). Monotone in @p t; the difference of two snapshots
     * is exactly the reservation busy time inside the window, which
     * is what the request tracer uses for migration blame. @p t must
     * not precede the start of the current reservation (queries are
     * always made at the controller's current cycle).
     */
    Cycle
    reservedBusyUpTo(Cycle t) const
    {
        Cycle pending = reservedUntil_ > t ? reservedUntil_ - t : 0;
        return reservedBusyTotal_ - pending;
    }

    /**
     * True iff @p row is inside the row range held by an active
     * migration (its two subarrays). Rows outside the range stay
     * accessible: the migration uses the subarray-local row buffers
     * and per-subarray row logic (Section 4.1). The two rows being
     * swapped are exempt — their contents sit in the shared half row
     * buffers throughout the procedure (Figure 3d) and remain
     * serviceable at column-access cost.
     */
    bool
    rowBlocked(Cycle now, std::uint64_t row) const
    {
        return reserved(now) && row >= resRowLo_ && row < resRowHi_ &&
               row != resExemptA_ && row != resExemptB_;
    }

    /**
     * Absolute (now-free) form of rowBlocked: the cycle until which
     * @p row is held by the bank's reservation range, 0 when the row
     * is outside it or exempt. Once the reservation has expired the
     * returned cycle is in the past, so callers clamping against
     * "now + 1" need no freshness check — the stale bound is harmless.
     */
    Cycle
    blockedUntil(std::uint64_t row) const
    {
        return (row >= resRowLo_ && row < resRowHi_ &&
                row != resExemptA_ && row != resExemptB_)
                   ? reservedUntil_
                   : 0;
    }

    /// @name Command legality (bank-local constraints only)
    /// @{
    bool
    canActivate(Cycle now, std::uint64_t row) const
    {
        return !hasOpenRow_ && now >= actAllowedAt_ &&
               !rowBlocked(now, row);
    }

    bool
    canPrecharge(Cycle now) const
    {
        return hasOpenRow_ && now >= preAllowedAt_;
    }

    bool
    canColumn(Cycle now) const
    {
        return hasOpenRow_ && now >= colAllowedAt_;
    }

    /** Earliest cycle a column command could issue (kCycleMax if closed). */
    Cycle
    columnAllowedAt() const
    {
        return hasOpenRow_ ? colAllowedAt_ : kCycleMax;
    }

    Cycle actAllowedAt() const { return actAllowedAt_; }
    Cycle preAllowedAt() const { return preAllowedAt_; }

    /** Earliest cycle the open row could be precharged (kCycleMax when
     *  no row is open) — the bank-local PRE horizon. */
    Cycle
    prechargeReadyAt() const
    {
        return hasOpenRow_ ? preAllowedAt_ : kCycleMax;
    }
    /// @}

    /// @name Command application
    /// @{

    /** Open @p row of class @p cls at cycle @p now.
     *  @pre canActivate(now, row). */
    void activate(Cycle now, std::uint64_t row, RowClass cls);

    /** Close the open row. @pre canPrecharge(now). */
    void precharge(Cycle now);

    /**
     * Issue a read to the open row. @pre canColumn(now).
     * @return cycle the data burst completes.
     */
    Cycle read(Cycle now);

    /**
     * Issue a write to the open row. @pre canColumn(now).
     * @return cycle the write burst completes on the bus.
     */
    Cycle write(Cycle now);

    /**
     * Reserve rows [row_lo, row_hi) for an internal migration/swap of
     * @p duration cycles starting at @p now. The open row (if any)
     * must be outside the range; rows outside it stay serviceable.
     * @pre !reserved(now).
     */
    void reserve(Cycle now, Cycle duration, std::uint64_t row_lo,
                 std::uint64_t row_hi,
                 std::uint64_t exempt_a = kAddrInvalid,
                 std::uint64_t exempt_b = kAddrInvalid);

    /** Apply an all-bank refresh ending at @p done_at. */
    void refresh(Cycle done_at);
    /// @}

    /** Restore power-up state (testing). */
    void reset();

    /** Checkpoint the full bank state machine, including the version
     *  counter (restored caches keyed on it stay consistent) and the
     *  reservation busy-time accumulator blame attribution reads. */
    void
    serdeState(Archive &ar)
    {
        ar.io(version_);
        ar.io(hasOpenRow_);
        ar.io(openRow_);
        ar.io(openClass_);
        ar.io(actAllowedAt_);
        ar.io(preAllowedAt_);
        ar.io(colAllowedAt_);
        ar.io(reservedUntil_);
        ar.io(reservedBusyTotal_);
        ar.io(resRowLo_);
        ar.io(resRowHi_);
        ar.io(resExemptA_);
        ar.io(resExemptB_);
    }

  private:
    const DramTiming *timing_;

    std::uint64_t version_ = 0;

    bool hasOpenRow_ = false;
    std::uint64_t openRow_ = 0;
    RowClass openClass_ = RowClass::Slow;

    Cycle actAllowedAt_ = 0;
    Cycle preAllowedAt_ = 0;
    Cycle colAllowedAt_ = 0;
    Cycle reservedUntil_ = 0;
    Cycle reservedBusyTotal_ = 0;
    std::uint64_t resRowLo_ = 0;
    std::uint64_t resRowHi_ = 0;
    std::uint64_t resExemptA_ = kAddrInvalid;
    std::uint64_t resExemptB_ = kAddrInvalid;
};

} // namespace dasdram

#endif // DASDRAM_DRAM_BANK_HH
