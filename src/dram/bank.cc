#include "bank.hh"

#include <algorithm>

#include "common/log.hh"

namespace dasdram
{

void
Bank::activate(Cycle now, std::uint64_t row, RowClass cls)
{
    if (!canActivate(now, row))
        panic("Bank::activate timing violation at cycle {}", now);
    ++version_;
    hasOpenRow_ = true;
    openRow_ = row;
    openClass_ = cls;

    const ArrayTiming &at = timing_->array(cls);
    colAllowedAt_ = now + at.tRCD;
    preAllowedAt_ = now + at.tRAS;
    actAllowedAt_ = now + at.tRC;
}

void
Bank::precharge(Cycle now)
{
    if (!canPrecharge(now))
        panic("Bank::precharge timing violation at cycle {}", now);
    ++version_;
    const ArrayTiming &at = timing_->array(openClass_);
    actAllowedAt_ = std::max(actAllowedAt_, now + at.tRP);
    hasOpenRow_ = false;
}

Cycle
Bank::read(Cycle now)
{
    if (!canColumn(now))
        panic("Bank::read timing violation at cycle {}", now);
    ++version_;
    const ArrayTiming &at = timing_->array(openClass_);
    preAllowedAt_ = std::max(preAllowedAt_, now + timing_->tRTP);
    return now + at.tCL + timing_->tBL;
}

Cycle
Bank::write(Cycle now)
{
    if (!canColumn(now))
        panic("Bank::write timing violation at cycle {}", now);
    ++version_;
    Cycle burst_end = now + timing_->tCWL + timing_->tBL;
    preAllowedAt_ = std::max(preAllowedAt_, burst_end + timing_->tWR);
    return burst_end;
}

void
Bank::reserve(Cycle now, Cycle duration, std::uint64_t row_lo,
              std::uint64_t row_hi, std::uint64_t exempt_a,
              std::uint64_t exempt_b)
{
    if (reserved(now))
        panic("Bank::reserve while already reserved");
    if (hasOpenRow_ && openRow_ >= row_lo && openRow_ < row_hi &&
        openRow_ != exempt_a && openRow_ != exempt_b) {
        panic("Bank::reserve with the open row inside the range");
    }
    ++version_;
    reservedUntil_ = now + duration;
    reservedBusyTotal_ += duration;
    resRowLo_ = row_lo;
    resRowHi_ = row_hi;
    resExemptA_ = exempt_a;
    resExemptB_ = exempt_b;
}

void
Bank::refresh(Cycle done_at)
{
    if (hasOpenRow_)
        panic("Bank::refresh requires a precharged bank");
    ++version_;
    actAllowedAt_ = std::max(actAllowedAt_, done_at);
}

void
Bank::reset()
{
    ++version_;
    hasOpenRow_ = false;
    openRow_ = 0;
    openClass_ = RowClass::Slow;
    actAllowedAt_ = 0;
    preAllowedAt_ = 0;
    colAllowedAt_ = 0;
    reservedUntil_ = 0;
    reservedBusyTotal_ = 0;
    resRowLo_ = 0;
    resRowHi_ = 0;
    resExemptA_ = kAddrInvalid;
    resExemptB_ = kAddrInvalid;
}

} // namespace dasdram
