#include "command.hh"

namespace dasdram
{

const char *
toString(DramCommand cmd)
{
    switch (cmd) {
      case DramCommand::ACT:
        return "ACT";
      case DramCommand::RD:
        return "RD";
      case DramCommand::WR:
        return "WR";
      case DramCommand::PRE:
        return "PRE";
      case DramCommand::REF:
        return "REF";
      case DramCommand::MIGRATE:
        return "MIGRATE";
    }
    return "?";
}

} // namespace dasdram
