/**
 * @file
 * A coarse DRAM energy model supporting the paper's Section 7.7 power
 * discussion: fast-subarray activations cost less than slow ones
 * (shorter bitlines move less charge), and migrations add a small
 * per-swap energy. Values are representative DDR3 figures, not vendor
 * data; only relative comparisons are meaningful.
 */

#ifndef DASDRAM_DRAM_ENERGY_HH
#define DASDRAM_DRAM_ENERGY_HH

#include <cstdint>

namespace dasdram
{

/** Per-operation energies in nanojoules. */
struct EnergyParams
{
    double actPreSlowNj = 18.0; ///< ACT+restore+PRE, 512-cell bitline
    double actPreFastNj = 6.5;  ///< ACT+restore+PRE, 128-cell bitline
    double readNj = 10.0;       ///< column read incl. I/O burst
    double writeNj = 10.5;      ///< column write incl. I/O burst
    double refreshNj = 48.0;    ///< one all-bank refresh of one rank
    double swapNj = 52.0;       ///< one row swap (4 internal row ops,
                                ///< no I/O: data never leaves the chip)
};

/** Operation counts gathered from the controllers. */
struct EnergyBreakdown
{
    std::uint64_t actsSlow = 0;
    std::uint64_t actsFast = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t swaps = 0;

    /** Total dynamic energy in nanojoules under @p p. */
    double
    totalNj(const EnergyParams &p) const
    {
        return static_cast<double>(actsSlow) * p.actPreSlowNj +
               static_cast<double>(actsFast) * p.actPreFastNj +
               static_cast<double>(reads) * p.readNj +
               static_cast<double>(writes) * p.writeNj +
               static_cast<double>(refreshes) * p.refreshNj +
               static_cast<double>(swaps) * p.swapNj;
    }

    /** Energy per data access (read+write) in nanojoules. */
    double
    perAccessNj(const EnergyParams &p) const
    {
        std::uint64_t accesses = reads + writes;
        return accesses ? totalNj(p) / static_cast<double>(accesses) : 0.0;
    }
};

} // namespace dasdram

#endif // DASDRAM_DRAM_ENERGY_HH
