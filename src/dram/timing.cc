#include "timing.hh"

#include "common/log.hh"

namespace dasdram
{

DramTiming
ddr3_1600Timing(bool charm_column_opt)
{
    DramTiming t{};

    // Commodity (slow) subarray: Table 1 / Samsung 2Gb D-die DDR3-1600.
    t.slow.tRCD = nsToMemCycles(13.75); // 11
    t.slow.tRAS = nsToMemCycles(35.0);  // 28
    t.slow.tRP = nsToMemCycles(13.75);  // 11
    t.slow.tRC = t.slow.tRAS + t.slow.tRP; // 39 cycles = 48.75 ns
    t.slow.tCL = nsToMemCycles(13.75);  // 11

    // Fast subarray: CHARM 128-cell bitline figures used by the paper
    // (tRCD 8.75 ns, tRC 25 ns). The tRAS/tRP split keeps the documented
    // tRC; sensing and precharge both shrink with the shorter bitline.
    t.fast.tRCD = nsToMemCycles(8.75);  // 7
    t.fast.tRAS = nsToMemCycles(13.75); // 11
    t.fast.tRP = nsToMemCycles(11.25);  // 9
    t.fast.tRC = t.fast.tRAS + t.fast.tRP; // 20 cycles = 25 ns
    // Column access is unchanged by bitline length; CHARM additionally
    // optimises the column path of fast subarrays.
    t.fast.tCL = charm_column_opt ? nsToMemCycles(12.5) : t.slow.tCL;

    t.tCWL = nsToMemCycles(10.0); // 8
    t.tBL = 4;                    // BL8 at DDR
    t.tWR = nsToMemCycles(15.0);  // 12
    t.tWTR = nsToMemCycles(7.5);  // 6
    t.tRTP = nsToMemCycles(7.5);  // 6
    t.tCCD = 4;
    t.tRRD = nsToMemCycles(7.5);  // 6 (2 KB page size part)
    t.tFAW = nsToMemCycles(40.0); // 32
    t.tRTRS = 2;
    t.tRFC = nsToMemCycles(160.0);   // 128 (2 Gb device)
    t.tREFI = nsToMemCycles(7800.0); // 6240

    // Section 4.2: a row migration is 2 activate+restore steps with the
    // restore (tRAS) tightened because the migration row is read right
    // back out, giving ~1.5 tRC per migration. A promotion swap
    // (Figure 6) overlaps the two directions and totals 3 tRC(slow) =
    // 146.25 ns, which Table 1 lists as the migration latency.
    t.migrationCycles = divCeil(3 * t.slow.tRC, 2); // 59 cycles ~ 1.5 tRC
    t.swapCycles = 3 * t.slow.tRC;                  // 117 cyc = 146.25 ns

    if (!t.slow.consistent() || !t.fast.consistent())
        panic("inconsistent DDR3 array timing");
    return t;
}

Cycle
expectedSwapCycles(const DramTiming &t)
{
    // Figure 6: four steps; steps 3 and 4 each run two half-row moves in
    // parallel, so the critical path is two migrations of 1.5 tRC each,
    // i.e. 3 tRC of the slow (commodity) subarray.
    return 3 * t.slow.tRC;
}

} // namespace dasdram
