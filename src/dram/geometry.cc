#include "geometry.hh"

namespace dasdram
{

bool
DramGeometry::valid() const
{
    return isPowerOfTwo(channels) && isPowerOfTwo(ranksPerChannel) &&
           isPowerOfTwo(banksPerRank) && isPowerOfTwo(rowsPerBank) &&
           isPowerOfTwo(rowBytes) && isPowerOfTwo(lineBytes) &&
           lineBytes <= rowBytes;
}

GlobalRowId
makeGlobalRowId(const DramGeometry &g, unsigned channel, unsigned rank,
                unsigned bank, std::uint64_t row)
{
    GlobalRowId id = channel;
    id = id * g.ranksPerChannel + rank;
    id = id * g.banksPerRank + bank;
    id = id * g.rowsPerBank + row;
    return id;
}

DramLoc
decodeGlobalRowId(const DramGeometry &g, GlobalRowId id)
{
    DramLoc loc;
    loc.row = id % g.rowsPerBank;
    id /= g.rowsPerBank;
    loc.bank = static_cast<unsigned>(id % g.banksPerRank);
    id /= g.banksPerRank;
    loc.rank = static_cast<unsigned>(id % g.ranksPerChannel);
    id /= g.ranksPerChannel;
    loc.channel = static_cast<unsigned>(id);
    return loc;
}

} // namespace dasdram
