/**
 * @file
 * DDR3 timing parameters, expressed in memory-bus cycles (tCK = 1.25 ns),
 * with per-row-class core-array parameters for hybrid-bitline DRAM.
 */

#ifndef DASDRAM_DRAM_TIMING_HH
#define DASDRAM_DRAM_TIMING_HH

#include "common/types.hh"
#include "dram/row_class.hh"
#include "mem/clock.hh"

namespace dasdram
{

/**
 * Core-array (cell-array operation) timing of one subarray class.
 * These are the parameters bitline length affects (Section 3).
 */
struct ArrayTiming
{
    Cycle tRCD; ///< ACT → column command
    Cycle tRAS; ///< ACT → PRE
    Cycle tRP;  ///< PRE → ACT
    Cycle tRC;  ///< ACT → ACT (same bank); == tRAS + tRP
    Cycle tCL;  ///< RD → first data (CHARM also shortens this)

    /** Consistency check: tRC must equal tRAS + tRP. */
    bool consistent() const { return tRC == tRAS + tRP; }
};

/**
 * Full device timing: shared bus/peripheral parameters plus one
 * ArrayTiming per row class.
 */
struct DramTiming
{
    ArrayTiming slow; ///< commodity subarray (512-cell bitline)
    ArrayTiming fast; ///< short-bitline subarray (128-cell bitline)

    Cycle tCWL;  ///< WR → first data
    Cycle tBL;   ///< data burst length in bus cycles (BL8 → 4)
    Cycle tWR;   ///< end of write burst → PRE
    Cycle tWTR;  ///< end of write burst → RD (same rank)
    Cycle tRTP;  ///< RD → PRE
    Cycle tCCD;  ///< column command → column command
    Cycle tRRD;  ///< ACT → ACT (different banks, same rank)
    Cycle tFAW;  ///< window for at most four ACTs per rank
    Cycle tRTRS; ///< rank-to-rank data-bus switch penalty
    Cycle tRFC;  ///< refresh cycle time
    Cycle tREFI; ///< average refresh interval

    /**
     * Row migration latency (Section 4.2): one row migration is
     * 1.5 tRC(slow); a full promotion swap is 146.25 ns (Table 1).
     */
    Cycle migrationCycles; ///< one row migration
    Cycle swapCycles;      ///< full row swap (promotion)

    const ArrayTiming &
    array(RowClass cls) const
    {
        return cls == RowClass::Fast ? fast : slow;
    }

    /** Read latency (RD issue to end of burst) for a row class. */
    Cycle
    readLatency(RowClass cls) const
    {
        return array(cls).tCL + tBL;
    }
};

/**
 * DDR3-1600 timing per Table 1 and the Samsung 2 Gb D-die datasheet,
 * with the fast subarray parameters from CHARM (tRCD 8.75 ns,
 * tRC 25 ns).
 *
 * @param charm_column_opt apply CHARM's optimised column access
 *        (reduced tCL) to the fast class.
 */
DramTiming ddr3_1600Timing(bool charm_column_opt = false);

/** Self-check helper: recompute swap latency from first principles. */
Cycle expectedSwapCycles(const DramTiming &t);

} // namespace dasdram

#endif // DASDRAM_DRAM_TIMING_HH
