/**
 * @file
 * Physical-address to DRAM-coordinate mapping.
 */

#ifndef DASDRAM_DRAM_ADDRESS_MAPPING_HH
#define DASDRAM_DRAM_ADDRESS_MAPPING_HH

#include "dram/geometry.hh"

namespace dasdram
{

/** Interleaving order for the address mapper. */
enum class MappingScheme
{
    /**
     * Row : Rank : Bank : Channel : Column (MSB → LSB). Consecutive rows
     * of the physical address space spread across channels, then banks,
     * then ranks — the usual open-page-friendly layout.
     */
    RoRaBaChCo,
    /** Row : Bank : Rank : Channel : Column. */
    RoBaRaChCo,
    /** Channel : Rank : Bank : Row : Column — no interleaving (tests). */
    ChRaBaRoCo,
};

/**
 * Decodes line-aligned physical addresses into DramLoc coordinates and
 * re-encodes them. All geometry fields must be powers of two.
 */
class AddressMapper
{
  public:
    AddressMapper(const DramGeometry &geom,
                  MappingScheme scheme = MappingScheme::RoRaBaChCo);

    /** Decode a byte address. */
    DramLoc decode(Addr addr) const;

    /** Re-encode coordinates into a (line-aligned) byte address. */
    Addr encode(const DramLoc &loc) const;

    const DramGeometry &geometry() const { return geom_; }
    MappingScheme scheme() const { return scheme_; }

  private:
    DramGeometry geom_;
    MappingScheme scheme_;
    unsigned lineBits_;
    unsigned colBits_;
    unsigned chBits_;
    unsigned raBits_;
    unsigned baBits_;
    unsigned roBits_;
};

} // namespace dasdram

#endif // DASDRAM_DRAM_ADDRESS_MAPPING_HH
