/**
 * @file
 * Chrome trace_event JSON export of the DRAM command stream, loadable
 * in chrome://tracing and Perfetto.
 *
 * Track layout (pid/tid):
 *  - pid c        = "channel<c>" for each DRAM channel
 *      tid B+1        = "rank<r> bank<b>": row-open spans (ACT → PRE,
 *                       named "row <row> <F|S>"), RD/WR bursts
 *      tid B+1+1000   = companion "… migrate" track: MIGRATE/SWAP
 *                       spans (kept separate so they never overlap
 *                       the row spans, which trace viewers render as
 *                       nesting)
 *      tid 1+nbanks+r = "rank<r> refresh": REF spans (tRFC)
 *    where B = rank * banksPerRank + bank and nbanks is the number of
 *    banks per channel.
 *  - pid channels = "das-manager": instant events from TraceEventSink
 *    (promotion decisions, with row/victim/group/cause args).
 *
 * Timestamps are microseconds (Chrome's unit): memory cycles are
 * multiplied by tCK = 1.25 ns, ticks divided by ticks-per-µs. All
 * events are complete ("X") or instant ("i") events, so the file is
 * valid even for partial runs once finish() has closed the array.
 */

#ifndef DASDRAM_DRAM_TRACE_JSON_HH
#define DASDRAM_DRAM_TRACE_JSON_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "dram/cmd_trace.hh"
#include "dram/geometry.hh"
#include "dram/timing.hh"

namespace dasdram
{

class ChromeTraceWriter : public CommandSink, public TraceEventSink
{
  public:
    /**
     * Stream the trace to @p os (must outlive the writer). Metadata
     * (process/thread names) is written immediately; call finish()
     * to close the JSON document — the destructor does it as a
     * safety net.
     */
    ChromeTraceWriter(std::ostream &os, const DramGeometry &geom,
                      const DramTiming &timing);
    ~ChromeTraceWriter() override;

    void onCommand(const CmdRecord &rec) override;
    void onInstant(const TraceInstant &ev) override;

    /**
     * Flush still-open row spans (ended at the last seen cycle) and
     * close the traceEvents array + top-level object. Idempotent.
     */
    void finish();

    std::uint64_t eventCount() const { return events_; }

  private:
    struct OpenRow
    {
        bool open = false;
        Cycle since = 0;
        std::uint64_t row = 0;
        RowClass cls = RowClass::Slow;
    };

    /** Stream one pre-rendered event object. */
    void emit(const std::string &json);
    void writeMetadata();
    void emitRowSpan(unsigned channel, unsigned rank, unsigned bank,
                     const OpenRow &open, Cycle end);

    unsigned bankTid(unsigned rank, unsigned bank) const;
    double cycleUs(Cycle c) const;

    std::ostream *os_;
    DramGeometry geom_;
    Cycle tBL_;
    Cycle swapCycles_;
    bool headerDone_ = false;
    bool finished_ = false;
    std::uint64_t events_ = 0;
    Cycle lastCycle_ = 0;
    /** [channel][rank * banksPerRank + bank] open-row state. */
    std::vector<std::vector<OpenRow>> openRows_;
};

} // namespace dasdram

#endif // DASDRAM_DRAM_TRACE_JSON_HH
