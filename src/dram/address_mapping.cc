#include "address_mapping.hh"

#include "common/log.hh"

namespace dasdram
{

AddressMapper::AddressMapper(const DramGeometry &geom, MappingScheme scheme)
    : geom_(geom), scheme_(scheme)
{
    if (!geom.valid())
        fatal("AddressMapper requires power-of-two DRAM geometry");
    lineBits_ = log2Exact(geom.lineBytes);
    colBits_ = log2Exact(geom.rowBytes / geom.lineBytes);
    chBits_ = log2Exact(geom.channels);
    raBits_ = log2Exact(geom.ranksPerChannel);
    baBits_ = log2Exact(geom.banksPerRank);
    roBits_ = log2Exact(geom.rowsPerBank);
}

DramLoc
AddressMapper::decode(Addr addr) const
{
    DramLoc loc;
    std::uint64_t a = addr >> lineBits_;
    switch (scheme_) {
      case MappingScheme::RoRaBaChCo:
        loc.column = bits(a, 0, colBits_);
        a >>= colBits_;
        loc.channel = static_cast<unsigned>(bits(a, 0, chBits_));
        a >>= chBits_;
        loc.bank = static_cast<unsigned>(bits(a, 0, baBits_));
        a >>= baBits_;
        loc.rank = static_cast<unsigned>(bits(a, 0, raBits_));
        a >>= raBits_;
        loc.row = bits(a, 0, roBits_);
        break;
      case MappingScheme::RoBaRaChCo:
        loc.column = bits(a, 0, colBits_);
        a >>= colBits_;
        loc.channel = static_cast<unsigned>(bits(a, 0, chBits_));
        a >>= chBits_;
        loc.rank = static_cast<unsigned>(bits(a, 0, raBits_));
        a >>= raBits_;
        loc.bank = static_cast<unsigned>(bits(a, 0, baBits_));
        a >>= baBits_;
        loc.row = bits(a, 0, roBits_);
        break;
      case MappingScheme::ChRaBaRoCo:
        loc.column = bits(a, 0, colBits_);
        a >>= colBits_;
        loc.row = bits(a, 0, roBits_);
        a >>= roBits_;
        loc.bank = static_cast<unsigned>(bits(a, 0, baBits_));
        a >>= baBits_;
        loc.rank = static_cast<unsigned>(bits(a, 0, raBits_));
        a >>= raBits_;
        loc.channel = static_cast<unsigned>(bits(a, 0, chBits_));
        break;
    }
    return loc;
}

Addr
AddressMapper::encode(const DramLoc &loc) const
{
    std::uint64_t a = 0;
    switch (scheme_) {
      case MappingScheme::RoRaBaChCo:
        a = loc.row;
        a = (a << raBits_) | loc.rank;
        a = (a << baBits_) | loc.bank;
        a = (a << chBits_) | loc.channel;
        a = (a << colBits_) | loc.column;
        break;
      case MappingScheme::RoBaRaChCo:
        a = loc.row;
        a = (a << baBits_) | loc.bank;
        a = (a << raBits_) | loc.rank;
        a = (a << chBits_) | loc.channel;
        a = (a << colBits_) | loc.column;
        break;
      case MappingScheme::ChRaBaRoCo:
        a = loc.channel;
        a = (a << raBits_) | loc.rank;
        a = (a << baBits_) | loc.bank;
        a = (a << roBits_) | loc.row;
        a = (a << colBits_) | loc.column;
        break;
    }
    return a << lineBits_;
}

} // namespace dasdram
