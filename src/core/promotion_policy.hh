/**
 * @file
 * Row-promotion filtering policies (Section 5.3 / Section 7.3).
 *
 * Policy 1 promotes on every slow-level hit (threshold 1). Policy 2
 * counts accesses per recently-used row in a fixed pool of hardware
 * counters (the paper uses 1024) and promotes only when a row has been
 * hit @c threshold times.
 */

#ifndef DASDRAM_CORE_PROMOTION_POLICY_HH
#define DASDRAM_CORE_PROMOTION_POLICY_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "dram/geometry.hh"

namespace dasdram
{

/** Configuration for the promotion filter. */
struct PromotionConfig
{
    /** Hits in the slow level required before promotion. 1 = always. */
    unsigned threshold = 1;
    /** Number of hardware counters tracking recently used rows. */
    unsigned counters = 1024;
};

/**
 * The promotion filter. Direct-mapped counter table over logical rows:
 * a row evicting another's counter restarts from one, approximating the
 * paper's recently-used-rows counter pool.
 */
class PromotionFilter
{
  public:
    explicit PromotionFilter(const PromotionConfig &cfg);

    /**
     * Record a slow-level access to @p row.
     * @return true when the row should be promoted now (the counter is
     * then released).
     */
    bool onSlowAccess(GlobalRowId row);

    /** Forget state for @p row (e.g. after its promotion). */
    void clear(GlobalRowId row);

    unsigned threshold() const { return cfg_.threshold; }

    std::uint64_t filtered() const { return filtered_.value(); }
    std::uint64_t promotionsAllowed() const { return allowed_.value(); }

    StatGroup &stats() { return statGroup_; }

    /** Checkpoint the counter pool. */
    void
    serdeState(Archive &ar)
    {
        ar.section("promoFilter");
        ar.expectCount(slots_.size(), "promotion counters");
        for (Slot &s : slots_) {
            ar.io(s.row);
            ar.io(s.count);
            ar.io(s.valid);
        }
        ar.end();
    }

  private:
    struct Slot
    {
        GlobalRowId row = ~0ULL;
        unsigned count = 0;
        bool valid = false;
    };

    PromotionConfig cfg_;
    std::vector<Slot> slots_;

    StatGroup statGroup_;
    Counter filtered_, allowed_;
};

} // namespace dasdram

#endif // DASDRAM_CORE_PROMOTION_POLICY_HH
