#include "designs.hh"

#include <array>

#include "common/log.hh"

namespace dasdram
{

namespace
{

std::array<DesignSpec, 6>
makeSpecs()
{
    std::array<DesignSpec, 6> s{};

    DesignSpec &standard = s[0];
    standard.kind = DesignKind::Standard;
    standard.name = "Standard";

    DesignSpec &sas = s[1];
    sas.kind = DesignKind::Sas;
    sas.name = "SAS-DRAM";
    sas.heterogeneous = true;
    sas.mode = ManagementMode::Static;
    sas.needsProfiling = true;

    DesignSpec &charm = s[2];
    charm.kind = DesignKind::Charm;
    charm.name = "CHARM";
    charm.heterogeneous = true;
    charm.charmColumnOpt = true;
    charm.mode = ManagementMode::Static;
    charm.needsProfiling = true;

    DesignSpec &das = s[3];
    das.kind = DesignKind::Das;
    das.name = "DAS-DRAM";
    das.heterogeneous = true;
    das.mode = ManagementMode::Dynamic;

    DesignSpec &fm = s[4];
    fm.kind = DesignKind::DasFm;
    fm.name = "DAS-DRAM (FM)";
    fm.heterogeneous = true;
    fm.mode = ManagementMode::Dynamic;
    fm.zeroMigrationLatency = true;

    DesignSpec &fs = s[5];
    fs.kind = DesignKind::Fs;
    fs.name = "FS-DRAM";
    fs.allFast = true;

    return s;
}

const std::array<DesignSpec, 6> &
specs()
{
    static const std::array<DesignSpec, 6> table = makeSpecs();
    return table;
}

} // namespace

const DesignSpec &
designSpec(DesignKind kind)
{
    return specs()[static_cast<std::size_t>(kind)];
}

const std::vector<DesignKind> &
allDesigns()
{
    static const std::vector<DesignKind> v = {
        DesignKind::Standard, DesignKind::Sas,   DesignKind::Charm,
        DesignKind::Das,      DesignKind::DasFm, DesignKind::Fs,
    };
    return v;
}

const std::vector<DesignKind> &
evaluatedDesigns()
{
    static const std::vector<DesignKind> v = {
        DesignKind::Sas, DesignKind::Charm, DesignKind::Das,
        DesignKind::DasFm, DesignKind::Fs,
    };
    return v;
}

const std::string &
toString(DesignKind kind)
{
    return designSpec(kind).name;
}

DesignKind
parseDesign(const std::string &name)
{
    if (name == "standard")
        return DesignKind::Standard;
    if (name == "sas")
        return DesignKind::Sas;
    if (name == "charm")
        return DesignKind::Charm;
    if (name == "das")
        return DesignKind::Das;
    if (name == "das-fm" || name == "dasfm")
        return DesignKind::DasFm;
    if (name == "fs")
        return DesignKind::Fs;
    fatal("unknown DRAM design '{}'", name);
}

} // namespace dasdram
