#include "replacement_policy.hh"

#include "common/log.hh"

namespace dasdram
{

FastReplPolicy
parseFastReplPolicy(const std::string &name)
{
    if (name == "lru")
        return FastReplPolicy::Lru;
    if (name == "random")
        return FastReplPolicy::Random;
    if (name == "sequential")
        return FastReplPolicy::Sequential;
    if (name == "pseudorandom")
        return FastReplPolicy::PseudoRandom;
    fatal("unknown fast-slot replacement policy '{}'", name);
}

const char *
toString(FastReplPolicy p)
{
    switch (p) {
      case FastReplPolicy::Lru:
        return "lru";
      case FastReplPolicy::Random:
        return "random";
      case FastReplPolicy::Sequential:
        return "sequential";
      case FastReplPolicy::PseudoRandom:
        return "pseudorandom";
    }
    return "?";
}

FastSlotReplacement::FastSlotReplacement(FastReplPolicy policy,
                                         unsigned slots_per_group,
                                         std::uint64_t total_groups,
                                         std::uint64_t seed)
    : policy_(policy), slots_(slots_per_group), totalGroups_(total_groups),
      rng_(seed)
{
    if (slots_ == 0)
        fatal("fast-slot replacement needs at least one slot per group");
    if (policy_ == FastReplPolicy::Lru)
        lastUse_.assign(totalGroups_ * slots_, 0);
    if (policy_ == FastReplPolicy::Sequential)
        seqPtr_.assign(totalGroups_, 0);
}

void
FastSlotReplacement::onFastAccess(std::uint64_t group, unsigned slot)
{
    if (policy_ == FastReplPolicy::Lru)
        lastUse_[group * slots_ + slot] = ++stampCounter_;
}

unsigned
FastSlotReplacement::chooseVictim(std::uint64_t group)
{
    switch (policy_) {
      case FastReplPolicy::Lru: {
        const std::uint64_t *base = &lastUse_[group * slots_];
        unsigned victim = 0;
        for (unsigned s = 1; s < slots_; ++s) {
            if (base[s] < base[victim])
                victim = s;
        }
        return victim;
      }
      case FastReplPolicy::Random:
        return static_cast<unsigned>(rng_.nextBelow(slots_));
      case FastReplPolicy::Sequential: {
        std::uint8_t &ptr = seqPtr_[group];
        unsigned victim = ptr;
        ptr = static_cast<std::uint8_t>((ptr + 1) % slots_);
        return victim;
      }
      case FastReplPolicy::PseudoRandom:
        return static_cast<unsigned>(globalCounter_++ % slots_);
    }
    return 0;
}

} // namespace dasdram
