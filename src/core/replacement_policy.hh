/**
 * @file
 * Fast-slot (victim) replacement policies for row promotion
 * (Section 5.3 / Section 7.6): LRU, random, sequential (per-group
 * round-robin) and pseudo-random via a global increasing counter.
 */

#ifndef DASDRAM_CORE_REPLACEMENT_POLICY_HH
#define DASDRAM_CORE_REPLACEMENT_POLICY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"

namespace dasdram
{

/** Which victim-selection policy to use. */
enum class FastReplPolicy
{
    Lru,
    Random,
    Sequential,
    PseudoRandom, ///< global increasing counter mod slots
};

/** Parse "lru"/"random"/"sequential"/"pseudorandom". Fatal otherwise. */
FastReplPolicy parseFastReplPolicy(const std::string &name);

/** Display name of a policy. */
const char *toString(FastReplPolicy p);

/**
 * Chooses which fast slot of a migration group to evict on promotion.
 * Dense per-group state sized once from the layout.
 */
class FastSlotReplacement
{
  public:
    FastSlotReplacement(FastReplPolicy policy, unsigned slots_per_group,
                        std::uint64_t total_groups,
                        std::uint64_t seed = 11);

    /** Record an access to fast slot @p slot of @p group (LRU info). */
    void onFastAccess(std::uint64_t group, unsigned slot);

    /** Pick the victim fast slot in @p group. */
    unsigned chooseVictim(std::uint64_t group);

    FastReplPolicy policy() const { return policy_; }
    unsigned slotsPerGroup() const { return slots_; }

    /** Checkpoint per-group recency/cursor state and the RNG. */
    void
    serdeState(Archive &ar)
    {
        ar.section("fastRepl");
        ar.io(lastUse_);
        ar.expectCount(seqPtr_.size(), "sequential cursors");
        if (!seqPtr_.empty())
            ar.blob(seqPtr_.data(), seqPtr_.size());
        ar.io(stampCounter_);
        ar.io(globalCounter_);
        rng_.serdeState(ar);
        ar.end();
    }

  private:
    FastReplPolicy policy_;
    unsigned slots_;
    std::uint64_t totalGroups_;
    std::vector<std::uint64_t> lastUse_; ///< LRU stamps (Lru only)
    std::vector<std::uint8_t> seqPtr_;   ///< per-group cursor (Sequential)
    std::uint64_t stampCounter_ = 0;
    std::uint64_t globalCounter_ = 0;
    Rng rng_;
};

} // namespace dasdram

#endif // DASDRAM_CORE_REPLACEMENT_POLICY_HH
