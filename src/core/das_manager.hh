/**
 * @file
 * The DAS-DRAM management mechanism (Section 5): hardware address
 * translation with a tag cache spilling into the LLC, promotion
 * filtering, fast-slot victim selection and row swapping through the
 * migration engine. Also covers the static baselines (SAS/CHARM) and
 * plain designs (standard/FS) via its mode switch, so every design in
 * Section 7 goes through one code path with different configuration.
 */

#ifndef DASDRAM_CORE_DAS_MANAGER_HH
#define DASDRAM_CORE_DAS_MANAGER_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/stats.hh"
#include "core/inclusive_directory.hh"
#include "core/promotion_policy.hh"
#include "core/replacement_policy.hh"
#include "core/subarray_layout.hh"
#include "core/translation_cache.hh"
#include "core/translation_table.hh"
#include "dram/dram_system.hh"
#include "mem/request_trace.hh"

namespace dasdram
{

/** How the fast level is managed. */
enum class ManagementMode
{
    None,    ///< no remapping (standard DRAM, FS-DRAM)
    Static,  ///< profiling-based fixed mapping (SAS-DRAM, CHARM)
    Dynamic, ///< DAS-DRAM: translation + migration
};

/** Manager configuration (Table 1 defaults). */
struct DasConfig
{
    ManagementMode mode = ManagementMode::Dynamic;
    std::uint64_t translationCacheBytes = 128 * KiB;
    unsigned translationCacheAssoc = 8;
    PromotionConfig promotion{};
    FastReplPolicy replacement = FastReplPolicy::Lru;
    /** DAS-DRAM (FM): apply swaps with zero latency. */
    bool zeroMigrationLatency = false;

    /**
     * Exclusive (paper's choice, Section 5) vs. inclusive fast-level
     * management. Inclusive keeps the slow originals and caches
     * *copies* in the fast slots: a clean-victim promotion needs one
     * migration (1.5 tRC) instead of a swap (3 tRC), but dirty victims
     * must be written back first, and 1/8 of capacity is duplicated
     * (capacity loss is not observable in this timing model; the
     * latency trade-off is).
     */
    bool exclusiveCache = true;
    /** Base address of the in-memory translation table region. */
    Addr tableBase = 7ULL * GiB + 512 * MiB;
    /** LLC hit latency charged to table walks that hit the LLC. */
    Cycle llcLatencyTicks = cpuCyclesToTicks(20);
};

/**
 * Counts of where DRAM data accesses were serviced (Figures 7c/7f/8b).
 */
struct LocationStats
{
    std::uint64_t rowBuffer = 0;
    std::uint64_t fastLevel = 0;
    std::uint64_t slowLevel = 0;

    std::uint64_t
    total() const
    {
        return rowBuffer + fastLevel + slowLevel;
    }
};

/**
 * Memory-side manager between the LLC and the DRAM system.
 */
class DasManager
{
  public:
    /**
     * Receiver for completed-access continuations: called with the
     * token the access was issued with and the completion tick.
     * Installed once by the owning System; tokens of kind None are
     * delivered too (the hook decides they are no-ops).
     */
    using CompletionHook =
        std::function<void(const Continuation &, Cycle)>;

    /**
     * @param caches may be null only when mode != Dynamic (table walks
     *        need the LLC).
     */
    DasManager(DramSystem &dram, CacheHierarchy *caches,
               const AsymmetricLayout &layout, const DasConfig &cfg);

    /**
     * Issue a memory access for line @p addr. When the access
     * completes, @p cont is delivered to the completion hook with the
     * completion tick (DRAM always takes time; forwarded reads may
     * complete at a near tick). Writes may pass a default-constructed
     * (None) token.
     *
     * @p span, when non-null, is the lifecycle record of a sampled
     * request: the manager stamps the translation stage onto it and
     * hands it to the MemRequest when the access is submitted to
     * DRAM. Strictly observational.
     */
    void access(Addr addr, bool is_write, int core, Continuation cont,
                Cycle now, std::unique_ptr<RequestSpan> span = {});

    /** Install the continuation receiver (see CompletionHook). */
    void setCompletionHook(CompletionHook hook)
    {
        completionHook_ = std::move(hook);
    }

    /** Retry deferred submissions; call whenever the system ticks. */
    void tick(Cycle now);

    /** Earliest tick tick() has useful work (kCycleMax when none). */
    Cycle nextWakeTick(Cycle now) const;

    /** Outstanding manager-side work (excludes the DRAM system). */
    bool busy() const { return !pending_.empty(); }

    /// @name Introspection
    /// @{
    TranslationTable &table() { return *table_; }
    const TranslationTable &table() const { return *table_; }
    TranslationCache *translationCache() { return tc_.get(); }
    /** Non-null only in inclusive dynamic mode. */
    InclusiveDirectory *inclusiveDirectory() { return incl_.get(); }
    const AsymmetricLayout &layout() const { return *layout_; }
    const DasConfig &config() const { return cfg_; }

    LocationStats locations() const;
    std::uint64_t promotions() const { return promotions_.value(); }
    std::uint64_t demandAccesses() const { return demandAccesses_.value(); }
    std::uint64_t footprintRows() const;

    StatGroup &stats() { return statGroup_; }
    /** Clear statistic counters (not mappings) after warm-up. */
    void resetStats();

    /**
     * Attach (or detach with nullptr) a point-event observer for
     * promotion decisions (trace export). Zero cost when null.
     */
    void setEventSink(TraceEventSink *sink) { events_ = sink; }

    /**
     * Attach (or detach with nullptr) the request tracer used to
     * sample the manager's own DRAM traffic (translation-table
     * walks), so rate-1.0 span streams cover every controller-visible
     * request. Demand accesses are sampled by the caller (System).
     */
    void setRequestTracer(RequestTracer *tracer) { tracer_ = tracer; }
    /// @}

    /// @name Checkpointing
    /// @{

    /**
     * Checkpoint the manager: translation table/cache, promotion
     * filter, replacement state, inclusive directory, retry queue,
     * in-flight walks, swap groups and the touched-row footprint.
     * Unordered containers are serialised in sorted order so the
     * byte stream is deterministic. Stats ride the owner's StatGroup
     * serdeTree pass.
     */
    void serdeState(Archive &ar);

    /**
     * Reinstall completion callbacks on every request and migration
     * the DRAM system still owns after a restore: table walks resume
     * through onWalkComplete, data requests through onDataComplete
     * (delivering their serialised Continuation to the hook), and
     * tagged migration jobs re-arm their swap-group release.
     */
    void rebindInFlight();
    /// @}

  private:
    /** A translated request waiting for queue space / table walk. */
    struct PendingAccess
    {
        Addr addr = 0;
        bool isWrite = false;
        int core = -1;
        GlobalRowId logical = 0;
        Cycle readyTick = 0;
        Continuation cont;
        std::unique_ptr<RequestSpan> span; ///< sampled requests only

        void
        serdeState(Archive &ar)
        {
            ar.io(addr);
            ar.io(isWrite);
            ar.io(core);
            ar.io(logical);
            ar.io(readyTick);
            cont.serdeState(ar);
            bool has_span = span != nullptr;
            ar.io(has_span);
            if (has_span) {
                if (ar.loading())
                    span = std::make_unique<RequestSpan>();
                span->serdeState(ar);
            } else if (ar.loading()) {
                span.reset();
            }
        }
    };

    /** Perform translation timing; returns extra delay in ticks, or
     *  defers the access (returns kCycleMax) when a DRAM table read is
     *  needed. */
    Cycle translationDelay(const PendingAccess &acc, Cycle now);

    void submitReady(PendingAccess &&acc, Cycle now);
    void trySubmit(PendingAccess &&acc, Cycle now);

    /** Completion of a demand/writeback data request: location
     *  accounting, promotion policy, then the continuation hook. */
    void onDataComplete(MemRequest &req, Cycle at);

    /** Completion of a translation-table walk: LLC fill plus release
     *  of every access coalesced on the table line. */
    void onWalkComplete(MemRequest &treq, Cycle at);
    void maybePromote(GlobalRowId logical, Cycle now);
    void maybePromoteInclusive(GlobalRowId logical, Cycle now);
    GlobalRowId physicalFor(GlobalRowId logical) const;

    DramSystem *dram_;
    CacheHierarchy *caches_;
    const AsymmetricLayout *layout_;
    DasConfig cfg_;

    std::unique_ptr<TranslationTable> table_;
    std::unique_ptr<InclusiveDirectory> incl_; ///< inclusive mode only
    std::unique_ptr<TranslationCache> tc_;
    std::unique_ptr<PromotionFilter> filter_;
    std::unique_ptr<FastSlotReplacement> repl_;

    TraceEventSink *events_ = nullptr;
    RequestTracer *tracer_ = nullptr;
    CompletionHook completionHook_;

    std::deque<PendingAccess> pending_;
    /** In-flight table-line walks: accesses waiting on the same line. */
    std::unordered_map<Addr, std::vector<PendingAccess>> walksInFlight_;
    std::unordered_set<std::uint64_t> swapsInFlight_; ///< group ids
    std::unordered_set<GlobalRowId> touchedRows_;     ///< footprint

    StatGroup statGroup_;
    Counter demandAccesses_, rowBufferHits_, fastAccesses_, slowAccesses_;
    Counter promotions_, promotionsSkippedBusy_, tableWalksLlc_;
    Counter tableWalksDram_, writebacks_;
    Counter cleanPromotions_, dirtyPromotions_; ///< inclusive mode
};

} // namespace dasdram

#endif // DASDRAM_CORE_DAS_MANAGER_HH
