/**
 * @file
 * The five DRAM designs evaluated in Section 7, plus the standard
 * baseline, as a configuration registry consumed by the experiment
 * driver.
 */

#ifndef DASDRAM_CORE_DESIGNS_HH
#define DASDRAM_CORE_DESIGNS_HH

#include <string>
#include <vector>

#include "core/das_manager.hh"

namespace dasdram
{

/** DRAM designs from Section 7. */
enum class DesignKind
{
    Standard, ///< homogeneous commodity DRAM (baseline)
    Sas,      ///< static asymmetric-subarray DRAM (profiled)
    Charm,    ///< SAS + optimised fast-level column access
    Das,      ///< this paper: dynamic asymmetric subarray
    DasFm,    ///< DAS with free (zero-latency) migration
    Fs,       ///< hypothetical all-fast-subarray DRAM
};

/** Everything the simulator needs to instantiate one design. */
struct DesignSpec
{
    DesignKind kind = DesignKind::Standard;
    std::string name;           ///< display name, e.g. "DAS-DRAM"
    bool heterogeneous = false; ///< has fast + slow subarrays
    bool allFast = false;       ///< FS-DRAM: every row fast
    bool charmColumnOpt = false; ///< reduced fast-level tCL
    ManagementMode mode = ManagementMode::None;
    bool zeroMigrationLatency = false;
    bool needsProfiling = false; ///< SAS/CHARM profiling pass
};

/** Specification of @p kind. */
const DesignSpec &designSpec(DesignKind kind);

/** All designs in the Section 7 presentation order. */
const std::vector<DesignKind> &allDesigns();

/** The non-baseline designs shown in Figures 7a/7d. */
const std::vector<DesignKind> &evaluatedDesigns();

/** Display name of @p kind. */
const std::string &toString(DesignKind kind);

/** Parse a design name ("standard", "sas", "charm", "das", "das-fm",
 *  "fs"); fatal on unknown names. */
DesignKind parseDesign(const std::string &name);

} // namespace dasdram

#endif // DASDRAM_CORE_DESIGNS_HH
