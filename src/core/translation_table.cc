#include "translation_table.hh"

#include <numeric>

#include "common/log.hh"

namespace dasdram
{

TranslationTable::TranslationTable(const AsymmetricLayout &layout)
    : layout_(&layout), groupSize_(layout.groupSize())
{
    if (groupSize_ > 256)
        fatal("migration groups above 256 rows need multi-byte entries");
    reset();
}

void
TranslationTable::reset()
{
    std::uint64_t total =
        layout_->totalGroups() * static_cast<std::uint64_t>(groupSize_);
    perm_.assign(total, 0);
    inverse_.assign(total, 0);
    for (std::uint64_t g = 0; g < layout_->totalGroups(); ++g) {
        std::uint8_t *p = &perm_[g * groupSize_];
        std::uint8_t *inv = &inverse_[g * groupSize_];
        for (unsigned s = 0; s < groupSize_; ++s) {
            p[s] = static_cast<std::uint8_t>(s);
            inv[s] = static_cast<std::uint8_t>(s);
        }
    }
    swaps_ = 0;
}

std::uint64_t
TranslationTable::groupIndex(GlobalRowId row) const
{
    return row / groupSize_;
}

GlobalRowId
TranslationTable::physicalOf(GlobalRowId logical) const
{
    std::uint64_t g = groupIndex(logical);
    unsigned slot = static_cast<unsigned>(logical % groupSize_);
    return g * groupSize_ + perm_[g * groupSize_ + slot];
}

GlobalRowId
TranslationTable::logicalOf(GlobalRowId physical) const
{
    std::uint64_t g = groupIndex(physical);
    unsigned slot = static_cast<unsigned>(physical % groupSize_);
    return g * groupSize_ + inverse_[g * groupSize_ + slot];
}

bool
TranslationTable::isFast(GlobalRowId logical) const
{
    std::uint64_t g = groupIndex(logical);
    unsigned slot = static_cast<unsigned>(logical % groupSize_);
    return layout_->slotIsFast(perm_[g * groupSize_ + slot]);
}

void
TranslationTable::swap(GlobalRowId logical_a, GlobalRowId logical_b)
{
    std::uint64_t g = groupIndex(logical_a);
    if (g != groupIndex(logical_b))
        panic("translation swap across migration groups");
    if (logical_a == logical_b)
        return;
    unsigned sa = static_cast<unsigned>(logical_a % groupSize_);
    unsigned sb = static_cast<unsigned>(logical_b % groupSize_);
    std::uint8_t *p = &perm_[g * groupSize_];
    std::uint8_t *inv = &inverse_[g * groupSize_];
    std::swap(p[sa], p[sb]);
    inv[p[sa]] = static_cast<std::uint8_t>(sa);
    inv[p[sb]] = static_cast<std::uint8_t>(sb);
    ++swaps_;
}

GlobalRowId
TranslationTable::logicalInFastSlot(std::uint64_t group,
                                    unsigned fast_slot) const
{
    if (fast_slot >= layout_->fastSlotsPerGroup())
        panic("fast slot index out of range");
    return group * groupSize_ + inverse_[group * groupSize_ + fast_slot];
}

} // namespace dasdram
