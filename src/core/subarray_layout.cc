#include "subarray_layout.hh"

#include "common/log.hh"

namespace dasdram
{

AsymmetricLayout::AsymmetricLayout(const DramGeometry &geom,
                                   const LayoutConfig &cfg)
    : geom_(geom), cfg_(cfg)
{
    if (cfg.groupSize == 0 || cfg.fastRatioDenom == 0)
        fatal("invalid layout configuration");
    if (cfg.groupSize % cfg.fastRatioDenom != 0) {
        fatal("group size {} not divisible by fast ratio denominator {}",
              cfg.groupSize, cfg.fastRatioDenom);
    }
    if (geom.rowsPerBank % cfg.groupSize != 0) {
        fatal("rows per bank {} not divisible by group size {}",
              geom.rowsPerBank, cfg.groupSize);
    }
    fastSlotsPerGroup_ = cfg.groupSize / cfg.fastRatioDenom;
    groupsPerBank_ = geom.rowsPerBank / cfg.groupSize;
}

RowClass
AsymmetricLayout::classify(unsigned, unsigned, unsigned,
                           std::uint64_t row) const
{
    return slotIsFast(slotOf(row)) ? RowClass::Fast : RowClass::Slow;
}

} // namespace dasdram
