/**
 * @file
 * The DAS-DRAM translation table: the authoritative logical→physical
 * row mapping, restricted to migration groups (Section 5.2).
 *
 * Each migration group of G rows holds a permutation of its G physical
 * slots; with G ≤ 256 an entry is one byte, which is what makes the
 * in-memory table and its caching affordable. This class is the
 * functional model; TranslationCache models lookup timing.
 */

#ifndef DASDRAM_CORE_TRANSLATION_TABLE_HH
#define DASDRAM_CORE_TRANSLATION_TABLE_HH

#include <cstdint>
#include <vector>

#include "common/serde.hh"
#include "core/subarray_layout.hh"
#include "dram/geometry.hh"

namespace dasdram
{

/**
 * Logical→physical slot permutations for every migration group in the
 * system, plus the inverse mapping needed for victim identification.
 */
class TranslationTable
{
  public:
    explicit TranslationTable(const AsymmetricLayout &layout);

    /** Physical row currently holding logical row @p logical. */
    GlobalRowId physicalOf(GlobalRowId logical) const;

    /** Logical row currently stored in physical row @p physical. */
    GlobalRowId logicalOf(GlobalRowId physical) const;

    /** True iff logical row @p logical currently lives in a fast slot. */
    bool isFast(GlobalRowId logical) const;

    /**
     * Swap the physical locations of two logical rows. They must
     * belong to the same migration group.
     */
    void swap(GlobalRowId logical_a, GlobalRowId logical_b);

    /**
     * Logical row occupying fast slot @p fast_slot
     * (0 ≤ fast_slot < fastSlotsPerGroup) of @p group.
     */
    GlobalRowId logicalInFastSlot(std::uint64_t group,
                                  unsigned fast_slot) const;

    /** Number of swaps performed so far. */
    std::uint64_t swapCount() const { return swaps_; }

    /** Reset to the identity mapping. */
    void reset();

    /**
     * Byte address of the table entry for @p logical in the reserved
     * table region starting at @p table_base (1 byte per row). Used by
     * the timing model to charge LLC/DRAM accesses for table walks.
     */
    static Addr
    entryAddr(Addr table_base, GlobalRowId logical)
    {
        return table_base + logical;
    }

    const AsymmetricLayout &layout() const { return *layout_; }

    /** Checkpoint both permutation arrays and the swap counter (shapes
     *  are layout-derived and gated). */
    void
    serdeState(Archive &ar)
    {
        ar.section("transTable");
        ar.expectCount(perm_.size(), "translation entries");
        if (!perm_.empty()) {
            ar.blob(perm_.data(), perm_.size());
            ar.blob(inverse_.data(), inverse_.size());
        }
        ar.io(swaps_);
        ar.end();
    }

  private:
    std::uint64_t groupIndex(GlobalRowId row) const;

    const AsymmetricLayout *layout_;
    unsigned groupSize_;
    /** perm_[group * G + logicalSlot] = physicalSlot. */
    std::vector<std::uint8_t> perm_;
    /** inverse_[group * G + physicalSlot] = logicalSlot. */
    std::vector<std::uint8_t> inverse_;
    std::uint64_t swaps_ = 0;
};

} // namespace dasdram

#endif // DASDRAM_CORE_TRANSLATION_TABLE_HH
