#include "inclusive_directory.hh"

#include "common/log.hh"

namespace dasdram
{

InclusiveDirectory::InclusiveDirectory(const AsymmetricLayout &layout)
    : layout_(&layout), slots_(layout.fastSlotsPerGroup())
{
    entries_.resize(layout.totalGroups() * slots_);
}

std::size_t
InclusiveDirectory::index(std::uint64_t group, unsigned slot) const
{
    return group * slots_ + slot;
}

InclusiveDirectory::Copy
InclusiveDirectory::find(GlobalRowId logical) const
{
    std::uint64_t group = layout_->globalGroupOf(logical);
    auto lslot = static_cast<std::uint8_t>(
        logical % layout_->groupSize());
    Copy c;
    for (unsigned s = 0; s < slots_; ++s) {
        const Entry &e = entries_[index(group, s)];
        if (e.valid && e.logicalSlot == lslot) {
            c.valid = true;
            c.fastSlot = s;
            c.dirty = e.dirty;
            return c;
        }
    }
    return c;
}

GlobalRowId
InclusiveDirectory::occupant(std::uint64_t group, unsigned slot) const
{
    const Entry &e = entries_[index(group, slot)];
    if (!e.valid)
        return kAddrInvalid;
    return group * layout_->groupSize() + e.logicalSlot;
}

bool
InclusiveDirectory::dirty(std::uint64_t group, unsigned slot) const
{
    const Entry &e = entries_[index(group, slot)];
    return e.valid && e.dirty;
}

void
InclusiveDirectory::install(GlobalRowId logical, unsigned slot)
{
    std::uint64_t group = layout_->globalGroupOf(logical);
    Entry &e = entries_[index(group, slot)];
    if (!e.valid)
        ++valid_;
    e.valid = true;
    e.dirty = false;
    e.logicalSlot =
        static_cast<std::uint8_t>(logical % layout_->groupSize());
}

void
InclusiveDirectory::markDirty(GlobalRowId logical)
{
    Copy c = find(logical);
    if (!c.valid)
        panic("markDirty for a row without a fast copy");
    std::uint64_t group = layout_->globalGroupOf(logical);
    entries_[index(group, c.fastSlot)].dirty = true;
}

void
InclusiveDirectory::evict(std::uint64_t group, unsigned slot)
{
    Entry &e = entries_[index(group, slot)];
    if (e.valid)
        --valid_;
    e.valid = false;
    e.dirty = false;
}

} // namespace dasdram
