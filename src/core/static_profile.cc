#include "static_profile.hh"

#include <algorithm>
#include <unordered_set>

#include "common/log.hh"

namespace dasdram
{

StaticProfiler::StaticProfiler(const AddressMapper &mapper,
                               const AsymmetricLayout &layout)
    : mapper_(&mapper), layout_(&layout)
{
}

void
StaticProfiler::profile(TraceSource &trace, InstCount instructions,
                        Addr base_offset)
{
    trace.reset();
    InstCount seen = 0;
    TraceEntry e;
    while (seen < instructions && trace.next(e)) {
        seen += e.gap + 1;
        DramLoc loc = mapper_->decode(e.addr + base_offset);
        GlobalRowId row =
            makeGlobalRowId(mapper_->geometry(), loc.channel, loc.rank,
                            loc.bank, loc.row);
        ++counts_[row];
    }
}

std::uint64_t
StaticProfiler::assign(TranslationTable &table) const
{
    // Bucket referenced rows per migration group.
    std::unordered_map<std::uint64_t, std::vector<GlobalRowId>> groups;
    for (const auto &kv : counts_)
        groups[layout_->globalGroupOf(kv.first)].push_back(kv.first);

    const unsigned k = layout_->fastSlotsPerGroup();
    std::uint64_t placed = 0;
    for (auto &kv : groups) {
        std::vector<GlobalRowId> &rows = kv.second;
        std::sort(rows.begin(), rows.end(),
                  [this](GlobalRowId a, GlobalRowId b) {
                      std::uint64_t ca = countOf(a), cb = countOf(b);
                      return ca != cb ? ca > cb : a < b;
                  });
        // Put the top-k rows into the k fast slots (order irrelevant):
        // each wanted row displaces an occupant that is not itself hot.
        std::uint64_t group = kv.first;
        unsigned limit =
            static_cast<unsigned>(std::min<std::uint64_t>(k, rows.size()));
        std::unordered_set<GlobalRowId> top(rows.begin(),
                                            rows.begin() + limit);
        for (unsigned i = 0; i < limit; ++i) {
            GlobalRowId wanted = rows[i];
            if (table.isFast(wanted)) {
                ++placed;
                continue;
            }
            for (unsigned s = 0; s < k; ++s) {
                GlobalRowId occ = table.logicalInFastSlot(group, s);
                if (!top.count(occ)) {
                    table.swap(wanted, occ);
                    ++placed;
                    break;
                }
            }
        }
    }
    return placed;
}

std::uint64_t
StaticProfiler::countOf(GlobalRowId row) const
{
    auto it = counts_.find(row);
    return it == counts_.end() ? 0 : it->second;
}

} // namespace dasdram
