#include "promotion_policy.hh"

#include "common/log.hh"

namespace dasdram
{

PromotionFilter::PromotionFilter(const PromotionConfig &cfg)
    : cfg_(cfg), statGroup_("promotionFilter")
{
    if (cfg.threshold == 0)
        fatal("promotion threshold must be at least 1");
    slots_.resize(cfg.counters ? cfg.counters : 1);
    statGroup_.addCounter("filtered", &filtered_,
                          "slow accesses not (yet) promoted");
    statGroup_.addCounter("allowed", &allowed_, "promotions allowed");
}

bool
PromotionFilter::onSlowAccess(GlobalRowId row)
{
    if (cfg_.threshold <= 1) {
        allowed_.inc();
        return true;
    }
    Slot &s = slots_[row % slots_.size()];
    if (!s.valid || s.row != row) {
        // Take over the counter for this recently used row.
        s.valid = true;
        s.row = row;
        s.count = 1;
    } else {
        ++s.count;
    }
    if (s.count >= cfg_.threshold) {
        s.valid = false;
        allowed_.inc();
        return true;
    }
    filtered_.inc();
    return false;
}

void
PromotionFilter::clear(GlobalRowId row)
{
    Slot &s = slots_[row % slots_.size()];
    if (s.valid && s.row == row)
        s.valid = false;
}

} // namespace dasdram
