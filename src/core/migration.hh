/**
 * @file
 * Command-level model of the row-migration procedure (Figure 3d) and
 * the four-step promotion swap (Figure 6), used to derive and document
 * the 1.5 tRC migration / 3 tRC (146.25 ns) swap latencies of Table 1.
 */

#ifndef DASDRAM_CORE_MIGRATION_HH
#define DASDRAM_CORE_MIGRATION_HH

#include <string>
#include <vector>

#include "dram/timing.hh"

namespace dasdram
{

/** One step of the migration procedure with its latency. */
struct MigrationStep
{
    std::string name;
    Cycle cycles; ///< memory-bus cycles
};

/**
 * Derives the step sequence of a single row migration between two
 * neighbouring subarrays through the shared half row buffers and the
 * migration row (Figure 3d). The restore into the migration row is
 * tightened (the data is read right back out, so full retention-grade
 * restore is unnecessary), which is what brings 2 tRC down to 1.5 tRC.
 */
class MigrationProcedure
{
  public:
    explicit MigrationProcedure(const DramTiming &timing);

    /** The four steps of one half-row-pair migration (Figure 3d). */
    std::vector<MigrationStep> steps() const;

    /** Total latency of one row migration (≈ 1.5 tRC). */
    Cycle migrationCycles() const;

    /**
     * Total latency of a promotion swap (Figure 6): four movement
     * steps, with the two directions overlapped so the critical path
     * is two migrations (3 tRC = 146.25 ns for DDR3-1600).
     */
    Cycle swapCycles() const;

    /** Same, in nanoseconds. */
    double swapNanoseconds() const;

  private:
    const DramTiming *timing_;
};

} // namespace dasdram

#endif // DASDRAM_CORE_MIGRATION_HH
