/**
 * @file
 * Profiling-based static assignment for the SAS-DRAM and CHARM
 * baselines (Section 7: "Each workload is profiled first and the
 * most-frequently-used portion of its footprint is pre-assigned to the
 * fast level").
 */

#ifndef DASDRAM_CORE_STATIC_PROFILE_HH
#define DASDRAM_CORE_STATIC_PROFILE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/translation_table.hh"
#include "cpu/trace.hh"
#include "dram/address_mapping.hh"

namespace dasdram
{

/**
 * Counts row-level reference frequencies over a trace prefix and
 * programs a TranslationTable so that, in every migration group, the
 * most-referenced rows occupy the fast slots.
 */
class StaticProfiler
{
  public:
    StaticProfiler(const AddressMapper &mapper,
                   const AsymmetricLayout &layout);

    /**
     * Run @p trace for @p instructions instructions (gaps included),
     * accumulating per-row reference counts. The trace is reset first
     * and left exhausted/advanced afterwards; callers re-create or
     * reset it for the measured run.
     */
    void profile(TraceSource &trace, InstCount instructions,
                 Addr base_offset = 0);

    /**
     * Program @p table: per migration group, swap the top-k referenced
     * rows into the fast slots (k = fast slots per group).
     * @return number of rows placed in fast slots.
     */
    std::uint64_t assign(TranslationTable &table) const;

    /** Reference count observed for a logical row (0 if untouched). */
    std::uint64_t countOf(GlobalRowId row) const;

    /** Distinct rows referenced during profiling. */
    std::uint64_t touchedRows() const { return counts_.size(); }

  private:
    const AddressMapper *mapper_;
    const AsymmetricLayout *layout_;
    std::unordered_map<GlobalRowId, std::uint64_t> counts_;
};

} // namespace dasdram

#endif // DASDRAM_CORE_STATIC_PROFILE_HH
