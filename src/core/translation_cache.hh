/**
 * @file
 * The memory-controller translation cache ("tag cache", Section 5.2):
 * a small set-associative cache over per-row translation entries.
 *
 * Per the paper, only entries for rows currently in the fast level are
 * cached, which maximises hit ratio because fast-level accesses
 * dominate; its lookup overlaps the LLC access, so hits add no
 * latency. Each entry is one byte of payload; capacity is therefore
 * counted in entries == bytes.
 */

#ifndef DASDRAM_CORE_TRANSLATION_CACHE_HH
#define DASDRAM_CORE_TRANSLATION_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dram/geometry.hh"

namespace dasdram
{

/**
 * Set-associative cache keyed by logical GlobalRowId. Contents are
 * presence-only: the authoritative mapping lives in TranslationTable;
 * this models which lookups are free vs. must walk the LLC/memory.
 */
class TranslationCache
{
  public:
    /**
     * @param capacity_bytes total payload capacity (1 byte/entry).
     * @param assoc         associativity.
     */
    TranslationCache(std::uint64_t capacity_bytes, unsigned assoc = 8);

    /** Look up @p row, updating recency. @return true on hit. */
    bool lookup(GlobalRowId row);

    /** Insert (or refresh) an entry for @p row. */
    void insert(GlobalRowId row);

    /** Drop the entry for @p row if present (e.g. row left fast level). */
    void invalidate(GlobalRowId row);

    /** Hit check without recency update. */
    bool probe(GlobalRowId row) const;

    std::uint64_t capacityEntries() const { return capacity_; }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    double
    hitRatio() const
    {
        std::uint64_t total = hits() + misses();
        return total ? static_cast<double>(hits()) /
                           static_cast<double>(total)
                     : 0.0;
    }

    StatGroup &stats() { return statGroup_; }

    /** Checkpoint tags, validity and recency (hit/miss counters ride
     *  the owner's StatGroup serdeTree pass). */
    void
    serdeState(Archive &ar)
    {
        ar.section("transCache");
        ar.expectCount(entries_.size(), "tag-cache entries");
        for (Entry &e : entries_) {
            ar.io(e.row);
            ar.io(e.valid);
            ar.io(e.stamp);
        }
        ar.io(stampCounter_);
        ar.end();
    }

  private:
    struct Entry
    {
        GlobalRowId row = ~0ULL;
        bool valid = false;
        std::uint64_t stamp = 0;
    };

    std::uint64_t setOf(GlobalRowId row) const;

    std::uint64_t capacity_;
    unsigned assoc_;
    std::uint64_t numSets_;
    std::vector<Entry> entries_;
    std::uint64_t stampCounter_ = 0;

    StatGroup statGroup_;
    Counter hits_, misses_;
};

} // namespace dasdram

#endif // DASDRAM_CORE_TRANSLATION_CACHE_HH
