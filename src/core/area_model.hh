/**
 * @file
 * Analytic silicon-area model for hybrid-bitline DRAM designs
 * (Sections 3.1, 4.3 and 7.6): the asymmetric-subarray overhead as a
 * function of the fast-level capacity ratio, and the TL-DRAM
 * comparison point.
 */

#ifndef DASDRAM_CORE_AREA_MODEL_HH
#define DASDRAM_CORE_AREA_MODEL_HH

namespace dasdram
{

/** Geometry constants of the area model. */
struct AreaModelParams
{
    /** Cells per slow (commodity) bitline. */
    double slowBitlineCells = 512;
    /** Cells per fast bitline (Section 4.3: 128). */
    double fastBitlineCells = 128;
    /**
     * Sense-amplifier stripe height in cell-row equivalents
     * (Section 3.1 quotes 108 rows).
     */
    double senseAmpRows = 108;
    /**
     * Extra rows per fast subarray for the migration-cell row plus
     * decoder/column-mux overhead of the additional subarrays.
     */
    double migrationRowOverhead = 2;
    /** TL-DRAM: isolation-transistor row equivalents (≈11.5 rows). */
    double isolationRows = 11.5;
    /** TL-DRAM: near-segment cell density relative to normal (1/2). */
    double nearSegmentDensity = 0.5;
};

/**
 * Area overhead of a DAS/CHARM-style asymmetric-subarray DRAM with
 * fast-level capacity fraction @p fast_fraction (e.g. 1/8), relative to
 * a homogeneous slow-subarray chip of equal capacity.
 * Section 4.3: ≈6.6 % at 1/8; Section 7.6: ≈11.3 % at 1/4.
 */
double asymmetricAreaOverhead(double fast_fraction,
                              const AreaModelParams &p = {});

/**
 * Area overhead of a hypothetical homogeneous fast-bitline chip
 * (FS-DRAM / RLDRAM-class), relative to the commodity chip.
 */
double fsDramAreaOverhead(const AreaModelParams &p = {});

/**
 * Area overhead of TL-DRAM with @p near_rows near-segment rows per
 * 512-cell subarray (Section 3.1: ≈24 % at 128 rows).
 */
double tlDramAreaOverhead(double near_rows, const AreaModelParams &p = {});

} // namespace dasdram

#endif // DASDRAM_CORE_AREA_MODEL_HH
