#include "area_model.hh"

#include "common/log.hh"

namespace dasdram
{

namespace
{

/** Area (in cell-row-height units) per row of capacity for a subarray
 *  of @p cells rows with @p extra peripheral rows. */
double
unitArea(double cells, double sense_amp_rows, double extra)
{
    return (cells + sense_amp_rows + extra) / cells;
}

} // namespace

double
asymmetricAreaOverhead(double fast_fraction, const AreaModelParams &p)
{
    if (fast_fraction < 0.0 || fast_fraction > 1.0)
        fatal("fast fraction must be within [0, 1]");
    // Baseline: homogeneous slow subarrays, no migration row.
    double base = unitArea(p.slowBitlineCells, p.senseAmpRows, 0.0);
    // DAS chip: every subarray carries a migration row; fast capacity
    // pays the sense-amp stripe over far fewer cells.
    double slow_unit = unitArea(p.slowBitlineCells, p.senseAmpRows,
                                p.migrationRowOverhead);
    double fast_unit = unitArea(p.fastBitlineCells, p.senseAmpRows,
                                p.migrationRowOverhead);
    double total = (1.0 - fast_fraction) * slow_unit +
                   fast_fraction * fast_unit;
    return total / base - 1.0;
}

double
fsDramAreaOverhead(const AreaModelParams &p)
{
    double base = unitArea(p.slowBitlineCells, p.senseAmpRows, 0.0);
    double fast = unitArea(p.fastBitlineCells, p.senseAmpRows, 0.0);
    return fast / base - 1.0;
}

double
tlDramAreaOverhead(double near_rows, const AreaModelParams &p)
{
    // Open-bitline constraint: the near segment sits on both edges of
    // the subarray at half cell density, so every near-segment row
    // wastes (1/density - 1) rows of silicon; the isolation transistors
    // add a fixed stripe (Section 3.1).
    double wasted = near_rows * (1.0 / p.nearSegmentDensity - 1.0) +
                    p.isolationRows;
    return wasted / (p.slowBitlineCells + p.senseAmpRows);
}

} // namespace dasdram
