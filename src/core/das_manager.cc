#include "das_manager.hh"

#include <algorithm>

#include "common/log.hh"

namespace dasdram
{

DasManager::DasManager(DramSystem &dram, CacheHierarchy *caches,
                       const AsymmetricLayout &layout,
                       const DasConfig &cfg)
    : dram_(&dram), caches_(caches), layout_(&layout), cfg_(cfg),
      statGroup_("dasManager")
{
    table_ = std::make_unique<TranslationTable>(layout);
    if (cfg.mode == ManagementMode::Dynamic && !cfg.exclusiveCache)
        incl_ = std::make_unique<InclusiveDirectory>(layout);
    if (cfg.mode == ManagementMode::Dynamic) {
        if (!caches_)
            fatal("dynamic DAS management requires a cache hierarchy "
                  "(table walks spill into the LLC)");
        tc_ = std::make_unique<TranslationCache>(
            cfg.translationCacheBytes, cfg.translationCacheAssoc);
        filter_ = std::make_unique<PromotionFilter>(cfg.promotion);
        repl_ = std::make_unique<FastSlotReplacement>(
            cfg.replacement, layout.fastSlotsPerGroup(),
            layout.totalGroups());
        statGroup_.addChild(&tc_->stats());
        statGroup_.addChild(&filter_->stats());
    }

    statGroup_.addCounter("demandAccesses", &demandAccesses_,
                          "memory accesses below the LLC");
    statGroup_.addCounter("rowBufferHits", &rowBufferHits_);
    statGroup_.addCounter("fastAccesses", &fastAccesses_,
                          "accesses activating a fast subarray");
    statGroup_.addCounter("slowAccesses", &slowAccesses_,
                          "accesses activating a slow subarray");
    statGroup_.addCounter("promotions", &promotions_, "row swaps started");
    statGroup_.addCounter("promotionsSkippedBusy", &promotionsSkippedBusy_,
                          "promotions dropped: group swap in flight");
    statGroup_.addCounter("tableWalksLlc", &tableWalksLlc_,
                          "translation misses served by the LLC");
    statGroup_.addCounter("tableWalksDram", &tableWalksDram_,
                          "translation misses served by DRAM");
    statGroup_.addCounter("writebacks", &writebacks_);
    statGroup_.addCounter("cleanPromotions", &cleanPromotions_,
                          "inclusive promotions with a clean victim");
    statGroup_.addCounter("dirtyPromotions", &dirtyPromotions_,
                          "inclusive promotions needing a write-back");
}

GlobalRowId
DasManager::physicalFor(GlobalRowId logical) const
{
    if (cfg_.mode == ManagementMode::None)
        return logical;
    if (cfg_.mode == ManagementMode::Dynamic && !cfg_.exclusiveCache) {
        // Inclusive: slow rows stay home; a valid copy redirects the
        // access to its fast slot.
        InclusiveDirectory::Copy c = incl_->find(logical);
        if (!c.valid)
            return logical;
        return layout_->globalGroupOf(logical) * layout_->groupSize() +
               c.fastSlot;
    }
    return table_->physicalOf(logical);
}

LocationStats
DasManager::locations() const
{
    LocationStats l;
    l.rowBuffer = rowBufferHits_.value();
    l.fastLevel = fastAccesses_.value();
    l.slowLevel = slowAccesses_.value();
    return l;
}

std::uint64_t
DasManager::footprintRows() const
{
    return touchedRows_.size();
}

void
DasManager::resetStats()
{
    demandAccesses_.reset();
    rowBufferHits_.reset();
    fastAccesses_.reset();
    slowAccesses_.reset();
    promotions_.reset();
    promotionsSkippedBusy_.reset();
    tableWalksLlc_.reset();
    tableWalksDram_.reset();
    writebacks_.reset();
    touchedRows_.clear();
}

void
DasManager::access(Addr addr, bool is_write, int core, Continuation cont,
                   Cycle now, std::unique_ptr<RequestSpan> span)
{
    DramLoc loc = dram_->decode(addr);
    PendingAccess acc;
    acc.addr = addr;
    acc.isWrite = is_write;
    acc.core = core;
    acc.logical = makeGlobalRowId(dram_->geometry(), loc.channel, loc.rank,
                                  loc.bank, loc.row);
    acc.readyTick = now;
    acc.cont = cont;
    acc.span = std::move(span);

    demandAccesses_.inc();
    if (is_write)
        writebacks_.inc();
    touchedRows_.insert(acc.logical);

    if (cfg_.mode != ManagementMode::Dynamic) {
        if (acc.span)
            acc.span->transDoneTick = now;
        trySubmit(std::move(acc), now);
        return;
    }

    // Dynamic: resolve the translation. The tag-cache lookup overlaps
    // the LLC access that produced this miss, so a hit costs nothing.
    if (tc_->lookup(acc.logical)) {
        if (acc.span) {
            acc.span->trans = TranslationPath::TagCache;
            acc.span->transDoneTick = now;
        }
        trySubmit(std::move(acc), now);
        return;
    }

    Addr tline = TranslationTable::entryAddr(cfg_.tableBase, acc.logical) &
                 ~(dram_->geometry().lineBytes - 1);
    if (caches_->llcSideAccess(tline)) {
        tableWalksLlc_.inc();
        // Cache the resolved entry whatever its level: the tag cache is
        // large enough here that restricting it to fast-level entries
        // (the paper's capacity optimisation) would only cause repeat
        // walks for bursts to newly touched rows.
        tc_->insert(acc.logical);
        acc.readyTick = now + cfg_.llcLatencyTicks;
        if (acc.span) {
            acc.span->trans = TranslationPath::LlcWalk;
            acc.span->transDoneTick = acc.readyTick;
        }
        trySubmit(std::move(acc), now);
        return;
    }

    if (acc.span)
        acc.span->trans = TranslationPath::DramWalk;

    // Full walk: fetch the table line from DRAM, then proceed. Walks
    // to the same table line coalesce on the in-flight fetch.
    if (auto it = walksInFlight_.find(tline); it != walksInFlight_.end()) {
        it->second.push_back(std::move(acc));
        return;
    }
    tableWalksDram_.inc();
    DramLoc tloc = dram_->decode(tline);
    if (!dram_->canAccept(tloc, /*is_write=*/false)) {
        // Channel full: retry the whole translation from tick(). The
        // walk latency of this rare case is under-charged; acceptable
        // (the span's transDoneTick is stamped now, matching the
        // timing model's undercharge).
        if (acc.span)
            acc.span->transDoneTick = now;
        pending_.push_back(std::move(acc));
        return;
    }
    walksInFlight_[tline].push_back(std::move(acc));
    auto req = std::make_unique<MemRequest>(tline, /*write=*/false, -1);
    req->isTableAccess = true;
    req->loc = tloc;
    if (tracer_) {
        // The walk is controller-visible traffic of its own: give it
        // its own sampling decision so rate-1.0 span streams cover
        // every request the latency histograms cover.
        req->span = tracer_->maybeStart();
        if (req->span) {
            RequestSpan &ts = *req->span;
            ts.isTableWalk = true;
            ts.core = -1;
            ts.addr = tline;
            ts.issueTick = now;
            ts.missTick = now;
            ts.transDoneTick = now;
            ts.submitTick = now;
        }
    }
    req->onComplete = [this](MemRequest &treq, Cycle at) {
        onWalkComplete(treq, at);
    };
    dram_->submit(std::move(req), now);
}

void
DasManager::onWalkComplete(MemRequest &treq, Cycle at)
{
    // Install the table line in the LLC for later walks and release
    // every access waiting on it. The table line is the request's own
    // address, so this path is fully reconstructible after a restore.
    caches_->fillLlcOnly(treq.addr, nullptr);
    auto node = walksInFlight_.extract(treq.addr);
    if (node.empty())
        panic("table walk completed with no waiting accesses");
    for (PendingAccess &waiting : node.mapped()) {
        tc_->insert(waiting.logical);
        waiting.readyTick = at;
        if (waiting.span)
            waiting.span->transDoneTick = at;
        pending_.push_back(std::move(waiting));
    }
}

void
DasManager::trySubmit(PendingAccess &&acc, Cycle now)
{
    if (acc.readyTick > now) {
        pending_.push_back(std::move(acc));
        return;
    }
    submitReady(std::move(acc), now);
}

void
DasManager::submitReady(PendingAccess &&acc, Cycle now)
{
    GlobalRowId physical = physicalFor(acc.logical);
    DramLoc loc = decodeGlobalRowId(dram_->geometry(), physical);
    loc.column = dram_->decode(acc.addr).column;

    if (!dram_->canAccept(loc, acc.isWrite)) {
        pending_.push_back(std::move(acc));
        return;
    }

    auto req = std::make_unique<MemRequest>(acc.addr, acc.isWrite,
                                            acc.core);
    req->loc = loc;
    req->logicalRow = acc.logical;
    req->span = std::move(acc.span);
    if (req->span)
        req->span->submitTick = now;
    req->cont = acc.cont;
    req->onComplete = [this](MemRequest &r, Cycle at) {
        onDataComplete(r, at);
    };
    dram_->submit(std::move(req), now);
}

void
DasManager::onDataComplete(MemRequest &req, Cycle at)
{
    switch (req.location) {
      case ServiceLocation::RowBuffer:
        rowBufferHits_.inc();
        break;
      case ServiceLocation::FastLevel:
        fastAccesses_.inc();
        break;
      case ServiceLocation::SlowLevel:
        slowAccesses_.inc();
        break;
      case ServiceLocation::Unknown:
        panic("request completed without service classification");
    }

    if (cfg_.mode == ManagementMode::Dynamic) {
        unsigned phys_slot = layout_->slotOf(req.loc.row);
        std::uint64_t group = layout_->globalGroupOf(req.logicalRow);
        tc_->insert(req.logicalRow);
        if (cfg_.exclusiveCache) {
            if (layout_->slotIsFast(phys_slot)) {
                repl_->onFastAccess(group, phys_slot);
            } else if (filter_->onSlowAccess(req.logicalRow)) {
                maybePromote(req.logicalRow, at);
            }
        } else {
            unsigned home_slot = static_cast<unsigned>(
                req.logicalRow % layout_->groupSize());
            if (layout_->slotIsFast(home_slot)) {
                // Natively fast row: nothing to manage.
            } else if (InclusiveDirectory::Copy c =
                           incl_->find(req.logicalRow);
                       c.valid) {
                repl_->onFastAccess(group, c.fastSlot);
                if (req.isWrite)
                    incl_->markDirty(req.logicalRow);
            } else if (filter_->onSlowAccess(req.logicalRow)) {
                maybePromoteInclusive(req.logicalRow, at);
            }
        }
    }

    if (completionHook_)
        completionHook_(req.cont, at);
}

void
DasManager::maybePromote(GlobalRowId logical, Cycle now)
{
    std::uint64_t group = layout_->globalGroupOf(logical);
    if (swapsInFlight_.count(group)) {
        promotionsSkippedBusy_.inc();
        return;
    }
    if (table_->isFast(logical))
        return; // raced with an earlier promotion

    unsigned victim_slot = repl_->chooseVictim(group);
    GlobalRowId victim = table_->logicalInFastSlot(group, victim_slot);
    if (victim == logical)
        return;

    GlobalRowId phys_promotee = table_->physicalOf(logical);
    GlobalRowId phys_victim =
        group * layout_->groupSize() + victim_slot;

    // Update the mapping at swap start: later requests target the new
    // locations and are naturally held back by the bank reservation.
    table_->swap(logical, victim);
    tc_->insert(logical);
    tc_->invalidate(victim);
    filter_->clear(logical);
    repl_->onFastAccess(group, victim_slot);
    promotions_.inc();
    if (events_) {
        TraceInstant ev;
        ev.name = "promote";
        ev.tick = now;
        ev.row = logical;
        ev.victim = victim;
        ev.group = group;
        ev.cause = "threshold";
        events_->onInstant(ev);
    }

    if (cfg_.zeroMigrationLatency)
        return; // DAS-DRAM (FM): free swaps

    swapsInFlight_.insert(group);
    DramLoc a = decodeGlobalRowId(dram_->geometry(), phys_promotee);
    DramLoc b = decodeGlobalRowId(dram_->geometry(), phys_victim);
    if (!a.sameBank(b))
        panic("swap rows not in the same bank");
    // The swap occupies the migration group's subarrays only; the rest
    // of the bank keeps serving requests.
    std::uint64_t row_lo =
        layout_->groupBaseRow(layout_->groupOf(a.row));
    dram_->startMigration(a.channel, a.rank, a.bank, a.row, b.row,
                          /*full_swap=*/true, row_lo,
                          row_lo + layout_->groupSize(),
                          [this, group](Cycle) {
                              swapsInFlight_.erase(group);
                          },
                          group);
}

void
DasManager::maybePromoteInclusive(GlobalRowId logical, Cycle now)
{
    std::uint64_t group = layout_->globalGroupOf(logical);
    if (swapsInFlight_.count(group)) {
        promotionsSkippedBusy_.inc();
        return;
    }
    if (incl_->find(logical).valid)
        return; // raced with an earlier promotion

    unsigned victim_slot = repl_->chooseVictim(group);
    GlobalRowId victim = incl_->occupant(group, victim_slot);
    bool dirty_victim = incl_->dirty(group, victim_slot);
    GlobalRowId phys_home = logical;
    GlobalRowId phys_fast =
        group * layout_->groupSize() + victim_slot;

    if (victim != kAddrInvalid) {
        tc_->invalidate(victim);
        incl_->evict(group, victim_slot);
    }
    incl_->install(logical, victim_slot);
    tc_->insert(logical);
    filter_->clear(logical);
    repl_->onFastAccess(group, victim_slot);
    promotions_.inc();
    (dirty_victim ? dirtyPromotions_ : cleanPromotions_).inc();
    if (events_) {
        TraceInstant ev;
        ev.name = "promote";
        ev.tick = now;
        ev.row = logical;
        ev.victim = victim;
        ev.group = group;
        ev.cause = dirty_victim ? "inclusive-dirty" : "inclusive-clean";
        events_->onInstant(ev);
    }

    if (cfg_.zeroMigrationLatency)
        return;

    swapsInFlight_.insert(group);
    DramLoc a = decodeGlobalRowId(dram_->geometry(), phys_home);
    DramLoc b = decodeGlobalRowId(dram_->geometry(), phys_fast);
    std::uint64_t row_lo = layout_->groupBaseRow(layout_->groupOf(a.row));
    // Clean victim: a single 1.5 tRC migration copies the promotee in.
    // Dirty victim: write the victim back first — cost of a full swap.
    dram_->startMigration(a.channel, a.rank, a.bank, a.row, b.row,
                          /*full_swap=*/dirty_victim, row_lo,
                          row_lo + layout_->groupSize(),
                          [this, group](Cycle) {
                              swapsInFlight_.erase(group);
                          },
                          group);
}

void
DasManager::tick(Cycle now)
{
    if (pending_.empty())
        return;
    std::deque<PendingAccess> retry;
    std::swap(retry, pending_);
    for (PendingAccess &acc : retry) {
        if (acc.readyTick > now)
            pending_.push_back(std::move(acc));
        else
            submitReady(std::move(acc), now);
    }
}

Cycle
DasManager::nextWakeTick(Cycle now) const
{
    if (pending_.empty())
        return kCycleMax;
    Cycle next = kCycleMax;
    for (const PendingAccess &acc : pending_)
        next = std::min(next, std::max(acc.readyTick, now + 1));
    return next;
}

void
DasManager::serdeState(Archive &ar)
{
    ar.section("dasManager");
    table_->serdeState(ar);
    bool has_incl = incl_ != nullptr;
    ar.io(has_incl);
    if (has_incl != (incl_ != nullptr))
        fatal("checkpoint: inclusive-directory presence mismatch "
              "(mode/exclusivity changed?)");
    if (incl_)
        incl_->serdeState(ar);
    bool dynamic = tc_ != nullptr;
    ar.io(dynamic);
    if (dynamic != (tc_ != nullptr))
        fatal("checkpoint: management-mode mismatch");
    if (tc_) {
        tc_->serdeState(ar);
        filter_->serdeState(ar);
        repl_->serdeState(ar);
    }

    // Retry queue, in original order.
    std::uint64_t n = pending_.size();
    ar.io(n);
    if (ar.loading())
        pending_.resize(static_cast<std::size_t>(n));
    for (PendingAccess &acc : pending_)
        acc.serdeState(ar);

    // In-flight walks: iterate table lines in sorted order so the
    // byte stream does not depend on hash-table layout. Waiter order
    // within a line is the coalescing order and is preserved.
    std::uint64_t walks = walksInFlight_.size();
    ar.io(walks);
    if (ar.saving()) {
        std::vector<Addr> lines;
        lines.reserve(walksInFlight_.size());
        for (const auto &kv : walksInFlight_)
            lines.push_back(kv.first);
        std::sort(lines.begin(), lines.end());
        for (Addr line : lines) {
            Addr key = line;
            ar.io(key);
            auto &waiters = walksInFlight_[line];
            std::uint64_t w = waiters.size();
            ar.io(w);
            for (PendingAccess &acc : waiters)
                acc.serdeState(ar);
        }
    } else {
        walksInFlight_.clear();
        for (std::uint64_t i = 0; i < walks; ++i) {
            Addr key = 0;
            ar.io(key);
            std::uint64_t w = 0;
            ar.io(w);
            auto &waiters = walksInFlight_[key];
            waiters.resize(static_cast<std::size_t>(w));
            for (PendingAccess &acc : waiters)
                acc.serdeState(ar);
        }
    }

    auto serde_u64_set = [&ar](auto &set) {
        std::uint64_t count = set.size();
        ar.io(count);
        if (ar.saving()) {
            std::vector<std::uint64_t> sorted(set.begin(), set.end());
            std::sort(sorted.begin(), sorted.end());
            for (std::uint64_t v : sorted)
                ar.io(v);
        } else {
            set.clear();
            set.reserve(static_cast<std::size_t>(count));
            for (std::uint64_t i = 0; i < count; ++i) {
                std::uint64_t v = 0;
                ar.io(v);
                set.insert(v);
            }
        }
    };
    serde_u64_set(swapsInFlight_);
    serde_u64_set(touchedRows_);
    ar.end();
}

void
DasManager::rebindInFlight()
{
    dram_->rebindRequests(
        [this](const MemRequest &req) -> MemRequest::Callback {
            if (req.isTableAccess)
                return [this](MemRequest &r, Cycle at) {
                    onWalkComplete(r, at);
                };
            return [this](MemRequest &r, Cycle at) {
                onDataComplete(r, at);
            };
        });
    dram_->rebindMigrations(
        [this](const MigrationJob &job) -> std::function<void(Cycle)> {
            if (job.group == MigrationJob::kNoGroup)
                return nullptr;
            const std::uint64_t group = job.group;
            return [this, group](Cycle) { swapsInFlight_.erase(group); };
        });
}

} // namespace dasdram
