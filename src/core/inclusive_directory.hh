/**
 * @file
 * Fast-level directory for the INCLUSIVE-cache management alternative
 * (Section 5): fast slots hold *copies* of slow rows, the originals
 * keep their data, and only the fast level's contents are dynamic.
 *
 * The paper adopts the exclusive scheme (no capacity loss) but
 * discusses this variant's trade-offs: a smaller translation table and
 * faster replacement when the victim is clean (one migration instead
 * of a swap), at the cost of 1/8 of capacity. This class plus
 * DasManager's inclusive mode make that trade-off measurable.
 */

#ifndef DASDRAM_CORE_INCLUSIVE_DIRECTORY_HH
#define DASDRAM_CORE_INCLUSIVE_DIRECTORY_HH

#include <cstdint>
#include <vector>

#include "common/serde.hh"
#include "core/subarray_layout.hh"
#include "dram/geometry.hh"

namespace dasdram
{

/**
 * Tracks, for every migration group, which logical (slow-slot) row is
 * currently copied into each fast slot, and whether the copy is dirty.
 */
class InclusiveDirectory
{
  public:
    explicit InclusiveDirectory(const AsymmetricLayout &layout);

    /** Lookup result for a logical row. */
    struct Copy
    {
        bool valid = false;
        unsigned fastSlot = 0;
        bool dirty = false;
    };

    /** Where (if anywhere) @p logical is cached in its group. */
    Copy find(GlobalRowId logical) const;

    /**
     * Contents of fast slot @p slot of @p group.
     * @return the cached logical row, or kAddrInvalid when empty.
     */
    GlobalRowId occupant(std::uint64_t group, unsigned slot) const;

    /** True iff fast slot @p slot of @p group holds a dirty copy. */
    bool dirty(std::uint64_t group, unsigned slot) const;

    /**
     * Install a copy of @p logical into fast slot @p slot of its
     * group, replacing any previous occupant.
     */
    void install(GlobalRowId logical, unsigned slot);

    /** Mark the copy of @p logical dirty. @pre find(logical).valid. */
    void markDirty(GlobalRowId logical);

    /** Drop the copy in @p slot of @p group (after write-back). */
    void evict(std::uint64_t group, unsigned slot);

    /** Number of valid copies currently held. */
    std::uint64_t validCopies() const { return valid_; }

    /** Checkpoint every slot's occupant/dirty state. */
    void
    serdeState(Archive &ar)
    {
        ar.section("inclDir");
        ar.expectCount(entries_.size(), "directory entries");
        for (Entry &e : entries_) {
            ar.io(e.logicalSlot);
            ar.io(e.valid);
            ar.io(e.dirty);
        }
        ar.io(valid_);
        ar.end();
    }

  private:
    struct Entry
    {
        std::uint8_t logicalSlot = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::size_t index(std::uint64_t group, unsigned slot) const;

    const AsymmetricLayout *layout_;
    unsigned slots_;
    std::vector<Entry> entries_; ///< [group * slots + slot]
    std::uint64_t valid_ = 0;
};

} // namespace dasdram

#endif // DASDRAM_CORE_INCLUSIVE_DIRECTORY_HH
