#include "migration.hh"

#include "common/bitutil.hh"

namespace dasdram
{

MigrationProcedure::MigrationProcedure(const DramTiming &timing)
    : timing_(&timing)
{
}

std::vector<MigrationStep>
MigrationProcedure::steps() const
{
    const ArrayTiming &slow = timing_->slow;
    // A tightened restore saves one quarter of tRC on each of the two
    // activate-restore-precharge passes: the migration row's contents
    // are consumed immediately, so it does not need retention-grade
    // voltage (Section 4.2).
    Cycle pass = divCeil(3 * slow.tRC, 4); // 0.75 tRC per pass
    Cycle sense = slow.tRCD;
    return {
        {"activate source row, sense into half row buffer", sense},
        {"restore into migration row, precharge", pass - sense},
        {"activate migration row into the other half buffer", sense},
        {"restore into destination row, precharge", pass - sense},
    };
}

Cycle
MigrationProcedure::migrationCycles() const
{
    Cycle total = 0;
    for (const MigrationStep &s : steps())
        total += s.cycles;
    return total;
}

Cycle
MigrationProcedure::swapCycles() const
{
    // Figure 6: steps 1 and 2 move promotee and victim into migration
    // rows; steps 3 and 4 run the two restore directions in parallel.
    // The critical path is two full migrations.
    return 2 * migrationCycles();
}

double
MigrationProcedure::swapNanoseconds() const
{
    return static_cast<double>(swapCycles()) * 1.25;
}

} // namespace dasdram
