/**
 * @file
 * Asymmetric subarray layout: which physical rows are fast, and the
 * migration-group geometry that bounds where a row may migrate.
 *
 * Following Section 4.3, fast subarrays are placed in a reduced
 * interleaving arrangement so every migration group contains both fast
 * and slow rows of the same bank, giving short migration paths. We
 * model this as: each bank's rows are divided into migration groups of
 * @c groupSize consecutive rows; the first @c fastSlotsPerGroup
 * physical slots of each group live in fast subarrays.
 */

#ifndef DASDRAM_CORE_SUBARRAY_LAYOUT_HH
#define DASDRAM_CORE_SUBARRAY_LAYOUT_HH

#include <cstdint>

#include "dram/geometry.hh"
#include "dram/row_class.hh"

namespace dasdram
{

/** Subarray arrangement options (Figure 5). */
enum class Arrangement
{
    Partitioning,        ///< all fast subarrays at one end of the bank
    Interleaving,        ///< strict 1:1 alternation (ratio locked)
    ReducedInterleaving, ///< 1:2 fast:slow pattern (paper's choice)
};

/** Layout parameters. */
struct LayoutConfig
{
    /** Fast-level capacity as a fraction denominator: 1/N. Table 1: 8. */
    unsigned fastRatioDenom = 8;
    /** Migration group size in rows. Table 1: 32. */
    unsigned groupSize = 32;
    Arrangement arrangement = Arrangement::ReducedInterleaving;
};

/**
 * The physical fast/slow row map for an entire DRAM system, and the
 * group arithmetic shared by the translation machinery.
 */
class AsymmetricLayout : public RowClassifier
{
  public:
    AsymmetricLayout(const DramGeometry &geom, const LayoutConfig &cfg);

    RowClass classify(unsigned channel, unsigned rank, unsigned bank,
                      std::uint64_t row) const override;

    /** Physical slot index of @p row within its group. */
    unsigned
    slotOf(std::uint64_t row) const
    {
        return static_cast<unsigned>(row % cfg_.groupSize);
    }

    /** True iff physical slot @p slot of a group is a fast slot. */
    bool
    slotIsFast(unsigned slot) const
    {
        return slot < fastSlotsPerGroup_;
    }

    /** Bank-local group index of @p row. */
    std::uint64_t
    groupOf(std::uint64_t row) const
    {
        return row / cfg_.groupSize;
    }

    /** First row of bank-local group @p group. */
    std::uint64_t
    groupBaseRow(std::uint64_t group) const
    {
        return group * cfg_.groupSize;
    }

    unsigned groupSize() const { return cfg_.groupSize; }
    unsigned fastSlotsPerGroup() const { return fastSlotsPerGroup_; }
    std::uint64_t groupsPerBank() const { return groupsPerBank_; }

    /** Groups across the whole system. */
    std::uint64_t
    totalGroups() const
    {
        return groupsPerBank_ * geom_.totalBanks();
    }

    /** System-wide group id of the group containing @p row_id. */
    std::uint64_t
    globalGroupOf(GlobalRowId row_id) const
    {
        return row_id / cfg_.groupSize;
    }

    /** Fast capacity fraction actually realised (== 1/denominator). */
    double
    fastCapacityFraction() const
    {
        return static_cast<double>(fastSlotsPerGroup_) /
               static_cast<double>(cfg_.groupSize);
    }

    const DramGeometry &geometry() const { return geom_; }
    const LayoutConfig &config() const { return cfg_; }

  private:
    DramGeometry geom_;
    LayoutConfig cfg_;
    unsigned fastSlotsPerGroup_;
    std::uint64_t groupsPerBank_;
};

} // namespace dasdram

#endif // DASDRAM_CORE_SUBARRAY_LAYOUT_HH
