#include "translation_cache.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace dasdram
{

TranslationCache::TranslationCache(std::uint64_t capacity_bytes,
                                   unsigned assoc)
    : capacity_(capacity_bytes), assoc_(assoc),
      statGroup_("translationCache")
{
    if (assoc_ == 0 || capacity_ % assoc_ != 0)
        fatal("translation cache capacity must be a multiple of assoc");
    numSets_ = capacity_ / assoc_;
    if (!isPowerOfTwo(numSets_))
        fatal("translation cache set count must be a power of two");
    entries_.resize(capacity_);

    statGroup_.addCounter("hits", &hits_);
    statGroup_.addCounter("misses", &misses_);
    statGroup_.addFormula(
        "hitRatio", [this] { return hitRatio(); },
        "fraction of lookups hitting the tag cache");
}

std::uint64_t
TranslationCache::setOf(GlobalRowId row) const
{
    // Mix the bits a little so bank-interleaved rows spread over sets.
    std::uint64_t h = row * 0x9e3779b97f4a7c15ULL;
    return (h >> 16) & (numSets_ - 1);
}

bool
TranslationCache::lookup(GlobalRowId row)
{
    Entry *base = &entries_[setOf(row) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].row == row) {
            base[w].stamp = ++stampCounter_;
            hits_.inc();
            return true;
        }
    }
    misses_.inc();
    return false;
}

bool
TranslationCache::probe(GlobalRowId row) const
{
    const Entry *base = &entries_[setOf(row) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].row == row)
            return true;
    }
    return false;
}

void
TranslationCache::insert(GlobalRowId row)
{
    Entry *base = &entries_[setOf(row) * assoc_];
    Entry *victim = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].row == row) {
            base[w].stamp = ++stampCounter_;
            return;
        }
        if (!victim && !base[w].valid)
            victim = &base[w];
    }
    if (!victim) {
        victim = base;
        for (unsigned w = 1; w < assoc_; ++w) {
            if (base[w].stamp < victim->stamp)
                victim = &base[w];
        }
    }
    victim->row = row;
    victim->valid = true;
    victim->stamp = ++stampCounter_;
}

void
TranslationCache::invalidate(GlobalRowId row)
{
    Entry *base = &entries_[setOf(row) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        if (base[w].valid && base[w].row == row) {
            base[w].valid = false;
            return;
        }
    }
}

} // namespace dasdram
