/**
 * @file
 * Top-level simulation configuration, defaulting to the paper's
 * Table 1 system: 3 GHz 4-wide cores with 192-entry ROBs; 64 KB L1 /
 * 256 KB L2 private, 4 MB shared LLC; FR-FCFS open-page controllers
 * with 32-entry queues; two 4 GB DDR3-1600 DIMMs over 2 channels ×
 * 2 ranks; DAS layout 1/8 fast with 32-row migration groups and a
 * 128 KB translation cache.
 */

#ifndef DASDRAM_SIM_SIM_CONFIG_HH
#define DASDRAM_SIM_SIM_CONFIG_HH

#include <cstdint>
#include <string>

#include "cache/hierarchy.hh"
#include "core/das_manager.hh"
#include "core/designs.hh"
#include "core/subarray_layout.hh"
#include "cpu/core.hh"
#include "dram/controller.hh"
#include "dram/geometry.hh"
#include "sim/engine.hh"

namespace dasdram
{

/**
 * Observability knobs: latency/occupancy histograms, the epoch
 * time-series, and the two export files. Everything is per-System
 * (sweep-safe); empty paths and epochMemCycles == 0 disable the
 * corresponding feature at zero cost on the sample path.
 */
struct ObservabilityConfig
{
    /** Sample latency/queue histograms and per-bank breakdowns. */
    bool histograms = true;

    /** Epoch length of the stats time-series in memory-controller
     *  cycles (1.25 ns each); 0 disables the series. */
    Cycle epochMemCycles = 0;

    /** Stats-JSONL output path (see common/stats_jsonl.hh); written at
     *  end of run. Empty = off. */
    std::string statsOut;

    /**
     * Sweep mode: when non-empty, SweepRunner derives a unique
     * per-point statsOut under this (existing) directory —
     * point<idx>_<workload>_<design>[_<label>].jsonl, plus
     * baseline_<workload>.jsonl for memoised standard baselines.
     * Ignored by a System run directly.
     */
    std::string statsDir;

    /** Chrome trace_event JSON output path (dram/trace_json.hh);
     *  streamed during the run. Empty = off. */
    std::string traceOut;

    /**
     * Request-lifecycle tracing sample rate in [0, 1]: the fraction
     * of memory requests that carry a span record through the
     * controller (mem/request_trace.hh). 0 (default) disables the
     * tracer entirely — no sampler, no per-request pointer checks
     * beyond a null test. Sampling is deterministic in (seed, rate),
     * independent of engine and channel threading.
     */
    double traceRequests = 0.0;

    /** Span-JSONL output path (schema dasdram-spans); streamed during
     *  the run. Empty = off. Requires traceRequests > 0 to emit. */
    std::string spansOut;

    /** Run identity stamped into the stats meta record. */
    std::string workloadName;
    std::string label;
};

/** Everything needed to build one System. */
struct SimConfig
{
    /**
     * Workload spec string (workload/workload_spec.hh grammar). The
     * experiment layer and the System(const SimConfig &) constructor
     * parse it and derive numCores from the part count; callers that
     * pass explicit traces may leave it untouched.
     */
    std::string workload = "mcf";

    unsigned numCores = 1;
    CoreConfig core{};
    HierarchyConfig caches{};
    DramGeometry geom{};
    ControllerConfig ctrl{};
    LayoutConfig layout{};
    DasConfig das{};
    DesignKind design = DesignKind::Das;

    /**
     * Main-loop engine. The event engine is the default: it is proven
     * bit-identical to the tick engine by the differential suite, and
     * the tick engine stays available (--engine=tick) as the reference
     * oracle for that proof.
     */
    SimEngine engine = SimEngine::Event;

    /** Per-core instruction target (warm-up included). */
    InstCount instructionsPerCore = 10'000'000;

    /** Leading fraction of instructions excluded from statistics. */
    double warmupFraction = 0.2;

    /**
     * Profiling window of the static baselines as a multiple of the
     * measured run: lifetime profiling spans more program phases than
     * any one measured episode (Section 7.1's static-vs-dynamic gap).
     */
    double profileWindowMultiplier = 8.0;

    /** Base of core @p i's address region. */
    Addr coreStride = 1 * GiB;

    /** Deterministic seed for workload generation etc. */
    std::uint64_t seed = 42;

    /**
     * Run the online DRAM protocol checker on every issued command and
     * panic at end-of-run on violations. On by default so every sim
     * test doubles as a protocol test; turn off to shave the (small)
     * per-command overhead of long sweeps.
     */
    bool protocolCheck = true;

    /** MSHR entries (outstanding line fills) per core. */
    unsigned mshrsPerCore = 32;

    /**
     * Threads used by DramSystem::tick to advance channels (clamped to
     * the channel count; 1 = fully serial). Any value produces
     * bit-identical results — see DramSystem::setChannelThreads.
     */
    unsigned channelThreads = 1;

    /** Histograms, epoch series and export files. */
    ObservabilityConfig obs{};

    Addr
    coreBase(unsigned core_id) const
    {
        return static_cast<Addr>(core_id) * coreStride;
    }

    InstCount
    warmupInstructions() const
    {
        return static_cast<InstCount>(
            warmupFraction * static_cast<double>(instructionsPerCore));
    }
};

/**
 * Apply the environment scale factor DAS_SIM_SCALE (a positive double)
 * to @p cfg's instruction target; used by tests and benches to trade
 * fidelity for speed. Returns the factor applied.
 */
double applySimScale(SimConfig &cfg);

/** Serialise @p cfg to compact JSON (configFromJson reads it back). */
std::string configToJson(const SimConfig &cfg);

/**
 * Parse a configuration from JSON text produced by configToJson (or
 * hand-written with the same keys). Keys are optional — missing ones
 * keep the default in @p base — but unknown keys are fatal, so typos
 * never silently run the default. Returns the merged configuration.
 */
SimConfig configFromJson(const std::string &text, SimConfig base = {});

/**
 * Deterministic fingerprint of every configuration field that shapes
 * simulated state. Excluded: the export destinations (statsOut,
 * statsDir, traceOut, spansOut), the run-identity strings
 * (workloadName, label), the engine and channelThreads — all proven
 * not to affect state, so a checkpoint can be restored under a
 * different engine, thread count or output set. Everything else
 * participates, including observability knobs that change the
 * serialised shape (histograms, epochMemCycles, traceRequests).
 * Stamped into checkpoints and enforced at load.
 */
std::uint64_t configFingerprint(const SimConfig &cfg);

} // namespace dasdram

#endif // DASDRAM_SIM_SIM_CONFIG_HH
