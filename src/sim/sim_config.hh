/**
 * @file
 * Top-level simulation configuration, defaulting to the paper's
 * Table 1 system: 3 GHz 4-wide cores with 192-entry ROBs; 64 KB L1 /
 * 256 KB L2 private, 4 MB shared LLC; FR-FCFS open-page controllers
 * with 32-entry queues; two 4 GB DDR3-1600 DIMMs over 2 channels ×
 * 2 ranks; DAS layout 1/8 fast with 32-row migration groups and a
 * 128 KB translation cache.
 */

#ifndef DASDRAM_SIM_SIM_CONFIG_HH
#define DASDRAM_SIM_SIM_CONFIG_HH

#include "cache/hierarchy.hh"
#include "core/das_manager.hh"
#include "core/designs.hh"
#include "core/subarray_layout.hh"
#include "cpu/core.hh"
#include "dram/controller.hh"
#include "dram/geometry.hh"

namespace dasdram
{

/** Everything needed to build one System. */
struct SimConfig
{
    unsigned numCores = 1;
    CoreConfig core{};
    HierarchyConfig caches{};
    DramGeometry geom{};
    ControllerConfig ctrl{};
    LayoutConfig layout{};
    DasConfig das{};
    DesignKind design = DesignKind::Das;

    /** Per-core instruction target (warm-up included). */
    InstCount instructionsPerCore = 10'000'000;

    /** Leading fraction of instructions excluded from statistics. */
    double warmupFraction = 0.2;

    /**
     * Profiling window of the static baselines as a multiple of the
     * measured run: lifetime profiling spans more program phases than
     * any one measured episode (Section 7.1's static-vs-dynamic gap).
     */
    double profileWindowMultiplier = 8.0;

    /** Base of core @p i's address region. */
    Addr coreStride = 1 * GiB;

    /** Deterministic seed for workload generation etc. */
    std::uint64_t seed = 42;

    /**
     * Run the online DRAM protocol checker on every issued command and
     * panic at end-of-run on violations. On by default so every sim
     * test doubles as a protocol test; turn off to shave the (small)
     * per-command overhead of long sweeps.
     */
    bool protocolCheck = true;

    /** MSHR entries (outstanding line fills) per core. */
    unsigned mshrsPerCore = 32;

    Addr
    coreBase(unsigned core_id) const
    {
        return static_cast<Addr>(core_id) * coreStride;
    }

    InstCount
    warmupInstructions() const
    {
        return static_cast<InstCount>(
            warmupFraction * static_cast<double>(instructionsPerCore));
    }
};

/**
 * Apply the environment scale factor DAS_SIM_SCALE (a positive double)
 * to @p cfg's instruction target; used by tests and benches to trade
 * fidelity for speed. Returns the factor applied.
 */
double applySimScale(SimConfig &cfg);

} // namespace dasdram

#endif // DASDRAM_SIM_SIM_CONFIG_HH
