/**
 * @file
 * Deterministic protocol-fuzz harness: drives randomized synthetic
 * request/migration traffic through a DramSystem with the online
 * ProtocolChecker attached, across all designs and controller-config
 * corners. Every case derives its RNG stream from
 * SweepRunner::pointSeed(base seed, case name, design), so any failure
 * replays from one line:
 *
 *   dasdram_fuzz --seed <base> --requests <n> --filter <case name>
 */

#ifndef DASDRAM_SIM_FUZZ_HH
#define DASDRAM_SIM_FUZZ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/designs.hh"
#include "core/subarray_layout.hh"
#include "dram/cmd_trace.hh"
#include "dram/controller.hh"
#include "dram/geometry.hh"
#include "dram/timing.hh"
#include "sim/engine.hh"

namespace dasdram
{

/** One fuzz scenario: a design, a controller corner and traffic knobs. */
struct FuzzCase
{
    std::string name;                     ///< "<design>/<corner>"
    DesignKind design = DesignKind::Das;
    ControllerConfig ctrl{};
    DramGeometry geom{};
    LayoutConfig layout{};
    MappingScheme mapping = MappingScheme::RoRaBaChCo;

    unsigned requests = 2000;   ///< demand requests to complete
    double writeFraction = 0.3;

    /**
     * Optional workload spec (workload/workload_spec.hh grammar).
     * When non-empty, request addresses and read/write kinds come from
     * the workload's trace stream (round-robin over its parts, mapped
     * into this case's geometry) instead of the synthetic row picker —
     * fuzzing the protocol under realistic access patterns, including
     * external `file:` traces. The RNG still paces bursts and
     * migrations, so tick/event determinism is unchanged.
     */
    std::string workload;
    /** Per-memory-cycle chance to enqueue a migration/swap job. */
    double migrationChance = 0.0;
    /** Rows per bank the traffic concentrates on (plus a slice at the
     *  top of the bank to hit address-space edges). */
    unsigned rowSpread = 96;
    std::uint64_t seed = 1;     ///< effective per-case seed

    /**
     * Harness engine. Tick walks every memory cycle; Event skips the
     * DramSystem::tick calls of cycles below the controller horizon
     * while drawing the injection RNG for every cycle, so the request
     * and migration streams — and therefore the command stream — are
     * identical to the tick engine's. The harness defaults to tick
     * (it is the oracle side of the differential mode).
     */
    SimEngine engine = SimEngine::Tick;

    /**
     * DramSystem channel-threading width (clamped to the channel
     * count). Results are bit-identical for every value by
     * construction; the differential mode crosses engines against
     * thread counts to enforce exactly that.
     */
    unsigned channelThreads = 1;

    /**
     * When > 0: at this memory cycle the run serializes the DRAM
     * system and the protocol checker through the snapshot codec,
     * destroys them, rebuilds fresh instances, restores and rebinds
     * the in-flight callbacks — then continues. A checkpoint round
     * trip must be invisible: the report and the complete command
     * trace must match a straight run byte for byte, which is exactly
     * what the differential mode's checkpoint crossing enforces.
     */
    Cycle checkpointAtCycle = 0;

    /**
     * Request-span sampling rate in [0, 1] (mem/request_trace.hh).
     * When > 0 every created request draws a deterministic sampling
     * decision and sampled ones carry a span through the controller;
     * the run reports the emitted span count. Tracing is
     * observation-only, so reports and command traces must be
     * bit-identical for every rate — the differential oracle crosses
     * sampling on/off to enforce exactly that.
     */
    double traceRequests = 0.0;
};

/** Outcome of one fuzz case. */
struct FuzzReport
{
    std::string name;
    std::uint64_t seed = 0;
    std::uint64_t commands = 0;
    std::uint64_t violations = 0;
    std::string firstViolation; ///< "" when clean
    unsigned submitted = 0;
    unsigned completed = 0;
    std::uint64_t migrationsStarted = 0;
    std::uint64_t migrationsDone = 0;
    /** Completed spans observed (traceRequests > 0 only). Excluded
     *  from the differential report diff — the sampled-vs-unsampled
     *  crossing intentionally differs here and only here. */
    std::uint64_t spansEmitted = 0;
    bool drained = false; ///< all traffic completed within the budget

    bool ok() const { return violations == 0 && drained; }
};

/**
 * Run @p c with the reference DDR3-1600 timing on both the controller
 * under test and the checker (the clean configuration: any violation
 * is a controller bug).
 */
FuzzReport runProtocolFuzz(const FuzzCase &c);

/**
 * Run @p c with a split timing: the controller runs @p dut while the
 * checker validates against @p reference. Passing a @p dut with a
 * shortened parameter is how tests prove the harness detects injected
 * timing bugs. @p extra_sink (optional) additionally observes every
 * command (e.g. a CommandTrace).
 */
FuzzReport runProtocolFuzz(const FuzzCase &c, const DramTiming &dut,
                           const DramTiming &reference,
                           CommandSink *extra_sink = nullptr);

/** Outcome of running one fuzz case through both engines. */
struct FuzzDifferential
{
    FuzzReport tick;  ///< reference (per-cycle) run
    FuzzReport event; ///< horizon-skipping run
    bool identical = false;
    /** First difference, "" when identical: a mismatched report field
     *  or the first diverging command-trace line. */
    std::string detail;

    bool ok() const { return identical && tick.ok() && event.ok(); }
};

/**
 * Differential oracle: run @p c once per engine (same seed, same
 * timing on controller and checker) and compare the reports and the
 * complete command traces line by line. Any divergence — a command
 * issued at a different cycle, a different completion count, a
 * protocol violation in either run — is reported in `detail`.
 */
FuzzDifferential runFuzzDifferential(const FuzzCase &c);

/**
 * Extended differential oracle crossing engines against channel-thread
 * counts — and, when c.traceRequests > 0, span sampling off/on, and,
 * when c.checkpointAtCycle > 0, a mid-run snapshot round trip
 * off/on: every (engine, threads, rate, checkpoint) combination from
 * {tick, event} × @p thread_counts × {0, c.traceRequests} ×
 * {straight, checkpointed} runs with the same seed and is compared —
 * reports and full command traces — against the straight tick run at
 * the first thread count with sampling off, proving request tracing
 * and checkpoint/restore are both observation-equivalent. Sampled
 * runs must additionally agree on the emitted span count. `detail`
 * names the first diverging combination. The returned `tick`/`event`
 * reports are the two straight unsampled runs at the first thread
 * count.
 */
FuzzDifferential
runFuzzDifferential(const FuzzCase &c,
                    const std::vector<unsigned> &thread_counts);

/**
 * The standard fuzz grid: designs (standard/sas/charm/das/das-fm/fs) ×
 * controller corners (default, FCFS, closed-page, tiny queues, refresh
 * off, zero migration deferral), with per-case seeds derived from
 * @p base_seed via SweepRunner::pointSeed.
 */
std::vector<FuzzCase> defaultFuzzCases(std::uint64_t base_seed,
                                       unsigned requests);

} // namespace dasdram

#endif // DASDRAM_SIM_FUZZ_HH
