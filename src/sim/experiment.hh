/**
 * @file
 * Experiment driver: builds workloads (single benchmarks or Table 2
 * mixes), runs them on a DRAM design — including the profiling pass the
 * static baselines need — and reports paper-style metrics relative to
 * the standard-DRAM baseline.
 *
 * ExperimentRunner is safe for concurrent run()/runRaw() calls from
 * multiple threads: the standard-DRAM baseline of each workload is
 * computed exactly once behind a mutex-guarded memo and shared. See
 * SweepRunner (sim/sweep.hh) for the parallel grid driver built on
 * top of this.
 */

#ifndef DASDRAM_SIM_EXPERIMENT_HH
#define DASDRAM_SIM_EXPERIMENT_HH

#include <future>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workload/workload_spec.hh"

namespace dasdram
{

/** One (workload, design) data point. */
struct ExperimentResult
{
    std::string workload;
    DesignKind design = DesignKind::Standard;
    std::string label;      ///< sweep tag, e.g. "th=4" (may be empty)
    std::uint64_t seed = 0; ///< effective per-point seed (0: base seed)
    RunMetrics metrics;

    /**
     * Weighted-speedup improvement over standard DRAM:
     * mean_i(IPC_i/IPC_i^std) - 1. For one core this is the plain IPC
     * improvement of Figures 7a/8a/9.
     */
    double perfImprovement = 0.0;

    /** DRAM dynamic energy per access in nJ (Section 7.7). */
    double energyPerAccessNj = 0.0;
};

/**
 * Run @p workload on the exact configuration @p cfg (design field
 * honoured, numCores taken from the workload): trace construction,
 * the profiling pass for static designs, and the timed run. This is a
 * pure function of its arguments — the foundation of the sweep
 * engine's determinism guarantee — and is safe to call from many
 * threads at once (each call owns its System).
 *
 * With a non-empty @p record_prefix every core's delivered trace is
 * captured to `<prefix>.core<i>.dastrace` (binary format) for later
 * `file:` replay; the static-design profiling pre-pass is excluded
 * from the capture, so replaying reproduces the measured run exactly.
 *
 * With a non-empty @p warm_dir the run participates in warm-start
 * checkpoint sharing: the directory holds one warmed snapshot per
 * config fingerprint (`warm_<fingerprint>.ckpt`, see
 * configFingerprint()). If the snapshot for this run's fingerprint
 * exists the run restores from it — skipping trace warm-up and the
 * profiling pre-pass, whose results are part of the snapshot — and
 * simulates only the measured window; otherwise the run executes
 * normally and publishes its post-warm-up state for later runs.
 * Either way the metrics are bit-identical to a cold run. Not
 * combinable with @p record_prefix (recorder file positions are not
 * snapshotted).
 */
RunMetrics runSimulation(const WorkloadSpec &workload,
                         const SimConfig &cfg,
                         const std::string &record_prefix = "",
                         const std::string &warm_dir = "");

/** mean_i(IPC_i / baselineIPC_i) - 1 (zero-IPC baselines count as 1). */
double weightedSpeedupImprovement(const RunMetrics &metrics,
                                  const RunMetrics &baseline);

/**
 * Runs experiments against a fixed base configuration, caching the
 * standard-DRAM baseline per workload so sweeps share it.
 *
 * Thread-safety contract: run(), runRaw() and invalidateBaselines()
 * may be called concurrently. baseConfig() returns a mutable
 * reference and is NOT synchronised — mutate it only while no run is
 * in flight, and call invalidateBaselines() afterwards if the change
 * affects standard-DRAM behaviour (instruction budget, warm-up, seed,
 * geometry, caches...). Mutating it WITHOUT invalidating keeps
 * serving the previously cached baselines — a documented footgun
 * (see tests/sim/test_experiment_concurrency.cc) that the figure
 * benches exploit deliberately for DAS-only knobs such as
 * das.promotion.threshold, which standard DRAM ignores.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(SimConfig base);

    /**
     * Run @p workload on @p design using the base configuration with
     * the design applied. Runs (and caches) the standard baseline for
     * the workload first if needed.
     */
    ExperimentResult run(const WorkloadSpec &workload, DesignKind design);

    /** Same, with explicit configuration (design field is honoured). */
    RunMetrics runRaw(const WorkloadSpec &workload, const SimConfig &cfg);

    /**
     * The base configuration (mutable for sweeps between runs). Not
     * synchronised — see the class comment.
     */
    SimConfig &baseConfig() { return base_; }

    /** Forget cached baselines (call after mutating the base config). */
    void invalidateBaselines();

    /**
     * Enable warm-start checkpoint sharing: every run forks from (or
     * publishes) the warmed snapshot of its config fingerprint under
     * @p dir. See runSimulation(). Set only while no run is in flight.
     */
    void setWarmStartDir(std::string dir) { warmDir_ = std::move(dir); }

    /** Geometric mean of (1 + improvement) minus 1 over results. */
    static double gmeanImprovement(const std::vector<double> &improvements);

  private:
    /**
     * Standard-DRAM metrics of @p workload, computed at most once per
     * workload name. Returns by value: the memo may be invalidated
     * concurrently, so references into it would dangle.
     */
    RunMetrics baseline(const WorkloadSpec &workload);

    SimConfig base_;
    std::string warmDir_; ///< warm-start checkpoint dir (empty: off)
    std::mutex mutex_; ///< guards baselines_ (the map, not the runs)
    std::map<std::string, std::shared_future<RunMetrics>> baselines_;
    EnergyParams energyParams_{};
};

} // namespace dasdram

#endif // DASDRAM_SIM_EXPERIMENT_HH
