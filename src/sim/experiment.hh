/**
 * @file
 * Experiment driver: builds workloads (single benchmarks or Table 2
 * mixes), runs them on a DRAM design — including the profiling pass the
 * static baselines need — and reports paper-style metrics relative to
 * the standard-DRAM baseline.
 */

#ifndef DASDRAM_SIM_EXPERIMENT_HH
#define DASDRAM_SIM_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth_trace.hh"

namespace dasdram
{

/** A workload: one benchmark per core. */
struct WorkloadSpec
{
    std::string name;                    ///< display ("mcf", "M3", ...)
    std::vector<std::string> benchmarks; ///< per-core SPEC profile names

    /** Single-program workload on one core. */
    static WorkloadSpec single(const std::string &bench);

    /** Multi-programming mix Mi (0-based index into Table 2). */
    static WorkloadSpec mix(std::size_t i);
};

/** One (workload, design) data point. */
struct ExperimentResult
{
    std::string workload;
    DesignKind design = DesignKind::Standard;
    RunMetrics metrics;

    /**
     * Weighted-speedup improvement over standard DRAM:
     * mean_i(IPC_i/IPC_i^std) - 1. For one core this is the plain IPC
     * improvement of Figures 7a/8a/9.
     */
    double perfImprovement = 0.0;

    /** DRAM dynamic energy per access in nJ (Section 7.7). */
    double energyPerAccessNj = 0.0;
};

/**
 * Runs experiments against a fixed base configuration, caching the
 * standard-DRAM baseline per workload so sweeps share it.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(SimConfig base);

    /**
     * Run @p workload on @p design using the base configuration with
     * the design applied. Runs (and caches) the standard baseline for
     * the workload first if needed.
     */
    ExperimentResult run(const WorkloadSpec &workload, DesignKind design);

    /** Same, with explicit configuration (design field is honoured). */
    RunMetrics runRaw(const WorkloadSpec &workload, const SimConfig &cfg);

    /** The base configuration (mutable for sweeps between runs). */
    SimConfig &baseConfig() { return base_; }

    /** Forget cached baselines (call after mutating the base config). */
    void invalidateBaselines() { baselines_.clear(); }

    /** Geometric mean of (1 + improvement) minus 1 over results. */
    static double gmeanImprovement(const std::vector<double> &improvements);

  private:
    const RunMetrics &baseline(const WorkloadSpec &workload);

    SimConfig base_;
    std::map<std::string, RunMetrics> baselines_;
    EnergyParams energyParams_{};
};

} // namespace dasdram

#endif // DASDRAM_SIM_EXPERIMENT_HH
