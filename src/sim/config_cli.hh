/**
 * @file
 * The uniform --config/--dump-config command-line protocol shared by
 * every dasdram tool.
 *
 * Protocol (identical in all five tools):
 *   --config FILE    load FILE as a JSON configuration over the tool's
 *                    defaults. Unknown keys are fatal, so typos and
 *                    files from newer builds fail loudly instead of
 *                    being silently ignored. Flags still override the
 *                    loaded values.
 *   --dump-config    print the complete effective configuration as
 *                    JSON and exit 0 — the output round-trips through
 *                    --config on any tool.
 *
 * Usage pattern:
 *   addConfigOptions(cli);
 *   cli.parse(argc, argv);
 *   SimConfig cfg;           // tool defaults
 *   loadConfigFile(cli, cfg);
 *   ... apply flag overrides to cfg ...
 *   if (dumpConfigIfRequested(cli, cfg))
 *       return 0;
 */

#ifndef DASDRAM_SIM_CONFIG_CLI_HH
#define DASDRAM_SIM_CONFIG_CLI_HH

#include "common/cli.hh"
#include "sim/sim_config.hh"

namespace dasdram
{

/** Register --config and --dump-config on @p cli. */
void addConfigOptions(CliParser &cli);

/**
 * Load the --config file (if given) over @p cfg via configFromJson —
 * unknown keys fatal, missing file fatal. No-op without --config.
 */
void loadConfigFile(const CliParser &cli, SimConfig &cfg);

/**
 * With --dump-config: print configToJson(@p cfg) to stdout and return
 * true (the caller should exit 0). Returns false otherwise.
 */
bool dumpConfigIfRequested(const CliParser &cli, const SimConfig &cfg);

} // namespace dasdram

#endif // DASDRAM_SIM_CONFIG_CLI_HH
