#include "sim_config.hh"

#include <cstdlib>
#include <set>

#include "common/binfmt.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "core/replacement_policy.hh"

namespace dasdram
{

const char *
toString(SimEngine e)
{
    switch (e) {
      case SimEngine::Tick: return "tick";
      case SimEngine::Event: return "event";
    }
    return "?";
}

SimEngine
parseEngine(const std::string &name)
{
    if (name == "tick")
        return SimEngine::Tick;
    if (name == "event")
        return SimEngine::Event;
    fatal("unknown engine '{}' (expected tick or event)", name);
}

double
applySimScale(SimConfig &cfg)
{
    const char *env = std::getenv("DAS_SIM_SCALE");
    if (!env)
        return 1.0;
    char *end = nullptr;
    double factor = std::strtod(env, &end);
    if (end == env || factor <= 0.0) {
        warn("ignoring invalid DAS_SIM_SCALE='{}'", env);
        return 1.0;
    }
    cfg.instructionsPerCore = static_cast<InstCount>(
        static_cast<double>(cfg.instructionsPerCore) * factor);
    if (cfg.instructionsPerCore < 100'000)
        cfg.instructionsPerCore = 100'000;
    return factor;
}

namespace
{

/** Canonical (parseDesign-compatible) token for a design. */
const char *
designKey(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Standard: return "standard";
      case DesignKind::Sas: return "sas";
      case DesignKind::Charm: return "charm";
      case DesignKind::Das: return "das";
      case DesignKind::DasFm: return "das-fm";
      case DesignKind::Fs: return "fs";
    }
    return "?";
}

/**
 * Field-wise reader over one JSON object: every getter is optional
 * (absent keys keep the caller's default) but typed (a wrong kind is
 * fatal), and finish() rejects keys no getter consumed — a typo'd key
 * never silently runs the default configuration.
 */
class ObjReader
{
  public:
    ObjReader(const JsonValue &v, std::string path)
        : v_(v), path_(std::move(path))
    {
        if (!v_.isObject())
            fatal("config: '{}' must be a JSON object", path_);
    }

    const JsonValue *
    get(const char *key, JsonValue::Kind kind, const char *kind_name)
    {
        consumed_.insert(key);
        const JsonValue *m = v_.find(key);
        if (!m)
            return nullptr;
        if (m->kind != kind)
            fatal("config: '{}.{}' must be a {}", path_, key, kind_name);
        return m;
    }

    void
    num(const char *key, double &out)
    {
        if (const JsonValue *m =
                get(key, JsonValue::Kind::Number, "number"))
            out = m->number;
    }

    template <typename T>
    void
    uns(const char *key, T &out)
    {
        if (const JsonValue *m =
                get(key, JsonValue::Kind::Number, "number")) {
            if (m->number < 0)
                fatal("config: '{}.{}' must be non-negative", path_, key);
            out = static_cast<T>(m->number);
        }
    }

    void
    boolean(const char *key, bool &out)
    {
        if (const JsonValue *m = get(key, JsonValue::Kind::Bool, "bool"))
            out = m->boolean;
    }

    void
    str(const char *key, std::string &out)
    {
        if (const JsonValue *m =
                get(key, JsonValue::Kind::String, "string"))
            out = m->string;
    }

    /** Nested object, or nullptr when absent. */
    const JsonValue *
    section(const char *key)
    {
        return get(key, JsonValue::Kind::Object, "object");
    }

    void
    finish() const
    {
        for (const auto &[key, value] : v_.object) {
            if (!consumed_.count(key))
                fatal("config: unknown key '{}.{}'", path_, key);
        }
    }

  private:
    const JsonValue &v_;
    std::string path_;
    std::set<std::string> consumed_;
};

} // namespace

std::string
configToJson(const SimConfig &cfg)
{
    JsonWriter w;
    w.beginObject();
    w.field("workload", cfg.workload);
    w.field("design", designKey(cfg.design));
    w.field("engine", toString(cfg.engine));
    w.field("seed", cfg.seed);
    w.field("instructionsPerCore", cfg.instructionsPerCore);
    w.field("warmupFraction", cfg.warmupFraction);
    w.field("profileWindowMultiplier", cfg.profileWindowMultiplier);
    w.field("coreStrideBytes", cfg.coreStride);
    w.field("protocolCheck", cfg.protocolCheck);
    w.field("mshrsPerCore", cfg.mshrsPerCore);
    w.field("channelThreads", cfg.channelThreads);

    w.key("core").beginObject();
    w.field("issueWidth", cfg.core.issueWidth);
    w.field("robSize", cfg.core.robSize);
    w.endObject();

    w.key("caches").beginObject();
    w.field("l1SizeBytes", cfg.caches.l1.sizeBytes);
    w.field("l1Assoc", cfg.caches.l1.assoc);
    w.field("l2SizeBytes", cfg.caches.l2.sizeBytes);
    w.field("l2Assoc", cfg.caches.l2.assoc);
    w.field("llcSizeBytes", cfg.caches.llc.sizeBytes);
    w.field("llcAssoc", cfg.caches.llc.assoc);
    w.field("l1LatencyCpu", cfg.caches.l1LatencyCpu);
    w.field("l2LatencyCpu", cfg.caches.l2LatencyCpu);
    w.field("llcLatencyCpu", cfg.caches.llcLatencyCpu);
    w.endObject();

    w.key("geometry").beginObject();
    w.field("channels", cfg.geom.channels);
    w.field("ranksPerChannel", cfg.geom.ranksPerChannel);
    w.field("banksPerRank", cfg.geom.banksPerRank);
    w.field("rowsPerBank", cfg.geom.rowsPerBank);
    w.field("rowBytes", cfg.geom.rowBytes);
    w.field("lineBytes", cfg.geom.lineBytes);
    w.endObject();

    w.key("controller").beginObject();
    w.field("readQueueDepth", cfg.ctrl.readQueueDepth);
    w.field("writeQueueDepth", cfg.ctrl.writeQueueDepth);
    w.field("writeHighWatermark", cfg.ctrl.writeHighWatermark);
    w.field("writeLowWatermark", cfg.ctrl.writeLowWatermark);
    w.field("refreshEnabled", cfg.ctrl.refreshEnabled);
    w.field("migrationMaxDefer", cfg.ctrl.migrationMaxDefer);
    w.endObject();

    w.key("layout").beginObject();
    w.field("fastRatioDenom", cfg.layout.fastRatioDenom);
    w.field("groupSize", cfg.layout.groupSize);
    w.endObject();

    w.key("das").beginObject();
    w.field("translationCacheBytes", cfg.das.translationCacheBytes);
    w.field("translationCacheAssoc", cfg.das.translationCacheAssoc);
    w.field("promotionThreshold", cfg.das.promotion.threshold);
    w.field("promotionCounters", cfg.das.promotion.counters);
    w.field("replacement", toString(cfg.das.replacement));
    w.field("exclusiveCache", cfg.das.exclusiveCache);
    w.endObject();

    w.key("observability").beginObject();
    w.field("histograms", cfg.obs.histograms);
    w.field("epochMemCycles", cfg.obs.epochMemCycles);
    w.field("statsOut", cfg.obs.statsOut);
    w.field("statsDir", cfg.obs.statsDir);
    w.field("traceOut", cfg.obs.traceOut);
    w.field("traceRequests", cfg.obs.traceRequests);
    w.field("spansOut", cfg.obs.spansOut);
    w.field("label", cfg.obs.label);
    w.endObject();

    w.endObject();
    return w.str();
}

SimConfig
configFromJson(const std::string &text, SimConfig base)
{
    JsonValue root;
    std::string err;
    if (!parseJson(text, root, &err))
        fatal("config: malformed JSON: {}", err);

    SimConfig cfg = std::move(base);
    ObjReader r(root, "config");
    r.str("workload", cfg.workload);
    std::string token;
    token.clear();
    r.str("design", token);
    if (!token.empty())
        cfg.design = parseDesign(token);
    token.clear();
    r.str("engine", token);
    if (!token.empty())
        cfg.engine = parseEngine(token);
    r.uns("seed", cfg.seed);
    r.uns("instructionsPerCore", cfg.instructionsPerCore);
    r.num("warmupFraction", cfg.warmupFraction);
    r.num("profileWindowMultiplier", cfg.profileWindowMultiplier);
    r.uns("coreStrideBytes", cfg.coreStride);
    r.boolean("protocolCheck", cfg.protocolCheck);
    r.uns("mshrsPerCore", cfg.mshrsPerCore);
    r.uns("channelThreads", cfg.channelThreads);

    if (const JsonValue *v = r.section("core")) {
        ObjReader s(*v, "config.core");
        s.uns("issueWidth", cfg.core.issueWidth);
        s.uns("robSize", cfg.core.robSize);
        s.finish();
    }
    if (const JsonValue *v = r.section("caches")) {
        ObjReader s(*v, "config.caches");
        s.uns("l1SizeBytes", cfg.caches.l1.sizeBytes);
        s.uns("l1Assoc", cfg.caches.l1.assoc);
        s.uns("l2SizeBytes", cfg.caches.l2.sizeBytes);
        s.uns("l2Assoc", cfg.caches.l2.assoc);
        s.uns("llcSizeBytes", cfg.caches.llc.sizeBytes);
        s.uns("llcAssoc", cfg.caches.llc.assoc);
        s.uns("l1LatencyCpu", cfg.caches.l1LatencyCpu);
        s.uns("l2LatencyCpu", cfg.caches.l2LatencyCpu);
        s.uns("llcLatencyCpu", cfg.caches.llcLatencyCpu);
        s.finish();
    }
    if (const JsonValue *v = r.section("geometry")) {
        ObjReader s(*v, "config.geometry");
        s.uns("channels", cfg.geom.channels);
        s.uns("ranksPerChannel", cfg.geom.ranksPerChannel);
        s.uns("banksPerRank", cfg.geom.banksPerRank);
        s.uns("rowsPerBank", cfg.geom.rowsPerBank);
        s.uns("rowBytes", cfg.geom.rowBytes);
        s.uns("lineBytes", cfg.geom.lineBytes);
        s.finish();
    }
    if (const JsonValue *v = r.section("controller")) {
        ObjReader s(*v, "config.controller");
        s.uns("readQueueDepth", cfg.ctrl.readQueueDepth);
        s.uns("writeQueueDepth", cfg.ctrl.writeQueueDepth);
        s.uns("writeHighWatermark", cfg.ctrl.writeHighWatermark);
        s.uns("writeLowWatermark", cfg.ctrl.writeLowWatermark);
        s.boolean("refreshEnabled", cfg.ctrl.refreshEnabled);
        s.uns("migrationMaxDefer", cfg.ctrl.migrationMaxDefer);
        s.finish();
    }
    if (const JsonValue *v = r.section("layout")) {
        ObjReader s(*v, "config.layout");
        s.uns("fastRatioDenom", cfg.layout.fastRatioDenom);
        s.uns("groupSize", cfg.layout.groupSize);
        s.finish();
    }
    if (const JsonValue *v = r.section("das")) {
        ObjReader s(*v, "config.das");
        s.uns("translationCacheBytes", cfg.das.translationCacheBytes);
        s.uns("translationCacheAssoc", cfg.das.translationCacheAssoc);
        s.uns("promotionThreshold", cfg.das.promotion.threshold);
        s.uns("promotionCounters", cfg.das.promotion.counters);
        token.clear();
        s.str("replacement", token);
        if (!token.empty())
            cfg.das.replacement = parseFastReplPolicy(token);
        s.boolean("exclusiveCache", cfg.das.exclusiveCache);
        s.finish();
    }
    if (const JsonValue *v = r.section("observability")) {
        ObjReader s(*v, "config.observability");
        s.boolean("histograms", cfg.obs.histograms);
        s.uns("epochMemCycles", cfg.obs.epochMemCycles);
        s.str("statsOut", cfg.obs.statsOut);
        s.str("statsDir", cfg.obs.statsDir);
        s.str("traceOut", cfg.obs.traceOut);
        s.num("traceRequests", cfg.obs.traceRequests);
        s.str("spansOut", cfg.obs.spansOut);
        s.str("label", cfg.obs.label);
        s.finish();
    }
    r.finish();
    return cfg;
}

std::uint64_t
configFingerprint(const SimConfig &cfg)
{
    // Canonicalise through the JSON serialisation so the fingerprint
    // follows the config schema automatically; neutralise the fields
    // documented as excluded before hashing.
    SimConfig c = cfg;
    c.engine = SimEngine::Event;
    c.channelThreads = 1;
    c.obs.statsOut.clear();
    c.obs.statsDir.clear();
    c.obs.traceOut.clear();
    c.obs.spansOut.clear();
    c.obs.workloadName.clear();
    c.obs.label.clear();
    const std::string json = configToJson(c);
    std::uint64_t h = binfmt::fnv1a64(json.data(), json.size());
    // numCores is usually derived from the workload spec and not part
    // of the JSON schema; systems built with explicit traces set it
    // directly, so chain it in.
    const std::uint64_t cores = cfg.numCores;
    return binfmt::fnv1a64(&cores, sizeof(cores), h);
}

} // namespace dasdram
