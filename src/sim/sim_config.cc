#include "sim_config.hh"

#include <cstdlib>

#include "common/log.hh"

namespace dasdram
{

const char *
toString(SimEngine e)
{
    switch (e) {
      case SimEngine::Tick: return "tick";
      case SimEngine::Event: return "event";
    }
    return "?";
}

SimEngine
parseEngine(const std::string &name)
{
    if (name == "tick")
        return SimEngine::Tick;
    if (name == "event")
        return SimEngine::Event;
    fatal("unknown engine '{}' (expected tick or event)", name);
}

double
applySimScale(SimConfig &cfg)
{
    const char *env = std::getenv("DAS_SIM_SCALE");
    if (!env)
        return 1.0;
    char *end = nullptr;
    double factor = std::strtod(env, &end);
    if (end == env || factor <= 0.0) {
        warn("ignoring invalid DAS_SIM_SCALE='{}'", env);
        return 1.0;
    }
    cfg.instructionsPerCore = static_cast<InstCount>(
        static_cast<double>(cfg.instructionsPerCore) * factor);
    if (cfg.instructionsPerCore < 100'000)
        cfg.instructionsPerCore = 100'000;
    return factor;
}

} // namespace dasdram
