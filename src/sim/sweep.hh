/**
 * @file
 * SweepRunner: the parallel experiment-grid engine.
 *
 * A sweep is a declarative list of (workload × design × config
 * override) points. run() fans the points across a fixed-size
 * std::thread worker pool and returns results in submission order, so
 * the output of a sweep — tables printed from it, JSON lines exported
 * from it — is byte-identical whatever the thread count.
 *
 * Determinism contract (the part tests/sim/test_sweep_determinism.cc
 * guards):
 *  - every point runs in its own System with an effective seed
 *    derived purely from (base seed, workload name, design) via
 *    pointSeed() — never from scheduling, thread identity or shared
 *    RNG state;
 *  - the standard-DRAM baseline of each workload is computed at most
 *    once from the *pristine* base configuration (point overrides are
 *    not applied to it) behind a mutex-guarded memo, so it is the
 *    same whichever point happens to request it first;
 *  - results are collected into a pre-sized vector indexed by
 *    submission order.
 *
 * Per-point overrides therefore must not change standard-DRAM
 * behaviour (they are meant for DAS-side knobs: promotion threshold,
 * translation-cache capacity, fast ratio, replacement policy...).
 * Anything that changes the baseline — instruction budget, warm-up,
 * geometry, cache sizes — belongs in the base configuration of a
 * separate sweep.
 */

#ifndef DASDRAM_SIM_SWEEP_HH
#define DASDRAM_SIM_SWEEP_HH

#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace dasdram
{

/** Mutates a point's SimConfig before the run (may be empty). */
using ConfigOverride = std::function<void(SimConfig &)>;

/** One grid point of a sweep. */
struct SweepPoint
{
    WorkloadSpec workload;
    DesignKind design = DesignKind::Das;
    ConfigOverride override; ///< DAS-side knobs only (see file header)
    std::string label;       ///< free-form tag exported with the result

    /**
     * When false, the standard-DRAM baseline is neither computed nor
     * consulted for this point and perfImprovement stays 0 — for
     * callers that only want the raw metrics of one run.
     */
    bool needBaseline = true;
};

/**
 * Parallel driver for a grid of independent experiment points.
 * Construct, add() points, run() once. A SweepRunner is single-use:
 * run() may only be called once.
 */
class SweepRunner
{
  public:
    /**
     * @param base configuration shared by every point (including the
     *        base seed the per-point seeds derive from).
     * @param jobs worker threads; 0 means resolveJobs(0): the DAS_JOBS
     *        environment variable if set, else the hardware thread
     *        count.
     */
    explicit SweepRunner(SimConfig base, unsigned jobs = 0);

    /** Append a point; returns its submission index. */
    std::size_t add(SweepPoint point);
    std::size_t add(const WorkloadSpec &workload, DesignKind design,
                    ConfigOverride override = {}, std::string label = {});

    /**
     * Run all points and return their results in submission order.
     * Byte-identical output for any jobs value.
     */
    std::vector<ExperimentResult> run();

    const SimConfig &baseConfig() const { return base_; }
    unsigned jobs() const { return jobs_; }
    std::size_t size() const { return points_.size(); }

    /**
     * Enable warm-start checkpoint sharing for every point (baselines
     * included): each run forks from the warmed snapshot of its config
     * fingerprint under @p dir when one exists, and publishes its own
     * otherwise — so re-running a sweep against the same directory
     * skips all warm-up re-simulation while producing bit-identical
     * results (see runSimulation()). Call before run().
     */
    void setWarmStartDir(std::string dir) { warmDir_ = std::move(dir); }

    /**
     * Effective worker count for a requested value: @p requested if
     * non-zero, else the DAS_JOBS environment variable (positive
     * integer), else std::thread::hardware_concurrency(), floored
     * at 1.
     */
    static unsigned resolveJobs(unsigned requested);

    /**
     * The per-point seed: a splitmix64-style mix of the base seed, an
     * FNV-1a hash of the workload name, and the design. Identical
     * inputs give identical seeds on every platform; any input change
     * decorrelates the stream. Points of the same (workload, design)
     * with different overrides share a seed on purpose, so parameter
     * sweeps are paired comparisons.
     */
    static std::uint64_t pointSeed(std::uint64_t base_seed,
                                   const std::string &workload,
                                   DesignKind design);

  private:
    ExperimentResult runPoint(const SweepPoint &point,
                              std::size_t index);
    RunMetrics baselineFor(const WorkloadSpec &workload);

    SimConfig base_;
    unsigned jobs_;
    std::string warmDir_; ///< warm-start checkpoint dir (empty: off)
    std::vector<SweepPoint> points_;
    bool ran_ = false;

    std::mutex mutex_; ///< guards baselines_
    std::map<std::string, std::shared_future<RunMetrics>> baselines_;
    EnergyParams energyParams_{};
};

/**
 * Serialise one result as a compact single-line JSON object (no
 * trailing newline). Deterministic: the same result always produces
 * the same bytes. See DESIGN.md for the schema.
 */
std::string toJsonLine(const ExperimentResult &result);

/** Write results as JSON lines (one object per line). */
void writeJsonLines(std::ostream &os,
                    const std::vector<ExperimentResult> &results);

} // namespace dasdram

#endif // DASDRAM_SIM_SWEEP_HH
