#include "fuzz.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include "common/binfmt.hh"
#include "common/log.hh"
#include "common/random.hh"
#include "common/serde.hh"
#include "dram/dram_system.hh"
#include "dram/protocol_checker.hh"
#include "dram/row_class.hh"
#include "mem/clock.hh"
#include "mem/request_trace.hh"
#include "sim/sweep.hh"
#include "workload/workload_spec.hh"

namespace dasdram
{

namespace
{

/** Envelope magic of the in-memory fuzz checkpoint ("DFZP"). */
constexpr std::uint32_t kFuzzSnapshotMagic = 0x505a4644u;

/** Row-class oracle for @p design, mirroring System's choice. */
std::unique_ptr<RowClassifier>
makeUniformClassifier(const DesignSpec &spec)
{
    if (spec.allFast)
        return std::make_unique<UniformRowClassifier>(RowClass::Fast);
    if (!spec.heterogeneous)
        return std::make_unique<UniformRowClassifier>(RowClass::Slow);
    return nullptr; // use the asymmetric layout
}

/** A traffic row: mostly a hot slice at the bottom of the bank, with
 *  1/8 of picks from the top slice to exercise address-space edges. */
std::uint64_t
pickRow(Rng &rng, const FuzzCase &c)
{
    std::uint64_t spread =
        std::min<std::uint64_t>(c.rowSpread, c.geom.rowsPerBank);
    std::uint64_t off = rng.nextBelow(spread);
    if (c.geom.rowsPerBank > spread && rng.chance(0.125))
        return c.geom.rowsPerBank - spread + off;
    return off;
}

/** Span sink that only counts completions (the fuzzer has no use for
 *  the span contents — it proves the *presence* of tracing changes
 *  nothing). */
class CountingSpanSink : public RequestTraceSink
{
  public:
    void onSpan(const RequestSpan &) override { ++count_; }
    std::uint64_t count() const { return count_; }

  private:
    std::uint64_t count_ = 0;
};

/** parseDesign()-compatible short name, safe for --filter replay. */
const char *
shortDesignName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Standard: return "standard";
      case DesignKind::Sas: return "sas";
      case DesignKind::Charm: return "charm";
      case DesignKind::Das: return "das";
      case DesignKind::DasFm: return "das-fm";
      case DesignKind::Fs: return "fs";
    }
    return "?";
}

} // namespace

FuzzReport
runProtocolFuzz(const FuzzCase &c)
{
    const DesignSpec &spec = designSpec(c.design);
    DramTiming t = ddr3_1600Timing(spec.charmColumnOpt);
    return runProtocolFuzz(c, t, t);
}

FuzzReport
runProtocolFuzz(const FuzzCase &c, const DramTiming &dut,
                const DramTiming &reference, CommandSink *extra_sink)
{
    const DesignSpec &spec = designSpec(c.design);
    AsymmetricLayout layout(c.geom, c.layout);
    std::unique_ptr<RowClassifier> uniform = makeUniformClassifier(spec);
    const RowClassifier &cls =
        uniform ? static_cast<const RowClassifier &>(*uniform)
                : static_cast<const RowClassifier &>(layout);

    // dram / checker / fanout live on the heap so the mid-run snapshot
    // round trip (checkpointAtCycle) can tear them down and rebuild
    // fresh instances from the serialized bytes alone.
    auto checker =
        std::make_unique<ProtocolChecker>(c.geom, reference, &cls);
    auto fanout = std::make_unique<CommandFanout>();
    fanout->addSink(checker.get());
    fanout->addSink(extra_sink);

    auto dram = std::make_unique<DramSystem>(c.geom, dut, cls, c.ctrl,
                                             c.mapping);
    dram->setCommandSink(fanout.get());
    dram->setChannelThreads(c.channelThreads);

    // Request-span tracing under fuzz traffic: every created request
    // draws a sampling decision (before the canAccept bail-out, so the
    // decision stream is a pure function of the creation sequence and
    // therefore identical across engines and thread counts).
    RequestTracer tracer(c.seed, c.traceRequests);
    CountingSpanSink span_sink;
    if (c.traceRequests > 0.0)
        dram->setRequestTraceSink(&span_sink);

    FuzzReport rep;
    rep.name = c.name;
    rep.seed = c.seed;

    Rng rng(c.seed);
    const std::uint64_t columns = c.geom.rowBytes / c.geom.lineBytes;

    // Trace-driven addressing: round-robin the workload's per-core
    // streams, folding each address into this case's geometry. Both
    // engines consume the streams identically (like the RNG), so the
    // differential guarantee is unaffected.
    std::vector<std::unique_ptr<TraceSource>> wl_traces;
    unsigned wl_next = 0;
    if (!c.workload.empty()) {
        WorkloadSpec w = WorkloadSpec::parse(c.workload);
        wl_traces = buildTraces(w, c.seed, c.geom.rowBytes,
                                c.geom.lineBytes);
    }
    auto next_wl_entry = [&](TraceEntry &e) {
        TraceSource &src = *wl_traces[wl_next];
        wl_next = static_cast<unsigned>((wl_next + 1) % wl_traces.size());
        if (!src.next(e)) {
            src.reset(); // non-looping file exhausted: start over
            if (!src.next(e))
                fatal("workload '{}' delivers no trace records",
                      c.workload);
        }
    };
    const unsigned fast_slots = layout.fastSlotsPerGroup();
    const unsigned group_size = layout.groupSize();
    // Limit migration injection to groups the demand traffic also
    // touches, so reservations and requests genuinely collide.
    const std::uint64_t mig_groups = std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(c.rowSpread / group_size,
                                   layout.groupsPerBank()));

    std::uint64_t pending_migrations = 0;
    std::uint64_t next_req_id = 1;

    // Generous budget: a stuck controller fails the case as !drained
    // instead of hanging the harness.
    const Cycle max_mem_cycles =
        100'000 + 500ull * std::max(1u, c.requests);

    // Event engine bookkeeping. The harness walks every memory cycle in
    // both engines so the injection RNG stream is identical; the event
    // engine only elides the per-cycle DramSystem::tick calls below the
    // controller horizon. Injections must observe the same controller
    // clock as under the tick engine, so before any state-mutating call
    // the DRAM is caught up to the current cycle — a pure clock advance,
    // since the horizon contract guarantees the skipped span is idle.
    const bool event = c.engine == SimEngine::Event;
    Cycle next_wake_mem = 0; // 0 => the first iteration always ticks

    Cycle now_tick = 0;
    for (Cycle mem_cycle = 0; mem_cycle < max_mem_cycles; ++mem_cycle) {
        if (c.checkpointAtCycle > 0 &&
            mem_cycle == c.checkpointAtCycle) {
            // Snapshot round trip: serialize the DRAM system and the
            // checker, destroy them, rebuild fresh instances and
            // restore — the remainder of the run must be
            // indistinguishable from never having checkpointed.
            if (event)
                dram->tick(now_tick); // catch up; pure clock advance
            Archive saver;
            dram->serdeState(saver);
            checker->serdeState(saver);
            std::vector<unsigned char> bytes = binfmt::encodeEnvelope(
                kFuzzSnapshotMagic, 1, saver.take());

            dram = std::make_unique<DramSystem>(c.geom, dut, cls,
                                                c.ctrl, c.mapping);
            checker = std::make_unique<ProtocolChecker>(c.geom,
                                                        reference, &cls);
            fanout = std::make_unique<CommandFanout>();
            fanout->addSink(checker.get());
            fanout->addSink(extra_sink);
            dram->setCommandSink(fanout.get());
            dram->setChannelThreads(c.channelThreads);
            if (c.traceRequests > 0.0)
                dram->setRequestTraceSink(&span_sink);

            binfmt::EnvelopeResult res = binfmt::decodeEnvelope(
                bytes, kFuzzSnapshotMagic, 1, "fuzz checkpoint");
            if (!res.ok())
                fatal("fuzz checkpoint round trip: {}", res.error);
            Archive loader(std::move(res.payload));
            dram->serdeState(loader);
            checker->serdeState(loader);
            loader.finish();
            // The harness owns every in-flight callback: reinstall
            // them uniformly (see DramSystem::rebind*).
            dram->rebindRequests([&rep](const MemRequest &) {
                return [&rep](MemRequest &, Cycle) { ++rep.completed; };
            });
            dram->rebindMigrations(
                [&rep, &pending_migrations](const MigrationJob &) {
                    return [&rep, &pending_migrations](Cycle) {
                        ++rep.migrationsDone;
                        --pending_migrations;
                    };
                });
            next_wake_mem = 0; // re-probe the horizon next iteration
        }
        bool injected = false;
        // Inject 0-2 demand requests per cycle while traffic remains.
        unsigned burst = static_cast<unsigned>(rng.nextBelow(3));
        for (unsigned i = 0; i < burst && rep.submitted < c.requests;
             ++i) {
            auto req = std::make_unique<MemRequest>();
            req->id = next_req_id++;
            if (!wl_traces.empty()) {
                TraceEntry e{};
                next_wl_entry(e);
                req->isWrite = e.isWrite;
                Addr line = e.addr % c.geom.capacityBytes();
                line -= line % c.geom.lineBytes;
                req->loc = dram->mapper().decode(line);
                req->addr = dram->mapper().encode(req->loc);
            } else {
                req->isWrite = rng.chance(c.writeFraction);
                req->loc.channel = static_cast<unsigned>(
                    rng.nextBelow(c.geom.channels));
                req->loc.rank = static_cast<unsigned>(
                    rng.nextBelow(c.geom.ranksPerChannel));
                req->loc.bank = static_cast<unsigned>(
                    rng.nextBelow(c.geom.banksPerRank));
                req->loc.row = pickRow(rng, c);
                req->loc.column = rng.nextBelow(columns);
                req->addr = dram->mapper().encode(req->loc);
            }
            req->onComplete = [&rep](MemRequest &, Cycle) {
                ++rep.completed;
            };
            if (c.traceRequests > 0.0) {
                req->span = tracer.maybeStart();
                if (req->span) {
                    req->span->core = -1;
                    req->span->addr = req->addr;
                    req->span->isWrite = req->isWrite;
                    req->span->issueTick = now_tick;
                    req->span->missTick = now_tick;
                    req->span->transDoneTick = now_tick;
                    req->span->submitTick = now_tick;
                }
            }
            if (!dram->canAccept(req->loc, req->isWrite))
                break;
            if (event)
                dram->tick(now_tick); // catch up; no-op when current
            dram->submit(std::move(req), now_tick);
            ++rep.submitted;
            injected = true;
        }

        // Inject migration/swap jobs against the same row region.
        if (c.migrationChance > 0.0 && pending_migrations < 16 &&
            rng.chance(c.migrationChance)) {
            unsigned ch = static_cast<unsigned>(
                rng.nextBelow(c.geom.channels));
            unsigned ra = static_cast<unsigned>(
                rng.nextBelow(c.geom.ranksPerChannel));
            unsigned ba = static_cast<unsigned>(
                rng.nextBelow(c.geom.banksPerRank));
            std::uint64_t base =
                layout.groupBaseRow(rng.nextBelow(mig_groups));
            std::uint64_t row_b = base + rng.nextBelow(fast_slots);
            std::uint64_t row_a =
                base + fast_slots +
                rng.nextBelow(group_size - fast_slots);
            bool full_swap = rng.chance(0.7);
            ++pending_migrations;
            ++rep.migrationsStarted;
            if (event)
                dram->tick(now_tick); // catch up; no-op when current
            dram->startMigration(ch, ra, ba, row_a, row_b, full_swap,
                                base, base + group_size,
                                [&rep, &pending_migrations](Cycle) {
                                    ++rep.migrationsDone;
                                    --pending_migrations;
                                });
            injected = true;
        }

        now_tick += kMemTick;
        // The drain check only changes state on a real tick (or an
        // injection, which forces one), so skipped cycles cannot be
        // the first cycle it would have fired on.
        if (!event || injected || mem_cycle + 1 >= next_wake_mem) {
            dram->tick(now_tick);
            if (event) {
                // now_tick is (mem_cycle + 1) * kMemTick here, so this
                // probes the horizon from the next memory cycle.
                next_wake_mem = dram->nextWakeMemCycle(now_tick / kMemTick);
            }
            if (rep.submitted >= c.requests &&
                rep.completed >= rep.submitted && !dram->busy()) {
                rep.drained = true;
                break;
            }
        }
    }

    rep.commands = checker->commandCount();
    rep.violations = checker->violationCount();
    rep.firstViolation = checker->firstViolation();
    rep.spansEmitted = span_sink.count();
    return rep;
}

namespace
{

/** Record the first mismatching report field in @p detail. */
template <typename T>
void
diffField(std::string &detail, const char *name, const T &a, const T &b)
{
    if (a == b || !detail.empty())
        return;
    detail = formatStr("report.{}: tick={} event={}", name, a, b);
}

/** First differing line between two command-trace dumps, if any. */
void
diffTraces(std::string &detail, const std::string &tick,
           const std::string &event)
{
    if (tick == event || !detail.empty())
        return;
    std::istringstream ta(tick), tb(event);
    std::string la, lb;
    std::uint64_t line = 0;
    while (true) {
        ++line;
        bool ha = static_cast<bool>(std::getline(ta, la));
        bool hb = static_cast<bool>(std::getline(tb, lb));
        if (!ha && !hb)
            break;
        if (ha != hb || la != lb) {
            detail = formatStr("trace line {}: tick=\"{}\" event=\"{}\"",
                               line, ha ? la : "<eof>",
                               hb ? lb : "<eof>");
            return;
        }
    }
    detail = "traces differ (whitespace only?)";
}

/** First mismatch between two full runs (all report fields + traces).
 *  spansEmitted is deliberately not compared here: the sampling
 *  crossing diffs a rate-0 run against sampled ones, and the span
 *  count is the one field that legitimately differs. Sampled runs
 *  are held to an exact span-count match separately. */
void
diffRuns(std::string &detail, const FuzzReport &a, const FuzzReport &b,
         const std::string &trace_a, const std::string &trace_b)
{
    diffField(detail, "commands", a.commands, b.commands);
    diffField(detail, "violations", a.violations, b.violations);
    diffField(detail, "firstViolation", a.firstViolation,
              b.firstViolation);
    diffField(detail, "submitted", a.submitted, b.submitted);
    diffField(detail, "completed", a.completed, b.completed);
    diffField(detail, "migrationsStarted", a.migrationsStarted,
              b.migrationsStarted);
    diffField(detail, "migrationsDone", a.migrationsDone,
              b.migrationsDone);
    diffField(detail, "drained", a.drained, b.drained);
    diffTraces(detail, trace_a, trace_b);
}

} // namespace

FuzzDifferential
runFuzzDifferential(const FuzzCase &c)
{
    return runFuzzDifferential(c, {c.channelThreads});
}

FuzzDifferential
runFuzzDifferential(const FuzzCase &c,
                    const std::vector<unsigned> &thread_counts)
{
    const DesignSpec &spec = designSpec(c.design);
    const DramTiming t = ddr3_1600Timing(spec.charmColumnOpt);
    const std::vector<unsigned> threads =
        thread_counts.empty() ? std::vector<unsigned>{1} : thread_counts;
    // With c.traceRequests set, cross span sampling off/on too:
    // tracing is observation-only, so every report field and
    // command-trace byte must survive turning it on, at every
    // (engine, threads) combination. Rate 0 keeps the historical
    // engine x threads matrix (and its cost) unchanged.
    std::vector<double> rates{0.0};
    if (c.traceRequests > 0.0)
        rates.push_back(c.traceRequests);

    // With c.checkpointAtCycle set, cross the snapshot round trip too:
    // every (engine, threads, rate) combination additionally runs with
    // a mid-run checkpoint/restore, and must still match the straight
    // (never-checkpointed) tick reference byte for byte.
    std::vector<Cycle> checkpoints{0};
    if (c.checkpointAtCycle > 0)
        checkpoints.push_back(c.checkpointAtCycle);

    auto run_one = [&](SimEngine engine, unsigned nthreads, double rate,
                       Cycle checkpoint, std::string &trace_text) {
        FuzzCase one = c;
        one.engine = engine;
        one.channelThreads = nthreads;
        one.traceRequests = rate;
        one.checkpointAtCycle = checkpoint;
        std::ostringstream os;
        CommandTrace trace(os);
        FuzzReport rep = runProtocolFuzz(one, t, t, &trace);
        trace_text = os.str();
        return rep;
    };

    // The tick engine at the first thread count with sampling off is
    // the reference every other (engine, threads, rate) combination
    // must match byte-for-byte.
    FuzzDifferential d;
    std::string ref_trace;
    d.tick =
        run_one(SimEngine::Tick, threads.front(), 0.0, 0, ref_trace);
    bool have_event = false;
    std::uint64_t span_ref = 0;
    bool have_span_ref = false;
    for (SimEngine engine : {SimEngine::Tick, SimEngine::Event}) {
        for (unsigned n : threads) {
            for (double rate : rates) {
                for (Cycle checkpoint : checkpoints) {
                    if (engine == SimEngine::Tick &&
                        n == threads.front() && rate == 0.0 &&
                        checkpoint == 0) {
                        continue;
                    }
                    std::string trace;
                    FuzzReport rep =
                        run_one(engine, n, rate, checkpoint, trace);
                    if (engine == SimEngine::Event && !have_event &&
                        rate == 0.0 && checkpoint == 0) {
                        d.event = rep;
                        have_event = true;
                    }
                    std::string detail;
                    diffRuns(detail, d.tick, rep, ref_trace, trace);
                    if (!detail.empty() && d.detail.empty()) {
                        d.detail = formatStr(
                            "{}/threads={}/rate={}/checkpoint={}: {}",
                            toString(engine), n, rate, checkpoint,
                            detail);
                    }
                    // Sampled runs must agree with each other on the
                    // span count: the decisions are a pure function of
                    // (seed, rate, creation order), all identical here.
                    if (rate > 0.0) {
                        if (!have_span_ref) {
                            span_ref = rep.spansEmitted;
                            have_span_ref = true;
                        } else if (rep.spansEmitted != span_ref &&
                                   d.detail.empty()) {
                            d.detail = formatStr(
                                "{}/threads={}/rate={}/checkpoint={}: "
                                "spansEmitted {} != reference {}",
                                toString(engine), n, rate, checkpoint,
                                rep.spansEmitted, span_ref);
                        }
                    }
                }
            }
        }
    }
    d.identical = d.detail.empty();
    return d;
}

std::vector<FuzzCase>
defaultFuzzCases(std::uint64_t base_seed, unsigned requests)
{
    struct Corner
    {
        const char *name;
        void (*apply)(FuzzCase &);
        bool migrationOnly; ///< corner only meaningful with migrations
    };
    static const Corner corners[] = {
        {"base", [](FuzzCase &) {}, false},
        {"fcfs",
         [](FuzzCase &c) { c.ctrl.sched = SchedPolicy::Fcfs; }, false},
        {"closed",
         [](FuzzCase &c) { c.ctrl.page = PagePolicy::Closed; }, false},
        {"tiny-queues",
         [](FuzzCase &c) {
             c.ctrl.readQueueDepth = 4;
             c.ctrl.writeQueueDepth = 4;
             c.ctrl.writeHighWatermark = 3;
             c.ctrl.writeLowWatermark = 1;
         },
         false},
        {"no-refresh",
         [](FuzzCase &c) { c.ctrl.refreshEnabled = false; }, false},
        {"defer0",
         [](FuzzCase &c) { c.ctrl.migrationMaxDefer = 0; }, true},
    };
    static const DesignKind designs[] = {
        DesignKind::Standard, DesignKind::Sas,   DesignKind::Charm,
        DesignKind::Das,      DesignKind::DasFm, DesignKind::Fs,
    };

    std::vector<FuzzCase> cases;
    for (DesignKind design : designs) {
        // DAS designs get migration traffic; the static designs only
        // see demand requests (they never issue MIGRATE).
        bool migrates =
            design == DesignKind::Das || design == DesignKind::DasFm;
        for (const Corner &corner : corners) {
            if (corner.migrationOnly && !migrates)
                continue;
            FuzzCase c;
            c.design = design;
            c.name = std::string(shortDesignName(design)) + "/" +
                     corner.name;
            c.requests = requests;
            c.migrationChance = migrates ? 0.02 : 0.0;
            corner.apply(c);
            c.seed = SweepRunner::pointSeed(base_seed, c.name, design);
            cases.push_back(std::move(c));
        }
    }
    return cases;
}

} // namespace dasdram
