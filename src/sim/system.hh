/**
 * @file
 * The full simulated system: cores, cache hierarchy, DAS manager and
 * DRAM, with the tick loop, warm-up handling and metric extraction.
 */

#ifndef DASDRAM_SIM_SYSTEM_HH
#define DASDRAM_SIM_SYSTEM_HH

#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/mshr.hh"
#include "common/continuation.hh"
#include "common/epoch_series.hh"
#include "common/serde.hh"
#include "core/das_manager.hh"
#include "core/designs.hh"
#include "cpu/core.hh"
#include "dram/dram_system.hh"
#include "dram/protocol_checker.hh"
#include "dram/trace_json.hh"
#include "sim/sim_config.hh"

namespace dasdram
{

/** End-of-run metrics of one simulation. */
struct RunMetrics
{
    std::vector<double> ipc;    ///< per core, measured window
    std::uint64_t cpuCycles = 0; ///< measured window
    InstCount instructions = 0;  ///< total retired (all cores)
    std::uint64_t llcMisses = 0; ///< demand misses
    LocationStats locations{};
    std::uint64_t promotions = 0;
    std::uint64_t memAccesses = 0; ///< requests below the LLC
    std::uint64_t footprintRows = 0;
    EnergyBreakdown energy{};

    /** Demand LLC misses per kilo-instruction. */
    double
    mpki() const
    {
        return instructions
                   ? 1000.0 * static_cast<double>(llcMisses) /
                         static_cast<double>(instructions)
                   : 0.0;
    }

    /** Promotions per kilo-miss (Figure 7b/e). */
    double
    ppkm() const
    {
        return llcMisses ? 1000.0 * static_cast<double>(promotions) /
                               static_cast<double>(llcMisses)
                         : 0.0;
    }

    /** Promotions per memory access (Figure 8c). */
    double
    promotionsPerAccess() const
    {
        return memAccesses ? static_cast<double>(promotions) /
                                 static_cast<double>(memAccesses)
                           : 0.0;
    }

    /** Footprint touched in MiB (measured window). */
    double
    footprintMiB(std::uint64_t row_bytes) const
    {
        return static_cast<double>(footprintRows * row_bytes) /
               static_cast<double>(MiB);
    }
};

/**
 * Owns and wires all components for one simulation run.
 */
class System
{
  public:
    /**
     * @param traces one per core; must outlive the system. Addresses
     *        are offset by cfg.coreBase(i).
     */
    System(const SimConfig &cfg, std::vector<TraceSource *> traces);

    /**
     * Owning variant: the system keeps @p traces alive for its own
     * lifetime (one per core).
     */
    System(const SimConfig &cfg,
           std::vector<std::unique_ptr<TraceSource>> traces);

    /**
     * Build the workload from cfg.workload (the workload-spec grammar):
     * parses the spec, builds one trace per part and owns them.
     * numCores is taken from the spec, not cfg.numCores.
     */
    explicit System(const SimConfig &cfg);

    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /** Run to completion (instruction target on every core). */
    RunMetrics run();

    /** Access the manager (e.g. to program static tables) pre-run. */
    DasManager &manager() { return *das_; }
    DramSystem &dram() { return *dram_; }
    CacheHierarchy &caches() { return *caches_; }
    const AsymmetricLayout &layout() const { return *layout_; }
    const SimConfig &config() const { return cfg_; }

    /** The protocol checker (nullptr when cfg.protocolCheck is off). */
    const ProtocolChecker *protocolChecker() const { return checker_.get(); }

    /**
     * Additionally write every issued DRAM command to @p os (one line
     * per command; see dram/cmd_trace.hh). Call before run(); @p os
     * must outlive the system.
     */
    void attachCommandTrace(std::ostream &os);

    /**
     * Stream a Chrome trace_event JSON of the command stream (and
     * DasManager promotion instants) to @p os; finalised at end of
     * run(). Call before run(); @p os must outlive the system. Used
     * by tests; cfg.obs.traceOut does this against a file.
     */
    void attachChromeTrace(std::ostream &os);

    /**
     * Stream the sampled request-span JSONL (mem/request_trace.hh
     * schema) to @p os. Requires cfg.obs.traceRequests > 0 (the
     * sampler only exists then). Call before run(); @p os must
     * outlive the system. Used by tests; cfg.obs.spansOut does this
     * against a file.
     */
    void attachRequestSpanTrace(std::ostream &os);

    /** The request tracer (nullptr when cfg.obs.traceRequests == 0). */
    const RequestTracer *requestTracer() const { return tracer_.get(); }

    /** The span aggregator (nullptr when tracing is off). */
    const CriticalPathAggregator *spanAggregator() const
    {
        return spanAgg_.get();
    }

    /** Dump all statistics (post-run) to @p os. */
    void dumpStats(std::ostream &os) const;

    /**
     * Write the stats-JSONL export (schema in common/stats_jsonl.hh):
     * the full stat tree, system-level per-class read-latency rollups
     * (rollup.readLatency*), and the epoch series when enabled.
     * Call post-run; cfg.obs.statsOut does this against a file.
     */
    void writeStatsJsonl(std::ostream &os) const;

    /** The epoch series (nullptr when cfg.obs.epochMemCycles == 0). */
    const EpochSeries *epochs() const { return epochs_.get(); }

    /// @name Snapshot / restore
    /// @{

    /**
     * Serialise (or restore) every component's state through the one
     * serde visitor: cores, traces, caches, MSHRs, DAS manager, DRAM,
     * pending miss events, the clock, warm-up bookkeeping, the
     * protocol checker / tracer / epoch series when present, and the
     * full statistic tree. Symmetric — the same call drives both
     * directions.
     */
    void serdeState(Archive &ar);

    /**
     * Write a versioned checkpoint of the entire system to @p path:
     * a binfmt envelope (magic, schema version, payload length,
     * trailing checksum) whose payload opens with the configuration
     * fingerprint. Fatal on I/O error.
     */
    void saveSnapshot(const std::string &path);

    /**
     * Restore state from a checkpoint written by saveSnapshot. The
     * system must be built from a configuration whose fingerprint
     * matches the checkpoint's (export paths, engine and channel
     * threading may differ — see configFingerprint); mismatches, bad
     * magic, truncation and too-new versions are fatal. A subsequent
     * run() continues bit-identically to a run that never stopped.
     */
    void loadSnapshot(const std::string &path);

    /**
     * Schedule a checkpoint: at the top of the first run() iteration
     * at or after @p tick the full state is saved to @p path. Tick 0
     * saves at the first iteration. Call before run(); repeatable.
     */
    void scheduleCheckpoint(Cycle tick, std::string path);

    /**
     * Save a checkpoint at the first iteration after the warm-up
     * statistics reset — the shared warm state that warm-start sweep
     * forking resumes from.
     */
    void checkpointAtWarmup(std::string path);

    /** Checkpoint envelope identity (shared with tests and tools). */
    static constexpr std::uint32_t kSnapshotMagic = 0x504b4344u; // "DCKP"
    static constexpr std::uint16_t kSnapshotVersion = 1;
    /// @}

  private:
    /**
     * A deferred LLC-miss hand-off: the cache-latency delay between a
     * core access missing the hierarchy and the MSHR/DRAM side seeing
     * it. A POD (no closures) so the pending-event heap serialises
     * verbatim and a restored run pops events in exactly the straight
     * run's (at, seq) order.
     */
    struct MissEvent
    {
        Cycle at = 0;
        std::uint64_t seq = 0;
        unsigned core = 0;
        unsigned slot = Continuation::kNoSlot;
        Addr line = 0;
        bool isWrite = false;
        Cycle issueTick = 0;

        bool
        operator>(const MissEvent &o) const
        {
            return at != o.at ? at > o.at : seq > o.seq;
        }

        void
        serdeState(Archive &ar)
        {
            ar.io(at);
            ar.io(seq);
            ar.io(core);
            ar.io(slot);
            ar.io(line);
            ar.io(isWrite);
            ar.io(issueTick);
        }
    };

    /**
     * @p slot: the issuing ROB slot for loads (completed via
     * Core::completeLoad), Continuation::kNoSlot for stores.
     */
    void handleCoreAccess(unsigned core, Addr addr, bool is_write,
                          unsigned slot);
    /** Run one due miss event (start the fill, register the waiter). */
    void runMissEvent(const MissEvent &ev);
    /**
     * Interpret a completed token: core-load wakeups and demand fills
     * from any component (MSHR dispatcher, DAS completion hook) funnel
     * through here.
     */
    void dispatchContinuation(const Continuation &cont, Cycle at);
    /** Save every scheduled checkpoint whose tick has been reached. */
    void maybeCheckpoint();
    /** Earliest scheduled-checkpoint tick (kCycleMax when none). */
    Cycle nextCheckpointTick() const;

    /**
     * Event engine: starting from the iteration scheduled at
     * @p next_cpu_at (the state as of the just-finished iteration at
     * now_), compute the minimum component horizon and skip every
     * provably idle CPU cycle up to it — batching the skipped cycles
     * into each core's counters and sampling the epoch series at every
     * boundary crossed, so stats are bit-identical to ticking through.
     * Returns the tick of the next iteration to execute (>= next_cpu_at).
     */
    Cycle fastForward(Cycle next_cpu_at);
    /**
     * Instructions @p core may retire inside a fast-forward span
     * before the next threshold run() observes per iteration — the
     * warm-up boundary or the completion target. The crossing
     * iteration itself must execute for real, so core bursts stop
     * short of it; a core already past the current threshold (it is
     * not the min-progress core) is unconstrained.
     */
    InstCount retireCap(const Core &core) const;
    /** @p issue_tick: the tick the core issued the access (the span's
     *  core-issue stage); @p at is when the LLC reported the miss. */
    void startMiss(unsigned core, Addr line, bool is_write, Cycle at,
                   Cycle issue_tick);
    void resetAfterWarmup();
    /** Re-point every channel at the active set of command sinks. */
    void rebuildCommandSinks();
    /** One-shot warning for Chrome trace export + channel threading. */
    void warnIfThreadedTraceExport();
    /** Run identity stamped into span-JSONL meta records. */
    SpanJsonlMeta spanMeta() const;

    SimConfig cfg_;
    std::vector<std::unique_ptr<TraceSource>> ownedTraces_;
    std::vector<TraceSource *> traces_;

    std::unique_ptr<RowClassifier> classifier_;
    std::unique_ptr<AsymmetricLayout> layout_;
    DramTiming timing_;
    std::unique_ptr<ProtocolChecker> checker_;
    std::unique_ptr<CommandTrace> cmdTrace_;
    std::unique_ptr<ChromeTraceWriter> chromeTrace_;
    std::unique_ptr<std::ofstream> traceFile_; ///< backs obs.traceOut
    std::unique_ptr<CommandFanout> cmdFanout_;

    /// @name Request-lifecycle tracing (all null when traceRequests == 0)
    /// @{
    std::unique_ptr<RequestTracer> tracer_;
    std::unique_ptr<RequestSpanFanout> spanFanout_;
    std::unique_ptr<CriticalPathAggregator> spanAgg_;
    std::unique_ptr<SpanJsonlWriter> spanWriter_; ///< backs obs.spansOut
    std::unique_ptr<std::ofstream> spansFile_;
    /** Writers added via attachRequestSpanTrace (tests). */
    std::vector<std::unique_ptr<SpanJsonlWriter>> attachedSpanWriters_;
    /// @}

    std::unique_ptr<EpochSeries> epochs_;
    std::unique_ptr<DramSystem> dram_;
    std::unique_ptr<CacheHierarchy> caches_;
    std::unique_ptr<DasManager> das_;
    std::unique_ptr<MshrFile> mshrs_;
    std::vector<std::unique_ptr<Core>> cores_;

    /** Pending miss events as an explicit min-heap (std::push_heap /
     *  std::pop_heap with greater<>) so checkpoints capture the raw
     *  heap array — identical bytes, identical pop order. */
    std::vector<MissEvent> events_;
    std::uint64_t eventSeq_ = 0;

    /** Scheduled (tick, path) checkpoints still to be taken. */
    std::vector<std::pair<Cycle, std::string>> checkpoints_;
    /** Non-empty: checkpoint here right after the warm-up reset. */
    std::string warmupCheckpointPath_;

    Cycle now_ = 0;
    CacheHierarchy::WritebackSink wbSink_;
    std::uint64_t warmupCycleStamp_ = 0;
    bool warmupDone_ = false;
    /** Chrome-trace + channel-threads warning already emitted. */
    bool warnedThreadedTrace_ = false;

    StatGroup statGroup_;
};

} // namespace dasdram

#endif // DASDRAM_SIM_SYSTEM_HH
