#include "config_cli.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace dasdram
{

void
addConfigOptions(CliParser &cli)
{
    cli.option("--config", "FILE",
               "load a JSON configuration as the new defaults (flags "
               "still override; unknown keys are fatal)")
        .flag("--dump-config",
              "print the effective configuration as JSON and exit");
}

void
loadConfigFile(const CliParser &cli, SimConfig &cfg)
{
    if (!cli.given("--config"))
        return;
    const std::string path = cli.str("--config");
    std::ifstream is(path);
    if (!is)
        fatal("cannot open '{}'", path);
    std::ostringstream ss;
    ss << is.rdbuf();
    cfg = configFromJson(ss.str(), cfg);
}

bool
dumpConfigIfRequested(const CliParser &cli, const SimConfig &cfg)
{
    if (!cli.given("--dump-config"))
        return false;
    std::printf("%s\n", configToJson(cfg).c_str());
    return true;
}

} // namespace dasdram
