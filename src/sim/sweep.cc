#include "sweep.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <ostream>
#include <thread>

#include "common/json.hh"
#include "common/log.hh"

namespace dasdram
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Filename-safe version of a workload/design/label token. */
std::string
sanitizeToken(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '.';
        out.push_back(ok ? c : '_');
    }
    return out;
}

} // namespace

SweepRunner::SweepRunner(SimConfig base, unsigned jobs)
    : base_(std::move(base)), jobs_(resolveJobs(jobs))
{
}

std::size_t
SweepRunner::add(SweepPoint point)
{
    if (point.workload.parts.empty())
        fatal("sweep point '{}' has no workload parts",
              point.workload.name);
    points_.push_back(std::move(point));
    return points_.size() - 1;
}

std::size_t
SweepRunner::add(const WorkloadSpec &workload, DesignKind design,
                 ConfigOverride override, std::string label)
{
    return add(SweepPoint{workload, design, std::move(override),
                          std::move(label)});
}

unsigned
SweepRunner::resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("DAS_JOBS")) {
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn("ignoring invalid DAS_JOBS='{}'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::uint64_t
SweepRunner::pointSeed(std::uint64_t base_seed,
                       const std::string &workload, DesignKind design)
{
    std::uint64_t h = splitmix64(base_seed);
    h = splitmix64(h ^ fnv1a(workload));
    h = splitmix64(h ^ (static_cast<std::uint64_t>(design) + 1));
    // Keep zero out of the space: some components treat 0 specially.
    return h ? h : 1;
}

RunMetrics
SweepRunner::baselineFor(const WorkloadSpec &workload)
{
    std::promise<RunMetrics> promise;
    std::shared_future<RunMetrics> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = baselines_.find(workload.name);
        if (it != baselines_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            baselines_.emplace(workload.name, future);
            owner = true;
        }
    }
    if (owner) {
        // Always from the pristine base config (no point overrides),
        // so the memo content does not depend on which point won the
        // race to compute it.
        SimConfig cfg = base_;
        cfg.design = DesignKind::Standard;
        cfg.seed = pointSeed(base_.seed, workload.name,
                             DesignKind::Standard);
        if (!cfg.obs.statsDir.empty()) {
            cfg.obs.statsOut = cfg.obs.statsDir + "/baseline_" +
                               sanitizeToken(workload.name) + ".jsonl";
        }
        promise.set_value(runSimulation(workload, cfg, "", warmDir_));
    }
    return future.get();
}

ExperimentResult
SweepRunner::runPoint(const SweepPoint &point, std::size_t index)
{
    ExperimentResult res;
    res.workload = point.workload.name;
    res.design = point.design;
    res.label = point.label;
    res.seed =
        pointSeed(base_.seed, point.workload.name, point.design);

    if (point.needBaseline && point.design == DesignKind::Standard &&
        !point.override) {
        // Identical config and seed as the memoised baseline: reuse.
        res.metrics = baselineFor(point.workload);
        res.perfImprovement = 0.0;
    } else {
        SimConfig cfg = base_;
        if (point.override)
            point.override(cfg);
        cfg.design = point.design;
        cfg.seed = res.seed;
        cfg.obs.label = point.label;
        if (!cfg.obs.statsDir.empty()) {
            // Deterministic per-point filename: the submission index
            // disambiguates points that share workload and design.
            std::string name = "point" + std::to_string(index) + "_" +
                               sanitizeToken(point.workload.name) + "_" +
                               sanitizeToken(toString(point.design));
            if (!point.label.empty())
                name += "_" + sanitizeToken(point.label);
            cfg.obs.statsOut = cfg.obs.statsDir + "/" + name + ".jsonl";
        }
        res.metrics = runSimulation(point.workload, cfg, "", warmDir_);
        if (point.needBaseline) {
            res.perfImprovement = weightedSpeedupImprovement(
                res.metrics, baselineFor(point.workload));
        }
    }
    res.energyPerAccessNj = res.metrics.energy.perAccessNj(energyParams_);
    return res;
}

std::vector<ExperimentResult>
SweepRunner::run()
{
    if (ran_)
        fatal("SweepRunner::run called twice");
    ran_ = true;

    std::vector<ExperimentResult> results(points_.size());
    if (points_.empty())
        return results;

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr error;

    auto worker = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= points_.size())
                return;
            try {
                results[i] = runPoint(points_[i], i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!error)
                    error = std::current_exception();
                // Keep draining: other workers may block on a
                // baseline future this point was computing.
            }
        }
    };

    unsigned n = jobs_;
    if (n > points_.size())
        n = static_cast<unsigned>(points_.size());
    std::vector<std::thread> pool;
    pool.reserve(n > 0 ? n - 1 : 0);
    for (unsigned t = 1; t < n; ++t)
        pool.emplace_back(worker);
    worker(); // the calling thread is worker 0
    for (std::thread &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
    return results;
}

std::string
toJsonLine(const ExperimentResult &r)
{
    const RunMetrics &m = r.metrics;
    JsonWriter w;
    w.beginObject()
        .field("workload", r.workload)
        .field("design", toString(r.design))
        .field("label", r.label)
        .field("seed", r.seed)
        .field("perf_improvement", r.perfImprovement)
        .field("energy_per_access_nj", r.energyPerAccessNj);
    w.key("ipc").beginArray();
    for (double v : m.ipc)
        w.value(v);
    w.endArray();
    w.field("cpu_cycles", m.cpuCycles)
        .field("instructions", m.instructions)
        .field("llc_misses", m.llcMisses)
        .field("mem_accesses", m.memAccesses)
        .field("promotions", m.promotions)
        .field("footprint_rows", m.footprintRows)
        .field("mpki", m.mpki())
        .field("ppkm", m.ppkm());
    w.key("locations")
        .beginObject()
        .field("row_buffer", m.locations.rowBuffer)
        .field("fast_level", m.locations.fastLevel)
        .field("slow_level", m.locations.slowLevel)
        .endObject();
    w.key("energy")
        .beginObject()
        .field("acts_slow", m.energy.actsSlow)
        .field("acts_fast", m.energy.actsFast)
        .field("reads", m.energy.reads)
        .field("writes", m.energy.writes)
        .field("refreshes", m.energy.refreshes)
        .field("swaps", m.energy.swaps)
        .endObject();
    w.endObject();
    return w.str();
}

void
writeJsonLines(std::ostream &os,
               const std::vector<ExperimentResult> &results)
{
    for (const ExperimentResult &r : results)
        os << toJsonLine(r) << '\n';
}

} // namespace dasdram
