#include "experiment.hh"

#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>

#include <sys/stat.h>

#include "common/log.hh"
#include "common/strfmt.hh"
#include "core/static_profile.hh"
#include "dram/address_mapping.hh"
#include "workload/trace_file.hh"

namespace dasdram
{

namespace
{

/** `warm_<16 hex digits>.ckpt` under @p dir for fingerprint @p fp. */
std::string
warmCheckpointPath(const std::string &dir, std::uint64_t fp)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(fp));
    return dir + "/warm_" + hex + ".ckpt";
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path, std::ios::binary).good();
}

} // namespace

RunMetrics
runSimulation(const WorkloadSpec &workload, const SimConfig &cfg_in,
              const std::string &record_prefix,
              const std::string &warm_dir)
{
    SimConfig cfg = cfg_in;
    cfg.numCores = workload.numCores();
    cfg.obs.workloadName = workload.name;

    // Deterministic per-(workload, core) traces.
    auto traces = buildTraces(workload, cfg.seed, cfg.geom.rowBytes,
                              cfg.geom.lineBytes);
    std::vector<std::unique_ptr<TraceRecorder>> recorders;
    std::vector<TraceSource *> trace_ptrs;
    for (unsigned i = 0; i < cfg.numCores; ++i) {
        TraceSource *src = traces[i].get();
        if (!record_prefix.empty()) {
            recorders.push_back(std::make_unique<TraceRecorder>(
                *src,
                formatStr("{}.core{}.dastrace", record_prefix, i)));
            src = recorders.back().get();
        }
        trace_ptrs.push_back(src);
    }

    System sys(cfg, trace_ptrs);

    // Warm-start: fork from the shared warmed snapshot of this config
    // fingerprint if one exists, else publish ours once warm-up
    // completes. The temp-file + rename dance keeps concurrent points
    // with the same fingerprint safe: renames are atomic and every
    // writer produces identical bytes (the snapshot is deterministic).
    std::string warm_path, warm_tmp;
    bool restoring = false;
    if (!warm_dir.empty()) {
        if (!record_prefix.empty())
            fatal("trace recording cannot be combined with warm-start "
                  "checkpoints (recorder file positions are not part "
                  "of a snapshot)");
        if (::mkdir(warm_dir.c_str(), 0777) != 0 && errno != EEXIST)
            fatal("cannot create warm-start directory '{}'", warm_dir);
        warm_path = warmCheckpointPath(warm_dir, configFingerprint(cfg));
        restoring = fileExists(warm_path);
        if (!restoring) {
            static std::atomic<unsigned> tmp_seq{0};
            warm_tmp = formatStr("{}.tmp{}", warm_path,
                                 tmp_seq.fetch_add(1));
            sys.checkpointAtWarmup(warm_tmp);
        }
    }

    const DesignSpec &spec = designSpec(cfg.design);
    if (spec.needsProfiling && !restoring) {
        // Profiling pass over the same instruction window (Section 7:
        // workloads are profiled first for the static baselines).
        AddressMapper mapper(cfg.geom);
        StaticProfiler profiler(mapper, sys.layout());
        auto profile_window = static_cast<InstCount>(
            cfg.profileWindowMultiplier *
            static_cast<double>(cfg.instructionsPerCore));
        for (unsigned i = 0; i < cfg.numCores; ++i) {
            profiler.profile(*trace_ptrs[i], profile_window,
                             cfg.coreBase(i));
            trace_ptrs[i]->reset();
        }
        profiler.assign(sys.manager().table());
    }

    if (restoring)
        sys.loadSnapshot(warm_path);

    RunMetrics metrics = sys.run();
    if (!warm_tmp.empty() &&
        std::rename(warm_tmp.c_str(), warm_path.c_str()) != 0)
        fatal("cannot publish warm-start checkpoint '{}'", warm_path);
    for (auto &rec : recorders)
        rec->close();
    return metrics;
}

double
weightedSpeedupImprovement(const RunMetrics &metrics,
                           const RunMetrics &baseline)
{
    if (metrics.ipc.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < metrics.ipc.size(); ++i) {
        double b = i < baseline.ipc.size() ? baseline.ipc[i] : 0.0;
        sum += b > 0.0 ? metrics.ipc[i] / b : 1.0;
    }
    return sum / static_cast<double>(metrics.ipc.size()) - 1.0;
}

ExperimentRunner::ExperimentRunner(SimConfig base) : base_(std::move(base))
{
}

RunMetrics
ExperimentRunner::runRaw(const WorkloadSpec &workload,
                         const SimConfig &cfg_in)
{
    return runSimulation(workload, cfg_in, "", warmDir_);
}

void
ExperimentRunner::invalidateBaselines()
{
    std::lock_guard<std::mutex> lock(mutex_);
    baselines_.clear();
}

RunMetrics
ExperimentRunner::baseline(const WorkloadSpec &workload)
{
    std::promise<RunMetrics> promise;
    std::shared_future<RunMetrics> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = baselines_.find(workload.name);
        if (it != baselines_.end()) {
            future = it->second;
        } else {
            future = promise.get_future().share();
            baselines_.emplace(workload.name, future);
            owner = true;
        }
    }
    if (owner) {
        // Computed outside the lock so other workloads' baselines can
        // progress; late arrivals for this workload block on the
        // future. An invalidate between insert and set_value only
        // drops the memo entry — the shared state stays alive through
        // the futures already handed out.
        SimConfig cfg = base_;
        cfg.design = DesignKind::Standard;
        promise.set_value(runSimulation(workload, cfg, "", warmDir_));
    }
    return future.get();
}

ExperimentResult
ExperimentRunner::run(const WorkloadSpec &workload, DesignKind design)
{
    RunMetrics base = baseline(workload);

    ExperimentResult res;
    res.workload = workload.name;
    res.design = design;
    res.seed = base_.seed;
    if (design == DesignKind::Standard) {
        res.metrics = base;
    } else {
        SimConfig cfg = base_;
        cfg.design = design;
        res.metrics = runSimulation(workload, cfg, "", warmDir_);
    }

    res.perfImprovement = weightedSpeedupImprovement(res.metrics, base);
    res.energyPerAccessNj = res.metrics.energy.perAccessNj(energyParams_);
    return res;
}

double
ExperimentRunner::gmeanImprovement(const std::vector<double> &improvements)
{
    if (improvements.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : improvements)
        log_sum += std::log(std::max(1e-9, 1.0 + x));
    return std::exp(log_sum / static_cast<double>(improvements.size())) -
           1.0;
}

} // namespace dasdram
