#include "system.hh"

#include <algorithm>
#include <limits>
#include <ostream>

#include "common/binfmt.hh"
#include "common/log.hh"
#include "common/stats_jsonl.hh"
#include "workload/workload_spec.hh"

namespace dasdram
{

namespace
{

std::vector<TraceSource *>
rawPointers(const std::vector<std::unique_ptr<TraceSource>> &owned)
{
    std::vector<TraceSource *> ptrs;
    ptrs.reserve(owned.size());
    for (const auto &t : owned)
        ptrs.push_back(t.get());
    return ptrs;
}

/** cfg with numCores forced to the workload spec's part count. */
SimConfig
withSpecCores(SimConfig cfg)
{
    cfg.numCores = WorkloadSpec::parse(cfg.workload).numCores();
    return cfg;
}

} // namespace

System::System(const SimConfig &cfg,
               std::vector<std::unique_ptr<TraceSource>> traces)
    : System(cfg, rawPointers(traces))
{
    ownedTraces_ = std::move(traces);
}

System::System(const SimConfig &cfg)
    : System(withSpecCores(cfg), [&cfg] {
          WorkloadSpec w = WorkloadSpec::parse(cfg.workload);
          return buildTraces(w, cfg.seed, cfg.geom.rowBytes,
                             cfg.geom.lineBytes);
      }())
{
}

System::System(const SimConfig &cfg, std::vector<TraceSource *> traces)
    : cfg_(cfg), traces_(std::move(traces)), statGroup_("system")
{
    if (traces_.size() != cfg_.numCores)
        fatal("system needs one trace per core ({} vs {})",
              traces_.size(), cfg_.numCores);

    const DesignSpec &spec = designSpec(cfg_.design);
    timing_ = ddr3_1600Timing(spec.charmColumnOpt);
    layout_ = std::make_unique<AsymmetricLayout>(cfg_.geom, cfg_.layout);

    if (spec.allFast)
        classifier_ =
            std::make_unique<UniformRowClassifier>(RowClass::Fast);
    else if (!spec.heterogeneous)
        classifier_ =
            std::make_unique<UniformRowClassifier>(RowClass::Slow);
    const RowClassifier &cls =
        classifier_ ? static_cast<const RowClassifier &>(*classifier_)
                    : static_cast<const RowClassifier &>(*layout_);

    cfg_.ctrl.histograms = cfg_.obs.histograms;
    dram_ = std::make_unique<DramSystem>(cfg_.geom, timing_, cls,
                                         cfg_.ctrl);
    dram_->setChannelThreads(cfg_.channelThreads);
    if (cfg_.protocolCheck) {
        // The checker gets the same row-class oracle as the controller,
        // so the class stamped on every ACT is cross-checked, and an
        // independent copy of the reference timing.
        checker_ = std::make_unique<ProtocolChecker>(cfg_.geom, timing_,
                                                     &cls);
    }
    if (!cfg_.obs.traceOut.empty()) {
        traceFile_ = std::make_unique<std::ofstream>(cfg_.obs.traceOut);
        if (!*traceFile_)
            fatal("cannot open '{}' for writing", cfg_.obs.traceOut);
        chromeTrace_ = std::make_unique<ChromeTraceWriter>(
            *traceFile_, cfg_.geom, timing_);
    }
    rebuildCommandSinks();
    warnIfThreadedTraceExport();
    caches_ = std::make_unique<CacheHierarchy>(cfg_.numCores, cfg_.caches,
                                               cfg_.seed);

    DasConfig dcfg = cfg_.das;
    dcfg.mode = spec.mode;
    dcfg.zeroMigrationLatency = spec.zeroMigrationLatency;
    dcfg.llcLatencyTicks = cpuCyclesToTicks(cfg_.caches.llcLatencyCpu);
    das_ = std::make_unique<DasManager>(*dram_, caches_.get(), *layout_,
                                        dcfg);

    mshrs_ = std::make_unique<MshrFile>(cfg_.mshrsPerCore * cfg_.numCores);

    wbSink_ = [this](Addr line) {
        std::unique_ptr<RequestSpan> span;
        if (tracer_) {
            span = tracer_->maybeStart();
            if (span) {
                span->core = -1;
                span->addr = line;
                span->isWrite = true;
                span->issueTick = now_;
                span->missTick = now_;
            }
        }
        das_->access(line, /*is_write=*/true, /*core=*/-1,
                     Continuation{}, now_, std::move(span));
    };

    // Both asynchronous completion paths — MSHR waiters and DAS
    // demand/walk completions — deliver serialisable Continuation
    // tokens to the one interpreter, so a restored snapshot resumes
    // in-flight work by reinstalling these two hooks.
    mshrs_->setDispatcher(
        [this](const Continuation &cont, Addr, Cycle t) {
            dispatchContinuation(cont, t);
        });
    das_->setCompletionHook([this](const Continuation &cont, Cycle t) {
        dispatchContinuation(cont, t);
    });

    for (unsigned i = 0; i < cfg_.numCores; ++i) {
        Addr base = cfg_.coreBase(i);
        cores_.push_back(std::make_unique<Core>(
            static_cast<int>(i), cfg_.core, *traces_[i],
            [this, i, base](Addr a, bool w, unsigned slot) {
                handleCoreAccess(i, a + base, w, slot);
            }));
        statGroup_.addChild(&cores_.back()->stats());
    }
    statGroup_.addChild(&caches_->stats());
    statGroup_.addChild(&das_->stats());
    statGroup_.addChild(&dram_->stats());
    statGroup_.addChild(&mshrs_->stats());

    if (cfg_.obs.traceRequests > 0.0) {
        // Request-lifecycle tracing: one deterministic sampler shared
        // by every request-creation point (demand misses, writebacks,
        // table walks), completed spans fanned out to the in-sim
        // aggregator and the optional JSONL export. Registered before
        // the epoch series so its stats ride the time-series too.
        tracer_ = std::make_unique<RequestTracer>(cfg_.seed,
                                                  cfg_.obs.traceRequests);
        das_->setRequestTracer(tracer_.get());
        spanFanout_ = std::make_unique<RequestSpanFanout>();
        spanAgg_ =
            std::make_unique<CriticalPathAggregator>(cfg_.numCores);
        spanFanout_->addSink(spanAgg_.get());
        if (!cfg_.obs.spansOut.empty()) {
            spansFile_ =
                std::make_unique<std::ofstream>(cfg_.obs.spansOut);
            if (!*spansFile_)
                fatal("cannot open '{}' for writing", cfg_.obs.spansOut);
            spanWriter_ = std::make_unique<SpanJsonlWriter>(*spansFile_,
                                                            spanMeta());
            spanFanout_->addSink(spanWriter_.get());
        }
        dram_->setRequestTraceSink(spanFanout_.get());
        statGroup_.addChild(&spanAgg_->stats());
    } else if (!cfg_.obs.spansOut.empty()) {
        fatal("obs.spansOut ('{}') requires obs.traceRequests > 0",
              cfg_.obs.spansOut);
    }

    if (chromeTrace_)
        das_->setEventSink(chromeTrace_.get());
    if (cfg_.obs.epochMemCycles > 0) {
        epochs_ = std::make_unique<EpochSeries>(statGroup_,
                                                cfg_.obs.epochMemCycles);
    }
}

System::~System() = default;

SpanJsonlMeta
System::spanMeta() const
{
    SpanJsonlMeta meta;
    meta.workload = cfg_.obs.workloadName;
    meta.design = toString(cfg_.design);
    meta.label = cfg_.obs.label;
    meta.seed = cfg_.seed;
    meta.rate = cfg_.obs.traceRequests;
    return meta;
}

void
System::rebuildCommandSinks()
{
    CommandSink *single = nullptr;
    unsigned active = 0;
    for (CommandSink *s :
         {static_cast<CommandSink *>(checker_.get()),
          static_cast<CommandSink *>(cmdTrace_.get()),
          static_cast<CommandSink *>(chromeTrace_.get())}) {
        if (s) {
            single = s;
            ++active;
        }
    }
    if (active <= 1) {
        dram_->setCommandSink(single);
        return;
    }
    cmdFanout_ = std::make_unique<CommandFanout>();
    cmdFanout_->addSink(checker_.get());
    cmdFanout_->addSink(cmdTrace_.get());
    cmdFanout_->addSink(chromeTrace_.get());
    dram_->setCommandSink(cmdFanout_.get());
}

void
System::warnIfThreadedTraceExport()
{
    if (!chromeTrace_ || cfg_.channelThreads <= 1 || warnedThreadedTrace_)
        return;
    warnedThreadedTrace_ = true;
    warn("--trace-out with --channel-threads={}: command records are "
         "buffered per channel during parallel spans and stable-sorted "
         "by cycle before the trace writer sees them, so the export is "
         "deterministic but the writer only observes merged order",
         cfg_.channelThreads);
}

void
System::attachCommandTrace(std::ostream &os)
{
    cmdTrace_ = std::make_unique<CommandTrace>(os);
    rebuildCommandSinks();
}

void
System::attachChromeTrace(std::ostream &os)
{
    chromeTrace_ =
        std::make_unique<ChromeTraceWriter>(os, cfg_.geom, timing_);
    das_->setEventSink(chromeTrace_.get());
    rebuildCommandSinks();
    warnIfThreadedTraceExport();
}

void
System::attachRequestSpanTrace(std::ostream &os)
{
    if (!tracer_)
        fatal("attachRequestSpanTrace requires cfg.obs.traceRequests > 0");
    attachedSpanWriters_.push_back(
        std::make_unique<SpanJsonlWriter>(os, spanMeta()));
    spanFanout_->addSink(attachedSpanWriters_.back().get());
}

void
System::handleCoreAccess(unsigned core, Addr addr, bool is_write,
                         unsigned slot)
{
    CacheAccessResult res = caches_->access(core, addr, is_write, wbSink_);
    if (res.level != HitLevel::Miss) {
        if (slot != Continuation::kNoSlot)
            cores_[core]->completeLoad(slot, now_ + res.latencyTicks);
        return;
    }
    MissEvent ev;
    ev.at = now_ + res.latencyTicks;
    ev.seq = eventSeq_++;
    ev.core = core;
    ev.slot = slot;
    ev.line = res.lineAddr;
    ev.isWrite = is_write;
    ev.issueTick = now_; // core-issue stage of a sampled span
    events_.push_back(ev);
    std::push_heap(events_.begin(), events_.end(),
                   std::greater<MissEvent>{});
}

void
System::runMissEvent(const MissEvent &ev)
{
    startMiss(ev.core, ev.line, ev.isWrite, now_, ev.issueTick);
    // Register this access's waiter after startMiss ensured an MSHR
    // entry exists (or will retry below).
    if (mshrs_->outstanding(ev.line)) {
        mshrs_->addWaiter(ev.line,
                          ev.slot != Continuation::kNoSlot
                              ? Continuation::coreLoad(ev.core, ev.slot)
                              : Continuation{});
    } else {
        // MSHR file full and allocation deferred: complete the load
        // pessimistically when the retry path resolves. To keep
        // bookkeeping simple we retry the whole access.
        handleCoreAccess(ev.core, ev.line, ev.isWrite, ev.slot);
    }
}

void
System::dispatchContinuation(const Continuation &cont, Cycle at)
{
    switch (cont.kind) {
      case Continuation::Kind::None:
        return;
      case Continuation::Kind::CoreLoad:
        cores_[cont.core]->completeLoad(cont.slot, at);
        return;
      case Continuation::Kind::DemandFill:
        caches_->fill(cont.core, cont.line, cont.isWrite, wbSink_);
        mshrs_->complete(cont.line, at);
        return;
    }
    panic("unknown continuation kind {}",
          static_cast<unsigned>(cont.kind));
}

void
System::startMiss(unsigned core, Addr line, bool is_write, Cycle at,
                  Cycle issue_tick)
{
    if (mshrs_->outstanding(line))
        return; // coalesced; fill in flight
    if (mshrs_->full())
        return; // caller retries
    mshrs_->allocate(line);
    // Sample at MSHR allocation: the set of allocations (and their
    // order) is already proven identical across engines and channel
    // threading, so the sampled subset is too.
    std::unique_ptr<RequestSpan> span;
    if (tracer_) {
        span = tracer_->maybeStart();
        if (span) {
            span->core = static_cast<int>(core);
            span->addr = line;
            span->issueTick = issue_tick;
            span->missTick = at;
        }
    }
    das_->access(line, /*is_write=*/false, static_cast<int>(core),
                 Continuation::demandFill(core, line, is_write), at,
                 std::move(span));
}

void
System::resetAfterWarmup()
{
    warmupDone_ = true;
    statGroup_.resetAll();
    das_->resetStats();
    warmupCycleStamp_ = now_;
    if (epochs_)
        epochs_->restart(now_ / kMemTick);
}

namespace
{

/** First multiple of kCpuTick at or after @p t (the CPU clock edge the
 *  tick loop would observe @p t on). */
Cycle
roundUpToCpuTick(Cycle t)
{
    return (t + kCpuTick - 1) / kCpuTick * kCpuTick;
}

/** Bound on one burst lookahead, so a single fastForward call stays
 *  O(bounded) even against a multi-million-instruction compute gap;
 *  the next call simply continues the burst. */
constexpr std::uint64_t kMaxBurstCycles = 1u << 16;

} // namespace

InstCount
System::retireCap(const Core &core) const
{
    const InstCount warmup = cfg_.warmupInstructions();
    const InstCount target = cfg_.instructionsPerCore;
    // Mirrors run(): before the warm-up reset the next observed
    // threshold is min(warmup, target); after it, target minus the
    // retired-count base the reset established.
    const InstCount threshold =
        warmupDone_ ? target - warmup : std::min(warmup, target);
    const InstCount done = core.retired();
    return done < threshold ? threshold - done
                            : std::numeric_limits<InstCount>::max();
}

Cycle
System::fastForward(Cycle next_cpu_at)
{
    // Cheapest horizons first, bailing out the moment the very next
    // iteration is known to be active: on busy stretches (any core
    // dispatching a memory instruction) this costs a few comparisons,
    // and the DRAM horizon — a scan over queues and banks — is only
    // computed when a real skip is possible.
    Cycle stop = kCycleMax;
    bool any_burst = false;
    for (const auto &core : cores_) {
        Cycle h = core->nextEventTick(now_);
        if (h <= next_cpu_at) {
            // Dispatch- or retire-active — but stretches of pure
            // gap-bubble flow are batchable. Probe one cycle: if even
            // that needs a real tick (a memory dispatch or a trace
            // refill is due), no skip is possible. The full burst
            // lookahead is deferred until the other horizons have
            // bounded the span, so its cost is proportional to the
            // cycles actually skipped, not to the burst's length.
            if (core->burstCycles(next_cpu_at, 1, retireCap(*core),
                                  /*apply=*/false) == 0)
                return next_cpu_at;
            any_burst = true;
            continue;
        }
        stop = std::min(stop, h);
    }
    if (!events_.empty())
        stop = std::min(stop, events_.front().at);
    // A scheduled checkpoint must be taken at its exact loop top, so
    // never skip across one.
    if (!checkpoints_.empty())
        stop = std::min(stop, roundUpToCpuTick(nextCheckpointTick()));
    if (stop <= next_cpu_at)
        return next_cpu_at;
    stop = std::min(stop, das_->nextWakeTick(now_));
    if (stop <= next_cpu_at)
        return next_cpu_at;
    stop = std::min(stop, dram_->nextWakeTick(now_));
    if (stop <= next_cpu_at)
        return next_cpu_at;
    if (stop == kCycleMax && !any_burst) {
        panic("event engine: no component has a future event at tick "
              "{} (cores blocked forever?)",
              now_);
    }
    if (any_burst)
        stop = std::min(stop, next_cpu_at + kMaxBurstCycles * kCpuTick);
    stop = roundUpToCpuTick(stop);

    // Burst-active cores bound the span to however many pure
    // gap-bubble cycles they can batch; the slicing loop then applies
    // exactly that many, so the lookahead never walks past `stop`.
    if (any_burst) {
        for (const auto &core : cores_) {
            if (core->nextEventTick(now_) > next_cpu_at)
                continue;
            std::uint64_t span = (stop - next_cpu_at) / kCpuTick;
            std::uint64_t n = core->burstCycles(
                next_cpu_at, span, retireCap(*core), /*apply=*/false);
            if (n < span)
                stop = next_cpu_at + n * kCpuTick;
        }
    }

    // Skip the iterations at [next_cpu_at, stop), slicing at every
    // epoch boundary so each epoch observes exactly the per-core
    // cycle, instruction and stall counts the tick engine would have
    // accumulated by that boundary. Each core first replays its
    // batchable gap-bubble cycles (bounded by its horizon above) and
    // accounts the rest as a stall; nothing else changes on skipped
    // cycles: there is no due event, no DAS retry, and the DRAM
    // horizon guarantees its internal catch-up would not issue a
    // command below `stop`.
    while (next_cpu_at < stop) {
        Cycle slice_end = stop; // exclusive: iteration at stop runs
        bool at_boundary = false;
        if (epochs_) {
            Cycle b_tick = roundUpToCpuTick(
                epochs_->nextBoundaryCycle() * kMemTick);
            if (b_tick < slice_end) {
                slice_end = b_tick + kCpuTick; // include the boundary
                at_boundary = true;
            }
        }
        std::uint64_t n = (slice_end - next_cpu_at) / kCpuTick;
        for (const auto &core : cores_) {
            std::uint64_t m = core->burstCycles(
                next_cpu_at, n, retireCap(*core), /*apply=*/true);
            core->skipCycles(n - m);
        }
        next_cpu_at = slice_end;
        if (at_boundary)
            epochs_->maybeSample((slice_end - kCpuTick) / kMemTick);
    }

    // Advance the DRAM clock through the skipped span, exactly as the
    // tick loop's per-iteration dram tick would have (a pure clock
    // advance: the horizon guarantees no channel has work below stop).
    // Without this, a request submitted by an event at `stop` would be
    // visible to the memory cycles of the skipped span when the next
    // dram tick catches up across it — issuing commands earlier than
    // the tick engine, which had already passed those cycles.
    dram_->tick(stop - kCpuTick);
    return stop;
}

RunMetrics
System::run()
{
    const InstCount warmup = cfg_.warmupInstructions();
    const InstCount target = cfg_.instructionsPerCore;
    const bool event_engine = cfg_.engine == SimEngine::Event;
    // A restored snapshot resumes at the loop top it was saved at;
    // warmup_retired_base is reconstructible (run() always sets it to
    // `warmup` at the reset), so it is not serialised.
    Cycle next_cpu_at = now_;
    InstCount warmup_retired_base = warmupDone_ ? warmup : 0;

    auto min_retired = [this]() {
        InstCount m = kCycleMax;
        for (const auto &c : cores_)
            m = std::min(m, c->retired());
        return m;
    };

    while (true) {
        now_ = next_cpu_at;

        if (!checkpoints_.empty())
            maybeCheckpoint();

        while (!events_.empty() && events_.front().at <= now_) {
            MissEvent ev = events_.front();
            std::pop_heap(events_.begin(), events_.end(),
                          std::greater<MissEvent>{});
            events_.pop_back();
            runMissEvent(ev);
        }

        das_->tick(now_);
        dram_->tick(now_);
        for (auto &core : cores_)
            core->tick(now_);
        if (epochs_)
            epochs_->maybeSample(now_ / kMemTick);

        next_cpu_at += kCpuTick;

        InstCount done = min_retired();
        if (!warmupDone_) {
            if (done >= warmup) {
                resetAfterWarmup();
                warmup_retired_base = warmup;
                if (!warmupCheckpointPath_.empty()) {
                    // Tick 0 is already past: the snapshot is taken at
                    // the next loop top, a deterministic iteration
                    // boundary just after the statistics reset.
                    checkpoints_.emplace_back(
                        0, std::move(warmupCheckpointPath_));
                    warmupCheckpointPath_.clear();
                }
            }
        }
        if (done >= target - (warmupDone_ ? warmup_retired_base : 0))
            break;

        // Retirement (and hence the warm-up and completion conditions
        // above) only changes on active iterations, so fast-forwarding
        // here cannot jump over either threshold.
        if (event_engine)
            next_cpu_at = fastForward(next_cpu_at);
    }

    for (const auto &cp : checkpoints_) {
        warn("checkpoint '{}' scheduled at tick {} was never taken: "
             "the run ended at tick {}",
             cp.second, cp.first, now_);
    }
    if (!warmupCheckpointPath_.empty()) {
        warn("warm-up checkpoint '{}' was never taken: the run ended "
             "before warm-up completed",
             warmupCheckpointPath_);
    }

    RunMetrics m;
    m.cpuCycles = cores_[0]->cycles();
    for (const auto &c : cores_) {
        m.ipc.push_back(c->ipc());
        m.instructions += c->retired();
    }
    // Unique line fills, not raw lookup misses: accesses to a line
    // whose fill is already in flight coalesce in the MSHRs and are not
    // separate memory misses.
    m.llcMisses = mshrs_->allocations();
    m.locations = das_->locations();
    m.promotions = das_->promotions();
    m.memAccesses = das_->demandAccesses();
    m.footprintRows = das_->footprintRows();
    m.energy = dram_->energyBreakdown();

    if (epochs_)
        epochs_->flush(now_ / kMemTick);
    if (chromeTrace_)
        chromeTrace_->finish();
    if (spansFile_)
        spansFile_->flush();
    if (!cfg_.obs.statsOut.empty()) {
        std::ofstream os(cfg_.obs.statsOut);
        if (!os)
            fatal("cannot open '{}' for writing", cfg_.obs.statsOut);
        writeStatsJsonl(os);
    }

    if (checker_ && checker_->violationCount() > 0) {
        panic("DRAM protocol checker found {} violation(s) over {} "
              "commands; first: {}",
              checker_->violationCount(), checker_->commandCount(),
              checker_->firstViolation());
    }
    return m;
}

void
System::scheduleCheckpoint(Cycle tick, std::string path)
{
    checkpoints_.emplace_back(tick, std::move(path));
}

void
System::checkpointAtWarmup(std::string path)
{
    if (warmupDone_)
        fatal("checkpointAtWarmup: warm-up already completed");
    warmupCheckpointPath_ = std::move(path);
}

Cycle
System::nextCheckpointTick() const
{
    Cycle t = kCycleMax;
    for (const auto &[tick, path] : checkpoints_)
        t = std::min(t, tick);
    return t;
}

void
System::maybeCheckpoint()
{
    for (std::size_t i = 0; i < checkpoints_.size();) {
        if (checkpoints_[i].first <= now_) {
            saveSnapshot(checkpoints_[i].second);
            checkpoints_.erase(checkpoints_.begin() +
                               static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
}

void
System::serdeState(Archive &ar)
{
    ar.section("system");
    ar.io(now_);
    ar.io(eventSeq_);
    ar.io(warmupDone_);
    ar.io(warmupCycleStamp_);

    // The pending miss events round-trip as the raw heap array, so
    // the restored heap pops in exactly the straight run's order.
    std::uint64_t n_events = events_.size();
    ar.io(n_events);
    if (ar.loading())
        events_.resize(static_cast<std::size_t>(n_events));
    for (MissEvent &ev : events_)
        ev.serdeState(ar);

    ar.expectCount(traces_.size(), "trace sources");
    for (TraceSource *t : traces_)
        t->serdeState(ar);
    ar.expectCount(cores_.size(), "cores");
    for (auto &c : cores_)
        c->serdeState(ar);
    caches_->serdeState(ar);
    mshrs_->serdeState(ar);
    das_->serdeState(ar);
    dram_->serdeState(ar);

    // Optional components: presence is config-derived and already
    // pinned by the fingerprint; these gates turn a serde bug into a
    // named error instead of a desync.
    bool has_checker = checker_ != nullptr;
    ar.io(has_checker);
    if (has_checker != (checker_ != nullptr))
        fatal("checkpoint: protocol-checker presence mismatch");
    if (checker_)
        checker_->serdeState(ar);
    bool has_tracer = tracer_ != nullptr;
    ar.io(has_tracer);
    if (has_tracer != (tracer_ != nullptr))
        fatal("checkpoint: request-tracer presence mismatch");
    if (tracer_) {
        tracer_->serdeState(ar);
        spanAgg_->serdeState(ar);
    }
    bool has_epochs = epochs_ != nullptr;
    ar.io(has_epochs);
    if (has_epochs != (epochs_ != nullptr))
        fatal("checkpoint: epoch-series presence mismatch");
    if (epochs_)
        epochs_->serdeState(ar);

    // Every registered statistic (cores, caches, DAS, DRAM, MSHRs,
    // span aggregator, nested groups) in registration order.
    statGroup_.serdeTree(ar);
    ar.end();
}

void
System::saveSnapshot(const std::string &path)
{
    Archive ar;
    std::uint64_t fp = configFingerprint(cfg_);
    ar.io(fp);
    serdeState(ar);
    std::string err = binfmt::writeEnvelopeFile(
        path, kSnapshotMagic, kSnapshotVersion, ar.take());
    if (!err.empty())
        fatal("checkpoint '{}': {}", path, err);
}

void
System::loadSnapshot(const std::string &path)
{
    binfmt::EnvelopeResult env = binfmt::readEnvelopeFile(
        path, kSnapshotMagic, kSnapshotVersion, "checkpoint");
    if (!env.ok())
        fatal("checkpoint '{}': {}", path, env.error);
    Archive ar(std::move(env.payload));
    std::uint64_t fp = 0;
    ar.io(fp);
    const std::uint64_t want = configFingerprint(cfg_);
    if (fp != want) {
        fatal("checkpoint '{}': config fingerprint mismatch ({} in "
              "file, {} for this configuration) — a restore needs the "
              "same state-shaping configuration the checkpoint was "
              "taken with (export paths, engine and channel threading "
              "may differ)",
              path, fp, want);
    }
    serdeState(ar);
    ar.finish();
    // Reinstall the completion callbacks of requests and migrations
    // still in flight inside the DRAM system.
    das_->rebindInFlight();
}

void
System::dumpStats(std::ostream &os) const
{
    statGroup_.dump(os);
}

void
System::writeStatsJsonl(std::ostream &os) const
{
    StatsJsonlMeta meta;
    meta.workload = cfg_.obs.workloadName;
    meta.design = toString(cfg_.design);
    meta.label = cfg_.obs.label;
    meta.seed = cfg_.seed;
    meta.instructions = cfg_.instructionsPerCore;
    meta.epochCycles = epochs_ ? epochs_->epochLength() : 0;
    dasdram::writeStatsJsonl(os, statGroup_, epochs_.get(), meta);

    // Cross-channel rollups: the per-row-class read-latency picture
    // the paper's analysis needs, without making consumers merge
    // per-channel histograms themselves.
    Histogram read_all, read_row_hit, read_fast, read_slow, write_all;
    Distribution bank_read;
    for (unsigned c = 0; c < dram_->numChannels(); ++c) {
        const ChannelController &ch = dram_->channel(c);
        read_row_hit.merge(
            ch.readLatencyHistogram(ServiceLocation::RowBuffer));
        read_fast.merge(
            ch.readLatencyHistogram(ServiceLocation::FastLevel));
        read_slow.merge(
            ch.readLatencyHistogram(ServiceLocation::SlowLevel));
        write_all.merge(ch.writeLatencyHistogram());
        bank_read.merge(ch.mergedBankReadLatency());
    }
    read_all.merge(read_row_hit);
    read_all.merge(read_fast);
    read_all.merge(read_slow);

    StatGroup rollup("rollup");
    rollup.addHistogram("readLatency", &read_all,
                        "read latency, all classes, mem cycles");
    rollup.addHistogram("readLatencyRowHit", &read_row_hit,
                        "read latency, row-buffer hits, mem cycles");
    rollup.addHistogram("readLatencyFast", &read_fast,
                        "read latency, fast subarrays, mem cycles");
    rollup.addHistogram("readLatencySlow", &read_slow,
                        "read latency, slow subarrays, mem cycles");
    rollup.addHistogram("writeLatency", &write_all,
                        "write latency, mem cycles");
    rollup.addDistribution("bankReadLatency", &bank_read,
                           "per-bank read latency merged system-wide");
    writeStatsJsonlGroup(os, rollup);
}

} // namespace dasdram
