/**
 * @file
 * Simulation engine selection. The tick engine advances one CPU cycle
 * at a time and is the reference; the event engine skips directly to
 * the next component horizon (ROB-head retire, DRAM command, pending
 * DAS retry, scheduled event, epoch boundary) and is required to be
 * bit-identical to the tick engine — same command stream, same cycle
 * stamps, same statistics. The differential suite
 * (tests/sim/test_engine_equivalence.cc, `ctest -L differential`)
 * enforces that equivalence over the full fuzz design×corner matrix.
 */

#ifndef DASDRAM_SIM_ENGINE_HH
#define DASDRAM_SIM_ENGINE_HH

#include <string>

namespace dasdram
{

/** Simulation engine driving the main loop. */
enum class SimEngine
{
    Tick,  ///< one CPU cycle per iteration (reference semantics)
    Event, ///< skip to the minimum component horizon (default)
};

const char *toString(SimEngine e);

/** Parse "tick" or "event"; fatal() on anything else. */
SimEngine parseEngine(const std::string &name);

} // namespace dasdram

#endif // DASDRAM_SIM_ENGINE_HH
