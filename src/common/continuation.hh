/**
 * @file
 * Serialisable completion tokens.
 *
 * The simulator's asynchronous plumbing (core load completions, MSHR
 * waiters, DAS demand fills) used to be `std::function` closures —
 * impossible to checkpoint. A Continuation is the closed-world
 * replacement: a small POD naming *what* should happen when a memory
 * event completes, interpreted by a dispatcher the owning System
 * installs at construction. Because the token carries data only, it
 * round-trips through an Archive, and a restored simulation rebinds
 * behaviour simply by constructing the same dispatcher again.
 */

#ifndef DASDRAM_COMMON_CONTINUATION_HH
#define DASDRAM_COMMON_CONTINUATION_HH

#include <cstdint>

#include "common/serde.hh"
#include "common/types.hh"

namespace dasdram
{

/** What to do when the event this token rides on completes. */
struct Continuation
{
    enum class Kind : std::uint8_t
    {
        None = 0,       ///< nothing (stores, fire-and-forget traffic)
        CoreLoad = 1,   ///< wake ROB slot @c slot of core @c core
        DemandFill = 2, ///< fill @c line into core @c core's caches and
                        ///< complete the MSHR entry
    };

    /** Core::MemAccessFn slot argument for non-load accesses. */
    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

    Kind kind = Kind::None;
    std::uint32_t core = 0;
    std::uint32_t slot = kNoSlot; ///< ROB slot index (CoreLoad)
    Addr line = 0;                ///< line address (DemandFill)
    bool isWrite = false;         ///< fill writability (DemandFill)

    static Continuation
    coreLoad(std::uint32_t core, std::uint32_t slot)
    {
        Continuation c;
        c.kind = Kind::CoreLoad;
        c.core = core;
        c.slot = slot;
        return c;
    }

    static Continuation
    demandFill(std::uint32_t core, Addr line, bool is_write)
    {
        Continuation c;
        c.kind = Kind::DemandFill;
        c.core = core;
        c.line = line;
        c.isWrite = is_write;
        return c;
    }

    void
    serdeState(Archive &ar)
    {
        ar.io(kind);
        ar.io(core);
        ar.io(slot);
        ar.io(line);
        ar.io(isWrite);
    }
};

} // namespace dasdram

#endif // DASDRAM_COMMON_CONTINUATION_HH
