/**
 * @file
 * Minimal std::format-like string formatting for toolchains without
 * <format> (libstdc++ < 13). Supports "{}" placeholders and a subset of
 * format specs: "{:d}", "{:.Nf}", "{:.Ne}", "{:x}", width via "{:Nd}".
 * Unmatched braces are emitted literally; excess placeholders are left
 * as-is; excess arguments are ignored.
 */

#ifndef DASDRAM_COMMON_STRFMT_HH
#define DASDRAM_COMMON_STRFMT_HH

#include <iomanip>
#include <sstream>
#include <string>
#include <string_view>

namespace dasdram
{

namespace fmt_detail
{

template <typename T>
void
appendOne(std::string &out, std::string_view spec, const T &value)
{
    std::ostringstream oss;
    if (!spec.empty()) {
        std::size_t i = 0;
        if (i < spec.size() && spec[i] == '0') {
            oss << std::setfill('0');
            ++i;
        }
        std::size_t width = 0;
        while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
            width = width * 10 + static_cast<std::size_t>(spec[i] - '0');
            ++i;
        }
        if (width)
            oss << std::setw(static_cast<int>(width));
        if (i < spec.size() && spec[i] == '.') {
            ++i;
            int prec = 0;
            while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
                prec = prec * 10 + (spec[i] - '0');
                ++i;
            }
            oss << std::setprecision(prec);
        }
        if (i < spec.size()) {
            switch (spec[i]) {
              case 'f':
                oss << std::fixed;
                break;
              case 'e':
                oss << std::scientific;
                break;
              case 'x':
                oss << std::hex;
                break;
              case 'd':
              default:
                break;
            }
        }
    }
    oss << value;
    out += oss.str();
}

inline void
formatRec(std::string &out, std::string_view fmt)
{
    // No arguments left: still honour "{{" / "}}" escapes.
    for (std::size_t i = 0; i < fmt.size(); ++i) {
        if ((fmt[i] == '{' || fmt[i] == '}') && i + 1 < fmt.size() &&
            fmt[i + 1] == fmt[i]) {
            out += fmt[i];
            ++i;
            continue;
        }
        out += fmt[i];
    }
}

template <typename T, typename... Rest>
void
formatRec(std::string &out, std::string_view fmt, const T &first,
          const Rest &...rest)
{
    for (std::size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] == '{') {
            if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
                out += '{';
                ++i;
                continue;
            }
            std::size_t close = fmt.find('}', i);
            if (close == std::string_view::npos) {
                out.append(fmt.substr(i));
                return;
            }
            std::string_view spec = fmt.substr(i + 1, close - i - 1);
            if (!spec.empty() && spec.front() == ':')
                spec.remove_prefix(1);
            appendOne(out, spec, first);
            formatRec(out, fmt.substr(close + 1), rest...);
            return;
        }
        if (fmt[i] == '}' && i + 1 < fmt.size() && fmt[i + 1] == '}') {
            out += '}';
            ++i;
            continue;
        }
        out += fmt[i];
    }
}

} // namespace fmt_detail

/** Format @p fmt with "{}"-style placeholders. */
template <typename... Args>
std::string
formatStr(std::string_view fmt, const Args &...args)
{
    std::string out;
    out.reserve(fmt.size() + 16 * sizeof...(args));
    fmt_detail::formatRec(out, fmt, args...);
    return out;
}

} // namespace dasdram

#endif // DASDRAM_COMMON_STRFMT_HH
