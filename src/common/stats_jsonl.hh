/**
 * @file
 * Schema-versioned machine-readable stats export: one JSON object per
 * line (JSONL), consumable by jsonl_diff / dasdram_compare and by
 * tools/dasdram_report.
 *
 * Record types (field "type"):
 *   meta    — first line; schema name/version plus run identity
 *             (workload, design, label, seed, instructions,
 *             epoch_cycles).
 *   counter — {"type":"counter","name":N,"value":V}
 *   dist    — {"type":"dist","name":N,"count","mean","min","max","sum"}
 *   hist    — {"type":"hist","name":N,"count","mean","min","max",
 *              "p50","p90","p99","p999","buckets":[[lo,hi,count],...]}
 *             (non-empty buckets only; lo inclusive, hi exclusive)
 *   formula — {"type":"formula","name":N,"value":V}
 *   epoch   — {"type":"epoch","index":I,"start":C,"end":C,
 *              "values":{name:delta,...}} (non-zero deltas only)
 *
 * Bump kStatsJsonlVersion whenever a record shape changes
 * incompatibly; readers should check meta.version.
 */

#ifndef DASDRAM_COMMON_STATS_JSONL_HH
#define DASDRAM_COMMON_STATS_JSONL_HH

#include <ostream>
#include <string>

#include "common/epoch_series.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dasdram
{

constexpr int kStatsJsonlVersion = 1;
constexpr const char *kStatsJsonlSchema = "dasdram-stats";

/** Run identity written into the leading meta record. */
struct StatsJsonlMeta
{
    std::string workload;
    std::string design;
    std::string label;
    std::uint64_t seed = 0;
    std::uint64_t instructions = 0;
    /** Epoch length in memory-controller cycles; 0 = epochs disabled. */
    Cycle epochCycles = 0;
};

/**
 * Write the whole stat tree under @p root (and the epoch series, when
 * non-null) to @p os as JSONL. Deterministic: same stats in, same
 * bytes out.
 */
void writeStatsJsonl(std::ostream &os, const StatGroup &root,
                     const EpochSeries *epochs,
                     const StatsJsonlMeta &meta);

/**
 * Append just the stat records of @p group (no meta line, no epochs);
 * for writers that add derived groups — e.g. cross-channel rollups —
 * to a dump started with writeStatsJsonl().
 */
void writeStatsJsonlGroup(std::ostream &os, const StatGroup &group);

} // namespace dasdram

#endif // DASDRAM_COMMON_STATS_JSONL_HH
