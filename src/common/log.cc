#include "log.hh"

#include <cstdio>

namespace dasdram
{

namespace log_detail
{

LogLevel &
currentLevel()
{
    static LogLevel level = LogLevel::Normal;
    return level;
}

void
emit(std::string_view tag, std::string_view msg)
{
    std::fprintf(stderr, "[%.*s] %.*s\n", static_cast<int>(tag.size()),
                 tag.data(), static_cast<int>(msg.size()), msg.data());
}

void
die(std::string_view tag, std::string_view msg, bool abort_process)
{
    emit(tag, msg);
    if (abort_process)
        std::abort();
    std::exit(1);
}

} // namespace log_detail

LogLevel
setLogLevel(LogLevel level)
{
    LogLevel prev = log_detail::currentLevel();
    log_detail::currentLevel() = level;
    return prev;
}

} // namespace dasdram
