/**
 * @file
 * The repo's one versioned-binary-envelope API: little-endian field
 * codecs, the FNV-1a/splitmix64 hashes used for content checksums and
 * config fingerprints, and the framed envelope every dasdram binary
 * artifact opens with — magic, schema version, payload length, payload,
 * trailing checksum.
 *
 * Both on-disk binary formats build on this: the binary trace format
 * (workload/trace_format.hh, a headerless-payload special case that
 * predates the envelope and keeps its exact byte layout) and the
 * checkpoint format (common/serde.hh). Readers share the same
 * refuse-on-bad-magic / refuse-on-too-new-version semantics, reported
 * as error strings so tools can fatal() and tests can assert.
 */

#ifndef DASDRAM_COMMON_BINFMT_HH
#define DASDRAM_COMMON_BINFMT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dasdram
{
namespace binfmt
{

/// @name Little-endian field codec
/// @{

/** Write the low @p bytes bytes of @p v little-endian at @p dst. */
void putLe(unsigned char *dst, std::uint64_t v, unsigned bytes);

/** Read @p bytes little-endian bytes at @p src. */
std::uint64_t getLe(const unsigned char *src, unsigned bytes);

/** Append the low @p bytes bytes of @p v to @p out. */
void appendLe(std::vector<unsigned char> &out, std::uint64_t v,
              unsigned bytes);

/// @}
/// @name Hashes
/// @{

/** FNV-1a over @p n bytes, continuing from @p h (pass the default to
 *  start a fresh hash). The envelope checksum and the config
 *  fingerprint both use this. */
std::uint64_t fnv1a64(const void *data, std::size_t n,
                      std::uint64_t h = 0xcbf29ce484222325ull);

/** splitmix64 mixing step; chains hashes into derived seeds. */
std::uint64_t splitmix64(std::uint64_t x);

/// @}
/// @name Versioned envelope
/// @{

/** Fixed envelope header size: u32 magic, u16 version, u16 flags,
 *  u64 payload length. A u64 FNV-1a checksum over header + payload
 *  trails the payload. */
constexpr std::size_t kEnvelopeHeaderBytes = 16;
constexpr std::size_t kEnvelopeChecksumBytes = 8;

/** Result of decoding an envelope: ok() or a human-readable error. */
struct EnvelopeResult
{
    std::string error; ///< empty on success
    std::uint16_t version = 0;
    std::vector<unsigned char> payload;

    bool ok() const { return error.empty(); }
};

/** Frame @p payload into a full envelope byte stream. */
std::vector<unsigned char> encodeEnvelope(
    std::uint32_t magic, std::uint16_t version,
    const std::vector<unsigned char> &payload);

/**
 * Decode and validate an envelope: magic must equal @p magic, the
 * version must be <= @p max_version (too-new files are refused, not
 * misread), the length must frame the buffer exactly and the trailing
 * checksum must match. @p what names the artifact in error messages
 * (e.g. "checkpoint").
 */
EnvelopeResult decodeEnvelope(const std::vector<unsigned char> &bytes,
                              std::uint32_t magic,
                              std::uint16_t max_version,
                              const std::string &what);

/** encodeEnvelope + write to @p path; returns an error string (empty
 *  on success). */
std::string writeEnvelopeFile(const std::string &path, std::uint32_t magic,
                              std::uint16_t version,
                              const std::vector<unsigned char> &payload);

/** Read @p path fully + decodeEnvelope. */
EnvelopeResult readEnvelopeFile(const std::string &path,
                                std::uint32_t magic,
                                std::uint16_t max_version,
                                const std::string &what);

/// @}

} // namespace binfmt
} // namespace dasdram

#endif // DASDRAM_COMMON_BINFMT_HH
