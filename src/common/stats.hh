/**
 * @file
 * A lightweight statistics package: named scalar counters, distributions
 * and derived formulas grouped per component, dumpable as text.
 *
 * Unlike gem5's global registry, stats here are owned by a StatGroup that
 * each component embeds, so independent simulations in one process (e.g.
 * a parameter sweep in a bench binary) never interfere.
 */

#ifndef DASDRAM_COMMON_STATS_HH
#define DASDRAM_COMMON_STATS_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace dasdram
{

/** A named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max/count over sampled values. */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A group of named statistics belonging to one component. Components
 * register their counters once at construction; dump() walks the group
 * tree for reporting.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter under @p name. Pointer must outlive the group. */
    void addCounter(const std::string &name, Counter *c,
                    const std::string &desc = "");
    void addDistribution(const std::string &name, Distribution *d,
                         const std::string &desc = "");
    /** Register a derived value computed at dump time. */
    void addFormula(const std::string &name, std::function<double()> fn,
                    const std::string &desc = "");
    /** Attach a child group (e.g. per-bank stats). */
    void addChild(StatGroup *child);

    const std::string &name() const { return name_; }

    /** Write "group.stat value # desc" lines to @p os, recursively. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Reset all counters/distributions, recursively (after warm-up). */
    void resetAll();

  private:
    struct CounterEntry
    {
        std::string name;
        Counter *counter;
        std::string desc;
    };
    struct DistEntry
    {
        std::string name;
        Distribution *dist;
        std::string desc;
    };
    struct FormulaEntry
    {
        std::string name;
        std::function<double()> fn;
        std::string desc;
    };

    std::string name_;
    std::vector<CounterEntry> counters_;
    std::vector<DistEntry> dists_;
    std::vector<FormulaEntry> formulas_;
    std::vector<StatGroup *> children_;
};

} // namespace dasdram

#endif // DASDRAM_COMMON_STATS_HH
