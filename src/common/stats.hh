/**
 * @file
 * A lightweight statistics package: named scalar counters, distributions,
 * log2-bucketed histograms and derived formulas grouped per component,
 * dumpable as text and walkable through a visitor (for JSONL export and
 * epoch time-series sampling).
 *
 * Unlike gem5's global registry, stats here are owned by a StatGroup that
 * each component embeds, so independent simulations in one process (e.g.
 * a parameter sweep in a bench binary) never interfere.
 */

#ifndef DASDRAM_COMMON_STATS_HH
#define DASDRAM_COMMON_STATS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/serde.hh"

namespace dasdram
{

/** A named monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    void serdeState(Archive &ar) { ar.io(value_); }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max/count over sampled values. */
class Distribution
{
  public:
    void sample(double v);

    /**
     * Forget all samples. min()/max() return 0 again until the next
     * sample arrives; the first post-reset sample re-seeds them (the
     * pre-reset extrema never leak into the new window — guarded by
     * tests/common/test_stats.cc).
     */
    void reset();

    /**
     * Fold @p other into this distribution, as if every sample of
     * @p other had been sampled here too. Merging an empty side is the
     * identity; used for per-bank → per-channel rollups.
     */
    void merge(const Distribution &other);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    void
    serdeState(Archive &ar)
    {
        ar.io(count_);
        ar.io(sum_);
        ar.io(min_);
        ar.io(max_);
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Log2-bucketed histogram over unsigned integer samples (latencies and
 * occupancies in cycles/entries).
 *
 * Each power-of-two octave is split into 2^kSubBucketBits linear
 * sub-buckets, so values below 2^kSubBucketBits are recorded exactly
 * and larger values with a relative resolution of 2^-kSubBucketBits
 * (12.5%). The sample path is allocation-free (a fixed bucket array
 * plus scalar min/max/sum), histograms merge bucket-wise, and
 * percentile queries are exact with respect to the recorded buckets:
 * percentile(p) returns the largest value the bucket holding the p-th
 * sample can contain (clamped to the observed min/max), so for
 * sub-2^kSubBucketBits data the answer is exact.
 */
class Histogram
{
  public:
    /** Linear sub-buckets per octave = 2^kSubBucketBits. */
    static constexpr unsigned kSubBucketBits = 3;
    static constexpr unsigned kSubBuckets = 1u << kSubBucketBits;
    /** Octaves above the linear range (64-bit values) + linear range. */
    static constexpr std::size_t kNumBuckets =
        static_cast<std::size_t>(64 - kSubBucketBits + 1) * kSubBuckets;

    /** Record one sample. Allocation-free. */
    void
    sample(std::uint64_t v)
    {
        ++buckets_[bucketIndex(v)];
        ++count_;
        sum_ += v;
        if (count_ == 1) {
            min_ = v;
            max_ = v;
        } else {
            if (v < min_)
                min_ = v;
            if (v > max_)
                max_ = v;
        }
    }

    void reset();

    /** Fold @p other in bucket-wise (per-bank → per-channel rollups). */
    void merge(const Histogram &other);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }

    /**
     * Value at percentile @p p in [0, 100]: the upper bound of the
     * bucket containing the ceil(p/100 * count)-th smallest sample,
     * clamped to [min(), max()]. 0 when empty.
     */
    std::uint64_t percentile(double p) const;

    std::uint64_t p50() const { return percentile(50.0); }
    std::uint64_t p90() const { return percentile(90.0); }
    std::uint64_t p99() const { return percentile(99.0); }
    std::uint64_t p999() const { return percentile(99.9); }

    /// @name Bucket geometry (exposed for tests and exporters)
    /// @{
    static std::size_t bucketIndex(std::uint64_t v);
    /** Smallest value mapping to bucket @p i. */
    static std::uint64_t bucketLo(std::size_t i);
    /** One past the largest value mapping to bucket @p i (saturating). */
    static std::uint64_t bucketHi(std::size_t i);

    std::size_t numBuckets() const { return kNumBuckets; }
    std::uint64_t bucketCount(std::size_t i) const { return buckets_[i]; }
    /// @}

    void
    serdeState(Archive &ar)
    {
        for (std::uint64_t &b : buckets_)
            ar.io(b);
        ar.io(count_);
        ar.io(sum_);
        ar.io(min_);
        ar.io(max_);
    }

  private:
    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Read-only walk over a StatGroup tree. Names are fully qualified
 * ("system.dram.channel0.reads"). Default implementations ignore the
 * entry, so visitors override only what they consume.
 */
class StatVisitor
{
  public:
    virtual ~StatVisitor() = default;

    virtual void
    onCounter(const std::string &, const Counter &, const std::string &)
    {}
    virtual void
    onDistribution(const std::string &, const Distribution &,
                   const std::string &)
    {}
    virtual void
    onHistogram(const std::string &, const Histogram &,
                const std::string &)
    {}
    /** @p value is the formula evaluated at visit time. */
    virtual void
    onFormula(const std::string &, double, const std::string &)
    {}
};

/**
 * A group of named statistics belonging to one component. Components
 * register their counters once at construction; dump() walks the group
 * tree for reporting.
 *
 * Registration panics on a duplicate stat name (across counters,
 * distributions, histograms and formulas — they share one namespace in
 * dumps) and on duplicate child registration, which would silently
 * shadow values in dumps and exports.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter under @p name. Pointer must outlive the group. */
    void addCounter(const std::string &name, Counter *c,
                    const std::string &desc = "");
    void addDistribution(const std::string &name, Distribution *d,
                         const std::string &desc = "");
    void addHistogram(const std::string &name, Histogram *h,
                      const std::string &desc = "");
    /** Register a derived value computed at dump time. */
    void addFormula(const std::string &name, std::function<double()> fn,
                    const std::string &desc = "");
    /** Attach a child group (e.g. per-bank stats). */
    void addChild(StatGroup *child);

    const std::string &name() const { return name_; }

    /** Write "group.stat value # desc" lines to @p os, recursively. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /**
     * Walk every stat in the tree in registration order (counters,
     * then distributions, histograms, formulas, then children).
     * @p prefix is prepended to this group's name.
     */
    void visit(StatVisitor &v, const std::string &prefix = "") const;

    /** Reset all counters/distributions/histograms, recursively. */
    void resetAll();

    /**
     * Checkpoint every counter/distribution/histogram in the tree in
     * registration order (formulas are derived — recomputed, never
     * stored). The registration shape is config-derived, so a load
     * into a differently shaped tree is fatal.
     */
    void serdeTree(Archive &ar);

  private:
    struct CounterEntry
    {
        std::string name;
        Counter *counter;
        std::string desc;
    };
    struct DistEntry
    {
        std::string name;
        Distribution *dist;
        std::string desc;
    };
    struct HistEntry
    {
        std::string name;
        Histogram *hist;
        std::string desc;
    };
    struct FormulaEntry
    {
        std::string name;
        std::function<double()> fn;
        std::string desc;
    };

    /** Panic if @p name is already registered in this group. */
    void checkNewName(const std::string &name) const;

    std::string name_;
    std::vector<CounterEntry> counters_;
    std::vector<DistEntry> dists_;
    std::vector<HistEntry> hists_;
    std::vector<FormulaEntry> formulas_;
    std::vector<StatGroup *> children_;
};

} // namespace dasdram

#endif // DASDRAM_COMMON_STATS_HH
