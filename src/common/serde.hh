/**
 * @file
 * The checkpoint serde visitor: one Archive class drives both
 * directions of component serialisation. Every stateful component
 * implements a single symmetric method
 *
 *     void serdeState(Archive &ar);
 *
 * that calls ar.io(field) on each piece of state in a fixed order;
 * the same code path saves and loads, so the two can never drift.
 * Named, length-framed sections (ar.section/ar.end) give the stream
 * self-describing structure: a load that reaches the wrong section
 * name or leaves bytes unconsumed fails loudly instead of misreading.
 *
 * The byte stream produced here is the payload of a binfmt envelope
 * (magic + schema version + length + checksum); see snapshot users
 * sim/system.cc and sim/fuzz.cc.
 *
 * Field encoding: every integral (and enum) field is stored as 8
 * little-endian bytes, doubles bit-exact through their u64 image,
 * strings and byte blobs length-prefixed. Load-side mismatches are
 * fatal(): an envelope that passed magic/version/checksum validation
 * but desynchronises here is a serde bug, not user input.
 */

#ifndef DASDRAM_COMMON_SERDE_HH
#define DASDRAM_COMMON_SERDE_HH

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <type_traits>
#include <vector>

namespace dasdram
{

class Archive
{
  public:
    /** A saving archive writing into an internal buffer. */
    Archive();

    /** A loading archive consuming @p payload. */
    explicit Archive(std::vector<unsigned char> payload);

    bool saving() const { return saving_; }
    bool loading() const { return !saving_; }

    /// @name Sections
    /// @{

    /** Open a named, length-framed section; nestable. On load the
     *  name must match exactly. */
    void section(const char *name);

    /** Close the innermost section; on load the section must be fully
     *  consumed. */
    void end();

    /// @}
    /// @name Fields
    /// @{

    /** Integral or enum field, 8 bytes little-endian. */
    template <typename T,
              typename std::enable_if<std::is_integral<T>::value ||
                                          std::is_enum<T>::value,
                                      int>::type = 0>
    void
    io(T &v)
    {
        std::uint64_t u =
            saving_ ? static_cast<std::uint64_t>(v) : 0;
        raw64(u);
        if (!saving_)
            v = static_cast<T>(u);
    }

    /** Double, bit-exact via its 64-bit image. */
    void
    io(double &v)
    {
        std::uint64_t u = 0;
        if (saving_)
            std::memcpy(&u, &v, 8);
        raw64(u);
        if (!saving_)
            std::memcpy(&v, &u, 8);
    }

    void io(std::string &s);

    /** Vector of integral/enum/double elements. */
    template <typename T>
    void
    io(std::vector<T> &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if (!saving_)
            v.resize(static_cast<std::size_t>(n));
        for (auto &e : v)
            io(e);
    }

    template <typename T>
    void
    io(std::deque<T> &v)
    {
        std::uint64_t n = v.size();
        raw64(n);
        if (!saving_)
            v.resize(static_cast<std::size_t>(n));
        for (auto &e : v)
            io(e);
    }

    /** Raw byte blob of a known (unframed) size. */
    void blob(void *p, std::size_t n);

    /** A trivially-copyable struct as one blob (host byte order —
     *  checkpoints are same-build artifacts, guarded by the envelope
     *  version). */
    template <typename T>
    void
    pod(T &v)
    {
        static_assert(std::is_trivially_copyable<T>::value,
                      "pod() needs a trivially copyable type");
        blob(&v, sizeof(T));
    }

    /** Element count gate: saves @p n; on load fatal()s unless the
     *  saved count equals @p n. For fixed-shape containers (stat
     *  trees, per-bank vectors) whose size is config-derived. */
    void expectCount(std::uint64_t n, const char *what);

    /// @}

    /** Saver: take the accumulated payload. */
    std::vector<unsigned char> take();

    /** Loader: assert the payload was fully consumed. */
    void finish();

  private:
    void raw64(std::uint64_t &v);

    bool saving_;
    std::vector<unsigned char> buf_;
    std::size_t pos_ = 0;
    /** Saver: offsets of unpatched length fields. Loader: section end
     *  offsets. */
    std::vector<std::size_t> stack_;
};

} // namespace dasdram

#endif // DASDRAM_COMMON_SERDE_HH
