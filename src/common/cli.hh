/**
 * @file
 * Shared command-line parsing for every front-end binary (tools/ and
 * bench/). One declarative parser replaces the hand-rolled argv loops
 * that used to be duplicated per binary, and fixes their shared bugs
 * in one place: every value-taking option accepts both `--flag value`
 * and `--flag=value`, numeric values are validated strictly (a
 * malformed number is a usage error, never silently 0), and `--help`
 * prints a usage text generated from the declarations.
 *
 * Two parse entry points:
 *  - parse()    — fatal() on any usage error (exit 1), prints usage
 *                 and exits 0 on --help; what interactive tools want.
 *  - tryParse() — returns false with a reason; for binaries with a
 *                 documented usage-error exit status (dasdram_compare
 *                 exits 2).
 */

#ifndef DASDRAM_COMMON_CLI_HH
#define DASDRAM_COMMON_CLI_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dasdram
{

class CliParser
{
  public:
    /** @param summary one-line description shown at the top of --help. */
    CliParser(std::string program, std::string summary);

    /// @name Option declaration (before parse; name includes "--")
    /// @{

    /** Boolean flag, e.g. flag("--quiet", "..."). Optional short
     *  @p alias, e.g. "-q". */
    CliParser &flag(const std::string &name, const std::string &help,
                    const std::string &alias = "");

    /**
     * An on/off flag pair: toggle("--check", ...) declares both
     * --check and --no-check; the last occurrence wins. Read with
     * enabled().
     */
    CliParser &toggle(const std::string &name, const std::string &help);

    /** String-valued option (last occurrence wins; see strs() for
     *  repeatable use). */
    CliParser &option(const std::string &name,
                      const std::string &value_name,
                      const std::string &help,
                      const std::string &alias = "");

    /** Unsigned option; the value must parse fully as decimal or 0x
     *  hex (validated at parse time). */
    CliParser &optionUInt(const std::string &name,
                          const std::string &value_name,
                          const std::string &help,
                          const std::string &alias = "");

    /** Floating-point option (strictly validated at parse time). */
    CliParser &optionDouble(const std::string &name,
                            const std::string &value_name,
                            const std::string &help,
                            const std::string &alias = "");

    /** Accept min..max positional (non-dash) arguments. Without this
     *  declaration positionals are usage errors. kNoLimit = no max. */
    static constexpr std::size_t kNoLimit = ~std::size_t(0);
    CliParser &positionals(const std::string &value_name,
                           const std::string &help, std::size_t min,
                           std::size_t max = kNoLimit);

    /// @}
    /// @name Parsing
    /// @{

    /** Fatal on usage errors; on --help prints usage and exits 0. */
    void parse(int argc, char **argv);

    /**
     * Non-fatal variant: false with a reason in @p err on usage
     * errors. --help sets helpRequested() and returns true without
     * printing — the caller decides the exit path.
     */
    bool tryParse(int argc, char **argv, std::string &err);

    bool helpRequested() const { return help_; }

    /** The generated usage text. */
    std::string usage() const;

    /// @}
    /// @name Results (after parse)
    /// @{

    /** True when the option or flag appeared at least once. */
    bool given(const std::string &name) const;

    /** Last value of a string option, or @p def when absent. */
    std::string str(const std::string &name,
                    const std::string &def = "") const;

    /** Every occurrence of a (repeatable) option, in order. */
    const std::vector<std::string> &strs(const std::string &name) const;

    /** Last value of an unsigned option, or @p def when absent. */
    std::uint64_t uns(const std::string &name, std::uint64_t def) const;

    /** Last value of a double option, or @p def when absent. */
    double dbl(const std::string &name, double def) const;

    /** State of a toggle(): last of --name/--no-name, or @p def. */
    bool enabled(const std::string &name, bool def) const;

    const std::vector<std::string> &positionalValues() const
    {
        return positionals_;
    }

    /// @}

  private:
    enum class Kind
    {
        Flag,
        Toggle,
        String,
        UInt,
        Double,
    };

    struct Opt
    {
        std::string name;
        std::string alias;
        std::string valueName;
        std::string help;
        Kind kind = Kind::Flag;
        bool seen = false;
        bool toggleState = false;
        std::vector<std::string> values;
    };

    CliParser &add(Opt opt);
    Opt *find(const std::string &name);
    const Opt &require(const std::string &name, Kind kind) const;

    std::string program_;
    std::string summary_;
    std::vector<Opt> opts_;
    std::string posName_;
    std::string posHelp_;
    std::size_t posMin_ = 0;
    std::size_t posMax_ = 0;
    bool posDeclared_ = false;
    std::vector<std::string> positionals_;
    bool help_ = false;
};

} // namespace dasdram

#endif // DASDRAM_COMMON_CLI_HH
