/**
 * @file
 * Shared schema-version negotiation for the JSONL dump readers.
 * Every dump (stats-JSONL, span-JSONL) opens with a meta record
 * carrying a schema name and an integer version; every reader applies
 * the same policy through this one helper: a wrong schema name is a
 * wrong file, a missing version is a malformed dump, and a version
 * newer than the reader understands is refused (never misread) —
 * older versions load, the writer promises forward-compatible
 * additions only within a major schema name.
 */

#ifndef DASDRAM_COMMON_SCHEMA_CHECK_HH
#define DASDRAM_COMMON_SCHEMA_CHECK_HH

#include <string>

namespace dasdram
{

/**
 * Validate the schema identity of a JSONL meta record; fatal() with a
 * @p path-prefixed message on any mismatch. Returns the validated
 * version.
 *
 * @param path           the dump being read (error context)
 * @param expect_schema  the schema this reader consumes
 * @param got_schema     the meta record's "schema" field
 * @param got_version    the meta record's "version" field, < 0 when
 *                       absent or non-numeric
 * @param supported      newest version this reader understands
 * @param tool           reader name for the "rebuild X" hint
 */
int checkJsonlSchema(const std::string &path,
                     const std::string &expect_schema,
                     const std::string &got_schema, int got_version,
                     int supported, const char *tool);

} // namespace dasdram

#endif // DASDRAM_COMMON_SCHEMA_CHECK_HH
