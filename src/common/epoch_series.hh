/**
 * @file
 * EpochSeries: periodic snapshots of a StatGroup tree as a time series.
 *
 * Every `epochLength` cycles the series records the *delta* of each
 * counter (and the count/sum of each distribution and histogram) since
 * the previous epoch boundary, giving a per-epoch rate view of any
 * stat tree without touching the components that own the stats.
 *
 * Epoch boundaries are derived from a base cycle so the series can be
 * restarted after the warm-up reset: `restart(now)` discards history
 * and realigns epoch 0 to `now`, matching `StatGroup::resetAll`.
 */

#ifndef DASDRAM_COMMON_EPOCH_SERIES_HH
#define DASDRAM_COMMON_EPOCH_SERIES_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dasdram
{

class EpochSeries
{
  public:
    /** One completed epoch: [start, end) with per-stat deltas. */
    struct Epoch
    {
        std::uint64_t index; ///< 0-based since the last (re)start
        Cycle start;
        Cycle end;
        /** Parallel to names(); delta of each tracked value. */
        std::vector<double> deltas;
    };

    /**
     * Track @p group, one epoch every @p epoch_length cycles (must be
     * > 0). The set of tracked stats is fixed at construction:
     * every counter ("name"), plus "name.count"/"name.sum" for each
     * distribution and histogram. Formulas are excluded — they are
     * ratios of other stats, not accumulators, so per-epoch deltas of
     * them are meaningless; recompute them from the deltas instead.
     */
    EpochSeries(const StatGroup &group, Cycle epoch_length);

    /**
     * Emit every epoch whose end is <= @p now. Cheap no-op between
     * boundaries; call from the simulation loop. When several
     * boundaries elapse in one call (idle fast-forward), the first
     * elapsed epoch receives the whole delta and the rest are zero —
     * a cycle-skipping caller that wants exact per-epoch attribution
     * must instead stop at every nextBoundaryCycle() whose span saw
     * stat changes and sample there (what the event engine does).
     */
    void maybeSample(Cycle now);

    /**
     * Cycle at which the current epoch ends — the next boundary a
     * cycle-skipping engine must not jump over without sampling.
     * Tracks restart(): a warm-up reset landing mid-epoch realigns
     * the grid, and the boundary reported here moves with it.
     */
    Cycle
    nextBoundaryCycle() const
    {
        return base_ + (nextIndex_ + 1) * epochLength_;
    }

    /**
     * Drop history and realign epoch 0 to start at @p now, re-reading
     * current stat values as the new baseline. Call right after the
     * owner's warm-up `resetAll()`.
     */
    void restart(Cycle now);

    /**
     * Close the trailing partial epoch at @p now. Any complete epochs
     * still pending (a caller that fast-forwarded past boundaries
     * without sampling) are emitted first, so the series always ends
     * with at most one partial epoch. A partial epoch is only emitted
     * if time advanced past the last boundary.
     */
    void flush(Cycle now);

    Cycle epochLength() const { return epochLength_; }
    /** Fully qualified names of the tracked values. */
    const std::vector<std::string> &names() const { return names_; }
    const std::vector<Epoch> &epochs() const { return epochs_; }

    /**
     * Checkpoint the grid alignment, the per-stat baseline at the last
     * boundary and the completed-epoch history, so a restored run's
     * flushed series matches the straight run exactly — including a
     * checkpoint taken mid-epoch. The tracked-name set is derived from
     * the stat tree; a shape mismatch is fatal.
     */
    void serdeState(Archive &ar);

  private:
    /** Read the current value of every tracked stat into @p out. */
    void collect(std::vector<double> &out) const;

    const StatGroup *group_;
    Cycle epochLength_;
    Cycle base_ = 0;          ///< cycle where epoch 0 starts
    std::uint64_t nextIndex_ = 0;
    std::vector<std::string> names_;
    std::vector<double> prev_;    ///< values at the last boundary
    std::vector<double> scratch_; ///< reused buffer for collect()
    std::vector<Epoch> epochs_;
};

} // namespace dasdram

#endif // DASDRAM_COMMON_EPOCH_SERIES_HH
