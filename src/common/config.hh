/**
 * @file
 * A small typed key/value configuration store.
 *
 * Front-ends (benches, examples) assemble a Config from defaults plus
 * overrides; simulator components read typed values with mandatory
 * defaults so a missing key is never a silent zero.
 */

#ifndef DASDRAM_COMMON_CONFIG_HH
#define DASDRAM_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dasdram
{

/**
 * String-keyed configuration with typed accessors. Values are stored as
 * strings and parsed on read; parse failures are fatal (user error).
 */
class Config
{
  public:
    Config() = default;

    /** Set (or overwrite) a key. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, std::uint64_t value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    /** True iff the key has been set. */
    bool has(const std::string &key) const;

    /** Typed getters; return @p def when the key is absent. */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    std::uint64_t getUInt(const std::string &key, std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /**
     * Parse a "key=value" override string and apply it.
     * @return false when the string is malformed.
     */
    bool applyOverride(const std::string &assignment);

    /** All keys in sorted order (for dumping). */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace dasdram

#endif // DASDRAM_COMMON_CONFIG_HH
