/**
 * @file
 * Status-message and error helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user-caused conditions (bad configuration); panic() is for
 * conditions that indicate a simulator bug. Both terminate.
 */

#ifndef DASDRAM_COMMON_LOG_HH
#define DASDRAM_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/strfmt.hh"

namespace dasdram
{

/** Verbosity levels for non-fatal messages. */
enum class LogLevel
{
    Quiet,  ///< suppress inform(); warnings still shown
    Normal, ///< inform() and warn() shown
    Debug,  ///< additionally show debugLog()
};

namespace log_detail
{
/** Process-wide verbosity (settable by front-ends / tests). */
LogLevel &currentLevel();

void emit(std::string_view tag, std::string_view msg);

[[noreturn]] void
die(std::string_view tag, std::string_view msg, bool abort_process);
} // namespace log_detail

/** Set global verbosity; returns the previous level. */
LogLevel setLogLevel(LogLevel level);

/** Informative message users should know but not worry about. */
template <typename... Args>
void
inform(std::string_view fmt, Args &&...args)
{
    if (log_detail::currentLevel() != LogLevel::Quiet) {
        log_detail::emit("info",
                         formatStr(fmt, args...));
    }
}

/** Something works well enough but deserves user attention. */
template <typename... Args>
void
warn(std::string_view fmt, Args &&...args)
{
    log_detail::emit("warn", formatStr(fmt, args...));
}

/** Debug trace message, only shown at LogLevel::Debug. */
template <typename... Args>
void
debugLog(std::string_view fmt, Args &&...args)
{
    if (log_detail::currentLevel() == LogLevel::Debug) {
        log_detail::emit("debug",
                         formatStr(fmt, args...));
    }
}

/** User error: the simulation cannot continue; exits with status 1. */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args &&...args)
{
    log_detail::die("fatal", formatStr(fmt, args...),
                    /*abort_process=*/false);
}

/** Simulator bug: should never happen regardless of user input; aborts. */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args &&...args)
{
    log_detail::die("panic", formatStr(fmt, args...),
                    /*abort_process=*/true);
}

} // namespace dasdram

#endif // DASDRAM_COMMON_LOG_HH
