#include "binfmt.hh"

#include <cstdio>

#include "common/strfmt.hh"

namespace dasdram
{
namespace binfmt
{

void
putLe(unsigned char *dst, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        dst[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t
getLe(const unsigned char *src, unsigned bytes)
{
    std::uint64_t v = 0;
    for (unsigned i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(src[i]) << (8 * i);
    return v;
}

void
appendLe(std::vector<unsigned char> &out, std::uint64_t v, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i)
        out.push_back(static_cast<unsigned char>(v >> (8 * i)));
}

std::uint64_t
fnv1a64(const void *data, std::size_t n, std::uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::vector<unsigned char>
encodeEnvelope(std::uint32_t magic, std::uint16_t version,
               const std::vector<unsigned char> &payload)
{
    std::vector<unsigned char> out;
    out.reserve(kEnvelopeHeaderBytes + payload.size() +
                kEnvelopeChecksumBytes);
    appendLe(out, magic, 4);
    appendLe(out, version, 2);
    appendLe(out, 0, 2); // flags, reserved
    appendLe(out, payload.size(), 8);
    out.insert(out.end(), payload.begin(), payload.end());
    std::uint64_t sum = fnv1a64(out.data(), out.size());
    appendLe(out, sum, 8);
    return out;
}

EnvelopeResult
decodeEnvelope(const std::vector<unsigned char> &bytes,
               std::uint32_t magic, std::uint16_t max_version,
               const std::string &what)
{
    EnvelopeResult r;
    if (bytes.size() < kEnvelopeHeaderBytes + kEnvelopeChecksumBytes) {
        r.error = formatStr("truncated {}: {} byte(s), need at least {}",
                            what, bytes.size(),
                            kEnvelopeHeaderBytes + kEnvelopeChecksumBytes);
        return r;
    }
    std::uint32_t got_magic =
        static_cast<std::uint32_t>(getLe(bytes.data(), 4));
    if (got_magic != magic) {
        r.error = formatStr("bad magic 0x{:x} (not a dasdram {})",
                            got_magic, what);
        return r;
    }
    r.version = static_cast<std::uint16_t>(getLe(bytes.data() + 4, 2));
    if (r.version > max_version) {
        r.error = formatStr("{} version {} is newer than this build "
                            "understands (max {})",
                            what, r.version, max_version);
        return r;
    }
    std::uint64_t len = getLe(bytes.data() + 8, 8);
    if (bytes.size() !=
        kEnvelopeHeaderBytes + len + kEnvelopeChecksumBytes) {
        r.error = formatStr("truncated {}: header frames {} payload "
                            "byte(s), file holds {}",
                            what, len,
                            bytes.size() - kEnvelopeHeaderBytes -
                                kEnvelopeChecksumBytes);
        return r;
    }
    std::size_t sum_at = kEnvelopeHeaderBytes + len;
    std::uint64_t want = getLe(bytes.data() + sum_at, 8);
    std::uint64_t got = fnv1a64(bytes.data(), sum_at);
    if (want != got) {
        r.error = formatStr("corrupt {}: checksum mismatch", what);
        return r;
    }
    r.payload.assign(bytes.begin() + kEnvelopeHeaderBytes,
                     bytes.begin() + sum_at);
    return r;
}

std::string
writeEnvelopeFile(const std::string &path, std::uint32_t magic,
                  std::uint16_t version,
                  const std::vector<unsigned char> &payload)
{
    std::vector<unsigned char> bytes =
        encodeEnvelope(magic, version, payload);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return formatStr("cannot open '{}' for writing", path);
    std::size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f);
    bool ok = n == bytes.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        return formatStr("short write to '{}'", path);
    return "";
}

EnvelopeResult
readEnvelopeFile(const std::string &path, std::uint32_t magic,
                 std::uint16_t max_version, const std::string &what)
{
    EnvelopeResult r;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        r.error = formatStr("cannot open {} '{}'", what, path);
        return r;
    }
    std::vector<unsigned char> bytes;
    unsigned char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    bool read_err = std::ferror(f) != 0;
    std::fclose(f);
    if (read_err) {
        r.error = formatStr("I/O error reading {} '{}'", what, path);
        return r;
    }
    r = decodeEnvelope(bytes, magic, max_version, what);
    if (!r.ok())
        r.error += formatStr(" ('{}')", path);
    return r;
}

} // namespace binfmt
} // namespace dasdram
