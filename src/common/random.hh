/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A small, fast xoshiro256** generator is used instead of <random> engines
 * so that simulation results are bit-identical across standard libraries.
 */

#ifndef DASDRAM_COMMON_RANDOM_HH
#define DASDRAM_COMMON_RANDOM_HH

#include <cstdint>

#include "common/serde.hh"

namespace dasdram
{

/**
 * xoshiro256** PRNG (Blackman & Vigna). Deterministic given a seed,
 * regardless of platform or standard library.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of true. */
    bool chance(double p);

    /**
     * Sample from a truncated Zipf-like distribution over [0, n):
     * rank r has weight 1 / (r + 1)^s. Used for hot-set skew.
     * Implemented by inverse-CDF over a coarse table for speed.
     */
    std::uint64_t nextZipf(std::uint64_t n, double s);

    /** Checkpoint the full generator state. */
    void
    serdeState(Archive &ar)
    {
        for (std::uint64_t &s : s_)
            ar.io(s);
    }

  private:
    std::uint64_t s_[4];
};

} // namespace dasdram

#endif // DASDRAM_COMMON_RANDOM_HH
