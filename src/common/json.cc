#include "json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/log.hh"

namespace dasdram
{

// --------------------------------------------------------------------
// JsonWriter
// --------------------------------------------------------------------

void
JsonWriter::separate()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    if (!emptyStack_.empty()) {
        if (!emptyStack_.back())
            out_ += ',';
        emptyStack_.back() = false;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    out_ += '{';
    emptyStack_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (emptyStack_.empty() || afterKey_)
        panic("JsonWriter::endObject with no open object");
    emptyStack_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    out_ += '[';
    emptyStack_.push_back(true);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (emptyStack_.empty() || afterKey_)
        panic("JsonWriter::endArray with no open array");
    emptyStack_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    if (emptyStack_.empty() || afterKey_)
        panic("JsonWriter::key outside an object");
    separate();
    out_ += quoted(name);
    out_ += ':';
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view s)
{
    separate();
    out_ += quoted(s);
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out_ += "null";
        return *this;
    }
    // %.17g round-trips every double and is deterministic for a fixed
    // value, which keeps sweep output byte-identical across runs.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    out_ += "null";
    return *this;
}

std::string
JsonWriter::quoted(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

// --------------------------------------------------------------------
// Parser
// --------------------------------------------------------------------

const JsonValue *
JsonValue::find(std::string_view name) const
{
    if (kind != Kind::Object)
        return nullptr;
    const JsonValue *found = nullptr;
    for (const auto &[k, v] : object)
        if (k == name)
            found = &v;
    return found;
}

namespace
{

class Parser
{
  public:
    Parser(std::string_view text, std::string *err)
        : text_(text), err_(err)
    {
    }

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        if (err_)
            *err_ = formatStr("{} at offset {}", msg, pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
          case 't':
            if (!literal("true"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
          case 'f':
            if (!literal("false"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
          case 'n':
            if (!literal("null"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Null;
            return true;
          case 'N':
            // Extension: some producers emit bare NaN/Infinity for
            // non-finite stats. Our writer never does (it emits null),
            // but the comparison tooling must be able to read them.
            if (!literal("NaN"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Number;
            out.number = std::numeric_limits<double>::quiet_NaN();
            return true;
          case 'I':
            if (!literal("Infinity"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Number;
            out.number = std::numeric_limits<double>::infinity();
            return true;
          default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        if (literal("Infinity")) {
            out.kind = JsonValue::Kind::Number;
            out.number = -std::numeric_limits<double>::infinity();
            return true;
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        std::string num(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double v = std::strtod(num.c_str(), &end);
        if (end != num.c_str() + num.size())
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode (BMP only; no surrogate pairs).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(JsonValue &out)
    {
        ++pos_; // '['
        out.kind = JsonValue::Kind::Array;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            JsonValue elem;
            skipWs();
            if (!parseValue(elem))
                return false;
            out.array.push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            char c = text_[pos_++];
            if (c == ']')
                return true;
            if (c != ',')
                return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        ++pos_; // '{'
        out.kind = JsonValue::Kind::Object;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string name;
            if (!parseString(name))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_++] != ':')
                return fail("expected ':'");
            JsonValue v;
            skipWs();
            if (!parseValue(v))
                return false;
            out.object.emplace_back(std::move(name), std::move(v));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            char c = text_[pos_++];
            if (c == '}')
                return true;
            if (c != ',')
                return fail("expected ',' or '}'");
        }
    }

    std::string_view text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parseJson(std::string_view text, JsonValue &out, std::string *err)
{
    out = JsonValue{};
    return Parser(text, err).parse(out);
}

} // namespace dasdram
