#include "stats.hh"

#include <bit>
#include <cmath>
#include <limits>

#include "common/log.hh"
#include "common/strfmt.hh"

namespace dasdram
{

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    ++count_;
    sum_ += v;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

std::size_t
Histogram::bucketIndex(std::uint64_t v)
{
    if (v < kSubBuckets)
        return static_cast<std::size_t>(v);
    const unsigned msb = std::bit_width(v) - 1;
    const unsigned shift = msb - kSubBucketBits;
    const std::size_t octave = msb - kSubBucketBits + 1;
    return (octave << kSubBucketBits) +
           static_cast<std::size_t>((v >> shift) - kSubBuckets);
}

std::uint64_t
Histogram::bucketLo(std::size_t i)
{
    const std::size_t octave = i >> kSubBucketBits;
    const std::uint64_t sub = i & (kSubBuckets - 1);
    if (octave == 0)
        return sub;
    return (kSubBuckets + sub) << (octave - 1);
}

std::uint64_t
Histogram::bucketHi(std::size_t i)
{
    const std::size_t octave = i >> kSubBucketBits;
    if (octave == 0)
        return bucketLo(i) + 1;
    // Width of one sub-bucket in this octave; the very last octave's
    // top sub-bucket would overflow, so saturate to 2^64-1.
    const std::uint64_t lo = bucketLo(i);
    const std::uint64_t width = std::uint64_t{1} << (octave - 1);
    if (lo > std::numeric_limits<std::uint64_t>::max() - width)
        return std::numeric_limits<std::uint64_t>::max();
    return lo + width;
}

void
Histogram::reset()
{
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0;
    max_ = 0;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < kNumBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    if (p < 0.0)
        p = 0.0;
    if (p > 100.0)
        p = 100.0;
    // Rank of the target sample, 1-based: the smallest k such that at
    // least p% of samples are <= the k-th smallest one.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        cum += buckets_[i];
        if (cum >= rank) {
            std::uint64_t v = bucketHi(i) - 1;
            if (v > max_)
                v = max_;
            if (v < min_)
                v = min_;
            return v;
        }
    }
    return max_;
}

void
StatGroup::checkNewName(const std::string &name) const
{
    for (const auto &e : counters_)
        if (e.name == name)
            panic("StatGroup '{}': duplicate stat name '{}'", name_, name);
    for (const auto &e : dists_)
        if (e.name == name)
            panic("StatGroup '{}': duplicate stat name '{}'", name_, name);
    for (const auto &e : hists_)
        if (e.name == name)
            panic("StatGroup '{}': duplicate stat name '{}'", name_, name);
    for (const auto &e : formulas_)
        if (e.name == name)
            panic("StatGroup '{}': duplicate stat name '{}'", name_, name);
}

void
StatGroup::addCounter(const std::string &name, Counter *c,
                      const std::string &desc)
{
    checkNewName(name);
    counters_.push_back({name, c, desc});
}

void
StatGroup::addDistribution(const std::string &name, Distribution *d,
                           const std::string &desc)
{
    checkNewName(name);
    dists_.push_back({name, d, desc});
}

void
StatGroup::addHistogram(const std::string &name, Histogram *h,
                        const std::string &desc)
{
    checkNewName(name);
    hists_.push_back({name, h, desc});
}

void
StatGroup::addFormula(const std::string &name, std::function<double()> fn,
                      const std::string &desc)
{
    checkNewName(name);
    formulas_.push_back({name, std::move(fn), desc});
}

void
StatGroup::addChild(StatGroup *child)
{
    for (const StatGroup *c : children_) {
        if (c == child)
            panic("StatGroup '{}': child '{}' registered twice", name_,
                  child->name());
        if (c->name() == child->name())
            panic("StatGroup '{}': duplicate child name '{}'", name_,
                  child->name());
    }
    children_.push_back(child);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &e : counters_) {
        os << formatStr("{}.{} {}", full, e.name, e.counter->value());
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
    for (const auto &e : dists_) {
        os << formatStr("{}.{} count={} mean={:.4f} min={:.4f} max={:.4f}",
                          full, e.name, e.dist->count(), e.dist->mean(),
                          e.dist->min(), e.dist->max());
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
    for (const auto &e : hists_) {
        os << formatStr("{}.{} count={} mean={:.4f} min={} max={} "
                        "p50={} p90={} p99={} p999={}",
                        full, e.name, e.hist->count(), e.hist->mean(),
                        e.hist->min(), e.hist->max(), e.hist->p50(),
                        e.hist->p90(), e.hist->p99(), e.hist->p999());
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
    for (const auto &e : formulas_) {
        os << formatStr("{}.{} {:.6f}", full, e.name, e.fn());
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
    for (const StatGroup *child : children_)
        child->dump(os, full);
}

void
StatGroup::visit(StatVisitor &v, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &e : counters_)
        v.onCounter(full + "." + e.name, *e.counter, e.desc);
    for (const auto &e : dists_)
        v.onDistribution(full + "." + e.name, *e.dist, e.desc);
    for (const auto &e : hists_)
        v.onHistogram(full + "." + e.name, *e.hist, e.desc);
    for (const auto &e : formulas_)
        v.onFormula(full + "." + e.name, e.fn(), e.desc);
    for (const StatGroup *child : children_)
        child->visit(v, full);
}

void
StatGroup::resetAll()
{
    for (const auto &e : counters_)
        e.counter->reset();
    for (const auto &e : dists_)
        e.dist->reset();
    for (const auto &e : hists_)
        e.hist->reset();
    for (StatGroup *child : children_)
        child->resetAll();
}

void
StatGroup::serdeTree(Archive &ar)
{
    ar.expectCount(counters_.size(), "stat counters");
    for (const auto &e : counters_)
        e.counter->serdeState(ar);
    ar.expectCount(dists_.size(), "stat distributions");
    for (const auto &e : dists_)
        e.dist->serdeState(ar);
    ar.expectCount(hists_.size(), "stat histograms");
    for (const auto &e : hists_)
        e.hist->serdeState(ar);
    ar.expectCount(children_.size(), "stat child groups");
    for (StatGroup *child : children_)
        child->serdeTree(ar);
}

} // namespace dasdram
