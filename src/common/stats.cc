#include "stats.hh"

#include "common/strfmt.hh"

namespace dasdram
{

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    ++count_;
    sum_ += v;
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

void
StatGroup::addCounter(const std::string &name, Counter *c,
                      const std::string &desc)
{
    counters_.push_back({name, c, desc});
}

void
StatGroup::addDistribution(const std::string &name, Distribution *d,
                           const std::string &desc)
{
    dists_.push_back({name, d, desc});
}

void
StatGroup::addFormula(const std::string &name, std::function<double()> fn,
                      const std::string &desc)
{
    formulas_.push_back({name, std::move(fn), desc});
}

void
StatGroup::addChild(StatGroup *child)
{
    children_.push_back(child);
}

void
StatGroup::dump(std::ostream &os, const std::string &prefix) const
{
    const std::string full =
        prefix.empty() ? name_ : prefix + "." + name_;
    for (const auto &e : counters_) {
        os << formatStr("{}.{} {}", full, e.name, e.counter->value());
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
    for (const auto &e : dists_) {
        os << formatStr("{}.{} count={} mean={:.4f} min={:.4f} max={:.4f}",
                          full, e.name, e.dist->count(), e.dist->mean(),
                          e.dist->min(), e.dist->max());
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
    for (const auto &e : formulas_) {
        os << formatStr("{}.{} {:.6f}", full, e.name, e.fn());
        if (!e.desc.empty())
            os << "  # " << e.desc;
        os << '\n';
    }
    for (const StatGroup *child : children_)
        child->dump(os, full);
}

void
StatGroup::resetAll()
{
    for (const auto &e : counters_)
        e.counter->reset();
    for (const auto &e : dists_)
        e.dist->reset();
    for (StatGroup *child : children_)
        child->resetAll();
}

} // namespace dasdram
