#include "serde.hh"

#include "common/binfmt.hh"
#include "common/log.hh"

namespace dasdram
{

Archive::Archive() : saving_(true) {}

Archive::Archive(std::vector<unsigned char> payload)
    : saving_(false), buf_(std::move(payload))
{
}

void
Archive::raw64(std::uint64_t &v)
{
    if (saving_) {
        binfmt::appendLe(buf_, v, 8);
        return;
    }
    if (pos_ + 8 > buf_.size())
        fatal("snapshot stream truncated mid-field (offset {})", pos_);
    v = binfmt::getLe(buf_.data() + pos_, 8);
    pos_ += 8;
}

void
Archive::io(std::string &s)
{
    std::uint64_t n = s.size();
    raw64(n);
    if (saving_) {
        buf_.insert(buf_.end(), s.begin(), s.end());
        return;
    }
    if (pos_ + n > buf_.size())
        fatal("snapshot stream truncated mid-string (offset {})", pos_);
    s.assign(reinterpret_cast<const char *>(buf_.data()) + pos_,
             static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
}

void
Archive::blob(void *p, std::size_t n)
{
    if (saving_) {
        const auto *b = static_cast<const unsigned char *>(p);
        buf_.insert(buf_.end(), b, b + n);
        return;
    }
    if (pos_ + n > buf_.size())
        fatal("snapshot stream truncated mid-blob (offset {})", pos_);
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
}

void
Archive::section(const char *name)
{
    std::string s = name;
    io(s);
    if (!saving_ && s != name)
        fatal("snapshot section mismatch: expected '{}', found '{}'",
              name, s);
    if (saving_) {
        stack_.push_back(buf_.size());
        binfmt::appendLe(buf_, 0, 8); // length placeholder
    } else {
        std::uint64_t len = 0;
        raw64(len);
        if (pos_ + len > buf_.size())
            fatal("snapshot section '{}' overruns the stream", name);
        stack_.push_back(pos_ + static_cast<std::size_t>(len));
    }
}

void
Archive::end()
{
    if (stack_.empty())
        panic("Archive::end without a matching section");
    std::size_t top = stack_.back();
    stack_.pop_back();
    if (saving_) {
        binfmt::putLe(buf_.data() + top, buf_.size() - top - 8, 8);
    } else if (pos_ != top) {
        fatal("snapshot section length mismatch: {} byte(s) "
              "unconsumed", top - pos_);
    }
}

void
Archive::expectCount(std::uint64_t n, const char *what)
{
    std::uint64_t saved = n;
    raw64(saved);
    if (!saving_ && saved != n)
        fatal("snapshot shape mismatch for {}: file has {}, this "
              "configuration builds {}",
              what, saved, n);
}

std::vector<unsigned char>
Archive::take()
{
    if (!stack_.empty())
        panic("Archive::take with {} open section(s)", stack_.size());
    return std::move(buf_);
}

void
Archive::finish()
{
    if (!stack_.empty())
        panic("Archive::finish with {} open section(s)", stack_.size());
    if (pos_ != buf_.size())
        fatal("snapshot payload has {} trailing byte(s)",
              buf_.size() - pos_);
}

} // namespace dasdram
