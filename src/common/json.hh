/**
 * @file
 * Minimal JSON support for structured result export and ingestion.
 *
 * JsonWriter emits compact, single-line JSON with deterministic number
 * formatting (the same value always serialises to the same bytes, on
 * every platform), which is what makes sweep output byte-comparable
 * across runs and thread counts. JsonValue/parseJson is the matching
 * reader used by the comparison tooling; it supports the full JSON
 * grammar this repo emits (objects, arrays, strings, numbers, bools,
 * null) and nothing exotic (no \u surrogate pairs beyond the BMP).
 * As an input extension it also accepts bare NaN / Infinity /
 * -Infinity number literals, which other tools' JSONL emitters
 * sometimes produce for non-finite stats (our writer emits null).
 */

#ifndef DASDRAM_COMMON_JSON_HH
#define DASDRAM_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dasdram
{

/** Builder for compact JSON text. Misuse (e.g. a key outside an
 *  object) is a programming error and panics. */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object key; must be followed by a value or container. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view s);
    JsonWriter &value(const char *s) { return value(std::string_view(s)); }
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(unsigned v) { return value(std::uint64_t(v)); }
    JsonWriter &value(int v) { return value(std::int64_t(v)); }
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    field(std::string_view name, T &&v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

    /** The document so far (valid once all containers are closed). */
    const std::string &str() const { return out_; }

    /** Escape @p s as a JSON string literal (with quotes). */
    static std::string quoted(std::string_view s);

  private:
    void separate();

    std::string out_;
    /** One entry per open container: true while it is still empty. */
    std::vector<bool> emptyStack_;
    bool afterKey_ = false;
};

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion-ordered; duplicate keys keep the last value. */
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNumber() const { return kind == Kind::Number; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view name) const;
};

/**
 * Parse @p text as one JSON document. Returns false (and sets @p err
 * when non-null) on malformed input; trailing whitespace is allowed,
 * trailing garbage is not.
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string *err = nullptr);

} // namespace dasdram

#endif // DASDRAM_COMMON_JSON_HH
