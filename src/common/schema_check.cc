#include "schema_check.hh"

#include "common/log.hh"

namespace dasdram
{

int
checkJsonlSchema(const std::string &path,
                 const std::string &expect_schema,
                 const std::string &got_schema, int got_version,
                 int supported, const char *tool)
{
    if (got_schema != expect_schema) {
        fatal("{}: not a {} file (schema '{}')", path, expect_schema,
              got_schema);
    }
    if (got_version < 0) {
        fatal("{}: meta record has no schema version — is this a {} "
              "dump?",
              path, expect_schema);
    }
    if (got_version > supported) {
        fatal("{}: {} version {} is newer than this tool understands "
              "(version {}); rebuild {}",
              path, expect_schema, got_version, supported, tool);
    }
    return got_version;
}

} // namespace dasdram
