/**
 * @file
 * Library half of dasdram_compare: load JSONL sweep-result files keyed
 * by (workload, design, label) and diff them field by field. Lives in
 * the common library (rather than the tool) so the comparison rules —
 * in particular tolerance symmetry and NaN/infinity semantics — are
 * unit-testable.
 */

#ifndef DASDRAM_COMMON_JSONL_DIFF_HH
#define DASDRAM_COMMON_JSONL_DIFF_HH

#include <cstddef>
#include <functional>
#include <map>
#include <string>

#include "common/json.hh"

namespace dasdram
{

/** Parsed JSONL records keyed by "workload | design | label". */
using JsonlRecordMap = std::map<std::string, JsonValue>;

/** The "workload | design | label" key of one record. Missing or
 *  non-string fields render as "?". */
std::string jsonlRecordKey(const JsonValue &v);

/**
 * Load a JSONL file into @p out (later records win duplicate keys,
 * matching the append-style files the sweep tools produce). Blank
 * lines are skipped. On failure, returns false and describes the
 * problem (with file:line) in @p err.
 */
bool loadJsonlRecords(const std::string &path, JsonlRecordMap &out,
                      std::string *err);

/**
 * Numeric equality under a symmetric relative tolerance:
 *
 *   |a - b| <= tol * max(|a|, |b|, 1)
 *
 * The scale is the larger magnitude of the two values, so
 * numbersEqual(a, b, tol) == numbersEqual(b, a, tol) always — which
 * file is A and which is B cannot change the verdict. (The floor of 1
 * makes the tolerance absolute for sub-unit values, so near-zero
 * stats do not demand exact equality.)
 *
 * Non-finite values compare by class, not by arithmetic: NaN equals
 * NaN, +inf equals +inf, -inf equals -inf, and any finite/non-finite
 * or sign mixture is unequal regardless of tolerance. Two runs that
 * both produced "no data" (0/0) should diff clean.
 */
bool numbersEqual(double a, double b, double tol);

/**
 * Recursively diff @p a against @p b, invoking @p report with a
 * "<path> <message>" description per difference (pass nullptr to just
 * count). @p path names the current node ("" at the root). Returns
 * the number of differences.
 */
std::size_t
diffJsonValues(const std::string &path, const JsonValue &a,
               const JsonValue &b, double tolerance,
               const std::function<void(const std::string &path,
                                        const std::string &msg)> &report);

} // namespace dasdram

#endif // DASDRAM_COMMON_JSONL_DIFF_HH
