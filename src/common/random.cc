#include "random.hh"

#include <cmath>

namespace dasdram
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // Avoid the all-zero state (cannot occur from splitmix64, but be safe).
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    // Lemire's multiply-shift rejection-free mapping is fine here: the
    // slight modulo bias of (next() % bound) is irrelevant for workload
    // synthesis, but the multiply-shift is also faster.
    unsigned __int128 m = static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::nextZipf(std::uint64_t n, double s)
{
    if (n <= 1)
        return 0;
    // Approximate inverse CDF: for weight r^-s the CDF is roughly
    // (r/n)^(1-s) for s < 1; for s >= 1 use the classic rejection-free
    // approximation based on the continuous distribution.
    double u = nextDouble();
    if (s == 1.0)
        s = 1.0000001;
    double exponent = 1.0 - s;
    // Continuous inverse-CDF for pdf x^-s on [1, n+1).
    double hi = std::pow(static_cast<double>(n) + 1.0, exponent);
    double x = std::pow(u * (hi - 1.0) + 1.0, 1.0 / exponent);
    std::uint64_t r = static_cast<std::uint64_t>(x) - 1;
    return (r >= n) ? n - 1 : r;
}

} // namespace dasdram
