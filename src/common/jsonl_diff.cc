#include "jsonl_diff.hh"

#include <cmath>
#include <fstream>

#include "common/strfmt.hh"

namespace dasdram
{

std::string
jsonlRecordKey(const JsonValue &v)
{
    auto str = [&](const char *name) {
        const JsonValue *f = v.find(name);
        return f && f->isString() ? f->string : std::string("?");
    };
    // Stats-JSONL records (src/common/stats_jsonl.hh) carry a "type"
    // discriminator and are keyed by type + name (or epoch index);
    // sweep-result records fall through to workload/design/label.
    if (const JsonValue *type = v.find("type"); type && type->isString()) {
        if (const JsonValue *name = v.find("name");
            name && name->isString()) {
            return type->string + " | " + name->string;
        }
        if (const JsonValue *idx = v.find("index");
            idx && idx->isNumber()) {
            return type->string + " | " +
                   std::to_string(
                       static_cast<std::uint64_t>(idx->number));
        }
        return type->string;
    }
    return str("workload") + " | " + str("design") + " | " +
           str("label");
}

bool
loadJsonlRecords(const std::string &path, JsonlRecordMap &out,
                 std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        if (err)
            *err = formatStr("cannot open '{}'", path);
        return false;
    }
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonValue v;
        std::string parse_err;
        if (!parseJson(line, v, &parse_err)) {
            if (err)
                *err = formatStr("{}:{}: {}", path, lineno, parse_err);
            return false;
        }
        if (!v.isObject()) {
            if (err)
                *err = formatStr("{}:{}: not an object", path, lineno);
            return false;
        }
        out[jsonlRecordKey(v)] = std::move(v);
    }
    return true;
}

bool
numbersEqual(double a, double b, double tol)
{
    if (std::isnan(a) || std::isnan(b))
        return std::isnan(a) && std::isnan(b);
    if (std::isinf(a) || std::isinf(b))
        return a == b; // same-sign infinities compare equal exactly
    if (a == b)
        return true;
    if (tol <= 0.0)
        return false;
    double scale = std::max(std::fabs(a), std::fabs(b));
    return std::fabs(a - b) <= tol * std::max(scale, 1.0);
}

std::size_t
diffJsonValues(const std::string &path, const JsonValue &a,
               const JsonValue &b, double tolerance,
               const std::function<void(const std::string &,
                                        const std::string &)> &report)
{
    auto note = [&](const std::string &msg) {
        if (report)
            report(path, msg);
    };

    if (a.kind != b.kind) {
        note("kind mismatch");
        return 1;
    }
    switch (a.kind) {
      case JsonValue::Kind::Number:
        if (!numbersEqual(a.number, b.number, tolerance)) {
            char buf[96];
            std::snprintf(buf, sizeof(buf), "%.17g != %.17g", a.number,
                          b.number);
            note(buf);
            return 1;
        }
        return 0;
      case JsonValue::Kind::String:
        if (a.string != b.string) {
            note("\"" + a.string + "\" != \"" + b.string + "\"");
            return 1;
        }
        return 0;
      case JsonValue::Kind::Bool:
        if (a.boolean != b.boolean) {
            note("bool mismatch");
            return 1;
        }
        return 0;
      case JsonValue::Kind::Null:
        return 0;
      case JsonValue::Kind::Array: {
        if (a.array.size() != b.array.size()) {
            note("array length mismatch");
            return 1;
        }
        std::size_t diffs = 0;
        for (std::size_t i = 0; i < a.array.size(); ++i)
            diffs += diffJsonValues(path + "[" + std::to_string(i) +
                                        "]",
                                    a.array[i], b.array[i], tolerance,
                                    report);
        return diffs;
      }
      case JsonValue::Kind::Object: {
        std::size_t diffs = 0;
        for (const auto &[k, av] : a.object) {
            const JsonValue *bv = b.find(k);
            if (!bv) {
                note("missing field '" + k + "' in B");
                ++diffs;
                continue;
            }
            diffs += diffJsonValues(path + "." + k, av, *bv, tolerance,
                                    report);
        }
        for (const auto &[k, bv] : b.object) {
            (void)bv;
            if (!a.find(k)) {
                note("extra field '" + k + "' in B");
                ++diffs;
            }
        }
        return diffs;
      }
    }
    return 0;
}

} // namespace dasdram
