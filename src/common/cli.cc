#include "cli.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"
#include "common/strfmt.hh"

namespace dasdram
{

namespace
{

bool
parseU64Strict(const std::string &s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    errno = 0;
    std::uint64_t v = std::strtoull(s.c_str(), &end, 0);
    if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-')
        return false;
    out = v;
    return true;
}

bool
parseDoubleStrict(const std::string &s, double &out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

} // namespace

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
}

CliParser &
CliParser::add(Opt opt)
{
    if (find(opt.name))
        panic("duplicate CLI option '{}'", opt.name);
    opts_.push_back(std::move(opt));
    return *this;
}

CliParser &
CliParser::flag(const std::string &name, const std::string &help,
                const std::string &alias)
{
    return add(Opt{name, alias, "", help, Kind::Flag, false, false, {}});
}

CliParser &
CliParser::toggle(const std::string &name, const std::string &help)
{
    return add(
        Opt{name, "", "", help, Kind::Toggle, false, false, {}});
}

CliParser &
CliParser::option(const std::string &name, const std::string &value_name,
                  const std::string &help, const std::string &alias)
{
    return add(
        Opt{name, alias, value_name, help, Kind::String, false, false, {}});
}

CliParser &
CliParser::optionUInt(const std::string &name,
                      const std::string &value_name,
                      const std::string &help, const std::string &alias)
{
    return add(
        Opt{name, alias, value_name, help, Kind::UInt, false, false, {}});
}

CliParser &
CliParser::optionDouble(const std::string &name,
                        const std::string &value_name,
                        const std::string &help, const std::string &alias)
{
    return add(
        Opt{name, alias, value_name, help, Kind::Double, false, false, {}});
}

CliParser &
CliParser::positionals(const std::string &value_name,
                       const std::string &help, std::size_t min,
                       std::size_t max)
{
    posName_ = value_name;
    posHelp_ = help;
    posMin_ = min;
    posMax_ = max;
    posDeclared_ = true;
    return *this;
}

CliParser::Opt *
CliParser::find(const std::string &name)
{
    for (Opt &o : opts_) {
        if (o.name == name || (!o.alias.empty() && o.alias == name))
            return &o;
    }
    return nullptr;
}

bool
CliParser::tryParse(int argc, char **argv, std::string &err)
{
    help_ = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            help_ = true;
            return true;
        }
        if (arg.empty() || arg[0] != '-' || arg == "-") {
            positionals_.push_back(arg);
            continue;
        }

        // Accept --flag=value as well as --flag value. Split at the
        // first '=' only, so --set=key=value keeps its key=value part.
        std::string inline_value;
        bool has_inline = false;
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
            if (std::size_t eq = arg.find('=');
                eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.erase(eq);
                has_inline = true;
            }
        }

        Opt *opt = find(arg);
        bool toggle_on = true;
        if (!opt && arg.compare(0, 5, "--no-") == 0) {
            opt = find("--" + arg.substr(5));
            if (opt && opt->kind != Kind::Toggle)
                opt = nullptr;
            toggle_on = false;
        }
        if (!opt) {
            err = formatStr("unknown argument '{}' (try --help)", arg);
            return false;
        }

        if (opt->kind == Kind::Flag || opt->kind == Kind::Toggle) {
            if (has_inline) {
                err = formatStr("'{}' takes no value", arg);
                return false;
            }
            opt->seen = true;
            opt->toggleState = toggle_on;
            continue;
        }

        std::string value;
        if (has_inline) {
            value = inline_value;
        } else if (i + 1 < argc) {
            value = argv[++i];
        } else {
            err = formatStr("missing value for {}", opt->name);
            return false;
        }
        if (opt->kind == Kind::UInt) {
            std::uint64_t v;
            if (!parseU64Strict(value, v)) {
                err = formatStr("{} needs an unsigned number, got '{}'",
                                opt->name, value);
                return false;
            }
        } else if (opt->kind == Kind::Double) {
            double v;
            if (!parseDoubleStrict(value, v)) {
                err = formatStr("{} needs a number, got '{}'",
                                opt->name, value);
                return false;
            }
        }
        opt->seen = true;
        opt->values.push_back(std::move(value));
    }

    if (!posDeclared_ && !positionals_.empty()) {
        err = formatStr("unexpected argument '{}'", positionals_[0]);
        return false;
    }
    if (positionals_.size() < posMin_ ||
        (posMax_ != kNoLimit && positionals_.size() > posMax_)) {
        err = posMin_ == posMax_
                  ? formatStr("expected {} {} argument(s), got {}",
                              posMin_, posName_, positionals_.size())
                  : formatStr("expected {} to {} {} argument(s), got {}",
                              posMin_,
                              posMax_ == kNoLimit
                                  ? std::string("unlimited")
                                  : std::to_string(posMax_),
                              posName_, positionals_.size());
        return false;
    }
    return true;
}

void
CliParser::parse(int argc, char **argv)
{
    std::string err;
    if (!tryParse(argc, argv, err))
        fatal("{}\n{}", err, usage());
    if (help_) {
        std::fputs(usage().c_str(), stdout);
        std::exit(0);
    }
}

std::string
CliParser::usage() const
{
    std::string out = "usage: " + program_ + " [options]";
    if (posDeclared_) {
        out += " <" + posName_ + ">";
        if (posMax_ != 1)
            out += "...";
    }
    out += "\n  " + summary_ + "\n";
    if (posDeclared_ && !posHelp_.empty())
        out += "  <" + posName_ + ">: " + posHelp_ + "\n";
    out += "options:\n";

    std::vector<std::string> lhs;
    std::size_t width = 0;
    for (const Opt &o : opts_) {
        std::string l = "  " + o.name;
        if (o.kind == Kind::Toggle)
            l += " / --no-" + o.name.substr(2);
        if (!o.alias.empty())
            l += ", " + o.alias;
        if (!o.valueName.empty())
            l += " <" + o.valueName + ">";
        width = std::max(width, l.size());
        lhs.push_back(std::move(l));
    }
    for (std::size_t i = 0; i < opts_.size(); ++i) {
        out += lhs[i];
        out.append(width + 2 - lhs[i].size(), ' ');
        out += opts_[i].help + "\n";
    }
    out += "  --help, -h";
    out.append(width > 12 ? width - 10 : 2, ' ');
    out += "show this help\n";
    return out;
}

bool
CliParser::given(const std::string &name) const
{
    return require(name, Kind::Flag).seen;
}

const CliParser::Opt &
CliParser::require(const std::string &name, Kind kind) const
{
    for (const Opt &o : opts_) {
        if (o.name == name) {
            // given() passes Kind::Flag as a wildcard: presence is
            // meaningful for every option kind.
            if (kind != Kind::Flag && o.kind != kind)
                panic("CLI option '{}' read with the wrong type", name);
            return o;
        }
    }
    panic("CLI option '{}' was never declared", name);
}

std::string
CliParser::str(const std::string &name, const std::string &def) const
{
    const Opt &o = require(name, Kind::String);
    return o.values.empty() ? def : o.values.back();
}

const std::vector<std::string> &
CliParser::strs(const std::string &name) const
{
    return require(name, Kind::String).values;
}

std::uint64_t
CliParser::uns(const std::string &name, std::uint64_t def) const
{
    const Opt &o = require(name, Kind::UInt);
    if (o.values.empty())
        return def;
    std::uint64_t v = 0;
    parseU64Strict(o.values.back(), v); // validated during parse
    return v;
}

double
CliParser::dbl(const std::string &name, double def) const
{
    const Opt &o = require(name, Kind::Double);
    if (o.values.empty())
        return def;
    double v = 0;
    parseDoubleStrict(o.values.back(), v); // validated during parse
    return v;
}

bool
CliParser::enabled(const std::string &name, bool def) const
{
    const Opt &o = require(name, Kind::Toggle);
    return o.seen ? o.toggleState : def;
}

} // namespace dasdram
