/**
 * @file
 * Fundamental scalar types used throughout the simulator.
 */

#ifndef DASDRAM_COMMON_TYPES_HH
#define DASDRAM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace dasdram
{

/** Physical or virtual byte address. */
using Addr = std::uint64_t;

/** A point in time or a duration, in memory-controller clock cycles. */
using Cycle = std::uint64_t;

/** Retired-instruction count. */
using InstCount = std::uint64_t;

/** Sentinel for "never" / "not scheduled". */
constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

/** Sentinel for an invalid address. */
constexpr Addr kAddrInvalid = std::numeric_limits<Addr>::max();

/** Bytes per kibibyte / mebibyte / gibibyte. */
constexpr std::uint64_t KiB = 1024ULL;
constexpr std::uint64_t MiB = 1024ULL * KiB;
constexpr std::uint64_t GiB = 1024ULL * MiB;

} // namespace dasdram

#endif // DASDRAM_COMMON_TYPES_HH
