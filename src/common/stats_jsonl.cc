#include "stats_jsonl.hh"

#include "common/json.hh"

namespace dasdram
{

namespace
{

/** Emits one JSONL record per stat. */
class JsonlVisitor : public StatVisitor
{
  public:
    explicit JsonlVisitor(std::ostream &os) : os_(os) {}

    void
    onCounter(const std::string &name, const Counter &c,
              const std::string &) override
    {
        JsonWriter w;
        w.beginObject()
            .field("type", "counter")
            .field("name", name)
            .field("value", c.value())
            .endObject();
        os_ << w.str() << '\n';
    }

    void
    onDistribution(const std::string &name, const Distribution &d,
                   const std::string &) override
    {
        JsonWriter w;
        w.beginObject()
            .field("type", "dist")
            .field("name", name)
            .field("count", d.count())
            .field("mean", d.mean())
            .field("min", d.min())
            .field("max", d.max())
            .field("sum", d.sum())
            .endObject();
        os_ << w.str() << '\n';
    }

    void
    onHistogram(const std::string &name, const Histogram &h,
                const std::string &) override
    {
        JsonWriter w;
        w.beginObject()
            .field("type", "hist")
            .field("name", name)
            .field("count", h.count())
            .field("mean", h.mean())
            .field("min", h.min())
            .field("max", h.max())
            .field("p50", h.p50())
            .field("p90", h.p90())
            .field("p99", h.p99())
            .field("p999", h.p999());
        w.key("buckets").beginArray();
        for (std::size_t i = 0; i < h.numBuckets(); ++i) {
            if (h.bucketCount(i) == 0)
                continue;
            w.beginArray()
                .value(Histogram::bucketLo(i))
                .value(Histogram::bucketHi(i))
                .value(h.bucketCount(i))
                .endArray();
        }
        w.endArray().endObject();
        os_ << w.str() << '\n';
    }

    void
    onFormula(const std::string &name, double value,
              const std::string &) override
    {
        JsonWriter w;
        w.beginObject()
            .field("type", "formula")
            .field("name", name)
            .field("value", value)
            .endObject();
        os_ << w.str() << '\n';
    }

  private:
    std::ostream &os_;
};

} // namespace

void
writeStatsJsonlGroup(std::ostream &os, const StatGroup &group)
{
    JsonlVisitor v(os);
    group.visit(v);
}

void
writeStatsJsonl(std::ostream &os, const StatGroup &root,
                const EpochSeries *epochs, const StatsJsonlMeta &meta)
{
    {
        JsonWriter w;
        w.beginObject()
            .field("type", "meta")
            .field("schema", kStatsJsonlSchema)
            .field("version", std::int64_t{kStatsJsonlVersion})
            .field("workload", meta.workload)
            .field("design", meta.design)
            .field("label", meta.label)
            .field("seed", meta.seed)
            .field("instructions", meta.instructions)
            .field("epoch_cycles", meta.epochCycles)
            .endObject();
        os << w.str() << '\n';
    }

    JsonlVisitor v(os);
    root.visit(v);

    if (!epochs)
        return;
    const auto &names = epochs->names();
    for (const auto &e : epochs->epochs()) {
        JsonWriter w;
        w.beginObject()
            .field("type", "epoch")
            .field("index", e.index)
            .field("start", e.start)
            .field("end", e.end);
        w.key("values").beginObject();
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (e.deltas[i] != 0.0)
                w.field(names[i], e.deltas[i]);
        }
        w.endObject().endObject();
        os << w.str() << '\n';
    }
}

} // namespace dasdram
