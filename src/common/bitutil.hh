/**
 * @file
 * Small bit-manipulation helpers used by address mapping and caches.
 */

#ifndef DASDRAM_COMMON_BITUTIL_HH
#define DASDRAM_COMMON_BITUTIL_HH

#include <bit>
#include <cstdint>

namespace dasdram
{

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. @pre isPowerOfTwo(v). */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    return static_cast<unsigned>(std::countr_zero(v));
}

/** Ceiling of log2(v) for v >= 1. */
constexpr unsigned
log2Ceil(std::uint64_t v)
{
    return v <= 1 ? 0
                  : static_cast<unsigned>(64 - std::countl_zero(v - 1));
}

/** Extract bits [lo, lo+width) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned width)
{
    return (width >= 64) ? (v >> lo)
                         : ((v >> lo) & ((1ULL << width) - 1));
}

/** Integer division rounding up. @pre d > 0. */
constexpr std::uint64_t
divCeil(std::uint64_t n, std::uint64_t d)
{
    return (n + d - 1) / d;
}

} // namespace dasdram

#endif // DASDRAM_COMMON_BITUTIL_HH
