#include "epoch_series.hh"

#include "common/log.hh"

namespace dasdram
{

namespace
{

/** Collects names on the first pass, values on every later pass. */
class CollectVisitor : public StatVisitor
{
  public:
    CollectVisitor(std::vector<std::string> *names,
                   std::vector<double> &values)
        : names_(names), values_(values)
    {}

    void
    onCounter(const std::string &name, const Counter &c,
              const std::string &) override
    {
        push(name, static_cast<double>(c.value()));
    }

    void
    onDistribution(const std::string &name, const Distribution &d,
                   const std::string &) override
    {
        push(name + ".count", static_cast<double>(d.count()));
        push(name + ".sum", d.sum());
    }

    void
    onHistogram(const std::string &name, const Histogram &h,
                const std::string &) override
    {
        push(name + ".count", static_cast<double>(h.count()));
        push(name + ".sum", h.sum());
    }

  private:
    void
    push(const std::string &name, double v)
    {
        if (names_)
            names_->push_back(name);
        values_.push_back(v);
    }

    std::vector<std::string> *names_;
    std::vector<double> &values_;
};

} // namespace

EpochSeries::EpochSeries(const StatGroup &group, Cycle epoch_length)
    : group_(&group), epochLength_(epoch_length)
{
    if (epochLength_ == 0)
        panic("EpochSeries: epoch length must be > 0");
    CollectVisitor v(&names_, prev_);
    group_->visit(v);
}

void
EpochSeries::collect(std::vector<double> &out) const
{
    out.clear();
    CollectVisitor v(nullptr, out);
    group_->visit(v);
    if (out.size() != names_.size()) {
        panic("EpochSeries: stat tree changed shape after construction "
              "({} values, expected {})",
              out.size(), names_.size());
    }
}

void
EpochSeries::maybeSample(Cycle now)
{
    Cycle next_end = base_ + (nextIndex_ + 1) * epochLength_;
    if (now < next_end)
        return;
    collect(scratch_);
    bool first = true;
    while (now >= next_end) {
        Epoch e;
        e.index = nextIndex_;
        e.start = next_end - epochLength_;
        e.end = next_end;
        e.deltas.resize(names_.size());
        if (first) {
            for (std::size_t i = 0; i < names_.size(); ++i)
                e.deltas[i] = scratch_[i] - prev_[i];
            first = false;
        }
        epochs_.push_back(std::move(e));
        ++nextIndex_;
        next_end += epochLength_;
    }
    prev_ = scratch_;
}

void
EpochSeries::restart(Cycle now)
{
    epochs_.clear();
    nextIndex_ = 0;
    base_ = now;
    collect(scratch_);
    prev_ = scratch_;
}

void
EpochSeries::serdeState(Archive &ar)
{
    ar.section("epochSeries");
    ar.io(epochLength_);
    ar.io(base_);
    ar.io(nextIndex_);
    ar.expectCount(names_.size(), "epoch-series tracked stats");
    ar.io(prev_);
    std::uint64_t n = epochs_.size();
    ar.io(n);
    if (ar.loading())
        epochs_.resize(static_cast<std::size_t>(n));
    for (Epoch &e : epochs_) {
        ar.io(e.index);
        ar.io(e.start);
        ar.io(e.end);
        ar.io(e.deltas);
    }
    ar.end();
}

void
EpochSeries::flush(Cycle now)
{
    // Emit any still-pending complete epochs first: a fast-forwarding
    // caller may land here with boundaries it never sampled, and the
    // trailing partial epoch must not swallow whole epochs' worth of
    // time. (Under unit-cycle advancement this is a no-op.)
    maybeSample(now);
    const Cycle last_boundary = base_ + nextIndex_ * epochLength_;
    if (now <= last_boundary)
        return;
    collect(scratch_);
    Epoch e;
    e.index = nextIndex_;
    e.start = last_boundary;
    e.end = now;
    e.deltas.resize(names_.size());
    for (std::size_t i = 0; i < names_.size(); ++i)
        e.deltas[i] = scratch_[i] - prev_[i];
    epochs_.push_back(std::move(e));
    ++nextIndex_;
    prev_ = scratch_;
}

} // namespace dasdram
