#include "config.hh"

#include <cstdlib>

#include "log.hh"

namespace dasdram
{

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

void
Config::set(const std::string &key, std::int64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, std::uint64_t value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    values_[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    values_[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '{}' is not an integer: '{}'", key, it->second);
    return v;
}

std::uint64_t
Config::getUInt(const std::string &key, std::uint64_t def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    std::uint64_t v = std::strtoull(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '{}' is not an unsigned integer: '{}'", key,
              it->second);
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("config key '{}' is not a number: '{}'", key, it->second);
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    const std::string &s = it->second;
    if (s == "true" || s == "1" || s == "yes" || s == "on")
        return true;
    if (s == "false" || s == "0" || s == "no" || s == "off")
        return false;
    fatal("config key '{}' is not a boolean: '{}'", key, s);
}

bool
Config::applyOverride(const std::string &assignment)
{
    auto eq = assignment.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(assignment.substr(0, eq), assignment.substr(eq + 1));
    return true;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

} // namespace dasdram
