#include "trace_format.hh"

#include <cctype>

#include "common/binfmt.hh"
#include "common/strfmt.hh"

namespace dasdram
{

const char *
toString(TraceFormat f)
{
    switch (f) {
      case TraceFormat::Auto: return "auto";
      case TraceFormat::Ramulator: return "ramulator";
      case TraceFormat::Dramsim3: return "dramsim3";
      case TraceFormat::Binary: return "binary";
    }
    return "?";
}

bool
parseTraceFormat(const std::string &name, TraceFormat &out)
{
    if (name == "auto") {
        out = TraceFormat::Auto;
    } else if (name == "ramulator") {
        out = TraceFormat::Ramulator;
    } else if (name == "dramsim3") {
        out = TraceFormat::Dramsim3;
    } else if (name == "binary") {
        out = TraceFormat::Binary;
    } else {
        return false;
    }
    return true;
}

TraceFormat
formatFromPath(const std::string &path)
{
    std::string p = path;
    if (p.size() > 3 && p.compare(p.size() - 3, 3, ".gz") == 0)
        p.erase(p.size() - 3);
    auto ends_with = [&p](std::string_view suffix) {
        return p.size() >= suffix.size() &&
               p.compare(p.size() - suffix.size(), suffix.size(),
                         suffix) == 0;
    };
    if (ends_with(".dastrace") || ends_with(".bin"))
        return TraceFormat::Binary;
    if (ends_with(".ds3") || ends_with(".dramsim"))
        return TraceFormat::Dramsim3;
    return TraceFormat::Ramulator;
}

namespace
{

/** Split @p line into whitespace-separated tokens, honouring `#`
 *  comments. Returns the token count (capped at @p max). */
unsigned
tokenize(std::string_view line, std::string_view *tok, unsigned max,
         bool &overflow)
{
    unsigned n = 0;
    overflow = false;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        if (i >= line.size() || line[i] == '#')
            break;
        std::size_t start = i;
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        if (n == max) {
            overflow = true;
            return n;
        }
        tok[n++] = line.substr(start, i - start);
    }
    return n;
}

/** Strict unsigned parse (decimal, or hex with 0x); whole token. */
bool
parseU64(std::string_view tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    unsigned base = 10;
    std::size_t i = 0;
    if (tok.size() > 2 && tok[0] == '0' &&
        (tok[1] == 'x' || tok[1] == 'X')) {
        base = 16;
        i = 2;
    }
    std::uint64_t v = 0;
    for (; i < tok.size(); ++i) {
        char c = tok[i];
        unsigned digit;
        if (c >= '0' && c <= '9') {
            digit = static_cast<unsigned>(c - '0');
        } else if (base == 16 && c >= 'a' && c <= 'f') {
            digit = static_cast<unsigned>(c - 'a') + 10;
        } else if (base == 16 && c >= 'A' && c <= 'F') {
            digit = static_cast<unsigned>(c - 'A') + 10;
        } else {
            return false;
        }
        if (v > (~0ull - digit) / base)
            return false; // overflow
        v = v * base + digit;
    }
    out = v;
    return true;
}

std::uint32_t
saturate32(std::uint64_t v)
{
    return v > 0xffffffffull ? 0xffffffffu
                             : static_cast<std::uint32_t>(v);
}

using binfmt::getLe;
using binfmt::putLe;

} // namespace

bool
parseRamulatorLine(std::string_view line, ParsedLine &out,
                   std::string &err)
{
    std::string_view tok[4];
    bool overflow = false;
    unsigned n = tokenize(line, tok, 4, overflow);
    out.count = 0;
    if (n == 0 && !overflow)
        return true; // blank/comment
    if (overflow || n > 3 || n < 2) {
        err = formatStr("expected '<bubbles> <load-addr> "
                        "[<store-addr>]', got {} column(s)",
                        overflow ? 4u : n);
        return false;
    }
    std::uint64_t bubbles = 0, load = 0, store = 0;
    if (!parseU64(tok[0], bubbles)) {
        err = formatStr("bad bubble count '{}'", std::string(tok[0]));
        return false;
    }
    if (!parseU64(tok[1], load)) {
        err = formatStr("bad load address '{}'", std::string(tok[1]));
        return false;
    }
    out.entry[0] = TraceEntry{saturate32(bubbles), load, false};
    out.count = 1;
    if (n == 3) {
        if (!parseU64(tok[2], store)) {
            err = formatStr("bad store address '{}'",
                            std::string(tok[2]));
            return false;
        }
        out.entry[1] = TraceEntry{0, store, true};
        out.count = 2;
    }
    return true;
}

bool
parseDramsim3Line(std::string_view line, Dramsim3Cursor &cur,
                  ParsedLine &out, std::string &err)
{
    std::string_view tok[4];
    bool overflow = false;
    unsigned n = tokenize(line, tok, 4, overflow);
    out.count = 0;
    if (n == 0 && !overflow)
        return true; // blank/comment
    if (overflow || n != 3) {
        err = formatStr("expected '<addr> <R/W> <cycle>', got {} "
                        "column(s)",
                        overflow ? 4u : n);
        return false;
    }
    std::uint64_t addr = 0, cycle = 0;
    if (!parseU64(tok[0], addr)) {
        err = formatStr("bad address '{}'", std::string(tok[0]));
        return false;
    }
    bool is_write;
    if (tok[1] == "R" || tok[1] == "READ") {
        is_write = false;
    } else if (tok[1] == "W" || tok[1] == "WRITE") {
        is_write = true;
    } else {
        err = formatStr("bad op '{}' (expected R/W/READ/WRITE)",
                        std::string(tok[1]));
        return false;
    }
    if (!parseU64(tok[2], cycle)) {
        err = formatStr("bad cycle '{}'", std::string(tok[2]));
        return false;
    }
    // Arrival spacing becomes the instruction gap; a non-monotonic
    // stamp (merged traces) degrades to back-to-back, not an error.
    std::uint64_t delta =
        cur.first ? 0 : (cycle > cur.lastCycle ? cycle - cur.lastCycle : 0);
    cur.first = false;
    cur.lastCycle = cycle;
    out.entry[0] = TraceEntry{saturate32(delta), addr, is_write};
    out.count = 1;
    return true;
}

void
encodeBinaryHeader(const BinaryTraceHeader &h, unsigned char *dst)
{
    putLe(dst + 0, h.magic, 4);
    putLe(dst + 4, h.version, 2);
    putLe(dst + 6, h.flags, 2);
    putLe(dst + 8, h.records, 8);
}

bool
decodeBinaryHeader(const unsigned char *src, BinaryTraceHeader &out,
                   std::string &err)
{
    out.magic = static_cast<std::uint32_t>(getLe(src + 0, 4));
    out.version = static_cast<std::uint16_t>(getLe(src + 4, 2));
    out.flags = static_cast<std::uint16_t>(getLe(src + 6, 2));
    out.records = getLe(src + 8, 8);
    if (out.magic != kBinaryTraceMagic) {
        err = formatStr("bad magic 0x{:x} (not a dasdram binary trace)",
                        out.magic);
        return false;
    }
    if (out.version > kBinaryTraceVersion || out.version == 0) {
        err = formatStr("binary-trace version {} is newer than this "
                        "build understands (max {})",
                        out.version, kBinaryTraceVersion);
        return false;
    }
    return true;
}

void
encodeBinaryRecord(const TraceEntry &e, unsigned char *dst)
{
    putLe(dst + 0, e.gap, 4);
    putLe(dst + 4, e.addr, 8);
    dst[12] = e.isWrite ? 1 : 0;
}

void
decodeBinaryRecord(const unsigned char *src, TraceEntry &out)
{
    out.gap = static_cast<std::uint32_t>(getLe(src + 0, 4));
    out.addr = getLe(src + 4, 8);
    out.isWrite = (src[12] & 1) != 0;
}

} // namespace dasdram
