/**
 * @file
 * The unified workload API: one string grammar describing what every
 * core executes, parsed in one place and consumed by SimConfig,
 * System, the experiment/sweep drivers and every front-end binary.
 *
 * Grammar (one spec = one workload; see README for the table):
 *
 *   spec:<name>       synthetic SPEC CPU2006 profile (Table 2), e.g.
 *                     spec:mcf — `synth:<name>` is an accepted synonym
 *   spec:M1 .. M8     a Table 2 multi-programming mix (4 cores)
 *   file:<path>[:format=<f>][:loop=<0|1>][:cores=<n>]
 *                     stream an external trace file; format is
 *                     auto|ramulator|dramsim3|binary (default: auto),
 *                     loop defaults to 1 (rewind at EOF — fixed-
 *                     instruction runs never exhaust), cores=<n>
 *                     round-robin-shards the one file across n cores
 *   mix:<e>,<e>,...   one element per core; each element is any
 *                     non-mix spec (or a bare benchmark name)
 *
 * Legacy spellings remain valid so existing scripts keep working:
 * a bare benchmark name ("mcf"), a mix name ("M3") and a comma-
 * separated benchmark list ("mcf,lbm") parse as before.
 */

#ifndef DASDRAM_WORKLOAD_WORKLOAD_SPEC_HH
#define DASDRAM_WORKLOAD_WORKLOAD_SPEC_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/trace.hh"
#include "workload/trace_format.hh"

namespace dasdram
{

/** What one core executes: a synthetic profile or an external trace. */
struct WorkloadPart
{
    /** Synthetic profile name; empty for file parts. */
    std::string profile;

    /** Trace-file path; empty for synthetic parts. */
    std::string path;
    TraceFormat format = TraceFormat::Auto;
    bool loop = true;
    unsigned shard = 0;      ///< round-robin shard of a shared file
    unsigned shardCount = 1;

    bool isFile() const { return !path.empty(); }

    /** Display label: the profile name, or "file:<path>[#i/n]". */
    std::string label() const;
};

/** A parsed workload: a display name plus one part per core. */
struct WorkloadSpec
{
    std::string name;                ///< display ("mcf", "M3", ...)
    std::vector<WorkloadPart> parts; ///< one per core

    unsigned
    numCores() const
    {
        return static_cast<unsigned>(parts.size());
    }

    /**
     * Parse the grammar above; fatal() on malformed specs (front-end
     * use, where a bad spec is a user error).
     */
    static WorkloadSpec parse(const std::string &text);

    /** Non-fatal parse; false with a reason in @p err on bad specs. */
    static bool tryParse(const std::string &text, WorkloadSpec &out,
                         std::string *err = nullptr);

    /** Single synthetic benchmark on one core (fatal if unknown). */
    static WorkloadSpec single(const std::string &bench);

    /** Multi-programming mix Mi (0-based index into Table 2). */
    static WorkloadSpec mix(std::size_t i);
};

/**
 * Build one TraceSource per core for @p w. Synthetic parts use the
 * deterministic per-(seed, core) stream identity the experiment layer
 * has always used; file parts stream through FileTraceSource in
 * O(buffer) memory. @p row_bytes / @p line_bytes parameterise the
 * synthetic generator (must match the DRAM geometry).
 */
std::vector<std::unique_ptr<TraceSource>>
buildTraces(const WorkloadSpec &w, std::uint64_t seed,
            std::uint64_t row_bytes, std::uint64_t line_bytes);

} // namespace dasdram

#endif // DASDRAM_WORKLOAD_WORKLOAD_SPEC_HH
