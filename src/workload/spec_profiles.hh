/**
 * @file
 * Synthetic behavioural profiles of the ten SPEC CPU2006 memory-bound
 * benchmarks used by the paper (Table 2), and the eight multi-
 * programming mixes M1–M8.
 *
 * The profiles parameterise the synthetic trace generator: footprint,
 * memory intensity, streaming vs. hot-set vs. uniform-random mix,
 * hot-set size and skew, spatial run length and phase churn. Values are
 * calibrated so that measured MPKI and footprints land near Figure 7b,
 * and so the qualitative behaviours the paper leans on are present
 * (e.g. GemsFDTD/milc phase churn → high PPKM; libquantum streaming →
 * row-buffer locality; mcf large-footprint pointer chasing).
 */

#ifndef DASDRAM_WORKLOAD_SPEC_PROFILES_HH
#define DASDRAM_WORKLOAD_SPEC_PROFILES_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace dasdram
{

/** Generator parameters for one benchmark. */
struct BenchmarkProfile
{
    std::string name;

    /** Resident footprint in MiB (distinct bytes touched). */
    double footprintMiB = 256;

    /** Fraction of instructions that are memory operations. */
    double memRatio = 0.30;

    /** Fraction of memory operations that are stores. */
    double writeFraction = 0.15;

    /**
     * Probability an access immediately reuses one of the last few
     * lines (captures register-spill/stack locality; lands in L1).
     */
    double reuseProb = 0.60;

    /// @name Pattern mix for non-reuse accesses (must sum to 1)
    /// @{
    double pStream = 0.3;   ///< sequential sweeps over the footprint
    double pWork = 0.4;     ///< wandering working-set ring (recency
                            ///< locality, flat lifetime frequency — what
                            ///< dynamic migration exploits and lifetime
                            ///< profiling cannot)
    double pHot = 0.25;     ///< skewed stable hot set (zipf frequency —
                            ///< what static profiling CAN capture)
    double pUniform = 0.05; ///< uniform random over the footprint
    /// @}

    /** Working-set ring size in pages (rows). */
    std::uint64_t workingSetPages = 2000;

    /**
     * Probability that a working-set access replaces the oldest ring
     * entry with a fresh random page. 1/churn ≈ accesses per page per
     * residence; drives PPKM.
     */
    double workingSetChurn = 0.01;

    /**
     * The ring and hot set draw pages from an active region of
     * activeRegionFactor × workingSetPages (clamped to the footprint).
     * The factor sets lifetime-touched rows per migration group: the
     * simultaneous density is 32/factor rows per group, while over a
     * profiling lifetime several ring turnovers touch far more — which
     * is why frequency-based static assignment captures only a
     * fraction of a recency working set.
     */
    double activeRegionFactor = 15.0;

    /**
     * Hot-set size as a fraction of the footprint. Hot pages are
     * scattered uniformly over the whole footprint, so this is also the
     * expected fraction of hot rows per migration group — the quantity
     * that competes with the fast-level capacity ratio (Figure 9c).
     */
    double hotFraction = 0.08;

    /** Zipf skew within the hot region (0 = uniform). */
    double zipfS = 0.8;

    /**
     * Instructions per program phase; at each phase boundary the hot
     * region moves, invalidating previously hot rows (what dynamic
     * migration exploits and static profiling cannot).
     */
    InstCount phaseInstructions = 50'000'000;

    /**
     * Fraction of the hot-set layout that relocates at each phase
     * boundary (sticky random walk). Drives PPKM and the gap between
     * static profiling and dynamic migration.
     */
    double phaseDrift = 0.25;

    /** Number of concurrent streaming sequences. */
    unsigned streams = 2;

    /** Sequential lines accessed per chosen page (spatial locality). */
    unsigned runLength = 8;
};

/** Look up a profile by SPEC benchmark name. Fatal if unknown. */
const BenchmarkProfile &specProfile(const std::string &name);

/** Non-fatal lookup: nullptr when @p name is not a known profile. */
const BenchmarkProfile *findSpecProfile(const std::string &name);

/** All ten single-programming workloads (Table 2 order). */
const std::vector<std::string> &specBenchmarks();

/** The eight 4-way multi-programming mixes M1–M8 (Table 2). */
const std::vector<std::vector<std::string>> &specMixes();

/** Name of mix @p i (0-based): "M1".."M8". */
std::string mixName(std::size_t i);

} // namespace dasdram

#endif // DASDRAM_WORKLOAD_SPEC_PROFILES_HH
