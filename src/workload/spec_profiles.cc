#include "spec_profiles.hh"

#include <map>

#include "common/log.hh"

namespace dasdram
{

namespace
{

/**
 * Profile table. Footprints/MPKI targets follow Figure 7b and published
 * SPEC CPU2006 characterisations; behavioural archetypes:
 *  - libquantum/lbm: streaming (high row-buffer locality, static-friendly)
 *  - mcf: large-footprint pointer chasing, flat skew (latency-bound)
 *  - GemsFDTD/milc: strong phase churn (high PPKM; hurts static AND
 *    narrows the DAS vs DAS-FM gap the paper discusses)
 *  - astar/cactusADM: low intensity
 * Phase lengths are time-compressed to match our shorter simulations
 * (the paper runs 100M instructions; defaults here assume ~10M).
 */
std::vector<BenchmarkProfile>
makeProfiles()
{
    std::vector<BenchmarkProfile> v;
    auto add = [&v](const char *name, double fp_mib, double mem_ratio,
                    double wr, double reuse, double p_stream,
                    double p_work, double p_hot, double p_uni,
                    double hot_frac, double zipf, std::uint64_t ws_pages,
                    double ws_churn, double phase_minstr, double drift,
                    unsigned streams, unsigned run) {
        BenchmarkProfile p;
        p.name = name;
        p.footprintMiB = fp_mib;
        p.memRatio = mem_ratio;
        p.writeFraction = wr;
        p.reuseProb = reuse;
        p.pStream = p_stream;
        p.pWork = p_work;
        p.pHot = p_hot;
        p.pUniform = p_uni;
        p.hotFraction = hot_frac;
        p.zipfS = zipf;
        p.workingSetPages = ws_pages;
        p.workingSetChurn = ws_churn;
        p.phaseInstructions =
            static_cast<InstCount>(phase_minstr * 1'000'000.0);
        p.phaseDrift = drift;
        p.streams = streams;
        p.runLength = run;
        v.push_back(p);
    };

    // name         fpMiB memR  wr    reuse  pStr  pWork pHot  pUni  hotFr  zipf  Wpages churn   phM   drift st run
    add("astar",      220, 0.28, 0.10, 0.971, 0.04, 0.79, 0.16, 0.01, 0.020, 1.10, 1400, 0.0100,  8.0, 0.10, 1, 2);
    add("cactusADM",  180, 0.30, 0.22, 0.983, 0.25, 0.58, 0.16, 0.01, 0.020, 1.10,  900, 0.0143, 10.0, 0.10, 4, 8);
    add("GemsFDTD",   400, 0.32, 0.15, 0.938, 0.25, 0.63, 0.11, 0.01, 0.020, 1.05, 2500, 0.0117,  4.0, 0.15, 6, 8);
    add("lbm",        420, 0.34, 0.40, 0.912, 0.45, 0.48, 0.06, 0.01, 0.020, 1.05, 1600, 0.0052, 12.0, 0.10, 8, 16);
    add("leslie3d",   130, 0.32, 0.20, 0.959, 0.30, 0.57, 0.12, 0.01, 0.020, 1.10,  800, 0.0050,  8.0, 0.10, 6, 8);
    add("libquantum",  64, 0.30, 0.25, 0.917, 0.70, 0.25, 0.04, 0.01, 0.020, 1.00,  330, 0.0025, 20.0, 0.05, 2, 32);
    add("mcf",        480, 0.32, 0.08, 0.891, 0.04, 0.84, 0.10, 0.02, 0.020, 1.10, 4300, 0.0075,  6.0, 0.15, 1, 1);
    add("milc",       450, 0.30, 0.15, 0.917, 0.15, 0.70, 0.13, 0.02, 0.020, 1.05, 4000, 0.0135,  3.0, 0.20, 4, 4);
    add("omnetpp",    170, 0.30, 0.20, 0.933, 0.08, 0.77, 0.14, 0.01, 0.020, 1.10, 1100, 0.0034,  6.0, 0.15, 2, 2);
    add("soplex",     300, 0.31, 0.12, 0.919, 0.20, 0.65, 0.13, 0.02, 0.020, 1.10, 1900, 0.0054,  6.0, 0.12, 4, 8);
    return v;
}

const std::vector<BenchmarkProfile> &
profiles()
{
    static const std::vector<BenchmarkProfile> table = makeProfiles();
    return table;
}

} // namespace

const BenchmarkProfile *
findSpecProfile(const std::string &name)
{
    for (const BenchmarkProfile &p : profiles()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

const BenchmarkProfile &
specProfile(const std::string &name)
{
    if (const BenchmarkProfile *p = findSpecProfile(name))
        return *p;
    fatal("unknown SPEC benchmark profile '{}'", name);
}

const std::vector<std::string> &
specBenchmarks()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n;
        for (const BenchmarkProfile &p : profiles())
            n.push_back(p.name);
        return n;
    }();
    return names;
}

const std::vector<std::vector<std::string>> &
specMixes()
{
    // Table 2, sets M1-M8.
    static const std::vector<std::vector<std::string>> mixes = {
        {"cactusADM", "mcf", "milc", "omnetpp"},          // M1
        {"cactusADM", "GemsFDTD", "lbm", "mcf"},          // M2
        {"cactusADM", "lbm", "leslie3d", "omnetpp"},      // M3
        {"astar", "cactusADM", "lbm", "milc"},            // M4
        {"astar", "libquantum", "omnetpp", "soplex"},     // M5
        {"GemsFDTD", "leslie3d", "libquantum", "soplex"}, // M6
        {"leslie3d", "libquantum", "milc", "soplex"},     // M7
        {"lbm", "libquantum", "mcf", "soplex"},           // M8
    };
    return mixes;
}

std::string
mixName(std::size_t i)
{
    return "M" + std::to_string(i + 1);
}

} // namespace dasdram
