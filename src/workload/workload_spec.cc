#include "workload_spec.hh"

#include "common/log.hh"
#include "common/strfmt.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth_trace.hh"
#include "workload/trace_file.hh"

namespace dasdram
{

namespace
{

/** "M1".."M8" => 0..7, else npos. */
std::size_t
mixIndexOf(const std::string &s)
{
    if (s.size() == 2 && s[0] == 'M' && s[1] >= '1' && s[1] <= '8')
        return static_cast<std::size_t>(s[1] - '1');
    return std::string::npos;
}

bool
consumePrefix(std::string &s, std::string_view prefix)
{
    if (s.size() < prefix.size() ||
        s.compare(0, prefix.size(), prefix) != 0)
        return false;
    s.erase(0, prefix.size());
    return true;
}

/** Strict small unsigned parse for spec options. */
bool
parseOptUInt(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || s.size() > 9)
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
}

/**
 * Parse one `file:` element (prefix already stripped) into parts.
 * Options (`format=`, `loop=`, `cores=`) trail the path; a ':' inside
 * the path is kept as long as the token is not an option.
 */
bool
parseFileElement(const std::string &body, std::vector<WorkloadPart> &out,
                 std::string &err)
{
    std::string path;
    TraceFormat format = TraceFormat::Auto;
    bool loop = true;
    std::uint64_t cores = 1;

    std::size_t pos = 0;
    bool in_options = false;
    while (pos <= body.size()) {
        std::size_t colon = body.find(':', pos);
        std::string tok =
            colon == std::string::npos
                ? body.substr(pos)
                : body.substr(pos, colon - pos);
        bool is_option = tok.find('=') != std::string::npos;
        if (!is_option) {
            if (in_options) {
                err = formatStr("option expected after ':' in "
                                "'file:{}' (got '{}')",
                                body, tok);
                return false;
            }
            if (!path.empty())
                path += ':';
            path += tok;
        } else {
            in_options = true;
            std::size_t eq = tok.find('=');
            std::string key = tok.substr(0, eq);
            std::string value = tok.substr(eq + 1);
            if (key == "format") {
                if (!parseTraceFormat(value, format)) {
                    err = formatStr("unknown trace format '{}' (want "
                                    "auto|ramulator|dramsim3|binary)",
                                    value);
                    return false;
                }
            } else if (key == "loop") {
                if (value == "0" || value == "false") {
                    loop = false;
                } else if (value == "1" || value == "true") {
                    loop = true;
                } else {
                    err = formatStr("bad loop value '{}' (want 0 or 1)",
                                    value);
                    return false;
                }
            } else if (key == "cores") {
                if (!parseOptUInt(value, cores) || cores == 0 ||
                    cores > 1024) {
                    err = formatStr("bad cores value '{}' (want 1..1024)",
                                    value);
                    return false;
                }
            } else {
                err = formatStr("unknown file option '{}'", key);
                return false;
            }
        }
        if (colon == std::string::npos)
            break;
        pos = colon + 1;
    }
    if (path.empty()) {
        err = "file spec has an empty path";
        return false;
    }
    for (unsigned i = 0; i < cores; ++i) {
        WorkloadPart p;
        p.path = path;
        p.format = format;
        p.loop = loop;
        p.shard = i;
        p.shardCount = static_cast<unsigned>(cores);
        out.push_back(std::move(p));
    }
    return true;
}

/**
 * Parse one non-mix element into parts. @p inside_mix rejects nested
 * mixes (an M1 inside a mix would mean cores-of-cores).
 */
bool
parseElement(const std::string &element, bool inside_mix,
             std::vector<WorkloadPart> &out, std::string &err)
{
    if (element.empty()) {
        err = "empty workload element";
        return false;
    }
    std::string body = element;
    if (consumePrefix(body, "file:"))
        return parseFileElement(body, out, err);

    bool prefixed = consumePrefix(body, "spec:") ||
                    consumePrefix(body, "synth:");
    if (body.empty()) {
        err = formatStr("'{}' names no profile", element);
        return false;
    }
    if (body.find(':') != std::string::npos) {
        err = formatStr("unknown workload spec '{}' (prefixes: spec:, "
                        "synth:, file:, mix:)",
                        element);
        return false;
    }
    (void)prefixed;

    std::size_t mi = mixIndexOf(body);
    if (mi != std::string::npos) {
        if (inside_mix) {
            err = formatStr("mix '{}' cannot appear inside mix:", body);
            return false;
        }
        for (const std::string &bench : specMixes()[mi]) {
            WorkloadPart p;
            p.profile = bench;
            out.push_back(std::move(p));
        }
        return true;
    }
    if (!findSpecProfile(body)) {
        err = formatStr("unknown benchmark profile '{}' (see "
                        "specBenchmarks())",
                        body);
        return false;
    }
    WorkloadPart p;
    p.profile = body;
    out.push_back(std::move(p));
    return true;
}

/** Split on ',' keeping empty tokens (they are errors downstream). */
std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (true) {
        std::size_t comma = s.find(',', pos);
        out.push_back(comma == std::string::npos
                          ? s.substr(pos)
                          : s.substr(pos, comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

} // namespace

std::string
WorkloadPart::label() const
{
    if (!isFile())
        return profile;
    std::string l = "file:" + path;
    if (shardCount > 1)
        l += formatStr("#{}/{}", shard, shardCount);
    return l;
}

bool
WorkloadSpec::tryParse(const std::string &text, WorkloadSpec &out,
                       std::string *err)
{
    std::string reason;
    auto fail = [&](std::string r) {
        if (err)
            *err = std::move(r);
        return false;
    };
    if (text.empty())
        return fail("empty workload spec");

    out = WorkloadSpec{};

    std::string body = text;
    bool is_mix = consumePrefix(body, "mix:");
    std::vector<std::string> elements =
        is_mix || body.find(',') != std::string::npos
            ? splitCommas(body)
            : std::vector<std::string>{body};

    for (const std::string &e : elements) {
        if (!parseElement(e, elements.size() > 1, out.parts, reason))
            return fail(std::move(reason));
    }
    if (out.parts.empty())
        return fail("workload spec names no cores");

    // Display name: legacy spellings keep their exact name (sweep
    // seeds and output files derive from it); prefixed forms
    // normalise to it.
    bool any_file = false;
    for (const WorkloadPart &p : out.parts)
        any_file |= p.isFile();
    std::size_t mi = elements.size() == 1
                         ? mixIndexOf(elements[0].compare(0, 5, "spec:") == 0
                                          ? elements[0].substr(5)
                                          : elements[0])
                         : std::string::npos;
    if (any_file) {
        out.name = text;
    } else if (mi != std::string::npos) {
        out.name = mixName(mi);
    } else {
        std::string joined;
        for (std::size_t i = 0; i < out.parts.size(); ++i) {
            if (i)
                joined += ',';
            joined += out.parts[i].profile;
        }
        out.name = joined;
    }
    return true;
}

WorkloadSpec
WorkloadSpec::parse(const std::string &text)
{
    WorkloadSpec w;
    std::string err;
    if (!tryParse(text, w, &err))
        fatal("bad workload spec '{}': {}", text, err);
    return w;
}

WorkloadSpec
WorkloadSpec::single(const std::string &bench)
{
    WorkloadSpec w;
    w.name = bench;
    WorkloadPart p;
    p.profile = bench;
    w.parts.push_back(std::move(p));
    return w;
}

WorkloadSpec
WorkloadSpec::mix(std::size_t i)
{
    const auto &mixes = specMixes();
    if (i >= mixes.size())
        fatal("mix index {} out of range", i);
    WorkloadSpec w;
    w.name = mixName(i);
    for (const std::string &bench : mixes[i]) {
        WorkloadPart p;
        p.profile = bench;
        w.parts.push_back(std::move(p));
    }
    return w;
}

std::vector<std::unique_ptr<TraceSource>>
buildTraces(const WorkloadSpec &w, std::uint64_t seed,
            std::uint64_t row_bytes, std::uint64_t line_bytes)
{
    std::vector<std::unique_ptr<TraceSource>> traces;
    traces.reserve(w.parts.size());
    for (unsigned i = 0; i < w.parts.size(); ++i) {
        const WorkloadPart &p = w.parts[i];
        if (p.isFile()) {
            FileTraceSource::Options opt;
            opt.format = p.format;
            opt.loop = p.loop;
            opt.shard = p.shard;
            opt.shardCount = p.shardCount;
            traces.push_back(
                std::make_unique<FileTraceSource>(p.path, opt));
        } else {
            // The historical per-(workload, core) stream identity —
            // golden stats and every figure depend on this formula.
            std::uint64_t trace_seed = seed * 1000003 + i * 7919 + 1;
            traces.push_back(std::make_unique<SyntheticTrace>(
                specProfile(p.profile), trace_seed, row_bytes,
                line_bytes));
        }
    }
    return traces;
}

} // namespace dasdram
