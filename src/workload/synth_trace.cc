#include "synth_trace.hh"

#include <cmath>

#include "common/log.hh"

namespace dasdram
{

SyntheticTrace::SyntheticTrace(const BenchmarkProfile &profile,
                               std::uint64_t seed,
                               std::uint64_t page_bytes,
                               std::uint64_t line_bytes)
    : prof_(profile), seed_(seed), pageBytes_(page_bytes),
      lineBytes_(line_bytes), rng_(seed)
{
    if (page_bytes % line_bytes != 0)
        fatal("page size must be a multiple of the line size");
    linesPerPage_ = pageBytes_ / lineBytes_;
    footprintPages_ = static_cast<std::uint64_t>(
        prof_.footprintMiB * static_cast<double>(MiB) /
        static_cast<double>(pageBytes_));
    if (footprintPages_ < 16)
        fatal("footprint of '{}' too small ({} pages)", prof_.name,
              footprintPages_);
    activeRegionPages_ = std::min<std::uint64_t>(
        footprintPages_,
        std::max<std::uint64_t>(
            prof_.workingSetPages + 1,
            static_cast<std::uint64_t>(
                prof_.activeRegionFactor *
                static_cast<double>(prof_.workingSetPages))));
    hotPages_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               prof_.hotFraction *
               static_cast<double>(activeRegionPages_)));
    double mix =
        prof_.pStream + prof_.pWork + prof_.pHot + prof_.pUniform;
    if (mix < 0.999 || mix > 1.001)
        fatal("pattern mix of '{}' must sum to 1 (got {})", prof_.name,
              mix);
    reset();
}

void
SyntheticTrace::reset()
{
    rng_ = Rng(seed_);
    streamPos_.assign(std::max(1u, prof_.streams), 0);
    for (std::size_t s = 0; s < streamPos_.size(); ++s) {
        // Spread stream start points across the footprint, staggered by
        // a few pages so concurrent streams land in different banks
        // instead of conflicting in lockstep.
        std::uint64_t page = (footprintPages_ * s) / streamPos_.size() +
                             5 * s;
        streamPos_[s] = (page % footprintPages_) * linesPerPage_;
    }
    nextStream_ = 0;
    sliceSalt_.assign(64, 0);
    workSet_.assign(std::max<std::uint64_t>(1, prof_.workingSetPages), 0);
    for (std::uint64_t &page : workSet_)
        page = rng_.nextBelow(activeRegionPages_);
    workHead_ = 0;
    recent_.fill(0);
    recentCount_ = 0;
    runLeft_ = 0;
    runLine_ = 0;
    instCount_ = 0;
    nextPhaseAt_ = prof_.phaseInstructions;
    phase_ = 0;
    gapMean_ = prof_.memRatio > 0.0
                   ? (1.0 - prof_.memRatio) / prof_.memRatio
                   : 0.0;
}

void
SyntheticTrace::maybeAdvancePhase()
{
    if (prof_.phaseInstructions == 0 || instCount_ < nextPhaseAt_)
        return;
    ++phase_;
    nextPhaseAt_ += prof_.phaseInstructions;
    // Hot-set drift: each slice of the popularity ranks re-salts with
    // probability phaseDrift and KEEPS its new salt, so the hot layout
    // random-walks. Per-phase churn stays bounded (≈ drift · hotPages
    // promotions) while the lifetime union of hot locations keeps
    // growing — which is what dilutes lifetime-based static profiling
    // (Section 7.1's static-vs-dynamic discussion).
    for (std::uint64_t &salt : sliceSalt_) {
        if (rng_.chance(prof_.phaseDrift))
            salt = rng_.next() % footprintPages_;
    }
}

Addr
SyntheticTrace::pickLine()
{
    const std::uint64_t footprint_lines = footprintPages_ * linesPerPage_;

    // Short-term reuse applies to every access, including mid-run:
    // spatial runs model new-line touches, reuse models the register/
    // stack locality interleaved with them. This keeps the LLC miss
    // rate ≈ (1 - reuseProb) · memRatio, the calibration handle.
    if (recentCount_ > 0 && rng_.chance(prof_.reuseProb)) {
        return recent_[rng_.nextBelow(
            std::min<std::uint64_t>(recentCount_, recent_.size()))];
    }

    if (runLeft_ > 0) {
        --runLeft_;
        runLine_ = (runLine_ + 1) % footprint_lines;
        return runLine_;
    }

    double sel = rng_.nextDouble();
    if (sel < prof_.pStream) {
        std::uint64_t &pos = streamPos_[nextStream_];
        nextStream_ = (nextStream_ + 1) % streamPos_.size();
        std::uint64_t line = pos;
        pos = (pos + 1) % footprint_lines;
        return line;
    }
    if (sel < prof_.pStream + prof_.pWork) {
        // Wandering working set: uniform over a FIFO ring of resident
        // pages. Lifetime reference counts are flat (profiling can't
        // rank these rows) but recency is strong (dynamic migration
        // keeps the residents fast). Slow turnover bounds promotion
        // churn to ≈ churn per working-set access.
        std::uint64_t line =
            workSet_[rng_.nextBelow(workSet_.size())] * linesPerPage_ +
            rng_.nextBelow(linesPerPage_);
        if (rng_.chance(prof_.workingSetChurn)) {
            workSet_[workHead_] = rng_.nextBelow(activeRegionPages_);
            workHead_ = (workHead_ + 1) % workSet_.size();
        }
        if (prof_.runLength > 1)
            runLeft_ = prof_.runLength - 1;
        runLine_ = line;
        return line;
    }
    if (sel < prof_.pStream + prof_.pWork + prof_.pHot) {
        // The hot set is hotPages_ pages scattered over the WHOLE
        // footprint by a multiplicative permutation: real hot rows are
        // sprinkled across the address space (heap allocation order),
        // so each migration group sees ≈ hotFraction of its rows hot —
        // the quantity the fast-level ratio competes with. Each rank
        // slice carries a salt that drifts across phases.
        std::uint64_t rank = rng_.nextZipf(hotPages_, prof_.zipfS);
        std::uint64_t salt = sliceSalt_[rank % sliceSalt_.size()];
        std::uint64_t page =
            (rank * 2147483647ULL + salt) % activeRegionPages_;
        std::uint64_t line =
            page * linesPerPage_ + rng_.nextBelow(linesPerPage_);
        // Spatial run within/after the chosen line (row locality).
        if (prof_.runLength > 1)
            runLeft_ = prof_.runLength - 1;
        runLine_ = line;
        return line;
    }
    // Uniform pointer chase: single-line touch, no run.
    std::uint64_t page = rng_.nextBelow(footprintPages_);
    return page * linesPerPage_ + rng_.nextBelow(linesPerPage_);
}

bool
SyntheticTrace::next(TraceEntry &out)
{
    // Geometric-ish gap with mean (1-m)/m via exponential sampling;
    // rounding (not flooring) keeps the realised memory ratio unbiased.
    double u = rng_.nextDouble();
    double g = -gapMean_ * std::log(1.0 - u);
    auto gap = static_cast<std::uint32_t>(
        std::min(g + 0.5, 100000.0));
    instCount_ += gap + 1;
    maybeAdvancePhase();

    std::uint64_t line = pickLine();
    recent_[recentCount_ % recent_.size()] = line;
    ++recentCount_;

    out.gap = gap;
    out.addr = line * lineBytes_;
    out.isWrite = rng_.chance(prof_.writeFraction);
    return true;
}

} // namespace dasdram
