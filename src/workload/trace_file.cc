#include "trace_file.hh"

#include <cerrno>
#include <cstring>

#include "common/log.hh"

#ifdef DASDRAM_HAVE_ZLIB
#include <zlib.h>
#endif

#include <unistd.h> // ftruncate

namespace dasdram
{

bool
traceGzipSupported()
{
#ifdef DASDRAM_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

// ---------------------------------------------------------------------------
// TraceByteReader

TraceByteReader::TraceByteReader(std::string path,
                                 std::size_t buffer_bytes)
    : path_(std::move(path)),
      cap_(buffer_bytes < 4096 ? 4096 : buffer_bytes)
{
    buf_.resize(cap_);
    open();
}

TraceByteReader::~TraceByteReader()
{
    close();
}

void
TraceByteReader::open()
{
    file_ = std::fopen(path_.c_str(), "rb");
    if (!file_)
        fatal("cannot open trace '{}': {}", path_,
              std::strerror(errno));

    // Sniff the gzip magic from the leading bytes, not the filename.
    unsigned char magic[2] = {0, 0};
    std::size_t got = std::fread(magic, 1, 2, file_);
    compressed_ = got == 2 && magic[0] == 0x1f && magic[1] == 0x8b;
    if (compressed_) {
        std::fclose(file_);
        file_ = nullptr;
#ifdef DASDRAM_HAVE_ZLIB
        gzFile gz = gzopen(path_.c_str(), "rb");
        if (!gz)
            fatal("cannot open gzip trace '{}'", path_);
        gzbuffer(gz, static_cast<unsigned>(cap_));
        gz_ = gz;
#else
        fatal("trace '{}' is gzip-compressed but this build has no "
              "zlib; decompress it first (gunzip)",
              path_);
#endif
    } else {
        std::rewind(file_);
    }
}

void
TraceByteReader::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
#ifdef DASDRAM_HAVE_ZLIB
    if (gz_) {
        gzclose(static_cast<gzFile>(gz_));
        gz_ = nullptr;
    }
#endif
}

void
TraceByteReader::fill()
{
    if (eof_ || pos_ < size_)
        return;
    pos_ = 0;
    size_ = 0;
#ifdef DASDRAM_HAVE_ZLIB
    if (gz_) {
        int n = gzread(static_cast<gzFile>(gz_), buf_.data(),
                       static_cast<unsigned>(cap_));
        if (n < 0) {
            int errnum = 0;
            const char *msg =
                gzerror(static_cast<gzFile>(gz_), &errnum);
            fatal("gzip read error in '{}': {}", path_,
                  msg ? msg : "unknown");
        }
        size_ = static_cast<std::size_t>(n);
        eof_ = size_ == 0;
        return;
    }
#endif
    size_ = std::fread(buf_.data(), 1, cap_, file_);
    if (size_ < cap_ && std::ferror(file_))
        fatal("read error in '{}': {}", path_, std::strerror(errno));
    eof_ = size_ == 0;
}

std::size_t
TraceByteReader::read(void *dst, std::size_t n)
{
    auto *out = static_cast<unsigned char *>(dst);
    std::size_t total = 0;
    while (total < n) {
        if (pos_ >= size_) {
            fill();
            if (pos_ >= size_)
                break; // end of stream
        }
        std::size_t chunk = std::min(n - total, size_ - pos_);
        std::memcpy(out + total, buf_.data() + pos_, chunk);
        pos_ += chunk;
        total += chunk;
    }
    return total;
}

bool
TraceByteReader::readExact(void *dst, std::size_t n, const char *what)
{
    std::size_t got = read(dst, n);
    if (got == 0)
        return false;
    if (got != n)
        fatal("{}: truncated file — {} ends after {} of {} byte(s)",
              path_, what, got, n);
    return true;
}

bool
TraceByteReader::readLine(std::string &out)
{
    out.clear();
    while (true) {
        if (pos_ >= size_) {
            fill();
            if (pos_ >= size_) {
                if (out.empty())
                    return false;
                ++line_; // final line without trailing newline
                return true;
            }
        }
        const unsigned char *start = buf_.data() + pos_;
        const auto *nl = static_cast<const unsigned char *>(
            std::memchr(start, '\n', size_ - pos_));
        std::size_t take =
            nl ? static_cast<std::size_t>(nl - start) : size_ - pos_;
        if (out.size() + take > cap_)
            fatal("{}:{}: line longer than {} bytes — not a text "
                  "trace?",
                  path_, line_ + 1, cap_);
        out.append(reinterpret_cast<const char *>(start), take);
        pos_ += take;
        if (nl) {
            ++pos_; // consume the newline
            if (!out.empty() && out.back() == '\r')
                out.pop_back();
            ++line_;
            return true;
        }
    }
}

void
TraceByteReader::rewind()
{
    pos_ = 0;
    size_ = 0;
    eof_ = false;
    line_ = 0;
#ifdef DASDRAM_HAVE_ZLIB
    if (gz_) {
        if (gzrewind(static_cast<gzFile>(gz_)) != 0)
            fatal("cannot rewind gzip trace '{}'", path_);
        return;
    }
#endif
    if (std::fseek(file_, 0, SEEK_SET) != 0)
        fatal("cannot rewind trace '{}': {}", path_,
              std::strerror(errno));
}

// ---------------------------------------------------------------------------
// FileTraceSource

FileTraceSource::FileTraceSource(std::string path)
    : FileTraceSource(std::move(path), Options{})
{
}

FileTraceSource::FileTraceSource(std::string path, Options opt)
    : reader_(std::move(path), opt.bufferBytes), opt_(opt),
      format_(opt.format)
{
    if (opt_.shardCount == 0)
        fatal("trace '{}': shard count must be >= 1", reader_.path());
    if (opt_.shard >= opt_.shardCount)
        fatal("trace '{}': shard {} out of range (of {})",
              reader_.path(), opt_.shard, opt_.shardCount);
    if (format_ == TraceFormat::Auto)
        format_ = formatFromPath(reader_.path());

    // Content beats filename: a binary magic in the first bytes makes
    // the file binary whatever it is called, and a text file declared
    // binary fails the header check loudly below.
    unsigned char head[4];
    std::size_t got = reader_.read(head, 4);
    reader_.rewind();
    if (got == 4) {
        std::uint32_t magic = static_cast<std::uint32_t>(head[0]) |
                              static_cast<std::uint32_t>(head[1]) << 8 |
                              static_cast<std::uint32_t>(head[2]) << 16 |
                              static_cast<std::uint32_t>(head[3]) << 24;
        if (magic == kBinaryTraceMagic)
            format_ = TraceFormat::Binary;
    }

    if (format_ == TraceFormat::Binary)
        readHeader();
}

void
FileTraceSource::readHeader()
{
    unsigned char raw[kBinaryHeaderBytes];
    if (!reader_.readExact(raw, kBinaryHeaderBytes, "the header"))
        fatal("{}: empty file (no binary-trace header)",
              reader_.path());
    std::string err;
    if (!decodeBinaryHeader(raw, header_, err))
        fatal("{}: {}", reader_.path(), err);
}

bool
FileTraceSource::refillParsed()
{
    // Advance over blank/comment lines until one yields records.
    while (reader_.readLine(line_)) {
        std::string err;
        bool ok = format_ == TraceFormat::Ramulator
                      ? parseRamulatorLine(line_, parsed_, err)
                      : parseDramsim3Line(line_, ds3_, parsed_, err);
        if (!ok)
            fatal("{}:{}: {}", reader_.path(), reader_.lineNumber(),
                  err);
        if (parsed_.count > 0) {
            parsedPos_ = 0;
            return true;
        }
    }
    return false;
}

bool
FileTraceSource::nextRaw(TraceEntry &out)
{
    if (format_ == TraceFormat::Binary) {
        unsigned char raw[kBinaryRecordBytes];
        if (!reader_.readExact(raw, kBinaryRecordBytes, "a record")) {
            if (header_.records != kBinaryCountUnknown &&
                binaryRead_ != header_.records) {
                fatal("{}: truncated file — header promises {} "
                      "record(s), found {}",
                      reader_.path(), header_.records, binaryRead_);
            }
            return false;
        }
        decodeBinaryRecord(raw, out);
        ++binaryRead_;
        return true;
    }
    if (parsedPos_ >= parsed_.count && !refillParsed())
        return false;
    out = parsed_.entry[parsedPos_++];
    return true;
}

bool
FileTraceSource::next(TraceEntry &out)
{
    if (done_)
        return false;
    std::uint64_t start_index = recordIndex_;
    while (true) {
        TraceEntry e;
        if (!nextRaw(e)) {
            // End of one pass over the file.
            if (!opt_.loop || recordIndex_ == 0) {
                // Not looping — or an empty file, where looping would
                // spin forever.
                done_ = true;
                return false;
            }
            ++passes_;
            reader_.rewind();
            parsed_ = ParsedLine{};
            parsedPos_ = 0;
            ds3_ = Dramsim3Cursor{};
            binaryRead_ = 0;
            recordIndex_ = 0;
            if (format_ == TraceFormat::Binary)
                readHeader();
            // A pass that never reaches this shard must not loop
            // forever either (fewer records than shards).
            if (start_index == 0 && delivered_ == 0 && passes_ > 1) {
                done_ = true;
                return false;
            }
            continue;
        }
        std::uint64_t idx = recordIndex_++;
        if (idx % opt_.shardCount == opt_.shard) {
            out = e;
            ++delivered_;
            return true;
        }
    }
}

void
FileTraceSource::reset()
{
    reader_.rewind();
    parsed_ = ParsedLine{};
    parsedPos_ = 0;
    ds3_ = Dramsim3Cursor{};
    binaryRead_ = 0;
    recordIndex_ = 0;
    delivered_ = 0;
    passes_ = 0;
    done_ = false;
    if (format_ == TraceFormat::Binary)
        readHeader();
}

void
FileTraceSource::serdeState(Archive &ar)
{
    ar.section("fileTrace");
    std::uint64_t n = delivered_;
    ar.io(n);
    ar.end();
    if (!ar.loading())
        return;
    reset();
    TraceEntry e;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (!next(e))
            fatal("trace '{}': checkpoint recorded {} delivered records "
                  "but replay exhausted the file after {} — the trace "
                  "changed since the snapshot was taken",
                  path(), n, i);
    }
}

// ---------------------------------------------------------------------------
// BinaryTraceWriter

BinaryTraceWriter::BinaryTraceWriter(std::string path)
    : path_(std::move(path))
{
    file_ = std::fopen(path_.c_str(), "wb");
    if (!file_)
        fatal("cannot open '{}' for writing: {}", path_,
              std::strerror(errno));
    unsigned char raw[kBinaryHeaderBytes];
    encodeBinaryHeader(BinaryTraceHeader{}, raw); // count = unknown
    if (std::fwrite(raw, 1, kBinaryHeaderBytes, file_) !=
        kBinaryHeaderBytes)
        fatal("write error on '{}': {}", path_, std::strerror(errno));
}

BinaryTraceWriter::~BinaryTraceWriter()
{
    close();
}

void
BinaryTraceWriter::write(const TraceEntry &e)
{
    if (!file_)
        panic("BinaryTraceWriter::write after close ('{}')", path_);
    unsigned char raw[kBinaryRecordBytes];
    encodeBinaryRecord(e, raw);
    if (std::fwrite(raw, 1, kBinaryRecordBytes, file_) !=
        kBinaryRecordBytes)
        fatal("write error on '{}': {}", path_, std::strerror(errno));
    ++records_;
}

void
BinaryTraceWriter::restart()
{
    if (!file_)
        panic("BinaryTraceWriter::restart after close ('{}')", path_);
    if (std::fseek(file_, static_cast<long>(kBinaryHeaderBytes),
                   SEEK_SET) != 0)
        fatal("cannot restart '{}': {}", path_, std::strerror(errno));
    records_ = 0;
}

void
BinaryTraceWriter::close()
{
    if (!file_)
        return;
    // Truncate stale bytes beyond the last restart(), then patch the
    // record count into the header.
    std::fflush(file_);
    auto size = static_cast<off_t>(kBinaryHeaderBytes +
                                   records_ * kBinaryRecordBytes);
    if (ftruncate(fileno(file_), size) != 0)
        fatal("cannot truncate '{}': {}", path_, std::strerror(errno));
    BinaryTraceHeader h;
    h.records = records_;
    unsigned char raw[kBinaryHeaderBytes];
    encodeBinaryHeader(h, raw);
    if (std::fseek(file_, 0, SEEK_SET) != 0 ||
        std::fwrite(raw, 1, kBinaryHeaderBytes, file_) !=
            kBinaryHeaderBytes)
        fatal("cannot finalise '{}': {}", path_, std::strerror(errno));
    if (std::fclose(file_) != 0)
        fatal("close error on '{}': {}", path_, std::strerror(errno));
    file_ = nullptr;
}

// ---------------------------------------------------------------------------
// TraceRecorder

TraceRecorder::TraceRecorder(TraceSource &inner, std::string path)
    : inner_(&inner), writer_(std::move(path))
{
}

bool
TraceRecorder::next(TraceEntry &out)
{
    if (!inner_->next(out))
        return false;
    writer_.write(out);
    return true;
}

void
TraceRecorder::reset()
{
    inner_->reset();
    writer_.restart();
}

} // namespace dasdram
