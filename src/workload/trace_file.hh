/**
 * @file
 * Streaming trace-file ingestion: a fixed-buffer byte reader (with
 * transparent gzip decompression when the build found zlib), the
 * FileTraceSource that feeds external traces to the core model in
 * O(buffer) memory, the binary-trace writer, and the TraceRecorder
 * that tees any TraceSource into the binary format for later replay.
 *
 * Design constraints (see ISSUE 5):
 *  - no full-file preload: a trace with hundreds of millions of
 *    records streams through one 256 KiB buffer;
 *  - deterministic rewind: reset() replays byte-identically, so the
 *    static-design profiling pass and fixed-instruction looping work
 *    exactly as they do for synthetic generators;
 *  - per-core sharding: N cores can round-robin one trace file, each
 *    shard reading its own handle (shard i keeps records with
 *    index % N == i);
 *  - loud failure: malformed lines, truncated files and header
 *    mismatches are fatal() with `path:line` context — a trace that
 *    parses is a trace that ran.
 */

#ifndef DASDRAM_WORKLOAD_TRACE_FILE_HH
#define DASDRAM_WORKLOAD_TRACE_FILE_HH

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hh"
#include "cpu/trace.hh"
#include "workload/trace_format.hh"

namespace dasdram
{

/** True when this build can read .gz traces (zlib found at configure
 *  time). Plain files always work. */
bool traceGzipSupported();

/**
 * Fixed-buffer sequential reader over a (possibly gzip-compressed)
 * file. Decompression is transparent: the gzip magic is sniffed from
 * the leading bytes, not the filename. rewind() restarts the stream
 * from byte 0 deterministically.
 */
class TraceByteReader
{
  public:
    /** @param buffer_bytes I/O buffer size (the memory bound). */
    explicit TraceByteReader(std::string path,
                             std::size_t buffer_bytes = 256 * 1024);
    ~TraceByteReader();

    TraceByteReader(const TraceByteReader &) = delete;
    TraceByteReader &operator=(const TraceByteReader &) = delete;

    /**
     * Read up to @p n bytes into @p dst; returns the count, 0 at end
     * of stream. fatal() on I/O or decompression errors.
     */
    std::size_t read(void *dst, std::size_t n);

    /**
     * Read exactly @p n bytes. Returns false cleanly at end-of-stream
     * (0 bytes available); fatal() when the stream ends mid-read —
     * the truncation case, reported with @p what as context.
     */
    bool readExact(void *dst, std::size_t n, const char *what);

    /**
     * Next text line (without the '\n') into @p out. Returns false at
     * end of stream. Lines longer than the buffer are malformed input
     * (fatal) — trace lines are tens of bytes.
     */
    bool readLine(std::string &out);

    /** Restart from byte 0. */
    void rewind();

    /** 1-based number of the line readLine() returned last. */
    std::uint64_t lineNumber() const { return line_; }

    const std::string &path() const { return path_; }

    /** True iff the underlying file is gzip-compressed. */
    bool compressed() const { return compressed_; }

  private:
    void open();
    void close();
    void fill();

    std::string path_;
    std::size_t cap_;
    std::vector<unsigned char> buf_;
    std::size_t pos_ = 0;  ///< next unread byte in buf_
    std::size_t size_ = 0; ///< valid bytes in buf_
    bool eof_ = false;
    bool compressed_ = false;
    std::uint64_t line_ = 0;

    std::FILE *file_ = nullptr; ///< plain path
    void *gz_ = nullptr;        ///< gzFile when compressed (zlib builds)
};

/**
 * TraceSource streaming an external trace file.
 *
 * Looping: with `loop`, the source rewinds at end-of-file and streams
 * forever — the right default for fixed-instruction simulations, which
 * stop on the instruction budget, never on trace exhaustion. Without
 * it, next() returns false at the end (after `shardCount` partial
 * passes the shards expose the same records every pass).
 */
class FileTraceSource : public TraceSource
{
  public:
    struct Options
    {
        TraceFormat format = TraceFormat::Auto;
        bool loop = true;
        unsigned shard = 0;      ///< this reader's shard index
        unsigned shardCount = 1; ///< total round-robin shards
        std::size_t bufferBytes = 256 * 1024;
    };

    explicit FileTraceSource(std::string path);
    FileTraceSource(std::string path, Options opt);

    bool next(TraceEntry &out) override;
    void reset() override;

    /**
     * Checkpoint by position: only the delivered-record count is
     * stored; restoring rewinds the file and replays that many
     * records. Replay is deterministic (reset() is byte-identical),
     * so the parser cursor, shard position, pass count and loop flag
     * all land exactly where the saved run left them.
     */
    void serdeState(Archive &ar) override;

    /** The resolved (post-sniffing) format. */
    TraceFormat format() const { return format_; }

    /** Records delivered to the consumer since construction/reset. */
    std::uint64_t recordsDelivered() const { return delivered_; }

    /** Complete passes over the file (loop mode). */
    std::uint64_t passes() const { return passes_; }

    const std::string &path() const { return reader_.path(); }

  private:
    void readHeader();
    bool nextRaw(TraceEntry &out); ///< next record, ignoring sharding
    bool refillParsed();

    TraceByteReader reader_;
    Options opt_;
    TraceFormat format_;
    BinaryTraceHeader header_{}; ///< Binary format only

    ParsedLine parsed_{};   ///< text formats: records of the last line
    unsigned parsedPos_ = 0;
    Dramsim3Cursor ds3_{};
    std::string line_;

    std::uint64_t recordIndex_ = 0; ///< global index (sharding)
    std::uint64_t binaryRead_ = 0;  ///< records read this pass (Binary)
    std::uint64_t delivered_ = 0;
    std::uint64_t passes_ = 0;
    bool done_ = false;
};

/**
 * Writer for the internal binary trace format. Records stream out
 * through a fixed buffer; close() patches the header's record count
 * and truncates stale bytes after a restart(). The destructor closes
 * implicitly (but cannot report late I/O errors — call close() when
 * the file matters).
 */
class BinaryTraceWriter
{
  public:
    explicit BinaryTraceWriter(std::string path);
    ~BinaryTraceWriter();

    BinaryTraceWriter(const BinaryTraceWriter &) = delete;
    BinaryTraceWriter &operator=(const BinaryTraceWriter &) = delete;

    void write(const TraceEntry &e);

    /** Drop everything written so far and start over (the recorder's
     *  reset path: a profiling pre-pass must not duplicate records). */
    void restart();

    /** Flush, patch the record count, truncate, close. Idempotent. */
    void close();

    std::uint64_t records() const { return records_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
    std::uint64_t records_ = 0;
};

/**
 * Pass-through TraceSource that records every delivered record to a
 * binary trace file. reset() resets the inner source AND restarts the
 * recording, so only the records of the final pass (the measured run)
 * land in the file — a profiling pre-pass is recorded and then wiped
 * by its trailing reset().
 */
class TraceRecorder : public TraceSource
{
  public:
    TraceRecorder(TraceSource &inner, std::string path);

    bool next(TraceEntry &out) override;
    void reset() override;

    /** Finalise the file (see BinaryTraceWriter::close). */
    void close() { writer_.close(); }

    std::uint64_t recorded() const { return writer_.records(); }

  private:
    TraceSource *inner_;
    BinaryTraceWriter writer_;
};

} // namespace dasdram

#endif // DASDRAM_WORKLOAD_TRACE_FILE_HH
