/**
 * @file
 * Synthetic trace generator driven by a BenchmarkProfile.
 *
 * Produces a deterministic, infinite stream of (gap, address, is_write)
 * records combining: short-term reuse (upper-cache locality), multiple
 * sequential streams, a skewed hot region that moves at phase
 * boundaries, and uniform-random pointer chasing — the behaviours the
 * paper's evaluation depends on.
 */

#ifndef DASDRAM_WORKLOAD_SYNTH_TRACE_HH
#define DASDRAM_WORKLOAD_SYNTH_TRACE_HH

#include <array>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "cpu/trace.hh"
#include "workload/spec_profiles.hh"

namespace dasdram
{

/** TraceSource synthesising a SPEC-like reference stream. */
class SyntheticTrace : public TraceSource
{
  public:
    /**
     * @param profile generator knobs (copied).
     * @param seed    deterministic stream identity; the same (profile,
     *                seed) always produces the same trace.
     * @param page_bytes must match the DRAM row size for row-level
     *                locality to be meaningful.
     */
    SyntheticTrace(const BenchmarkProfile &profile, std::uint64_t seed,
                   std::uint64_t page_bytes = 8192,
                   std::uint64_t line_bytes = 64);

    bool next(TraceEntry &out) override;
    void reset() override;

    /** Footprint in pages (rows). */
    std::uint64_t footprintPages() const { return footprintPages_; }

    /** Hot-region size in pages. */
    std::uint64_t hotPages() const { return hotPages_; }

    /** Instructions generated so far (gaps included). */
    InstCount generatedInstructions() const { return instCount_; }

    /** Number of phase transitions so far. */
    std::uint64_t phaseCount() const { return phase_; }

    /** Checkpoint the generator's dynamic state (stream cursors, hot
     *  salts, working set, reuse window, RNG). Knobs derived from the
     *  (profile, seed) constructor arguments are not stored — the
     *  snapshot fingerprint guarantees they match on restore. */
    void
    serdeState(Archive &ar) override
    {
        ar.section("synthTrace");
        ar.io(streamPos_);
        ar.io(nextStream_);
        ar.io(sliceSalt_);
        ar.io(workSet_);
        ar.io(workHead_);
        for (Addr &a : recent_)
            ar.io(a);
        ar.io(recentCount_);
        ar.io(runLeft_);
        ar.io(runLine_);
        ar.io(instCount_);
        ar.io(nextPhaseAt_);
        ar.io(phase_);
        ar.io(gapMean_);
        rng_.serdeState(ar);
        ar.end();
    }

  private:
    Addr pickLine();
    void maybeAdvancePhase();

    BenchmarkProfile prof_;
    std::uint64_t seed_;
    std::uint64_t pageBytes_;
    std::uint64_t lineBytes_;
    std::uint64_t linesPerPage_;
    std::uint64_t footprintPages_;
    std::uint64_t activeRegionPages_ = 0;
    std::uint64_t hotPages_;

    Rng rng_;
    std::vector<std::uint64_t> streamPos_; ///< line indices
    unsigned nextStream_ = 0;
    std::vector<std::uint64_t> sliceSalt_; ///< per-rank-slice hot salts
    std::vector<std::uint64_t> workSet_;   ///< resident pages (FIFO ring)
    std::size_t workHead_ = 0;
    std::array<Addr, 8> recent_{};
    unsigned recentCount_ = 0;
    std::uint64_t runLeft_ = 0;
    std::uint64_t runLine_ = 0;
    InstCount instCount_ = 0;
    InstCount nextPhaseAt_ = 0;
    std::uint64_t phase_ = 0;
    double gapMean_ = 1.0;
};

} // namespace dasdram

#endif // DASDRAM_WORKLOAD_SYNTH_TRACE_HH
