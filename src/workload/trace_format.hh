/**
 * @file
 * External trace-file formats: identification, text-line parsers and
 * the compact internal binary codec.
 *
 * Three on-disk formats are understood (see README for examples):
 *
 *  - Ramulator-style text: `<bubble-count> <load-addr> [<store-addr>]`
 *    per line; the optional third column adds a zero-gap store after
 *    the load. Addresses are decimal or 0x-hex. `#` starts a comment.
 *  - DRAMSim3-style text: `<addr> <R|W|READ|WRITE> <cycle>` per line;
 *    cycle deltas between consecutive lines become instruction gaps.
 *  - The internal binary format: a 16-byte header (magic, version,
 *    record count) followed by fixed 13-byte little-endian records —
 *    what TraceRecorder emits and the fastest format to replay.
 *
 * The parsers here are pure line/byte-level functions with error
 * returns so they are unit-testable; trace_file.hh wraps them in the
 * streaming reader, which turns errors into fatal() with file:line
 * context.
 */

#ifndef DASDRAM_WORKLOAD_TRACE_FORMAT_HH
#define DASDRAM_WORKLOAD_TRACE_FORMAT_HH

#include <cstdint>
#include <string>
#include <string_view>

#include "cpu/trace.hh"

namespace dasdram
{

/** On-disk trace format. */
enum class TraceFormat
{
    Auto,      ///< sniff from extension / file contents
    Ramulator, ///< `<bubbles> <load-addr> [<store-addr>]`
    Dramsim3,  ///< `<addr> <R/W> <cycle>`
    Binary,    ///< internal header + fixed-size records
};

/** Display name: "auto", "ramulator", "dramsim3", "binary". */
const char *toString(TraceFormat f);

/** Parse a format name; returns false on unknown names. */
bool parseTraceFormat(const std::string &name, TraceFormat &out);

/**
 * Pick a format for @p path from its filename: `.dastrace` (optionally
 * + `.gz`) means Binary, `.ds3` / `.dramsim` means Dramsim3, anything
 * else defaults to Ramulator (the most common interchange format).
 * Content sniffing (the binary magic) runs on top of this in the
 * reader, so a mis-named binary file is still rejected loudly.
 */
TraceFormat formatFromPath(const std::string &path);

/**
 * Result of parsing one text line: up to two records (a Ramulator
 * store column yields a trailing zero-gap write).
 */
struct ParsedLine
{
    TraceEntry entry[2];
    unsigned count = 0; ///< 0: blank/comment line
};

/**
 * Parse one Ramulator-format line. Returns false on malformed input
 * with a human-readable reason in @p err (no line number — the caller
 * owns that context).
 */
bool parseRamulatorLine(std::string_view line, ParsedLine &out,
                        std::string &err);

/** Running state the DRAMSim3 parser keeps between lines. */
struct Dramsim3Cursor
{
    std::uint64_t lastCycle = 0;
    bool first = true;
};

/**
 * Parse one DRAMSim3-format line. @p cur carries the previous line's
 * cycle stamp; the gap of a record is the (saturated) cycle delta to
 * it, so replay preserves the trace's arrival spacing. Reset @p cur
 * when rewinding.
 */
bool parseDramsim3Line(std::string_view line, Dramsim3Cursor &cur,
                       ParsedLine &out, std::string &err);

/// @name Internal binary format
/// @{

/**
 * Magic bytes "DAST" (little-endian u32) opening a binary trace.
 * The 16-byte header shares the binfmt envelope header layout
 * (magic u32, version u16, flags u16, u64) with the record count in
 * the length slot; records stream behind it unframed (a trace writer
 * cannot buffer the file for a trailing checksum).
 */
constexpr std::uint32_t kBinaryTraceMagic = 0x54534144u;

/** Current (and only) binary-format version. */
constexpr std::uint16_t kBinaryTraceVersion = 1;

/** Record count value meaning "unknown" (writer died before close). */
constexpr std::uint64_t kBinaryCountUnknown = ~0ull;

/** Fixed header of a binary trace file. */
struct BinaryTraceHeader
{
    std::uint32_t magic = kBinaryTraceMagic;
    std::uint16_t version = kBinaryTraceVersion;
    std::uint16_t flags = 0;                      ///< reserved, 0
    std::uint64_t records = kBinaryCountUnknown;  ///< patched at close
};

/** On-disk sizes (fields are packed little-endian, no padding). */
constexpr std::size_t kBinaryHeaderBytes = 16;
constexpr std::size_t kBinaryRecordBytes = 13; ///< u32 gap, u64 addr, u8 flags

/** Serialise @p h into @p dst (kBinaryHeaderBytes bytes). */
void encodeBinaryHeader(const BinaryTraceHeader &h, unsigned char *dst);

/**
 * Decode and validate a header. Returns false with a reason in @p err
 * on a bad magic or an unsupported version.
 */
bool decodeBinaryHeader(const unsigned char *src, BinaryTraceHeader &out,
                        std::string &err);

/** Serialise @p e into @p dst (kBinaryRecordBytes bytes). */
void encodeBinaryRecord(const TraceEntry &e, unsigned char *dst);

/** Decode one record (always succeeds on kBinaryRecordBytes bytes). */
void decodeBinaryRecord(const unsigned char *src, TraceEntry &out);

/// @}

} // namespace dasdram

#endif // DASDRAM_WORKLOAD_TRACE_FORMAT_HH
