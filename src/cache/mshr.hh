/**
 * @file
 * Miss-status holding registers: coalesce outstanding misses to the
 * same cache line so one DRAM request serves all waiters.
 */

#ifndef DASDRAM_CACHE_MSHR_HH
#define DASDRAM_CACHE_MSHR_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/continuation.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dasdram
{

/**
 * Tracks in-flight line fills. Capacity-limited; callers must check
 * full() before allocating and stall otherwise.
 *
 * Waiters are serialisable Continuation tokens, not closures: the
 * owner installs one dispatcher that interprets every completed token,
 * so entries in flight at checkpoint time round-trip through a
 * snapshot and resume under the restored owner's dispatcher.
 */
class MshrFile
{
  public:
    /** Dispatcher: (waiter token, line address, completion tick). */
    using Dispatcher =
        std::function<void(const Continuation &, Addr, Cycle)>;

    explicit MshrFile(unsigned capacity, std::string name = "mshr");

    /** Install the waiter interpreter (required before complete()). */
    void setDispatcher(Dispatcher d) { dispatch_ = std::move(d); }

    /** True iff a miss to @p line is already outstanding. */
    bool outstanding(Addr line) const
    {
        return entries_.count(line) != 0;
    }

    /** True iff no new entry can be allocated. */
    bool full() const { return entries_.size() >= capacity_; }

    /**
     * Allocate an entry for @p line. @pre !outstanding(line) && !full().
     */
    void allocate(Addr line);

    /** Add a waiter to an outstanding entry. @pre outstanding(line). */
    void addWaiter(Addr line, Continuation w);

    /**
     * Complete the fill for @p line at @p tick: runs and removes all
     * waiters. @pre outstanding(line).
     */
    void complete(Addr line, Cycle tick);

    std::size_t size() const { return entries_.size(); }
    std::uint64_t coalesced() const { return coalesced_.value(); }

    /** Unique line fills started (the paper-style miss count). */
    std::uint64_t allocations() const { return allocations_.value(); }

    StatGroup &stats() { return statGroup_; }

    /**
     * Checkpoint outstanding entries and their waiter tokens. Entries
     * are written sorted by line address — the hash iteration order
     * never affects behaviour (complete() is per-line), so sorting
     * costs nothing and keeps snapshot bytes deterministic.
     */
    void serdeState(Archive &ar);

  private:
    unsigned capacity_;
    std::unordered_map<Addr, std::vector<Continuation>> entries_;
    Dispatcher dispatch_;

    StatGroup statGroup_;
    Counter allocations_, coalesced_;
    Histogram occupancy_; ///< sampled after each allocation
};

} // namespace dasdram

#endif // DASDRAM_CACHE_MSHR_HH
