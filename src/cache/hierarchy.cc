#include "hierarchy.hh"

#include "common/log.hh"

namespace dasdram
{

CacheHierarchy::CacheHierarchy(unsigned num_cores,
                               const HierarchyConfig &cfg,
                               std::uint64_t seed)
    : cfg_(cfg), statGroup_("caches")
{
    for (unsigned c = 0; c < num_cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(
            cfg.l1, "l1_" + std::to_string(c), seed + c));
        l2_.push_back(std::make_unique<Cache>(
            cfg.l2, "l2_" + std::to_string(c), seed + 100 + c));
        statGroup_.addChild(&l1_.back()->stats());
        statGroup_.addChild(&l2_.back()->stats());
    }
    llc_ = std::make_unique<Cache>(cfg.llc, "llc", seed + 1000);
    statGroup_.addChild(&llc_->stats());
    statGroup_.addCounter("demandLlcMisses", &demandMisses_,
                          "CPU demand misses that reach memory");
}

void
CacheHierarchy::installWithCascade(Cache &cache, Addr line, bool dirty,
                                   Cache *lower, const WritebackSink &wb)
{
    Cache::Eviction ev = cache.insert(line, dirty);
    if (!ev.valid || !ev.dirty)
        return;
    if (lower) {
        installWithCascade(*lower, ev.line, true,
                           lower == llc_.get() ? nullptr : llc_.get(), wb);
    } else if (wb) {
        wb(ev.line);
    }
}

CacheAccessResult
CacheHierarchy::access(unsigned core, Addr addr, bool is_write,
                       const WritebackSink &wb)
{
    CacheAccessResult res;
    Cache &l1 = *l1_[core];
    Cache &l2 = *l2_[core];
    res.lineAddr = l1.lineAddr(addr);

    if (l1.access(addr, is_write)) {
        res.level = HitLevel::L1;
        res.latencyTicks = cpuCyclesToTicks(cfg_.l1LatencyCpu);
        return res;
    }
    if (l2.access(addr, /*is_write=*/false)) {
        res.level = HitLevel::L2;
        res.latencyTicks = cpuCyclesToTicks(cfg_.l2LatencyCpu);
        // Promote to L1; victim cascades into L2 (then LLC if dirty).
        installWithCascade(l1, res.lineAddr, is_write, &l2, wb);
        return res;
    }
    if (llc_->access(addr, /*is_write=*/false)) {
        res.level = HitLevel::LLC;
        res.latencyTicks = cpuCyclesToTicks(cfg_.llcLatencyCpu);
        installWithCascade(l2, res.lineAddr, false, llc_.get(), wb);
        installWithCascade(l1, res.lineAddr, is_write, &l2, wb);
        return res;
    }

    res.level = HitLevel::Miss;
    res.latencyTicks = cpuCyclesToTicks(cfg_.llcLatencyCpu);
    demandMisses_.inc();
    return res;
}

void
CacheHierarchy::fill(unsigned core, Addr line, bool is_write,
                     const WritebackSink &wb)
{
    installWithCascade(*llc_, line, false, nullptr, wb);
    installWithCascade(*l2_[core], line, false, llc_.get(), wb);
    installWithCascade(*l1_[core], line, is_write, l2_[core].get(), wb);
}

bool
CacheHierarchy::llcSideAccess(Addr addr)
{
    return llc_->access(addr, /*is_write=*/false);
}

void
CacheHierarchy::fillLlcOnly(Addr line, const WritebackSink &wb)
{
    installWithCascade(*llc_, line, false, nullptr, wb);
}

} // namespace dasdram
