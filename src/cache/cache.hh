/**
 * @file
 * A functional set-associative write-back cache with pluggable
 * replacement, used for L1/L2/LLC and for the DAS translation cache.
 * Timing is handled by the owner; this class models contents only.
 */

#ifndef DASDRAM_CACHE_CACHE_HH
#define DASDRAM_CACHE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dasdram
{

/** Replacement policy for Cache. */
enum class CacheRepl
{
    Lru,
    Random,
};

/** Geometry and policy of one cache. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 64 * KiB;
    unsigned assoc = 8;
    std::uint64_t lineBytes = 64;
    CacheRepl repl = CacheRepl::Lru;

    std::uint64_t
    numSets() const
    {
        return sizeBytes / (lineBytes * assoc);
    }
};

/**
 * Set-associative cache directory. Addresses passed in may be unaligned;
 * they are truncated to lines internally.
 */
class Cache
{
  public:
    /** Result of an insertion: the victim line, if one was evicted. */
    struct Eviction
    {
        bool valid = false;
        Addr line = kAddrInvalid;
        bool dirty = false;
    };

    Cache(const CacheConfig &cfg, std::string name,
          std::uint64_t seed = 1);

    /**
     * Look up @p addr; on hit update recency (and dirty when
     * @p is_write). Misses do NOT allocate — use insert() on fill.
     * @return true on hit.
     */
    bool access(Addr addr, bool is_write);

    /** Hit check without state update. */
    bool probe(Addr addr) const;

    /**
     * Allocate a line (e.g. on fill or writeback from an upper level).
     * If the line is already present it is refreshed (dirty OR-ed in)
     * and no eviction happens.
     */
    Eviction insert(Addr addr, bool dirty);

    /** Remove a line. @return true iff it was present and dirty. */
    bool invalidate(Addr addr);

    /** Line-align an address. */
    Addr
    lineAddr(Addr addr) const
    {
        return addr & ~(cfg_.lineBytes - 1);
    }

    const CacheConfig &config() const { return cfg_; }
    const std::string &name() const { return name_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }
    std::uint64_t dirtyEvictions() const { return dirtyEvictions_.value(); }

    /** Fraction of lines currently valid (for warm-up checks). */
    double occupancy() const;

    /** Checkpoint directory contents, recency stamps and the
     *  replacement RNG (stats ride the owner's StatGroup tree). */
    void serdeState(Archive &ar);

    StatGroup &stats() { return statGroup_; }

  private:
    struct Line
    {
        Addr tag = kAddrInvalid;
        bool valid = false;
        bool dirty = false;
        std::uint64_t stamp = 0; ///< LRU recency
    };

    std::uint64_t setIndex(Addr line) const;
    Line *find(Addr line);
    const Line *find(Addr line) const;

    CacheConfig cfg_;
    std::string name_;
    std::vector<Line> lines_; ///< [set * assoc + way]
    std::uint64_t stampCounter_ = 0;
    Rng rng_;

    StatGroup statGroup_;
    Counter hits_, misses_, evictions_, dirtyEvictions_;
};

} // namespace dasdram

#endif // DASDRAM_CACHE_CACHE_HH
