#include "cache.hh"

#include "common/bitutil.hh"
#include "common/log.hh"

namespace dasdram
{

Cache::Cache(const CacheConfig &cfg, std::string name, std::uint64_t seed)
    : cfg_(cfg), name_(std::move(name)), rng_(seed), statGroup_(name_)
{
    if (!isPowerOfTwo(cfg.lineBytes))
        fatal("cache '{}': line size must be a power of two", name_);
    if (cfg.assoc == 0 || cfg.sizeBytes % (cfg.lineBytes * cfg.assoc) != 0)
        fatal("cache '{}': size not divisible by assoc*line", name_);
    if (!isPowerOfTwo(cfg.numSets()))
        fatal("cache '{}': number of sets must be a power of two", name_);

    lines_.resize(cfg.numSets() * cfg.assoc);

    statGroup_.addCounter("hits", &hits_);
    statGroup_.addCounter("misses", &misses_);
    statGroup_.addCounter("evictions", &evictions_);
    statGroup_.addCounter("dirtyEvictions", &dirtyEvictions_);
}

std::uint64_t
Cache::setIndex(Addr line) const
{
    return (line / cfg_.lineBytes) & (cfg_.numSets() - 1);
}

Cache::Line *
Cache::find(Addr line)
{
    std::uint64_t set = setIndex(line);
    Line *base = &lines_[set * cfg_.assoc];
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (base[w].valid && base[w].tag == line)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line *
Cache::find(Addr line) const
{
    return const_cast<Cache *>(this)->find(line);
}

bool
Cache::access(Addr addr, bool is_write)
{
    Addr line = lineAddr(addr);
    Line *l = find(line);
    if (l) {
        l->stamp = ++stampCounter_;
        if (is_write)
            l->dirty = true;
        hits_.inc();
        return true;
    }
    misses_.inc();
    return false;
}

bool
Cache::probe(Addr addr) const
{
    return find(lineAddr(addr)) != nullptr;
}

Cache::Eviction
Cache::insert(Addr addr, bool dirty)
{
    Addr line = lineAddr(addr);
    Eviction ev;
    if (Line *existing = find(line)) {
        existing->stamp = ++stampCounter_;
        existing->dirty = existing->dirty || dirty;
        return ev;
    }

    std::uint64_t set = setIndex(line);
    Line *base = &lines_[set * cfg_.assoc];
    Line *victim = nullptr;
    for (unsigned w = 0; w < cfg_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
    }
    if (!victim) {
        if (cfg_.repl == CacheRepl::Random) {
            victim = &base[rng_.nextBelow(cfg_.assoc)];
        } else {
            victim = base;
            for (unsigned w = 1; w < cfg_.assoc; ++w) {
                if (base[w].stamp < victim->stamp)
                    victim = &base[w];
            }
        }
        ev.valid = true;
        ev.line = victim->tag;
        ev.dirty = victim->dirty;
        evictions_.inc();
        if (victim->dirty)
            dirtyEvictions_.inc();
    }

    victim->tag = line;
    victim->valid = true;
    victim->dirty = dirty;
    victim->stamp = ++stampCounter_;
    return ev;
}

bool
Cache::invalidate(Addr addr)
{
    Line *l = find(lineAddr(addr));
    if (!l)
        return false;
    bool was_dirty = l->dirty;
    l->valid = false;
    l->dirty = false;
    l->tag = kAddrInvalid;
    return was_dirty;
}

void
Cache::serdeState(Archive &ar)
{
    ar.section("cache");
    ar.expectCount(lines_.size(), "cache lines");
    for (Line &l : lines_) {
        ar.io(l.tag);
        ar.io(l.valid);
        ar.io(l.dirty);
        ar.io(l.stamp);
    }
    ar.io(stampCounter_);
    rng_.serdeState(ar);
    ar.end();
}

double
Cache::occupancy() const
{
    std::uint64_t valid = 0;
    for (const Line &l : lines_)
        valid += l.valid ? 1 : 0;
    return lines_.empty()
               ? 0.0
               : static_cast<double>(valid) /
                     static_cast<double>(lines_.size());
}

} // namespace dasdram
