/**
 * @file
 * Three-level cache hierarchy (private L1/L2, shared LLC) with the
 * Table 1 latencies. Contents are functional; the hierarchy reports
 * lookup latency and whether DRAM must be accessed, and cascades dirty
 * evictions downward, emitting DRAM writebacks from the LLC.
 */

#ifndef DASDRAM_CACHE_HIERARCHY_HH
#define DASDRAM_CACHE_HIERARCHY_HH

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/clock.hh"

namespace dasdram
{

/** Per-level latencies and geometries (Table 1 defaults). */
struct HierarchyConfig
{
    CacheConfig l1{64 * KiB, 8, 64, CacheRepl::Lru};
    CacheConfig l2{256 * KiB, 8, 64, CacheRepl::Lru};
    CacheConfig llc{4 * MiB, 8, 64, CacheRepl::Lru};
    Cycle l1LatencyCpu = 4;   ///< CPU cycles to an L1 hit
    Cycle l2LatencyCpu = 12;  ///< CPU cycles to an L2 hit
    Cycle llcLatencyCpu = 20; ///< CPU cycles to an LLC hit
};

/** Level at which an access hit. */
enum class HitLevel
{
    L1,
    L2,
    LLC,
    Miss, ///< must go to memory
};

/** Outcome of a hierarchy lookup. */
struct CacheAccessResult
{
    HitLevel level = HitLevel::Miss;
    Cycle latencyTicks = 0; ///< lookup latency (hit: to data; miss: to
                            ///< the memory controller)
    Addr lineAddr = kAddrInvalid;
};

/**
 * The cache hierarchy shared by all cores. Writebacks that leave the
 * LLC are handed to a sink (the memory system) as line addresses.
 */
class CacheHierarchy
{
  public:
    /** Sink for LLC dirty evictions (DRAM write traffic). */
    using WritebackSink = std::function<void(Addr)>;

    CacheHierarchy(unsigned num_cores, const HierarchyConfig &cfg,
                   std::uint64_t seed = 7);

    /**
     * Perform a load/store lookup for @p core. On L2/LLC hits the line
     * is promoted into the upper levels; cascaded dirty evictions that
     * leave the LLC are passed to @p wb.
     */
    CacheAccessResult access(unsigned core, Addr addr, bool is_write,
                             const WritebackSink &wb);

    /**
     * Install a line after a DRAM fill for @p core (all levels).
     * @p is_write marks the L1 copy dirty (write-allocate).
     */
    void fill(unsigned core, Addr line, bool is_write,
              const WritebackSink &wb);

    /**
     * LLC-only access on behalf of the DAS translation-table walker
     * (the table is cached in the LLC; Section 5.2).
     * @return true on hit; on miss the caller fetches from DRAM and
     * calls fillLlcOnly().
     */
    bool llcSideAccess(Addr addr);

    /** Install a table line into the LLC only. */
    void fillLlcOnly(Addr line, const WritebackSink &wb);

    Cache &l1(unsigned core) { return *l1_[core]; }
    Cache &l2(unsigned core) { return *l2_[core]; }
    Cache &llc() { return *llc_; }
    unsigned numCores() const { return static_cast<unsigned>(l1_.size()); }
    const HierarchyConfig &config() const { return cfg_; }

    /** LLC misses from CPU demand accesses (for MPKI). */
    std::uint64_t demandLlcMisses() const { return demandMisses_.value(); }

    /** Checkpoint every level's directory (geometry is config-derived;
     *  a per-level shape mismatch is fatal inside Cache). */
    void
    serdeState(Archive &ar)
    {
        ar.section("hierarchy");
        ar.expectCount(l1_.size(), "private cache pairs");
        for (auto &c : l1_)
            c->serdeState(ar);
        for (auto &c : l2_)
            c->serdeState(ar);
        llc_->serdeState(ar);
        ar.end();
    }

    StatGroup &stats() { return statGroup_; }

  private:
    /** Insert into @p level; cascade the victim to @p lower (or wb). */
    void installWithCascade(Cache &cache, Addr line, bool dirty,
                            Cache *lower, const WritebackSink &wb);

    HierarchyConfig cfg_;
    std::vector<std::unique_ptr<Cache>> l1_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> llc_;

    StatGroup statGroup_;
    Counter demandMisses_;
};

} // namespace dasdram

#endif // DASDRAM_CACHE_HIERARCHY_HH
