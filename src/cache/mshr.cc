#include "mshr.hh"

#include "common/log.hh"

namespace dasdram
{

MshrFile::MshrFile(unsigned capacity, std::string name)
    : capacity_(capacity), statGroup_(std::move(name))
{
    statGroup_.addCounter("allocations", &allocations_);
    statGroup_.addCounter("coalesced", &coalesced_,
                          "misses merged into an outstanding fill");
    statGroup_.addHistogram("occupancy", &occupancy_,
                            "entries in use after each allocation");
}

void
MshrFile::allocate(Addr line)
{
    if (full())
        panic("MSHR allocate when full");
    auto [it, inserted] = entries_.try_emplace(line);
    if (!inserted)
        panic("MSHR allocate for already outstanding line {:x}", line);
    allocations_.inc();
    occupancy_.sample(entries_.size());
}

void
MshrFile::addWaiter(Addr line, Waiter w)
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        panic("MSHR addWaiter without outstanding entry");
    it->second.push_back(std::move(w));
    coalesced_.inc();
}

void
MshrFile::complete(Addr line, Cycle tick)
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        panic("MSHR complete without outstanding entry");
    std::vector<Waiter> waiters = std::move(it->second);
    entries_.erase(it);
    for (Waiter &w : waiters)
        w(line, tick);
}

} // namespace dasdram
