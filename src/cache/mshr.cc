#include "mshr.hh"

#include <algorithm>

#include "common/log.hh"

namespace dasdram
{

MshrFile::MshrFile(unsigned capacity, std::string name)
    : capacity_(capacity), statGroup_(std::move(name))
{
    statGroup_.addCounter("allocations", &allocations_);
    statGroup_.addCounter("coalesced", &coalesced_,
                          "misses merged into an outstanding fill");
    statGroup_.addHistogram("occupancy", &occupancy_,
                            "entries in use after each allocation");
}

void
MshrFile::allocate(Addr line)
{
    if (full())
        panic("MSHR allocate when full");
    auto [it, inserted] = entries_.try_emplace(line);
    if (!inserted)
        panic("MSHR allocate for already outstanding line {:x}", line);
    allocations_.inc();
    occupancy_.sample(entries_.size());
}

void
MshrFile::addWaiter(Addr line, Continuation w)
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        panic("MSHR addWaiter without outstanding entry");
    it->second.push_back(w);
    coalesced_.inc();
}

void
MshrFile::complete(Addr line, Cycle tick)
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        panic("MSHR complete without outstanding entry");
    std::vector<Continuation> waiters = std::move(it->second);
    entries_.erase(it);
    if (!dispatch_ && !waiters.empty())
        panic("MSHR complete with waiters but no dispatcher");
    for (const Continuation &w : waiters)
        dispatch_(w, line, tick);
}

void
MshrFile::serdeState(Archive &ar)
{
    ar.section("mshr");
    std::uint64_t n = entries_.size();
    ar.io(n);
    if (ar.saving()) {
        std::vector<Addr> lines;
        lines.reserve(entries_.size());
        for (const auto &kv : entries_)
            lines.push_back(kv.first);
        std::sort(lines.begin(), lines.end());
        for (Addr line : lines) {
            ar.io(line);
            auto &waiters = entries_.at(line);
            std::uint64_t w = waiters.size();
            ar.io(w);
            for (Continuation &c : waiters)
                c.serdeState(ar);
        }
    } else {
        entries_.clear();
        for (std::uint64_t i = 0; i < n; ++i) {
            Addr line = 0;
            ar.io(line);
            std::uint64_t w = 0;
            ar.io(w);
            std::vector<Continuation> waiters(
                static_cast<std::size_t>(w));
            for (Continuation &c : waiters)
                c.serdeState(ar);
            entries_.emplace(line, std::move(waiters));
        }
    }
    ar.end();
}

} // namespace dasdram
