/**
 * @file
 * Instruction-trace abstraction consumed by the core model.
 *
 * A trace is a stream of records (gap, address, is_write): @c gap
 * non-memory instructions followed by one memory instruction. This is
 * the standard front-end format of memory-system simulators
 * (Ramulator/USIMM) and substitutes for Marss86 full-system execution.
 */

#ifndef DASDRAM_CPU_TRACE_HH
#define DASDRAM_CPU_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/serde.hh"
#include "common/types.hh"

namespace dasdram
{

/** One trace record: @c gap non-memory instructions, then a memory op. */
struct TraceEntry
{
    std::uint32_t gap = 0;
    Addr addr = 0;
    bool isWrite = false;
};

/** A (possibly infinite) stream of trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next record. @return false when the trace is
     * exhausted (synthetic generators never are).
     */
    virtual bool next(TraceEntry &out) = 0;

    /** Restart from the beginning (used by the profiling pass). */
    virtual void reset() = 0;

    /**
     * Checkpoint the stream position so a restored simulation resumes
     * delivering exactly the records the straight run would have seen.
     * Sources that cannot round-trip (e.g. a recording tee) refuse
     * loudly; the default refuses so new sources opt in explicitly.
     */
    virtual void
    serdeState(Archive &)
    {
        fatal("this trace source does not support checkpointing");
    }
};

/** Fixed in-memory trace, mainly for tests. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceEntry> entries,
                               bool loop = false)
        : entries_(std::move(entries)), loop_(loop)
    {}

    bool
    next(TraceEntry &out) override
    {
        if (pos_ >= entries_.size()) {
            if (!loop_ || entries_.empty())
                return false;
            pos_ = 0;
        }
        out = entries_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

    void
    serdeState(Archive &ar) override
    {
        ar.section("vectorTrace");
        ar.expectCount(entries_.size(), "vector-trace entries");
        std::uint64_t pos = pos_;
        ar.io(pos);
        pos_ = static_cast<std::size_t>(pos);
        ar.end();
    }

  private:
    std::vector<TraceEntry> entries_;
    bool loop_;
    std::size_t pos_ = 0;
};

} // namespace dasdram

#endif // DASDRAM_CPU_TRACE_HH
