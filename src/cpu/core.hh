/**
 * @file
 * ROB-window out-of-order core model (Table 1: 3 GHz, 4-wide issue,
 * 192-entry ROB).
 *
 * Every instruction occupies a window slot; non-memory instructions and
 * stores complete immediately, loads complete when the memory system
 * calls back. Retirement is in order, up to issue-width per cycle, so
 * a long-latency load at the head stalls the core exactly as a ROB
 * does. This converts memory latency into IPC the same way detailed
 * cores do for memory-bound workloads.
 */

#ifndef DASDRAM_CPU_CORE_HH
#define DASDRAM_CPU_CORE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/trace.hh"
#include "mem/clock.hh"

namespace dasdram
{

/** Core tunables (Table 1 defaults). */
struct CoreConfig
{
    unsigned issueWidth = 4;
    unsigned robSize = 192;
};

/**
 * One core bound to one trace. The owner provides a memory-access
 * functor; the core hands it loads/stores and a completion setter.
 */
class Core
{
  public:
    /**
     * Memory access hook. Arguments: address, is_write, done —
     * the memory system must call @c done(completion_tick) when the
     * load's data arrives (stores may ignore it). The hook may call
     * @c done synchronously (cache hits).
     */
    using MemAccessFn =
        std::function<void(Addr, bool, std::function<void(Cycle)>)>;

    Core(int id, const CoreConfig &cfg, TraceSource &trace,
         MemAccessFn mem);

    /** Advance one CPU cycle ending at tick @p now. */
    void tick(Cycle now);

    /** Retired instruction count. */
    InstCount retired() const { return retired_.value(); }

    /** Elapsed CPU cycles. */
    std::uint64_t cycles() const { return cycles_.value(); }

    /** Retired / cycles. */
    double
    ipc() const
    {
        return cycles() ? static_cast<double>(retired()) /
                              static_cast<double>(cycles())
                        : 0.0;
    }

    /** True iff the trace ran out and the window drained. */
    bool finished() const { return traceDone_ && windowCount_ == 0; }

    int id() const { return id_; }

    /** Zero statistics (end of warm-up) without touching window state. */
    void resetStats();

    StatGroup &stats() { return statGroup_; }

  private:
    struct Slot
    {
        bool isMem = false;
        bool isLoad = false;
        bool done = true;
        Cycle doneAtTick = 0;
    };

    /** Fetch the next trace record into pending state. */
    void refill();

    void dispatchOne(Cycle now);

    int id_;
    CoreConfig cfg_;
    TraceSource *trace_;
    MemAccessFn mem_;

    std::vector<Slot> window_;
    unsigned head_ = 0;
    unsigned tail_ = 0;
    unsigned windowCount_ = 0;

    /** Pending trace record being dispatched. */
    TraceEntry pending_{};
    std::uint32_t gapLeft_ = 0;
    bool havePending_ = false;
    bool traceDone_ = false;

    StatGroup statGroup_;
    Counter retired_, cycles_, loads_, stores_, robStallCycles_;
};

} // namespace dasdram

#endif // DASDRAM_CPU_CORE_HH
