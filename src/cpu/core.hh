/**
 * @file
 * ROB-window out-of-order core model (Table 1: 3 GHz, 4-wide issue,
 * 192-entry ROB).
 *
 * Every instruction occupies a window slot; non-memory instructions and
 * stores complete immediately, loads complete when the memory system
 * calls back. Retirement is in order, up to issue-width per cycle, so
 * a long-latency load at the head stalls the core exactly as a ROB
 * does. This converts memory latency into IPC the same way detailed
 * cores do for memory-bound workloads.
 */

#ifndef DASDRAM_CPU_CORE_HH
#define DASDRAM_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/trace.hh"
#include "mem/clock.hh"

namespace dasdram
{

/** Core tunables (Table 1 defaults). */
struct CoreConfig
{
    unsigned issueWidth = 4;
    unsigned robSize = 192;
};

/**
 * One core bound to one trace. The owner provides a memory-access
 * functor; the core hands it loads/stores and, for loads, the ROB
 * slot index the owner must wake through completeLoad() when the
 * data arrives. The slot index is plain data, so in-flight accesses
 * survive a checkpoint (the owner serialises the token, not a
 * closure).
 */
class Core
{
  public:
    /** Slot argument passed for accesses needing no completion
     *  (stores retire via the store buffer). */
    static constexpr unsigned kNoSlot = ~0u;

    /**
     * Memory access hook. Arguments: address, is_write, slot — for
     * loads the owner must call @c completeLoad(slot, tick) when the
     * data arrives (possibly synchronously, for cache hits); for
     * stores @c slot is kNoSlot and no completion is expected.
     */
    using MemAccessFn = std::function<void(Addr, bool, unsigned)>;

    Core(int id, const CoreConfig &cfg, TraceSource &trace,
         MemAccessFn mem);

    /** Advance one CPU cycle ending at tick @p now. */
    void tick(Cycle now);

    /**
     * Wake the load in ROB slot @p slot: its data arrived at
     * @p done_tick. @p slot is the index handed to the MemAccessFn
     * when the load dispatched; the slot is guaranteed still to hold
     * that load (in-order retirement cannot pass an incomplete load).
     */
    void completeLoad(unsigned slot, Cycle done_tick);

    /**
     * Event horizon: the earliest tick at which tick() could retire or
     * dispatch anything, given the state at @p now (a tick at which
     * this core already ticked). Returns kCycleMax when only an
     * external memory callback can unblock the core (ROB head is an
     * outstanding load, or the core is finished) — the owner's DRAM /
     * event horizons bound that case. The result is not necessarily
     * aligned to the CPU clock; the caller rounds up to a multiple of
     * kCpuTick. Never late: ticking earlier than the horizon is a
     * no-op, ticking later than it would diverge from per-cycle
     * execution.
     */
    Cycle nextEventTick(Cycle now) const;

    /**
     * Account @p n skipped CPU cycles during which this core provably
     * did nothing: cycles elapse, and if the ROB head is a blocked
     * load the stall counter advances, exactly as @p n tick() calls
     * would have done. @pre nextEventTick() is more than @p n cycles
     * away.
     */
    void skipCycles(std::uint64_t n);

    /**
     * Batch-execute up to @p max_cycles of pure gap-bubble flow —
     * cycles whose dispatch consumes only non-memory bubbles and
     * whose retirement needs no new completion — starting with the
     * tick at @p first_tick, replicating per-cycle tick() exactly but
     * without per-cycle system overhead. Stops before any cycle that
     * would dispatch a memory instruction, refill from the trace,
     * retire across @p max_retire instructions, or do nothing at all
     * (a pure stall, which skipCycles() accounts in bulk). Returns
     * the number of cycles consumed.
     *
     * With @p apply false this is a pure lookahead (no state
     * changes) — the event engine's dispatch horizon. With @p apply
     * true the cycles are executed. Both passes share one code path,
     * so a lookahead of n guarantees an apply of up to n consumes
     * exactly the requested amount.
     *
     * @pre No memory completion callback fires during the burst (the
     * caller's event/DRAM horizons must bound it) and, when applying,
     * the same precondition held since the lookahead.
     */
    std::uint64_t burstCycles(Cycle first_tick, std::uint64_t max_cycles,
                              InstCount max_retire, bool apply);

    /** Retired instruction count. */
    InstCount retired() const { return retired_.value(); }

    /** Elapsed CPU cycles. */
    std::uint64_t cycles() const { return cycles_.value(); }

    /** Retired / cycles. */
    double
    ipc() const
    {
        return cycles() ? static_cast<double>(retired()) /
                              static_cast<double>(cycles())
                        : 0.0;
    }

    /** True iff the trace ran out and the window drained. */
    bool finished() const { return traceDone_ && windowCount_ == 0; }

    int id() const { return id_; }

    /** Zero statistics (end of warm-up) without touching window state. */
    void resetStats();

    /**
     * Checkpoint the window, dispatch cursor and pending trace record
     * (stats ride the owner's StatGroup tree; the trace source is
     * serialised by its owner). Slot done-ness round-trips, so loads
     * still in flight at save time resume waiting after a load.
     */
    void serdeState(Archive &ar);

    StatGroup &stats() { return statGroup_; }

  private:
    struct Slot
    {
        bool isMem = false;
        bool isLoad = false;
        bool done = true;
        Cycle doneAtTick = 0;
    };

    /** Fetch the next trace record into pending state. */
    void refill();

    void dispatchOne(Cycle now);

    int id_;
    CoreConfig cfg_;
    TraceSource *trace_;
    MemAccessFn mem_;

    std::vector<Slot> window_;
    unsigned head_ = 0;
    unsigned tail_ = 0;
    unsigned windowCount_ = 0;

    /** Pending trace record being dispatched. */
    TraceEntry pending_{};
    std::uint32_t gapLeft_ = 0;
    bool havePending_ = false;
    bool traceDone_ = false;

    /**
     * Lifetime retired count (never reset) and the absolute sequence
     * numbers of the load slots dispatched so far, oldest first; a
     * load is still in the window iff its sequence number is >=
     * retiredAbs_. Lets burstCycles() prove in O(1) that the whole
     * window is retire-ready (no load to block on), unlocking its
     * closed-form steady-state path. Entries are popped lazily.
     */
    std::uint64_t retiredAbs_ = 0;
    std::deque<std::uint64_t> loadSeqs_;

    StatGroup statGroup_;
    Counter retired_, cycles_, loads_, stores_, robStallCycles_;
};

} // namespace dasdram

#endif // DASDRAM_CPU_CORE_HH
