#include "core.hh"

#include "common/log.hh"

namespace dasdram
{

Core::Core(int id, const CoreConfig &cfg, TraceSource &trace,
           MemAccessFn mem)
    : id_(id), cfg_(cfg), trace_(&trace), mem_(std::move(mem)),
      window_(cfg.robSize), statGroup_("core" + std::to_string(id))
{
    if (cfg.robSize == 0 || cfg.issueWidth == 0)
        fatal("core{}: ROB size and issue width must be positive", id);
    statGroup_.addCounter("retired", &retired_, "retired instructions");
    statGroup_.addCounter("cycles", &cycles_, "elapsed CPU cycles");
    statGroup_.addCounter("loads", &loads_);
    statGroup_.addCounter("stores", &stores_);
    statGroup_.addCounter("robStallCycles", &robStallCycles_,
                          "cycles retirement blocked on a load");
    statGroup_.addFormula(
        "ipc", [this] { return ipc(); }, "instructions per cycle");
}

void
Core::refill()
{
    if (trace_->next(pending_)) {
        havePending_ = true;
        gapLeft_ = pending_.gap;
    } else {
        traceDone_ = true;
        havePending_ = false;
        gapLeft_ = 0;
    }
}

void
Core::dispatchOne(Cycle now)
{
    Slot &slot = window_[tail_];
    tail_ = (tail_ + 1) % cfg_.robSize;
    ++windowCount_;

    if (gapLeft_ > 0) {
        --gapLeft_;
        slot = Slot{};
        slot.doneAtTick = now;
        return;
    }

    // The memory instruction of the pending record.
    slot.isMem = true;
    slot.isLoad = !pending_.isWrite;
    slot.done = !slot.isLoad; // stores retire via the store buffer
    slot.doneAtTick = now;
    (slot.isLoad ? loads_ : stores_).inc();

    Addr addr = pending_.addr;
    bool is_write = pending_.isWrite;
    havePending_ = false;

    if (slot.isLoad) {
        Slot *slot_ptr = &slot;
        mem_(addr, is_write, [slot_ptr](Cycle done_tick) {
            slot_ptr->done = true;
            slot_ptr->doneAtTick = done_tick;
        });
    } else {
        mem_(addr, is_write, [](Cycle) {});
    }
}

void
Core::tick(Cycle now)
{
    cycles_.inc();

    // In-order retirement, up to issueWidth per cycle.
    unsigned retired_now = 0;
    while (retired_now < cfg_.issueWidth && windowCount_ > 0) {
        Slot &s = window_[head_];
        if (!s.done || s.doneAtTick > now) {
            if (s.isMem && s.isLoad)
                robStallCycles_.inc();
            break;
        }
        head_ = (head_ + 1) % cfg_.robSize;
        --windowCount_;
        retired_.inc();
        ++retired_now;
    }

    // Dispatch up to issueWidth new instructions.
    for (unsigned d = 0; d < cfg_.issueWidth; ++d) {
        if (windowCount_ >= cfg_.robSize)
            break;
        if (!havePending_ && !traceDone_)
            refill();
        if (!havePending_ && gapLeft_ == 0)
            break; // trace exhausted
        dispatchOne(now);
    }
}

void
Core::resetStats()
{
    retired_.reset();
    cycles_.reset();
    loads_.reset();
    stores_.reset();
    robStallCycles_.reset();
}

} // namespace dasdram
