#include "core.hh"

#include <algorithm>

#include "common/log.hh"

namespace dasdram
{

Core::Core(int id, const CoreConfig &cfg, TraceSource &trace,
           MemAccessFn mem)
    : id_(id), cfg_(cfg), trace_(&trace), mem_(std::move(mem)),
      window_(cfg.robSize), statGroup_("core" + std::to_string(id))
{
    if (cfg.robSize == 0 || cfg.issueWidth == 0)
        fatal("core{}: ROB size and issue width must be positive", id);
    statGroup_.addCounter("retired", &retired_, "retired instructions");
    statGroup_.addCounter("cycles", &cycles_, "elapsed CPU cycles");
    statGroup_.addCounter("loads", &loads_);
    statGroup_.addCounter("stores", &stores_);
    statGroup_.addCounter("robStallCycles", &robStallCycles_,
                          "cycles retirement blocked on a load");
    statGroup_.addFormula(
        "ipc", [this] { return ipc(); }, "instructions per cycle");
}

void
Core::refill()
{
    if (trace_->next(pending_)) {
        havePending_ = true;
        gapLeft_ = pending_.gap;
    } else {
        traceDone_ = true;
        havePending_ = false;
        gapLeft_ = 0;
    }
}

void
Core::dispatchOne(Cycle now)
{
    const unsigned slot_index = tail_;
    Slot &slot = window_[tail_];
    tail_ = (tail_ + 1) % cfg_.robSize;
    ++windowCount_;

    if (gapLeft_ > 0) {
        --gapLeft_;
        slot = Slot{};
        slot.doneAtTick = now;
        return;
    }

    // The memory instruction of the pending record.
    slot.isMem = true;
    slot.isLoad = !pending_.isWrite;
    slot.done = !slot.isLoad; // stores retire via the store buffer
    slot.doneAtTick = now;
    (slot.isLoad ? loads_ : stores_).inc();
    if (slot.isLoad) {
        while (!loadSeqs_.empty() && loadSeqs_.front() < retiredAbs_)
            loadSeqs_.pop_front();
        // The slot just written is the newest window entry.
        loadSeqs_.push_back(retiredAbs_ + windowCount_ - 1);
    }

    Addr addr = pending_.addr;
    bool is_write = pending_.isWrite;
    havePending_ = false;

    mem_(addr, is_write, slot.isLoad ? slot_index : kNoSlot);
}

void
Core::completeLoad(unsigned slot, Cycle done_tick)
{
    if (slot >= window_.size())
        panic("core{}: completeLoad slot {} out of range", id_, slot);
    Slot &s = window_[slot];
    s.done = true;
    s.doneAtTick = done_tick;
}

void
Core::tick(Cycle now)
{
    cycles_.inc();

    // In-order retirement, up to issueWidth per cycle.
    unsigned retired_now = 0;
    while (retired_now < cfg_.issueWidth && windowCount_ > 0) {
        Slot &s = window_[head_];
        if (!s.done || s.doneAtTick > now) {
            if (s.isMem && s.isLoad)
                robStallCycles_.inc();
            break;
        }
        head_ = (head_ + 1) % cfg_.robSize;
        --windowCount_;
        retired_.inc();
        ++retiredAbs_;
        ++retired_now;
    }

    // Dispatch up to issueWidth new instructions.
    for (unsigned d = 0; d < cfg_.issueWidth; ++d) {
        if (windowCount_ >= cfg_.robSize)
            break;
        if (!havePending_ && !traceDone_)
            refill();
        if (!havePending_ && gapLeft_ == 0)
            break; // trace exhausted
        dispatchOne(now);
    }
}

Cycle
Core::nextEventTick(Cycle now) const
{
    // Anything dispatchable makes the very next cycle active. (A
    // havePending_ == false, gapLeft_ > 0 state cannot occur: gap
    // bubbles drain before the pending record's memory instruction.)
    if (windowCount_ < cfg_.robSize && (havePending_ || !traceDone_))
        return now + kCpuTick;
    if (windowCount_ == 0)
        return kCycleMax; // finished: only cycles_ keeps counting
    const Slot &s = window_[head_];
    if (!s.done)
        return kCycleMax; // a memory callback will set doneAtTick
    if (s.doneAtTick <= now)
        return now + kCpuTick; // retirable next cycle (width-limited)
    return s.doneAtTick;
}

std::uint64_t
Core::burstCycles(Cycle first_tick, std::uint64_t max_cycles,
                  InstCount max_retire, bool apply)
{
    // Locals mirror the mutable state; written back only when
    // applying, so the peek and apply passes share one code path and
    // cannot disagree. Bubble slots are deliberately NOT written:
    // every slot a burst dispatches over was either never used
    // (Slot{} is a done bubble) or holds a retired instruction, and a
    // retired slot is always done with a doneAtTick in the past — so
    // the stale contents retire exactly like a freshly written bubble
    // and can never trip the stall accounting.
    unsigned head = head_;
    unsigned count = windowCount_;
    std::uint32_t gap = gapLeft_;
    std::uint64_t consumed = 0, dispatched_total = 0;
    std::uint64_t retired = 0, stalls = 0;
    Cycle now = first_tick;

    while (consumed < max_cycles) {
        // The cycle must provably dispatch nothing but gap bubbles: a
        // memory dispatch or a trace refill needs a real tick().
        if (havePending_ ? gap < cfg_.issueWidth : !traceDone_)
            break;
        // Never reach an instruction threshold (warm-up reset or the
        // completion target): the crossing iteration must execute for
        // real so the system observes it — and resets or stops — on
        // exactly the same iteration as the tick engine.
        if (retired + cfg_.issueWidth >= max_retire)
            break;

        // Steady-state fast path: with no unretired load anywhere in
        // the window (everything ahead of head is a bubble or a
        // retire-ready store) and at least a retire-width of entries,
        // every cycle retires issueWidth and dispatches issueWidth
        // bubbles — the window occupancy is invariant and the whole
        // stretch collapses to arithmetic. loadSeqs_ is sorted, so
        // "no unretired load" is one comparison against its back.
        if (havePending_ && count >= cfg_.issueWidth &&
            (loadSeqs_.empty() ||
             loadSeqs_.back() < retiredAbs_ + retired)) {
            std::uint64_t k = max_cycles - consumed;
            k = std::min<std::uint64_t>(k, gap / cfg_.issueWidth);
            k = std::min<std::uint64_t>(
                k, (max_retire - retired - 1) / cfg_.issueWidth);
            const std::uint64_t insts = k * cfg_.issueWidth;
            head = static_cast<unsigned>((head + insts) % cfg_.robSize);
            gap -= static_cast<std::uint32_t>(insts);
            dispatched_total += insts;
            retired += insts;
            consumed += k;
            now += k * kCpuTick;
            continue;
        }

        // In-order retirement, replicating tick() under the caller's
        // guarantee that no memory callback fires during the burst
        // (slot done-ness is frozen; only `now` advances).
        unsigned retired_now = 0;
        bool stalled = false;
        while (retired_now < cfg_.issueWidth && count > 0) {
            const Slot &s = window_[head];
            if (!s.done || s.doneAtTick > now) {
                stalled = s.isMem && s.isLoad;
                break;
            }
            head = (head + 1) % cfg_.robSize;
            --count;
            ++retired_now;
        }

        // Bubble dispatch: full width unless the window limits it
        // (gap >= issueWidth was checked above).
        unsigned dispatched = 0;
        if (havePending_)
            dispatched = std::min(cfg_.issueWidth, cfg_.robSize - count);

        if (retired_now == 0 && dispatched == 0)
            break; // pure stall: skipCycles() accounts it in bulk

        count += dispatched;
        gap -= dispatched;
        dispatched_total += dispatched;
        retired += retired_now;
        if (stalled)
            ++stalls;
        ++consumed;
        now += kCpuTick;
    }

    if (apply && consumed) {
        head_ = head;
        tail_ = static_cast<unsigned>((tail_ + dispatched_total) %
                                      cfg_.robSize);
        windowCount_ = count;
        gapLeft_ = gap;
        cycles_.inc(consumed);
        retired_.inc(retired);
        retiredAbs_ += retired;
        robStallCycles_.inc(stalls);
    }
    return consumed;
}

void
Core::skipCycles(std::uint64_t n)
{
    if (n == 0)
        return;
    cycles_.inc(n);
    if (windowCount_ == 0)
        return;
    const Slot &s = window_[head_];
    if (s.isMem && s.isLoad)
        robStallCycles_.inc(n);
}

void
Core::serdeState(Archive &ar)
{
    ar.section("core");
    ar.expectCount(window_.size(), "ROB slots");
    for (Slot &s : window_) {
        ar.io(s.isMem);
        ar.io(s.isLoad);
        ar.io(s.done);
        ar.io(s.doneAtTick);
    }
    ar.io(head_);
    ar.io(tail_);
    ar.io(windowCount_);
    ar.io(pending_.gap);
    ar.io(pending_.addr);
    ar.io(pending_.isWrite);
    ar.io(gapLeft_);
    ar.io(havePending_);
    ar.io(traceDone_);
    ar.io(retiredAbs_);
    ar.io(loadSeqs_);
    ar.end();
}

void
Core::resetStats()
{
    retired_.reset();
    cycles_.reset();
    loads_.reset();
    stores_.reset();
    robStallCycles_.reset();
}

} // namespace dasdram
