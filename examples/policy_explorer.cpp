/**
 * @file
 * Policy explorer: sweep the management knobs the paper studies —
 * promotion threshold, victim replacement policy, fast-level ratio and
 * migration group size — on one benchmark, printing a compact report.
 * A miniature of the Figure 8/9 sensitivity studies for interactive
 * use.
 *
 * Usage: policy_explorer [benchmark] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hh"

using namespace dasdram;

namespace
{

void
report(const char *label, const ExperimentResult &r)
{
    const RunMetrics &m = r.metrics;
    double slow_share =
        m.locations.total()
            ? 100.0 * static_cast<double>(m.locations.slowLevel) /
                  static_cast<double>(m.locations.total())
            : 0.0;
    std::printf("  %-22s %+7.2f%%   %8.2f   %6.2f%%\n", label,
                100.0 * r.perfImprovement, m.ppkm(), slow_share);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "omnetpp";
    SimConfig cfg;
    cfg.instructionsPerCore =
        argc > 2 ? std::strtoull(argv[2], nullptr, 0) : 1'000'000;
    applySimScale(cfg);

    ExperimentRunner runner(cfg);
    WorkloadSpec w = WorkloadSpec::single(bench);

    std::printf("Policy exploration on '%s'\n", bench.c_str());
    std::printf("  %-22s %-9s  %-8s  %s\n", "configuration", "speedup",
                "PPKM", "slow-share");

    std::printf("promotion threshold (Figure 8):\n");
    for (unsigned th : {1u, 2u, 4u, 8u}) {
        runner.baseConfig().das.promotion.threshold = th;
        char label[32];
        std::snprintf(label, sizeof(label), "threshold %u", th);
        report(label, runner.run(w, DesignKind::Das));
    }
    runner.baseConfig().das.promotion.threshold = 1;

    std::printf("victim replacement (Section 7.6):\n");
    for (FastReplPolicy p :
         {FastReplPolicy::Lru, FastReplPolicy::Random,
          FastReplPolicy::Sequential, FastReplPolicy::PseudoRandom}) {
        runner.baseConfig().das.replacement = p;
        report(toString(p), runner.run(w, DesignKind::Das));
    }
    runner.baseConfig().das.replacement = FastReplPolicy::Lru;

    std::printf("fast-level ratio (Figure 9c/d):\n");
    for (unsigned denom : {32u, 16u, 8u, 4u}) {
        runner.baseConfig().layout.fastRatioDenom = denom;
        char label[32];
        std::snprintf(label, sizeof(label), "ratio 1/%u", denom);
        report(label, runner.run(w, DesignKind::Das));
    }
    runner.baseConfig().layout.fastRatioDenom = 8;

    std::printf("migration group size (Figure 9b):\n");
    for (unsigned g : {8u, 16u, 32u, 64u}) {
        runner.baseConfig().layout.groupSize = g;
        char label[32];
        std::snprintf(label, sizeof(label), "%u-row groups", g);
        report(label, runner.run(w, DesignKind::Das));
    }
    return 0;
}
