/**
 * @file
 * Custom-workload example: build your own BenchmarkProfile — here a
 * pointer-chasing key/value store with a drifting working set — and
 * evaluate how much DAS-DRAM helps it, using the System API directly
 * (rather than the canned SPEC profiles).
 */

#include <cstdio>

#include "sim/system.hh"
#include "workload/synth_trace.hh"

using namespace dasdram;

int
main()
{
    // A synthetic "key-value store": 256 MiB resident, intense and
    // latency-bound, pointer-chasing into a 16 MiB hot index that
    // drifts as the key distribution shifts.
    BenchmarkProfile kv;
    kv.name = "kvstore";
    kv.footprintMiB = 256;
    kv.memRatio = 0.33;
    kv.writeFraction = 0.10;
    kv.reuseProb = 0.90;
    kv.pStream = 0.05;  // log writes
    kv.pWork = 0.85;    // index lookups over the resident set
    kv.pHot = 0.08;     // a few celebrity keys
    kv.pUniform = 0.02; // cold scans
    kv.workingSetPages = 2048; // 16 MiB index
    kv.workingSetChurn = 0.01;
    kv.hotFraction = 0.02;
    kv.zipfS = 1.1;
    kv.phaseInstructions = 2'000'000;
    kv.runLength = 2; // small objects: little spatial locality

    SimConfig cfg;
    cfg.instructionsPerCore = 2'000'000;
    applySimScale(cfg);

    std::printf("kvstore on four DRAM designs (%llu instructions)\n\n",
                static_cast<unsigned long long>(cfg.instructionsPerCore));

    double standard_ipc = 0.0;
    for (DesignKind d : {DesignKind::Standard, DesignKind::Das,
                         DesignKind::DasFm, DesignKind::Fs}) {
        SimConfig run_cfg = cfg;
        run_cfg.design = d;
        SyntheticTrace trace(kv, /*seed=*/2024, run_cfg.geom.rowBytes,
                             run_cfg.geom.lineBytes);
        System sys(run_cfg, {&trace});
        RunMetrics m = sys.run();
        if (d == DesignKind::Standard)
            standard_ipc = m.ipc[0];
        double imp = standard_ipc > 0.0
                         ? 100.0 * (m.ipc[0] / standard_ipc - 1.0)
                         : 0.0;
        std::printf("%-14s IPC %.4f  (%+.2f%%)  MPKI %.1f  "
                    "promotions %llu\n",
                    toString(d).c_str(), m.ipc[0], imp, m.mpki(),
                    static_cast<unsigned long long>(m.promotions));
    }

    std::printf("\nTakeaway: a drifting pointer-chasing working set is "
                "exactly the pattern the paper's dynamic migration "
                "serves: static profiling cannot follow the drift, and "
                "the fast level captures the resident index.\n");
    return 0;
}
