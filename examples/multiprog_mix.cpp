/**
 * @file
 * Multi-programming example: run one of the Table 2 mixes (M1-M8) on
 * every DRAM design and report per-core IPCs and weighted speedup —
 * the experiment behind Figure 7d.
 *
 * Usage: multiprog_mix [mix-index 1..8] [instructions-per-core]
 */

#include <cstdio>
#include <cstdlib>

#include "common/log.hh"
#include "sim/experiment.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    std::size_t mix_idx = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                   : 3; // M3 by default
    if (mix_idx < 1 || mix_idx > 8)
        fatal("mix index must be 1..8");

    SimConfig cfg;
    cfg.instructionsPerCore = argc > 2
                                  ? std::strtoull(argv[2], nullptr, 0)
                                  : 1'000'000;
    applySimScale(cfg);

    WorkloadSpec w = WorkloadSpec::mix(mix_idx - 1);
    std::printf("Mix %s:", w.name.c_str());
    for (const auto &p : w.parts)
        std::printf(" %s", p.label().c_str());
    std::printf("  (%llu instructions per core)\n\n",
                static_cast<unsigned long long>(cfg.instructionsPerCore));

    ExperimentRunner runner(cfg);
    std::printf("%-14s %-10s  per-core IPC\n", "design", "speedup");
    for (DesignKind d : allDesigns()) {
        ExperimentResult r = runner.run(w, d);
        std::printf("%-14s %+8.2f%%  [", toString(d).c_str(),
                    100.0 * r.perfImprovement);
        for (std::size_t i = 0; i < r.metrics.ipc.size(); ++i)
            std::printf("%s%.3f", i ? ", " : "", r.metrics.ipc[i]);
        std::printf("]\n");
    }

    ExperimentResult das = runner.run(w, DesignKind::Das);
    const RunMetrics &m = das.metrics;
    std::printf("\nDAS-DRAM behaviour: MPKI %.2f, PPKM %.2f, "
                "footprint %.1f MiB, promotions %llu\n",
                m.mpki(), m.ppkm(), m.footprintMiB(8192),
                static_cast<unsigned long long>(m.promotions));
    return 0;
}
