/**
 * @file
 * Diagnostic example: run one workload on one design and dump the full
 * statistics tree (controller, cache, translation and manager stats).
 * Useful to understand where time and traffic go.
 *
 * Usage: inspect_stats [benchmark] [design] [instructions]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "sim/experiment.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth_trace.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "cactusADM";
    std::string design = argc > 2 ? argv[2] : "das";

    SimConfig cfg;
    cfg.instructionsPerCore =
        argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 2'000'000;
    applySimScale(cfg);
    cfg.design = parseDesign(design);

    const BenchmarkProfile &prof = specProfile(bench);
    SyntheticTrace trace(prof, cfg.seed, cfg.geom.rowBytes,
                         cfg.geom.lineBytes);
    System sys(cfg, {&trace});
    RunMetrics m = sys.run();

    std::cout << "# " << bench << " on " << toString(cfg.design) << "\n";
    std::cout << "ipc " << m.ipc[0] << "  mpki " << m.mpki() << "  ppkm "
              << m.ppkm() << "\n\n";
    sys.dumpStats(std::cout);
    return 0;
}
