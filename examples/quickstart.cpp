/**
 * @file
 * Quickstart: simulate one SPEC-like workload on standard DRAM and on
 * DAS-DRAM, and print the headline comparison. Start here.
 *
 * Usage: quickstart [benchmark] [design]
 *   benchmark: one of the Table 2 names (default: mcf)
 *   design:    standard | sas | charm | das | das-fm | fs (default: das)
 */

#include <cstdio>
#include <string>

#include "common/log.hh"
#include "sim/experiment.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    std::string bench = argc > 1 ? argv[1] : "mcf";
    std::string design_name = argc > 2 ? argv[2] : "das";

    SimConfig cfg;
    cfg.instructionsPerCore = 2'000'000;
    applySimScale(cfg);

    ExperimentRunner runner(cfg);
    WorkloadSpec workload = WorkloadSpec::single(bench);
    DesignKind design = parseDesign(design_name);

    std::printf("Simulating '%s' (%llu instructions per core)...\n",
                bench.c_str(),
                static_cast<unsigned long long>(cfg.instructionsPerCore));

    ExperimentResult std_res = runner.run(workload, DesignKind::Standard);
    ExperimentResult res = runner.run(workload, design);

    const RunMetrics &m = res.metrics;
    std::uint64_t total = m.locations.total();
    auto pct = [total](std::uint64_t v) {
        return total ? 100.0 * static_cast<double>(v) /
                           static_cast<double>(total)
                     : 0.0;
    };

    std::printf("\n=== %s vs Standard DRAM ===\n",
                toString(design).c_str());
    std::printf("IPC (standard)        : %.4f\n",
                std_res.metrics.ipc[0]);
    std::printf("IPC (%-14s): %.4f\n", toString(design).c_str(),
                m.ipc[0]);
    std::printf("Performance improvement: %+.2f%%\n",
                100.0 * res.perfImprovement);
    std::printf("MPKI                  : %.2f\n", m.mpki());
    std::printf("PPKM                  : %.2f\n", m.ppkm());
    std::printf("Footprint             : %.1f MiB\n",
                m.footprintMiB(8192));
    std::printf("Access locations      : row-buffer %.1f%%, fast %.1f%%, "
                "slow %.1f%%\n",
                pct(m.locations.rowBuffer), pct(m.locations.fastLevel),
                pct(m.locations.slowLevel));
    std::printf("Promotions            : %llu\n",
                static_cast<unsigned long long>(m.promotions));
    std::printf("Energy per access     : %.2f nJ (standard: %.2f nJ)\n",
                res.energyPerAccessNj, std_res.energyPerAccessNj);
    return 0;
}
