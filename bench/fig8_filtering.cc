/**
 * @file
 * Reproduces Figure 8: the row-promotion filtering policy with
 * thresholds 8/4/2/1 — (a) performance improvement, (b) access
 * locations (fast-level utilisation), (c) promotions per access.
 *
 * Expected shape (Section 7.3): filtering rarely helps — the promotion
 * rate is already small — while it visibly reduces fast-level
 * utilisation, so performance degrades as the threshold grows; the
 * paper therefore ships DAS-DRAM with threshold 1.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

int
main()
{
    SimConfig base = benchutil::defaultConfig();
    const unsigned kThresholds[] = {8, 4, 2, 1};

    benchutil::Table perf("Figure 8a: performance improvement (%) by "
                          "promotion threshold");
    benchutil::Table locs("Figure 8b: slow-level access share (%) by "
                          "threshold");
    benchutil::Table promos("Figure 8c: promotions per memory access "
                            "(%) by threshold");

    ExperimentRunner runner(base);
    for (const std::string &bench : specBenchmarks()) {
        WorkloadSpec w = WorkloadSpec::single(bench);
        std::vector<std::string> perf_row{bench}, loc_row{bench},
            promo_row{bench};
        for (unsigned th : kThresholds) {
            runner.baseConfig().das.promotion.threshold = th;
            ExperimentResult r = runner.run(w, DesignKind::Das);
            perf_row.push_back(benchutil::pct(r.perfImprovement));
            const RunMetrics &m = r.metrics;
            double slow_share =
                m.locations.total()
                    ? 100.0 *
                          static_cast<double>(m.locations.slowLevel) /
                          static_cast<double>(m.locations.total())
                    : 0.0;
            loc_row.push_back(benchutil::num(slow_share, 2));
            promo_row.push_back(
                benchutil::num(100.0 * m.promotionsPerAccess(), 3));
        }
        perf.row(perf_row);
        locs.row(loc_row);
        promos.row(promo_row);
    }
    runner.baseConfig().das.promotion.threshold = 1;

    std::vector<std::string> header{"benchmark", "th=8", "th=4", "th=2",
                                    "th=1"};
    perf.print(header);
    locs.print(header);
    promos.print(header);

    std::printf("\nPaper reference: performance generally degrades as "
                "the threshold rises (Fig. 8a); promotion/access stays "
                "below a few %% at every threshold (Fig. 8c). DAS-DRAM "
                "ships with threshold 1.\n");
    return 0;
}
