/**
 * @file
 * Reproduces Figure 8: the row-promotion filtering policy with
 * thresholds 8/4/2/1 — (a) performance improvement, (b) access
 * locations (fast-level utilisation), (c) promotions per access.
 *
 * Expected shape (Section 7.3): filtering rarely helps — the promotion
 * rate is already small — while it visibly reduces fast-level
 * utilisation, so performance degrades as the threshold grows; the
 * paper therefore ships DAS-DRAM with threshold 1.
 *
 * Parallelise with --jobs N (or DAS_JOBS); export with --json FILE.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    benchutil::BenchOptions opts = benchutil::parseBenchArgs(argc, argv);
    SimConfig base = benchutil::defaultConfig(opts);
    const unsigned kThresholds[] = {8, 4, 2, 1};
    const std::size_t kNumTh = 4;

    const std::vector<std::string> &benches = specBenchmarks();

    // The threshold only affects the DAS promotion policy, never the
    // standard baseline, so all four points of a benchmark share its
    // memoised baseline (the documented override contract).
    SweepRunner sweep(base, opts.jobs);
    benchutil::configureSweep(sweep, opts);
    for (const std::string &bench : benches) {
        for (unsigned th : kThresholds) {
            sweep.add(WorkloadSpec::single(bench), DesignKind::Das,
                      [th](SimConfig &c) {
                          c.das.promotion.threshold = th;
                      },
                      "th=" + std::to_string(th));
        }
    }
    std::vector<ExperimentResult> results = sweep.run();
    benchutil::exportResults(opts, results);

    benchutil::Table perf("Figure 8a: performance improvement (%) by "
                          "promotion threshold");
    benchutil::Table locs("Figure 8b: slow-level access share (%) by "
                          "threshold");
    benchutil::Table promos("Figure 8c: promotions per memory access "
                            "(%) by threshold");

    for (std::size_t b = 0; b < benches.size(); ++b) {
        std::vector<std::string> perf_row{benches[b]},
            loc_row{benches[b]}, promo_row{benches[b]};
        for (std::size_t t = 0; t < kNumTh; ++t) {
            const ExperimentResult &r = results[b * kNumTh + t];
            perf_row.push_back(benchutil::pct(r.perfImprovement));
            const RunMetrics &m = r.metrics;
            double slow_share =
                m.locations.total()
                    ? 100.0 *
                          static_cast<double>(m.locations.slowLevel) /
                          static_cast<double>(m.locations.total())
                    : 0.0;
            loc_row.push_back(benchutil::num(slow_share, 2));
            promo_row.push_back(
                benchutil::num(100.0 * m.promotionsPerAccess(), 3));
        }
        perf.row(perf_row);
        locs.row(loc_row);
        promos.row(promo_row);
    }

    std::vector<std::string> header{"benchmark", "th=8", "th=4", "th=2",
                                    "th=1"};
    perf.print(header);
    locs.print(header);
    promos.print(header);

    std::printf("\nPaper reference: performance generally degrades as "
                "the threshold rises (Fig. 8a); promotion/access stays "
                "below a few %% at every threshold (Fig. 8c). DAS-DRAM "
                "ships with threshold 1.\n");
    return 0;
}
