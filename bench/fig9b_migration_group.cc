/**
 * @file
 * Reproduces Figure 9b: sensitivity to the migration-group size
 * (8/16/32/64 rows). Smaller groups need fewer mapping bits but risk
 * contention; the paper finds the effect subtle (Section 7.5).
 *
 * Parallelise with --jobs N (or DAS_JOBS); export with --json FILE.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    benchutil::BenchOptions opts = benchutil::parseBenchArgs(argc, argv);
    SimConfig base = benchutil::defaultConfig(opts);
    const unsigned kGroups[] = {8, 16, 32, 64};

    const std::vector<std::string> &benches = specBenchmarks();

    SweepRunner sweep(base, opts.jobs);
    benchutil::configureSweep(sweep, opts);
    for (const std::string &bench : benches) {
        for (unsigned g : kGroups) {
            sweep.add(WorkloadSpec::single(bench), DesignKind::Das,
                      [g](SimConfig &c) { c.layout.groupSize = g; },
                      std::to_string(g) + "-row");
        }
    }
    std::vector<ExperimentResult> results = sweep.run();
    benchutil::exportResults(opts, results);

    benchutil::Table perf(
        "Figure 9b: performance improvement (%) by migration group "
        "size");

    std::vector<std::vector<double>> imp(4);
    for (std::size_t b = 0; b < benches.size(); ++b) {
        std::vector<std::string> row{benches[b]};
        for (std::size_t i = 0; i < 4; ++i) {
            const ExperimentResult &r = results[b * 4 + i];
            imp[i].push_back(r.perfImprovement);
            row.push_back(benchutil::pct(r.perfImprovement));
        }
        perf.row(row);
    }
    std::vector<std::string> gmean_row{"gmean"};
    for (std::size_t i = 0; i < 4; ++i)
        gmean_row.push_back(
            benchutil::pct(ExperimentRunner::gmeanImprovement(imp[i])));
    perf.row(gmean_row);

    perf.print({"benchmark", "8-row", "16-row", "32-row", "64-row"});
    std::printf("\nPaper reference: the effect of the migration group "
                "size is subtle (Section 7.5); DAS-DRAM uses 32 rows so "
                "each table entry fits in one byte.\n");
    return 0;
}
