/**
 * @file
 * Reproduces Figure 9b: sensitivity to the migration-group size
 * (8/16/32/64 rows). Smaller groups need fewer mapping bits but risk
 * contention; the paper finds the effect subtle (Section 7.5).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

int
main()
{
    SimConfig base = benchutil::defaultConfig();
    const unsigned kGroups[] = {8, 16, 32, 64};

    benchutil::Table perf(
        "Figure 9b: performance improvement (%) by migration group "
        "size");

    ExperimentRunner runner(base);
    std::vector<std::vector<double>> imp(4);
    for (const std::string &bench : specBenchmarks()) {
        WorkloadSpec w = WorkloadSpec::single(bench);
        std::vector<std::string> row{bench};
        for (std::size_t i = 0; i < 4; ++i) {
            runner.baseConfig().layout.groupSize = kGroups[i];
            ExperimentResult r = runner.run(w, DesignKind::Das);
            imp[i].push_back(r.perfImprovement);
            row.push_back(benchutil::pct(r.perfImprovement));
        }
        perf.row(row);
    }
    std::vector<std::string> gmean_row{"gmean"};
    for (std::size_t i = 0; i < 4; ++i)
        gmean_row.push_back(
            benchutil::pct(ExperimentRunner::gmeanImprovement(imp[i])));
    perf.row(gmean_row);

    perf.print({"benchmark", "8-row", "16-row", "32-row", "64-row"});
    std::printf("\nPaper reference: the effect of the migration group "
                "size is subtle (Section 7.5); DAS-DRAM uses 32 rows so "
                "each table entry fits in one byte.\n");
    return 0;
}
