/**
 * @file
 * Reproduces the paper's analytic numbers: the migration/swap latency
 * derivation (Section 4.2 / Table 1) and the silicon-area overheads
 * (Sections 3.1, 4.3, 7.6). Purely analytic — no simulations — but
 * accepts the common figure-binary flags so scripted sweeps can pass
 * --jobs uniformly.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "core/area_model.hh"
#include "core/migration.hh"
#include "dram/timing.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    (void)benchutil::parseBenchArgs(argc, argv);
    DramTiming t = ddr3_1600Timing();
    MigrationProcedure proc(t);

    std::printf("== Migration procedure (Figure 3d / Section 4.2) ==\n");
    for (const MigrationStep &s : proc.steps()) {
        std::printf("  %-55s %3llu cycles (%6.2f ns)\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<double>(s.cycles) * 1.25);
    }
    std::printf("  one row migration : %llu cycles = %.2f ns (~1.5 tRC; "
                "tRC = %.2f ns)\n",
                static_cast<unsigned long long>(proc.migrationCycles()),
                static_cast<double>(proc.migrationCycles()) * 1.25,
                static_cast<double>(t.slow.tRC) * 1.25);
    std::printf("  promotion swap    : %llu cycles = %.2f ns "
                "(paper/Table 1: 146.25 ns)\n",
                static_cast<unsigned long long>(proc.swapCycles()),
                proc.swapNanoseconds());
    std::printf("  engine configured : %llu cycles = %.2f ns\n",
                static_cast<unsigned long long>(t.swapCycles),
                static_cast<double>(t.swapCycles) * 1.25);

    std::printf("\n== Timing parameters (Table 1) ==\n");
    std::printf("  slow: tRCD %.2f ns, tRAS %.2f ns, tRP %.2f ns, "
                "tRC %.2f ns\n",
                t.slow.tRCD * 1.25, t.slow.tRAS * 1.25, t.slow.tRP * 1.25,
                t.slow.tRC * 1.25);
    std::printf("  fast: tRCD %.2f ns, tRAS %.2f ns, tRP %.2f ns, "
                "tRC %.2f ns\n",
                t.fast.tRCD * 1.25, t.fast.tRAS * 1.25, t.fast.tRP * 1.25,
                t.fast.tRC * 1.25);

    std::printf("\n== Silicon area overheads ==\n");
    std::printf("  DAS ratio 1/8  : %5.2f %%  (paper: 6.6 %%)\n",
                100.0 * asymmetricAreaOverhead(1.0 / 8.0));
    std::printf("  DAS ratio 1/4  : %5.2f %%  (paper: 11.3 %%)\n",
                100.0 * asymmetricAreaOverhead(1.0 / 4.0));
    std::printf("  DAS ratio 1/16 : %5.2f %%\n",
                100.0 * asymmetricAreaOverhead(1.0 / 16.0));
    std::printf("  DAS ratio 1/32 : %5.2f %%\n",
                100.0 * asymmetricAreaOverhead(1.0 / 32.0));
    std::printf("  FS-DRAM (all fast subarrays): %5.2f %% "
                "(RLDRAM-class)\n",
                100.0 * fsDramAreaOverhead());
    std::printf("  TL-DRAM, 128 near rows      : %5.2f %% "
                "(paper: ~24 %%)\n",
                100.0 * tlDramAreaOverhead(128));
    return 0;
}
