/**
 * @file
 * Reproduces Figure 9a: sensitivity to the translation-cache capacity
 * (32/64/128/256 KB). Expected: 128 KB achieves good performance
 * (it covers the fast level's translation entries); smaller caches
 * lose some, larger ones add little.
 *
 * Parallelise with --jobs N (or DAS_JOBS); export with --json FILE.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    benchutil::BenchOptions opts = benchutil::parseBenchArgs(argc, argv);
    SimConfig base = benchutil::defaultConfig(opts);
    const std::uint64_t kCapacities[] = {32 * KiB, 64 * KiB, 128 * KiB,
                                         256 * KiB};
    const char *kLabels[] = {"32KB", "64KB", "128KB", "256KB"};

    const std::vector<std::string> &benches = specBenchmarks();

    SweepRunner sweep(base, opts.jobs);
    benchutil::configureSweep(sweep, opts);
    for (const std::string &bench : benches) {
        for (std::size_t i = 0; i < 4; ++i) {
            std::uint64_t cap = kCapacities[i];
            sweep.add(WorkloadSpec::single(bench), DesignKind::Das,
                      [cap](SimConfig &c) {
                          c.das.translationCacheBytes = cap;
                      },
                      kLabels[i]);
        }
    }
    std::vector<ExperimentResult> results = sweep.run();
    benchutil::exportResults(opts, results);

    benchutil::Table perf(
        "Figure 9a: performance improvement (%) by translation-cache "
        "capacity");

    std::vector<std::vector<double>> imp(4);
    for (std::size_t b = 0; b < benches.size(); ++b) {
        std::vector<std::string> row{benches[b]};
        for (std::size_t i = 0; i < 4; ++i) {
            const ExperimentResult &r = results[b * 4 + i];
            imp[i].push_back(r.perfImprovement);
            row.push_back(benchutil::pct(r.perfImprovement));
        }
        perf.row(row);
    }
    std::vector<std::string> gmean_row{"gmean"};
    for (std::size_t i = 0; i < 4; ++i)
        gmean_row.push_back(
            benchutil::pct(ExperimentRunner::gmeanImprovement(imp[i])));
    perf.row(gmean_row);

    perf.print({"benchmark", "32KB", "64KB", "128KB", "256KB"});
    std::printf("\nPaper reference: a 128 KB on-chip translation cache "
                "achieves good performance; its lookup overlaps the LLC "
                "so hits are free (Section 7.4).\n");
    return 0;
}
