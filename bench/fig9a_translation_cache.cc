/**
 * @file
 * Reproduces Figure 9a: sensitivity to the translation-cache capacity
 * (32/64/128/256 KB). Expected: 128 KB achieves good performance
 * (it covers the fast level's translation entries); smaller caches
 * lose some, larger ones add little.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

int
main()
{
    SimConfig base = benchutil::defaultConfig();
    const std::uint64_t kCapacities[] = {32 * KiB, 64 * KiB, 128 * KiB,
                                         256 * KiB};

    benchutil::Table perf(
        "Figure 9a: performance improvement (%) by translation-cache "
        "capacity");

    ExperimentRunner runner(base);
    std::vector<std::vector<double>> imp(4);
    for (const std::string &bench : specBenchmarks()) {
        WorkloadSpec w = WorkloadSpec::single(bench);
        std::vector<std::string> row{bench};
        for (std::size_t i = 0; i < 4; ++i) {
            runner.baseConfig().das.translationCacheBytes =
                kCapacities[i];
            ExperimentResult r = runner.run(w, DesignKind::Das);
            imp[i].push_back(r.perfImprovement);
            row.push_back(benchutil::pct(r.perfImprovement));
        }
        perf.row(row);
    }
    std::vector<std::string> gmean_row{"gmean"};
    for (std::size_t i = 0; i < 4; ++i)
        gmean_row.push_back(
            benchutil::pct(ExperimentRunner::gmeanImprovement(imp[i])));
    perf.row(gmean_row);

    perf.print({"benchmark", "32KB", "64KB", "128KB", "256KB"});
    std::printf("\nPaper reference: a 128 KB on-chip translation cache "
                "achieves good performance; its lookup overlaps the LLC "
                "so hits are free (Section 7.4).\n");
    return 0;
}
