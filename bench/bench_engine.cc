/**
 * @file
 * Engine throughput benchmark: runs the same workloads under the tick
 * and the event engine and reports simulated-cycles-per-second for
 * each, plus the event/tick speedup. The two runs must also agree on
 * every end-of-run metric — a last-line defence on top of the
 * `ctest -L differential` suite.
 *
 * The event engine earns its keep on idle-heavy workloads — long
 * compute gaps and full-ROB stalls where the only activity is a
 * handful of timing-legal command edges the engine can hop between
 * (and bubble stretches its burst path collapses). The set therefore
 * spans both ends: a synthetic compute-gap workload ('idle') as the
 * idle-heavy pole, mcf/milc as memory-bound SPEC profiles where
 * per-cycle activity limits skipping, and cactusADM as a busy middle
 * ground.
 *
 * Writes BENCH_engine.json (override with --out). Scale the budget
 * with --instructions N or DAS_SIM_SCALE.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

namespace
{

/**
 * Idle-heavy pole: long compute gaps broken by sparse uniform-random
 * misses over a large footprint. Every miss goes all the way to DRAM
 * (no streams, no hot set, no reuse) and stalls the core serially,
 * but the dominant pattern is thousands-of-instruction bubble
 * stretches — exactly what the event engine batches: the burst path
 * collapses the gaps and the horizon hop clears the stalls, while the
 * tick engine pays for every cycle.
 */
BenchmarkProfile
idleProfile()
{
    BenchmarkProfile p;
    p.name = "idle";
    p.footprintMiB = 512;
    p.memRatio = 0.0002;
    p.writeFraction = 0.0;
    p.reuseProb = 0.0;
    p.pStream = 0.0;
    p.pWork = 0.0;
    p.pHot = 0.0;
    p.pUniform = 1.0;
    p.streams = 1;
    p.runLength = 1;
    return p;
}

const BenchmarkProfile &
profileFor(const std::string &name)
{
    static const BenchmarkProfile idle = idleProfile();
    if (name == "idle")
        return idle;
    return specProfile(name);
}

struct EngineSample
{
    double seconds = 0.0;
    double cyclesPerSec = 0.0; ///< simulated CPU cycles / wall second
    RunMetrics metrics;
};

EngineSample
timeOne(const std::string &bench, SimConfig cfg, SimEngine engine)
{
    cfg.engine = engine;
    cfg.obs.workloadName = bench;
    SyntheticTrace trace(profileFor(bench), cfg.seed * 1000003 + 1,
                         cfg.geom.rowBytes, cfg.geom.lineBytes);

    System sys(cfg, {&trace});
    auto t0 = std::chrono::steady_clock::now();
    RunMetrics m = sys.run();
    auto t1 = std::chrono::steady_clock::now();

    EngineSample s;
    s.seconds = std::chrono::duration<double>(t1 - t0).count();
    // Throughput over the whole run: both engines simulate the exact
    // same cycle count, so the speedup below reduces to the wall-time
    // ratio; cycles/sec makes the absolute rates comparable across
    // machines.
    s.cyclesPerSec = s.seconds > 0.0
                         ? static_cast<double>(m.cpuCycles) / s.seconds
                         : 0.0;
    s.metrics = std::move(m);
    return s;
}

/** Cross-engine identity of the end-of-run metrics (the differential
 *  suite checks command streams and stats exports; here we only guard
 *  the fields this bench prints). */
bool
agree(const RunMetrics &a, const RunMetrics &b)
{
    return a.cpuCycles == b.cpuCycles && a.instructions == b.instructions &&
           a.llcMisses == b.llcMisses && a.memAccesses == b.memAccesses &&
           a.promotions == b.promotions && a.ipc == b.ipc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_engine.json";
    InstCount instructions = 0; // 0 = default budget (scaled)
    std::vector<std::string> benches{"idle", "mcf", "milc",
                                     "cactusADM"};

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto need_value = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for {}", flag);
            return argv[++i];
        };
        if (arg == "--out") {
            out_path = need_value("--out");
        } else if (arg == "--instructions") {
            instructions = std::strtoull(
                need_value("--instructions").c_str(), nullptr, 10);
            if (instructions == 0)
                fatal("--instructions needs a positive integer");
        } else if (arg == "--workload") {
            benches = {need_value("--workload")};
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: %s [--out FILE] [--instructions N] "
                "[--workload NAME]\n"
                "  --out FILE        JSON report path (default "
                "BENCH_engine.json)\n"
                "  --instructions N  per-core budget (default 4M, "
                "scaled by DAS_SIM_SCALE)\n"
                "  --workload NAME   bench a single workload (a SPEC "
                "profile or 'idle')\n",
                argv[0]);
            return 0;
        } else {
            fatal("unknown argument '{}' (try --help)", arg);
        }
    }

    SimConfig cfg;
    cfg.design = DesignKind::Das;
    cfg.instructionsPerCore = 4'000'000;
    applySimScale(cfg);
    if (instructions)
        cfg.instructionsPerCore = instructions;
    // Time the engines themselves, not the observability sample path.
    cfg.obs.histograms = false;

    benchutil::Table table("Engine throughput (simulated CPU "
                           "cycles per wall-clock second)");
    std::ofstream os(out_path);
    if (!os)
        fatal("cannot open '{}' for writing", out_path);

    bool all_agree = true;
    for (const std::string &bench : benches) {
        // Warm run: charge one-time setup (profile tables, allocator
        // warm-up) to neither engine.
        {
            SimConfig warm = cfg;
            warm.instructionsPerCore =
                std::min<InstCount>(cfg.instructionsPerCore, 50'000);
            (void)timeOne(bench, warm, SimEngine::Tick);
        }
        EngineSample tick = timeOne(bench, cfg, SimEngine::Tick);
        EngineSample event = timeOne(bench, cfg, SimEngine::Event);

        if (!agree(tick.metrics, event.metrics)) {
            warn("engine metrics diverge on '{}' — run "
                 "`ctest -L differential` and dasdram_fuzz "
                 "--differential",
                 bench);
            all_agree = false;
        }

        double speedup = tick.seconds > 0.0 && event.seconds > 0.0
                             ? tick.seconds / event.seconds
                             : 0.0;
        double ipc = tick.metrics.ipc.empty() ? 0.0 : tick.metrics.ipc[0];

        table.row({bench, benchutil::num(tick.cyclesPerSec / 1e6, 2),
                   benchutil::num(event.cyclesPerSec / 1e6, 2),
                   benchutil::num(speedup, 2),
                   benchutil::num(tick.metrics.mpki(), 1),
                   benchutil::num(ipc, 2)});

        os << "{\"bench\": \"engine\", \"workload\": \"" << bench
           << "\", \"instructions\": " << cfg.instructionsPerCore
           << ", \"cpu_cycles\": " << tick.metrics.cpuCycles
           << ", \"tick\": {\"seconds\": " << tick.seconds
           << ", \"cycles_per_sec\": " << tick.cyclesPerSec
           << "}, \"event\": {\"seconds\": " << event.seconds
           << ", \"cycles_per_sec\": " << event.cyclesPerSec
           << "}, \"speedup\": " << speedup
           << ", \"mpki\": " << tick.metrics.mpki()
           << ", \"metrics_identical\": "
           << (agree(tick.metrics, event.metrics) ? "true" : "false")
           << "}\n";
    }

    table.print({"workload", "tick Mcyc/s", "event Mcyc/s", "speedup",
                 "MPKI", "IPC"});
    std::printf("\nwrote %s\n", out_path.c_str());
    return all_agree ? 0 : 1;
}
