/**
 * @file
 * Ablation (Section 5's design discussion): exclusive-cache management
 * (the paper's choice) vs. the inclusive alternative. Inclusive
 * promotions with clean victims need one migration (1.5 tRC) instead
 * of a swap (3 tRC), but write-heavy workloads pay victim write-backs,
 * and the real design also loses 1/8 of capacity to duplication (not
 * visible in a timing model — noted in the caption).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

int
main()
{
    SimConfig base = benchutil::defaultConfig();

    benchutil::Table perf("Ablation: exclusive vs inclusive fast-level "
                          "management (performance improvement %)");

    ExperimentRunner runner(base);
    std::vector<double> excl_imp, incl_imp;
    for (const std::string &bench : specBenchmarks()) {
        WorkloadSpec w = WorkloadSpec::single(bench);

        runner.baseConfig().das.exclusiveCache = true;
        ExperimentResult excl = runner.run(w, DesignKind::Das);
        runner.baseConfig().das.exclusiveCache = false;
        ExperimentResult incl = runner.run(w, DesignKind::Das);

        excl_imp.push_back(excl.perfImprovement);
        incl_imp.push_back(incl.perfImprovement);
        perf.row({bench, benchutil::pct(excl.perfImprovement),
                  benchutil::pct(incl.perfImprovement),
                  benchutil::num(excl.metrics.ppkm(), 1),
                  benchutil::num(incl.metrics.ppkm(), 1)});
    }
    runner.baseConfig().das.exclusiveCache = true;

    perf.row({"gmean",
              benchutil::pct(
                  ExperimentRunner::gmeanImprovement(excl_imp)),
              benchutil::pct(
                  ExperimentRunner::gmeanImprovement(incl_imp)),
              "", ""});
    perf.print({"benchmark", "exclusive", "inclusive", "PPKM(ex)",
                "PPKM(in)"});

    std::printf("\nThe paper adopts the exclusive scheme: comparable "
                "performance without duplicating 1/8 of capacity "
                "(the capacity loss itself is outside a timing "
                "model's scope).\n");
    return 0;
}
