/**
 * @file
 * Ablation (Section 5's design discussion): exclusive-cache management
 * (the paper's choice) vs. the inclusive alternative. Inclusive
 * promotions with clean victims need one migration (1.5 tRC) instead
 * of a swap (3 tRC), but write-heavy workloads pay victim write-backs,
 * and the real design also loses 1/8 of capacity to duplication (not
 * visible in a timing model — noted in the caption).
 *
 * Parallelise with --jobs N (or DAS_JOBS); export with --json FILE.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    benchutil::BenchOptions opts = benchutil::parseBenchArgs(argc, argv);
    SimConfig base = benchutil::defaultConfig(opts);

    const std::vector<std::string> &benches = specBenchmarks();

    SweepRunner sweep(base, opts.jobs);
    benchutil::configureSweep(sweep, opts);
    for (const std::string &bench : benches) {
        sweep.add(WorkloadSpec::single(bench), DesignKind::Das,
                  [](SimConfig &c) { c.das.exclusiveCache = true; },
                  "exclusive");
        sweep.add(WorkloadSpec::single(bench), DesignKind::Das,
                  [](SimConfig &c) { c.das.exclusiveCache = false; },
                  "inclusive");
    }
    std::vector<ExperimentResult> results = sweep.run();
    benchutil::exportResults(opts, results);

    benchutil::Table perf("Ablation: exclusive vs inclusive fast-level "
                          "management (performance improvement %)");

    std::vector<double> excl_imp, incl_imp;
    for (std::size_t b = 0; b < benches.size(); ++b) {
        const ExperimentResult &excl = results[b * 2];
        const ExperimentResult &incl = results[b * 2 + 1];
        excl_imp.push_back(excl.perfImprovement);
        incl_imp.push_back(incl.perfImprovement);
        perf.row({benches[b], benchutil::pct(excl.perfImprovement),
                  benchutil::pct(incl.perfImprovement),
                  benchutil::num(excl.metrics.ppkm(), 1),
                  benchutil::num(incl.metrics.ppkm(), 1)});
    }

    perf.row({"gmean",
              benchutil::pct(
                  ExperimentRunner::gmeanImprovement(excl_imp)),
              benchutil::pct(
                  ExperimentRunner::gmeanImprovement(incl_imp)),
              "", ""});
    perf.print({"benchmark", "exclusive", "inclusive", "PPKM(ex)",
                "PPKM(in)"});

    std::printf("\nThe paper adopts the exclusive scheme: comparable "
                "performance without duplicating 1/8 of capacity "
                "(the capacity loss itself is outside a timing "
                "model's scope).\n");
    return 0;
}
