/**
 * @file
 * Reproduces Figure 7(d)(e)(f): multi-programming evaluation of the
 * five designs over the eight 4-way mixes M1-M8 (Table 2), against
 * standard DRAM. Performance improvement is the weighted-speedup
 * improvement (mean per-core IPC ratio vs. the standard baseline).
 *
 * Per-core instruction budgets are half the single-programming runs:
 * four cores generate roughly 4x the memory traffic per instruction.
 * Parallelise with --jobs N (or DAS_JOBS); export with --json FILE.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    benchutil::BenchOptions opts = benchutil::parseBenchArgs(argc, argv);
    SimConfig cfg = benchutil::defaultConfig(opts);
    cfg.instructionsPerCore /= 2;

    const std::vector<DesignKind> &designs = evaluatedDesigns();
    const std::size_t num_mixes = specMixes().size();

    SweepRunner sweep(cfg, opts.jobs);
    benchutil::configureSweep(sweep, opts);
    for (std::size_t mi = 0; mi < num_mixes; ++mi)
        for (DesignKind d : designs)
            sweep.add(WorkloadSpec::mix(mi), d);
    std::vector<ExperimentResult> results = sweep.run();
    benchutil::exportResults(opts, results);

    benchutil::Table improvements(
        "Figure 7d: multi-programming performance improvement (%)");
    benchutil::Table behaviour(
        "Figure 7e: MPKI / PPKM / footprint (MiB) / energy per access "
        "(nJ, DAS)");
    benchutil::Table locations(
        "Figure 7f: DAS-DRAM access locations (% of DRAM accesses)");

    std::vector<std::vector<double>> imp(designs.size());

    for (std::size_t mi = 0; mi < num_mixes; ++mi) {
        std::string name = mixName(mi);
        std::vector<std::string> row{name};
        const ExperimentResult *das_res = nullptr;
        for (std::size_t d = 0; d < designs.size(); ++d) {
            const ExperimentResult &r =
                results[mi * designs.size() + d];
            imp[d].push_back(r.perfImprovement);
            row.push_back(benchutil::pct(r.perfImprovement));
            if (designs[d] == DesignKind::Das)
                das_res = &r;
        }
        improvements.row(row);

        const RunMetrics &m = das_res->metrics;
        behaviour.row({name, benchutil::num(m.mpki(), 2),
                       benchutil::num(m.ppkm(), 2),
                       benchutil::num(m.footprintMiB(cfg.geom.rowBytes),
                                      1),
                       benchutil::num(das_res->energyPerAccessNj, 2)});

        std::uint64_t total = m.locations.total();
        auto share = [total](std::uint64_t v) {
            return total ? 100.0 * static_cast<double>(v) /
                               static_cast<double>(total)
                         : 0.0;
        };
        locations.row({name,
                       benchutil::num(share(m.locations.rowBuffer), 1),
                       benchutil::num(share(m.locations.fastLevel), 1),
                       benchutil::num(share(m.locations.slowLevel), 1)});
    }

    std::vector<std::string> gmean_row{"gmean"};
    for (std::size_t d = 0; d < designs.size(); ++d)
        gmean_row.push_back(
            benchutil::pct(ExperimentRunner::gmeanImprovement(imp[d])));
    improvements.row(gmean_row);

    std::vector<std::string> header{"mix"};
    for (DesignKind d : designs)
        header.push_back(toString(d));
    improvements.print(header);
    behaviour.print({"mix", "MPKI", "PPKM", "footprint", "nJ/acc"});
    locations.print({"mix", "row-buffer", "fast", "slow"});

    std::printf("\nPaper reference (gmean): SAS 3.72%%, CHARM 4.87%%, "
                "DAS 11.77%%, FS 13.79%%. Multi-programming gains exceed "
                "single-programming because mixes have higher MPKI.\n");
    return 0;
}
