/**
 * @file
 * Reproduces Figure 7(a)(b)(c): single-programming evaluation of
 * SAS-DRAM, CHARM, DAS-DRAM, DAS-DRAM (FM) and FS-DRAM against
 * standard DRAM, over the ten Table 2 workloads.
 *
 * Prints: per-benchmark performance improvement for each design (7a);
 * MPKI, PPKM and footprint (7b); and the access-location distribution
 * of DAS-DRAM (7c). Also prints DRAM energy per access (Section 7.7).
 *
 * Scale with DAS_SIM_SCALE (e.g. 0.25 for a quick pass); parallelise
 * with --jobs N (or DAS_JOBS); export JSON lines with --json FILE.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

int
main(int argc, char **argv)
{
    benchutil::BenchOptions opts = benchutil::parseBenchArgs(argc, argv);
    SimConfig cfg = benchutil::defaultConfig(opts);

    const std::vector<std::string> &benches = specBenchmarks();
    const std::vector<DesignKind> &designs = evaluatedDesigns();

    SweepRunner sweep(cfg, opts.jobs);
    benchutil::configureSweep(sweep, opts);
    for (const std::string &bench : benches)
        for (DesignKind d : designs)
            sweep.add(WorkloadSpec::single(bench), d);
    std::vector<ExperimentResult> results = sweep.run();
    benchutil::exportResults(opts, results);

    benchutil::Table improvements("Figure 7a: performance improvement "
                                  "over standard DRAM (%)");
    benchutil::Table behaviour(
        "Figure 7b: MPKI / PPKM / footprint (MiB) / energy per access "
        "(nJ, DAS)");
    benchutil::Table locations("Figure 7c: DAS-DRAM access locations "
                               "(% of DRAM accesses)");

    std::vector<std::vector<double>> imp(designs.size());

    for (std::size_t b = 0; b < benches.size(); ++b) {
        std::vector<std::string> imp_row{benches[b]};
        const ExperimentResult *das_res = nullptr;
        for (std::size_t d = 0; d < designs.size(); ++d) {
            const ExperimentResult &r =
                results[b * designs.size() + d];
            imp[d].push_back(r.perfImprovement);
            imp_row.push_back(benchutil::pct(r.perfImprovement));
            if (designs[d] == DesignKind::Das)
                das_res = &r;
        }
        improvements.row(imp_row);

        const RunMetrics &m = das_res->metrics;
        behaviour.row({benches[b], benchutil::num(m.mpki(), 2),
                       benchutil::num(m.ppkm(), 2),
                       benchutil::num(m.footprintMiB(
                                          cfg.geom.rowBytes),
                                      1),
                       benchutil::num(das_res->energyPerAccessNj, 2)});

        std::uint64_t total = m.locations.total();
        auto share = [total](std::uint64_t v) {
            return total ? 100.0 * static_cast<double>(v) /
                               static_cast<double>(total)
                         : 0.0;
        };
        locations.row({benches[b],
                       benchutil::num(share(m.locations.rowBuffer), 1),
                       benchutil::num(share(m.locations.fastLevel), 1),
                       benchutil::num(share(m.locations.slowLevel), 1)});
    }

    std::vector<std::string> gmean_row{"gmean"};
    for (std::size_t d = 0; d < designs.size(); ++d) {
        gmean_row.push_back(benchutil::pct(
            ExperimentRunner::gmeanImprovement(imp[d])));
    }
    improvements.row(gmean_row);

    std::vector<std::string> header{"benchmark"};
    for (DesignKind d : designs)
        header.push_back(toString(d));
    improvements.print(header);
    behaviour.print({"benchmark", "MPKI", "PPKM", "footprint", "nJ/acc"});
    locations.print({"benchmark", "row-buffer", "fast", "slow"});

    std::printf("\nPaper reference (gmean): SAS 2.66%%, CHARM 4.23%%, "
                "DAS 7.25%%, FS 8.71%%; migration overhead 0.45%%, "
                "translation overhead 0.99%%.\n");
    return 0;
}
