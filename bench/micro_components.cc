/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot components:
 * address decode, translation table/cache operations, cache lookups,
 * trace generation and raw DRAM command throughput. These guard the
 * simulator's own performance (it must sustain millions of memory
 * operations per second to make the figure sweeps practical).
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "cache/cache.hh"
#include "core/translation_cache.hh"
#include "core/translation_table.hh"
#include "dram/address_mapping.hh"
#include "dram/controller.hh"
#include "workload/synth_trace.hh"

using namespace dasdram;

static void
BM_AddressDecode(benchmark::State &state)
{
    DramGeometry g;
    AddressMapper m(g);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.decode(a));
        a += 64 * 1021;
    }
}
BENCHMARK(BM_AddressDecode);

static void
BM_TranslationTableLookup(benchmark::State &state)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    TranslationTable t(l);
    GlobalRowId r = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.physicalOf(r));
        r = (r + 12345) % g.totalRows();
    }
}
BENCHMARK(BM_TranslationTableLookup);

static void
BM_TranslationTableSwap(benchmark::State &state)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    TranslationTable t(l);
    std::uint64_t i = 0;
    for (auto _ : state) {
        std::uint64_t grp = i % l.totalGroups();
        t.swap(grp * 32 + (i % 32), grp * 32 + ((i * 7) % 32));
        ++i;
    }
}
BENCHMARK(BM_TranslationTableSwap);

static void
BM_TranslationCacheLookup(benchmark::State &state)
{
    TranslationCache tc(static_cast<std::uint64_t>(state.range(0)), 8);
    for (GlobalRowId r = 0; r < 10000; ++r)
        tc.insert(r);
    GlobalRowId r = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tc.lookup(r % 20000));
        r += 37;
    }
}
BENCHMARK(BM_TranslationCacheLookup)
    ->Arg(32 * 1024)
    ->Arg(128 * 1024)
    ->Arg(256 * 1024);

static void
BM_CacheAccess(benchmark::State &state)
{
    Cache c({4 * MiB, 8, 64}, "llc");
    for (Addr a = 0; a < 4 * MiB; a += 64)
        c.insert(a, false);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(a, false));
        a = (a + 64 * 999) % (8 * MiB);
    }
}
BENCHMARK(BM_CacheAccess);

static void
BM_SyntheticTraceGeneration(benchmark::State &state)
{
    SyntheticTrace t(specProfile("mcf"), 42);
    TraceEntry e;
    for (auto _ : state) {
        t.next(e);
        benchmark::DoNotOptimize(e.addr);
    }
}
BENCHMARK(BM_SyntheticTraceGeneration);

static void
BM_ControllerRowHitThroughput(benchmark::State &state)
{
    DramGeometry g;
    DramTiming t = ddr3_1600Timing();
    UniformRowClassifier cls(RowClass::Slow);
    ControllerConfig cfg;
    cfg.refreshEnabled = false;
    auto ctrl = std::make_unique<ChannelController>(0, g, t, cls, cfg);
    Cycle now = 0;
    std::uint64_t col = 0;
    for (auto _ : state) {
        if (ctrl->canAccept(false)) {
            auto req = std::make_unique<MemRequest>(col * 64, false, 0);
            req->loc = DramLoc{0, 0, 0, 7, col % 128};
            ctrl->enqueue(std::move(req), now);
            ++col;
        }
        ctrl->tick(now++);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(ctrl->readCount()));
}
BENCHMARK(BM_ControllerRowHitThroughput);

BENCHMARK_MAIN();
