/**
 * @file
 * Reproduces Figures 9c and 9d: sensitivity to the fast-level capacity
 * ratio (1/32, 1/16, 1/8, 1/4) under random (9c) and LRU (9d) victim
 * replacement. Expected: 1/8 captures nearly all the benefit (smaller
 * ratios hurt the large-working-set benchmarks, mcf and milc, most)
 * and the replacement policy barely matters (Section 7.6).
 *
 * Parallelise with --jobs N (or DAS_JOBS); export with --json FILE.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

namespace
{

const unsigned kDenoms[] = {32, 16, 8, 4};

void
printSweep(const std::vector<ExperimentResult> &results,
           std::size_t offset, const char *title)
{
    const std::vector<std::string> &benches = specBenchmarks();
    benchutil::Table perf(title);
    std::vector<std::vector<double>> imp(4);
    for (std::size_t b = 0; b < benches.size(); ++b) {
        std::vector<std::string> row{benches[b]};
        for (std::size_t i = 0; i < 4; ++i) {
            const ExperimentResult &r =
                results[offset + b * 4 + i];
            imp[i].push_back(r.perfImprovement);
            row.push_back(benchutil::pct(r.perfImprovement));
        }
        perf.row(row);
    }
    std::vector<std::string> gmean_row{"gmean"};
    for (std::size_t i = 0; i < 4; ++i)
        gmean_row.push_back(
            benchutil::pct(ExperimentRunner::gmeanImprovement(imp[i])));
    perf.row(gmean_row);
    perf.print({"benchmark", "1/32", "1/16", "1/8", "1/4"});
}

} // namespace

int
main(int argc, char **argv)
{
    benchutil::BenchOptions opts = benchutil::parseBenchArgs(argc, argv);
    SimConfig base = benchutil::defaultConfig(opts);

    const std::vector<std::string> &benches = specBenchmarks();
    const FastReplPolicy kRepls[] = {FastReplPolicy::Random,
                                     FastReplPolicy::Lru};
    const char *kReplName[] = {"random", "lru"};

    // One grid over (policy × benchmark × ratio): every benchmark's
    // standard baseline is simulated once and shared by all 8 of its
    // points (the ratio and policy only exist in the DAS design).
    SweepRunner sweep(base, opts.jobs);
    benchutil::configureSweep(sweep, opts);
    for (std::size_t p = 0; p < 2; ++p) {
        FastReplPolicy repl = kRepls[p];
        for (const std::string &bench : benches) {
            for (unsigned denom : kDenoms) {
                sweep.add(
                    WorkloadSpec::single(bench), DesignKind::Das,
                    [repl, denom](SimConfig &c) {
                        c.layout.fastRatioDenom = denom;
                        c.das.replacement = repl;
                    },
                    std::string("1/") + std::to_string(denom) + " " +
                        kReplName[p]);
            }
        }
    }
    std::vector<ExperimentResult> results = sweep.run();
    benchutil::exportResults(opts, results);

    const std::size_t per_policy = benches.size() * 4;
    printSweep(results, 0,
               "Figure 9c: performance improvement (%) by fast-level "
               "ratio, RANDOM replacement");
    printSweep(results, per_policy,
               "Figure 9d: performance improvement (%) by fast-level "
               "ratio, LRU replacement");

    std::printf("\nPaper reference: ratio 1/8 (6.6%% area) maximises "
                "gain; 1/16 and below hurt mcf and milc whose working "
                "sets exceed the per-group fast capacity; LRU vs random "
                "is negligible because the fast level is large "
                "(Section 7.6).\n");
    return 0;
}
