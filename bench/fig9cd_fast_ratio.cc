/**
 * @file
 * Reproduces Figures 9c and 9d: sensitivity to the fast-level capacity
 * ratio (1/32, 1/16, 1/8, 1/4) under random (9c) and LRU (9d) victim
 * replacement. Expected: 1/8 captures nearly all the benefit (smaller
 * ratios hurt the large-working-set benchmarks, mcf and milc, most)
 * and the replacement policy barely matters (Section 7.6).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"

using namespace dasdram;

namespace
{

void
runSweep(ExperimentRunner &runner, FastReplPolicy repl,
         const char *title)
{
    const unsigned kDenoms[] = {32, 16, 8, 4};
    benchutil::Table perf(title);
    std::vector<std::vector<double>> imp(4);
    for (const std::string &bench : specBenchmarks()) {
        WorkloadSpec w = WorkloadSpec::single(bench);
        std::vector<std::string> row{bench};
        for (std::size_t i = 0; i < 4; ++i) {
            runner.baseConfig().layout.fastRatioDenom = kDenoms[i];
            runner.baseConfig().das.replacement = repl;
            ExperimentResult r = runner.run(w, DesignKind::Das);
            imp[i].push_back(r.perfImprovement);
            row.push_back(benchutil::pct(r.perfImprovement));
        }
        perf.row(row);
    }
    std::vector<std::string> gmean_row{"gmean"};
    for (std::size_t i = 0; i < 4; ++i)
        gmean_row.push_back(
            benchutil::pct(ExperimentRunner::gmeanImprovement(imp[i])));
    perf.row(gmean_row);
    perf.print({"benchmark", "1/32", "1/16", "1/8", "1/4"});
}

} // namespace

int
main()
{
    SimConfig base = benchutil::defaultConfig();
    ExperimentRunner runner(base);

    runSweep(runner, FastReplPolicy::Random,
             "Figure 9c: performance improvement (%) by fast-level "
             "ratio, RANDOM replacement");
    runSweep(runner, FastReplPolicy::Lru,
             "Figure 9d: performance improvement (%) by fast-level "
             "ratio, LRU replacement");

    std::printf("\nPaper reference: ratio 1/8 (6.6%% area) maximises "
                "gain; 1/16 and below hurt mcf and milc whose working "
                "sets exceed the per-group fast capacity; LRU vs random "
                "is negligible because the fast level is large "
                "(Section 7.6).\n");
    return 0;
}
