/**
 * @file
 * Shared helpers for the benchmark harness binaries: the common Table 1
 * configuration, simple aligned-table printing and number formatting.
 */

#ifndef DASDRAM_BENCH_BENCH_UTIL_HH
#define DASDRAM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace dasdram
{
namespace benchutil
{

/** Default bench configuration: Table 1 system, scaled instruction
 *  budget (override with DAS_SIM_SCALE). */
inline SimConfig
defaultConfig()
{
    SimConfig cfg;
    cfg.instructionsPerCore = 16'000'000;
    applySimScale(cfg);
    return cfg;
}

inline std::string
num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
pct(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.2f", 100.0 * v);
    return buf;
}

/** Minimal aligned-column table printer. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print(const std::vector<std::string> &header) const
    {
        std::vector<std::size_t> width(header.size());
        for (std::size_t c = 0; c < header.size(); ++c)
            width[c] = header[c].size();
        for (const auto &r : rows_)
            for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        std::printf("\n== %s ==\n", title_.c_str());
        auto print_row = [&](const std::vector<std::string> &r) {
            for (std::size_t c = 0; c < r.size() && c < width.size();
                 ++c) {
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            r[c].c_str());
            }
            std::printf("\n");
        };
        print_row(header);
        for (const auto &r : rows_)
            print_row(r);
    }

  private:
    std::string title_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace benchutil
} // namespace dasdram

#endif // DASDRAM_BENCH_BENCH_UTIL_HH
