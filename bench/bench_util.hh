/**
 * @file
 * Shared helpers for the benchmark harness binaries: the common Table 1
 * configuration, command-line handling (--jobs / --json), simple
 * aligned-table printing and number formatting.
 */

#ifndef DASDRAM_BENCH_BENCH_UTIL_HH
#define DASDRAM_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/sweep.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth_trace.hh"

namespace dasdram
{
namespace benchutil
{

/** Default bench configuration: Table 1 system, scaled instruction
 *  budget (override with DAS_SIM_SCALE). */
inline SimConfig
defaultConfig()
{
    SimConfig cfg;
    cfg.instructionsPerCore = 16'000'000;
    applySimScale(cfg);
    return cfg;
}

struct BenchOptions;

/** defaultConfig() with the parsed command-line options applied. */
SimConfig defaultConfig(const BenchOptions &opts);

/** Options every figure binary accepts. */
struct BenchOptions
{
    unsigned jobs = 0;    ///< 0 = auto (DAS_JOBS env, else hardware)
    std::string jsonPath; ///< when non-empty, export results as JSONL
    /** Online DRAM protocol checker (a violation aborts the sweep).
     *  On by default so every figure run doubles as a protocol test;
     *  --no-check turns it off to shave a few percent of runtime. */
    bool protocolCheck = true;
    /** When non-empty, every sweep point writes its stats-JSONL dump
     *  (histograms, percentiles, epoch series) into this existing
     *  directory — one point<idx>_... file per point; compare them
     *  with dasdram_report. */
    std::string statsDir;
    /** Epoch length of the stats time-series in memory cycles
     *  (0 = no series); only meaningful with --stats-dir. */
    Cycle epochMemCycles = 0;
    /** Sample latency/occupancy histograms (--no-histograms turns the
     *  sample path off, e.g. for overhead measurements). */
    bool histograms = true;
    /** When non-empty, fork every sweep point from the shared warmed
     *  checkpoint of its config fingerprint in this directory
     *  (created on demand): the first run of a fingerprint publishes
     *  `warm_<fp>.ckpt`, later runs restore it and skip warm-up
     *  re-simulation bit-identically (see DESIGN.md §12). */
    std::string warmDir;
};

/** Parse the shared bench options (--jobs/-j, --json, --check/
 *  --no-check, --stats-dir, --epoch, --histograms/--no-histograms,
 *  --warm-dir);
 *  fatal on unknown arguments, prints generated usage on --help. */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    CliParser cli(argv[0] && argv[0][0] ? argv[0] : "bench",
                  "figure sweep (shared bench harness options)");
    cli.optionUInt("--jobs", "N",
                   "worker threads (default: DAS_JOBS env, else "
                   "hardware)", "-j")
        .option("--json", "FILE", "export all sweep points as JSON lines")
        .toggle("--check",
                "online DRAM protocol checker (default on)")
        .option("--stats-dir", "DIR",
                "per-point stats-JSONL dumps (histograms, percentiles) "
                "into DIR")
        .optionUInt("--epoch", "N",
                    "stats time-series epoch in memory cycles (0 = off)")
        .toggle("--histograms",
                "latency/occupancy histogram sampling (default on)")
        .option("--warm-dir", "DIR",
                "fork every point from the shared warmed checkpoint in "
                "DIR; re-running against the same DIR skips warm-up");
    cli.parse(argc, argv);

    BenchOptions opts;
    opts.jobs = static_cast<unsigned>(cli.uns("--jobs", 0));
    if (cli.given("--jobs") && opts.jobs == 0)
        fatal("--jobs needs a positive integer");
    opts.jsonPath = cli.str("--json");
    if (!opts.jsonPath.empty()) {
        // Fail on an unwritable path now, not after an hour-long
        // sweep has already run.
        std::ofstream probe(opts.jsonPath);
        if (!probe)
            fatal("cannot open '{}' for writing", opts.jsonPath);
    }
    opts.protocolCheck = cli.enabled("--check", opts.protocolCheck);
    opts.statsDir = cli.str("--stats-dir");
    opts.epochMemCycles = cli.uns("--epoch", 0);
    opts.histograms = cli.enabled("--histograms", opts.histograms);
    opts.warmDir = cli.str("--warm-dir");
    return opts;
}

/** Apply the sweep-level bench options (today: --warm-dir) to a
 *  freshly constructed SweepRunner. Call before sweep.run(). */
inline void
configureSweep(SweepRunner &sweep, const BenchOptions &opts)
{
    if (!opts.warmDir.empty())
        sweep.setWarmStartDir(opts.warmDir);
}

inline SimConfig
defaultConfig(const BenchOptions &opts)
{
    SimConfig cfg = defaultConfig();
    cfg.protocolCheck = opts.protocolCheck;
    cfg.obs.statsDir = opts.statsDir;
    cfg.obs.epochMemCycles = opts.epochMemCycles;
    cfg.obs.histograms = opts.histograms;
    return cfg;
}

/** Export @p results as JSON lines when --json was given. */
inline void
exportResults(const BenchOptions &opts,
              const std::vector<ExperimentResult> &results)
{
    if (opts.jsonPath.empty())
        return;
    std::ofstream os(opts.jsonPath);
    if (!os)
        fatal("cannot open '{}' for writing", opts.jsonPath);
    writeJsonLines(os, results);
    inform("wrote {} sweep results to {}", results.size(),
           opts.jsonPath);
}

inline std::string
num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
pct(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.2f", 100.0 * v);
    return buf;
}

/** Minimal aligned-column table printer. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    void row(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    void
    print(const std::vector<std::string> &header) const
    {
        std::vector<std::size_t> width(header.size());
        for (std::size_t c = 0; c < header.size(); ++c)
            width[c] = header[c].size();
        for (const auto &r : rows_)
            for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
                width[c] = std::max(width[c], r[c].size());

        std::printf("\n== %s ==\n", title_.c_str());
        auto print_row = [&](const std::vector<std::string> &r) {
            for (std::size_t c = 0; c < r.size() && c < width.size();
                 ++c) {
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            r[c].c_str());
            }
            std::printf("\n");
        };
        print_row(header);
        for (const auto &r : rows_)
            print_row(r);
    }

  private:
    std::string title_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace benchutil
} // namespace dasdram

#endif // DASDRAM_BENCH_BENCH_UTIL_HH
