/**
 * @file
 * Unit tests for EpochSeries: boundary emission, delta semantics,
 * multi-boundary fast-forward, warm-up restart and the end-of-run
 * flush of a trailing partial epoch.
 */

#include <gtest/gtest.h>

#include "common/epoch_series.hh"

using namespace dasdram;

namespace
{

/** A StatGroup with one counter and one histogram to track. */
struct Fixture
{
    StatGroup group{"sys"};
    Counter reads;
    Histogram lat;

    Fixture()
    {
        group.addCounter("reads", &reads);
        group.addHistogram("lat", &lat);
    }

    std::size_t
    nameIndex(const EpochSeries &s, const std::string &name) const
    {
        const auto &names = s.names();
        for (std::size_t i = 0; i < names.size(); ++i)
            if (names[i] == name)
                return i;
        ADD_FAILURE() << "no tracked name " << name;
        return 0;
    }
};

} // namespace

TEST(EpochSeries, TracksCountersAndHistMoments)
{
    Fixture f;
    EpochSeries s(f.group, 100);
    // Counters by name; dists/hists as .count and .sum.
    const auto &names = s.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "sys.reads");
    EXPECT_EQ(names[1], "sys.lat.count");
    EXPECT_EQ(names[2], "sys.lat.sum");
}

TEST(EpochSeries, EmitsDeltasPerEpoch)
{
    Fixture f;
    EpochSeries s(f.group, 100);

    f.reads.inc(5);
    f.lat.sample(10);
    s.maybeSample(50); // inside epoch 0: nothing emitted
    EXPECT_TRUE(s.epochs().empty());

    s.maybeSample(100); // epoch 0 [0, 100) closes
    ASSERT_EQ(s.epochs().size(), 1u);
    const auto &e0 = s.epochs()[0];
    EXPECT_EQ(e0.index, 0u);
    EXPECT_EQ(e0.start, 0u);
    EXPECT_EQ(e0.end, 100u);
    EXPECT_DOUBLE_EQ(e0.deltas[f.nameIndex(s, "sys.reads")], 5.0);
    EXPECT_DOUBLE_EQ(e0.deltas[f.nameIndex(s, "sys.lat.count")], 1.0);
    EXPECT_DOUBLE_EQ(e0.deltas[f.nameIndex(s, "sys.lat.sum")], 10.0);

    // Second epoch sees only the increments since the first boundary.
    f.reads.inc(2);
    s.maybeSample(200);
    ASSERT_EQ(s.epochs().size(), 2u);
    EXPECT_DOUBLE_EQ(
        s.epochs()[1].deltas[f.nameIndex(s, "sys.reads")], 2.0);
    EXPECT_DOUBLE_EQ(
        s.epochs()[1].deltas[f.nameIndex(s, "sys.lat.count")], 0.0);
}

TEST(EpochSeries, FastForwardAttributesDeltaToFirstElapsedEpoch)
{
    Fixture f;
    EpochSeries s(f.group, 100);
    f.reads.inc(7);
    s.maybeSample(350); // three whole epochs elapsed at once
    ASSERT_EQ(s.epochs().size(), 3u);
    EXPECT_DOUBLE_EQ(
        s.epochs()[0].deltas[f.nameIndex(s, "sys.reads")], 7.0);
    EXPECT_DOUBLE_EQ(
        s.epochs()[1].deltas[f.nameIndex(s, "sys.reads")], 0.0);
    EXPECT_DOUBLE_EQ(
        s.epochs()[2].deltas[f.nameIndex(s, "sys.reads")], 0.0);
    EXPECT_EQ(s.epochs()[2].start, 200u);
    EXPECT_EQ(s.epochs()[2].end, 300u);
}

TEST(EpochSeries, RestartRealignsAfterWarmupReset)
{
    Fixture f;
    EpochSeries s(f.group, 100);
    f.reads.inc(100);
    s.maybeSample(100);
    ASSERT_EQ(s.epochs().size(), 1u);

    // Warm-up end: the owner resets the stats and the series restarts.
    f.group.resetAll();
    s.restart(130);
    EXPECT_TRUE(s.epochs().empty()); // history discarded

    f.reads.inc(4);
    s.maybeSample(229); // boundary is base + 100 = 230: not yet
    EXPECT_TRUE(s.epochs().empty());
    s.maybeSample(230);
    ASSERT_EQ(s.epochs().size(), 1u);
    EXPECT_EQ(s.epochs()[0].index, 0u);
    EXPECT_EQ(s.epochs()[0].start, 130u);
    EXPECT_EQ(s.epochs()[0].end, 230u);
    // The post-reset baseline is the reset value, not the old one: the
    // delta is 4, not 4 - 100.
    EXPECT_DOUBLE_EQ(
        s.epochs()[0].deltas[f.nameIndex(s, "sys.reads")], 4.0);
}

TEST(EpochSeries, FlushEmitsTrailingPartialEpoch)
{
    Fixture f;
    EpochSeries s(f.group, 100);
    f.reads.inc(3);
    s.maybeSample(100);
    f.reads.inc(9);
    s.flush(140); // partial epoch [100, 140)
    ASSERT_EQ(s.epochs().size(), 2u);
    EXPECT_EQ(s.epochs()[1].start, 100u);
    EXPECT_EQ(s.epochs()[1].end, 140u);
    EXPECT_DOUBLE_EQ(
        s.epochs()[1].deltas[f.nameIndex(s, "sys.reads")], 9.0);
}

TEST(EpochSeries, FlushAtBoundaryEmitsNothingExtra)
{
    Fixture f;
    EpochSeries s(f.group, 100);
    f.reads.inc(1);
    s.maybeSample(200);
    std::size_t n = s.epochs().size();
    s.flush(200); // no time past the last boundary
    EXPECT_EQ(s.epochs().size(), n);
}

namespace
{

/**
 * Drives one EpochSeries through a fixed activity schedule: stats
 * mutate only at "active" cycles, and the stretches between them are
 * genuinely idle — the precondition for skipping them. @p unit
 * samples after every cycle, as the tick engine does; otherwise the
 * driver hops straight between active cycles, stopping only at the
 * epoch boundaries in between, exactly as System::fastForward slices
 * its skips. Both observation patterns must yield identical epochs.
 */
std::vector<EpochSeries::Epoch>
runSchedule(bool unit, Cycle restart_at, Cycle end)
{
    Fixture f;
    EpochSeries s(f.group, 100);
    // Activity every 170 cycles (plus the restart cycle itself), so
    // consecutive hops cross one or two 100-cycle epoch boundaries
    // and land deep mid-epoch, one off a boundary, and on top of one.
    auto active = [&](Cycle c) {
        return c % 170 == 0 || c == restart_at;
    };
    auto mutate = [&](Cycle c) {
        f.reads.inc(1 + c % 3);
        if (c % 340 == 0)
            f.lat.sample(static_cast<double>(c % 41));
    };
    auto step = [&](Cycle c) {
        mutate(c);
        if (c == restart_at) {
            f.group.resetAll();
            s.restart(c);
        }
    };
    if (unit) {
        for (Cycle c = 0; c < end; ++c) {
            if (active(c))
                step(c);
            s.maybeSample(c + 1);
        }
    } else {
        Cycle c = 0;
        while (true) {
            // Emit every boundary the hop crossed before acting at
            // the landing cycle, as the slicing fast-forward does.
            while (s.nextBoundaryCycle() <= c)
                s.maybeSample(s.nextBoundaryCycle());
            if (c >= end)
                break;
            step(c);
            Cycle next = c + 1;
            while (next < end && !active(next))
                ++next;
            c = next;
        }
    }
    s.flush(end);
    return s.epochs();
}

void
expectSameSeries(const std::vector<EpochSeries::Epoch> &a,
                 const std::vector<EpochSeries::Epoch> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, b[i].index) << "epoch " << i;
        EXPECT_EQ(a[i].start, b[i].start) << "epoch " << i;
        EXPECT_EQ(a[i].end, b[i].end) << "epoch " << i;
        ASSERT_EQ(a[i].deltas.size(), b[i].deltas.size());
        for (std::size_t j = 0; j < a[i].deltas.size(); ++j)
            EXPECT_DOUBLE_EQ(a[i].deltas[j], b[i].deltas[j])
                << "epoch " << i << " delta " << j;
    }
}

} // namespace

TEST(EpochSeries, SkipsCrossingBoundariesMatchUnitAdvancement)
{
    // No warm-up restart: a boundary-sampling skipper must reproduce
    // the unit-advanced series exactly, including the trailing
    // partial epoch from flush().
    auto unit = runSchedule(/*unit=*/true, /*restart_at=*/kCycleMax,
                            /*end=*/1517);
    auto skip = runSchedule(/*unit=*/false, kCycleMax, 1517);
    expectSameSeries(unit, skip);
}

TEST(EpochSeries, MidEpochRestartRealignsUnderCycleSkipping)
{
    // The warm-up reset lands mid-epoch (cycle 437 is deep inside
    // [400, 500)); the realigned grid starts there, and skips that
    // cross the post-restart boundaries must still match unit
    // advancement epoch for epoch.
    auto unit = runSchedule(/*unit=*/true, /*restart_at=*/437,
                            /*end=*/1517);
    auto skip = runSchedule(/*unit=*/false, 437, 1517);
    ASSERT_FALSE(unit.empty());
    EXPECT_EQ(unit[0].start, 437u); // grid realigned, not inherited
    EXPECT_EQ(unit[0].end, 537u);
    expectSameSeries(unit, skip);
}

TEST(EpochSeries, FlushAfterUnsampledSkipEmitsPendingThenPartial)
{
    // A caller that skipped past several boundaries without sampling
    // must still end with whole epochs first and at most one partial:
    // the delta collapses into the first pending epoch (the
    // documented coarse-grained fallback), never into the partial.
    Fixture f;
    EpochSeries s(f.group, 100);
    f.reads.inc(11);
    s.flush(730); // 7 whole epochs pending, then [700, 730)
    ASSERT_EQ(s.epochs().size(), 8u);
    EXPECT_DOUBLE_EQ(s.epochs()[0].deltas[f.nameIndex(s, "sys.reads")],
                     11.0);
    for (std::size_t i = 1; i < 8; ++i)
        EXPECT_DOUBLE_EQ(
            s.epochs()[i].deltas[f.nameIndex(s, "sys.reads")], 0.0);
    EXPECT_EQ(s.epochs()[7].start, 700u);
    EXPECT_EQ(s.epochs()[7].end, 730u);
}

TEST(EpochSeriesDeath, ZeroEpochLengthPanics)
{
    Fixture f;
    EXPECT_DEATH(EpochSeries(f.group, 0), "epoch length");
}
