/**
 * @file
 * Unit tests for EpochSeries: boundary emission, delta semantics,
 * multi-boundary fast-forward, warm-up restart and the end-of-run
 * flush of a trailing partial epoch.
 */

#include <gtest/gtest.h>

#include "common/epoch_series.hh"

using namespace dasdram;

namespace
{

/** A StatGroup with one counter and one histogram to track. */
struct Fixture
{
    StatGroup group{"sys"};
    Counter reads;
    Histogram lat;

    Fixture()
    {
        group.addCounter("reads", &reads);
        group.addHistogram("lat", &lat);
    }

    std::size_t
    nameIndex(const EpochSeries &s, const std::string &name) const
    {
        const auto &names = s.names();
        for (std::size_t i = 0; i < names.size(); ++i)
            if (names[i] == name)
                return i;
        ADD_FAILURE() << "no tracked name " << name;
        return 0;
    }
};

} // namespace

TEST(EpochSeries, TracksCountersAndHistMoments)
{
    Fixture f;
    EpochSeries s(f.group, 100);
    // Counters by name; dists/hists as .count and .sum.
    const auto &names = s.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "sys.reads");
    EXPECT_EQ(names[1], "sys.lat.count");
    EXPECT_EQ(names[2], "sys.lat.sum");
}

TEST(EpochSeries, EmitsDeltasPerEpoch)
{
    Fixture f;
    EpochSeries s(f.group, 100);

    f.reads.inc(5);
    f.lat.sample(10);
    s.maybeSample(50); // inside epoch 0: nothing emitted
    EXPECT_TRUE(s.epochs().empty());

    s.maybeSample(100); // epoch 0 [0, 100) closes
    ASSERT_EQ(s.epochs().size(), 1u);
    const auto &e0 = s.epochs()[0];
    EXPECT_EQ(e0.index, 0u);
    EXPECT_EQ(e0.start, 0u);
    EXPECT_EQ(e0.end, 100u);
    EXPECT_DOUBLE_EQ(e0.deltas[f.nameIndex(s, "sys.reads")], 5.0);
    EXPECT_DOUBLE_EQ(e0.deltas[f.nameIndex(s, "sys.lat.count")], 1.0);
    EXPECT_DOUBLE_EQ(e0.deltas[f.nameIndex(s, "sys.lat.sum")], 10.0);

    // Second epoch sees only the increments since the first boundary.
    f.reads.inc(2);
    s.maybeSample(200);
    ASSERT_EQ(s.epochs().size(), 2u);
    EXPECT_DOUBLE_EQ(
        s.epochs()[1].deltas[f.nameIndex(s, "sys.reads")], 2.0);
    EXPECT_DOUBLE_EQ(
        s.epochs()[1].deltas[f.nameIndex(s, "sys.lat.count")], 0.0);
}

TEST(EpochSeries, FastForwardAttributesDeltaToFirstElapsedEpoch)
{
    Fixture f;
    EpochSeries s(f.group, 100);
    f.reads.inc(7);
    s.maybeSample(350); // three whole epochs elapsed at once
    ASSERT_EQ(s.epochs().size(), 3u);
    EXPECT_DOUBLE_EQ(
        s.epochs()[0].deltas[f.nameIndex(s, "sys.reads")], 7.0);
    EXPECT_DOUBLE_EQ(
        s.epochs()[1].deltas[f.nameIndex(s, "sys.reads")], 0.0);
    EXPECT_DOUBLE_EQ(
        s.epochs()[2].deltas[f.nameIndex(s, "sys.reads")], 0.0);
    EXPECT_EQ(s.epochs()[2].start, 200u);
    EXPECT_EQ(s.epochs()[2].end, 300u);
}

TEST(EpochSeries, RestartRealignsAfterWarmupReset)
{
    Fixture f;
    EpochSeries s(f.group, 100);
    f.reads.inc(100);
    s.maybeSample(100);
    ASSERT_EQ(s.epochs().size(), 1u);

    // Warm-up end: the owner resets the stats and the series restarts.
    f.group.resetAll();
    s.restart(130);
    EXPECT_TRUE(s.epochs().empty()); // history discarded

    f.reads.inc(4);
    s.maybeSample(229); // boundary is base + 100 = 230: not yet
    EXPECT_TRUE(s.epochs().empty());
    s.maybeSample(230);
    ASSERT_EQ(s.epochs().size(), 1u);
    EXPECT_EQ(s.epochs()[0].index, 0u);
    EXPECT_EQ(s.epochs()[0].start, 130u);
    EXPECT_EQ(s.epochs()[0].end, 230u);
    // The post-reset baseline is the reset value, not the old one: the
    // delta is 4, not 4 - 100.
    EXPECT_DOUBLE_EQ(
        s.epochs()[0].deltas[f.nameIndex(s, "sys.reads")], 4.0);
}

TEST(EpochSeries, FlushEmitsTrailingPartialEpoch)
{
    Fixture f;
    EpochSeries s(f.group, 100);
    f.reads.inc(3);
    s.maybeSample(100);
    f.reads.inc(9);
    s.flush(140); // partial epoch [100, 140)
    ASSERT_EQ(s.epochs().size(), 2u);
    EXPECT_EQ(s.epochs()[1].start, 100u);
    EXPECT_EQ(s.epochs()[1].end, 140u);
    EXPECT_DOUBLE_EQ(
        s.epochs()[1].deltas[f.nameIndex(s, "sys.reads")], 9.0);
}

TEST(EpochSeries, FlushAtBoundaryEmitsNothingExtra)
{
    Fixture f;
    EpochSeries s(f.group, 100);
    f.reads.inc(1);
    s.maybeSample(200);
    std::size_t n = s.epochs().size();
    s.flush(200); // no time past the last boundary
    EXPECT_EQ(s.epochs().size(), n);
}

TEST(EpochSeriesDeath, ZeroEpochLengthPanics)
{
    Fixture f;
    EXPECT_DEATH(EpochSeries(f.group, 0), "epoch length");
}
