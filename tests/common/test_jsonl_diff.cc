/**
 * @file
 * Tests for the JSONL comparison library behind dasdram_compare:
 * tolerance symmetry, NaN/infinity semantics, record keying, and
 * end-to-end diffs of parsed records (including JSONL input that uses
 * the bare NaN/Infinity extension literals).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/jsonl_diff.hh"

using namespace dasdram;

namespace
{

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

JsonValue
parsed(const std::string &text)
{
    JsonValue v;
    std::string err;
    EXPECT_TRUE(parseJson(text, v, &err)) << err;
    return v;
}

std::size_t
countDiffs(const std::string &a, const std::string &b, double tol = 0.0)
{
    return diffJsonValues("", parsed(a), parsed(b), tol, nullptr);
}

/** RAII temp file holding the given JSONL lines. */
class TempJsonl
{
  public:
    explicit TempJsonl(const std::vector<std::string> &lines)
    {
        static int counter = 0;
        path_ = testing::TempDir() + "jsonl_diff_test_" +
                std::to_string(counter++) + ".jsonl";
        std::ofstream os(path_);
        for (const std::string &l : lines)
            os << l << '\n';
    }

    ~TempJsonl() { std::remove(path_.c_str()); }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

} // namespace

TEST(NumbersEqual, ExactAndTolerance)
{
    EXPECT_TRUE(numbersEqual(1.0, 1.0, 0.0));
    EXPECT_FALSE(numbersEqual(1.0, 1.0 + 1e-9, 0.0));
    EXPECT_TRUE(numbersEqual(1.0, 1.0 + 1e-9, 1e-6));
    EXPECT_FALSE(numbersEqual(100.0, 101.0, 1e-6));
    EXPECT_TRUE(numbersEqual(100.0, 101.0, 0.01));
    // Sub-unit values: the scale floor of 1 makes tol absolute.
    EXPECT_TRUE(numbersEqual(1e-9, 2e-9, 1e-6));
    EXPECT_TRUE(numbersEqual(0.0, -0.0, 0.0));
}

TEST(NumbersEqual, ToleranceIsSymmetric)
{
    // The defining property: which argument is "A" never matters.
    const double pairs[][2] = {{100.0, 101.0}, {1.0, 1.1},
                               {-5.0, 5.0},    {1e300, 1.0001e300},
                               {0.0, 1e-7},    {3.0, kNan},
                               {kInf, 1e308}};
    for (double tol : {0.0, 1e-9, 1e-6, 1e-3, 0.5}) {
        for (const auto &p : pairs) {
            EXPECT_EQ(numbersEqual(p[0], p[1], tol),
                      numbersEqual(p[1], p[0], tol))
                << p[0] << " vs " << p[1] << " tol " << tol;
        }
    }
}

TEST(NumbersEqual, NanAndInfinitySemantics)
{
    // Two runs that both produced "no data" must diff clean...
    EXPECT_TRUE(numbersEqual(kNan, kNan, 0.0));
    EXPECT_TRUE(numbersEqual(kInf, kInf, 0.0));
    EXPECT_TRUE(numbersEqual(-kInf, -kInf, 0.0));
    // ...but class or sign mixtures are unequal at ANY tolerance.
    EXPECT_FALSE(numbersEqual(kNan, 0.0, 1e9));
    EXPECT_FALSE(numbersEqual(kNan, kInf, 1e9));
    EXPECT_FALSE(numbersEqual(kInf, -kInf, 1e9));
    EXPECT_FALSE(numbersEqual(kInf, 1e308, 1e9));
}

TEST(JsonParser, AcceptsNonFiniteExtensionLiterals)
{
    JsonValue v = parsed("{\"a\": NaN, \"b\": Infinity, "
                         "\"c\": -Infinity, \"d\": [NaN]}");
    ASSERT_TRUE(v.find("a") && v.find("a")->isNumber());
    EXPECT_TRUE(std::isnan(v.find("a")->number));
    EXPECT_EQ(v.find("b")->number, kInf);
    EXPECT_EQ(v.find("c")->number, -kInf);
    EXPECT_TRUE(std::isnan(v.find("d")->array[0].number));
}

TEST(JsonParser, RejectsMalformedNonFiniteLiterals)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\": Nan}", v, &err));
    EXPECT_FALSE(parseJson("{\"a\": -Inf}", v, &err));
    EXPECT_FALSE(parseJson("{\"a\": nan}", v, &err));
}

TEST(DiffJsonValues, NonFiniteFieldsDiffCleanWhenEqual)
{
    const char *rec = "{\"mpki\": NaN, \"speedup\": Infinity, "
                      "\"delta\": -Infinity}";
    EXPECT_EQ(countDiffs(rec, rec), 0u);
    EXPECT_EQ(countDiffs("{\"x\": NaN}", "{\"x\": 0}"), 1u);
    EXPECT_EQ(countDiffs("{\"x\": Infinity}", "{\"x\": -Infinity}"),
              1u);
    // null (what our writer emits for non-finite) vs NaN is a kind
    // mismatch, not silent equality.
    EXPECT_EQ(countDiffs("{\"x\": null}", "{\"x\": NaN}"), 1u);
}

TEST(DiffJsonValues, RecursesAndCounts)
{
    EXPECT_EQ(countDiffs("{\"a\": {\"b\": [1, 2]}, \"c\": 3}",
                         "{\"a\": {\"b\": [1, 5]}, \"c\": 4}"),
              2u);
    EXPECT_EQ(countDiffs("{\"a\": 1}", "{\"a\": 1, \"b\": 2}"), 1u);
    EXPECT_EQ(countDiffs("{\"a\": 1, \"b\": 2}", "{\"a\": 1}"), 1u);
    std::vector<std::string> paths;
    diffJsonValues("", parsed("{\"a\": {\"b\": 1}}"),
                   parsed("{\"a\": {\"b\": 2}}"), 0.0,
                   [&](const std::string &p, const std::string &) {
                       paths.push_back(p);
                   });
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0], ".a.b");
}

TEST(JsonlRecords, LoadKeysAndNonFiniteRoundTrip)
{
    TempJsonl file({
        "{\"workload\": \"mcf\", \"design\": \"das\", "
        "\"label\": \"fig9\", \"mpki\": NaN}",
        "",
        "{\"workload\": \"lbm\", \"design\": \"sas\", "
        "\"label\": \"fig9\", \"ipc\": 1.5}",
    });
    JsonlRecordMap recs;
    std::string err;
    ASSERT_TRUE(loadJsonlRecords(file.path(), recs, &err)) << err;
    EXPECT_EQ(recs.size(), 2u);
    ASSERT_TRUE(recs.count("mcf | das | fig9"));
    EXPECT_TRUE(std::isnan(
        recs["mcf | das | fig9"].find("mpki")->number));

    // A file equal to itself diffs clean even with NaN fields.
    for (const auto &[key, v] : recs)
        EXPECT_EQ(diffJsonValues("", v, v, 0.0, nullptr), 0u) << key;
}

TEST(JsonlRecords, LoadErrorsAreDescriptive)
{
    JsonlRecordMap recs;
    std::string err;
    EXPECT_FALSE(loadJsonlRecords("/nonexistent/x.jsonl", recs, &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos);

    TempJsonl bad({"{\"workload\": }"});
    err.clear();
    EXPECT_FALSE(loadJsonlRecords(bad.path(), recs, &err));
    EXPECT_NE(err.find(":1:"), std::string::npos) << err;

    TempJsonl not_obj({"[1, 2]"});
    err.clear();
    EXPECT_FALSE(loadJsonlRecords(not_obj.path(), recs, &err));
    EXPECT_NE(err.find("not an object"), std::string::npos);
}

TEST(JsonlRecords, MissingKeyFieldsRenderAsQuestionMarks)
{
    EXPECT_EQ(jsonlRecordKey(parsed("{\"workload\": \"mcf\"}")),
              "mcf | ? | ?");
    EXPECT_EQ(jsonlRecordKey(parsed("{\"label\": 3}")), "? | ? | ?");
}

TEST(JsonlRecords, TypedStatsRecordsKeyOnTypeAndName)
{
    // dasdram-stats records (stats_jsonl.hh) key on type|name, so two
    // stats dumps diff stat-by-stat instead of line-by-line.
    EXPECT_EQ(jsonlRecordKey(parsed(
                  "{\"type\": \"counter\", \"name\": \"sys.reads\", "
                  "\"value\": 3}")),
              "counter | sys.reads");
    EXPECT_EQ(jsonlRecordKey(parsed(
                  "{\"type\": \"hist\", \"name\": \"ctrl.lat\"}")),
              "hist | ctrl.lat");
    // Epoch records have no name; the index disambiguates them.
    EXPECT_EQ(jsonlRecordKey(parsed(
                  "{\"type\": \"epoch\", \"index\": 4}")),
              "epoch | 4");
    // The meta record is a singleton: the bare type is the key.
    EXPECT_EQ(jsonlRecordKey(parsed(
                  "{\"type\": \"meta\", \"schema\": \"dasdram-stats\"}")),
              "meta");
}

TEST(JsonlRecords, TypedStatsDumpsDiffByStatName)
{
    TempJsonl a({
        "{\"type\": \"meta\", \"schema\": \"dasdram-stats\"}",
        "{\"type\": \"counter\", \"name\": \"sys.reads\", \"value\": 3}",
        "{\"type\": \"counter\", \"name\": \"sys.writes\", \"value\": 1}",
    });
    TempJsonl b({
        "{\"type\": \"meta\", \"schema\": \"dasdram-stats\"}",
        // Same records, different line order: keys must still match up.
        "{\"type\": \"counter\", \"name\": \"sys.writes\", \"value\": 1}",
        "{\"type\": \"counter\", \"name\": \"sys.reads\", \"value\": 4}",
    });
    JsonlRecordMap ra, rb;
    std::string err;
    ASSERT_TRUE(loadJsonlRecords(a.path(), ra, &err)) << err;
    ASSERT_TRUE(loadJsonlRecords(b.path(), rb, &err)) << err;
    ASSERT_TRUE(ra.count("counter | sys.reads"));
    ASSERT_TRUE(rb.count("counter | sys.reads"));
    EXPECT_EQ(diffJsonValues("", ra["counter | sys.writes"],
                             rb["counter | sys.writes"], 0.0, nullptr),
              0u);
    EXPECT_EQ(diffJsonValues("", ra["counter | sys.reads"],
                             rb["counter | sys.reads"], 0.0, nullptr),
              1u);
}
