/**
 * @file
 * Tests for the shared CliParser: both value spellings, aliases,
 * toggles, strict numeric validation (the class of bug that made
 * dasdram_compare accept `--tolerance abc` as 0), repeatable options,
 * positional-count enforcement and the tryParse/parse split.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/cli.hh"

using namespace dasdram;

namespace
{

/** Run tryParse over @p args (argv[0] is added). */
bool
tryArgs(CliParser &cli, std::vector<std::string> args, std::string &err)
{
    args.insert(args.begin(), "prog");
    std::vector<char *> argv;
    for (std::string &a : args)
        argv.push_back(a.data());
    return cli.tryParse(static_cast<int>(argv.size()), argv.data(), err);
}

CliParser
makeParser()
{
    CliParser cli("prog", "test parser");
    cli.flag("--quiet", "say less", "-q")
        .toggle("--check", "checker")
        .option("--name", "STR", "a string")
        .option("--metric", "NAME", "repeatable")
        .optionUInt("--count", "N", "a number")
        .optionDouble("--ratio", "X", "a double");
    return cli;
}

} // namespace

TEST(Cli, FlagsAndAliases)
{
    CliParser cli = makeParser();
    std::string err;
    ASSERT_TRUE(tryArgs(cli, {"-q"}, err)) << err;
    EXPECT_TRUE(cli.given("--quiet"));
    EXPECT_FALSE(cli.given("--name"));
}

TEST(Cli, BothValueSpellings)
{
    {
        CliParser cli = makeParser();
        std::string err;
        ASSERT_TRUE(tryArgs(cli, {"--name", "alpha"}, err)) << err;
        EXPECT_EQ(cli.str("--name"), "alpha");
    }
    {
        CliParser cli = makeParser();
        std::string err;
        ASSERT_TRUE(tryArgs(cli, {"--name=beta"}, err)) << err;
        EXPECT_EQ(cli.str("--name"), "beta");
    }
}

TEST(Cli, LastOccurrenceWinsAndStrsKeepsAll)
{
    CliParser cli = makeParser();
    std::string err;
    ASSERT_TRUE(
        tryArgs(cli, {"--metric", "a", "--metric=b", "--metric", "c"},
                err))
        << err;
    EXPECT_EQ(cli.str("--metric"), "c");
    ASSERT_EQ(cli.strs("--metric").size(), 3u);
    EXPECT_EQ(cli.strs("--metric")[1], "b");
}

TEST(Cli, ToggleLastWins)
{
    CliParser cli = makeParser();
    std::string err;
    ASSERT_TRUE(tryArgs(cli, {"--check", "--no-check"}, err)) << err;
    EXPECT_FALSE(cli.enabled("--check", true));

    CliParser cli2 = makeParser();
    ASSERT_TRUE(tryArgs(cli2, {"--no-check", "--check"}, err)) << err;
    EXPECT_TRUE(cli2.enabled("--check", false));

    CliParser cli3 = makeParser();
    ASSERT_TRUE(tryArgs(cli3, {}, err)) << err;
    EXPECT_TRUE(cli3.enabled("--check", true));
    EXPECT_FALSE(cli3.enabled("--check", false));
}

TEST(Cli, StrictUnsignedValidation)
{
    CliParser cli = makeParser();
    std::string err;
    ASSERT_TRUE(tryArgs(cli, {"--count", "0x10"}, err)) << err;
    EXPECT_EQ(cli.uns("--count", 0), 16u);

    for (const char *bad : {"12x", "abc", "", "-3", "1.5"}) {
        CliParser c = makeParser();
        EXPECT_FALSE(tryArgs(c, {"--count", bad}, err)) << bad;
        EXPECT_NE(err.find("--count"), std::string::npos) << err;
    }
}

TEST(Cli, StrictDoubleValidation)
{
    CliParser cli = makeParser();
    std::string err;
    ASSERT_TRUE(tryArgs(cli, {"--ratio", "1e-6"}, err)) << err;
    EXPECT_DOUBLE_EQ(cli.dbl("--ratio", 0.0), 1e-6);

    for (const char *bad : {"abc", "1.5x", ""}) {
        CliParser c = makeParser();
        EXPECT_FALSE(tryArgs(c, {"--ratio", bad}, err)) << bad;
    }
}

TEST(Cli, UnknownOptionAndMissingValueAreErrors)
{
    CliParser cli = makeParser();
    std::string err;
    EXPECT_FALSE(tryArgs(cli, {"--bogus"}, err));
    EXPECT_NE(err.find("--bogus"), std::string::npos);

    CliParser cli2 = makeParser();
    EXPECT_FALSE(tryArgs(cli2, {"--name"}, err));
    EXPECT_NE(err.find("--name"), std::string::npos);
}

TEST(Cli, PositionalCountsEnforced)
{
    {
        // No positionals declared: any bare argument is an error.
        CliParser cli = makeParser();
        std::string err;
        EXPECT_FALSE(tryArgs(cli, {"stray"}, err));
    }
    {
        CliParser cli("prog", "t");
        cli.positionals("file", "input files", 2, 2);
        std::string err;
        EXPECT_FALSE(tryArgs(cli, {"a"}, err));
        CliParser cli2("prog", "t");
        cli2.positionals("file", "input files", 2, 2);
        EXPECT_FALSE(tryArgs(cli2, {"a", "b", "c"}, err));
        CliParser cli3("prog", "t");
        cli3.positionals("file", "input files", 2, 2);
        ASSERT_TRUE(tryArgs(cli3, {"a", "b"}, err)) << err;
        ASSERT_EQ(cli3.positionalValues().size(), 2u);
        EXPECT_EQ(cli3.positionalValues()[0], "a");
    }
}

TEST(Cli, HelpSetsFlagWithoutFailing)
{
    CliParser cli = makeParser();
    std::string err;
    ASSERT_TRUE(tryArgs(cli, {"--help"}, err)) << err;
    EXPECT_TRUE(cli.helpRequested());

    std::string usage = cli.usage();
    for (const char *needle :
         {"--quiet", "--check", "--name", "--count", "test parser"})
        EXPECT_NE(usage.find(needle), std::string::npos) << needle;
}

TEST(Cli, ParseIsFatalOnUsageError)
{
    CliParser cli = makeParser();
    std::string arg0 = "prog", arg1 = "--bogus";
    char *argv[] = {arg0.data(), arg1.data()};
    EXPECT_DEATH(cli.parse(2, argv), "bogus");
}
