/**
 * @file
 * Unit tests for bit utilities.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"

using namespace dasdram;

TEST(BitUtil, IsPowerOfTwo)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
    EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(BitUtil, Log2Exact)
{
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(2), 1u);
    EXPECT_EQ(log2Exact(4096), 12u);
    EXPECT_EQ(log2Exact(1ULL << 33), 33u);
}

TEST(BitUtil, Log2Ceil)
{
    EXPECT_EQ(log2Ceil(1), 0u);
    EXPECT_EQ(log2Ceil(2), 1u);
    EXPECT_EQ(log2Ceil(3), 2u);
    EXPECT_EQ(log2Ceil(4), 2u);
    EXPECT_EQ(log2Ceil(5), 3u);
}

TEST(BitUtil, BitsExtraction)
{
    EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
    EXPECT_EQ(bits(0xABCD, 4, 4), 0xCu);
    EXPECT_EQ(bits(0xABCD, 8, 8), 0xABu);
    EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
}

TEST(BitUtil, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(117, 2), 59u);
}
