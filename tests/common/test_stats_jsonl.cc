/**
 * @file
 * Schema tests for the stats-JSONL export: every line parses as JSON,
 * the meta record carries the schema name/version and run identity,
 * histogram records expose exact percentiles and their non-empty
 * buckets, and epoch records carry only non-zero deltas. This is the
 * golden guard for kStatsJsonlVersion: if the shape changes, these
 * expectations (and the version) must move together.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/epoch_series.hh"
#include "common/json.hh"
#include "common/stats_jsonl.hh"

using namespace dasdram;

namespace
{

/** Parse a JSONL dump into one JsonValue per line, asserting validity. */
std::vector<JsonValue>
parseLines(const std::string &text)
{
    std::vector<JsonValue> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        EXPECT_FALSE(line.empty());
        JsonValue v;
        std::string err;
        EXPECT_TRUE(parseJson(line, v, &err)) << line << ": " << err;
        out.push_back(std::move(v));
    }
    return out;
}

double
num(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    EXPECT_TRUE(f && f->isNumber()) << key;
    return f && f->isNumber() ? f->number : 0.0;
}

std::string
str(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    EXPECT_TRUE(f && f->isString()) << key;
    return f && f->isString() ? f->string : std::string();
}

const JsonValue *
findByName(const std::vector<JsonValue> &recs, const std::string &type,
           const std::string &name)
{
    for (const JsonValue &v : recs) {
        const JsonValue *t = v.find("type");
        const JsonValue *n = v.find("name");
        if (t && t->isString() && t->string == type && n &&
            n->isString() && n->string == name) {
            return &v;
        }
    }
    return nullptr;
}

} // namespace

TEST(StatsJsonl, MetaRecordLeadsWithSchemaAndIdentity)
{
    StatGroup g("sys");
    Counter c;
    g.addCounter("reads", &c);

    StatsJsonlMeta meta;
    meta.workload = "mcf";
    meta.design = "DAS-DRAM";
    meta.label = "fig9";
    meta.seed = 1234;
    meta.instructions = 500000;
    meta.epochCycles = 1000;

    std::ostringstream os;
    writeStatsJsonl(os, g, nullptr, meta);
    auto recs = parseLines(os.str());
    ASSERT_GE(recs.size(), 2u);

    const JsonValue &m = recs[0];
    EXPECT_EQ(str(m, "type"), "meta");
    EXPECT_EQ(str(m, "schema"), kStatsJsonlSchema);
    EXPECT_EQ(num(m, "version"), kStatsJsonlVersion);
    EXPECT_EQ(str(m, "workload"), "mcf");
    EXPECT_EQ(str(m, "design"), "DAS-DRAM");
    EXPECT_EQ(str(m, "label"), "fig9");
    EXPECT_EQ(num(m, "seed"), 1234.0);
    EXPECT_EQ(num(m, "instructions"), 500000.0);
    EXPECT_EQ(num(m, "epoch_cycles"), 1000.0);
}

TEST(StatsJsonl, RecordsForEveryStatKind)
{
    StatGroup g("sys");
    StatGroup child("ctrl");
    Counter c;
    Distribution d;
    Histogram h;
    c.inc(3);
    d.sample(2.0);
    d.sample(6.0);
    for (std::uint64_t v = 1; v <= 4; ++v)
        h.sample(v);
    g.addCounter("reads", &c);
    g.addFormula("twice",
                 [&c] { return 2.0 * static_cast<double>(c.value()); });
    child.addDistribution("lat", &d);
    child.addHistogram("occ", &h);
    g.addChild(&child);

    std::ostringstream os;
    writeStatsJsonl(os, g, nullptr, StatsJsonlMeta{});
    auto recs = parseLines(os.str());

    const JsonValue *cr = findByName(recs, "counter", "sys.reads");
    ASSERT_TRUE(cr);
    EXPECT_EQ(num(*cr, "value"), 3.0);

    const JsonValue *fr = findByName(recs, "formula", "sys.twice");
    ASSERT_TRUE(fr);
    EXPECT_EQ(num(*fr, "value"), 6.0);

    const JsonValue *dr = findByName(recs, "dist", "sys.ctrl.lat");
    ASSERT_TRUE(dr);
    EXPECT_EQ(num(*dr, "count"), 2.0);
    EXPECT_EQ(num(*dr, "mean"), 4.0);
    EXPECT_EQ(num(*dr, "min"), 2.0);
    EXPECT_EQ(num(*dr, "max"), 6.0);
    EXPECT_EQ(num(*dr, "sum"), 8.0);

    const JsonValue *hr = findByName(recs, "hist", "sys.ctrl.occ");
    ASSERT_TRUE(hr);
    EXPECT_EQ(num(*hr, "count"), 4.0);
    EXPECT_EQ(num(*hr, "min"), 1.0);
    EXPECT_EQ(num(*hr, "max"), 4.0);
    // Sub-bucket-range data: exact percentiles.
    EXPECT_EQ(num(*hr, "p50"), 2.0);
    EXPECT_EQ(num(*hr, "p99"), 4.0);
    EXPECT_EQ(num(*hr, "p999"), 4.0);

    // Buckets: [lo, hi, count] triples, non-empty only, covering all
    // samples.
    const JsonValue *buckets = hr->find("buckets");
    ASSERT_TRUE(buckets && buckets->isArray());
    ASSERT_EQ(buckets->array.size(), 4u); // values 1..4, width-1 buckets
    double total = 0;
    for (const JsonValue &b : buckets->array) {
        ASSERT_TRUE(b.isArray());
        ASSERT_EQ(b.array.size(), 3u);
        EXPECT_LT(b.array[0].number, b.array[1].number);
        EXPECT_GT(b.array[2].number, 0.0);
        total += b.array[2].number;
    }
    EXPECT_EQ(total, 4.0);
}

TEST(StatsJsonl, EpochRecordsCarryNonZeroDeltasOnly)
{
    StatGroup g("sys");
    Counter reads, writes;
    g.addCounter("reads", &reads);
    g.addCounter("writes", &writes);
    EpochSeries s(g, 100);
    reads.inc(5); // writes stays 0
    s.maybeSample(100);

    std::ostringstream os;
    writeStatsJsonl(os, g, &s, StatsJsonlMeta{});
    auto recs = parseLines(os.str());

    const JsonValue *epoch = nullptr;
    for (const JsonValue &v : recs) {
        const JsonValue *t = v.find("type");
        if (t && t->isString() && t->string == "epoch")
            epoch = &v;
    }
    ASSERT_TRUE(epoch);
    EXPECT_EQ(num(*epoch, "index"), 0.0);
    EXPECT_EQ(num(*epoch, "start"), 0.0);
    EXPECT_EQ(num(*epoch, "end"), 100.0);
    const JsonValue *values = epoch->find("values");
    ASSERT_TRUE(values && values->isObject());
    ASSERT_TRUE(values->find("sys.reads"));
    EXPECT_EQ(values->find("sys.reads")->number, 5.0);
    EXPECT_FALSE(values->find("sys.writes")); // zero delta omitted
}

TEST(StatsJsonl, GroupAppendHasNoMetaLine)
{
    StatGroup g("rollup");
    Histogram h;
    h.sample(7);
    g.addHistogram("readLatency", &h);

    std::ostringstream os;
    writeStatsJsonlGroup(os, g);
    auto recs = parseLines(os.str());
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(str(recs[0], "type"), "hist");
    EXPECT_EQ(str(recs[0], "name"), "rollup.readLatency");
}

TEST(StatsJsonl, DeterministicBytes)
{
    StatGroup g("sys");
    Counter c;
    c.inc(9);
    Histogram h;
    h.sample(42);
    g.addCounter("reads", &c);
    g.addHistogram("lat", &h);
    StatsJsonlMeta meta;
    meta.workload = "lbm";
    std::ostringstream a, b;
    writeStatsJsonl(a, g, nullptr, meta);
    writeStatsJsonl(b, g, nullptr, meta);
    EXPECT_EQ(a.str(), b.str());
}
