/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/random.hh"

using namespace dasdram;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng r(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.nextBelow(bound), bound);
    }
}

TEST(Rng, NextRangeInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = r.nextRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        double v = r.nextDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02); // mean of uniform(0,1)
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceProbabilityRoughlyRespected)
{
    Rng r(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ZipfInRange)
{
    Rng r(19);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(r.nextZipf(100, 0.8), 100u);
}

TEST(Rng, ZipfSkewsTowardLowRanks)
{
    Rng r(23);
    const std::uint64_t n = 1000;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[r.nextZipf(n, 1.1)];
    // Rank 0 must be much more popular than rank n/2.
    EXPECT_GT(counts[0], 10 * std::max(1, counts[n / 2]));
    // Head (top 10%) should hold the majority of mass at s=1.1.
    long head = 0, total = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        total += counts[i];
        if (i < n / 10)
            head += counts[i];
    }
    EXPECT_GT(head, total / 2);
}

TEST(Rng, ZipfSingleElement)
{
    Rng r(29);
    EXPECT_EQ(r.nextZipf(1, 0.8), 0u);
}

class RngZipfSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(RngZipfSweep, MonotonicHeadMass)
{
    // Property: mass on the top decile never decreases as s grows.
    double s = GetParam();
    Rng r(31);
    const std::uint64_t n = 500;
    long head = 0;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i)
        head += (r.nextZipf(n, s) < n / 10) ? 1 : 0;
    // At s = 0 the head should hold ~10%; it only grows with s.
    double share = static_cast<double>(head) / draws;
    EXPECT_GT(share, 0.08);
    if (s >= 1.0) {
        EXPECT_GT(share, 0.45);
    }
}

INSTANTIATE_TEST_SUITE_P(Skews, RngZipfSweep,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.2));
