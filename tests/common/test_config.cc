/**
 * @file
 * Unit tests for the typed configuration store.
 */

#include <gtest/gtest.h>

#include "common/config.hh"

using namespace dasdram;

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getInt("missing", 42), 42);
    EXPECT_EQ(c.getUInt("missing", 7u), 7u);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
    EXPECT_EQ(c.getString("missing", "x"), "x");
    EXPECT_TRUE(c.getBool("missing", true));
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, RoundTripTypes)
{
    Config c;
    c.set("i", static_cast<std::int64_t>(-5));
    c.set("u", static_cast<std::uint64_t>(123456789012ULL));
    c.set("d", 2.25);
    c.set("b", true);
    c.set("s", std::string("hello"));
    EXPECT_EQ(c.getInt("i", 0), -5);
    EXPECT_EQ(c.getUInt("u", 0), 123456789012ULL);
    EXPECT_DOUBLE_EQ(c.getDouble("d", 0), 2.25);
    EXPECT_TRUE(c.getBool("b", false));
    EXPECT_EQ(c.getString("s", ""), "hello");
}

TEST(Config, OverwriteReplacesValue)
{
    Config c;
    c.set("k", static_cast<std::int64_t>(1));
    c.set("k", static_cast<std::int64_t>(2));
    EXPECT_EQ(c.getInt("k", 0), 2);
}

TEST(Config, ApplyOverrideParsesAssignment)
{
    Config c;
    EXPECT_TRUE(c.applyOverride("alpha=3"));
    EXPECT_EQ(c.getInt("alpha", 0), 3);
    EXPECT_TRUE(c.applyOverride("name=das"));
    EXPECT_EQ(c.getString("name", ""), "das");
}

TEST(Config, ApplyOverrideRejectsMalformed)
{
    Config c;
    EXPECT_FALSE(c.applyOverride("no-equals"));
    EXPECT_FALSE(c.applyOverride("=value"));
}

TEST(Config, BooleanSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on"}) {
        c.set("b", std::string(t));
        EXPECT_TRUE(c.getBool("b", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off"}) {
        c.set("b", std::string(f));
        EXPECT_FALSE(c.getBool("b", true)) << f;
    }
}

TEST(Config, KeysSorted)
{
    Config c;
    c.set("zeta", 1.0);
    c.set("alpha", 1.0);
    auto keys = c.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "alpha");
    EXPECT_EQ(keys[1], "zeta");
}

TEST(Config, HexIntegerParsing)
{
    Config c;
    c.set("addr", std::string("0x40"));
    EXPECT_EQ(c.getUInt("addr", 0), 0x40u);
}
