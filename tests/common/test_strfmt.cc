/**
 * @file
 * Unit tests for the formatting shim.
 */

#include <gtest/gtest.h>

#include "common/strfmt.hh"

using namespace dasdram;

TEST(StrFmt, PlainPlaceholders)
{
    EXPECT_EQ(formatStr("a {} b {}", 1, "x"), "a 1 b x");
}

TEST(StrFmt, NoPlaceholders)
{
    EXPECT_EQ(formatStr("hello"), "hello");
}

TEST(StrFmt, FixedPrecision)
{
    EXPECT_EQ(formatStr("{:.2f}", 3.14159), "3.14");
    EXPECT_EQ(formatStr("{:.4f}", 1.0), "1.0000");
}

TEST(StrFmt, Hex)
{
    EXPECT_EQ(formatStr("{:x}", 255), "ff");
}

TEST(StrFmt, EscapedBraces)
{
    EXPECT_EQ(formatStr("{{}}"), "{}");
    EXPECT_EQ(formatStr("{{{}}}", 5), "{5}");
}

TEST(StrFmt, ExtraArgumentsIgnored)
{
    EXPECT_EQ(formatStr("only {}", 1, 2, 3), "only 1");
}

TEST(StrFmt, ExcessPlaceholdersLeftVerbatim)
{
    EXPECT_EQ(formatStr("{} and {}", 1), "1 and {}");
}

TEST(StrFmt, WidthPadding)
{
    EXPECT_EQ(formatStr("{:4d}", 7), "   7");
    EXPECT_EQ(formatStr("{:04d}", 7), "0007");
}
