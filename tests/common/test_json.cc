/**
 * @file
 * Tests for the JSON writer/parser pair: deterministic serialisation,
 * escaping, round-tripping and error reporting.
 */

#include <gtest/gtest.h>

#include "common/json.hh"

using namespace dasdram;

TEST(JsonWriter, ObjectAndArray)
{
    JsonWriter w;
    w.beginObject()
        .field("name", "mcf")
        .field("count", std::uint64_t(3))
        .key("ipc")
        .beginArray()
        .value(1.5)
        .value(0.25)
        .endArray()
        .field("ok", true)
        .endObject();
    EXPECT_EQ(w.str(),
              "{\"name\":\"mcf\",\"count\":3,\"ipc\":[1.5,0.25],"
              "\"ok\":true}");
}

TEST(JsonWriter, Escaping)
{
    JsonWriter w;
    w.value(std::string_view("a\"b\\c\nd\x01"));
    EXPECT_EQ(w.str(), "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(JsonWriter, DeterministicDoubles)
{
    JsonWriter a, b;
    a.value(0.1);
    b.value(0.1);
    EXPECT_EQ(a.str(), b.str());

    JsonWriter nested;
    nested.beginArray().value(-0.0).value(1e300).value(3.0).endArray();
    JsonValue v;
    ASSERT_TRUE(parseJson(nested.str(), v));
    ASSERT_EQ(v.array.size(), 3u);
    EXPECT_EQ(v.array[1].number, 1e300);
    EXPECT_EQ(v.array[2].number, 3.0);
}

TEST(JsonParse, RoundTripsWriterOutput)
{
    JsonWriter w;
    w.beginObject()
        .field("pi", 3.141592653589793)
        .field("neg", std::int64_t(-7))
        .key("obj")
        .beginObject()
        .field("s", "x y")
        .endObject()
        .key("null")
        .null()
        .endObject();

    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(w.str(), v, &err)) << err;
    ASSERT_TRUE(v.isObject());
    const JsonValue *pi = v.find("pi");
    ASSERT_NE(pi, nullptr);
    EXPECT_DOUBLE_EQ(pi->number, 3.141592653589793);
    const JsonValue *neg = v.find("neg");
    ASSERT_NE(neg, nullptr);
    EXPECT_DOUBLE_EQ(neg->number, -7.0);
    const JsonValue *obj = v.find("obj");
    ASSERT_NE(obj, nullptr);
    const JsonValue *s = obj->find("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->string, "x y");
    const JsonValue *null = v.find("null");
    ASSERT_NE(null, nullptr);
    EXPECT_EQ(null->kind, JsonValue::Kind::Null);
    EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(JsonParse, AcceptsWhitespaceAndUnicodeEscapes)
{
    JsonValue v;
    ASSERT_TRUE(parseJson("  { \"k\" : [ 1 , 2.5e1 ] }\n", v));
    ASSERT_TRUE(v.find("k")->isArray());
    EXPECT_DOUBLE_EQ(v.find("k")->array[1].number, 25.0);

    ASSERT_TRUE(parseJson("\"\\u0041\\u00e9\"", v));
    EXPECT_EQ(v.string, "A\xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\":}", v, &err));
    EXPECT_FALSE(parseJson("[1,2", v));
    EXPECT_FALSE(parseJson("1 2", v));
    EXPECT_FALSE(parseJson("\"open", v));
    EXPECT_FALSE(parseJson("", v));
    EXPECT_FALSE(parseJson("{\"a\" 1}", v));
}
