/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hh"

using namespace dasdram;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    d.sample(9.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_DOUBLE_EQ(d.sum(), 15.0);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Distribution, NegativeValues)
{
    Distribution d;
    d.sample(-3.0);
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.min(), -3.0);
    EXPECT_DOUBLE_EQ(d.max(), 1.0);
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    StatGroup g("dram");
    Counter reads;
    reads.inc(7);
    g.addCounter("reads", &reads, "read count");
    std::ostringstream oss;
    g.dump(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("dram.reads 7"), std::string::npos);
    EXPECT_NE(out.find("read count"), std::string::npos);
}

TEST(StatGroup, ChildGroupsArePrefixed)
{
    StatGroup parent("system");
    StatGroup child("bank0");
    Counter acts;
    acts.inc(3);
    child.addCounter("acts", &acts);
    parent.addChild(&child);
    std::ostringstream oss;
    parent.dump(oss);
    EXPECT_NE(oss.str().find("system.bank0.acts 3"), std::string::npos);
}

TEST(StatGroup, FormulaEvaluatedAtDump)
{
    StatGroup g("g");
    Counter c;
    g.addCounter("c", &c);
    g.addFormula("double_c",
                 [&c] { return 2.0 * static_cast<double>(c.value()); });
    c.inc(5);
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("g.double_c 10.000000"), std::string::npos);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup parent("p");
    StatGroup child("c");
    Counter a, b;
    a.inc(1);
    b.inc(2);
    parent.addCounter("a", &a);
    child.addCounter("b", &b);
    parent.addChild(&child);
    parent.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}
