/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hh"

using namespace dasdram;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    d.sample(2.0);
    d.sample(4.0);
    d.sample(9.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
    EXPECT_DOUBLE_EQ(d.sum(), 15.0);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
}

TEST(Distribution, NegativeValues)
{
    Distribution d;
    d.sample(-3.0);
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.min(), -3.0);
    EXPECT_DOUBLE_EQ(d.max(), 1.0);
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    StatGroup g("dram");
    Counter reads;
    reads.inc(7);
    g.addCounter("reads", &reads, "read count");
    std::ostringstream oss;
    g.dump(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("dram.reads 7"), std::string::npos);
    EXPECT_NE(out.find("read count"), std::string::npos);
}

TEST(StatGroup, ChildGroupsArePrefixed)
{
    StatGroup parent("system");
    StatGroup child("bank0");
    Counter acts;
    acts.inc(3);
    child.addCounter("acts", &acts);
    parent.addChild(&child);
    std::ostringstream oss;
    parent.dump(oss);
    EXPECT_NE(oss.str().find("system.bank0.acts 3"), std::string::npos);
}

TEST(StatGroup, FormulaEvaluatedAtDump)
{
    StatGroup g("g");
    Counter c;
    g.addCounter("c", &c);
    g.addFormula("double_c",
                 [&c] { return 2.0 * static_cast<double>(c.value()); });
    c.inc(5);
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("g.double_c 10.000000"), std::string::npos);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup parent("p");
    StatGroup child("c");
    Counter a, b;
    a.inc(1);
    b.inc(2);
    parent.addCounter("a", &a);
    child.addCounter("b", &b);
    parent.addChild(&child);
    parent.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Distribution, MergeFoldsMoments)
{
    Distribution a, b;
    a.sample(2.0);
    a.sample(4.0);
    b.sample(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 16.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
}

TEST(Distribution, MergeWithEmptySides)
{
    Distribution a, empty;
    a.sample(5.0);
    a.merge(empty); // identity
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.min(), 5.0);

    Distribution c;
    c.merge(a); // empty self adopts other wholesale
    EXPECT_EQ(c.count(), 1u);
    EXPECT_DOUBLE_EQ(c.min(), 5.0);
    EXPECT_DOUBLE_EQ(c.max(), 5.0);
}

TEST(Distribution, ResetReseedsExtrema)
{
    // The audited semantics: pre-reset extrema never leak into the
    // next window — the first post-reset sample re-seeds min and max.
    Distribution d;
    d.sample(-5.0);
    d.sample(100.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.min(), 0.0);
    EXPECT_DOUBLE_EQ(d.max(), 0.0);
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 1.0);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.percentile(100.0), 0u);
}

TEST(Histogram, BucketGeometryRoundTrip)
{
    // Every bucket's [lo, hi) range maps back to that bucket, and the
    // ranges tile the value space without gaps or overlaps.
    for (std::size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
        const std::uint64_t lo = Histogram::bucketLo(i);
        const std::uint64_t hi = Histogram::bucketHi(i);
        ASSERT_LT(lo, hi) << "bucket " << i;
        EXPECT_EQ(Histogram::bucketIndex(lo), i);
        EXPECT_EQ(Histogram::bucketIndex(hi - 1), i);
        EXPECT_EQ(Histogram::bucketLo(i + 1), hi)
            << "gap after bucket " << i;
    }
    // Spot values across the dynamic range stay within their bucket.
    for (std::uint64_t v :
         {0ull, 7ull, 8ull, 100ull, 4096ull, 1'000'000'007ull,
          (1ull << 62) + 12345ull, ~0ull}) {
        std::size_t i = Histogram::bucketIndex(v);
        ASSERT_LT(i, Histogram::kNumBuckets);
        EXPECT_GE(v, Histogram::bucketLo(i));
        // The topmost bucket's upper bound saturates at 2^64 - 1 and
        // the bound is exclusive, so the maximum value itself may only
        // land in a saturated bucket.
        const std::uint64_t hi = Histogram::bucketHi(i);
        EXPECT_TRUE(v < hi || hi == ~0ull) << v;
    }
}

TEST(Histogram, ExactBelowSubBucketRange)
{
    // Values below 2^kSubBucketBits land in width-1 buckets, so
    // percentiles are exact.
    Histogram h;
    for (std::uint64_t v = 0; v < Histogram::kSubBuckets; ++v)
        h.sample(v);
    EXPECT_EQ(h.count(), Histogram::kSubBuckets);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), Histogram::kSubBuckets - 1);
    // rank = ceil(p/100 * 8): p50 -> 4th smallest = 3.
    EXPECT_EQ(h.p50(), 3u);
    EXPECT_EQ(h.percentile(100.0), Histogram::kSubBuckets - 1);
    EXPECT_EQ(h.percentile(12.5), 0u);
}

TEST(Histogram, PercentileResolutionAboveLinearRange)
{
    Histogram h;
    h.sample(1000);
    // A single sample: every percentile clamps to the observed value.
    EXPECT_EQ(h.p50(), 1000u);
    EXPECT_EQ(h.p999(), 1000u);

    h.sample(2000);
    // p50 is the upper bound of 1000's bucket: within one sub-bucket
    // width (12.5%) above the true median sample.
    EXPECT_GE(h.p50(), 1000u);
    EXPECT_LT(h.p50(), 1125u);
    EXPECT_EQ(h.percentile(100.0), 2000u);
}

TEST(Histogram, PercentileClampsToObservedRange)
{
    Histogram h;
    for (int i = 0; i < 100; ++i)
        h.sample(1000);
    // All mass in one wide bucket; clamping keeps answers at the
    // observed extremum instead of the bucket bound.
    EXPECT_EQ(h.p50(), 1000u);
    EXPECT_EQ(h.p99(), 1000u);
    EXPECT_EQ(h.mean(), 1000.0);
}

TEST(Histogram, MergeIsBucketWise)
{
    Histogram a, b;
    a.sample(1);
    a.sample(2);
    a.sample(3);
    b.sample(7);
    b.sample(100);
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_DOUBLE_EQ(a.sum(), 113.0);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 100u);
    EXPECT_EQ(a.p50(), 3u);
    // Merging an empty histogram is the identity.
    Histogram empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_EQ(a.max(), 100u);
}

TEST(Histogram, ResetReseedsExtrema)
{
    Histogram h;
    h.sample(500);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    h.sample(3);
    EXPECT_EQ(h.min(), 3u);
    EXPECT_EQ(h.max(), 3u);
    EXPECT_EQ(h.p50(), 3u);
}

TEST(StatGroup, DumpContainsHistogramSummary)
{
    StatGroup g("ctrl");
    Histogram h;
    h.sample(4);
    h.sample(6);
    g.addHistogram("readLatency", &h, "read latency");
    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("ctrl.readLatency"), std::string::npos);
    EXPECT_NE(oss.str().find("read latency"), std::string::npos);
}

TEST(StatGroup, VisitorSeesAllKindsFullyQualified)
{
    StatGroup parent("sys");
    StatGroup child("bank0");
    Counter c;
    Distribution d;
    Histogram h;
    c.inc(2);
    d.sample(1.0);
    h.sample(9);
    parent.addCounter("reads", &c);
    parent.addFormula("twice",
                      [&c] { return 2.0 * static_cast<double>(c.value()); });
    child.addDistribution("lat", &d);
    child.addHistogram("occ", &h);
    parent.addChild(&child);

    struct Names : StatVisitor
    {
        std::vector<std::string> seen;
        void onCounter(const std::string &n, const Counter &,
                       const std::string &) override
        {
            seen.push_back(n);
        }
        void onDistribution(const std::string &n, const Distribution &,
                            const std::string &) override
        {
            seen.push_back(n);
        }
        void onHistogram(const std::string &n, const Histogram &,
                         const std::string &) override
        {
            seen.push_back(n);
        }
        void onFormula(const std::string &n, double,
                       const std::string &) override
        {
            seen.push_back(n);
        }
    } v;
    parent.visit(v);
    ASSERT_EQ(v.seen.size(), 4u);
    EXPECT_EQ(v.seen[0], "sys.reads");
    EXPECT_EQ(v.seen[1], "sys.twice");
    EXPECT_EQ(v.seen[2], "sys.bank0.lat");
    EXPECT_EQ(v.seen[3], "sys.bank0.occ");
}

TEST(StatGroupDeath, DuplicateStatNamePanics)
{
    StatGroup g("g");
    Counter a, b;
    g.addCounter("reads", &a);
    EXPECT_DEATH(g.addCounter("reads", &b), "duplicate stat name");
    // The namespace is shared across stat kinds.
    Histogram h;
    EXPECT_DEATH(g.addHistogram("reads", &h), "duplicate stat name");
}

TEST(StatGroupDeath, DuplicateChildPanics)
{
    StatGroup parent("p");
    StatGroup child("c");
    parent.addChild(&child);
    EXPECT_DEATH(parent.addChild(&child), "registered twice");
    StatGroup other("c");
    EXPECT_DEATH(parent.addChild(&other), "duplicate child name");
}
