#!/bin/sh
# Bit-identity acceptance matrix for the snapshot/restore subsystem:
# every design x both engines x --channel-threads 1,2,4. Each cell
# runs straight with a mid-run checkpoint, restores that checkpoint in
# a fresh process, and requires
#   - stats JSONL:    byte-identical,
#   - span JSONL:     the restored spans are a byte-suffix of the
#                     straight run's (each minus its own meta line),
#   - command trace:  the restored command stream is a byte-suffix of
#                     the straight run's
# (a restored process only emits output from the restore point on, so
# suffix equality IS bit-identity over the re-simulated interval).
#
# Usage: checkpoint_matrix.sh <path-to-dasdram_run> [design...]
set -eu

RUN=$1
shift
DESIGNS=${*:-standard sas charm das das-fm fs}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# suffix_of FULL PART: PART equals the last $(wc -c PART) bytes of FULL.
suffix_of() {
    part_size=$(wc -c < "$2")
    tail -c "$part_size" "$1" | cmp -s - "$2"
}

fail=0
for design in $DESIGNS; do
    for engine in tick event; do
        for threads in 1 2 4; do
            tag="$design-$engine-t$threads"
            ckpt="$WORK/$tag.ckpt"
            for mode in cold warm; do
                if [ "$mode" = cold ]; then
                    snap="--checkpoint-out 150000:$ckpt"
                else
                    snap="--restore $ckpt"
                fi
                # shellcheck disable=SC2086  # $snap is two words
                "$RUN" --workload mcf --design "$design" \
                    --instructions 60000 --engine "$engine" \
                    --channel-threads "$threads" --trace-requests 1 \
                    $snap \
                    --stats-out "$WORK/$tag.$mode.stats.jsonl" \
                    --spans-out "$WORK/$tag.$mode.spans.jsonl" \
                    --trace-cmds "$WORK/$tag.$mode.cmds.txt" \
                    > /dev/null
            done
            ok=1
            cmp -s "$WORK/$tag.cold.stats.jsonl" \
                "$WORK/$tag.warm.stats.jsonl" || ok=0
            tail -n +2 "$WORK/$tag.cold.spans.jsonl" > "$WORK/cold.body"
            tail -n +2 "$WORK/$tag.warm.spans.jsonl" > "$WORK/warm.body"
            suffix_of "$WORK/cold.body" "$WORK/warm.body" || ok=0
            suffix_of "$WORK/$tag.cold.cmds.txt" \
                "$WORK/$tag.warm.cmds.txt" || ok=0
            if [ "$ok" = 1 ]; then
                echo "ok   $tag"
            else
                echo "FAIL $tag"
                fail=1
            fi
        done
    done
done
exit $fail
