/**
 * @file
 * Unit tests for the request-lifecycle tracing layer
 * (mem/request_trace.hh): deterministic sampling, sink fanout, the
 * schema-versioned span-JSONL writer, the exact telescoping of the
 * blame breakdown and the critical-path aggregator's group routing.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/stats_jsonl.hh"
#include "mem/request_trace.hh"

using namespace dasdram;

namespace
{

/** Sink that copies every span it sees. */
class RecordingSink : public RequestTraceSink
{
  public:
    void onSpan(const RequestSpan &s) override { spans.push_back(s); }
    std::vector<RequestSpan> spans;
};

/** Decision indices sampled by a fresh tracer over @p n decisions. */
std::set<std::uint64_t>
sampledSet(std::uint64_t seed, double rate, std::uint64_t n)
{
    RequestTracer tracer(seed, rate);
    std::set<std::uint64_t> out;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (auto span = tracer.maybeStart())
            out.insert(span->sampleId);
    }
    return out;
}

/** A fully-stamped span with exact component telescoping. */
RequestSpan
madeSpan()
{
    RequestSpan s;
    s.sampleId = 7;
    s.core = 1;
    s.addr = 0x1234;
    s.channel = 1;
    s.rank = 0;
    s.bank = 3;
    s.row = 42;
    s.rowClass = RowClass::Fast;
    s.location = ServiceLocation::FastLevel;
    s.issueTick = 100;
    s.missTick = 110;
    s.transDoneTick = 120;
    s.submitTick = 130;
    s.admitCycle = 10;
    s.readyCycle = 12;
    s.firstCmdCycle = 25;
    s.hasFirstCmd = true;
    s.hasAct = true;
    s.actCycle = 25;
    s.colCycle = 40;
    s.dataCycle = 55;
    s.waitBlock = 4;
    s.waitRefresh = 3;
    s.fawStall = 2;
    return s;
}

double
num(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    EXPECT_TRUE(f && f->isNumber()) << key;
    return f && f->isNumber() ? f->number : 0.0;
}

std::string
str(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    EXPECT_TRUE(f && f->isString()) << key;
    return f && f->isString() ? f->string : std::string();
}

/** Parse a stats-JSONL group dump into records keyed by name. */
std::map<std::string, JsonValue>
parseGroup(const StatGroup &group)
{
    std::ostringstream os;
    writeStatsJsonlGroup(os, group);
    std::map<std::string, JsonValue> recs;
    std::istringstream is(os.str());
    std::string line;
    while (std::getline(is, line)) {
        JsonValue v;
        std::string err;
        EXPECT_TRUE(parseJson(line, v, &err)) << line << ": " << err;
        recs.emplace(str(v, "name"), std::move(v));
    }
    return recs;
}

} // namespace

TEST(RequestTrace, RateZeroNeverSamplesAndRateOneAlwaysSamples)
{
    RequestTracer off(42, 0.0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(off.maybeStart(), nullptr);
    EXPECT_EQ(off.decisions(), 1000u);
    EXPECT_EQ(off.sampled(), 0u);

    RequestTracer all(42, 1.0);
    for (std::uint64_t i = 0; i < 1000; ++i) {
        auto span = all.maybeStart();
        ASSERT_NE(span, nullptr);
        // sampleId is the decision sequence number.
        EXPECT_EQ(span->sampleId, i);
    }
    EXPECT_EQ(all.sampled(), 1000u);
}

TEST(RequestTrace, SamplingIsDeterministicInSeedAndRate)
{
    auto a = sampledSet(/*seed=*/7, /*rate=*/0.3, 20'000);
    auto b = sampledSet(/*seed=*/7, /*rate=*/0.3, 20'000);
    EXPECT_EQ(a, b);

    // A different seed picks a (practically surely) different subset
    // of comparable size.
    auto c = sampledSet(/*seed=*/8, /*rate=*/0.3, 20'000);
    EXPECT_NE(a, c);
    EXPECT_GT(c.size(), 0u);
}

TEST(RequestTrace, SampleRateIsApproximatelyHonoured)
{
    const std::uint64_t n = 100'000;
    auto s = sampledSet(/*seed=*/42, /*rate=*/0.25, n);
    double frac = static_cast<double>(s.size()) / static_cast<double>(n);
    EXPECT_NEAR(frac, 0.25, 0.01);
}

TEST(RequestTrace, FanoutBroadcastsToEverySinkAndIgnoresNull)
{
    RecordingSink a, b;
    RequestSpanFanout fan;
    fan.addSink(&a);
    fan.addSink(nullptr); // must be ignored, not crash
    fan.addSink(&b);
    fan.onSpan(madeSpan());
    ASSERT_EQ(a.spans.size(), 1u);
    ASSERT_EQ(b.spans.size(), 1u);
    EXPECT_EQ(a.spans[0].sampleId, 7u);
    EXPECT_EQ(b.spans[0].addr, 0x1234u);
}

TEST(RequestTrace, BreakdownTelescopesExactly)
{
    RequestSpan s = madeSpan();
    // waitQueue is the residual: the five components must sum to the
    // total with no rounding (DESIGN.md §11).
    EXPECT_EQ(s.waitQueue() + s.waitBlock + s.waitRefresh +
                  s.rowLatency() + s.serviceLatency(),
              s.totalLatency());
    EXPECT_EQ(s.totalLatency(), 45u);
    EXPECT_EQ(std::string(s.outcome()), "miss");
    s.hasPre = true;
    EXPECT_EQ(std::string(s.outcome()), "conflict");
    s.forwarded = true;
    EXPECT_EQ(std::string(s.outcome()), "forwarded");
}

TEST(RequestTrace, JsonlWriterEmitsVersionedSchemaAndFullSpans)
{
    std::ostringstream os;
    SpanJsonlMeta meta;
    meta.workload = "wl";
    meta.design = "das";
    meta.label = "lbl";
    meta.seed = 99;
    meta.rate = 0.5;
    SpanJsonlWriter writer(os, meta);
    writer.onSpan(madeSpan());
    EXPECT_EQ(writer.spansWritten(), 1u);

    std::istringstream is(os.str());
    std::string line;
    ASSERT_TRUE(std::getline(is, line));
    JsonValue m;
    std::string err;
    ASSERT_TRUE(parseJson(line, m, &err)) << err;
    EXPECT_EQ(str(m, "type"), "meta");
    EXPECT_EQ(str(m, "schema"), kSpanJsonlSchema);
    EXPECT_EQ(static_cast<int>(num(m, "version")), kSpanJsonlVersion);
    EXPECT_EQ(str(m, "workload"), "wl");
    EXPECT_EQ(num(m, "rate"), 0.5);

    ASSERT_TRUE(std::getline(is, line));
    JsonValue v;
    ASSERT_TRUE(parseJson(line, v, &err)) << err;
    EXPECT_EQ(str(v, "type"), "span");
    EXPECT_EQ(str(v, "kind"), "read");
    EXPECT_EQ(str(v, "class"), "fast");
    EXPECT_EQ(str(v, "outcome"), "miss");
    EXPECT_EQ(num(v, "admit"), 10.0);
    EXPECT_EQ(num(v, "act"), 25.0);
    EXPECT_EQ(num(v, "col"), 40.0);
    EXPECT_EQ(num(v, "data"), 55.0);
    EXPECT_EQ(v.find("pre"), nullptr); // no conflict, no PRE field
    // The exported components reproduce the telescoping identity.
    EXPECT_EQ(num(v, "waitQueue") + num(v, "waitBlock") +
                  num(v, "waitRefresh") + num(v, "rowLat") +
                  num(v, "service"),
              num(v, "total"));
}

TEST(RequestTrace, AggregatorRoutesSpansToTheRightGroups)
{
    CriticalPathAggregator agg(/*num_tenants=*/2);

    RequestSpan forwarded = madeSpan();
    forwarded.forwarded = true;
    agg.onSpan(forwarded);

    RequestSpan write = madeSpan();
    write.isWrite = true;
    agg.onSpan(write);

    RequestSpan walk = madeSpan(); // FastLevel: classFast + tableWalks
    walk.isTableWalk = true;
    walk.core = -1;
    agg.onSpan(walk);

    RequestSpan hit = madeSpan(); // core 0 demand: classRowHit + tenant0
    hit.location = ServiceLocation::RowBuffer;
    hit.core = 0;
    agg.onSpan(hit);

    RequestSpan slow = madeSpan(); // core 1 demand: classSlow + tenant1
    slow.location = ServiceLocation::SlowLevel;
    slow.core = 1;
    agg.onSpan(slow);

    EXPECT_EQ(agg.spansSeen(), 5u);
    auto recs = parseGroup(const_cast<CriticalPathAggregator &>(agg)
                               .stats());
    EXPECT_EQ(num(recs.at("reqtrace.spans"), "value"), 5.0);
    EXPECT_EQ(num(recs.at("reqtrace.forwarded.total"), "count"), 1.0);
    EXPECT_EQ(num(recs.at("reqtrace.writes.total"), "count"), 1.0);
    EXPECT_EQ(num(recs.at("reqtrace.classFast.total"), "count"), 1.0);
    EXPECT_EQ(num(recs.at("reqtrace.tableWalks.total"), "count"), 1.0);
    EXPECT_EQ(num(recs.at("reqtrace.classRowHit.total"), "count"), 1.0);
    EXPECT_EQ(num(recs.at("reqtrace.classSlow.total"), "count"), 1.0);
    EXPECT_EQ(num(recs.at("reqtrace.tenant0.total"), "count"), 1.0);
    EXPECT_EQ(num(recs.at("reqtrace.tenant1.total"), "count"), 1.0);
    // Component means reconcile: each group's components sum to its
    // total mean (telescoping holds through aggregation).
    const JsonValue &t = recs.at("reqtrace.classRowHit.total");
    double parts = num(recs.at("reqtrace.classRowHit.waitQueue"), "mean") +
                   num(recs.at("reqtrace.classRowHit.waitBlock"), "mean") +
                   num(recs.at("reqtrace.classRowHit.waitRefresh"), "mean") +
                   num(recs.at("reqtrace.classRowHit.rowLatency"), "mean") +
                   num(recs.at("reqtrace.classRowHit.service"), "mean");
    EXPECT_DOUBLE_EQ(parts, num(t, "mean"));
}
