/**
 * @file
 * Tests for the ROB-window core model: IPC behaviour under ideal and
 * stalling memory, window limits and trace completion.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "cpu/core.hh"

using namespace dasdram;

namespace
{

/** Memory that answers every load after a fixed tick latency. */
struct FixedLatencyMemory
{
    Cycle latency = 0;
    Cycle now = 0;
    Core *core = nullptr; ///< set after the core is constructed
    std::vector<std::pair<Cycle, unsigned>> pending; ///< (ready, slot)

    Core::MemAccessFn
    fn()
    {
        return [this](Addr, bool, unsigned slot) {
            if (slot != Core::kNoSlot)
                pending.emplace_back(now + latency, slot);
        };
    }

    void
    tick(Cycle t)
    {
        now = t;
        for (std::size_t i = 0; i < pending.size();) {
            if (pending[i].first <= t) {
                core->completeLoad(pending[i].second,
                                   pending[i].first);
                pending[i] = pending.back();
                pending.pop_back();
            } else {
                ++i;
            }
        }
    }
};

std::vector<TraceEntry>
uniformTrace(std::size_t n, std::uint32_t gap, std::uint32_t stride = 64)
{
    std::vector<TraceEntry> t;
    for (std::size_t i = 0; i < n; ++i)
        t.push_back({gap, static_cast<Addr>(i) * stride, false});
    return t;
}

} // namespace

TEST(Core, IdealMemoryReachesIssueWidthIpc)
{
    // All non-memory work: IPC should approach the 4-wide limit.
    VectorTraceSource trace(uniformTrace(1000, 99));
    FixedLatencyMemory mem;
    Core core(0, {}, trace, mem.fn());
    mem.core = &core;
    for (Cycle t = 0; !core.finished() && t < 10'000'000; t += kCpuTick) {
        mem.tick(t);
        core.tick(t);
    }
    EXPECT_TRUE(core.finished());
    EXPECT_GT(core.ipc(), 3.5);
    EXPECT_EQ(core.retired(), 1000u * 100);
}

TEST(Core, SlowMemoryReducesIpc)
{
    VectorTraceSource fast_trace(uniformTrace(500, 3));
    VectorTraceSource slow_trace(uniformTrace(500, 3));
    FixedLatencyMemory fast_mem{cpuCyclesToTicks(4), 0, {}};
    FixedLatencyMemory slow_mem{cpuCyclesToTicks(400), 0, {}};
    Core fast_core(0, {}, fast_trace, fast_mem.fn());
    Core slow_core(1, {}, slow_trace, slow_mem.fn());
    fast_mem.core = &fast_core;
    slow_mem.core = &slow_core;
    for (Cycle t = 0; t < 4'000'000; t += kCpuTick) {
        fast_mem.tick(t);
        slow_mem.tick(t);
        if (!fast_core.finished())
            fast_core.tick(t);
        if (!slow_core.finished())
            slow_core.tick(t);
    }
    ASSERT_TRUE(fast_core.finished());
    ASSERT_TRUE(slow_core.finished());
    EXPECT_GT(fast_core.ipc(), 2.0 * slow_core.ipc());
}

TEST(Core, WindowAllowsMemoryLevelParallelism)
{
    // With a 192-entry window and gap 3, many loads overlap: the core
    // must finish far faster than serialized loads would.
    const Cycle lat = cpuCyclesToTicks(100);
    VectorTraceSource trace(uniformTrace(400, 3));
    FixedLatencyMemory mem{lat, 0, {}};
    Core core(0, {}, trace, mem.fn());
    mem.core = &core;
    Cycle t = 0;
    for (; !core.finished() && t < 40'000'000; t += kCpuTick) {
        mem.tick(t);
        core.tick(t);
    }
    ASSERT_TRUE(core.finished());
    // Serialized: 400 × 100 cycles = 40000 cycles. Overlapped must be
    // at least 5× better.
    EXPECT_LT(core.cycles(), 8000u);
}

TEST(Core, StoresDoNotBlockRetirement)
{
    std::vector<TraceEntry> entries;
    for (int i = 0; i < 200; ++i)
        entries.push_back({3, static_cast<Addr>(i) * 64, true});
    VectorTraceSource trace(entries);
    // Memory never answers: stores must still retire.
    Core core(0, {}, trace, [](Addr, bool, unsigned) {});
    for (Cycle t = 0; !core.finished() && t < 1'000'000; t += kCpuTick)
        core.tick(t);
    EXPECT_TRUE(core.finished());
    EXPECT_EQ(core.retired(), 200u * 4);
}

TEST(Core, UnansweredLoadStallsForever)
{
    VectorTraceSource trace(uniformTrace(10, 0));
    Core core(0, {}, trace, [](Addr, bool, unsigned) {});
    for (Cycle t = 0; t < 100000; t += kCpuTick)
        core.tick(t);
    EXPECT_FALSE(core.finished());
    EXPECT_EQ(core.retired(), 0u); // head load never completes
}

TEST(Core, ResetStatsClearsCountersOnly)
{
    VectorTraceSource trace(uniformTrace(1000, 10));
    FixedLatencyMemory mem;
    Core core(0, {}, trace, mem.fn());
    mem.core = &core;
    for (Cycle t = 0; t < 100 * kCpuTick; t += kCpuTick) {
        mem.tick(t);
        core.tick(t);
    }
    EXPECT_GT(core.retired(), 0u);
    core.resetStats();
    EXPECT_EQ(core.retired(), 0u);
    EXPECT_EQ(core.cycles(), 0u);
    // Still able to continue executing.
    for (Cycle t = 100 * kCpuTick; t < 200 * kCpuTick; t += kCpuTick) {
        mem.tick(t);
        core.tick(t);
    }
    EXPECT_GT(core.retired(), 0u);
}

TEST(VectorTraceSource, LoopsWhenRequested)
{
    VectorTraceSource t({{1, 64, false}}, /*loop=*/true);
    TraceEntry e;
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(t.next(e));
}

TEST(VectorTraceSource, ResetRestarts)
{
    VectorTraceSource t({{1, 64, false}, {2, 128, true}});
    TraceEntry e;
    ASSERT_TRUE(t.next(e));
    ASSERT_TRUE(t.next(e));
    ASSERT_FALSE(t.next(e));
    t.reset();
    ASSERT_TRUE(t.next(e));
    EXPECT_EQ(e.addr, 64u);
}
