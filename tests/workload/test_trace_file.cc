/**
 * @file
 * Tests for the streaming trace ingestion layer: the three on-disk
 * formats, malformed-input rejection with file:line context,
 * truncation and version checks on the binary format, deterministic
 * rewind, round-robin sharding, looping, and record/replay through
 * TraceRecorder. The committed sample traces under tests/data/ are
 * parsed too, so the documented formats stay honest.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "workload/trace_file.hh"
#include "workload/trace_format.hh"

using namespace dasdram;

namespace
{

/** Entries of @p src until exhaustion (bounded — looping sources would
 *  spin forever). */
std::vector<TraceEntry>
drain(TraceSource &src, std::size_t limit = 10000)
{
    std::vector<TraceEntry> out;
    TraceEntry e{};
    while (out.size() < limit && src.next(e))
        out.push_back(e);
    return out;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "dasdram_trace_" + name;
}

std::string
writeFile(const std::string &name, const std::string &content)
{
    std::string path = tempPath(name);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
    return path;
}

bool
sameEntries(const std::vector<TraceEntry> &a,
            const std::vector<TraceEntry> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].gap != b[i].gap || a[i].addr != b[i].addr ||
            a[i].isWrite != b[i].isWrite)
            return false;
    }
    return true;
}

FileTraceSource::Options
noLoop()
{
    FileTraceSource::Options opt;
    opt.loop = false;
    return opt;
}

} // namespace

TEST(TraceFormat, FromPath)
{
    EXPECT_EQ(formatFromPath("a/b.dastrace"), TraceFormat::Binary);
    EXPECT_EQ(formatFromPath("a/b.dastrace.gz"), TraceFormat::Binary);
    EXPECT_EQ(formatFromPath("a/b.ds3"), TraceFormat::Dramsim3);
    EXPECT_EQ(formatFromPath("a/b.dramsim"), TraceFormat::Dramsim3);
    EXPECT_EQ(formatFromPath("a/b.trace"), TraceFormat::Ramulator);
    EXPECT_EQ(formatFromPath("whatever"), TraceFormat::Ramulator);
}

TEST(TraceFormat, ParseNames)
{
    TraceFormat f = TraceFormat::Auto;
    EXPECT_TRUE(parseTraceFormat("ramulator", f));
    EXPECT_EQ(f, TraceFormat::Ramulator);
    EXPECT_TRUE(parseTraceFormat("dramsim3", f));
    EXPECT_EQ(f, TraceFormat::Dramsim3);
    EXPECT_TRUE(parseTraceFormat("binary", f));
    EXPECT_EQ(f, TraceFormat::Binary);
    EXPECT_TRUE(parseTraceFormat("auto", f));
    EXPECT_EQ(f, TraceFormat::Auto);
    EXPECT_FALSE(parseTraceFormat("bogus", f));
}

TEST(TraceFormat, BinaryHeaderRoundTrip)
{
    BinaryTraceHeader h;
    h.records = 1234;
    unsigned char buf[kBinaryHeaderBytes];
    encodeBinaryHeader(h, buf);

    BinaryTraceHeader back;
    std::string err;
    ASSERT_TRUE(decodeBinaryHeader(buf, back, err)) << err;
    EXPECT_EQ(back.magic, kBinaryTraceMagic);
    EXPECT_EQ(back.version, kBinaryTraceVersion);
    EXPECT_EQ(back.records, 1234u);

    buf[0] ^= 0xff; // bad magic
    EXPECT_FALSE(decodeBinaryHeader(buf, back, err));
    EXPECT_NE(err.find("magic"), std::string::npos);
}

TEST(TraceFormat, BinaryRecordRoundTrip)
{
    TraceEntry e{};
    e.gap = 77;
    e.addr = 0x123456789abcull;
    e.isWrite = true;
    unsigned char buf[kBinaryRecordBytes];
    encodeBinaryRecord(e, buf);
    TraceEntry back{};
    decodeBinaryRecord(buf, back);
    EXPECT_EQ(back.gap, 77u);
    EXPECT_EQ(back.addr, 0x123456789abcull);
    EXPECT_TRUE(back.isWrite);
}

TEST(TraceFile, RamulatorBasic)
{
    std::string path = writeFile("ram_basic.trace",
                                 "# a comment\n"
                                 "2 0x1000\n"
                                 "\n"
                                 "0 0x2000 0x3000\n"
                                 "5 4096\n");
    FileTraceSource src(path, noLoop());
    EXPECT_EQ(src.format(), TraceFormat::Ramulator);
    auto got = drain(src);
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got[0].gap, 2u);
    EXPECT_EQ(got[0].addr, 0x1000u);
    EXPECT_FALSE(got[0].isWrite);
    // The store column becomes a trailing zero-gap write.
    EXPECT_EQ(got[1].addr, 0x2000u);
    EXPECT_FALSE(got[1].isWrite);
    EXPECT_EQ(got[2].gap, 0u);
    EXPECT_EQ(got[2].addr, 0x3000u);
    EXPECT_TRUE(got[2].isWrite);
    EXPECT_EQ(got[3].addr, 4096u);
    EXPECT_EQ(src.recordsDelivered(), 4u);
}

TEST(TraceFile, RamulatorMalformedLineIsFatalWithLineNumber)
{
    std::string path = writeFile("ram_bad.trace",
                                 "1 0x10\n"
                                 "nonsense line\n");
    FileTraceSource src(path, noLoop());
    TraceEntry e{};
    ASSERT_TRUE(src.next(e));
    EXPECT_DEATH(src.next(e), ":2:");
}

TEST(TraceFile, Dramsim3CycleDeltasBecomeGaps)
{
    std::string path = writeFile("ds3_basic.ds3",
                                 "0x100 R 10\n"
                                 "0x200 WRITE 25\n"
                                 "0x300 READ 25\n");
    FileTraceSource src(path, noLoop());
    EXPECT_EQ(src.format(), TraceFormat::Dramsim3);
    auto got = drain(src);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].gap, 0u); // first line: no predecessor
    EXPECT_FALSE(got[0].isWrite);
    EXPECT_EQ(got[1].gap, 15u);
    EXPECT_TRUE(got[1].isWrite);
    EXPECT_EQ(got[2].gap, 0u);
    EXPECT_FALSE(got[2].isWrite);
}

TEST(TraceFile, Dramsim3MalformedOpIsFatal)
{
    std::string path = writeFile("ds3_bad.ds3", "0x100 X 10\n");
    FileTraceSource src(path, noLoop());
    TraceEntry e{};
    EXPECT_DEATH(src.next(e), ":1:.*bad op");
}

TEST(TraceFile, MissingFileIsFatal)
{
    EXPECT_DEATH(FileTraceSource("/nonexistent/path.trace"),
                 "cannot open trace");
}

TEST(TraceFile, BinaryWriteReadRoundTrip)
{
    std::string path = tempPath("roundtrip.dastrace");
    std::vector<TraceEntry> written;
    {
        BinaryTraceWriter w(path);
        for (unsigned i = 0; i < 300; ++i) {
            TraceEntry e{};
            e.gap = i % 7;
            e.addr = 0x1000ull * i;
            e.isWrite = (i % 3) == 0;
            w.write(e);
            written.push_back(e);
        }
        w.close();
        EXPECT_EQ(w.records(), 300u);
    }
    FileTraceSource src(path, noLoop());
    EXPECT_EQ(src.format(), TraceFormat::Binary);
    EXPECT_TRUE(sameEntries(drain(src), written));
}

TEST(TraceFile, BinaryVersionMismatchIsFatal)
{
    BinaryTraceHeader h;
    h.version = kBinaryTraceVersion + 1;
    h.records = 0;
    unsigned char buf[kBinaryHeaderBytes];
    encodeBinaryHeader(h, buf);
    std::string path =
        writeFile("badver.dastrace",
                  std::string(reinterpret_cast<char *>(buf),
                              kBinaryHeaderBytes));
    EXPECT_DEATH(FileTraceSource(path, noLoop()),
                 "binary-trace version .* is newer than this build "
                 "understands");
}

TEST(TraceFile, BinaryTruncationIsFatal)
{
    std::string path = tempPath("trunc.dastrace");
    {
        BinaryTraceWriter w(path);
        for (unsigned i = 0; i < 10; ++i) {
            TraceEntry e{};
            e.addr = i;
            w.write(e);
        }
        w.close();
    }
    // Chop the last record in half: the header still promises 10.
    std::ifstream is(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)),
                      std::istreambuf_iterator<char>());
    is.close();
    bytes.resize(bytes.size() - kBinaryRecordBytes / 2);
    std::string chopped = writeFile("trunc2.dastrace", bytes);

    FileTraceSource src(chopped, noLoop());
    TraceEntry e{};
    EXPECT_DEATH(while (src.next(e)) {}, "truncated");
}

TEST(TraceFile, RewindIsDeterministic)
{
    std::string path = writeFile("rewind.trace",
                                 "1 0x100\n"
                                 "2 0x200 0x300\n"
                                 "3 0x400\n");
    FileTraceSource src(path, noLoop());
    auto first = drain(src);
    ASSERT_EQ(first.size(), 4u);
    src.reset();
    EXPECT_TRUE(sameEntries(drain(src), first));
    src.reset();
    EXPECT_TRUE(sameEntries(drain(src), first));
}

TEST(TraceFile, RoundRobinShardsPartitionTheRecords)
{
    std::string content;
    for (unsigned i = 0; i < 9; ++i)
        content += std::to_string(i) + " " + std::to_string(0x1000 * i) +
                   "\n";
    std::string path = writeFile("shard.trace", content);

    FileTraceSource whole(path, noLoop());
    auto all = drain(whole);
    ASSERT_EQ(all.size(), 9u);

    std::vector<TraceEntry> merged(all.size());
    for (unsigned s = 0; s < 3; ++s) {
        FileTraceSource::Options opt = noLoop();
        opt.shard = s;
        opt.shardCount = 3;
        FileTraceSource part(path, opt);
        auto got = drain(part);
        ASSERT_EQ(got.size(), 3u) << "shard " << s;
        for (std::size_t i = 0; i < got.size(); ++i)
            merged[i * 3 + s] = got[i];
    }
    EXPECT_TRUE(sameEntries(merged, all));
}

TEST(TraceFile, LoopModeRewindsAtEof)
{
    std::string path = writeFile("loop.trace",
                                 "1 0x100\n"
                                 "2 0x200\n");
    FileTraceSource src(path); // loop defaults on
    TraceEntry e{};
    for (int i = 0; i < 7; ++i)
        ASSERT_TRUE(src.next(e));
    EXPECT_EQ(src.recordsDelivered(), 7u);
    EXPECT_GE(src.passes(), 3u);
    // 7 % 2 == 1: the last record seen is the first of the file.
    EXPECT_EQ(e.addr, 0x100u);
}

TEST(TraceFile, RecorderCapturesAndReplayWipesOnReset)
{
    std::string src_path = writeFile("rec_src.trace",
                                     "1 0x100\n"
                                     "2 0x200 0x300\n");
    std::string rec_path = tempPath("rec_out.dastrace");

    FileTraceSource inner(src_path, noLoop());
    TraceRecorder rec(inner, rec_path);

    // A profiling-style pre-pass followed by reset() must leave no
    // records behind — only the final pass lands in the file.
    auto pre = drain(rec);
    ASSERT_EQ(pre.size(), 3u);
    rec.reset();
    auto final_pass = drain(rec);
    rec.close();
    EXPECT_EQ(rec.recorded(), 3u);

    FileTraceSource replay(rec_path, noLoop());
    EXPECT_TRUE(sameEntries(drain(replay), final_pass));
}

TEST(TraceFile, CommittedSampleTracesParse)
{
    std::string dir = DASDRAM_TEST_DATA_DIR;
    {
        FileTraceSource src(dir + "/sample_ramulator.trace", noLoop());
        EXPECT_EQ(src.format(), TraceFormat::Ramulator);
        EXPECT_GE(drain(src).size(), 8u);
    }
    {
        FileTraceSource src(dir + "/sample_dramsim3.ds3", noLoop());
        EXPECT_EQ(src.format(), TraceFormat::Dramsim3);
        EXPECT_GE(drain(src).size(), 8u);
    }
    {
        FileTraceSource src(dir + "/sample_binary.dastrace", noLoop());
        EXPECT_EQ(src.format(), TraceFormat::Binary);
        auto got = drain(src);
        ASSERT_EQ(got.size(), 10u);
        EXPECT_EQ(got[0].gap, 4u);
        EXPECT_EQ(got[0].addr, 0x10000u);
        EXPECT_TRUE(got[3].isWrite);
    }
}

TEST(TraceFile, GzipTransparentDecompression)
{
    if (!traceGzipSupported())
        GTEST_SKIP() << "built without zlib";
    std::string dir = DASDRAM_TEST_DATA_DIR;
    FileTraceSource plain(dir + "/sample_ramulator.trace", noLoop());
    FileTraceSource gz(dir + "/sample_ramulator.trace.gz", noLoop());
    auto a = drain(plain);
    auto b = drain(gz);
    EXPECT_TRUE(sameEntries(a, b));
    EXPECT_FALSE(a.empty());

    // Rewind determinism holds through the decompressor too.
    gz.reset();
    EXPECT_TRUE(sameEntries(drain(gz), b));
}
