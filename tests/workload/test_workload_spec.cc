/**
 * @file
 * Tests for the unified workload-spec grammar (workload_spec.hh):
 * legacy spellings, the prefixed forms, file-element options, mixes,
 * the display-name normalization the sweep seeds depend on, and the
 * synthetic per-core stream identity of buildTraces().
 */

#include <gtest/gtest.h>

#include "workload/spec_profiles.hh"
#include "workload/synth_trace.hh"
#include "workload/workload_spec.hh"

using namespace dasdram;

namespace
{

std::string
parseError(const std::string &text)
{
    WorkloadSpec w;
    std::string err;
    EXPECT_FALSE(WorkloadSpec::tryParse(text, w, &err)) << text;
    return err;
}

} // namespace

TEST(WorkloadSpec, LegacyBareBenchmarkName)
{
    WorkloadSpec w = WorkloadSpec::parse("mcf");
    EXPECT_EQ(w.name, "mcf");
    ASSERT_EQ(w.numCores(), 1u);
    EXPECT_EQ(w.parts[0].profile, "mcf");
    EXPECT_FALSE(w.parts[0].isFile());
    EXPECT_EQ(w.parts[0].label(), "mcf");
}

TEST(WorkloadSpec, LegacyMixName)
{
    WorkloadSpec w = WorkloadSpec::parse("M3");
    EXPECT_EQ(w.name, "M3");
    EXPECT_EQ(w.numCores(), 4u);
    for (const WorkloadPart &p : w.parts)
        EXPECT_NE(findSpecProfile(p.profile), nullptr) << p.profile;
}

TEST(WorkloadSpec, LegacyCommaList)
{
    WorkloadSpec w = WorkloadSpec::parse("mcf,lbm");
    EXPECT_EQ(w.name, "mcf,lbm");
    ASSERT_EQ(w.numCores(), 2u);
    EXPECT_EQ(w.parts[0].profile, "mcf");
    EXPECT_EQ(w.parts[1].profile, "lbm");
}

TEST(WorkloadSpec, SpecPrefixNormalizesToLegacyName)
{
    // The display name drives SweepRunner::pointSeed and every output
    // filename: prefixed spellings must collapse onto the legacy name
    // so existing results and seeds are reproducible.
    EXPECT_EQ(WorkloadSpec::parse("spec:mcf").name, "mcf");
    EXPECT_EQ(WorkloadSpec::parse("synth:mcf").name, "mcf");
    EXPECT_EQ(WorkloadSpec::parse("spec:M2").name, "M2");
    EXPECT_EQ(WorkloadSpec::parse("mix:spec:mcf,spec:lbm").name,
              "mcf,lbm");
    EXPECT_EQ(WorkloadSpec::parse("mix:mcf,lbm").name, "mcf,lbm");
}

TEST(WorkloadSpec, SpecMixExpandsToFourCores)
{
    WorkloadSpec legacy = WorkloadSpec::parse("M2");
    WorkloadSpec prefixed = WorkloadSpec::parse("spec:M2");
    ASSERT_EQ(prefixed.numCores(), legacy.numCores());
    for (unsigned i = 0; i < legacy.numCores(); ++i)
        EXPECT_EQ(prefixed.parts[i].profile, legacy.parts[i].profile);
}

TEST(WorkloadSpec, FileElementDefaults)
{
    WorkloadSpec w = WorkloadSpec::parse("file:/tmp/foo.trace");
    // File specs keep the original text as the display name.
    EXPECT_EQ(w.name, "file:/tmp/foo.trace");
    ASSERT_EQ(w.numCores(), 1u);
    const WorkloadPart &p = w.parts[0];
    EXPECT_TRUE(p.isFile());
    EXPECT_EQ(p.path, "/tmp/foo.trace");
    EXPECT_EQ(p.format, TraceFormat::Auto);
    EXPECT_TRUE(p.loop);
    EXPECT_EQ(p.shard, 0u);
    EXPECT_EQ(p.shardCount, 1u);
}

TEST(WorkloadSpec, FileElementOptions)
{
    WorkloadSpec w = WorkloadSpec::parse(
        "file:/tmp/foo.trace:format=dramsim3:loop=0:cores=2");
    ASSERT_EQ(w.numCores(), 2u);
    for (unsigned i = 0; i < 2; ++i) {
        const WorkloadPart &p = w.parts[i];
        EXPECT_EQ(p.path, "/tmp/foo.trace");
        EXPECT_EQ(p.format, TraceFormat::Dramsim3);
        EXPECT_FALSE(p.loop);
        EXPECT_EQ(p.shard, i);
        EXPECT_EQ(p.shardCount, 2u);
    }
}

TEST(WorkloadSpec, FilePathMayContainColons)
{
    // Everything up to the first key=value token is the path.
    WorkloadSpec w = WorkloadSpec::parse("file:dir:odd.trace:loop=1");
    ASSERT_EQ(w.numCores(), 1u);
    EXPECT_EQ(w.parts[0].path, "dir:odd.trace");
    EXPECT_TRUE(w.parts[0].loop);
}

TEST(WorkloadSpec, MixOfFilesAndProfiles)
{
    WorkloadSpec w =
        WorkloadSpec::parse("mix:spec:mcf,file:/tmp/a.trace");
    ASSERT_EQ(w.numCores(), 2u);
    EXPECT_EQ(w.parts[0].profile, "mcf");
    EXPECT_TRUE(w.parts[1].isFile());
}

TEST(WorkloadSpec, RejectsMalformedSpecs)
{
    EXPECT_NE(parseError("").find("empty"), std::string::npos);
    EXPECT_NE(parseError("nosuchbench").find("nosuchbench"),
              std::string::npos);
    EXPECT_NE(parseError("M9").find("M9"), std::string::npos);
    EXPECT_NE(parseError("spec:nosuch").find("nosuch"),
              std::string::npos);
    // A nested mix is not a per-core element.
    EXPECT_FALSE(parseError("mix:mix:mcf,lbm").empty());
    // File options are validated at parse time.
    EXPECT_FALSE(parseError("file:x.trace:format=bogus").empty());
    EXPECT_FALSE(parseError("file:x.trace:loop=2").empty());
    EXPECT_FALSE(parseError("file:x.trace:cores=0").empty());
    EXPECT_FALSE(parseError("file:").empty());
}

TEST(WorkloadSpec, ParseFatalsOnBadSpec)
{
    EXPECT_DEATH(WorkloadSpec::parse("nosuchbench"), "nosuchbench");
}

TEST(WorkloadSpec, MixIndexOutOfRangeFatals)
{
    EXPECT_DEATH(WorkloadSpec::mix(99), "out of range");
}

TEST(WorkloadSpec, BuildTracesKeepsSyntheticStreamIdentity)
{
    // The per-(seed, core) stream identity is load-bearing: it is what
    // keeps the golden stats and every recorded sweep reproducible.
    const std::uint64_t seed = 42, row = 8192, line = 64;
    WorkloadSpec w = WorkloadSpec::parse("mcf,lbm");
    auto traces = buildTraces(w, seed, row, line);
    ASSERT_EQ(traces.size(), 2u);

    for (std::size_t i = 0; i < traces.size(); ++i) {
        SyntheticTrace ref(specProfile(w.parts[i].profile),
                           seed * 1000003 + i * 7919 + 1, row, line);
        for (int n = 0; n < 200; ++n) {
            TraceEntry a{}, b{};
            ASSERT_TRUE(traces[i]->next(a));
            ASSERT_TRUE(ref.next(b));
            EXPECT_EQ(a.gap, b.gap);
            EXPECT_EQ(a.addr, b.addr);
            EXPECT_EQ(a.isWrite, b.isWrite);
        }
    }
}

TEST(WorkloadSpec, SingleAndMixFactories)
{
    WorkloadSpec s = WorkloadSpec::single("mcf");
    EXPECT_EQ(s.name, "mcf");
    EXPECT_EQ(s.numCores(), 1u);

    WorkloadSpec m = WorkloadSpec::mix(0);
    EXPECT_EQ(m.name, "M1");
    EXPECT_EQ(m.numCores(), 4u);
}
