/**
 * @file
 * Tests for the synthetic trace generator: determinism, address bounds,
 * calibration properties (memory ratio, write fraction, locality).
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "workload/spec_profiles.hh"
#include "workload/synth_trace.hh"

using namespace dasdram;

TEST(SynthTrace, DeterministicForSameSeed)
{
    const BenchmarkProfile &p = specProfile("mcf");
    SyntheticTrace a(p, 99), b(p, 99);
    TraceEntry ea, eb;
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(a.next(ea));
        ASSERT_TRUE(b.next(eb));
        ASSERT_EQ(ea.addr, eb.addr);
        ASSERT_EQ(ea.gap, eb.gap);
        ASSERT_EQ(ea.isWrite, eb.isWrite);
    }
}

TEST(SynthTrace, ResetReproducesStream)
{
    const BenchmarkProfile &p = specProfile("omnetpp");
    SyntheticTrace t(p, 5);
    std::vector<Addr> first;
    TraceEntry e;
    for (int i = 0; i < 1000; ++i) {
        t.next(e);
        first.push_back(e.addr);
    }
    t.reset();
    for (int i = 0; i < 1000; ++i) {
        t.next(e);
        ASSERT_EQ(e.addr, first[i]) << "at " << i;
    }
}

TEST(SynthTrace, DifferentSeedsDiffer)
{
    const BenchmarkProfile &p = specProfile("mcf");
    SyntheticTrace a(p, 1), b(p, 2);
    TraceEntry ea, eb;
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        a.next(ea);
        b.next(eb);
        same += (ea.addr == eb.addr) ? 1 : 0;
    }
    EXPECT_LT(same, 100);
}

class TraceProfileSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(TraceProfileSweep, AddressesWithinFootprint)
{
    const BenchmarkProfile &p = specProfile(GetParam());
    SyntheticTrace t(p, 3);
    Addr limit = static_cast<Addr>(p.footprintMiB * MiB);
    TraceEntry e;
    for (int i = 0; i < 20000; ++i) {
        t.next(e);
        ASSERT_LT(e.addr, limit);
    }
}

TEST_P(TraceProfileSweep, MemRatioMatchesProfile)
{
    const BenchmarkProfile &p = specProfile(GetParam());
    SyntheticTrace t(p, 3);
    TraceEntry e;
    std::uint64_t mem = 0, inst = 0;
    for (int i = 0; i < 50000; ++i) {
        t.next(e);
        ++mem;
        inst += e.gap + 1;
    }
    double ratio = static_cast<double>(mem) / static_cast<double>(inst);
    EXPECT_NEAR(ratio, p.memRatio, 0.05 * p.memRatio + 0.01);
}

TEST_P(TraceProfileSweep, WriteFractionMatchesProfile)
{
    const BenchmarkProfile &p = specProfile(GetParam());
    SyntheticTrace t(p, 3);
    TraceEntry e;
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        t.next(e);
        writes += e.isWrite ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(writes) / n, p.writeFraction, 0.02);
}

TEST_P(TraceProfileSweep, ShortTermReuseVisible)
{
    // With reuseProb ~0.9+, a large share of accesses repeat one of the
    // recent lines.
    const BenchmarkProfile &p = specProfile(GetParam());
    SyntheticTrace t(p, 3);
    TraceEntry e;
    std::vector<Addr> recent;
    int reuse_hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        t.next(e);
        Addr line = e.addr / 64;
        for (Addr r : recent)
            if (r == line) {
                ++reuse_hits;
                break;
            }
        recent.push_back(line);
        if (recent.size() > 16)
            recent.erase(recent.begin());
    }
    EXPECT_GT(static_cast<double>(reuse_hits) / n, p.reuseProb * 0.7);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, TraceProfileSweep,
                         ::testing::ValuesIn(specBenchmarks()));

TEST(SynthTrace, WorkingSetConcentration)
{
    // Accesses concentrate on a resident working set far smaller than
    // the footprint — the property dynamic migration exploits.
    const BenchmarkProfile &p = specProfile("mcf");
    SyntheticTrace t(p, 7);
    TraceEntry e;
    std::unordered_map<std::uint64_t, int> page_counts;
    const int n = 300000;
    for (int i = 0; i < n; ++i) {
        t.next(e);
        ++page_counts[e.addr / 8192];
    }
    double footprint_pages = p.footprintMiB * MiB / 8192.0;
    EXPECT_LT(static_cast<double>(page_counts.size()),
              0.3 * footprint_pages);
    EXPECT_GT(static_cast<double>(n) /
                  static_cast<double>(page_counts.size()),
              5.0); // mean accesses per touched page
}

TEST(SynthTrace, PhaseAdvancesWithInstructions)
{
    BenchmarkProfile p = specProfile("milc");
    p.phaseInstructions = 10000;
    SyntheticTrace t(p, 11);
    TraceEntry e;
    while (t.generatedInstructions() < 100000)
        t.next(e);
    EXPECT_GE(t.phaseCount(), 5u);
}

TEST(SynthTrace, MixValidationIsFatal)
{
    BenchmarkProfile p = specProfile("mcf");
    p.pStream = 0.9; // breaks the sum
    EXPECT_DEATH(SyntheticTrace(p, 1), "must sum to 1");
}

TEST(SpecProfiles, TableTwoContents)
{
    EXPECT_EQ(specBenchmarks().size(), 10u);
    EXPECT_EQ(specMixes().size(), 8u);
    for (const auto &mix : specMixes()) {
        EXPECT_EQ(mix.size(), 4u);
        for (const auto &b : mix)
            EXPECT_NO_FATAL_FAILURE(specProfile(b));
    }
    // Spot-check Table 2's M8 = lbm, libquantum, mcf, soplex.
    const auto &m8 = specMixes()[7];
    EXPECT_EQ(m8[0], "lbm");
    EXPECT_EQ(m8[1], "libquantum");
    EXPECT_EQ(m8[2], "mcf");
    EXPECT_EQ(m8[3], "soplex");
    EXPECT_EQ(mixName(7), "M8");
}

TEST(SpecProfiles, UnknownNameIsFatal)
{
    EXPECT_DEATH(specProfile("nonexistent"), "unknown");
}

TEST(SpecProfiles, DensityBudgetRespectsFastLevel)
{
    // Simultaneously-hot rows per migration group (ring + hot set) must
    // stay near or below the 4 fast slots of a 32-row group at ratio
    // 1/8 — the calibration invariant behind Figure 7.
    for (const std::string &name : specBenchmarks()) {
        const BenchmarkProfile &p = specProfile(name);
        double active = std::min(
            p.footprintMiB * MiB / 8192.0,
            p.activeRegionFactor *
                static_cast<double>(p.workingSetPages));
        double density =
            32.0 *
            (static_cast<double>(p.workingSetPages) +
             p.hotFraction * active) /
            active;
        EXPECT_LE(density, 4.6) << name;
    }
}
