/**
 * @file
 * Tests for the asymmetric subarray layout and migration-group math.
 */

#include <gtest/gtest.h>

#include "core/subarray_layout.hh"

using namespace dasdram;

TEST(Layout, Table1Defaults)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    EXPECT_EQ(l.groupSize(), 32u);
    EXPECT_EQ(l.fastSlotsPerGroup(), 4u);
    EXPECT_DOUBLE_EQ(l.fastCapacityFraction(), 0.125);
    EXPECT_EQ(l.groupsPerBank(), g.rowsPerBank / 32);
    EXPECT_EQ(l.totalGroups(), l.groupsPerBank() * g.totalBanks());
}

TEST(Layout, ClassifyFollowsSlots)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    for (std::uint64_t row = 0; row < 64; ++row) {
        RowClass expect = (row % 32) < 4 ? RowClass::Fast : RowClass::Slow;
        EXPECT_EQ(l.classify(0, 0, 0, row), expect) << row;
    }
}

TEST(Layout, FastFractionOverWholeBank)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    std::uint64_t fast = 0;
    for (std::uint64_t row = 0; row < g.rowsPerBank; ++row)
        fast += l.classify(0, 0, 0, row) == RowClass::Fast ? 1 : 0;
    EXPECT_EQ(fast, g.rowsPerBank / 8);
}

class LayoutRatioSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LayoutRatioSweep, RatioRealised)
{
    DramGeometry g;
    LayoutConfig cfg;
    cfg.fastRatioDenom = GetParam();
    AsymmetricLayout l(g, cfg);
    EXPECT_DOUBLE_EQ(l.fastCapacityFraction(), 1.0 / GetParam());
    EXPECT_EQ(l.fastSlotsPerGroup(), 32u / GetParam());
}

INSTANTIATE_TEST_SUITE_P(Ratios, LayoutRatioSweep,
                         ::testing::Values(4u, 8u, 16u, 32u));

TEST(Layout, GroupArithmetic)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    EXPECT_EQ(l.groupOf(0), 0u);
    EXPECT_EQ(l.groupOf(31), 0u);
    EXPECT_EQ(l.groupOf(32), 1u);
    EXPECT_EQ(l.groupBaseRow(3), 96u);
    EXPECT_EQ(l.slotOf(37), 5u);
    EXPECT_TRUE(l.slotIsFast(3));
    EXPECT_FALSE(l.slotIsFast(4));
}

TEST(Layout, GlobalGroupsNeverSpanBanks)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    // Last row of bank 0 and first row of bank 1 are different groups.
    GlobalRowId last_b0 = makeGlobalRowId(g, 0, 0, 0, g.rowsPerBank - 1);
    GlobalRowId first_b1 = makeGlobalRowId(g, 0, 0, 1, 0);
    EXPECT_NE(l.globalGroupOf(last_b0), l.globalGroupOf(first_b1));
    EXPECT_EQ(first_b1 % 32, 0u);
}

TEST(Layout, GroupBoundaryRows)
{
    // Off-by-one hunting at migration-group seams: the last slot of a
    // group is slow, the first slot of the next group is fast, and the
    // two sides of the seam index different groups.
    DramGeometry g;
    AsymmetricLayout l(g, {});
    unsigned gs = l.groupSize();
    for (std::uint64_t k : {std::uint64_t{1}, std::uint64_t{2},
                            g.rowsPerBank / gs - 1}) {
        std::uint64_t seam = k * gs;
        EXPECT_EQ(l.groupOf(seam - 1), k - 1) << "seam " << seam;
        EXPECT_EQ(l.groupOf(seam), k);
        EXPECT_EQ(l.slotOf(seam - 1), gs - 1);
        EXPECT_EQ(l.slotOf(seam), 0u);
        EXPECT_FALSE(l.slotIsFast(l.slotOf(seam - 1)));
        EXPECT_TRUE(l.slotIsFast(l.slotOf(seam)));
        EXPECT_EQ(l.groupBaseRow(l.groupOf(seam)), seam);
    }
}

TEST(Layout, LastGroupOfBankIsComplete)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    unsigned gs = l.groupSize();
    std::uint64_t last_row = g.rowsPerBank - 1;
    EXPECT_EQ(l.groupOf(last_row), l.groupsPerBank() - 1);
    EXPECT_EQ(l.slotOf(last_row), gs - 1);
    // Last global row sits in the last global group.
    GlobalRowId last = makeGlobalRowId(g, g.channels - 1,
                                       g.ranksPerChannel - 1,
                                       g.banksPerRank - 1, last_row);
    EXPECT_EQ(l.globalGroupOf(last), l.totalGroups() - 1);
    // One row past a group base belongs to the same group; the row
    // before the base does not.
    std::uint64_t base = l.groupBaseRow(l.groupsPerBank() - 1);
    EXPECT_EQ(l.groupOf(base + 1), l.groupsPerBank() - 1);
    EXPECT_EQ(l.groupOf(base - 1), l.groupsPerBank() - 2);
}

TEST(Layout, ClassifyMatchesSlotArithmeticAtEdges)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    unsigned gs = l.groupSize();
    unsigned fast = l.fastSlotsPerGroup();
    const std::uint64_t rows[] = {0, fast - 1, fast, gs - 1, gs,
                                  g.rowsPerBank - gs,
                                  g.rowsPerBank - gs + fast - 1,
                                  g.rowsPerBank - gs + fast,
                                  g.rowsPerBank - 1};
    for (unsigned ch : {0u, g.channels - 1}) {
        for (unsigned ba : {0u, g.banksPerRank - 1}) {
            for (std::uint64_t row : rows) {
                RowClass expect = l.slotIsFast(l.slotOf(row))
                                      ? RowClass::Fast
                                      : RowClass::Slow;
                EXPECT_EQ(l.classify(ch, 0, ba, row), expect)
                    << "ch" << ch << " ba" << ba << " row " << row;
            }
        }
    }
}

TEST(LayoutDeathTest, IndivisibleGroupFatal)
{
    DramGeometry g;
    LayoutConfig cfg;
    cfg.groupSize = 24; // not divisible by 8... it is by 8; use denom 7
    cfg.fastRatioDenom = 7;
    EXPECT_DEATH(AsymmetricLayout(g, cfg), "not divisible");
}
