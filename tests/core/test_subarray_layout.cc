/**
 * @file
 * Tests for the asymmetric subarray layout and migration-group math.
 */

#include <gtest/gtest.h>

#include "core/subarray_layout.hh"

using namespace dasdram;

TEST(Layout, Table1Defaults)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    EXPECT_EQ(l.groupSize(), 32u);
    EXPECT_EQ(l.fastSlotsPerGroup(), 4u);
    EXPECT_DOUBLE_EQ(l.fastCapacityFraction(), 0.125);
    EXPECT_EQ(l.groupsPerBank(), g.rowsPerBank / 32);
    EXPECT_EQ(l.totalGroups(), l.groupsPerBank() * g.totalBanks());
}

TEST(Layout, ClassifyFollowsSlots)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    for (std::uint64_t row = 0; row < 64; ++row) {
        RowClass expect = (row % 32) < 4 ? RowClass::Fast : RowClass::Slow;
        EXPECT_EQ(l.classify(0, 0, 0, row), expect) << row;
    }
}

TEST(Layout, FastFractionOverWholeBank)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    std::uint64_t fast = 0;
    for (std::uint64_t row = 0; row < g.rowsPerBank; ++row)
        fast += l.classify(0, 0, 0, row) == RowClass::Fast ? 1 : 0;
    EXPECT_EQ(fast, g.rowsPerBank / 8);
}

class LayoutRatioSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LayoutRatioSweep, RatioRealised)
{
    DramGeometry g;
    LayoutConfig cfg;
    cfg.fastRatioDenom = GetParam();
    AsymmetricLayout l(g, cfg);
    EXPECT_DOUBLE_EQ(l.fastCapacityFraction(), 1.0 / GetParam());
    EXPECT_EQ(l.fastSlotsPerGroup(), 32u / GetParam());
}

INSTANTIATE_TEST_SUITE_P(Ratios, LayoutRatioSweep,
                         ::testing::Values(4u, 8u, 16u, 32u));

TEST(Layout, GroupArithmetic)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    EXPECT_EQ(l.groupOf(0), 0u);
    EXPECT_EQ(l.groupOf(31), 0u);
    EXPECT_EQ(l.groupOf(32), 1u);
    EXPECT_EQ(l.groupBaseRow(3), 96u);
    EXPECT_EQ(l.slotOf(37), 5u);
    EXPECT_TRUE(l.slotIsFast(3));
    EXPECT_FALSE(l.slotIsFast(4));
}

TEST(Layout, GlobalGroupsNeverSpanBanks)
{
    DramGeometry g;
    AsymmetricLayout l(g, {});
    // Last row of bank 0 and first row of bank 1 are different groups.
    GlobalRowId last_b0 = makeGlobalRowId(g, 0, 0, 0, g.rowsPerBank - 1);
    GlobalRowId first_b1 = makeGlobalRowId(g, 0, 0, 1, 0);
    EXPECT_NE(l.globalGroupOf(last_b0), l.globalGroupOf(first_b1));
    EXPECT_EQ(first_b1 % 32, 0u);
}

TEST(LayoutDeathTest, IndivisibleGroupFatal)
{
    DramGeometry g;
    LayoutConfig cfg;
    cfg.groupSize = 24; // not divisible by 8... it is by 8; use denom 7
    cfg.fastRatioDenom = 7;
    EXPECT_DEATH(AsymmetricLayout(g, cfg), "not divisible");
}
