/**
 * @file
 * Tests for the DAS manager: translation timing paths, promotion on
 * slow accesses, swap execution and the design-mode switches.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/das_manager.hh"
#include "core/designs.hh"

using namespace dasdram;

namespace
{

struct ManagerHarness
{
    explicit ManagerHarness(DasConfig cfg = {})
        : geom(), timing(ddr3_1600Timing()), layout(geom, {}),
          dram(geom, timing, layout),
          caches(1,
                 HierarchyConfig{{1 * KiB, 2, 64},
                                 {4 * KiB, 4, 64},
                                 {16 * KiB, 8, 64},
                                 4,
                                 12,
                                 20}),
          mgr((cfg.mode = cfg.mode, dram), &caches, layout, cfg)
    {
        mgr.setCompletionHook(
            [this](const Continuation &, Cycle at) { done = at; });
    }

    /** Issue an access and run until it completes. */
    Cycle
    accessAndWait(Addr addr, bool write = false)
    {
        done = kCycleMax;
        mgr.access(addr, write, 0, Continuation::coreLoad(0, 0), now);
        for (int i = 0; i < 200000 && done == kCycleMax; ++i) {
            now += kMemTick;
            mgr.tick(now);
            dram.tick(now);
        }
        return done;
    }

    void
    run(Cycle ticks)
    {
        Cycle until = now + ticks;
        while (now < until) {
            now += kMemTick;
            mgr.tick(now);
            dram.tick(now);
        }
    }

    DramGeometry geom;
    DramTiming timing;
    AsymmetricLayout layout;
    DramSystem dram;
    CacheHierarchy caches;
    DasManager mgr;
    Cycle now = 0;
    Cycle done = kCycleMax; ///< last completion delivered to the hook
};

/** Address whose logical row is bank-local @p row of (ch0, ra0, ba0). */
Addr
rowAddr(const DramSystem &dram, std::uint64_t row,
        std::uint64_t column = 0)
{
    DramLoc loc{0, 0, 0, row, column};
    return dram.mapper().encode(loc);
}

} // namespace

TEST(DasManager, SlowAccessTriggersPromotion)
{
    ManagerHarness h;
    Addr slow_addr = rowAddr(h.dram, 10); // slot 10: slow
    EXPECT_FALSE(h.mgr.table().isFast(h.dram.decode(slow_addr).row));
    Cycle done = h.accessAndWait(slow_addr);
    ASSERT_NE(done, kCycleMax);
    h.run(400 * kMemTick); // let the swap finish
    EXPECT_EQ(h.mgr.promotions(), 1u);
    GlobalRowId logical =
        makeGlobalRowId(h.geom, 0, 0, 0, h.dram.decode(slow_addr).row);
    EXPECT_TRUE(h.mgr.table().isFast(logical));
}

TEST(DasManager, FastAccessDoesNotPromote)
{
    ManagerHarness h;
    Addr fast_addr = rowAddr(h.dram, 2); // slot 2: fast
    h.accessAndWait(fast_addr);
    h.run(400 * kMemTick);
    EXPECT_EQ(h.mgr.promotions(), 0u);
}

TEST(DasManager, PromotedRowServedFastAfterwards)
{
    ManagerHarness h;
    Addr addr = rowAddr(h.dram, 20);
    h.accessAndWait(addr);
    h.run(1000 * kMemTick);
    // Second access to a different column of the same logical row.
    h.accessAndWait(rowAddr(h.dram, 20, 5));
    LocationStats loc = h.mgr.locations();
    EXPECT_EQ(loc.slowLevel, 1u);
    EXPECT_EQ(loc.fastLevel + loc.rowBuffer, 1u);
}

TEST(DasManager, ZeroLatencySwapsInFmMode)
{
    DasConfig cfg;
    cfg.zeroMigrationLatency = true;
    ManagerHarness h(cfg);
    h.accessAndWait(rowAddr(h.dram, 10));
    EXPECT_EQ(h.mgr.promotions(), 1u);
    // No DRAM migration job was created.
    EXPECT_EQ(h.dram.channel(0).migrationCount() +
                  h.dram.channel(0).pendingMigrations(),
              0u);
}

TEST(DasManager, StaticModeNeverPromotes)
{
    DasConfig cfg;
    cfg.mode = ManagementMode::Static;
    ManagerHarness h(cfg);
    h.accessAndWait(rowAddr(h.dram, 10));
    h.run(400 * kMemTick);
    EXPECT_EQ(h.mgr.promotions(), 0u);
}

TEST(DasManager, NoneModeIsIdentity)
{
    DasConfig cfg;
    cfg.mode = ManagementMode::None;
    ManagerHarness h(cfg);
    Addr addr = rowAddr(h.dram, 10);
    Cycle done = h.accessAndWait(addr);
    ASSERT_NE(done, kCycleMax);
    EXPECT_EQ(h.mgr.promotions(), 0u);
    EXPECT_EQ(h.mgr.locations().slowLevel, 1u);
}

TEST(DasManager, TranslationCachePopulatedByAccesses)
{
    ManagerHarness h;
    Addr addr = rowAddr(h.dram, 7);
    h.accessAndWait(addr);
    GlobalRowId logical = makeGlobalRowId(h.geom, 0, 0, 0, 7);
    EXPECT_TRUE(h.mgr.translationCache()->probe(logical));
}

TEST(DasManager, VictimLeavesFastLevel)
{
    ManagerHarness h;
    // Group 0 fast slots initially hold logical rows 0..3. Promote 5
    // slow rows in turn; at least one original fast row must have been
    // demoted.
    for (std::uint64_t row : {10ULL, 11ULL, 12ULL, 13ULL, 14ULL}) {
        h.accessAndWait(rowAddr(h.dram, row));
        h.run(500 * kMemTick);
    }
    EXPECT_EQ(h.mgr.promotions(), 5u);
    int original_fast = 0;
    for (GlobalRowId r = 0; r < 4; ++r)
        original_fast += h.mgr.table().isFast(r) ? 1 : 0;
    EXPECT_LT(original_fast, 4);
    // Fast slot count invariant holds.
    int fast = 0;
    for (GlobalRowId r = 0; r < 32; ++r)
        fast += h.mgr.table().isFast(r) ? 1 : 0;
    EXPECT_EQ(fast, 4);
}

TEST(DasManager, FootprintCountsDistinctRows)
{
    ManagerHarness h;
    h.accessAndWait(rowAddr(h.dram, 1));
    h.accessAndWait(rowAddr(h.dram, 1, 3));
    h.accessAndWait(rowAddr(h.dram, 2));
    EXPECT_EQ(h.mgr.footprintRows(), 2u);
}

TEST(DasManager, WritebacksCountedAndClassified)
{
    ManagerHarness h;
    h.accessAndWait(rowAddr(h.dram, 9), /*write=*/true);
    EXPECT_EQ(h.mgr.demandAccesses(), 1u);
    EXPECT_EQ(h.mgr.locations().total(), 1u);
}

TEST(DasManager, ResetStatsPreservesMappings)
{
    ManagerHarness h;
    h.accessAndWait(rowAddr(h.dram, 10));
    h.run(500 * kMemTick);
    GlobalRowId logical = makeGlobalRowId(h.geom, 0, 0, 0, 10);
    ASSERT_TRUE(h.mgr.table().isFast(logical));
    h.mgr.resetStats();
    EXPECT_EQ(h.mgr.promotions(), 0u);
    EXPECT_TRUE(h.mgr.table().isFast(logical)); // mapping kept
}

TEST(Designs, SpecTable)
{
    EXPECT_EQ(allDesigns().size(), 6u);
    EXPECT_EQ(evaluatedDesigns().size(), 5u);
    EXPECT_EQ(toString(DesignKind::Das), "DAS-DRAM");
    EXPECT_TRUE(designSpec(DesignKind::Charm).charmColumnOpt);
    EXPECT_TRUE(designSpec(DesignKind::Sas).needsProfiling);
    EXPECT_TRUE(designSpec(DesignKind::DasFm).zeroMigrationLatency);
    EXPECT_TRUE(designSpec(DesignKind::Fs).allFast);
    EXPECT_EQ(designSpec(DesignKind::Standard).mode,
              ManagementMode::None);
    EXPECT_EQ(parseDesign("das-fm"), DesignKind::DasFm);
    EXPECT_DEATH(parseDesign("bogus"), "unknown");
}
