/**
 * @file
 * Tests for the migration-procedure model (Figure 3d / Figure 6) and
 * its consistency with Table 1's 146.25 ns swap latency.
 */

#include <gtest/gtest.h>

#include "core/migration.hh"

using namespace dasdram;

TEST(MigrationProcedure, FourSteps)
{
    DramTiming t = ddr3_1600Timing();
    MigrationProcedure proc(t);
    auto steps = proc.steps();
    ASSERT_EQ(steps.size(), 4u); // Figure 3d
    for (const MigrationStep &s : steps) {
        EXPECT_FALSE(s.name.empty());
        EXPECT_GT(s.cycles, 0u);
    }
}

TEST(MigrationProcedure, MigrationIsAboutOnePointFiveTrc)
{
    DramTiming t = ddr3_1600Timing();
    MigrationProcedure proc(t);
    double trc = static_cast<double>(t.slow.tRC);
    EXPECT_NEAR(static_cast<double>(proc.migrationCycles()), 1.5 * trc,
                2.0);
}

TEST(MigrationProcedure, SwapMatchesTable1Within3ns)
{
    DramTiming t = ddr3_1600Timing();
    MigrationProcedure proc(t);
    // Table 1: 146.25 ns.
    EXPECT_NEAR(proc.swapNanoseconds(), 146.25, 5.0);
    // And the engine's configured swap time agrees with the derived
    // procedure within rounding.
    EXPECT_NEAR(static_cast<double>(proc.swapCycles()),
                static_cast<double>(t.swapCycles), 4.0);
}

TEST(MigrationProcedure, FasterThanTwoFullCycles)
{
    // The whole point of the tightened restore: below 2 tRC per
    // migration (the naive bound), at or under 1.5 tRC + rounding.
    DramTiming t = ddr3_1600Timing();
    MigrationProcedure proc(t);
    EXPECT_LT(proc.migrationCycles(), 2 * t.slow.tRC);
}
