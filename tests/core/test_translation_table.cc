/**
 * @file
 * Tests for the migration-group-restricted translation table,
 * including permutation invariants under random swap sequences.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/random.hh"
#include "core/translation_table.hh"

using namespace dasdram;

namespace
{

DramGeometry
smallGeom()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 1;
    g.banksPerRank = 2;
    g.rowsPerBank = 128;
    return g;
}

} // namespace

TEST(TranslationTable, IdentityAtReset)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    TranslationTable t(l);
    for (GlobalRowId r = 0; r < g.totalRows(); ++r) {
        EXPECT_EQ(t.physicalOf(r), r);
        EXPECT_EQ(t.logicalOf(r), r);
    }
    // Initially the fast rows are exactly the fast slots.
    EXPECT_TRUE(t.isFast(0));
    EXPECT_TRUE(t.isFast(3));
    EXPECT_FALSE(t.isFast(4));
}

TEST(TranslationTable, SwapMovesBothDirections)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    TranslationTable t(l);
    t.swap(0, 10); // logical 0 (fast slot) ↔ logical 10 (slow slot)
    EXPECT_EQ(t.physicalOf(10), 0u);
    EXPECT_EQ(t.physicalOf(0), 10u);
    EXPECT_EQ(t.logicalOf(0), 10u);
    EXPECT_EQ(t.logicalOf(10), 0u);
    EXPECT_TRUE(t.isFast(10));
    EXPECT_FALSE(t.isFast(0));
    EXPECT_EQ(t.swapCount(), 1u);
}

TEST(TranslationTable, SelfSwapIsNoop)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    TranslationTable t(l);
    t.swap(5, 5);
    EXPECT_EQ(t.physicalOf(5), 5u);
    EXPECT_EQ(t.swapCount(), 0u);
}

TEST(TranslationTable, FastSlotOccupants)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    TranslationTable t(l);
    EXPECT_EQ(t.logicalInFastSlot(0, 0), 0u);
    t.swap(9, 0);
    EXPECT_EQ(t.logicalInFastSlot(0, 0), 9u);
    // Group 1 (rows 32..63) unaffected.
    EXPECT_EQ(t.logicalInFastSlot(1, 0), 32u);
}

TEST(TranslationTable, RandomSwapsPreservePermutation)
{
    // Property: after arbitrary in-group swaps, logical↔physical remain
    // inverse bijections and physical rows of a group stay in-group.
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    TranslationTable t(l);
    Rng rng(17);
    const std::uint64_t groups = l.totalGroups();
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t grp = rng.nextBelow(groups);
        GlobalRowId a = grp * 32 + rng.nextBelow(32);
        GlobalRowId b = grp * 32 + rng.nextBelow(32);
        t.swap(a, b);
    }
    std::set<GlobalRowId> seen;
    for (GlobalRowId r = 0; r < g.totalRows(); ++r) {
        GlobalRowId p = t.physicalOf(r);
        EXPECT_EQ(t.logicalOf(p), r);
        EXPECT_EQ(p / 32, r / 32); // stays within the migration group
        seen.insert(p);
    }
    EXPECT_EQ(seen.size(), g.totalRows()); // bijection
}

TEST(TranslationTable, FastCountInvariantPerGroup)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    TranslationTable t(l);
    Rng rng(23);
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t grp = rng.nextBelow(l.totalGroups());
        t.swap(grp * 32 + rng.nextBelow(32),
               grp * 32 + rng.nextBelow(32));
    }
    for (std::uint64_t grp = 0; grp < l.totalGroups(); ++grp) {
        unsigned fast = 0;
        for (unsigned s = 0; s < 32; ++s)
            fast += t.isFast(grp * 32 + s) ? 1 : 0;
        EXPECT_EQ(fast, l.fastSlotsPerGroup());
    }
}

TEST(TranslationTable, EntryAddressLayout)
{
    EXPECT_EQ(TranslationTable::entryAddr(0x1000, 0), 0x1000u);
    EXPECT_EQ(TranslationTable::entryAddr(0x1000, 255), 0x10FFu);
}

TEST(TranslationTable, ResetRestoresIdentity)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    TranslationTable t(l);
    t.swap(0, 20);
    t.reset();
    EXPECT_EQ(t.physicalOf(20), 20u);
    EXPECT_EQ(t.swapCount(), 0u);
}

TEST(TranslationTableDeathTest, CrossGroupSwapPanics)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    TranslationTable t(l);
    EXPECT_DEATH(t.swap(0, 40), "across migration groups");
}
