/**
 * @file
 * Tests for the inclusive-cache management alternative (Section 5):
 * directory behaviour and the DasManager inclusive mode.
 */

#include <gtest/gtest.h>

#include "core/das_manager.hh"
#include "core/inclusive_directory.hh"

using namespace dasdram;

namespace
{

DramGeometry
smallGeom()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 1;
    g.banksPerRank = 2;
    g.rowsPerBank = 128;
    return g;
}

} // namespace

TEST(InclusiveDirectory, EmptyAtStart)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    InclusiveDirectory d(l);
    EXPECT_FALSE(d.find(10).valid);
    EXPECT_EQ(d.occupant(0, 0), kAddrInvalid);
    EXPECT_EQ(d.validCopies(), 0u);
}

TEST(InclusiveDirectory, InstallFindEvict)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    InclusiveDirectory d(l);
    d.install(10, 2); // logical row 10 (group 0) → fast slot 2
    InclusiveDirectory::Copy c = d.find(10);
    ASSERT_TRUE(c.valid);
    EXPECT_EQ(c.fastSlot, 2u);
    EXPECT_FALSE(c.dirty);
    EXPECT_EQ(d.occupant(0, 2), 10u);
    EXPECT_EQ(d.validCopies(), 1u);
    d.evict(0, 2);
    EXPECT_FALSE(d.find(10).valid);
    EXPECT_EQ(d.validCopies(), 0u);
}

TEST(InclusiveDirectory, DirtyTracking)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    InclusiveDirectory d(l);
    d.install(20, 1);
    EXPECT_FALSE(d.dirty(0, 1));
    d.markDirty(20);
    EXPECT_TRUE(d.dirty(0, 1));
    EXPECT_TRUE(d.find(20).dirty);
    // Replacement clears dirtiness.
    d.install(21, 1);
    EXPECT_FALSE(d.dirty(0, 1));
    EXPECT_FALSE(d.find(20).valid);
}

TEST(InclusiveDirectory, GroupsIndependent)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    InclusiveDirectory d(l);
    d.install(10, 0);  // group 0
    d.install(42, 0);  // group 1 (rows 32..63)
    EXPECT_EQ(d.occupant(0, 0), 10u);
    EXPECT_EQ(d.occupant(1, 0), 42u);
}

namespace
{

struct InclusiveHarness
{
    InclusiveHarness()
        : geom(smallGeom()), timing(ddr3_1600Timing()),
          layout(geom, {}), dram(geom, timing, layout),
          caches(1,
                 HierarchyConfig{{1 * KiB, 2, 64},
                                 {4 * KiB, 4, 64},
                                 {16 * KiB, 8, 64},
                                 4,
                                 12,
                                 20}),
          mgr(dram, &caches, layout, makeConfig())
    {
        mgr.setCompletionHook(
            [this](const Continuation &, Cycle at) { done = at; });
    }

    static DasConfig
    makeConfig()
    {
        DasConfig cfg;
        cfg.exclusiveCache = false;
        return cfg;
    }

    Cycle
    accessAndWait(std::uint64_t row, bool write = false,
                  std::uint64_t column = 0)
    {
        DramLoc loc{0, 0, 0, row, column};
        Addr addr = dram.mapper().encode(loc);
        done = kCycleMax;
        mgr.access(addr, write, 0, Continuation::coreLoad(0, 0), now);
        for (int i = 0; i < 200000 && done == kCycleMax; ++i) {
            now += kMemTick;
            mgr.tick(now);
            dram.tick(now);
        }
        return done;
    }

    void
    settle()
    {
        Cycle until = now + 600 * kMemTick;
        while (now < until) {
            now += kMemTick;
            mgr.tick(now);
            dram.tick(now);
        }
    }

    DramGeometry geom;
    DramTiming timing;
    AsymmetricLayout layout;
    DramSystem dram;
    CacheHierarchy caches;
    DasManager mgr;
    Cycle now = 0;
    Cycle done = kCycleMax; ///< last completion delivered to the hook
};

} // namespace

TEST(InclusiveManager, SlowAccessInstallsCopy)
{
    InclusiveHarness h;
    h.accessAndWait(10);
    h.settle();
    EXPECT_EQ(h.mgr.promotions(), 1u);
    InclusiveDirectory::Copy c = h.mgr.inclusiveDirectory()->find(
        makeGlobalRowId(h.geom, 0, 0, 0, 10));
    EXPECT_TRUE(c.valid);
}

TEST(InclusiveManager, CopyServedFromFastSlot)
{
    InclusiveHarness h;
    h.accessAndWait(10);
    h.settle();
    h.accessAndWait(10, false, 3);
    LocationStats loc = h.mgr.locations();
    // First access slow, second from the fast copy (or its open row).
    EXPECT_EQ(loc.slowLevel, 1u);
    EXPECT_EQ(loc.fastLevel + loc.rowBuffer, 1u);
}

TEST(InclusiveManager, NativeFastRowsUnmanaged)
{
    InclusiveHarness h;
    h.accessAndWait(2); // home slot 2 is fast
    h.settle();
    EXPECT_EQ(h.mgr.promotions(), 0u);
    EXPECT_EQ(h.mgr.inclusiveDirectory()->validCopies(), 0u);
}

TEST(InclusiveManager, DirtyVictimCostsWriteback)
{
    InclusiveHarness h;
    // Fill all four fast slots of group 0 with copies; dirty one.
    for (std::uint64_t row : {10ULL, 11ULL, 12ULL, 13ULL}) {
        h.accessAndWait(row);
        h.settle();
    }
    EXPECT_EQ(h.mgr.promotions(), 4u);
    h.accessAndWait(10, /*write=*/true); // dirty the copy of row 10
    h.settle();
    // Promote four more rows: some victim must be the dirty copy.
    for (std::uint64_t row : {14ULL, 15ULL, 16ULL, 17ULL}) {
        h.accessAndWait(row);
        h.settle();
    }
    EXPECT_EQ(h.mgr.promotions(), 8u);
    // Exactly one dirty write-back happened (only one copy was dirty).
    std::ostringstream oss;
    h.mgr.stats().dump(oss);
    EXPECT_NE(oss.str().find("dirtyPromotions 1"), std::string::npos);
}

TEST(InclusiveManager, CleanPromotionUsesSingleMigration)
{
    InclusiveHarness h;
    h.accessAndWait(10);
    // The migration job is a single 1.5 tRC migration, not a swap:
    // wait less than a full swap and the job must already be done.
    Cycle start = h.now;
    while (h.dram.channel(0).migrationCount() == 0 &&
           h.now < start + 400 * kMemTick) {
        h.now += kMemTick;
        h.mgr.tick(h.now);
        h.dram.tick(h.now);
    }
    EXPECT_EQ(h.dram.channel(0).migrationCount(), 1u);
}
