/**
 * @file
 * Property-based tests for the translation machinery. Random
 * promote/evict/spill sequences are generated from fixed seeds and the
 * structural invariants re-checked after every batch:
 *
 *  - the table stays a per-group permutation (every logical row lives
 *    in exactly one physical slot and vice versa, never leaving its
 *    migration group);
 *  - isFast() agrees with the layout's notion of fast slots;
 *  - the tag cache never caches a row the table says is slow (the
 *    exclusive-cache invariant: cache contents ⊆ fast-level rows).
 *
 * Every assertion carries the seed so a failure replays deterministically.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "core/translation_cache.hh"
#include "core/translation_table.hh"

using namespace dasdram;

namespace
{

DramGeometry
smallGeom()
{
    DramGeometry g;
    g.channels = 1;
    g.ranksPerChannel = 1;
    g.banksPerRank = 2;
    g.rowsPerBank = 256;
    return g;
}

/** Full structural audit of @p t; every failure names @p seed. */
void
checkTableInvariants(const TranslationTable &t, const AsymmetricLayout &l,
                     const DramGeometry &g, std::uint64_t seed)
{
    std::vector<unsigned> occupancy(g.totalRows(), 0);
    for (GlobalRowId logical = 0; logical < g.totalRows(); ++logical) {
        GlobalRowId phys = t.physicalOf(logical);
        ASSERT_LT(phys, g.totalRows()) << "seed=" << seed;
        ++occupancy[phys];
        // Round trip: the inverse map agrees with the forward map.
        ASSERT_EQ(t.logicalOf(phys), logical)
            << "seed=" << seed << " logical=" << logical;
        // Group confinement: migration never crosses a group boundary.
        ASSERT_EQ(l.globalGroupOf(phys), l.globalGroupOf(logical))
            << "seed=" << seed << " logical=" << logical << " phys="
            << phys;
        // Fastness is a property of the physical slot the row sits in.
        ASSERT_EQ(t.isFast(logical), l.slotIsFast(l.slotOf(phys)))
            << "seed=" << seed << " logical=" << logical << " phys="
            << phys;
    }
    // Exactly-one-slot: the map is a bijection.
    for (GlobalRowId phys = 0; phys < g.totalRows(); ++phys) {
        ASSERT_EQ(occupancy[phys], 1u)
            << "seed=" << seed << " physical row " << phys
            << " held by " << occupancy[phys] << " logical rows";
    }
    // logicalInFastSlot is the inverse view of the fast slots.
    unsigned group_size = l.config().groupSize;
    for (std::uint64_t grp = 0; grp < l.totalGroups(); ++grp) {
        GlobalRowId base = grp * group_size;
        for (unsigned f = 0; f < l.fastSlotsPerGroup(); ++f) {
            GlobalRowId logical = t.logicalInFastSlot(grp, f);
            ASSERT_EQ(t.physicalOf(logical), base + f)
                << "seed=" << seed << " group=" << grp << " slot=" << f;
            ASSERT_TRUE(t.isFast(logical)) << "seed=" << seed;
        }
    }
}

} // namespace

TEST(TranslationProperty, RandomSwapsKeepPermutationInvariants)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    unsigned group_size = l.config().groupSize;

    for (std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
        Rng rng(seed);
        TranslationTable t(l);
        for (unsigned batch = 0; batch < 8; ++batch) {
            for (unsigned i = 0; i < 200; ++i) {
                std::uint64_t grp = rng.nextBelow(l.totalGroups());
                GlobalRowId base = grp * group_size;
                GlobalRowId a = base + rng.nextBelow(group_size);
                GlobalRowId b = base + rng.nextBelow(group_size);
                if (a == b)
                    continue;
                t.swap(a, b);
            }
            checkTableInvariants(t, l, g, seed);
        }
        t.reset();
        checkTableInvariants(t, l, g, seed);
        for (GlobalRowId r = 0; r < g.totalRows(); ++r)
            ASSERT_EQ(t.physicalOf(r), r) << "seed=" << seed;
    }
}

TEST(TranslationProperty, CacheNeverDisagreesWithTable)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    unsigned group_size = l.config().groupSize;
    unsigned fast_slots = l.fastSlotsPerGroup();

    for (std::uint64_t seed : {7ull, 1234ull, 0xfeedfaceull}) {
        Rng rng(seed);
        TranslationTable t(l);
        // Deliberately tiny cache so random traffic forces evictions
        // and the invariant is exercised under capacity pressure.
        TranslationCache tc(64, 4);

        for (unsigned step = 0; step < 4000; ++step) {
            std::uint64_t grp = rng.nextBelow(l.totalGroups());
            GlobalRowId base = grp * group_size;
            if (rng.chance(0.5)) {
                // Promote: a random slow-resident logical row swaps
                // with the current occupant of a random fast slot.
                unsigned f =
                    static_cast<unsigned>(rng.nextBelow(fast_slots));
                GlobalRowId incumbent = t.logicalInFastSlot(grp, f);
                GlobalRowId promoted =
                    base + fast_slots +
                    rng.nextBelow(group_size - fast_slots);
                promoted = t.logicalOf(t.physicalOf(promoted));
                if (t.isFast(promoted))
                    continue;
                t.swap(incumbent, promoted);
                // Mirror what DasManager does: demoted row leaves the
                // cache, promoted row enters it.
                tc.invalidate(incumbent);
                tc.insert(promoted);
            } else if (rng.chance(0.5)) {
                // Spill: lookups for random rows; insert only if the
                // row is actually fast (cache admission rule).
                GlobalRowId row = base + rng.nextBelow(group_size);
                if (!tc.lookup(row) && t.isFast(row))
                    tc.insert(row);
            } else {
                // Evict: random invalidation (e.g. refresh-time table
                // writeback) — always legal.
                tc.invalidate(base + rng.nextBelow(group_size));
            }

            if (step % 256 != 0)
                continue;
            // The exclusive invariant: anything the cache holds must
            // be fast per the authoritative table. (The converse need
            // not hold: the cache is smaller than the fast level.)
            for (GlobalRowId row = 0; row < g.totalRows(); ++row) {
                if (tc.probe(row)) {
                    ASSERT_TRUE(t.isFast(row))
                        << "seed=" << seed << " step=" << step
                        << " cached slow row " << row;
                }
            }
        }
        checkTableInvariants(t, l, g, seed);
    }
}

TEST(TranslationProperty, SwapIsItsOwnInverse)
{
    DramGeometry g = smallGeom();
    AsymmetricLayout l(g, {});
    for (std::uint64_t seed : {3ull, 99ull}) {
        Rng rng(seed);
        TranslationTable t(l);
        unsigned group_size = l.config().groupSize;
        for (unsigned i = 0; i < 100; ++i) {
            std::uint64_t grp = rng.nextBelow(l.totalGroups());
            GlobalRowId a = grp * group_size + rng.nextBelow(group_size);
            GlobalRowId b = grp * group_size + rng.nextBelow(group_size);
            GlobalRowId pa = t.physicalOf(a), pb = t.physicalOf(b);
            t.swap(a, b);
            t.swap(a, b);
            ASSERT_EQ(t.physicalOf(a), pa) << "seed=" << seed;
            ASSERT_EQ(t.physicalOf(b), pb) << "seed=" << seed;
        }
    }
}
