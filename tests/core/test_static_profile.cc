/**
 * @file
 * Tests for the profiling-based static assignment (SAS/CHARM).
 */

#include <gtest/gtest.h>

#include "core/static_profile.hh"

using namespace dasdram;

namespace
{

struct ProfileHarness
{
    ProfileHarness() : geom(makeGeom()), layout(geom, {}),
                       mapper(geom), table(layout),
                       profiler(mapper, layout)
    {
    }

    static DramGeometry
    makeGeom()
    {
        DramGeometry g;
        g.channels = 1;
        g.ranksPerChannel = 1;
        g.banksPerRank = 1;
        g.rowsPerBank = 128;
        return g;
    }

    /** Trace hammering one row per entry (gap 0). */
    static std::vector<TraceEntry>
    rowTrace(std::initializer_list<std::pair<std::uint64_t, int>> rows,
             const DramGeometry &g)
    {
        std::vector<TraceEntry> t;
        for (auto [row, count] : rows) {
            for (int i = 0; i < count; ++i)
                t.push_back({0, row * g.rowBytes, false});
        }
        return t;
    }

    DramGeometry geom;
    AsymmetricLayout layout;
    AddressMapper mapper;
    TranslationTable table;
    StaticProfiler profiler;
};

} // namespace

TEST(StaticProfiler, CountsRowReferences)
{
    ProfileHarness h;
    VectorTraceSource trace(
        ProfileHarness::rowTrace({{5, 10}, {9, 3}}, h.geom));
    h.profiler.profile(trace, 1000);
    EXPECT_EQ(h.profiler.countOf(5), 10u);
    EXPECT_EQ(h.profiler.countOf(9), 3u);
    EXPECT_EQ(h.profiler.countOf(7), 0u);
    EXPECT_EQ(h.profiler.touchedRows(), 2u);
}

TEST(StaticProfiler, AssignPutsHottestInFastSlots)
{
    ProfileHarness h;
    // Group 0 (rows 0..31): rows 10, 11, 12, 13, 14 hot in that order.
    VectorTraceSource trace(ProfileHarness::rowTrace(
        {{10, 50}, {11, 40}, {12, 30}, {13, 20}, {14, 10}}, h.geom));
    h.profiler.profile(trace, 100000);
    std::uint64_t placed = h.profiler.assign(h.table);
    EXPECT_EQ(placed, 4u); // 4 fast slots per group
    EXPECT_TRUE(h.table.isFast(10));
    EXPECT_TRUE(h.table.isFast(11));
    EXPECT_TRUE(h.table.isFast(12));
    EXPECT_TRUE(h.table.isFast(13));
    EXPECT_FALSE(h.table.isFast(14)); // fifth hottest loses
}

TEST(StaticProfiler, AssignmentRespectsGroups)
{
    ProfileHarness h;
    // Hot rows in group 1 (rows 32..63) cannot displace group 0 slots.
    VectorTraceSource trace(ProfileHarness::rowTrace(
        {{40, 100}, {41, 90}, {42, 80}, {43, 70}, {44, 60}, {45, 50}},
        h.geom));
    h.profiler.profile(trace, 100000);
    h.profiler.assign(h.table);
    // Exactly 4 of the six hot rows become fast, all within group 1.
    int fast = 0;
    for (std::uint64_t r = 40; r <= 45; ++r)
        fast += h.table.isFast(r) ? 1 : 0;
    EXPECT_EQ(fast, 4);
    // Group 0 untouched: identity.
    EXPECT_TRUE(h.table.isFast(0));
}

TEST(StaticProfiler, AlreadyFastRowsStayWithoutSwaps)
{
    ProfileHarness h;
    // Rows 0..3 are the initial fast slots of group 0.
    VectorTraceSource trace(ProfileHarness::rowTrace(
        {{0, 10}, {1, 10}, {2, 10}, {3, 10}}, h.geom));
    h.profiler.profile(trace, 100000);
    h.profiler.assign(h.table);
    EXPECT_EQ(h.table.swapCount(), 0u);
}

TEST(StaticProfiler, ProfileWindowBounded)
{
    ProfileHarness h;
    std::vector<TraceEntry> entries;
    for (int i = 0; i < 100; ++i)
        entries.push_back({9, 0, false}); // 10 instructions each
    VectorTraceSource trace(entries);
    h.profiler.profile(trace, 50); // only ~5 records fit
    EXPECT_LE(h.profiler.countOf(0), 6u);
}
