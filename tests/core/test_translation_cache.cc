/**
 * @file
 * Tests for the translation (tag) cache.
 */

#include <gtest/gtest.h>

#include "core/translation_cache.hh"

using namespace dasdram;

TEST(TranslationCache, MissInsertHit)
{
    TranslationCache tc(1024, 8);
    EXPECT_FALSE(tc.lookup(42));
    tc.insert(42);
    EXPECT_TRUE(tc.lookup(42));
    EXPECT_EQ(tc.hits(), 1u);
    EXPECT_EQ(tc.misses(), 1u);
    EXPECT_DOUBLE_EQ(tc.hitRatio(), 0.5);
}

TEST(TranslationCache, CapacityInEntries)
{
    TranslationCache tc(128 * KiB, 8);
    EXPECT_EQ(tc.capacityEntries(), 128u * 1024);
}

TEST(TranslationCache, InvalidateRemovesEntry)
{
    TranslationCache tc(1024, 8);
    tc.insert(7);
    EXPECT_TRUE(tc.probe(7));
    tc.invalidate(7);
    EXPECT_FALSE(tc.probe(7));
    tc.invalidate(7); // idempotent
}

TEST(TranslationCache, ProbeDoesNotCount)
{
    TranslationCache tc(1024, 8);
    tc.insert(5);
    tc.probe(5);
    tc.probe(6);
    EXPECT_EQ(tc.hits() + tc.misses(), 0u);
}

TEST(TranslationCache, LruWithinSet)
{
    // Single-set cache: capacity 4, assoc 4.
    TranslationCache tc(4, 4);
    // These all land in the one set regardless of hash.
    tc.insert(1);
    tc.insert(2);
    tc.insert(3);
    tc.insert(4);
    tc.lookup(1); // refresh 1 → 2 is LRU
    tc.insert(5); // evicts 2
    EXPECT_TRUE(tc.probe(1));
    EXPECT_FALSE(tc.probe(2));
    EXPECT_TRUE(tc.probe(5));
}

TEST(TranslationCache, WorkingSetLargerThanCapacityThrashes)
{
    TranslationCache tc(64, 8);
    for (GlobalRowId r = 0; r < 1000; ++r)
        tc.insert(r);
    int resident = 0;
    for (GlobalRowId r = 0; r < 1000; ++r)
        resident += tc.probe(r) ? 1 : 0;
    EXPECT_LE(resident, 64);
    EXPECT_GT(resident, 0);
}

TEST(TranslationCache, InsertExistingRefreshes)
{
    TranslationCache tc(4, 4);
    tc.insert(1);
    tc.insert(2);
    tc.insert(3);
    tc.insert(4);
    tc.insert(1); // refresh, no eviction
    EXPECT_TRUE(tc.probe(2));
    tc.insert(9); // evicts LRU = 2
    EXPECT_FALSE(tc.probe(2));
}

TEST(TranslationCacheDeathTest, BadGeometryFatal)
{
    EXPECT_DEATH(TranslationCache(100, 8), "multiple of assoc");
}
