/**
 * @file
 * Tests for promotion filtering and fast-slot replacement policies.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/promotion_policy.hh"
#include "core/replacement_policy.hh"

using namespace dasdram;

TEST(PromotionFilter, ThresholdOneAlwaysPromotes)
{
    PromotionFilter f({1, 1024});
    for (GlobalRowId r = 0; r < 100; ++r)
        EXPECT_TRUE(f.onSlowAccess(r));
    EXPECT_EQ(f.promotionsAllowed(), 100u);
    EXPECT_EQ(f.filtered(), 0u);
}

TEST(PromotionFilter, ThresholdTwoNeedsTwoHits)
{
    PromotionFilter f({2, 1024});
    EXPECT_FALSE(f.onSlowAccess(5));
    EXPECT_TRUE(f.onSlowAccess(5));
    // Counter released after promotion: starts over.
    EXPECT_FALSE(f.onSlowAccess(5));
}

class FilterThresholdSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FilterThresholdSweep, ExactlyThresholdHitsRequired)
{
    unsigned th = GetParam();
    PromotionFilter f({th, 1024});
    for (unsigned i = 1; i < th; ++i)
        EXPECT_FALSE(f.onSlowAccess(9)) << "hit " << i;
    EXPECT_TRUE(f.onSlowAccess(9));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FilterThresholdSweep,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(PromotionFilter, CounterStealingResetsCount)
{
    // Two rows aliasing to the same counter (counters=1).
    PromotionFilter f({3, 1});
    EXPECT_FALSE(f.onSlowAccess(0));
    EXPECT_FALSE(f.onSlowAccess(0));
    // Row 1 steals the counter; row 0 progress lost.
    EXPECT_FALSE(f.onSlowAccess(1));
    EXPECT_FALSE(f.onSlowAccess(0));
    EXPECT_FALSE(f.onSlowAccess(0));
    EXPECT_TRUE(f.onSlowAccess(0));
}

TEST(PromotionFilter, ClearDropsProgress)
{
    PromotionFilter f({2, 16});
    EXPECT_FALSE(f.onSlowAccess(3));
    f.clear(3);
    EXPECT_FALSE(f.onSlowAccess(3)); // starts from one again
    EXPECT_TRUE(f.onSlowAccess(3));
}

TEST(Replacement, ParseAndName)
{
    EXPECT_EQ(parseFastReplPolicy("lru"), FastReplPolicy::Lru);
    EXPECT_EQ(parseFastReplPolicy("random"), FastReplPolicy::Random);
    EXPECT_EQ(parseFastReplPolicy("sequential"),
              FastReplPolicy::Sequential);
    EXPECT_EQ(parseFastReplPolicy("pseudorandom"),
              FastReplPolicy::PseudoRandom);
    EXPECT_STREQ(toString(FastReplPolicy::Lru), "lru");
}

TEST(Replacement, LruPicksColdestSlot)
{
    FastSlotReplacement r(FastReplPolicy::Lru, 4, 10);
    r.onFastAccess(3, 0);
    r.onFastAccess(3, 1);
    r.onFastAccess(3, 3);
    EXPECT_EQ(r.chooseVictim(3), 2u); // never touched
    r.onFastAccess(3, 2);
    EXPECT_EQ(r.chooseVictim(3), 0u); // now the oldest
}

TEST(Replacement, LruIsPerGroup)
{
    FastSlotReplacement r(FastReplPolicy::Lru, 4, 10);
    r.onFastAccess(0, 0);
    // Group 1 state untouched by group 0 accesses.
    EXPECT_EQ(r.chooseVictim(1), 0u);
}

TEST(Replacement, SequentialRoundRobins)
{
    FastSlotReplacement r(FastReplPolicy::Sequential, 4, 10);
    EXPECT_EQ(r.chooseVictim(2), 0u);
    EXPECT_EQ(r.chooseVictim(2), 1u);
    EXPECT_EQ(r.chooseVictim(2), 2u);
    EXPECT_EQ(r.chooseVictim(2), 3u);
    EXPECT_EQ(r.chooseVictim(2), 0u);
    // Independent cursor per group.
    EXPECT_EQ(r.chooseVictim(5), 0u);
}

TEST(Replacement, PseudoRandomUsesGlobalCounter)
{
    FastSlotReplacement r(FastReplPolicy::PseudoRandom, 4, 10);
    EXPECT_EQ(r.chooseVictim(0), 0u);
    EXPECT_EQ(r.chooseVictim(7), 1u); // counter is global
    EXPECT_EQ(r.chooseVictim(0), 2u);
}

TEST(Replacement, RandomStaysInRange)
{
    FastSlotReplacement r(FastReplPolicy::Random, 4, 10);
    std::set<unsigned> seen;
    for (int i = 0; i < 200; ++i) {
        unsigned v = r.chooseVictim(0);
        ASSERT_LT(v, 4u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}
