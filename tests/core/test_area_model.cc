/**
 * @file
 * Tests for the analytic area model against the paper's quoted numbers.
 */

#include <gtest/gtest.h>

#include "core/area_model.hh"

using namespace dasdram;

TEST(AreaModel, PaperRatioOneEighth)
{
    // Section 4.3: ~6.6 % at a 1/8 fast-level capacity ratio.
    double ovh = asymmetricAreaOverhead(1.0 / 8.0);
    EXPECT_NEAR(ovh, 0.066, 0.006);
}

TEST(AreaModel, PaperRatioOneQuarter)
{
    // Section 7.6 quotes 11.3 % at 1/4; our parametric model lands in
    // the same regime (the paper's 1/4 configuration likely shares
    // more peripheral circuitry).
    double ovh = asymmetricAreaOverhead(1.0 / 4.0);
    EXPECT_GT(ovh, 0.10);
    EXPECT_LT(ovh, 0.145);
}

TEST(AreaModel, MonotonicInFastFraction)
{
    double prev = asymmetricAreaOverhead(0.0);
    EXPECT_NEAR(prev, 0.0, 0.01);
    for (double f = 0.05; f <= 1.0; f += 0.05) {
        double cur = asymmetricAreaOverhead(f);
        EXPECT_GT(cur, prev);
        prev = cur;
    }
}

TEST(AreaModel, FsDramCostsFarMore)
{
    // A homogeneous short-bitline chip pays the sense-amp stripe over
    // 4x fewer cells: RLDRAM-class overhead, far beyond 6.6 %.
    double fs = fsDramAreaOverhead();
    EXPECT_GT(fs, 0.40);
    double das = asymmetricAreaOverhead(1.0 / 8.0);
    EXPECT_GT(fs, 5.0 * das);
}

TEST(AreaModel, TlDramNearSegmentOverhead)
{
    // Section 3.1: ~24 % with 128 near-segment rows (half-density near
    // segment + isolation transistors). Our model includes the wasted
    // half-density region and the isolation stripe.
    double tl = tlDramAreaOverhead(128);
    EXPECT_GT(tl, 0.20);
    EXPECT_LT(tl, 0.26);
    // And it dwarfs the DAS design's overhead, the paper's argument.
    EXPECT_GT(tl, 2.5 * asymmetricAreaOverhead(1.0 / 8.0));
}

TEST(AreaModel, TlDramScalesWithNearRows)
{
    EXPECT_LT(tlDramAreaOverhead(32), tlDramAreaOverhead(128));
}

TEST(AreaModelDeathTest, InvalidFractionFatal)
{
    EXPECT_DEATH(asymmetricAreaOverhead(1.5), "within");
}
