/**
 * @file
 * The sweep engine's determinism contract: the same sweep produces
 * exactly the same results — bit-identical metrics and byte-identical
 * JSON — whatever the worker-thread count, because every point's seed
 * derives only from (base seed, workload name, design) and results
 * are collected in submission order.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/sweep.hh"

using namespace dasdram;

namespace
{

SimConfig
quickConfig()
{
    SimConfig cfg;
    cfg.instructionsPerCore = 120'000;
    return cfg;
}

/** The 3-point sweep the determinism guarantee is tested on. */
std::vector<ExperimentResult>
runSweep(unsigned jobs)
{
    SweepRunner sweep(quickConfig(), jobs);
    sweep.add(WorkloadSpec::single("mcf"), DesignKind::Das);
    sweep.add(WorkloadSpec::single("omnetpp"), DesignKind::Fs);
    sweep.add(WorkloadSpec::single("mcf"), DesignKind::Das,
              [](SimConfig &c) { c.das.promotion.threshold = 4; },
              "th=4");
    return sweep.run();
}

void
expectMetricsExactlyEqual(const RunMetrics &a, const RunMetrics &b)
{
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]); // bitwise, not NEAR
    EXPECT_EQ(a.cpuCycles, b.cpuCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.locations.rowBuffer, b.locations.rowBuffer);
    EXPECT_EQ(a.locations.fastLevel, b.locations.fastLevel);
    EXPECT_EQ(a.locations.slowLevel, b.locations.slowLevel);
    EXPECT_EQ(a.promotions, b.promotions);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.footprintRows, b.footprintRows);
    EXPECT_EQ(a.energy.actsSlow, b.energy.actsSlow);
    EXPECT_EQ(a.energy.actsFast, b.energy.actsFast);
    EXPECT_EQ(a.energy.reads, b.energy.reads);
    EXPECT_EQ(a.energy.writes, b.energy.writes);
    EXPECT_EQ(a.energy.refreshes, b.energy.refreshes);
    EXPECT_EQ(a.energy.swaps, b.energy.swaps);
}

} // namespace

TEST(SweepDeterminism, SameResultsWithOneAndFourJobs)
{
    std::vector<ExperimentResult> serial = runSweep(1);
    std::vector<ExperimentResult> parallel = runSweep(4);

    ASSERT_EQ(serial.size(), 3u);
    ASSERT_EQ(parallel.size(), 3u);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(i));
        EXPECT_EQ(serial[i].workload, parallel[i].workload);
        EXPECT_EQ(serial[i].design, parallel[i].design);
        EXPECT_EQ(serial[i].label, parallel[i].label);
        EXPECT_EQ(serial[i].seed, parallel[i].seed);
        expectMetricsExactlyEqual(serial[i].metrics,
                                  parallel[i].metrics);
        EXPECT_EQ(serial[i].perfImprovement,
                  parallel[i].perfImprovement);
        EXPECT_EQ(serial[i].energyPerAccessNj,
                  parallel[i].energyPerAccessNj);
        // The exported form is what figure outputs are built from:
        // byte-identical, not merely numerically close.
        EXPECT_EQ(toJsonLine(serial[i]), toJsonLine(parallel[i]));
    }

    // The two mcf points differ only in the promotion threshold, so
    // they must share both seed (paired comparison) and baseline.
    EXPECT_EQ(serial[0].seed, serial[2].seed);
}

TEST(SweepDeterminism, PointSeedDependsOnAllInputs)
{
    std::uint64_t s = SweepRunner::pointSeed(42, "mcf", DesignKind::Das);
    EXPECT_EQ(s, SweepRunner::pointSeed(42, "mcf", DesignKind::Das));
    EXPECT_NE(s, SweepRunner::pointSeed(43, "mcf", DesignKind::Das));
    EXPECT_NE(s, SweepRunner::pointSeed(42, "milc", DesignKind::Das));
    EXPECT_NE(s, SweepRunner::pointSeed(42, "mcf", DesignKind::Fs));
    EXPECT_NE(SweepRunner::pointSeed(42, "mcf", DesignKind::Standard),
              s);
}

TEST(SweepDeterminism, StandardPointsReportZeroImprovement)
{
    SweepRunner sweep(quickConfig(), 2);
    sweep.add(WorkloadSpec::single("omnetpp"), DesignKind::Standard);
    sweep.add(WorkloadSpec::single("omnetpp"), DesignKind::Fs);
    auto results = sweep.run();
    EXPECT_DOUBLE_EQ(results[0].perfImprovement, 0.0);
    EXPECT_GT(results[1].perfImprovement, 0.0);
}

TEST(SweepDeterminism, MoreJobsThanPointsIsFine)
{
    SweepRunner sweep(quickConfig(), 16);
    sweep.add(WorkloadSpec::single("omnetpp"), DesignKind::Das);
    auto results = sweep.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_GT(results[0].metrics.ipc.at(0), 0.0);
}

TEST(SweepDeterminism, ResolveJobsHonoursEnvAndRequest)
{
    EXPECT_EQ(SweepRunner::resolveJobs(3), 3u);

    ::setenv("DAS_JOBS", "5", 1);
    EXPECT_EQ(SweepRunner::resolveJobs(0), 5u);
    EXPECT_EQ(SweepRunner::resolveJobs(2), 2u); // explicit wins

    ::setenv("DAS_JOBS", "bogus", 1);
    EXPECT_GE(SweepRunner::resolveJobs(0), 1u); // falls back, >= 1

    ::unsetenv("DAS_JOBS");
    EXPECT_GE(SweepRunner::resolveJobs(0), 1u);
}
