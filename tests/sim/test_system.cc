/**
 * @file
 * Integration tests: the full System on tiny synthetic workloads, and
 * the design-level invariants the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth_trace.hh"

using namespace dasdram;

namespace
{

SimConfig
tinyConfig(DesignKind design, InstCount instructions = 150'000)
{
    SimConfig cfg;
    cfg.design = design;
    cfg.instructionsPerCore = instructions;
    cfg.warmupFraction = 0.2;
    return cfg;
}

BenchmarkProfile
tinyProfile()
{
    BenchmarkProfile p = specProfile("omnetpp");
    p.footprintMiB = 64;
    p.workingSetPages = 400;
    p.phaseInstructions = 40'000;
    return p;
}

} // namespace

TEST(System, RunsToCompletionAndReportsMetrics)
{
    SimConfig cfg = tinyConfig(DesignKind::Das);
    SyntheticTrace trace(tinyProfile(), 1);
    System sys(cfg, {&trace});
    RunMetrics m = sys.run();
    EXPECT_EQ(m.ipc.size(), 1u);
    EXPECT_GT(m.ipc[0], 0.1);
    EXPECT_LT(m.ipc[0], 4.0);
    EXPECT_GT(m.instructions, cfg.instructionsPerCore / 2);
    EXPECT_GT(m.llcMisses, 0u);
    EXPECT_GT(m.memAccesses, 0u);
    EXPECT_GT(m.footprintRows, 0u);
    // Some requests may still be in flight at termination.
    EXPECT_LE(m.locations.total(), m.memAccesses);
    EXPECT_GT(m.locations.total(), m.memAccesses / 2);
}

TEST(System, DeterministicAcrossRuns)
{
    SimConfig cfg = tinyConfig(DesignKind::Das);
    SyntheticTrace t1(tinyProfile(), 1), t2(tinyProfile(), 1);
    System s1(cfg, {&t1}), s2(cfg, {&t2});
    RunMetrics m1 = s1.run(), m2 = s2.run();
    EXPECT_DOUBLE_EQ(m1.ipc[0], m2.ipc[0]);
    EXPECT_EQ(m1.llcMisses, m2.llcMisses);
    EXPECT_EQ(m1.promotions, m2.promotions);
}

TEST(System, FsDramBeatsStandard)
{
    SyntheticTrace t1(tinyProfile(), 1), t2(tinyProfile(), 1);
    System std_sys(tinyConfig(DesignKind::Standard), {&t1});
    System fs_sys(tinyConfig(DesignKind::Fs), {&t2});
    RunMetrics std_m = std_sys.run();
    RunMetrics fs_m = fs_sys.run();
    EXPECT_GT(fs_m.ipc[0], std_m.ipc[0]);
    // FS never touches a slow subarray.
    EXPECT_EQ(fs_m.locations.slowLevel, 0u);
    EXPECT_EQ(fs_m.energy.actsSlow, 0u);
}

TEST(System, StandardDramHasNoFastAccesses)
{
    SyntheticTrace t(tinyProfile(), 1);
    System sys(tinyConfig(DesignKind::Standard), {&t});
    RunMetrics m = sys.run();
    EXPECT_EQ(m.locations.fastLevel, 0u);
    EXPECT_EQ(m.promotions, 0u);
}

TEST(System, DasPromotesAndUsesFastLevel)
{
    SyntheticTrace t(tinyProfile(), 1);
    System sys(tinyConfig(DesignKind::Das), {&t});
    RunMetrics m = sys.run();
    EXPECT_GT(m.promotions, 0u);
    EXPECT_GT(m.locations.fastLevel, 0u);
    EXPECT_GT(m.energy.swaps, 0u);
}

TEST(System, MultiCoreSharesMemorySystem)
{
    SimConfig cfg = tinyConfig(DesignKind::Das, 100'000);
    cfg.numCores = 2;
    SyntheticTrace t0(tinyProfile(), 1), t1(tinyProfile(), 2);
    System sys(cfg, std::vector<TraceSource *>{&t0, &t1});
    RunMetrics m = sys.run();
    EXPECT_EQ(m.ipc.size(), 2u);
    EXPECT_GT(m.ipc[0], 0.05);
    EXPECT_GT(m.ipc[1], 0.05);
}

TEST(System, DumpStatsProducesTree)
{
    SyntheticTrace t(tinyProfile(), 1);
    System sys(tinyConfig(DesignKind::Das), {&t});
    sys.run();
    std::ostringstream oss;
    sys.dumpStats(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("system.core0.retired"), std::string::npos);
    EXPECT_NE(out.find("system.dasManager.promotions"),
              std::string::npos);
    EXPECT_NE(out.find("system.dram.channel0.reads"), std::string::npos);
    EXPECT_NE(out.find("system.caches.llc.hits"), std::string::npos);
}

TEST(SystemDeathTest, TraceCountMustMatchCores)
{
    SimConfig cfg = tinyConfig(DesignKind::Das);
    cfg.numCores = 2;
    SyntheticTrace t(tinyProfile(), 1);
    EXPECT_DEATH(System(cfg, {&t}), "one trace per core");
}

TEST(SimConfig, WarmupInstructionArithmetic)
{
    SimConfig cfg;
    cfg.instructionsPerCore = 1000;
    cfg.warmupFraction = 0.2;
    EXPECT_EQ(cfg.warmupInstructions(), 200u);
    EXPECT_EQ(cfg.coreBase(0), 0u);
    EXPECT_EQ(cfg.coreBase(2), 2 * GiB);
}

TEST(SimConfig, SimScaleEnvOverride)
{
    SimConfig cfg;
    cfg.instructionsPerCore = 1'000'000;
    setenv("DAS_SIM_SCALE", "0.5", 1);
    double f = applySimScale(cfg);
    unsetenv("DAS_SIM_SCALE");
    EXPECT_DOUBLE_EQ(f, 0.5);
    EXPECT_EQ(cfg.instructionsPerCore, 500'000u);
}

TEST(SimConfig, SimScaleInvalidIgnored)
{
    SimConfig cfg;
    cfg.instructionsPerCore = 1'000'000;
    setenv("DAS_SIM_SCALE", "banana", 1);
    double f = applySimScale(cfg);
    unsetenv("DAS_SIM_SCALE");
    EXPECT_DOUBLE_EQ(f, 1.0);
    EXPECT_EQ(cfg.instructionsPerCore, 1'000'000u);
}
