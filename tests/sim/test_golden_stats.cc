/**
 * @file
 * Golden-stats regression test: one small fixed-seed single-program
 * run per design class, with key metrics checked against checked-in
 * golden values. Event counts are compared exactly and derived ratios
 * tightly, so any PR that shifts the model's behaviour — timing,
 * caching, promotion, energy accounting — trips this test and has to
 * update the goldens consciously (and justify the shift in review).
 *
 * The goldens encode the simulator's output for:
 *   workload mcf (single core), seed 42, 200k instructions/core,
 *   default Table 1 configuration, DAS and Standard designs,
 * run through runSimulation() directly (no sweep seed derivation), so
 * they are independent of the sweep layer.
 *
 * To regenerate after an intentional model change:
 *   build/tools/dasdram_run --workload mcf --design das \
 *       --instructions 200000 --stats   (and read the fields below)
 * or temporarily print the failing values and paste them here.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace dasdram;

namespace
{

SimConfig
goldenConfig()
{
    SimConfig cfg;
    cfg.instructionsPerCore = 200'000;
    cfg.seed = 42;
    return cfg;
}

// Relative tolerance for derived floating-point metrics. The model is
// deterministic, so this only absorbs harmless FP-contraction
// differences between compilers, not behaviour drift.
constexpr double kRelTol = 1e-9;

void
expectNear(double value, double golden, const char *what)
{
    EXPECT_NEAR(value, golden, std::abs(golden) * kRelTol + 1e-12)
        << what;
}

} // namespace

TEST(GoldenStats, McfDasFixedSeed)
{
    SimConfig cfg = goldenConfig();
    cfg.design = DesignKind::Das;
    RunMetrics m = runSimulation(WorkloadSpec::single("mcf"), cfg);

    // Goldens regenerated when the controller gained the migration
    // start gate (a MIGRATE now waits out a pending tRP/tRC/tRFC
    // window like an ACT would) — migrations land slightly later, so
    // the mcf run completes a few hundred cycles later.
    ASSERT_EQ(m.ipc.size(), 1u);
    expectNear(m.ipc[0], 0.94734598419136151, "ipc");
    EXPECT_EQ(m.cpuCycles, 168895u);
    EXPECT_EQ(m.instructions, 160002u);
    EXPECT_EQ(m.llcMisses, 5697u);
    EXPECT_EQ(m.memAccesses, 5697u);
    EXPECT_EQ(m.promotions, 2150u);
    EXPECT_EQ(m.footprintRows, 3064u);
    EXPECT_EQ(m.locations.rowBuffer, 351u);
    EXPECT_EQ(m.locations.fastLevel, 3189u);
    EXPECT_EQ(m.locations.slowLevel, 2153u);
    EXPECT_EQ(m.energy.actsSlow, 2161u);
    EXPECT_EQ(m.energy.actsFast, 3443u);
    EXPECT_EQ(m.energy.reads, 5963u);
    EXPECT_EQ(m.energy.writes, 0u);
    EXPECT_EQ(m.energy.refreshes, 36u);
    EXPECT_EQ(m.energy.swaps, 2157u);
    expectNear(m.mpki(), 35.605804927438406, "mpki");
    expectNear(m.ppkm(), 377.39160961909778, "ppkm");
}

TEST(GoldenStats, McfStandardFixedSeed)
{
    SimConfig cfg = goldenConfig();
    cfg.design = DesignKind::Standard;
    RunMetrics m = runSimulation(WorkloadSpec::single("mcf"), cfg);

    ASSERT_EQ(m.ipc.size(), 1u);
    expectNear(m.ipc[0], 0.97734422244076447, "ipc");
    EXPECT_EQ(m.cpuCycles, 163711u);
    EXPECT_EQ(m.instructions, 160002u);
    EXPECT_EQ(m.llcMisses, 5780u);
    EXPECT_EQ(m.memAccesses, 5780u);
    EXPECT_EQ(m.promotions, 0u);
    EXPECT_EQ(m.locations.rowBuffer, 540u);
    EXPECT_EQ(m.locations.fastLevel, 0u);
    EXPECT_EQ(m.locations.slowLevel, 5238u);
    EXPECT_EQ(m.energy.actsSlow, 5256u);
    EXPECT_EQ(m.energy.actsFast, 0u);
    EXPECT_EQ(m.energy.reads, 5777u);
    EXPECT_EQ(m.energy.refreshes, 32u);
    EXPECT_EQ(m.energy.swaps, 0u);
    expectNear(m.mpki(), 36.124548443144462, "mpki");
}
