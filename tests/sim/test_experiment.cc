/**
 * @file
 * Tests for the experiment driver: workload construction, baseline
 * caching and improvement arithmetic.
 */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

using namespace dasdram;

namespace
{

SimConfig
quickConfig()
{
    SimConfig cfg;
    cfg.instructionsPerCore = 120'000;
    return cfg;
}

} // namespace

TEST(WorkloadSpec, SingleAndMix)
{
    WorkloadSpec s = WorkloadSpec::single("mcf");
    EXPECT_EQ(s.name, "mcf");
    ASSERT_EQ(s.parts.size(), 1u);
    WorkloadSpec m = WorkloadSpec::mix(0);
    EXPECT_EQ(m.name, "M1");
    EXPECT_EQ(m.parts.size(), 4u);
    EXPECT_DEATH(WorkloadSpec::mix(8), "out of range");
}

TEST(ExperimentRunner, StandardBaselineHasZeroImprovement)
{
    ExperimentRunner runner(quickConfig());
    ExperimentResult r =
        runner.run(WorkloadSpec::single("omnetpp"), DesignKind::Standard);
    EXPECT_NEAR(r.perfImprovement, 0.0, 1e-9);
    EXPECT_GT(r.energyPerAccessNj, 0.0);
}

TEST(ExperimentRunner, FsImprovementPositive)
{
    ExperimentRunner runner(quickConfig());
    ExperimentResult r =
        runner.run(WorkloadSpec::single("omnetpp"), DesignKind::Fs);
    EXPECT_GT(r.perfImprovement, 0.0);
}

TEST(ExperimentRunner, GmeanImprovement)
{
    EXPECT_NEAR(ExperimentRunner::gmeanImprovement({0.1, 0.1}), 0.1,
                1e-9);
    EXPECT_NEAR(ExperimentRunner::gmeanImprovement({}), 0.0, 1e-12);
    // gmean of (1.21, 1.0) = 1.1.
    EXPECT_NEAR(ExperimentRunner::gmeanImprovement({0.21, 0.0}), 0.1,
                1e-3);
}

TEST(ExperimentRunner, StaticDesignGetsProfiledTable)
{
    // A SAS run must complete and produce sane metrics (the profiling
    // pass runs inside runRaw).
    ExperimentRunner runner(quickConfig());
    ExperimentResult r =
        runner.run(WorkloadSpec::single("omnetpp"), DesignKind::Sas);
    EXPECT_GT(r.metrics.ipc[0], 0.0);
    EXPECT_EQ(r.metrics.promotions, 0u); // static never migrates
}

TEST(ExperimentRunner, ResultsDeterministicAcrossRunners)
{
    ExperimentRunner a(quickConfig()), b(quickConfig());
    ExperimentResult ra =
        a.run(WorkloadSpec::single("mcf"), DesignKind::Das);
    ExperimentResult rb =
        b.run(WorkloadSpec::single("mcf"), DesignKind::Das);
    EXPECT_DOUBLE_EQ(ra.metrics.ipc[0], rb.metrics.ipc[0]);
    EXPECT_EQ(ra.metrics.promotions, rb.metrics.promotions);
}

TEST(RunMetrics, DerivedQuantities)
{
    RunMetrics m;
    m.instructions = 1'000'000;
    m.llcMisses = 20'000;
    m.promotions = 400;
    m.memAccesses = 25'000;
    m.footprintRows = 1024;
    EXPECT_DOUBLE_EQ(m.mpki(), 20.0);
    EXPECT_DOUBLE_EQ(m.ppkm(), 20.0);
    EXPECT_DOUBLE_EQ(m.promotionsPerAccess(), 0.016);
    EXPECT_DOUBLE_EQ(m.footprintMiB(8192), 8.0);
}

TEST(RunMetrics, ZeroSafe)
{
    RunMetrics m;
    EXPECT_DOUBLE_EQ(m.mpki(), 0.0);
    EXPECT_DOUBLE_EQ(m.ppkm(), 0.0);
    EXPECT_DOUBLE_EQ(m.promotionsPerAccess(), 0.0);
}
