/**
 * @file
 * Tests for the SimConfig JSON round-trip (sim_config.hh): every field
 * survives serialise→parse, partial documents keep base defaults,
 * enums parse from their config spellings, and unknown keys fail
 * loudly instead of being silently dropped.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/sim_config.hh"

using namespace dasdram;

TEST(ConfigJson, DefaultConfigRoundTripsExactly)
{
    SimConfig cfg;
    std::string json = configToJson(cfg);
    SimConfig back = configFromJson(json);
    EXPECT_EQ(configToJson(back), json);
}

TEST(ConfigJson, ModifiedFieldsSurviveTheRoundTrip)
{
    SimConfig cfg;
    cfg.workload = "mix:spec:mcf,spec:lbm";
    cfg.design = DesignKind::Charm;
    cfg.engine = SimEngine::Tick;
    cfg.seed = 1234;
    cfg.instructionsPerCore = 777'000;
    cfg.warmupFraction = 0.35;
    cfg.caches.l2.sizeBytes = 512 * 1024;
    cfg.geom.rowsPerBank = 16384;
    cfg.ctrl.readQueueDepth = 48;
    cfg.layout.fastRatioDenom = 4;
    cfg.das.promotion.threshold = 9;
    cfg.obs.histograms = false;
    cfg.obs.label = "roundtrip";

    SimConfig back = configFromJson(configToJson(cfg));
    EXPECT_EQ(back.workload, cfg.workload);
    EXPECT_EQ(back.design, DesignKind::Charm);
    EXPECT_EQ(back.engine, SimEngine::Tick);
    EXPECT_EQ(back.seed, 1234u);
    EXPECT_EQ(back.instructionsPerCore, 777'000u);
    EXPECT_DOUBLE_EQ(back.warmupFraction, 0.35);
    EXPECT_EQ(back.caches.l2.sizeBytes, 512u * 1024u);
    EXPECT_EQ(back.geom.rowsPerBank, 16384u);
    EXPECT_EQ(back.ctrl.readQueueDepth, 48u);
    EXPECT_EQ(back.layout.fastRatioDenom, 4u);
    EXPECT_EQ(back.das.promotion.threshold, 9u);
    EXPECT_FALSE(back.obs.histograms);
    EXPECT_EQ(back.obs.label, "roundtrip");
    EXPECT_EQ(configToJson(back), configToJson(cfg));
}

TEST(ConfigJson, EveryDesignAndEngineSpellingParses)
{
    for (DesignKind d :
         {DesignKind::Standard, DesignKind::Sas, DesignKind::Charm,
          DesignKind::Das, DesignKind::DasFm, DesignKind::Fs}) {
        SimConfig cfg;
        cfg.design = d;
        EXPECT_EQ(configFromJson(configToJson(cfg)).design, d);
    }
    for (SimEngine e : {SimEngine::Tick, SimEngine::Event}) {
        SimConfig cfg;
        cfg.engine = e;
        EXPECT_EQ(configFromJson(configToJson(cfg)).engine, e);
    }
}

TEST(ConfigJson, PartialDocumentKeepsBaseDefaults)
{
    SimConfig base;
    base.instructionsPerCore = 123'456;
    SimConfig out = configFromJson(R"({"seed": 7})", base);
    EXPECT_EQ(out.seed, 7u);
    EXPECT_EQ(out.instructionsPerCore, 123'456u);
    EXPECT_EQ(out.design, base.design);

    SimConfig nested =
        configFromJson(R"({"core": {"issueWidth": 2}})", base);
    EXPECT_EQ(nested.core.issueWidth, 2u);
    EXPECT_EQ(nested.core.robSize, base.core.robSize);
}

TEST(ConfigJson, UnknownKeysAreFatal)
{
    EXPECT_DEATH(configFromJson(R"({"sedd": 7})"), "sedd");
    EXPECT_DEATH(configFromJson(R"({"caches": {"l9SizeBytes": 1}})"),
                 "l9SizeBytes");
}

TEST(ConfigJson, MalformedJsonIsFatal)
{
    EXPECT_DEATH(configFromJson("{nope"), "");
    EXPECT_DEATH(configFromJson(R"({"design": "warp-drive"})"),
                 "warp-drive");
}
