/**
 * @file
 * Tick-vs-event differential suite: the event engine must be
 * bit-identical to the per-cycle tick reference — same command stream
 * with the same cycle stamps, byte-identical stats-JSONL export, and
 * equal end-of-run metrics — across every design and the controller
 * corners the protocol fuzzer exercises.
 *
 * The full matrix runs under `ctest -L differential`; a four-case
 * subset rides in tier-1 (see tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/jsonl_diff.hh"
#include "sim/sweep.hh"
#include "sim/system.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth_trace.hh"

using namespace dasdram;

namespace
{

/** One matrix point: a design and a controller corner. */
struct EqCase
{
    const char *corner;
    DesignKind design;
    void (*apply)(ControllerConfig &);
};

void cornerBase(ControllerConfig &) {}
void cornerFcfs(ControllerConfig &c) { c.sched = SchedPolicy::Fcfs; }
void cornerClosed(ControllerConfig &c) { c.page = PagePolicy::Closed; }

void
cornerTinyQueues(ControllerConfig &c)
{
    c.readQueueDepth = 4;
    c.writeQueueDepth = 4;
    c.writeHighWatermark = 3;
    c.writeLowWatermark = 1;
}

void cornerNoRefresh(ControllerConfig &c) { c.refreshEnabled = false; }
void cornerDefer0(ControllerConfig &c) { c.migrationMaxDefer = 0; }

std::vector<EqCase>
allCases()
{
    static const struct
    {
        const char *name;
        void (*apply)(ControllerConfig &);
    } corners[] = {
        {"base", cornerBase},           {"fcfs", cornerFcfs},
        {"closed", cornerClosed},       {"tiny_queues", cornerTinyQueues},
        {"no_refresh", cornerNoRefresh}, {"defer0", cornerDefer0},
    };
    static const DesignKind designs[] = {
        DesignKind::Standard, DesignKind::Sas,   DesignKind::Charm,
        DesignKind::Das,      DesignKind::DasFm, DesignKind::Fs,
    };
    std::vector<EqCase> cases;
    for (DesignKind d : designs)
        for (const auto &c : corners)
            cases.push_back(EqCase{c.name, d, c.apply});
    return cases;
}

/** Shrunken profile so a 24k-instruction run still misses the LLC. */
BenchmarkProfile
tinyProfile()
{
    BenchmarkProfile p = specProfile("omnetpp");
    p.footprintMiB = 64;
    p.workingSetPages = 400;
    p.phaseInstructions = 40'000;
    return p;
}

struct EngineRun
{
    RunMetrics metrics;
    std::string cmdTrace;   ///< checker-visible command stream, text
    std::string statsJsonl; ///< full export incl. epochs + histograms
    std::uint64_t checkerCommands = 0;
};

EngineRun
runOne(const EqCase &c, SimEngine engine, unsigned num_cores)
{
    SimConfig cfg;
    cfg.design = c.design;
    cfg.engine = engine;
    cfg.numCores = num_cores;
    cfg.instructionsPerCore = 24'000;
    cfg.warmupFraction = 0.25;
    // Short epochs so fast-forward slices across many boundaries, and
    // the warm-up restart lands mid-epoch.
    cfg.obs.epochMemCycles = 4'000;
    cfg.obs.workloadName = "eq";
    cfg.seed = SweepRunner::pointSeed(
        42, std::string("eq/") + c.corner, c.design);
    c.apply(cfg.ctrl);

    std::vector<std::unique_ptr<SyntheticTrace>> traces;
    std::vector<TraceSource *> ptrs;
    for (unsigned i = 0; i < num_cores; ++i) {
        traces.push_back(std::make_unique<SyntheticTrace>(
            tinyProfile(), cfg.seed * 1000003 + i * 7919 + 1,
            cfg.geom.rowBytes, cfg.geom.lineBytes));
        ptrs.push_back(traces.back().get());
    }

    System sys(cfg, ptrs);
    std::ostringstream cmds;
    sys.attachCommandTrace(cmds);

    EngineRun r;
    r.metrics = sys.run();
    r.cmdTrace = cmds.str();
    r.checkerCommands = sys.protocolChecker()->commandCount();
    std::ostringstream stats;
    sys.writeStatsJsonl(stats);
    r.statsJsonl = stats.str();
    return r;
}

/** First differing line, for a readable failure message. */
std::string
firstDiffLine(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    std::uint64_t n = 0;
    while (true) {
        ++n;
        bool ha = static_cast<bool>(std::getline(sa, la));
        bool hb = static_cast<bool>(std::getline(sb, lb));
        if (!ha && !hb)
            return "(no line difference)";
        if (ha != hb || la != lb) {
            return "line " + std::to_string(n) + ":\n  tick : " +
                   (ha ? la : "<eof>") + "\n  event: " +
                   (hb ? lb : "<eof>");
        }
    }
}

/** Structured zero-tolerance diff of two stats-JSONL dumps via the
 *  jsonl_diff library, line by line. */
std::size_t
jsonlDiffCount(const std::string &a, const std::string &b)
{
    std::istringstream sa(a), sb(b);
    std::string la, lb;
    std::size_t diffs = 0;
    std::uint64_t n = 0;
    while (true) {
        ++n;
        bool ha = static_cast<bool>(std::getline(sa, la));
        bool hb = static_cast<bool>(std::getline(sb, lb));
        if (!ha || !hb) {
            diffs += (ha != hb);
            break;
        }
        JsonValue va, vb;
        if (!parseJson(la, va) || !parseJson(lb, vb)) {
            ADD_FAILURE() << "unparseable stats-JSONL line " << n;
            return diffs + 1;
        }
        diffs += diffJsonValues("line" + std::to_string(n), va, vb,
                                /*tolerance=*/0.0, nullptr);
    }
    return diffs;
}

void
expectIdentical(const EngineRun &tick, const EngineRun &event)
{
    // The command stream is the strongest witness: every DRAM command
    // at the exact same cycle, in the same order.
    EXPECT_EQ(tick.checkerCommands, event.checkerCommands);
    EXPECT_EQ(tick.cmdTrace, event.cmdTrace)
        << firstDiffLine(tick.cmdTrace, event.cmdTrace);

    // Stats export byte-identical (includes epochs and histograms)...
    EXPECT_EQ(tick.statsJsonl, event.statsJsonl)
        << firstDiffLine(tick.statsJsonl, event.statsJsonl);
    // ...and structurally identical at tolerance 0 through the same
    // comparison rules dasdram_compare uses.
    EXPECT_EQ(jsonlDiffCount(tick.statsJsonl, event.statsJsonl), 0u);

    // End-of-run metrics, field by field (doubles compared exactly:
    // both engines must execute the same arithmetic).
    const RunMetrics &a = tick.metrics, &b = event.metrics;
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]) << "core " << i;
    EXPECT_EQ(a.cpuCycles, b.cpuCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.promotions, b.promotions);
    EXPECT_EQ(a.footprintRows, b.footprintRows);
    EXPECT_EQ(a.locations.rowBuffer, b.locations.rowBuffer);
    EXPECT_EQ(a.locations.fastLevel, b.locations.fastLevel);
    EXPECT_EQ(a.locations.slowLevel, b.locations.slowLevel);
    EXPECT_EQ(a.energy.actsSlow, b.energy.actsSlow);
    EXPECT_EQ(a.energy.actsFast, b.energy.actsFast);
    EXPECT_EQ(a.energy.reads, b.energy.reads);
    EXPECT_EQ(a.energy.writes, b.energy.writes);
    EXPECT_EQ(a.energy.refreshes, b.energy.refreshes);
    EXPECT_EQ(a.energy.swaps, b.energy.swaps);
}

class EngineEquivalence : public ::testing::TestWithParam<EqCase>
{};

const char *
shortDesignName(DesignKind kind)
{
    switch (kind) {
      case DesignKind::Standard: return "standard";
      case DesignKind::Sas: return "sas";
      case DesignKind::Charm: return "charm";
      case DesignKind::Das: return "das";
      case DesignKind::DasFm: return "das_fm";
      case DesignKind::Fs: return "fs";
    }
    return "unknown";
}

std::string
caseName(const ::testing::TestParamInfo<EqCase> &info)
{
    return std::string(shortDesignName(info.param.design)) + "__" +
           info.param.corner;
}

} // namespace

TEST_P(EngineEquivalence, TickAndEventEnginesAreBitIdentical)
{
    const EqCase &c = GetParam();
    EngineRun tick = runOne(c, SimEngine::Tick, 1);
    EngineRun event = runOne(c, SimEngine::Event, 1);
    expectIdentical(tick, event);
    // Sanity: the runs exercised the memory system at all.
    EXPECT_GT(tick.checkerCommands, 0u);
}

INSTANTIATE_TEST_SUITE_P(Matrix, EngineEquivalence,
                         ::testing::ValuesIn(allCases()), caseName);

/** Multi-core: several ROBs and MSHR streams feeding the horizon. */
TEST(EngineEquivalenceMultiCore, TwoCoreDasBaseIsBitIdentical)
{
    EqCase c{"base", DesignKind::Das, cornerBase};
    EngineRun tick = runOne(c, SimEngine::Tick, 2);
    EngineRun event = runOne(c, SimEngine::Event, 2);
    expectIdentical(tick, event);
}

/** The event engine must also agree when no epoch series is attached
 *  (the fast-forward path with no boundary slicing at all). */
TEST(EngineEquivalenceNoEpochs, DasBaseIsBitIdenticalWithoutEpochs)
{
    EqCase c{"base", DesignKind::Das, cornerBase};
    auto run = [&](SimEngine engine) {
        SimConfig cfg;
        cfg.design = c.design;
        cfg.engine = engine;
        cfg.instructionsPerCore = 24'000;
        cfg.seed = 7;
        SyntheticTrace trace(tinyProfile(), 8);
        System sys(cfg, {&trace});
        std::ostringstream cmds;
        sys.attachCommandTrace(cmds);
        RunMetrics m = sys.run();
        return std::make_pair(m.cpuCycles, cmds.str());
    };
    auto tick = run(SimEngine::Tick);
    auto event = run(SimEngine::Event);
    EXPECT_EQ(tick.first, event.first);
    EXPECT_EQ(tick.second, event.second)
        << firstDiffLine(tick.second, event.second);
}
