/**
 * @file
 * Integration tests for the observability layer: a full System run
 * must produce a parseable schema-versioned stats-JSONL dump with
 * latency percentiles per row class, a well-formed Chrome trace_event
 * JSON timeline with bank tracks, migration spans and promotion
 * instants, and an epoch time-series aligned to the warm-up reset —
 * all deterministic across runs.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth_trace.hh"

using namespace dasdram;

namespace
{

SimConfig
tinyConfig(DesignKind design, InstCount instructions = 150'000)
{
    SimConfig cfg;
    cfg.design = design;
    cfg.instructionsPerCore = instructions;
    cfg.warmupFraction = 0.2;
    cfg.obs.workloadName = "tiny";
    return cfg;
}

BenchmarkProfile
tinyProfile()
{
    BenchmarkProfile p = specProfile("omnetpp");
    p.footprintMiB = 64;
    p.workingSetPages = 400;
    p.phaseInstructions = 40'000;
    return p;
}

/** Parse a JSONL string into records keyed by "type|name". */
std::map<std::string, JsonValue>
parseStats(const std::string &text, JsonValue *meta_out = nullptr,
           std::vector<JsonValue> *epochs_out = nullptr)
{
    std::map<std::string, JsonValue> recs;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        JsonValue v;
        std::string err;
        EXPECT_TRUE(parseJson(line, v, &err)) << line << ": " << err;
        const JsonValue *type = v.find("type");
        EXPECT_TRUE(type && type->isString()) << line;
        if (!type || !type->isString())
            continue;
        if (type->string == "meta") {
            if (meta_out)
                *meta_out = std::move(v);
        } else if (type->string == "epoch") {
            if (epochs_out)
                epochs_out->push_back(std::move(v));
        } else {
            const JsonValue *name = v.find("name");
            EXPECT_TRUE(name && name->isString()) << line;
            if (name && name->isString()) {
                recs.emplace(type->string + "|" + name->string,
                             std::move(v));
            }
        }
    }
    return recs;
}

double
num(const JsonValue &v, const char *key)
{
    const JsonValue *f = v.find(key);
    EXPECT_TRUE(f && f->isNumber()) << key;
    return f && f->isNumber() ? f->number : 0.0;
}

} // namespace

TEST(Observability, StatsJsonlHasPercentilesPerRowClass)
{
    SimConfig cfg = tinyConfig(DesignKind::Das);
    cfg.obs.epochMemCycles = 20'000;
    SyntheticTrace trace(tinyProfile(), 1);
    System sys(cfg, {&trace});
    sys.run();

    std::ostringstream os;
    sys.writeStatsJsonl(os);
    JsonValue meta;
    std::vector<JsonValue> epochs;
    auto recs = parseStats(os.str(), &meta, &epochs);

    // Meta identity.
    EXPECT_EQ(meta.find("schema")->string, "dasdram-stats");
    EXPECT_EQ(meta.find("workload")->string, "tiny");
    EXPECT_EQ(meta.find("design")->string, toString(DesignKind::Das));

    // The acceptance-criteria metric: p50/p99 read latency per row
    // class, from the cross-channel rollup histograms.
    ASSERT_TRUE(recs.count("hist|rollup.readLatency"));
    const JsonValue &all = recs["hist|rollup.readLatency"];
    EXPECT_GT(num(all, "count"), 0.0);
    EXPECT_GT(num(all, "p50"), 0.0);
    EXPECT_LE(num(all, "p50"), num(all, "p99"));
    EXPECT_LE(num(all, "p99"), num(all, "p999"));
    EXPECT_LE(num(all, "min"), num(all, "p50"));
    EXPECT_LE(num(all, "p999"), num(all, "max"));

    // DAS serves from both classes, so both class histograms have mass
    // and fast reads are faster than slow reads at the median.
    ASSERT_TRUE(recs.count("hist|rollup.readLatencyFast"));
    ASSERT_TRUE(recs.count("hist|rollup.readLatencySlow"));
    const JsonValue &fast = recs["hist|rollup.readLatencyFast"];
    const JsonValue &slow = recs["hist|rollup.readLatencySlow"];
    EXPECT_GT(num(fast, "count"), 0.0);
    EXPECT_GT(num(slow, "count"), 0.0);
    EXPECT_LT(num(fast, "p50"), num(slow, "p50"));

    // Per-channel instrumentation shows up under the dram subtree.
    ASSERT_TRUE(
        recs.count("hist|system.dram.channel0.readQueueDelay"));
    ASSERT_TRUE(recs.count("hist|system.mshr.occupancy"));
    ASSERT_TRUE(
        recs.count("counter|system.dram.channel0.bank0.rowHits"));

    // Epochs: present, indexed from 0, aligned after the warm-up
    // restart (strictly increasing starts).
    ASSERT_GT(epochs.size(), 1u);
    EXPECT_EQ(num(epochs[0], "index"), 0.0);
    for (std::size_t i = 1; i < epochs.size(); ++i) {
        EXPECT_EQ(num(epochs[i], "index"), static_cast<double>(i));
        EXPECT_GT(num(epochs[i], "start"), num(epochs[i - 1], "start"));
    }
}

TEST(Observability, HistogramsOffKeepsDumpShape)
{
    // cfg.obs.histograms only gates sampling; the records must still
    // exist (with zero counts) so dumps keep a stable shape for diffs.
    SimConfig cfg = tinyConfig(DesignKind::Das);
    cfg.obs.histograms = false;
    SyntheticTrace trace(tinyProfile(), 1);
    System sys(cfg, {&trace});
    sys.run();

    std::ostringstream os;
    sys.writeStatsJsonl(os);
    auto recs = parseStats(os.str());
    ASSERT_TRUE(recs.count("hist|rollup.readLatency"));
    EXPECT_EQ(num(recs["hist|rollup.readLatency"], "count"), 0.0);
    ASSERT_TRUE(
        recs.count("hist|system.dram.channel0.readQueueDelay"));
    EXPECT_EQ(
        num(recs["hist|system.dram.channel0.readQueueDelay"], "count"),
        0.0);
}

TEST(Observability, StatsJsonlDeterministicAcrossRuns)
{
    SimConfig cfg = tinyConfig(DesignKind::Das);
    cfg.obs.epochMemCycles = 20'000;
    SyntheticTrace t1(tinyProfile(), 1), t2(tinyProfile(), 1);
    System s1(cfg, {&t1}), s2(cfg, {&t2});
    s1.run();
    s2.run();
    std::ostringstream a, b;
    s1.writeStatsJsonl(a);
    s2.writeStatsJsonl(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(Observability, ChromeTraceIsWellFormedWithSpansAndInstants)
{
    SimConfig cfg = tinyConfig(DesignKind::Das);
    SyntheticTrace trace(tinyProfile(), 1);
    System sys(cfg, {&trace});
    std::ostringstream os;
    sys.attachChromeTrace(os);
    RunMetrics m = sys.run();
    ASSERT_GT(m.promotions, 0u); // the workload must exercise DAS

    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(os.str(), v, &err)) << err;
    EXPECT_EQ(v.find("displayTimeUnit")->string, "ns");
    const JsonValue *events = v.find("traceEvents");
    ASSERT_TRUE(events && events->isArray());
    ASSERT_FALSE(events->array.empty());

    std::size_t metadata = 0, spans = 0, instants = 0;
    std::size_t row_spans = 0, migrations = 0, bursts = 0;
    bool saw_promote = false;
    double last_ts = 0.0;
    for (const JsonValue &e : events->array) {
        ASSERT_TRUE(e.isObject());
        const JsonValue *ph = e.find("ph");
        const JsonValue *name = e.find("name");
        ASSERT_TRUE(ph && ph->isString());
        ASSERT_TRUE(name && name->isString());
        if (ph->string == "M") {
            ++metadata;
            continue;
        }
        const JsonValue *ts = e.find("ts");
        ASSERT_TRUE(ts && ts->isNumber()) << name->string;
        EXPECT_GE(ts->number, 0.0);
        last_ts = std::max(last_ts, ts->number);
        if (ph->string == "X") {
            ++spans;
            EXPECT_GT(e.find("dur")->number, 0.0) << name->string;
            if (name->string.rfind("row ", 0) == 0)
                ++row_spans;
            if (name->string == "migrate" || name->string == "swap")
                ++migrations;
            if (name->string == "RD" || name->string == "WR")
                ++bursts;
        } else if (ph->string == "i") {
            ++instants;
            if (name->string == "promote") {
                saw_promote = true;
                const JsonValue *args = e.find("args");
                ASSERT_TRUE(args && args->isObject());
                EXPECT_TRUE(args->find("row"));
                EXPECT_TRUE(args->find("cause"));
            }
        }
    }
    // Track names for processes/threads, plus real activity of every
    // kind the writer emits.
    EXPECT_GT(metadata, 0u);
    EXPECT_GT(row_spans, 0u);
    EXPECT_GT(bursts, 0u);
    EXPECT_GT(migrations, 0u);
    EXPECT_TRUE(saw_promote);
    EXPECT_GT(instants, 0u);
    EXPECT_GT(spans, 0u);
    EXPECT_GT(last_ts, 0.0);
}

TEST(Observability, ChromeTraceAndCommandTraceCoexist)
{
    // Both sinks plus the protocol checker share the command stream
    // through the fanout; the run must stay clean and both outputs
    // must materialise.
    SimConfig cfg = tinyConfig(DesignKind::Das, 60'000);
    SyntheticTrace trace(tinyProfile(), 1);
    System sys(cfg, {&trace});
    std::ostringstream chrome_os, text_os;
    sys.attachChromeTrace(chrome_os);
    sys.attachCommandTrace(text_os);
    sys.run();

    JsonValue v;
    std::string err;
    ASSERT_TRUE(parseJson(chrome_os.str(), v, &err)) << err;
    EXPECT_FALSE(v.find("traceEvents")->array.empty());
    EXPECT_NE(text_os.str().find("ACT"), std::string::npos);
}
