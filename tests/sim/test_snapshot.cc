/**
 * @file
 * Snapshot/restore integration tests: failure modes of the versioned
 * checkpoint envelope (truncation, wrong magic, future version,
 * config-fingerprint mismatch) and the bit-identity guarantee — a run
 * restored from a mid-run checkpoint must reproduce the straight
 * run's stats exactly, including mid-epoch EpochSeries alignment.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/binfmt.hh"
#include "sim/system.hh"
#include "workload/spec_profiles.hh"
#include "workload/synth_trace.hh"

using namespace dasdram;

namespace
{

SimConfig
snapConfig(DesignKind design = DesignKind::Das)
{
    SimConfig cfg;
    cfg.design = design;
    cfg.instructionsPerCore = 120'000;
    cfg.warmupFraction = 0.2;
    return cfg;
}

BenchmarkProfile
snapProfile()
{
    BenchmarkProfile p = specProfile("omnetpp");
    p.footprintMiB = 64;
    p.workingSetPages = 400;
    p.phaseInstructions = 40'000;
    return p;
}

std::string
tmpPath(const char *name)
{
    return ::testing::TempDir() + name;
}

/** The complete stats-JSONL dump of a finished system, as a string. */
std::string
statsDump(const System &sys)
{
    std::ostringstream os;
    sys.writeStatsJsonl(os);
    return os.str();
}

/** Run straight through, writing a checkpoint at @p tick on the way. */
std::string
runWithCheckpoint(const SimConfig &cfg, Cycle tick,
                  const std::string &path)
{
    SyntheticTrace trace(snapProfile(), 1);
    System sys(cfg, {&trace});
    sys.scheduleCheckpoint(tick, path);
    sys.run();
    return statsDump(sys);
}

/** Restore @p path into a fresh system and run it to completion. */
std::string
runRestored(const SimConfig &cfg, const std::string &path)
{
    SyntheticTrace trace(snapProfile(), 1);
    System sys(cfg, {&trace});
    sys.loadSnapshot(path);
    sys.run();
    return statsDump(sys);
}

} // namespace

TEST(SnapshotDeathTest, TruncatedFileIsFatal)
{
    std::string path = tmpPath("snap_trunc.ckpt");
    SimConfig cfg = snapConfig();
    SyntheticTrace trace(snapProfile(), 1);
    System sys(cfg, {&trace});
    sys.saveSnapshot(path);

    // Chop the file mid-payload: the envelope's length framing must
    // catch it before the serde layer sees a single byte.
    std::ifstream is(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(is)),
                            std::istreambuf_iterator<char>());
    is.close();
    ASSERT_GT(bytes.size(), 64u);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(),
             static_cast<std::streamsize>(bytes.size() / 2));
    os.close();

    SyntheticTrace t2(snapProfile(), 1);
    System fresh(cfg, {&t2});
    EXPECT_DEATH(fresh.loadSnapshot(path), "truncated checkpoint");
}

TEST(SnapshotDeathTest, WrongMagicIsFatal)
{
    std::string path = tmpPath("snap_magic.ckpt");
    // A well-formed envelope of the wrong kind (a stats file, say)
    // must be rejected by magic, not parsed as state.
    std::string err = binfmt::writeEnvelopeFile(
        path, 0x12345678u, 1, std::vector<unsigned char>{1, 2, 3});
    ASSERT_TRUE(err.empty()) << err;

    SimConfig cfg = snapConfig();
    SyntheticTrace trace(snapProfile(), 1);
    System sys(cfg, {&trace});
    EXPECT_DEATH(sys.loadSnapshot(path), "bad magic");
}

TEST(SnapshotDeathTest, FutureVersionIsFatal)
{
    std::string path = tmpPath("snap_future.ckpt");
    std::string err = binfmt::writeEnvelopeFile(
        path, System::kSnapshotMagic,
        static_cast<std::uint16_t>(System::kSnapshotVersion + 1),
        std::vector<unsigned char>{1, 2, 3});
    ASSERT_TRUE(err.empty()) << err;

    SimConfig cfg = snapConfig();
    SyntheticTrace trace(snapProfile(), 1);
    System sys(cfg, {&trace});
    EXPECT_DEATH(sys.loadSnapshot(path), "newer than this build");
}

TEST(SnapshotDeathTest, ConfigFingerprintMismatchIsFatal)
{
    std::string path = tmpPath("snap_fp.ckpt");
    SimConfig das_cfg = snapConfig(DesignKind::Das);
    SyntheticTrace t1(snapProfile(), 1);
    System das_sys(das_cfg, {&t1});
    das_sys.saveSnapshot(path);

    // A state-shaping difference (the design) must refuse to restore;
    // engine/threading/output differences deliberately do not.
    SimConfig std_cfg = snapConfig(DesignKind::Standard);
    SyntheticTrace t2(snapProfile(), 1);
    System std_sys(std_cfg, {&t2});
    EXPECT_DEATH(std_sys.loadSnapshot(path),
                 "config fingerprint mismatch");
}

TEST(Snapshot, RestoredRunIsBitIdentical)
{
    std::string path = tmpPath("snap_mid.ckpt");
    SimConfig cfg = snapConfig();
    std::string straight = runWithCheckpoint(cfg, 200'000, path);
    std::string restored = runRestored(cfg, path);
    EXPECT_EQ(straight, restored);
    std::remove(path.c_str());
}

TEST(Snapshot, RestoreCrossesEngineAndThreads)
{
    std::string path = tmpPath("snap_cross.ckpt");
    SimConfig cfg = snapConfig();
    cfg.engine = SimEngine::Event;
    std::string straight = runWithCheckpoint(cfg, 200'000, path);

    // The fingerprint admits engine and channel-threading changes:
    // restoring under the tick engine with wider threading must still
    // reproduce the event run bit for bit.
    SimConfig other = cfg;
    other.engine = SimEngine::Tick;
    other.channelThreads = 2;
    std::string restored = runRestored(other, path);
    EXPECT_EQ(straight, restored);
    std::remove(path.c_str());
}

TEST(Snapshot, MidEpochCheckpointKeepsEpochAlignment)
{
    std::string path = tmpPath("snap_epoch.ckpt");
    SimConfig cfg = snapConfig();
    cfg.obs.epochMemCycles = 2'000;
    // One epoch is 2000 mem cycles = 30000 ticks; tick 200000 lands
    // two thirds through epoch 6, so the restored run must finish the
    // partially filled epoch exactly where the straight run does.
    std::string straight = runWithCheckpoint(cfg, 200'000, path);
    std::string restored = runRestored(cfg, path);
    ASSERT_NE(straight.find("\"type\":\"epoch\""), std::string::npos);
    EXPECT_EQ(straight, restored);
    std::remove(path.c_str());
}

TEST(Snapshot, WarmupCheckpointSkipsWarmup)
{
    std::string path = tmpPath("snap_warm.ckpt");
    SimConfig cfg = snapConfig();
    SyntheticTrace t1(snapProfile(), 1);
    System s1(cfg, {&t1});
    s1.checkpointAtWarmup(path);
    s1.run();
    std::string straight = statsDump(s1);
    std::string restored = runRestored(cfg, path);
    EXPECT_EQ(straight, restored);
    std::remove(path.c_str());
}
