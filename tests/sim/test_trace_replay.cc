/**
 * @file
 * Record/replay closure test (the ISSUE 5 acceptance criterion): a
 * synthetic workload recorded with runSimulation's record_prefix and
 * replayed through a `file:` spec must produce bit-identical metrics
 * to the live run — per design (including the static designs, whose
 * profiling pre-pass must stay out of the capture) and per engine.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/strfmt.hh"
#include "sim/experiment.hh"

using namespace dasdram;

namespace
{

SimConfig
tinyConfig(DesignKind design)
{
    SimConfig cfg;
    cfg.design = design;
    cfg.instructionsPerCore = 80'000;
    cfg.warmupFraction = 0.2;
    return cfg;
}

/** Every numeric field of RunMetrics, for exact comparison. */
void
expectIdentical(const RunMetrics &a, const RunMetrics &b)
{
    ASSERT_EQ(a.ipc.size(), b.ipc.size());
    for (std::size_t i = 0; i < a.ipc.size(); ++i)
        EXPECT_EQ(a.ipc[i], b.ipc[i]) << "core " << i;
    EXPECT_EQ(a.cpuCycles, b.cpuCycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.promotions, b.promotions);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.footprintRows, b.footprintRows);
    EXPECT_EQ(a.locations.rowBuffer, b.locations.rowBuffer);
    EXPECT_EQ(a.locations.fastLevel, b.locations.fastLevel);
    EXPECT_EQ(a.locations.slowLevel, b.locations.slowLevel);
}

/** Record a live run, then replay the captured binary traces. */
void
recordThenReplay(const std::string &workload, SimConfig cfg,
                 const std::string &tag)
{
    std::string prefix = ::testing::TempDir() + "dasdram_replay_" + tag;
    WorkloadSpec live_spec = WorkloadSpec::parse(workload);

    RunMetrics live = runSimulation(live_spec, cfg, prefix);

    std::string replay_text;
    for (unsigned i = 0; i < live_spec.numCores(); ++i) {
        if (i)
            replay_text += ',';
        replay_text +=
            formatStr("file:{}.core{}.dastrace", prefix, i);
    }
    if (live_spec.numCores() > 1)
        replay_text = "mix:" + replay_text;

    WorkloadSpec replay_spec = WorkloadSpec::parse(replay_text);
    RunMetrics replayed = runSimulation(replay_spec, cfg);
    expectIdentical(live, replayed);

    for (unsigned i = 0; i < live_spec.numCores(); ++i)
        std::remove(
            formatStr("{}.core{}.dastrace", prefix, i).c_str());
}

} // namespace

TEST(TraceReplay, DasSingleCoreEventEngine)
{
    SimConfig cfg = tinyConfig(DesignKind::Das);
    cfg.engine = SimEngine::Event;
    recordThenReplay("mcf", cfg, "das_event");
}

TEST(TraceReplay, DasSingleCoreTickEngine)
{
    SimConfig cfg = tinyConfig(DesignKind::Das);
    cfg.engine = SimEngine::Tick;
    recordThenReplay("mcf", cfg, "das_tick");
}

TEST(TraceReplay, StaticDesignProfilingPassStaysOutOfTheCapture)
{
    // FS-DRAM runs a profiling pre-pass over the trace before the
    // measured run; the recorder must wipe it on reset() or the replay
    // would see every record twice.
    SimConfig cfg = tinyConfig(DesignKind::Fs);
    cfg.engine = SimEngine::Event;
    recordThenReplay("lbm", cfg, "fs_event");
}

TEST(TraceReplay, MultiCoreMixReplaysPerCoreFiles)
{
    SimConfig cfg = tinyConfig(DesignKind::Das);
    cfg.engine = SimEngine::Event;
    cfg.instructionsPerCore = 50'000;
    recordThenReplay("mcf,omnetpp", cfg, "mix_event");
}

TEST(TraceReplay, StandardDesignBothEnginesAgreeOnTheReplay)
{
    // Replay the same capture under both engines: each engine must
    // reproduce its own live run exactly (the engines themselves are
    // compared by the equivalence suite, not here).
    SimConfig cfg = tinyConfig(DesignKind::Standard);
    cfg.engine = SimEngine::Tick;
    recordThenReplay("milc", cfg, "std_tick");
    cfg.engine = SimEngine::Event;
    recordThenReplay("milc", cfg, "std_event");
}
